// Plan explorer: walks through the paper's running examples, showing the
// naive plan, the optimized plan, and the effect of each configuration.
//
// Reproduces, from the paper:
//  - the Section 5 GroupBy example (Figure 4's query) with its P2-shaped
//    final plan;
//  - the Section 2 Q8 variant with schema validation (plans P1 -> P2);
//  - the Section 4 positional-path compilation example.
//
//   $ ./build/examples/plan_explorer
#include <iostream>

#include "src/engine/engine.h"
#include "src/xmark/xmark.h"

namespace {

void Show(const char* title, const std::string& query) {
  xqc::Engine engine;
  std::cout << "==== " << title << " ====\n";
  std::cout << "Query:\n  " << query << "\n\n";

  xqc::Result<xqc::PreparedQuery> q = engine.Prepare(query);
  if (!q.ok()) {
    std::cout << "error: " << q.status().ToString() << "\n";
    return;
  }
  std::cout << "Naive plan (after compilation, before rewriting):\n"
            << q.value().ExplainUnoptimizedPlan() << "\n\n";
  std::cout << "Optimized plan (after the Figure 5 rewritings):\n"
            << q.value().ExplainPlan() << "\n\n";
  const xqc::OptimizerStats& s = q.value().optimizer_stats();
  std::cout << "Rule firings: insert-group-by=" << s.insert_group_by
            << " map-through-group-by=" << s.map_through_group_by
            << " remove-duplicate-null=" << s.remove_duplicate_null
            << " insert-product=" << s.insert_product
            << " insert-join=" << s.insert_join
            << " insert-outer-join=" << s.insert_outer_join
            << " index->index-step=" << s.index_to_index_step << "\n\n";
}

}  // namespace

int main() {
  // The Section 5 / Figure 4 example.
  Show("Section 5 GroupBy example",
       "for $x in (1,1,3) "
       "let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) "
       "return ($x, $a)");

  // Execute it to show Figure 4's output.
  {
    xqc::Engine engine;
    xqc::DynamicContext ctx;
    auto q = engine.Prepare(
        "for $x in (1,1,3) "
        "let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) "
        "return ($x, $a)");
    auto r = q.value().ExecuteToString(&ctx);
    std::cout << "Result (Figure 4's output column): " << r.value() << "\n\n";
  }

  // The Section 2 Q8 variant (P1 -> P2), with schema type operations
  // interleaved in the nested block.
  Show("Section 2 Q8 variant (schema-validated)", xqc::XMarkQ8Variant());

  // The Section 4 path compilation example.
  Show("Section 4 positional path",
       "declare variable $d external; "
       "$d/descendant::person[position() = 1]");
  return 0;
}
