// Auction analytics: runs a small analytical workload over a generated
// XMark-style auction document, comparing engine configurations — the
// scenario the paper's introduction motivates (complex queries with joins,
// aggregation, and construction over non-trivial XML).
//
//   $ ./build/examples/auction_analytics [size_kb]
#include <chrono>
#include <iostream>

#include "src/engine/engine.h"
#include "src/xmark/xmark.h"

namespace {

using Clock = std::chrono::steady_clock;

double RunMs(const xqc::PreparedQuery& q, xqc::DynamicContext* ctx,
             std::string* out) {
  auto t0 = Clock::now();
  xqc::Result<std::string> r = q.ExecuteToString(ctx);
  double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                  .count();
  *out = r.ok() ? r.value() : "error: " + r.status().ToString();
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  size_t kb = argc > 1 ? static_cast<size_t>(atoi(argv[1])) : 256;
  xqc::XMarkOptions opts;
  opts.target_bytes = kb * 1024;
  std::cout << "Generating ~" << kb << " KB auction document...\n";
  xqc::Result<xqc::NodePtr> doc = xqc::GenerateXMarkDocument(opts);
  if (!doc.ok()) {
    std::cerr << doc.status().ToString() << "\n";
    return 1;
  }
  xqc::DynamicContext ctx;
  ctx.BindVariable(xqc::Symbol("auction"), {xqc::Item(doc.value())});

  struct NamedQuery {
    const char* name;
    std::string text;
  };
  const NamedQuery kQueries[] = {
      {"top-buyers",
       "declare variable $auction external; "
       "for $p in $auction/site/people/person "
       "let $bought := for $t in $auction/site/closed_auctions/closed_auction "
       "               where $t/buyer/@person = $p/@id return $t "
       "let $spent := sum(for $t in $bought return number($t/price)) "
       "where count($bought) >= 2 "
       "order by $spent descending "
       "return <buyer name=\"{$p/name/text()}\" auctions=\"{count($bought)}\" "
       "spent=\"{$spent}\"/>"},
      {"category-sizes",
       "declare variable $auction external; "
       "for $c in $auction/site/categories/category "
       "let $items := for $i in $auction/site/regions//item "
       "              where $i/incategory/@category = $c/@id return $i "
       "order by count($items) descending "
       "return <category name=\"{$c/name/text()}\" "
       "items=\"{count($items)}\"/>"},
      {"bid-activity",
       "declare variable $auction external; "
       "<activity>{"
       "  <auctions>{count($auction/site/open_auctions/open_auction)}"
       "</auctions>,"
       "  <bids>{count($auction/site//bidder)}</bids>,"
       "  <avg-increase>{avg($auction/site//bidder/increase)}</avg-increase>"
       "}</activity>"},
  };

  xqc::Engine engine;
  const struct {
    const char* name;
    xqc::EngineOptions options;
  } kConfigs[] = {
      {"baseline interpreter", {false, false, xqc::JoinImpl::kNestedLoop}},
      {"algebra, no rewriting", {true, false, xqc::JoinImpl::kNestedLoop}},
      {"optimized, NL joins", {true, true, xqc::JoinImpl::kNestedLoop}},
      {"optimized, hash joins", {true, true, xqc::JoinImpl::kHash}},
  };

  for (const NamedQuery& nq : kQueries) {
    std::cout << "\n-- " << nq.name << " --\n";
    std::string reference;
    for (const auto& cfg : kConfigs) {
      xqc::Result<xqc::PreparedQuery> q = engine.Prepare(nq.text, cfg.options);
      if (!q.ok()) {
        std::cerr << q.status().ToString() << "\n";
        return 1;
      }
      std::string out;
      double ms = RunMs(q.value(), &ctx, &out);
      printf("  %-24s %8.2f ms\n", cfg.name, ms);
      if (reference.empty()) {
        reference = out;
      } else if (out != reference) {
        std::cerr << "  CONFIGURATION DISAGREEMENT!\n";
        return 1;
      }
    }
    std::cout << "  result sample: "
              << reference.substr(0, std::min<size_t>(120, reference.size()))
              << (reference.size() > 120 ? "..." : "") << "\n";
  }
  return 0;
}
