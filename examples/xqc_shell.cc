// xqc_shell: a small command-line front end to the engine.
//
//   $ xqc_shell [options] -q 'for $x in (1,2,3) return $x * 2'
//   $ xqc_shell --query-file q.xq --doc auction=auction.xml --explain
//
// Options:
//   -q <text>            query text
//   --query-file <path>  read the query from a file
//   --doc <var>=<path>   parse an XML file and bind its root to $<var>
//                        (also registered under the path for fn:doc)
//   --explain            print the optimized plan instead of executing
//   --explain-naive      print the unoptimized plan
//   --no-optimize        disable the Figure 5 rewritings
//   --interpret          use the baseline Core interpreter
//   --join nl|hash|sort  physical join algorithm (default hash)
//   --exec stream|mat    iterator vs materializing execution (default stream)
//   --batch-size <n>     tuples per streaming batch (default 1024;
//                        1 = tuple-at-a-time oracle)
//   --parallelism <n>    partition eligible fn:collection scans across up
//                        to n concurrent workers (default 1 = the serial,
//                        byte-identical oracle)
//   --strict-collections fail the whole fn:collection scan on any bad
//                        member document (default: skip quarantined /
//                        malformed / vanished members)
//   --project            statically project bound documents (TreeProject)
//   --force-sort         always sort TreeJoin output (DDO-elision baseline)
//   --no-doc-index       disable per-document structural indexes
//   --no-doc-store       bypass the shared document store (fn:doc parses
//                        directly from disk each execution)
//   --doc-store-mb <n>   document store byte budget in MiB (default 256)
//   --invalidate <uri>   drop <uri> from the document store before running
//                        (cache entry, quarantine verdict, negative cache)
//   --stats              print optimizer/executor statistics
//   --timeout-ms <n>         abort with XQC0001 after n milliseconds
//   --max-mem-mb <n>         memory budget in MiB (XQC0003 when exceeded)
//   --max-output-items <n>   cap on result items (XQC0004 when exceeded)
//   --max-steps <n>          eval-step quota (XQC0006 when exceeded)
//   --threads <n>        serve the query through a QueryService with n
//                        worker threads (shared plan, per-worker contexts)
//   --repeat <n>         with --threads: total executions (default: threads)
//   --tenant <name>      with --threads: submit under this tenant name
//   --tenant-quota <n>   with --threads: per-tenant in-flight cap; over-quota
//                        submissions fail fast with XQC0010 (counted, not
//                        fatal)
//   --breaker-threshold <n>  open the document store's per-prefix circuit
//                        breaker after n consecutive transient I/O failures
//                        (fn:doc then fails fast with XQC0011)
//   --brownout           while a breaker is open, serve the stale cached
//                        document instead of failing (flagged in stats);
//                        with --snapshot-dir this extends to serving a
//                        valid disk snapshot when nothing is in memory
//   --snapshot-dir <dir> enable the document store's persistent snapshot
//                        tier: first parses publish checksummed binary
//                        tree snapshots in <dir>; later cold loads rebuild
//                        from them instead of re-parsing
//   --no-snapshots       oracle ablation: loads bypass the snapshot tier
//                        (results must be byte-identical)
//
// Environment (test harness hooks; see scripts/check.sh):
//   XQC_IO_FAULT_MODE / XQC_SNAP_FAULT_MODE  install a deterministic I/O
//                        fault injector on the global document store
//                        (mode names per src/store/io_fault.h)
//   XQC_IO_FAULT_DELAY_MS  delay for the slow-read / snap-slow-write modes
#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <sstream>

#include "src/engine/engine.h"
#include "src/service/query_service.h"
#include "src/store/document_store.h"
#include "src/xml/project.h"
#include "src/xml/xml_parser.h"

namespace {

int Fail(const std::string& msg) {
  std::cerr << "xqc_shell: " << msg << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string query;
  bool explain = false, explain_naive = false, stats = false, project = false;
  int threads = 0, repeat = 0;
  long long tenant_quota = 0;
  std::string tenant;
  std::vector<std::string> invalidate_uris;
  std::vector<std::pair<xqc::Symbol, xqc::NodePtr>> docs;
  std::vector<std::pair<std::string, xqc::NodePtr>> doc_paths;
  xqc::EngineOptions options;
  xqc::DynamicContext ctx;

  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "-q") {
      const char* v = next();
      if (v == nullptr) return Fail("-q needs an argument");
      query = v;
    } else if (arg == "--query-file") {
      const char* v = next();
      if (v == nullptr) return Fail("--query-file needs an argument");
      std::ifstream in(v);
      if (!in) return Fail(std::string("cannot open ") + v);
      std::ostringstream buf;
      buf << in.rdbuf();
      query = buf.str();
    } else if (arg == "--doc") {
      const char* v = next();
      if (v == nullptr) return Fail("--doc needs var=path");
      std::string spec = v;
      size_t eq = spec.find('=');
      if (eq == std::string::npos) return Fail("--doc needs var=path");
      std::string var = spec.substr(0, eq), path = spec.substr(eq + 1);
      xqc::Result<xqc::NodePtr> doc = xqc::ParseXmlFile(path);
      if (!doc.ok()) return Fail(doc.status().ToString());
      ctx.RegisterDocument(path, doc.value());
      ctx.BindVariable(xqc::Symbol(var), {xqc::Item(doc.value())});
      docs.emplace_back(xqc::Symbol(var), doc.value());
      doc_paths.emplace_back(path, doc.value());
    } else if (arg == "--project") {
      project = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--explain-naive") {
      explain_naive = true;
    } else if (arg == "--no-optimize") {
      options.optimize = false;
    } else if (arg == "--interpret") {
      options.use_algebra = false;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--force-sort") {
      options.force_sort = true;
    } else if (arg == "--no-doc-index") {
      options.use_doc_index = false;
    } else if (arg == "--no-doc-store") {
      options.use_doc_store = false;
    } else if (arg == "--strict-collections") {
      options.strict_collections = true;
    } else if (arg == "--invalidate") {
      const char* v = next();
      if (v == nullptr) return Fail("--invalidate needs a URI");
      invalidate_uris.emplace_back(v);
    } else if (arg == "--tenant") {
      const char* v = next();
      if (v == nullptr) return Fail("--tenant needs a name");
      tenant = v;
    } else if (arg == "--brownout") {
      xqc::DocumentStore::Global()->set_brownout(true);
    } else if (arg == "--snapshot-dir") {
      const char* v = next();
      if (v == nullptr) return Fail("--snapshot-dir needs a directory");
      xqc::DocumentStore::Global()->set_snapshot_dir(v);
    } else if (arg == "--no-snapshots") {
      options.use_snapshots = false;
    } else if (arg == "--join") {
      const char* v = next();
      if (v == nullptr) return Fail("--join needs nl|hash|sort");
      std::string j = v;
      if (j == "nl") options.join_impl = xqc::JoinImpl::kNestedLoop;
      else if (j == "hash") options.join_impl = xqc::JoinImpl::kHash;
      else if (j == "sort") options.join_impl = xqc::JoinImpl::kSort;
      else return Fail("unknown join algorithm: " + j);
    } else if (arg == "--exec") {
      const char* v = next();
      if (v == nullptr) return Fail("--exec needs stream|mat");
      std::string e = v;
      if (e == "stream") options.exec_mode = xqc::ExecMode::kStreaming;
      else if (e == "mat") options.exec_mode = xqc::ExecMode::kMaterialize;
      else return Fail("unknown exec mode: " + e);
    } else if (arg == "--threads" || arg == "--repeat" ||
               arg == "--timeout-ms" || arg == "--max-mem-mb" ||
               arg == "--max-output-items" || arg == "--max-steps" ||
               arg == "--doc-store-mb" || arg == "--batch-size" ||
               arg == "--tenant-quota" || arg == "--breaker-threshold" ||
               arg == "--parallelism") {
      const char* v = next();
      if (v == nullptr) return Fail(arg + " needs a number");
      char* end = nullptr;
      long long n = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || n <= 0) {
        return Fail(arg + " needs a positive number, got: " + v);
      }
      if (arg == "--timeout-ms") options.limits.deadline_ms = n;
      else if (arg == "--max-mem-mb")
        options.limits.max_memory_bytes = n * (1 << 20);
      else if (arg == "--max-output-items") options.limits.max_output_items = n;
      else if (arg == "--max-steps") options.limits.max_eval_steps = n;
      else if (arg == "--doc-store-mb")
        xqc::DocumentStore::Global()->set_max_bytes(n * (1 << 20));
      else if (arg == "--batch-size") options.batch_size = static_cast<int>(n);
      else if (arg == "--parallelism")
        options.parallelism = static_cast<int>(n);
      else if (arg == "--threads") threads = static_cast<int>(n);
      else if (arg == "--tenant-quota") tenant_quota = n;
      else if (arg == "--breaker-threshold")
        xqc::DocumentStore::Global()->set_breaker_threshold(
            static_cast<int>(n));
      else repeat = static_cast<int>(n);
    } else {
      return Fail("unknown option: " + arg);
    }
  }
  if (query.empty()) {
    return Fail("no query (use -q or --query-file); try:\n"
                "  xqc_shell -q 'for $x in (1,2,3) return $x * 2'");
  }
  // Deterministic fault injection keyed by the environment, so the fault
  // sweeps and the kill-9 crash harness in scripts/ can drive the injector
  // without per-mode shell flags. Static: the global store outlives main's
  // locals.
  static xqc::IoFaultInjector env_injector;
  const char* fault_mode = std::getenv("XQC_IO_FAULT_MODE");
  if (fault_mode == nullptr || *fault_mode == '\0') {
    fault_mode = std::getenv("XQC_SNAP_FAULT_MODE");
  }
  if (fault_mode != nullptr && *fault_mode != '\0') {
    if (!xqc::IoFaultModeFromName(fault_mode, &env_injector.mode)) {
      return Fail(std::string("unknown I/O fault mode in environment: ") +
                  fault_mode);
    }
    if (const char* d = std::getenv("XQC_IO_FAULT_DELAY_MS")) {
      env_injector.delay_ms = std::strtoll(d, nullptr, 10);
    }
    if (env_injector.mode != xqc::IoFaultMode::kNone) {
      xqc::DocumentStore::Global()->set_fault_injector(&env_injector);
    }
  }

  for (const std::string& uri : invalidate_uris) {
    bool dropped = xqc::DocumentStore::Global()->Invalidate(uri);
    if (stats) {
      std::cerr << "invalidate " << uri << ": "
                << (dropped ? "dropped" : "not cached") << "\n";
    }
  }

  xqc::Engine engine;
  xqc::Result<xqc::PreparedQuery> prepared = engine.Prepare(query, options);
  if (!prepared.ok()) return Fail(prepared.status().ToString());

  if (project) {
    xqc::ProjectionAnalysis a = prepared.value().InferProjection();
    if (!a.projectable) {
      std::cerr << "xqc_shell: query is not projectable; using full "
                   "documents\n";
    } else {
      for (auto& [var, doc] : docs) {
        auto it = a.paths_by_var.find(var);
        if (it == a.paths_by_var.end()) continue;
        xqc::Result<xqc::NodePtr> p = xqc::ProjectTree(doc, it->second);
        if (!p.ok()) return Fail(p.status().ToString());
        ctx.BindVariable(var, {xqc::Item(p.take())});
        if (stats) {
          std::cerr << "projected $" << var.str() << " to "
                    << it->second.size() << " paths\n";
        }
      }
    }
  }
  if (explain_naive) {
    std::cout << prepared.value().ExplainUnoptimizedPlan() << "\n";
    return 0;
  }
  if (explain) {
    std::cout << prepared.value().ExplainPlan() << "\n";
    return 0;
  }
  if (threads > 0) {
    // Serve the query through the concurrent layer: one shared immutable
    // plan, N workers with private contexts, `repeat` total executions.
    // Every run must produce the same result — printed once.
    if (repeat < threads) repeat = threads;
    xqc::ServiceOptions sopts;
    sopts.num_threads = threads;
    sopts.engine_options = options;
    sopts.default_limits = options.limits;
    if (tenant_quota > 0) {
      sopts.tenant_max_in_flight = tenant_quota;
      sopts.fair_dequeue = true;
    }
    xqc::QueryService service(sopts);
    for (auto& [path, doc] : doc_paths) service.RegisterDocument(path, doc);
    for (auto& [var, doc] : docs) {
      service.BindSharedVariable(var, {xqc::Item(doc)});
    }
    auto plan = std::make_shared<const xqc::PreparedQuery>(prepared.take());
    std::vector<std::future<xqc::QueryResponse>> futures;
    futures.reserve(repeat);
    for (int i = 0; i < repeat; i++) {
      xqc::QueryRequest req;
      req.prepared = plan;
      req.tenant = tenant;
      futures.push_back(service.Submit(std::move(req)));
    }
    std::string first;
    bool have_first = false;
    int64_t retries = 0, over_quota = 0, overloaded = 0;
    for (int i = 0; i < repeat; i++) {
      xqc::QueryResponse resp = futures[i].get();
      if (resp.status.code() == xqc::kTenantOverQuotaCode) {
        // Quota rejections are the feature working, not a failure: count
        // them and keep going with whatever was admitted.
        over_quota++;
        continue;
      }
      if (resp.status.code() == xqc::kServiceOverloadedCode) {
        overloaded++;
        continue;
      }
      if (!resp.status.ok()) return Fail(resp.status.ToString());
      if (!have_first) {
        first = resp.result;
        have_first = true;
      } else if (resp.result != first) {
        return Fail("run " + std::to_string(i) +
                    " disagrees with run 0:\n  " + resp.result + "\nvs\n  " +
                    first);
      }
      if (resp.retried_transient) retries++;
    }
    if (!have_first) {
      return Fail("every submission was rejected (" +
                  std::to_string(over_quota) + " over quota, " +
                  std::to_string(overloaded) + " overloaded)");
    }
    std::cout << first << "\n";
    if (stats) {
      xqc::QueryService::Counters sc = service.counters();
      std::cerr << "service: threads=" << threads << " runs=" << repeat
                << " agreed=yes retries=" << retries
                << " over-quota=" << over_quota
                << " overloaded=" << overloaded << "\n"
                << "service-counters: submitted=" << sc.submitted
                << " completed=" << sc.completed << " failed=" << sc.failed
                << " rejected=" << sc.rejected
                << " shed-in-queue=" << sc.shed_in_queue
                << " rejected-predicted=" << sc.rejected_predicted
                << " tenant-rejected=" << sc.tenant_rejected << "\n";
      for (const auto& [name, n] : sc.tenant_rejections) {
        std::cerr << "tenant-rejections: " << (name.empty() ? "<anon>" : name)
                  << "=" << n << "\n";
      }
    }
    return 0;
  }
  xqc::Result<std::string> result = prepared.value().ExecuteToString(&ctx);
  if (!result.ok()) return Fail(result.status().ToString());
  std::cout << result.value() << "\n";
  if (stats) {
    const xqc::OptimizerStats& os = prepared.value().optimizer_stats();
    const xqc::ExecStats& es = prepared.value().last_exec_stats();
    std::cerr << "optimizer: group-bys=" << os.insert_group_by
              << " outer-joins=" << os.insert_outer_join
              << " joins=" << os.insert_join
              << " path-fusions=" << os.fuse_path_step << "\n"
              << "executor: hash-joins=" << es.hash_joins
              << " sort-joins=" << es.sort_joins
              << " range-joins=" << es.range_joins
              << " nl-joins=" << es.nested_loop_joins
              << " group-bys=" << es.group_bys
              << " index-reuses=" << es.join_index_reuses
              << " source-tuples=" << es.source_tuples
              << " early-stops=" << es.streaming_early_stops << "\n"
              << "tree-join: sorts=" << es.tree_join.ddo_sorts
              << " dedups=" << es.tree_join.ddo_dedups
              << " skip-static=" << es.tree_join.ddo_skip_static
              << " skip-singleton=" << es.tree_join.ddo_skip_singleton
              << " skip-verified=" << es.tree_join.ddo_skip_verified
              << " index-lookups=" << es.tree_join.index_lookups << "\n"
              << "guard: checks=" << es.guard_checks
              << " steps=" << es.guard_steps
              << " peak-memory-bytes=" << es.peak_memory_bytes << "\n"
              << "parallel: partitions=" << es.parallel_partitions
              << " range-splits=" << es.parallel_range_splits
              << " steals=" << es.parallel_steals
              << " merges=" << es.parallel_merges
              << " fallbacks=" << es.parallel_fallbacks << "\n"
              << "collections: resolved=" << es.doc_store.collections_resolved
              << " members=" << es.doc_store.collection_members
              << " skipped=" << es.doc_store.collection_members_skipped
              << " reorders=" << es.doc_store.collection_reorders << "\n"
              << "doc-store: hits=" << es.doc_store.hits
              << " misses=" << es.doc_store.misses
              << " evictions=" << es.doc_store.evictions
              << " retries=" << es.doc_store.retries
              << " quarantine-hits=" << es.doc_store.quarantine_hits
              << " negative-hits=" << es.doc_store.negative_hits
              << " stale-reloads=" << es.doc_store.stale_reloads
              << " singleflight-waits=" << es.doc_store.singleflight_waits
              << " uncached-oversize=" << es.doc_store.uncached_oversize
              << " breaker-fast-fails=" << es.doc_store.breaker_fast_fails
              << " brownout-serves=" << es.doc_store.brownout_serves
              << "\n"
              << "doc-store-snapshots: hits=" << es.doc_store.snapshot_hits
              << " writes=" << es.doc_store.snapshot_writes
              << " write-failures=" << es.doc_store.snapshot_write_failures
              << " quarantines=" << es.doc_store.snapshot_quarantines
              << " stale=" << es.doc_store.snapshot_stale
              << " brownout-serves=" << es.doc_store.snapshot_brownout_serves
              << " content-rechecks=" << es.doc_store.content_rechecks
              << " bytes-read=" << es.doc_store.snapshot_bytes_read
              << " bytes-written=" << es.doc_store.snapshot_bytes_written
              << "\n";
    xqc::DocumentStore::Counters sc = xqc::DocumentStore::Global()->counters();
    std::cerr << "doc-store-global: entries=" << sc.entries
              << " bytes=" << sc.bytes_cached
              << " quarantined=" << sc.quarantined
              << " hits=" << sc.totals.hits << " misses=" << sc.totals.misses
              << " evictions=" << sc.totals.evictions
              << " breaker-opens=" << sc.breaker_opens
              << " breaker-half-opens=" << sc.breaker_half_opens
              << " breaker-closes=" << sc.breaker_closes
              << " breakers-open=" << sc.breakers_open
              << " breaker-fast-fails=" << sc.totals.breaker_fast_fails
              << " brownout-serves=" << sc.totals.brownout_serves
              << " snapshot-hits=" << sc.totals.snapshot_hits
              << " snapshot-writes=" << sc.totals.snapshot_writes
              << " snapshot-quarantines=" << sc.totals.snapshot_quarantines
              << " snapshot-brownout-serves="
              << sc.totals.snapshot_brownout_serves << "\n";
  }
  return 0;
}
