// Quickstart: parse a document, prepare a query, execute it, and look at
// the optimized plan.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "src/engine/engine.h"
#include "src/xml/xml_parser.h"

int main() {
  // 1. Parse an XML document (in-memory here; ParseXmlFile works too).
  xqc::Result<xqc::NodePtr> doc = xqc::ParseXml(R"(
    <library>
      <book year="2004"><title>The Algebra Book</title><price>30</price></book>
      <book year="2006"><title>XQuery Compiled</title><price>45</price></book>
      <book year="2006"><title>Joins for Trees</title><price>25</price></book>
    </library>)");
  if (!doc.ok()) {
    std::cerr << doc.status().ToString() << "\n";
    return 1;
  }

  // 2. Register it in a dynamic context under a URI and/or bind variables.
  xqc::DynamicContext ctx;
  ctx.RegisterDocument("library.xml", doc.value());

  // 3. Prepare a query: parse -> normalize -> compile to the algebra ->
  //    apply the unnesting/join rewritings.
  xqc::Engine engine;
  xqc::Result<xqc::PreparedQuery> query = engine.Prepare(R"(
    let $lib := doc("library.xml")
    for $b in $lib/library/book
    where $b/price < 40
    order by $b/title
    return <cheap year="{$b/@year}">{$b/title/text()}</cheap>)");
  if (!query.ok()) {
    std::cerr << query.status().ToString() << "\n";
    return 1;
  }

  // 4. Execute. Results serialize back to XML.
  xqc::Result<std::string> result = query.value().ExecuteToString(&ctx);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Result:\n" << result.value() << "\n\n";

  // 5. Inspect the optimized algebraic plan (the paper's notation).
  std::cout << "Optimized plan:\n" << query.value().ExplainPlan() << "\n";
  return 0;
}
