// xqc_httpd: the XQuery compiler served over HTTP/1.1 (ROADMAP item 4).
//
//   $ ./build/examples/xqc_httpd --port 8080 &
//   $ curl -s -X POST --data-binary "1 to 5" localhost:8080/query
//   $ curl -s localhost:8080/stats | python3 -m json.tool
//   $ kill -TERM %1        # crash-only drain: finish in-flight, then exit
//
// Flags (all optional):
//   --port N               bind port (default 8080; 0 = ephemeral, printed)
//   --bind ADDR            bind address (default 127.0.0.1)
//   --threads N            QueryService worker threads (default 4)
//   --max-queue N          admission queue bound (default 64)
//   --max-connections N    open-connection cap (default 256)
//   --deadline-ms N        default per-query deadline (default 1000)
//   --drain-grace-ms N     in-flight grace after SIGTERM (default 5000)
//   --header-timeout-ms N  slowloris eviction bound (default 5000)
//   --idle-timeout-ms N    keep-alive idle bound (default 30000)
//   --max-body-bytes N     request body cap (default 1 MiB)
//   --no-plan-cache        ablation: disable the prepared-plan cache
//   --plan-cache-entries N plan cache capacity (default 128)
//   --register URI=PATH    parse PATH and register it as doc('URI')
//                          (repeatable; hot documents without store I/O)
//   --fault-mode NAME      install a NetFaultInjector (tests/demos):
//                          accept-fail, short-write, stalled-read,
//                          mid-response-close, slow-client
//
// SIGTERM/SIGINT trigger the crash-only drain: the listener closes,
// /readyz flips to 503 [XQC0012], in-flight queries get drain-grace-ms to
// finish, stragglers are cancelled, and the process exits 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/net/http_server.h"
#include "src/service/query_service.h"
#include "src/store/document_store.h"
#include "src/xml/xml_parser.h"

namespace {

xqc::HttpServer* g_server = nullptr;

void HandleSignal(int /*sig*/) {
  // Async-signal-safe: one write(2) on the server's self-pipe.
  if (g_server != nullptr) g_server->RequestDrainFromSignal();
}

bool FlagInt(const char* flag, const char* name, const char* value,
             int64_t* out) {
  if (std::strcmp(flag, name) != 0) return false;
  *out = std::atoll(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t port = 8080, threads = 4, max_queue = 64, max_connections = 256;
  int64_t deadline_ms = 1000, drain_grace_ms = 5000;
  int64_t header_timeout_ms = 5000, idle_timeout_ms = 30000;
  int64_t max_body_bytes = 1 << 20, plan_cache_entries = 128;
  bool no_plan_cache = false;
  std::string bind = "127.0.0.1";
  std::string fault_mode;
  std::vector<std::pair<std::string, std::string>> registrations;

  for (int i = 1; i < argc; i++) {
    const char* a = argv[i];
    const char* v = i + 1 < argc ? argv[i + 1] : "";
    if (std::strcmp(a, "--no-plan-cache") == 0) {
      no_plan_cache = true;
    } else if (std::strcmp(a, "--bind") == 0) {
      bind = v;
      i++;
    } else if (std::strcmp(a, "--fault-mode") == 0) {
      fault_mode = v;
      i++;
    } else if (std::strcmp(a, "--register") == 0) {
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr) {
        std::fprintf(stderr, "--register wants URI=PATH, got '%s'\n", v);
        return 2;
      }
      registrations.emplace_back(std::string(v, eq - v), std::string(eq + 1));
      i++;
    } else if (FlagInt(a, "--port", v, &port) ||
               FlagInt(a, "--threads", v, &threads) ||
               FlagInt(a, "--max-queue", v, &max_queue) ||
               FlagInt(a, "--max-connections", v, &max_connections) ||
               FlagInt(a, "--deadline-ms", v, &deadline_ms) ||
               FlagInt(a, "--drain-grace-ms", v, &drain_grace_ms) ||
               FlagInt(a, "--header-timeout-ms", v, &header_timeout_ms) ||
               FlagInt(a, "--idle-timeout-ms", v, &idle_timeout_ms) ||
               FlagInt(a, "--max-body-bytes", v, &max_body_bytes) ||
               FlagInt(a, "--plan-cache-entries", v, &plan_cache_entries)) {
      i++;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", a);
      return 2;
    }
  }

  xqc::DocumentStore store;  // fn:doc() against the filesystem
  xqc::ServiceOptions opts;
  opts.num_threads = static_cast<int>(threads);
  opts.max_queue = static_cast<size_t>(max_queue);
  opts.default_limits.deadline_ms = deadline_ms;
  opts.engine_options.use_doc_store = true;
  opts.document_store = &store;
  opts.plan_cache_entries =
      no_plan_cache ? 0 : static_cast<size_t>(plan_cache_entries);
  xqc::QueryService service(opts);

  for (const auto& [uri, path] : registrations) {
    std::ifstream f(path);
    if (!f) {
      std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    xqc::Result<xqc::NodePtr> doc = xqc::ParseXml(ss.str());
    if (!doc.ok()) {
      std::fprintf(stderr, "parse %s: %s\n", path.c_str(),
                   doc.status().ToString().c_str());
      return 2;
    }
    service.RegisterDocument(uri, doc.value());
    std::fprintf(stderr, "registered doc('%s') from %s\n", uri.c_str(),
                 path.c_str());
  }

  xqc::NetFaultInjector injector;
  xqc::HttpServerOptions hopts;
  hopts.bind_address = bind;
  hopts.port = static_cast<int>(port);
  hopts.max_connections = static_cast<int>(max_connections);
  hopts.drain_grace_ms = drain_grace_ms;
  hopts.header_timeout_ms = header_timeout_ms;
  hopts.idle_timeout_ms = idle_timeout_ms;
  hopts.max_body_bytes = static_cast<size_t>(max_body_bytes);
  if (!fault_mode.empty()) {
    if (!xqc::NetFaultModeFromName(fault_mode, &injector.mode)) {
      std::fprintf(stderr, "unknown --fault-mode '%s'\n", fault_mode.c_str());
      return 2;
    }
    hopts.fault_injector = &injector;
    std::fprintf(stderr, "net fault injector armed: %s\n",
                 fault_mode.c_str());
  }

  xqc::HttpServer server(hopts, &service);
  xqc::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);
  std::fprintf(stderr,
               "xqc_httpd listening on %s:%d (workers=%lld queue=%lld "
               "plan_cache=%zu)\n",
               bind.c_str(), server.port(),
               static_cast<long long>(threads),
               static_cast<long long>(max_queue), opts.plan_cache_entries);
  std::fflush(stderr);

  // Park until a signal starts the drain, then run it to completion.
  while (!server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::fprintf(stderr, "drain requested; waiting up to %lldms for in-flight "
                       "work\n",
               static_cast<long long>(drain_grace_ms));
  server.Stop();  // waits out the grace, cancels stragglers, force-closes
  g_server = nullptr;
  service.Shutdown();

  xqc::HttpServer::Counters c = server.counters();
  std::fprintf(stderr,
               "drained: requests=%lld 2xx=%lld 4xx=%lld 5xx=%lld "
               "malformed=%lld drain_refused=%lld stragglers_cancelled=%lld\n",
               static_cast<long long>(c.requests),
               static_cast<long long>(c.responses_2xx),
               static_cast<long long>(c.responses_4xx),
               static_cast<long long>(c.responses_5xx),
               static_cast<long long>(c.malformed),
               static_cast<long long>(c.drain_refused),
               static_cast<long long>(c.stragglers_cancelled));
  return 0;
}
