// Clio-style schema mapping: transforms a DBLP-like source document into an
// author-centric target schema with a nested mapping query, exactly the
// application class the paper evaluates in Table 5 (Section 1, Figure 1).
//
//   $ ./build/examples/clio_mapping [level]   (level = 2, 3, or 4)
#include <chrono>
#include <iostream>

#include "src/clio/clio.h"
#include "src/engine/engine.h"

int main(int argc, char** argv) {
  int level = argc > 1 ? atoi(argv[1]) : 3;
  if (level < 2 || level > 4) {
    std::cerr << "level must be 2, 3, or 4\n";
    return 1;
  }

  xqc::ClioOptions opts;
  opts.target_bytes = 64 * 1024;
  xqc::Result<xqc::NodePtr> doc = xqc::GenerateDblpDocument(opts);
  if (!doc.ok()) {
    std::cerr << doc.status().ToString() << "\n";
    return 1;
  }
  xqc::DynamicContext ctx;
  ctx.BindVariable(xqc::Symbol("dblp"), {xqc::Item(doc.value())});

  xqc::Engine engine;
  const std::string& query = xqc::ClioQuery(level);
  std::cout << "Mapping query N" << level << ":\n" << query << "\n\n";

  // Show what the optimizer does with the nested mapping blocks.
  xqc::Result<xqc::PreparedQuery> optimized = engine.Prepare(query);
  if (!optimized.ok()) {
    std::cerr << optimized.status().ToString() << "\n";
    return 1;
  }
  const xqc::OptimizerStats& s = optimized.value().optimizer_stats();
  std::cout << "Unnesting: " << s.insert_group_by << " group-bys, "
            << s.insert_outer_join << " outer joins introduced\n\n";

  using Clock = std::chrono::steady_clock;
  auto time_config = [&](const char* name, xqc::EngineOptions options,
                         std::string* out) {
    xqc::Result<xqc::PreparedQuery> q = engine.Prepare(query, options);
    auto t0 = Clock::now();
    xqc::Result<std::string> r = q.value().ExecuteToString(&ctx);
    double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    printf("  %-28s %9.2f ms\n", name, ms);
    *out = r.ok() ? r.value() : "error";
  };

  std::string naive, fast;
  time_config("nested-loop evaluation", {true, false, xqc::JoinImpl::kNestedLoop},
              &naive);
  time_config("unnested + XQuery hash join", {true, true, xqc::JoinImpl::kHash},
              &fast);
  if (naive != fast) {
    std::cerr << "result mismatch between configurations!\n";
    return 1;
  }

  std::cout << "\nMapped output (first 400 chars):\n"
            << fast.substr(0, std::min<size_t>(400, fast.size())) << "...\n";
  return 0;
}
