// Tests for the lightweight schema facility: element/attribute typing
// rules, derivation, validation annotation, and the interaction with the
// algebra's type operators (Validate / TypeMatches / TypeAssert /
// element(*,Type) tests) — the machinery behind the paper's Q8 variant.
#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/types/schema.h"
#include "src/xmark/xmark.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

Schema TestSchema() {
  Schema s;
  s.AddElementRule(Symbol("closed_auction"), Symbol("Auction"));
  s.AddElementRule(Symbol("seller"), Symbol("Seller"));
  s.AddElementRule(Symbol("seller"), Symbol("USSeller"), Symbol("country"),
                   "US");
  s.AddDerivation(Symbol("USSeller"), Symbol("Seller"));
  s.AddAttributeRule(Symbol("closed_auction"), Symbol("price"),
                     AtomicType::kDecimal);
  return s;
}

TEST(SchemaTest, DerivationIsReflexiveAndTransitive) {
  Schema s;
  s.AddDerivation(Symbol("C"), Symbol("B"));
  s.AddDerivation(Symbol("B"), Symbol("A"));
  EXPECT_TRUE(s.DerivesFrom(Symbol("A"), Symbol("A")));
  EXPECT_TRUE(s.DerivesFrom(Symbol("C"), Symbol("B")));
  EXPECT_TRUE(s.DerivesFrom(Symbol("C"), Symbol("A")));
  EXPECT_FALSE(s.DerivesFrom(Symbol("A"), Symbol("C")));
  EXPECT_FALSE(s.DerivesFrom(Symbol("X"), Symbol("A")));
}

TEST(SchemaTest, DerivationCycleGuard) {
  Schema s;
  s.AddDerivation(Symbol("A"), Symbol("B"));
  s.AddDerivation(Symbol("B"), Symbol("A"));
  EXPECT_FALSE(s.DerivesFrom(Symbol("A"), Symbol("Z")));  // terminates
}

TEST(SchemaTest, AttributeRefinedRuleWins) {
  Schema s = TestSchema();
  NodePtr us = MustParseXml("<seller country=\"US\"/>")->children[0];
  NodePtr de = MustParseXml("<seller country=\"DE\"/>")->children[0];
  NodePtr plain = MustParseXml("<seller/>")->children[0];
  EXPECT_EQ(s.TypeForElement(*us).str(), "USSeller");
  EXPECT_EQ(s.TypeForElement(*de).str(), "Seller");
  EXPECT_EQ(s.TypeForElement(*plain).str(), "Seller");
}

TEST(SchemaTest, ValidateAnnotatesRecursively) {
  Schema s = TestSchema();
  NodePtr doc = MustParseXml(
      "<closed_auction price=\"9.5\"><seller country=\"US\"/>"
      "<seller country=\"JP\"/></closed_auction>");
  Result<NodePtr> v = s.Validate(doc->children[0]);
  ASSERT_OK(v);
  const Node& ca = *v.value();
  EXPECT_EQ(ca.type_annotation.str(), "Auction");
  EXPECT_EQ(ca.children[0]->type_annotation.str(), "USSeller");
  EXPECT_EQ(ca.children[1]->type_annotation.str(), "Seller");
  // Attribute typed as xs:decimal -> typed atomization.
  EXPECT_EQ(ca.attributes[0]->type_annotation.str(), "xs:decimal");
  Sequence atoms = Atomize({Item(ca.attributes[0])}).value();
  EXPECT_EQ(atoms[0].atomic().type(), AtomicType::kDecimal);
  EXPECT_EQ(atoms[0].atomic().AsDouble(), 9.5);
}

TEST(SchemaTest, ValidateIsACopy) {
  Schema s = TestSchema();
  NodePtr orig = MustParseXml("<closed_auction/>")->children[0];
  Result<NodePtr> v = s.Validate(orig);
  ASSERT_OK(v);
  EXPECT_NE(v.value().get(), orig.get());
  EXPECT_TRUE(orig->type_annotation.empty());  // source untouched
}

// ---- through the engine -------------------------------------------------------

class SchemaQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = TestSchema();
    ctx_.set_schema(&schema_);
    ctx_.RegisterDocument("a.xml", MustParseXml(R"(
      <auctions>
        <closed_auction price="10"><seller country="US"/></closed_auction>
        <closed_auction price="20"><seller country="DE"/></closed_auction>
        <closed_auction price="30"><seller country="US"/></closed_auction>
      </auctions>)"));
  }
  std::string Run(const std::string& q) {
    return testutil::InterpToString("let $d := doc(\"a.xml\") return " + q,
                                    &ctx_);
  }
  Schema schema_;
  DynamicContext ctx_;
};

TEST_F(SchemaQueryTest, ValidateThenTypeTest) {
  EXPECT_EQ(Run("count(validate { $d//closed_auction })"), "3");
  EXPECT_EQ(Run("count((validate { $d//closed_auction })/element(*,USSeller))"),
            "2");
  EXPECT_EQ(Run("count((validate { $d//closed_auction })/element(*,Seller))"),
            "3");  // USSeller derives from Seller
  // Without validation there are no annotations to match.
  EXPECT_EQ(Run("count($d//closed_auction/element(*,USSeller))"), "0");
}

TEST_F(SchemaQueryTest, InstanceOfWithSchemaTypes) {
  EXPECT_EQ(Run("(validate { ($d//closed_auction)[1] }) instance of "
                "element(*,Auction)"),
            "true");
  EXPECT_EQ(Run("(validate { ($d//closed_auction)[1] }) instance of "
                "element(*,USSeller)"),
            "false");
}

TEST_F(SchemaQueryTest, TypeAssertionInLetClause) {
  // The paper's `let $a as element(*,Auction)* := ...` pattern.
  EXPECT_EQ(
      Run("let $a as element(*,Auction)* := validate { $d//closed_auction } "
          "return count($a)"),
      "3");
  EXPECT_EQ(Run("let $a as element(*,USSeller)+ := validate "
                "{ $d//closed_auction } return count($a)"),
            "ERROR:XPTY0004");
}

TEST_F(SchemaQueryTest, ValidateWithoutSchemaIsIdentity) {
  DynamicContext bare;
  bare.RegisterDocument("a.xml", MustParseXml("<a><b/></a>"));
  EXPECT_EQ(testutil::InterpToString(
                "count(validate { doc(\"a.xml\")//b })", &bare),
            "1");
}

TEST(XMarkSchemaTest, MatchesGeneratedData) {
  Schema s = XMarkSchema();
  XMarkOptions opts;
  opts.target_bytes = 32 * 1024;
  Result<NodePtr> doc = GenerateXMarkDocument(opts);
  ASSERT_OK(doc);
  DynamicContext ctx;
  ctx.set_schema(&s);
  ctx.BindVariable(Symbol("auction"), {Item(doc.value())});
  Engine engine;
  auto run = [&](const std::string& q) {
    auto pq = engine.Prepare("declare variable $auction external; " + q);
    EXPECT_TRUE(pq.ok()) << pq.status().ToString();
    if (!pq.ok()) return std::string();
    auto r = pq.value().ExecuteToString(&ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value() : std::string();
  };
  // Some but not all sellers are US sellers.
  std::string total = run("count((validate { $auction//closed_auction })"
                          "/element(*,Seller))");
  std::string us = run("count((validate { $auction//closed_auction })"
                       "/element(*,USSeller))");
  EXPECT_NE(total, "0");
  EXPECT_NE(us, total);
}

}  // namespace
}  // namespace xqc
