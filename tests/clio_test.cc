// Clio substrate tests: generator structure, the N2/N3/N4 mapping queries
// differentially across configurations, and the unnesting behaviour the
// paper's Table 5 depends on (nested blocks inside constructors become
// GroupBy + join plans).
#include <gtest/gtest.h>

#include "src/clio/clio.h"
#include "src/engine/engine.h"
#include "test_util.h"

namespace xqc {
namespace {

TEST(ClioGenerator, DeterministicAndSized) {
  ClioOptions opts;
  opts.target_bytes = 64 * 1024;
  std::string a = GenerateDblpXml(opts);
  EXPECT_EQ(a, GenerateDblpXml(opts));
  EXPECT_GT(a.size(), opts.target_bytes / 2);
  EXPECT_LT(a.size(), opts.target_bytes * 2);
}

TEST(ClioGenerator, KeysAreConsistent) {
  ClioOptions opts;
  opts.target_bytes = 32 * 1024;
  Result<NodePtr> doc = GenerateDblpDocument(opts);
  ASSERT_OK(doc);
  DynamicContext ctx;
  ctx.BindVariable(Symbol("dblp"), {Item(doc.value())});
  Engine engine;
  auto truth = [&](const std::string& body) {
    auto q = engine.Prepare("declare variable $dblp external; " + body);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    auto r = q.value().ExecuteToString(&ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r.value() : std::string();
  };
  // Every inproceedings booktitle has a proceedings entry for its year.
  EXPECT_EQ(truth("every $p in $dblp/dblp/inproceedings satisfies "
                  "exists($dblp/dblp/proceedings[booktitle = $p/booktitle]"
                  "[year = $p/year])"),
            "true");
  // Every paper author appears in the author registry.
  EXPECT_EQ(truth("every $p in $dblp/dblp/inproceedings/author satisfies "
                  "exists($dblp/dblp/authorinfo[name = $p/text()])"),
            "true");
  // Every proceedings publisher exists.
  EXPECT_EQ(truth("every $pr in $dblp/dblp/proceedings satisfies "
                  "exists($dblp/dblp/publisher[pname = $pr/pubname])"),
            "true");
}

class ClioQueryTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    ClioOptions opts;
    opts.target_bytes = 24 * 1024;
    Result<NodePtr> doc = GenerateDblpDocument(opts);
    ASSERT_TRUE(doc.ok());
    doc_ = new NodePtr(doc.take());
  }
  static void TearDownTestSuite() {
    delete doc_;
    doc_ = nullptr;
  }
  static NodePtr* doc_;
};

NodePtr* ClioQueryTest::doc_ = nullptr;

TEST_P(ClioQueryTest, AllConfigsAgree) {
  int level = GetParam();
  DynamicContext ctx;
  ctx.BindVariable(Symbol("dblp"), {Item(*doc_)});
  Engine engine;
  const EngineOptions kConfigs[] = {
      {false, false, JoinImpl::kNestedLoop},
      {true, false, JoinImpl::kNestedLoop},
      {true, true, JoinImpl::kNestedLoop},
      {true, true, JoinImpl::kHash},
      {true, true, JoinImpl::kSort},
  };
  std::string reference;
  for (size_t i = 0; i < std::size(kConfigs); i++) {
    Result<PreparedQuery> q = engine.Prepare(ClioQuery(level), kConfigs[i]);
    ASSERT_TRUE(q.ok()) << "N" << level << ": " << q.status().ToString();
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    ASSERT_TRUE(r.ok()) << "N" << level << " config " << i << ": "
                        << r.status().ToString();
    if (i == 0) {
      reference = r.value();
    } else {
      ASSERT_EQ(r.value(), reference) << "N" << level << " config " << i;
    }
  }
  EXPECT_NE(reference.find("<authorDB>"), std::string::npos);
  EXPECT_NE(reference.find("<pubs>"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Mappings, ClioQueryTest, ::testing::Values(2, 3, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "N" + std::to_string(info.param);
                         });

TEST(ClioPlans, NestedConstructorBlocksUnnestIntoJoins) {
  // The whole point of Table 5: Clio-style queries whose nested FLWORs sit
  // inside element constructors must still reach GroupBy + join plans.
  Engine engine;
  for (int level : {2, 3, 4}) {
    Result<PreparedQuery> q = engine.Prepare(ClioQuery(level));
    ASSERT_OK(q);
    std::string plan = q.value().ExplainPlan(false);
    EXPECT_NE(plan.find("GroupBy"), std::string::npos)
        << "N" << level << ": " << plan;
    EXPECT_NE(plan.find("LOuterJoin"), std::string::npos)
        << "N" << level << ": " << plan;
    const OptimizerStats& s = q.value().optimizer_stats();
    EXPECT_GE(s.insert_group_by, level - 1) << "N" << level;
    EXPECT_GE(s.insert_outer_join, 1) << "N" << level;
  }
  // N4 must produce strictly more joins than N2.
  Result<PreparedQuery> q2 = engine.Prepare(ClioQuery(2));
  Result<PreparedQuery> q4 = engine.Prepare(ClioQuery(4));
  ASSERT_OK(q2);
  ASSERT_OK(q4);
  EXPECT_GT(q4.value().optimizer_stats().insert_outer_join,
            q2.value().optimizer_stats().insert_outer_join);
}

}  // namespace
}  // namespace xqc
