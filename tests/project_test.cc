// Tests for TreeProject (Table 1's projection operator): path parsing,
// pruning semantics, and end-to-end equivalence — queries over a projected
// document must return the same result as over the full document when the
// projection covers the query's paths.
#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/xml/project.h"
#include "src/xml/serializer.h"
#include "src/xmark/xmark.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

TEST(ProjectionPathTest, Parsing) {
  Result<ProjectionPath> p = ParseProjectionPath("site/people/person/@id");
  ASSERT_OK(p);
  ASSERT_EQ(p.value().steps.size(), 4u);
  EXPECT_FALSE(p.value().steps[0].descendant);
  EXPECT_TRUE(p.value().steps[3].attribute);
  EXPECT_EQ(p.value().steps[3].name.str(), "id");

  Result<ProjectionPath> d = ParseProjectionPath("//closed_auction/price");
  ASSERT_OK(d);
  EXPECT_TRUE(d.value().steps[0].descendant);

  Result<ProjectionPath> star = ParseProjectionPath("site/*/person");
  ASSERT_OK(star);
  EXPECT_TRUE(star.value().steps[1].name.empty());

  EXPECT_FALSE(ParseProjectionPath("").ok());
  EXPECT_FALSE(ParseProjectionPath("a/@id/b").ok());
  EXPECT_FALSE(ParseProjectionPath("a/").ok());
}

TEST(ProjectTest, KeepsOnlyMatchingSubtrees) {
  NodePtr doc = MustParseXml(
      "<site><people><person id=\"p0\"><name>A</name><age>3</age></person>"
      "</people><junk><big>stuff</big></junk></site>");
  Result<NodePtr> proj = ProjectTree(doc, {"site/people/person/name"});
  ASSERT_OK(proj);
  EXPECT_EQ(SerializeNode(*proj.value()),
            "<site><people><person><name>A</name></person></people></site>");
}

TEST(ProjectTest, AttributeSteps) {
  NodePtr doc = MustParseXml(
      "<site><person id=\"p0\" x=\"y\"><name>A</name></person></site>");
  Result<NodePtr> proj = ProjectTree(doc, {"site/person/@id"});
  ASSERT_OK(proj);
  EXPECT_EQ(SerializeNode(*proj.value()),
            "<site><person id=\"p0\"/></site>");
}

TEST(ProjectTest, DescendantSteps) {
  NodePtr doc = MustParseXml(
      "<a><b><c><price>1</price></c></b><d><price>2</price></d>"
      "<other>x</other></a>");
  Result<NodePtr> proj = ProjectTree(doc, {"//price"});
  ASSERT_OK(proj);
  EXPECT_EQ(SerializeNode(*proj.value()),
            "<a><b><c><price>1</price></c></b><d><price>2</price></d></a>");
}

TEST(ProjectTest, UnionOfPaths) {
  NodePtr doc = MustParseXml(
      "<s><a><x>1</x></a><b><y>2</y></b><c><z>3</z></c></s>");
  Result<NodePtr> proj = ProjectTree(doc, {"s/a", "s/c/z"});
  ASSERT_OK(proj);
  EXPECT_EQ(SerializeNode(*proj.value()),
            "<s><a><x>1</x></a><c><z>3</z></c></s>");
}

TEST(ProjectTest, EmptyResultWhenNothingMatches) {
  NodePtr doc = MustParseXml("<a><b/></a>");
  Result<NodePtr> proj = ProjectTree(doc, {"nope/nothing"});
  ASSERT_OK(proj);
  EXPECT_EQ(proj.value()->children.size(), 0u);
}

TEST(ProjectTest, QueryEquivalenceOnProjectedXMark) {
  // A query whose paths are covered by the projection returns identical
  // results on the projected document — with a much smaller tree.
  XMarkOptions opts;
  opts.target_bytes = 64 * 1024;
  Result<NodePtr> doc = GenerateXMarkDocument(opts);
  ASSERT_OK(doc);
  Result<NodePtr> proj = ProjectTree(
      doc.value(), {"site/people/person/@id", "site/people/person/name",
                    "//closed_auction/buyer/@person",
                    "//closed_auction/price"});
  ASSERT_OK(proj);

  auto count_nodes = [](const NodePtr& n) {
    std::function<size_t(const Node&)> rec = [&](const Node& x) {
      size_t c = 1 + x.attributes.size();
      for (const NodePtr& k : x.children) c += rec(*k);
      return c;
    };
    return rec(*n);
  };
  EXPECT_LT(count_nodes(proj.value()), count_nodes(doc.value()) / 2);

  Engine engine;
  const std::string query =
      "declare variable $auction external; "
      "for $p in $auction/site/people/person "
      "let $a := for $t in $auction//closed_auction "
      "          where $t/buyer/@person = $p/@id return $t "
      "order by count($a) descending, $p/name "
      "return <r n=\"{$p/name/text()}\" c=\"{count($a)}\" "
      "s=\"{sum(for $t in $a return number($t/price))}\"/>";
  std::string full, projected;
  for (int which = 0; which < 2; which++) {
    DynamicContext ctx;
    ctx.BindVariable(Symbol("auction"),
                     {Item(which == 0 ? doc.value() : proj.value())});
    Result<PreparedQuery> q = engine.Prepare(query);
    ASSERT_OK(q);
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    ASSERT_OK(r);
    (which == 0 ? full : projected) = r.value();
  }
  EXPECT_EQ(full, projected);
  EXPECT_FALSE(full.empty());
}

}  // namespace
}  // namespace xqc
