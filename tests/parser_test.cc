// Tests for the XQuery lexer and parser: token-level behaviour, operator
// precedence, contextual keywords, direct constructors, prologs, sequence
// types, and error reporting.
#include <gtest/gtest.h>

#include "src/xquery/lexer.h"
#include "src/xquery/parser.h"
#include "test_util.h"

namespace xqc {
namespace {

// ---- lexer ------------------------------------------------------------------

std::vector<Token> LexAll(const std::string& text) {
  Lexer lex(text);
  std::vector<Token> out;
  while (true) {
    Result<Token> t = lex.Next();
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    if (!t.ok() || t.value().kind == TokKind::kEOF) break;
    out.push_back(t.take());
  }
  return out;
}

TEST(LexerTest, NumbersAndNames) {
  auto toks = LexAll("42 4.5 1e3 .5 foo fn:count");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[0].kind, TokKind::kInteger);
  EXPECT_EQ(toks[0].number.AsInt(), 42);
  EXPECT_EQ(toks[1].kind, TokKind::kDecimal);
  EXPECT_EQ(toks[2].kind, TokKind::kDouble);
  EXPECT_EQ(toks[3].kind, TokKind::kDecimal);
  EXPECT_EQ(toks[3].number.AsDouble(), 0.5);
  EXPECT_EQ(toks[4].kind, TokKind::kName);
  EXPECT_EQ(toks[5].text, "fn:count");
}

TEST(LexerTest, StringsWithEscapes) {
  auto toks = LexAll("\"he said \"\"hi\"\"\" 'don''t' \"&lt;&amp;\"");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "he said \"hi\"");
  EXPECT_EQ(toks[1].text, "don't");
  EXPECT_EQ(toks[2].text, "<&");
}

TEST(LexerTest, MultiCharOperators) {
  auto toks = LexAll(":= :: // .. << >> <= >= != |");
  std::vector<TokKind> kinds;
  for (const Token& t : toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokKind>{
                       TokKind::kAssign, TokKind::kColonColon,
                       TokKind::kSlashSlash, TokKind::kDotDot, TokKind::kLtLt,
                       TokKind::kGtGt, TokKind::kLe, TokKind::kGe,
                       TokKind::kNe, TokKind::kBar}));
}

TEST(LexerTest, NestedComments) {
  auto toks = LexAll("1 (: outer (: inner :) still :) 2");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[1].number.AsInt(), 2);
}

TEST(LexerTest, Errors) {
  Lexer unterminated("\"abc");
  EXPECT_FALSE(unterminated.Next().ok());
  Lexer comment("(: never closed");
  EXPECT_FALSE(comment.Next().ok());
  Lexer bad("#");
  EXPECT_FALSE(bad.Next().ok());
}

// ---- parser: precedence -------------------------------------------------------

std::string ParsePrint(const std::string& text) {
  Result<ExprPtr> e = ParseXQueryExpr(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString() << " for: " << text;
  if (!e.ok()) return "";
  return ExprToString(*e.value());
}

TEST(ParserPrecedence, ArithmeticBindsTighterThanComparison) {
  EXPECT_EQ(ParsePrint("1 + 2 * 3"), "(1 plus (2 times 3))");
  EXPECT_EQ(ParsePrint("1 + 2 = 3"), "((1 plus 2) =[eq] 3)");
  EXPECT_EQ(ParsePrint("1 < 2 and 3 > 2"), "((1 =[lt] 2) and (3 =[gt] 2))");
  EXPECT_EQ(ParsePrint("1 = 1 or 2 = 2 and 3 = 3"),
            "((1 =[eq] 1) or ((2 =[eq] 2) and (3 =[eq] 3)))");
}

TEST(ParserPrecedence, RangeAndUnary) {
  EXPECT_EQ(ParsePrint("1 to 2 + 3"), "1 to (2 plus 3)");
  EXPECT_EQ(ParsePrint("-1 + 2"), "(-(1) plus 2)");
  EXPECT_EQ(ParsePrint("2 + -3"), "(2 plus -(3))");
}

TEST(ParserPrecedence, StarIsMultiplicationAfterOperand) {
  EXPECT_EQ(ParsePrint("2 * 3"), "(2 times 3)");
  // ...and a wildcard in step position.
  EXPECT_EQ(ParsePrint("$x/*"), "$x/child::element()");
}

TEST(ParserPrecedence, TypeExpressionsChain) {
  EXPECT_EQ(ParsePrint("1 instance of xs:integer"),
            "1 instance of xs:integer");
  EXPECT_EQ(ParsePrint("\"1\" cast as xs:integer + 1"),
            "(\"1\" cast as xs:integer plus 1)");
}

// ---- parser: contextual keywords ----------------------------------------------

TEST(ParserKeywords, KeywordsAreValidElementNames) {
  // 'for', 'if', 'element' etc. in step position are name tests.
  EXPECT_EQ(ParsePrint("$x/for"), "$x/child::element(for)");
  EXPECT_EQ(ParsePrint("$x/return"), "$x/child::element(return)");
  EXPECT_EQ(ParsePrint("$x/if"), "$x/child::element(if)");
}

TEST(ParserKeywords, IfWithoutParenIsAName) {
  // `if` only starts a conditional when followed by '('.
  Result<ExprPtr> e = ParseXQueryExpr("if (1) then 2 else 3");
  ASSERT_OK(e);
  EXPECT_EQ(e.value()->kind, ExprKind::kIf);
}

// ---- parser: paths -------------------------------------------------------------

TEST(ParserPaths, AxesAndAbbreviations) {
  EXPECT_EQ(ParsePrint("$x/child::a"), "$x/child::element(a)");
  EXPECT_EQ(ParsePrint("$x/@id"), "$x/attribute::attribute(id)");
  EXPECT_EQ(ParsePrint("$x/.."), "$x/parent::node()");
  EXPECT_EQ(ParsePrint("$x/descendant-or-self::node()"),
            "$x/descendant-or-self::node()");
  EXPECT_EQ(ParsePrint("$x//a"),
            "$x/descendant-or-self::node()/child::element(a)");
  EXPECT_EQ(ParsePrint("$x/ancestor::b"), "$x/ancestor::element(b)");
  EXPECT_EQ(ParsePrint("$x/following-sibling::*"),
            "$x/following-sibling::element()");
}

TEST(ParserPaths, KindTests) {
  EXPECT_EQ(ParsePrint("$x/text()"), "$x/child::text()");
  EXPECT_EQ(ParsePrint("$x/node()"), "$x/child::node()");
  EXPECT_EQ(ParsePrint("$x/comment()"), "$x/child::comment()");
  EXPECT_EQ(ParsePrint("$x/element(*,Auction)"),
            "$x/child::element(*,Auction)");
  EXPECT_EQ(ParsePrint("$x/element(person)"), "$x/child::element(person)");
}

TEST(ParserPaths, PredicatesAttachToSteps) {
  Result<ExprPtr> e = ParseXQueryExpr("$x/a[1][@k = 2]");
  ASSERT_OK(e);
  const Expr& path = *e.value();
  ASSERT_EQ(path.kind, ExprKind::kPath);
  const Expr& step = *path.children[1];
  ASSERT_EQ(step.kind, ExprKind::kAxisStep);
  EXPECT_EQ(step.children.size(), 2u);  // two predicates on the step
}

TEST(ParserPaths, FilterOnPrimary) {
  Result<ExprPtr> e = ParseXQueryExpr("(1,2,3)[2]");
  ASSERT_OK(e);
  EXPECT_EQ(e.value()->kind, ExprKind::kFilter);
}

TEST(ParserPaths, LeadingSlash) {
  EXPECT_EQ(ParsePrint("/a"), "fn:root(.)/child::element(a)");
  EXPECT_EQ(ParsePrint("//a"),
            "fn:root(.)/descendant-or-self::node()/child::element(a)");
}

// ---- parser: constructors -------------------------------------------------------

TEST(ParserConstructors, DirectNested) {
  EXPECT_EQ(ParsePrint("<a x=\"1\"><b/>{2}</a>"),
            "element a {attribute x {\"1\"}, element b {}, 2}");
}

TEST(ParserConstructors, BoundaryWhitespaceStripped) {
  EXPECT_EQ(ParsePrint("<a>\n  <b/>\n</a>"), "element a {element b {}}");
  // Non-whitespace text is kept.
  EXPECT_EQ(ParsePrint("<a> x <b/></a>"),
            "element a {text {\" x \"}, element b {}}");
}

TEST(ParserConstructors, EntityAndCharRefs) {
  EXPECT_EQ(ParsePrint("<a>&lt;&amp;&gt;</a>"),
            "element a {text {\"<&>\"}}");
}

TEST(ParserConstructors, OperatorAmbiguityWithLess) {
  // '<' in operand position is a comparison; in expression-start position
  // it opens a constructor.
  EXPECT_EQ(ParsePrint("1 < 2"), "(1 =[lt] 2)");
  Result<ExprPtr> e = ParseXQueryExpr("<a/>");
  ASSERT_OK(e);
  EXPECT_EQ(e.value()->kind, ExprKind::kCompElement);
}

TEST(ParserConstructors, CommentAndCdataInContent) {
  EXPECT_EQ(ParsePrint("<a><!--c--><![CDATA[<raw>]]></a>"),
            "element a {comment {\"c\"}, text {\"<raw>\"}}");
}

// ---- parser: FLWOR odds and ends -------------------------------------------------

TEST(ParserFLWOR, MultipleClauses) {
  Result<ExprPtr> e = ParseXQueryExpr(
      "for $a in 1 to 3, $b at $i in (4,5) let $c := $a + $b "
      "where $c > 5 order by $c descending empty least return $c");
  ASSERT_OK(e);
  const Expr& f = *e.value();
  ASSERT_EQ(f.kind, ExprKind::kFLWOR);
  ASSERT_EQ(f.clauses.size(), 5u);
  EXPECT_EQ(f.clauses[0].kind, Clause::Kind::kFor);
  EXPECT_EQ(f.clauses[1].pos_var.str(), "i");
  EXPECT_EQ(f.clauses[2].kind, Clause::Kind::kLet);
  EXPECT_EQ(f.clauses[3].kind, Clause::Kind::kWhere);
  ASSERT_EQ(f.clauses[4].specs.size(), 1u);
  EXPECT_TRUE(f.clauses[4].specs[0].descending);
  EXPECT_FALSE(f.clauses[4].specs[0].empty_greatest);
}

TEST(ParserFLWOR, InterleavedForAndLet) {
  Result<ExprPtr> e = ParseXQueryExpr(
      "for $a in (1) let $b := 2 for $c in (3) return $a");
  ASSERT_OK(e);
  ASSERT_EQ(e.value()->clauses.size(), 3u);
  EXPECT_EQ(e.value()->clauses[2].kind, Clause::Kind::kFor);
}

// ---- parser: prolog ---------------------------------------------------------------

TEST(ParserProlog, FunctionsVariablesAndIgnorables) {
  Result<Query> q = ParseXQuery(
      "declare namespace foo = \"http://example.org\"; "
      "declare boundary-space strip; "
      "import schema \"x\"; "
      "declare variable $v as xs:integer := 5; "
      "declare variable $ext external; "
      "declare function local:f($x as xs:integer*, $y) as xs:integer "
      "{ count($x) + $y }; "
      "local:f((1,2), $v)");
  ASSERT_OK(q);
  ASSERT_EQ(q.value().variables.size(), 2u);
  EXPECT_NE(q.value().variables[0].expr, nullptr);
  EXPECT_EQ(q.value().variables[1].expr, nullptr);  // external
  ASSERT_EQ(q.value().functions.size(), 1u);
  const FunctionDecl& f = q.value().functions[0];
  EXPECT_EQ(f.name.str(), "local:f");
  ASSERT_EQ(f.params.size(), 2u);
  ASSERT_TRUE(f.params[0].second.has_value());
  EXPECT_EQ(f.params[0].second->ToString(), "xs:integer*");
  EXPECT_FALSE(f.params[1].second.has_value());
  ASSERT_TRUE(f.return_type.has_value());
}

// ---- sequence types -----------------------------------------------------------------

TEST(ParserSequenceTypes, AllForms) {
  EXPECT_EQ(ParseSequenceTypeString("xs:integer").value().ToString(),
            "xs:integer");
  EXPECT_EQ(ParseSequenceTypeString("xs:string?").value().ToString(),
            "xs:string?");
  EXPECT_EQ(ParseSequenceTypeString("item()*").value().ToString(), "item()*");
  EXPECT_EQ(ParseSequenceTypeString("node()+").value().ToString(), "node()+");
  EXPECT_EQ(ParseSequenceTypeString("element(*,Auction)*").value().ToString(),
            "element(*,Auction)*");
  EXPECT_EQ(ParseSequenceTypeString("attribute(id)").value().ToString(),
            "attribute(id)");
  EXPECT_EQ(ParseSequenceTypeString("empty-sequence()").value().ToString(),
            "empty-sequence()");
  EXPECT_FALSE(ParseSequenceTypeString("wibble").ok());
}

// ---- error reporting ------------------------------------------------------------------

TEST(ParserErrors, ReportLineAndAreStatusNotCrash) {
  for (const char* bad :
       {"for $x in", "1 +", "<a>", "<a></b>", "if (1) then 2",
        "some $x satisfies 1", "typeswitch (1) case xs:integer return 2",
        "declare function f() { 1 }", "$", "let $x 5 return $x",
        "for x in (1) return x", "((((", "1 )", "element {1", "validate {"}) {
    Result<Query> q = ParseXQuery(bad);
    EXPECT_FALSE(q.ok()) << "should fail: " << bad;
    if (!q.ok()) {
      EXPECT_EQ(q.status().code(), "XPST0003") << bad;
    }
  }
}

}  // namespace
}  // namespace xqc
