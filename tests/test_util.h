// Shared helpers for the xqc test suites.
#ifndef XQC_TESTS_TEST_UTIL_H_
#define XQC_TESTS_TEST_UTIL_H_

#include <string>

#include "src/base/status.h"
#include "src/runtime/context.h"
#include "src/xml/item.h"

#define ASSERT_OK(expr)                                      \
  do {                                                       \
    const auto& _st = (expr);                                \
    ASSERT_TRUE(_st.ok()) << _st.status().ToString();        \
  } while (0)

#define EXPECT_OK(expr)                                      \
  do {                                                       \
    const auto& _st = (expr);                                \
    EXPECT_TRUE(_st.ok()) << _st.status().ToString();        \
  } while (0)

namespace xqc {
namespace testutil {

/// Parses XML, asserting success.
NodePtr MustParseXml(const std::string& xml);

/// Runs a query through the BASELINE interpreter against a context.
/// Asserts parse/normalize success; returns the evaluation result.
Result<Sequence> Interp(const std::string& query, DynamicContext* ctx);

/// Same but serializes the result; errors return "ERROR:<code>".
std::string InterpToString(const std::string& query, DynamicContext* ctx);

/// Convenience: query with no context.
std::string InterpToString(const std::string& query);

}  // namespace testutil
}  // namespace xqc

#endif  // XQC_TESTS_TEST_UTIL_H_
