// Concurrency tests: the thread-safety contract (DESIGN.md "Threading
// model") under real parallelism, plus the QueryService serving layer.
//
//  * Shared immutable state: one document tree and one PreparedQuery used
//    from many threads must behave exactly like serial execution.
//  * The global symbol interner under concurrent Prepare storms.
//  * A mixed stress workload with random mid-stream cancellations, tight
//    deadlines, and injected guard trips — every outcome must be either
//    the correct result or a clean XQC00xx guard status.
//  * QueryService: admission control (XQC0007 fast-fail), end-to-end
//    deadlines, transient-congestion retry, and prompt shutdown
//    cancellation.
//
// The whole suite is TSan-clean: scripts/check.sh runs it under
// -fsanitize=thread, which turns any data race these scenarios reach into
// a hard failure rather than an unlucky flake.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/service/query_service.h"
#include "src/store/document_store.h"
#include "src/store/io_fault.h"
#include "src/xml/serializer.h"
#include "src/xml/xml_parser.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

const char* kAuctionXml = R"(
  <site>
    <people>
      <person id="p0"><name>Ann</name><age>31</age></person>
      <person id="p1"><name>Bob</name><age>25</age></person>
      <person id="p2"><name>Cyd</name><age>44</age></person>
      <person id="p3"><name>Dan</name><age>19</age></person>
    </people>
    <orders>
      <order id="o0" buyer="p0"><amount>10</amount></order>
      <order id="o1" buyer="p2"><amount>25</amount></order>
      <order id="o2" buyer="p0"><amount>40</amount></order>
      <order id="o3" buyer="p9"><amount>5</amount></order>
    </orders>
  </site>)";

// A query that runs effectively forever unless a guard stops it — used to
// pin workers and to test cancellation latency.
const char* kUnboundedQuery =
    "count(for $a in 1 to 1000000, $b in 1 to 1000000 return 1)";

std::string DeclDoc(const std::string& body) {
  return "declare variable $doc external; " + body;
}

DynamicContext MakeCtx(const NodePtr& doc) {
  DynamicContext ctx;
  ctx.BindVariable(Symbol("doc"), {Item(doc)});
  return ctx;
}

/// Submits `query` under a caller-held token and blocks until a worker has
/// actually picked it up (bind_context runs on the worker thread, before
/// execution), so tests can pin workers deterministically.
std::future<QueryResponse> SubmitAndWaitStart(QueryService* service,
                                              const std::string& query,
                                              CancellationToken token) {
  auto started = std::make_shared<std::promise<void>>();
  std::future<void> started_future = started->get_future();
  QueryRequest req;
  req.query_text = query;
  req.cancel = std::move(token);
  req.bind_context = [started,
                      fired = std::make_shared<std::atomic<bool>>(false)](
                         DynamicContext*) {
    if (!fired->exchange(true)) started->set_value();
  };
  std::future<QueryResponse> f = service->Submit(std::move(req));
  // A rejected submission completes synchronously and never runs
  // bind_context; only wait for admitted ones.
  if (f.wait_for(std::chrono::milliseconds(0)) != std::future_status::ready) {
    started_future.wait();
  }
  return f;
}

// ---- shared immutable state across raw threads -----------------------------

TEST(Concurrency, ConcurrentPrepareInternsSymbolsSafely) {
  // Prepare storms from many threads hammer the global symbol interner
  // with a mix of fresh names (per-thread element/variable spellings) and
  // shared ones. Every thread then executes its own plan and checks the
  // result, which exercises the lock-free Symbol::str() read path too.
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([t, &failures] {
      Engine engine;
      for (int i = 0; i < kQueriesPerThread; i++) {
        std::string tag = "e" + std::to_string(t) + "x" + std::to_string(i);
        std::string query = "for $v" + tag + " in (1,2,3) return <" + tag +
                            ">{$v" + tag + " * 2}</" + tag + ">";
        Result<PreparedQuery> q = engine.Prepare(query);
        if (!q.ok()) {
          failures++;
          continue;
        }
        DynamicContext ctx;
        Result<std::string> r = q.value().ExecuteToString(&ctx);
        std::string want = "<" + tag + ">2</" + tag + "><" + tag + ">4</" +
                           tag + "><" + tag + ">6</" + tag + ">";
        if (!r.ok() || r.value() != want) failures++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Concurrency, SharedPreparedQueryAgreesWithSerialExecution) {
  // One immutable plan, N threads, each with a private DynamicContext over
  // the same shared document tree: every execution must equal the serial
  // reference (the satellite oracle for PreparedQuery reuse).
  NodePtr doc = MustParseXml(kAuctionXml);
  const std::string query = DeclDoc(
      "for $p in $doc//person "
      "let $a := for $t in $doc//order where $t/@buyer = $p/@id return $t "
      "order by string($p/@id) "
      "return (string($p/@id), count($a), sum(for $t in $a "
      "return number($t/amount)))");
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(query);
  ASSERT_OK(q);
  const PreparedQuery& plan = q.value();

  DynamicContext serial_ctx = MakeCtx(doc);
  Result<std::string> serial = plan.ExecuteToString(&serial_ctx);
  ASSERT_OK(serial);

  constexpr int kThreads = 8;
  constexpr int kRunsPerThread = 20;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kRunsPerThread; i++) {
        DynamicContext ctx = MakeCtx(doc);
        Result<std::string> r = plan.ExecuteToString(&ctx);
        if (!r.ok() || r.value() != serial.value()) mismatches++;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  // last_exec_stats must be a coherent snapshot from *some* execution.
  ExecStats stats = plan.last_exec_stats();
  EXPECT_GT(stats.guard_checks + stats.source_tuples, 0);
}

TEST(Concurrency, MixedWorkloadStressWithCancellationAndGuardTrips) {
  // N threads x M queries over a shared document, with every guard
  // mechanism firing at random: tight deadlines, step quotas, injected
  // trips, and a canceller thread revoking random in-flight queries.
  // Invariant: each run either produces the query's correct answer or a
  // clean guard status — never a wrong answer, never a crash.
  NodePtr doc = MustParseXml(kAuctionXml);
  struct Shape {
    std::string query;
    std::string want;
    // True for the shape whose evaluation raises a dynamic error: it must
    // fail with the same XQueryError on every thread, never a wrong value.
    bool runtime_error = false;
  };
  Engine engine;
  std::vector<Shape> shapes = {
      {DeclDoc("count($doc//person)"), "4"},
      {DeclDoc("count(for $p in $doc//person, $t in $doc//order "
               "where $t/@buyer = $p/@id return 1)"),
       "3"},
      {DeclDoc("sum(for $t in $doc//order return number($t/amount))"), "80"},
      {DeclDoc("string-join(for $p in $doc//person order by $p/age "
               "return string($p/name), \",\")"),
       "Dan,Bob,Ann,Cyd"},
      // Long enough to cross many 256-step guard quanta, so deadlines, step
      // quotas, injected trips, and cancellations all actually land. (Note
      // `count(1 to N)` would NOT work here: the range count is computed
      // without iterating, so it performs zero guard checks.)
      {"count(for $x in 1 to 20000 return $x)", "20000"},
      {DeclDoc("count($doc//person[some $t in $doc//order satisfies "
               "$t/@buyer = $p/@id])"),
       "", /*runtime_error=*/true},  // undeclared $p: XPDY0002 at eval time
  };
  // Precompile every shape once; threads share the prepared plans.
  std::vector<std::shared_ptr<const PreparedQuery>> plans;
  for (const Shape& s : shapes) {
    Result<PreparedQuery> q = engine.Prepare(s.query);
    plans.push_back(q.ok() ? std::make_shared<const PreparedQuery>(q.take())
                           : nullptr);
  }

  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  std::atomic<int> wrong{0};
  std::atomic<int> ok_runs{0};
  std::atomic<int> guard_trips{0};
  // Token slots are replaced by workers and read by the canceller; the
  // mutex guards the slot (the token itself is internally thread-safe).
  std::mutex token_mu;
  std::vector<CancellationToken> tokens(kThreads);
  {
    std::lock_guard<std::mutex> lock(token_mu);
    for (auto& t : tokens) t = CancellationToken::Make();
  }
  std::atomic<bool> done{false};

  std::thread canceller([&] {
    // Revoke random threads' tokens on a fast cadence; each worker makes a
    // fresh token after it observes a cancellation.
    uint64_t rng = 12345;
    while (!done.load(std::memory_order_relaxed)) {
      rng = rng * 6364136223846793005ull + 1442695040888963407ull;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      CancellationToken victim;
      {
        std::lock_guard<std::mutex> lock(token_mu);
        victim = tokens[(rng >> 33) % kThreads];
      }
      victim.RequestCancel();
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      uint64_t rng = 0x9e3779b9u * (t + 1);
      auto next = [&rng] {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return rng >> 33;
      };
      for (int i = 0; i < kIters; i++) {
        size_t si = next() % shapes.size();
        if (plans[si] == nullptr) continue;
        GuardLimits limits;
        GuardFaultInjector injector;
        switch (next() % 4) {
          case 0: limits.deadline_ms = 1 + next() % 5; break;
          case 1: limits.max_eval_steps = 256 * (1 + next() % 8); break;
          case 2:
            injector.trip_check_n = 1 + next() % 4;
            injector.trip_code = kGuardMemoryCode;
            break;
          default: break;  // unlimited; only the canceller can stop it
        }
        CancellationToken my_token;
        {
          std::lock_guard<std::mutex> lock(token_mu);
          my_token = tokens[t];
        }
        DynamicContext ctx = MakeCtx(doc);
        Result<Sequence> r =
            plans[si]->Execute(&ctx, limits, my_token, injector);
        if (r.ok()) {
          std::string got = SerializeSequence(r.value());
          if (shapes[si].runtime_error || got != shapes[si].want) {
            wrong++;
          } else {
            ok_runs++;
          }
        } else if (r.status().kind() == StatusKind::kResourceExhausted) {
          guard_trips++;
          if (my_token.cancelled()) {
            std::lock_guard<std::mutex> lock(token_mu);
            tokens[t] = CancellationToken::Make();
          }
        } else if (!(shapes[si].runtime_error &&
                     r.status().kind() == StatusKind::kXQueryError)) {
          wrong++;  // no other error kind is acceptable for these shapes
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  done = true;
  canceller.join();
  EXPECT_EQ(wrong.load(), 0);
  // The workload must actually exercise both paths.
  EXPECT_GT(ok_runs.load(), 0);
  EXPECT_GT(guard_trips.load(), 0);
}

TEST(Concurrency, MidStreamCancellationFromAnotherThread) {
  Engine engine;
  CancellationToken token = CancellationToken::Make();
  EngineOptions opts;
  opts.cancel = token;
  Result<PreparedQuery> guarded =
      engine.Prepare("for $x in 1 to 100000000 return $x", opts);
  ASSERT_OK(guarded);
  DynamicContext ctx;
  Result<ResultStream> rs = guarded.value().ExecuteStream(&ctx);
  ASSERT_OK(rs);
  Item item;
  for (int i = 0; i < 10; i++) {
    Result<bool> has = rs.value().Next(&item);
    ASSERT_OK(has);
    ASSERT_TRUE(has.value());
  }
  std::thread cancel_thread([&] { token.RequestCancel(); });
  cancel_thread.join();
  // The very next pull (unamortized CheckNow) must observe the flag.
  Result<bool> has = rs.value().Next(&item);
  ASSERT_FALSE(has.ok());
  EXPECT_EQ(has.status().code(), "XQC0002");
}

// ---- per-execution document cache and fn:doc-available ---------------------

class DocCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "xqc_doccache_test.xml";
    std::ofstream out(path_);
    out << "<r><a/><a/><a/></r>";
    out.close();
    // Keep tests independent of what earlier tests left in the
    // process-wide store.
    DocumentStore::Global()->Invalidate(path_);
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(DocCacheTest, RepeatedDocCallsParseOncePerExecution) {
  // Store off: this exercises the per-execution cache layer on its own.
  EngineOptions opts;
  opts.use_doc_store = false;
  Engine engine(opts);
  std::string query = "count((doc(\"" + path_ + "\")//a, doc(\"" + path_ +
                      "\")//a, doc(\"" + path_ + "\")//a))";
  Result<PreparedQuery> q = engine.Prepare(query);
  ASSERT_OK(q);
  DynamicContext ctx;
  Result<std::string> r = q.value().ExecuteToString(&ctx);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "9");
  EXPECT_EQ(ctx.doc_parses(), 1);  // three doc() calls, one parse
  // The cache is per-execution: a second run re-parses (no stale files).
  ASSERT_OK(q.value().ExecuteToString(&ctx));
  EXPECT_EQ(ctx.doc_parses(), 2);
}

TEST_F(DocCacheTest, StoreCachesParsesAcrossExecutions) {
  // Store on (the default): the second execution is served from the
  // shared DocumentStore without re-parsing.
  Engine engine;
  std::string query = "count(doc(\"" + path_ + "\")//a)";
  Result<PreparedQuery> q = engine.Prepare(query);
  ASSERT_OK(q);
  DynamicContext ctx;
  ASSERT_OK(q.value().ExecuteToString(&ctx));
  EXPECT_EQ(ctx.doc_parses(), 1);
  ASSERT_OK(q.value().ExecuteToString(&ctx));
  EXPECT_EQ(ctx.doc_parses(), 1);  // store hit, no second parse
  EXPECT_EQ(ctx.doc_store_stats().hits, 1);
}

TEST_F(DocCacheTest, RegisteredDocumentsBypassTheParser) {
  Engine engine;
  DynamicContext ctx;
  ctx.RegisterDocument(path_, MustParseXml("<r><a/></r>"));
  std::string query = "count(doc(\"" + path_ + "\")//a)";
  Result<PreparedQuery> q = engine.Prepare(query);
  ASSERT_OK(q);
  Result<std::string> r = q.value().ExecuteToString(&ctx);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "1");  // the registered tree, not the file
  EXPECT_EQ(ctx.doc_parses(), 0);
}

TEST_F(DocCacheTest, DocAvailable) {
  Engine engine;
  DynamicContext ctx;
  std::string query = "(doc-available(\"" + path_ +
                      "\"), doc-available(\"/no/such/file.xml\"))";
  Result<PreparedQuery> q = engine.Prepare(query);
  ASSERT_OK(q);
  Result<std::string> r = q.value().ExecuteToString(&ctx);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "true false");
  // doc-available leaves the parsed tree in the execution cache: a
  // doc-available + doc pair in one query costs one parse.
  std::string pair_query = "if (doc-available(\"" + path_ +
                           "\")) then count(doc(\"" + path_ +
                           "\")//a) else 0";
  Result<PreparedQuery> q2 = engine.Prepare(pair_query);
  ASSERT_OK(q2);
  DocumentStore::Global()->Invalidate(path_);  // force a real parse
  DynamicContext ctx2;
  Result<std::string> r2 = q2.value().ExecuteToString(&ctx2);
  ASSERT_OK(r2);
  EXPECT_EQ(r2.value(), "3");
  EXPECT_EQ(ctx2.doc_parses(), 1);
}

// ---- DocumentStore under concurrency (run under TSan by check.sh) ----------

// Hammers one private store from many threads with a mix of good,
// malformed, and missing documents while invalidations and budget changes
// race in: singleflight, LRU eviction, quarantine, and negative caching
// all interleave. Every outcome must be a document or a classified error;
// TSan checks the synchronization.
TEST(Concurrency, DocumentStoreStressMixedTraffic) {
  DocumentStoreOptions sopts;
  sopts.max_bytes = 2048;  // tight: constant eviction pressure
  sopts.retry_backoff_ms = 1;
  sopts.negative_ttl_ms = 5;
  DocumentStore store(sopts);

  const std::string dir = ::testing::TempDir();
  std::vector<std::string> good;
  for (int i = 0; i < 4; ++i) {
    std::string p = dir + "xqc_stress_good_" + std::to_string(i) + ".xml";
    std::ofstream out(p);
    out << "<r><a/><a/><a n='" << i << "'/></r>";
    good.push_back(p);
  }
  std::string poison = dir + "xqc_stress_poison.xml";
  {
    std::ofstream out(poison);
    out << "<r><unclosed></r>";
  }
  std::string missing = dir + "xqc_stress_missing.xml";

  constexpr int kThreads = 8;
  constexpr int kIters = 60;
  std::atomic<int> bad_outcomes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        int pick = (t * kIters + i) % 6;
        if (pick < 4) {
          Result<NodePtr> r = store.Load(good[pick]);
          if (!r.ok() || r.value() == nullptr) bad_outcomes.fetch_add(1);
        } else if (pick == 4) {
          Result<NodePtr> r = store.Load(poison);
          if (r.ok() || r.status().kind() != StatusKind::kParseError) {
            bad_outcomes.fetch_add(1);
          }
        } else {
          Result<NodePtr> r = store.Load(missing);
          if (r.ok() || r.status().kind() != StatusKind::kIOError) {
            bad_outcomes.fetch_add(1);
          }
        }
        if (i % 16 == t) store.Invalidate(good[t % 4]);
        if (i % 32 == t) store.counters();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad_outcomes.load(), 0);

  // The store is still coherent after the storm.
  DocumentStore::Counters c = store.counters();
  EXPECT_LE(c.bytes_cached, sopts.max_bytes);
  for (const std::string& p : good) ASSERT_OK(store.Load(p));
  for (const std::string& p : good) std::remove(p.c_str());
  std::remove(poison.c_str());
}

// Many threads singleflight onto one slow document while others' guards
// expire mid-wait: abandonment must never leak the in-flight slot or
// deadlock the leader.
TEST(Concurrency, DocumentStoreSingleflightAbandonmentStress) {
  DocumentStoreOptions sopts;
  sopts.retry_backoff_ms = 1;
  DocumentStore store(sopts);
  const std::string path = ::testing::TempDir() + "xqc_stress_slow.xml";
  {
    std::ofstream out(path);
    out << "<r><a/></r>";
  }

  IoFaultInjector slow;
  slow.mode = IoFaultMode::kSlowRead;
  slow.delay_ms = 80;
  store.set_fault_injector(&slow);

  constexpr int kThreads = 8;
  std::atomic<int> ok{0}, timed_out{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      GuardLimits limits;
      // Half the threads give up mid-flight, half ride it out.
      limits.deadline_ms = (t % 2 == 0) ? 20 : 0;
      QueryGuard guard(limits);
      DocumentStore::LoadOptions opts;
      opts.guard = &guard;
      Result<NodePtr> r = store.Load(path, opts);
      if (r.ok()) {
        ok.fetch_add(1);
      } else if (r.status().code() == kGuardTimeoutCode) {
        timed_out.fetch_add(1);
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  store.set_fault_injector(nullptr);

  EXPECT_EQ(other.load(), 0);
  EXPECT_GE(ok.load(), 1) << "someone must have completed the load";
  // No slot leaked: a fresh load is a plain cache hit.
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  ASSERT_OK(store.Load(path, opts));
  EXPECT_EQ(stats.hits + stats.misses, 1);
  std::remove(path.c_str());
}

// Two stores (two "processes") share one snapshot directory while threads
// race cold misses, snapshot publishes, reads of freshly renamed files,
// memory-cache drops, and disk invalidations. Exercises the tmp-file
// uniqueness, atomic-rename, and quarantine paths under TSan; every load
// must return the right document no matter which tier served it.
TEST(Concurrency, SnapshotTierSharedDirectoryStress) {
  const std::string dir = ::testing::TempDir();
  const std::string snap_dir = dir + "xqc_snap_stress";
  std::system(("rm -rf " + snap_dir).c_str());

  DocumentStoreOptions sopts;
  sopts.retry_backoff_ms = 1;
  sopts.snapshot_dir = snap_dir;
  DocumentStore store_a(sopts);
  DocumentStore store_b(sopts);
  DocumentStore* stores[2] = {&store_a, &store_b};

  std::vector<std::string> docs;
  for (int i = 0; i < 3; ++i) {
    std::string p = dir + "xqc_snap_stress_" + std::to_string(i) + ".xml";
    std::ofstream out(p);
    out << "<r i='" << i << "'><a/><b>doc" << i << "</b></r>";
    docs.push_back(p);
  }

  constexpr int kThreads = 8;
  constexpr int kIters = 40;
  std::atomic<int> bad_outcomes{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      DocumentStore* store = stores[t % 2];
      for (int i = 0; i < kIters; ++i) {
        int pick = (t * kIters + i) % 3;
        Result<NodePtr> r = store->Load(docs[pick]);
        if (!r.ok() || r.value() == nullptr) {
          bad_outcomes.fetch_add(1);
          continue;
        }
        std::string want = "doc" + std::to_string(pick);
        if (r.value()->StringValue() != want) bad_outcomes.fetch_add(1);
        // Churn: force the next load on this store back to the disk tier,
        // and occasionally rip the snapshot out from under everyone.
        if (i % 8 == t % 8) store->DropMemoryCache();
        if (i % 16 == t) store->Invalidate(docs[t % 3]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(bad_outcomes.load(), 0);

  // Both stores are still coherent, and a final cold pass on each round
  // trips neither quarantine nor parser.
  for (DocumentStore* store : stores) {
    store->DropMemoryCache();
    for (const std::string& p : docs) {
      DocStoreStats stats;
      DocumentStore::LoadOptions opts;
      opts.stats = &stats;
      Result<NodePtr> r = store->Load(p, opts);
      ASSERT_OK(r);
      EXPECT_EQ(stats.snapshot_quarantines, 0)
          << "published snapshots must all be internally consistent";
    }
  }
  for (const std::string& p : docs) std::remove(p.c_str());
  std::system(("rm -rf " + snap_dir).c_str());
}

// ---- QueryService ----------------------------------------------------------

TEST(QueryService, ServesMixedTrafficOverASharedDocument) {
  ServiceOptions opts;
  opts.num_threads = 4;
  opts.max_queue = 128;
  QueryService service(opts);
  NodePtr doc = MustParseXml(kAuctionXml);
  service.BindSharedVariable(Symbol("doc"), {Item(doc)});

  struct Case {
    std::string query;
    std::string want;
  };
  std::vector<Case> cases = {
      {DeclDoc("count($doc//person)"), "4"},
      {DeclDoc("sum(for $t in $doc//order return number($t/amount))"), "80"},
      {DeclDoc("count(for $p in $doc//person, $t in $doc//order "
               "where $t/@buyer = $p/@id return 1)"),
       "3"},
      {"count(1 to 50000)", "50000"},
  };
  constexpr int kSubmissions = 60;
  std::vector<std::future<QueryResponse>> futures;
  futures.reserve(kSubmissions);
  for (int i = 0; i < kSubmissions; i++) {
    QueryRequest req;
    req.query_text = cases[i % cases.size()].query;
    futures.push_back(service.Submit(std::move(req)));
  }
  for (int i = 0; i < kSubmissions; i++) {
    QueryResponse resp = futures[i].get();
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.result, cases[i % cases.size()].want);
  }
  QueryService::Counters c = service.counters();
  EXPECT_EQ(c.submitted, kSubmissions);
  EXPECT_EQ(c.completed, kSubmissions);
  EXPECT_EQ(c.rejected, 0);
}

TEST(QueryService, SharedPreparedPlanAcrossWorkers) {
  // The serving-layer variant of the PreparedQuery-reuse oracle: one plan,
  // many workers, per-request contexts.
  Engine engine;
  NodePtr doc = MustParseXml(kAuctionXml);
  Result<PreparedQuery> q = engine.Prepare(
      DeclDoc("for $p in $doc//person order by string($p/@id) "
              "return count($doc//order[@buyer = $p/@id])"));
  ASSERT_OK(q);
  auto plan = std::make_shared<const PreparedQuery>(q.take());

  DynamicContext serial_ctx = MakeCtx(doc);
  Result<std::string> serial = plan->ExecuteToString(&serial_ctx);
  ASSERT_OK(serial);

  ServiceOptions opts;
  opts.num_threads = 4;
  QueryService service(opts);
  service.BindSharedVariable(Symbol("doc"), {Item(doc)});
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 40; i++) {
    QueryRequest req;
    req.prepared = plan;
    futures.push_back(service.Submit(std::move(req)));
  }
  for (auto& f : futures) {
    QueryResponse resp = f.get();
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
    EXPECT_EQ(resp.result, serial.value());
  }
}

TEST(QueryService, AdmissionControlFastFailsWhenSaturated) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_queue = 2;
  opts.admission_wait_ms = 0;  // reject immediately when full
  QueryService service(opts);

  // Pin the single worker with a query only cancellation can stop; the
  // helper returns only after the worker dequeued it, so queue capacity
  // below is exactly max_queue.
  CancellationToken blocker_token = CancellationToken::Make();
  std::future<QueryResponse> blocked =
      SubmitAndWaitStart(&service, kUnboundedQuery, blocker_token);

  // Saturating burst: 2 fit in the queue, the rest must fast-fail XQC0007.
  constexpr int kBurst = 10;
  std::vector<std::future<QueryResponse>> futures;
  auto burst_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kBurst; i++) {
    QueryRequest req;
    req.query_text = "1 + 1";
    futures.push_back(service.Submit(std::move(req)));
  }
  auto burst_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - burst_start)
                      .count();
  // Fast-fail means the whole burst is admitted-or-rejected without
  // waiting on the pinned worker.
  EXPECT_LT(burst_ms, 1000);

  int rejected = 0;
  int pending = 0;
  for (auto& f : futures) {
    // Rejected futures are already fulfilled; admitted ones complete once
    // the blocker is cancelled below.
    if (f.wait_for(std::chrono::milliseconds(0)) ==
        std::future_status::ready) {
      QueryResponse resp = f.get();
      ASSERT_FALSE(resp.status.ok());
      EXPECT_EQ(resp.status.code(), "XQC0007");
      rejected++;
    } else {
      pending++;
    }
  }
  EXPECT_EQ(pending, 2);  // exactly max_queue admitted
  EXPECT_EQ(rejected, kBurst - 2);
  EXPECT_GE(service.counters().rejected, rejected);

  blocker_token.RequestCancel();
  QueryResponse blocked_resp = blocked.get();
  EXPECT_EQ(blocked_resp.status.code(), "XQC0002");
}

TEST(QueryService, ShutdownCancelsInFlightPromptly) {
  ServiceOptions opts;
  opts.num_threads = 2;
  QueryService service(opts);
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 2; i++) {
    futures.push_back(SubmitAndWaitStart(&service, kUnboundedQuery,
                                         CancellationToken()));
  }
  // Both workers are now spinning on the unbounded queries.
  auto start = std::chrono::steady_clock::now();
  service.Shutdown();  // joins workers: returns only after cancellation lands
  auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  // Cancellation is honored within one guard-check quantum (256 steps) —
  // milliseconds in a plain build, vs. the ~10^12 steps the queries would
  // otherwise run. The generous bound keeps the test meaningful while
  // absorbing sanitizer builds on loaded single-core machines, where the
  // slowdown is in executing/unwinding the quantum, not in noticing the
  // cancellation.
  EXPECT_LT(elapsed_ms, 10000);
  for (auto& f : futures) {
    QueryResponse resp = f.get();
    ASSERT_FALSE(resp.status.ok());
    EXPECT_EQ(resp.status.code(), "XQC0002");
  }
  EXPECT_EQ(service.counters().cancelled_at_shutdown, 2);

  // Post-shutdown submissions fast-fail.
  QueryRequest late;
  late.query_text = "1";
  QueryResponse resp = service.Run(std::move(late));
  EXPECT_EQ(resp.status.code(), "XQC0007");
}

TEST(QueryService, ShutdownFailsQueuedQueriesWithOverload) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_queue = 8;
  QueryService service(opts);
  CancellationToken blocker_token = CancellationToken::Make();
  std::future<QueryResponse> blocked =
      SubmitAndWaitStart(&service, kUnboundedQuery, blocker_token);
  std::vector<std::future<QueryResponse>> queued;
  for (int i = 0; i < 4; i++) {
    QueryRequest req;
    req.query_text = "1";
    queued.push_back(service.Submit(std::move(req)));
  }
  service.Shutdown();
  EXPECT_EQ(blocked.get().status.code(), "XQC0002");  // in-flight: cancelled
  for (auto& f : queued) {
    EXPECT_EQ(f.get().status.code(), "XQC0007");  // queued: rejected
  }
}

TEST(QueryService, TransientCongestionDeadlineIsRetriedOnce) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_queue = 8;
  opts.retry_backoff_ms = 2;
  QueryService service(opts);

  CancellationToken blocker_token = CancellationToken::Make();
  std::future<QueryResponse> blocked =
      SubmitAndWaitStart(&service, kUnboundedQuery, blocker_token);

  // This query's whole 40ms budget will be eaten by queue wait behind the
  // blocker — a transient, congestion-caused deadline trip.
  QueryRequest victim;
  victim.query_text = "1 + 1";
  victim.limits.deadline_ms = 40;
  std::future<QueryResponse> victim_future = service.Submit(std::move(victim));

  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  blocker_token.RequestCancel();  // congestion clears

  QueryResponse resp = victim_future.get();
  ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  EXPECT_EQ(resp.result, "2");
  EXPECT_EQ(resp.attempts, 2);
  EXPECT_TRUE(resp.retried_transient);
  EXPECT_GE(resp.queue_wait_ms, 40);
  EXPECT_EQ(service.counters().retries, 1);
  EXPECT_EQ(blocked.get().status.code(), "XQC0002");
}

TEST(QueryService, DeterministicGuardTripsAreNotRetried) {
  ServiceOptions opts;
  opts.num_threads = 1;
  QueryService service(opts);
  QueryRequest req;
  // Must iterate for real: count over a bare range performs zero guard
  // checks, so the injected trip would never fire.
  req.query_text = "count(for $x in 1 to 100000 return $x)";
  req.limits.deadline_ms = 10000;  // a deadline exists, but won't trip
  req.fault_injector.trip_check_n = 1;
  req.fault_injector.trip_code = kGuardMemoryCode;
  QueryResponse resp = service.Run(std::move(req));
  ASSERT_FALSE(resp.status.ok());
  EXPECT_EQ(resp.status.code(), "XQC0003");
  EXPECT_EQ(resp.attempts, 1);
  EXPECT_FALSE(resp.retried_transient);
  EXPECT_EQ(service.counters().retries, 0);
}

TEST(QueryService, EndToEndDeadlineCoversQueueWait) {
  // With deadline_includes_queue_wait (default), a query stuck behind a
  // blocker longer than its whole budget fails XQC0001 without retry when
  // retries are disabled — proving the deadline is end-to-end.
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.retry_transient = false;
  QueryService service(opts);
  CancellationToken blocker_token = CancellationToken::Make();
  std::future<QueryResponse> blocked =
      SubmitAndWaitStart(&service, kUnboundedQuery, blocker_token);

  QueryRequest victim;
  victim.query_text = "1";
  victim.limits.deadline_ms = 30;
  std::future<QueryResponse> vf = service.Submit(std::move(victim));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  blocker_token.RequestCancel();
  QueryResponse resp = vf.get();
  ASSERT_FALSE(resp.status.ok());
  EXPECT_EQ(resp.status.code(), "XQC0001");
  EXPECT_EQ(resp.attempts, 1);
  EXPECT_EQ(blocked.get().status.code(), "XQC0002");
}

// ---- Intra-query parallelism under concurrent load -------------------------

TEST(Concurrency, SharedTaskPoolServesConcurrentParallelQueries) {
  // Many threads each run partitioned collection scans at once. All of
  // them contend for the one process-global TaskPool; TrySubmit refuses
  // when no helper is idle and each driver then drains its own partitions,
  // so the mix must complete without deadlock, starvation, or wrong bytes.
  const std::string dir =
      ::testing::TempDir() + "xqc_concurrency_parallel_corpus";
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  for (int d = 0; d < 5; d++) {
    std::string body = "<doc>";
    for (int i = 0; i < 40; i++) {
      body += "<item id=\"" + std::to_string(d * 40 + i) + "\"/>";
    }
    body += "</doc>";
    std::ofstream out(dir + "/d" + std::to_string(d) + ".xml",
                      std::ios::trunc);
    out << body;
  }
  const std::string query =
      "for $i in fn:collection(\"" + dir + "\")//item return string($i/@id)";

  // Shared store: concurrent scans also contend on the document cache.
  DocumentStoreOptions sopts;
  sopts.retry_backoff_ms = 1;
  DocumentStore store(sopts);

  // Serial oracle.
  std::string oracle;
  {
    DynamicContext ctx;
    ctx.set_document_store(&store);
    Result<std::string> r = Engine().Execute(query, &ctx);
    ASSERT_OK(r);
    oracle = r.value();
  }

  constexpr int kThreads = 6;
  constexpr int kRunsPerThread = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int run = 0; run < kRunsPerThread; run++) {
        EngineOptions opts;
        opts.parallelism = 2 + (t + run) % 3;  // 2..4
        DynamicContext ctx;
        ctx.set_document_store(&store);
        Result<PreparedQuery> q = Engine().Prepare(query, opts);
        if (!q.ok()) {
          mismatches++;
          continue;
        }
        Result<std::string> r = q.value().ExecuteToString(&ctx);
        if (!r.ok() || r.value() != oracle) mismatches++;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  std::system(("rm -rf " + dir).c_str());
}

TEST(QueryService, PartitionedRequestsMixWithRegularTraffic) {
  // The serving layer and intra-query parallelism share the machine: a
  // QueryService under load interleaved with per-request parallelism
  // overrides must neither deadlock (service workers + TaskPool helpers)
  // nor corrupt results.
  const std::string dir =
      ::testing::TempDir() + "xqc_service_parallel_corpus";
  std::system(("rm -rf " + dir + " && mkdir -p " + dir).c_str());
  for (int d = 0; d < 4; d++) {
    std::ofstream out(dir + "/d" + std::to_string(d) + ".xml",
                      std::ios::trunc);
    out << "<doc><v>" << d << "</v></doc>";
  }
  const std::string par_query =
      "for $v in fn:collection(\"" + dir + "\")//v return string($v)";

  ServiceOptions opts;
  opts.num_threads = 3;
  opts.max_queue = 256;
  QueryService service(opts);

  std::vector<std::future<QueryResponse>> futures;
  constexpr int kSubmissions = 40;
  for (int i = 0; i < kSubmissions; i++) {
    QueryRequest req;
    if (i % 2 == 0) {
      req.query_text = par_query;
      req.parallelism = 2 + i % 3;
    } else {
      req.query_text = "count(1 to 20000)";
    }
    futures.push_back(service.Submit(std::move(req)));
  }
  for (int i = 0; i < kSubmissions; i++) {
    QueryResponse resp = futures[i].get();
    ASSERT_TRUE(resp.status.ok()) << i << ": " << resp.status.ToString();
    EXPECT_EQ(resp.result, i % 2 == 0 ? "0 1 2 3" : "20000") << i;
  }
  EXPECT_EQ(service.counters().completed, kSubmissions);
  std::system(("rm -rf " + dir).c_str());
}

}  // namespace
}  // namespace xqc
