// Additional cross-configuration semantics tests: filter expressions over
// atomic sequences, context-item predicates, order-by edge cases, document
// identity, non-equality join predicates, and sequence-order guarantees —
// each checked across all five engine configurations.
#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

void Check(const std::string& query, DynamicContext* ctx,
           const char* expected) {
  Engine engine;
  const EngineOptions kConfigs[] = {
      {false, false, JoinImpl::kNestedLoop},
      {true, false, JoinImpl::kNestedLoop},
      {true, true, JoinImpl::kNestedLoop},
      {true, true, JoinImpl::kHash},
      {true, true, JoinImpl::kSort},
  };
  for (size_t i = 0; i < std::size(kConfigs); i++) {
    Result<PreparedQuery> q = engine.Prepare(query, kConfigs[i]);
    ASSERT_TRUE(q.ok()) << q.status().ToString() << "\n" << query;
    Result<std::string> r = q.value().ExecuteToString(ctx);
    ASSERT_TRUE(r.ok()) << "config " << i << ": " << r.status().ToString()
                        << "\n" << query;
    EXPECT_EQ(r.value(), expected) << "config " << i << "\n" << query;
  }
}

void Check(const std::string& query, const char* expected) {
  DynamicContext ctx;
  Check(query, &ctx, expected);
}

TEST(FilterSemantics, PositionalOnAtomicSequences) {
  Check("(5,6,7)[2]", "6");
  Check("(5,6,7)[4]", "");
  Check("(5,6,7)[last()]", "7");
  Check("(5,6,7)[position() > 1]", "6 7");
  Check("(1 to 10)[position() = (2 to 4)]", "2 3 4");
}

TEST(FilterSemantics, ContextItemPredicates) {
  Check("(5,6,7)[. > 5]", "6 7");
  Check("(\"a\",\"\",\"b\")[.]", "a b");  // EBV of strings
  Check("(1,2,3)[. mod 2 = 1]", "1 3");
}

TEST(FilterSemantics, ChainedFilters) {
  Check("(1 to 10)[. > 3][2]", "5");
  Check("(1 to 10)[2][. > 3]", "");
}

TEST(OrderBySemantics, EmptyKeys) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", MustParseXml(
      "<r><i><k>2</k></i><i/><i><k>1</k></i></r>"));
  // Default: empty least.
  Check("let $r := doc(\"d.xml\")/r "
        "for $i in $r/i order by zero-or-one($i/k) return count($i/k)",
        &ctx, "0 1 1");
  Check("let $r := doc(\"d.xml\")/r "
        "for $i in $r/i order by zero-or-one($i/k) empty greatest "
        "return count($i/k)",
        &ctx, "1 1 0");
}

TEST(OrderBySemantics, StableOrderPreservesInputOrderOnTies) {
  Check("for $x in (\"b1\",\"a2\",\"b2\",\"a1\") "
        "stable order by substring($x, 1, 1) return $x",
        "a2 a1 b1 b2");
}

TEST(OrderBySemantics, UntypedKeysSortAsStrings) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", MustParseXml(
      "<r><v>10</v><v>9</v><v>100</v></r>"));
  // Untyped order keys compare as strings: "10" < "100" < "9".
  Check("for $v in doc(\"d.xml\")/r/v order by zero-or-one($v/text()) "
        "return $v/text()",
        &ctx, "101009");
  // Casting gives numeric order.
  Check("for $v in doc(\"d.xml\")/r/v order by number($v) return $v/text()",
        &ctx, "910100");
}

TEST(JoinSemantics, NotEqualsPredicate) {
  // != is existential and not index-supported; must agree everywhere.
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", MustParseXml(
      "<r><a k=\"1\"/><a k=\"2\"/><b k=\"2\"/></r>"));
  Check("let $r := doc(\"d.xml\")/r "
        "return count(for $a in $r/a, $b in $r/b "
        "where $a/@k != $b/@k return 1)",
        &ctx, "1");
}

TEST(JoinSemantics, InequalityJoinAgreesAcrossConfigs) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", MustParseXml(
      "<r><a v=\"1\"/><a v=\"5\"/><a v=\"9\"/>"
      "<b v=\"3\"/><b v=\"7\"/></r>"));
  Check("let $r := doc(\"d.xml\")/r "
        "return for $a in $r/a, $b in $r/b where $a/@v < $b/@v "
        "return concat($a/@v, \"<\", $b/@v)",
        &ctx, "1&lt;3 1&lt;7 5&lt;7");
}

TEST(JoinSemantics, SelfJoinOrderAndIdentity) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", MustParseXml(
      "<r><e k=\"x\"/><e k=\"y\"/><e k=\"x\"/></r>"));
  Check("let $r := doc(\"d.xml\")/r "
        "return for $a at $i in $r/e, $b at $j in $r/e "
        "where $a/@k = $b/@k return concat($i, $j)",
        &ctx, "11 13 22 31 33");
}

TEST(DocumentSemantics, DocIsCachedByUri) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", MustParseXml("<a><b/></a>"));
  Check("doc(\"d.xml\")/a/b is doc(\"d.xml\")/a/b", &ctx, "true");
}

TEST(DocumentSemantics, MultipleDocumentsHaveStableOrder) {
  DynamicContext ctx;
  ctx.RegisterDocument("one.xml", MustParseXml("<one><x/></one>"));
  ctx.RegisterDocument("two.xml", MustParseXml("<two><y/></two>"));
  // Union across documents is deterministic (global document order).
  Check("count(doc(\"one.xml\")//x union doc(\"two.xml\")//y)", &ctx, "2");
  Check("doc(\"one.xml\")//x is doc(\"two.xml\")//y", &ctx, "false");
}

TEST(SequenceSemantics, ForPreservesOrderThroughJoins) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", MustParseXml(
      "<r><p id=\"3\"/><p id=\"1\"/><p id=\"2\"/>"
      "<q ref=\"2\"/><q ref=\"3\"/><q ref=\"3\"/></r>"));
  // Results follow the LEFT (p) document order, not key order.
  Check("let $r := doc(\"d.xml\")/r "
        "return for $p in $r/p "
        "return <c id=\"{$p/@id}\">{count($r/q[@ref = $p/@id])}</c>",
        &ctx,
        "<c id=\"3\">2</c><c id=\"1\">0</c><c id=\"2\">1</c>");
}

TEST(ConstructorSemantics, DocumentNodeConstructor) {
  Check("count(document { <a/>, <b/> }/*)", "2");
  Check("document { <a><b/></a> }//b instance of element(b)", "true");
}

TEST(ConstructorSemantics, NestedTypeswitchInFLWOR) {
  Check(
      "for $v in (<a/>, 1, \"s\", <b/>) return "
      "typeswitch ($v) "
      "case $e as element(a) return \"elem-a\" "
      "case $n as xs:integer return $n * 2 "
      "case $s as xs:string return upper-case($s) "
      "default $d return \"other\"",
      "elem-a 2 S other");
}

TEST(QuantifierSemantics, NestedQuantifiersWithJoins) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", MustParseXml(
      "<r><s><v>1</v><v>2</v></s><s><v>2</v><v>3</v></s></r>"));
  Check("let $r := doc(\"d.xml\")/r return "
        "every $s1 in $r/s satisfies some $s2 in $r/s satisfies "
        "($s1/v = $s2/v and not($s1 is $s2))",
        &ctx, "true");
}

TEST(TypePromotion, MixedNumericArithmeticAgrees) {
  Check("(1 + 0.5) * 2e0", "3");
  Check("(0.1 + 0.2) < 0.30000001", "true");
  Check("sum((1, 2.5, 1e1))", "13.5");
  Check("max((1, 2.5)) instance of xs:decimal", "true");
}

TEST(SurfaceSyntax, ConstructorFunctions) {
  // xs:TYPE(value) constructor functions behave as casts.
  Check("xs:integer(\"5\") + 1", "6");
  Check("xs:double(1) instance of xs:double", "true");
  Check("xs:string(42)", "42");
  Check("xdt:untypedAtomic(\"x\") instance of xdt:untypedAtomic", "true");
  Check("xs:integer(()) ", "");  // optional occurrence: empty passes
  DynamicContext ctx;
  Check("xs:boolean(\"true\")", &ctx, "true");
}

TEST(SurfaceSyntax, ZeroArityContextFunctions) {
  Check("(1,2,3)[number() > 1]", "2 3");
  Check("(\"a\",\"\",\"bc\")[string() != \"\"]", "a bc");
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml",
                       MustParseXml("<r><a>x</a><b>y</b></r>"));
  Check("doc(\"d.xml\")/r/*[name() = \"b\"]/text()", &ctx, "y");
  Check("string-join(for $n in doc(\"d.xml\")/r/* return local-name($n), "
        "\",\")",
        &ctx, "a,b");
}

TEST(SurfaceSyntax, BoundarySpaceDeclaration) {
  // Default (and explicit strip): whitespace-only text dropped.
  Check("<a> <b/> </a>", "<a><b/></a>");
  Check("declare boundary-space strip; <a> <b/> </a>", "<a><b/></a>");
  Check("declare boundary-space preserve; <a> <b/> </a>", "<a> <b/> </a>");
}

TEST(UntypedData, AttributeComparisonSemantics) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", MustParseXml(
      "<r><e v=\"07\"/><e v=\"7\"/></r>"));
  // untyped = integer compares numerically: both match.
  Check("count(doc(\"d.xml\")/r/e[@v = 7])", &ctx, "2");
  // untyped = string compares textually: one match.
  Check("count(doc(\"d.xml\")/r/e[@v = \"7\"])", &ctx, "1");
}

}  // namespace
}  // namespace xqc
