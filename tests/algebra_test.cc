// Tests for the algebra representation (Table 1): construction, printing in
// the paper's notation, structural equality, IN-freeness analysis, and
// direct evaluation of every operator through the plan evaluator.
#include <gtest/gtest.h>

#include "src/algebra/op.h"
#include "src/runtime/eval.h"
#include "src/xml/serializer.h"
#include "src/xml/xml_parser.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

/// Evaluates an item plan with no context.
Result<Sequence> EvalPlan(const OpPtr& plan, DynamicContext* ctx) {
  CompiledQuery q;
  q.plan = plan;
  PlanEvaluator eval(&q, ctx, {});
  return eval.Run();
}

std::string EvalToString(const OpPtr& plan) {
  DynamicContext ctx;
  Result<Sequence> r = EvalPlan(plan, &ctx);
  if (!r.ok()) return "ERROR:" + r.status().code();
  return SerializeSequence(r.value());
}

// ---- printing ---------------------------------------------------------------

TEST(AlgebraPrint, PaperNotation) {
  // MapConcat{MapFromItem{[p:IN]}(Var[auction])}(IN) — the paper's (FOR)
  // rule output shape.
  OpPtr plan = OpMapConcat(
      OpMapFromItem(OpTupleConstruct({Symbol("p")}, {OpIn()}),
                    OpVar(Symbol("auction"))),
      OpIn());
  EXPECT_EQ(OpToString(*plan),
            "MapConcat{MapFromItem{[p:IN]}(Var[auction])}(IN)");
}

TEST(AlgebraPrint, FieldAccessPrintsInline) {
  EXPECT_EQ(OpToString(*OpInField(Symbol("p"))), "IN#p");
  EXPECT_EQ(OpToString(*OpSelect(OpInField(Symbol("x")), OpIn())),
            "Select{IN#x}(IN)");
}

TEST(AlgebraPrint, GroupByShowsAllThreeFieldSets) {
  OpPtr gb = OpGroupBy(Symbol("a"), {Symbol("index")}, {Symbol("null")},
                       OpIn(), OpInField(Symbol("y")), OpIn());
  EXPECT_EQ(OpToString(*gb), "GroupBy[a,[index],[null]]{IN,IN#y}(IN)");
}

TEST(AlgebraPrint, TreeJoinShowsAxisAndTest) {
  OpPtr tj = OpTreeJoin(Axis::kDescendant, ItemTest::Element(Symbol("person")),
                        OpInField(Symbol("d")));
  EXPECT_EQ(OpToString(*tj), "TreeJoin[descendant::element(person)](IN#d)");
}

TEST(AlgebraPrint, TypeAssertShowsSequenceType) {
  SequenceType t = SequenceType::Star(
      ItemTest::Element(Symbol(), Symbol("Auction")));
  EXPECT_EQ(OpToString(*OpTypeAssert(t, OpIn())),
            "TypeAssert[element(*,Auction)*](IN)");
}

// ---- structural helpers ------------------------------------------------------

TEST(AlgebraStructure, CloneAndEquals) {
  OpPtr plan = OpMapConcat(
      OpMapFromItem(OpTupleConstruct({Symbol("p")}, {OpIn()}),
                    OpVar(Symbol("v"))),
      OpEmptyTuples());
  OpPtr copy = CloneOp(*plan);
  EXPECT_TRUE(OpEquals(*plan, *copy));
  copy->deps[0]->deps[0]->fields[0] = Symbol("q");
  EXPECT_FALSE(OpEquals(*plan, *copy));
}

TEST(AlgebraStructure, FreeInDetection) {
  // IN itself is free.
  EXPECT_TRUE(FreeIn(*OpIn()));
  // A field access over IN is free.
  EXPECT_TRUE(FreeIn(*OpInField(Symbol("x"))));
  // Var / Scalar are not.
  EXPECT_FALSE(FreeIn(*OpVar(Symbol("v"))));
  EXPECT_FALSE(FreeIn(*OpScalar(AtomicValue::Integer(1))));
  // The dep of a MapConcat is bound; its input chain is not.
  OpPtr bound = OpMapConcat(OpTupleConstruct({Symbol("x")}, {OpIn()}),
                            OpVar(Symbol("v")));
  // Input is Var (no IN), dep's IN is bound by the MapConcat => not free...
  // but MapConcat is a tuple op whose INPUT here has no IN.
  EXPECT_FALSE(FreeIn(*bound));
  OpPtr correlated = OpMapConcat(OpTupleConstruct({Symbol("x")}, {OpIn()}),
                                 OpIn());
  EXPECT_TRUE(FreeIn(*correlated));
  // Cond branches see the enclosing IN (pass-through).
  OpPtr cond = OpCond(OpInField(Symbol("x")), OpEmpty(),
                      OpScalar(AtomicValue::Boolean(true)));
  EXPECT_TRUE(FreeIn(*cond));
}

TEST(AlgebraStructure, OuterFieldUses) {
  // Fields introduced inside the subtree do not count as outer uses.
  OpPtr plan = OpMapToItem(
      OpInField(Symbol("dot")),
      OpMapConcat(OpMapFromItem(OpTupleConstruct({Symbol("dot")}, {OpIn()}),
                                OpInField(Symbol("t"))),
                  OpIn()));
  std::vector<Symbol> used;
  CollectOuterFieldUses(*plan, &used);
  ASSERT_EQ(used.size(), 1u);
  EXPECT_EQ(used[0], Symbol("t"));
}

// ---- evaluation of each operator family ---------------------------------------

TEST(AlgebraEval, ConstructorsAndSequence) {
  OpPtr seq = MakeOp(OpKind::kSequence);
  seq->inputs = {OpScalar(AtomicValue::Integer(1)),
                 OpScalar(AtomicValue::Integer(2))};
  EXPECT_EQ(EvalToString(seq), "1 2");
  EXPECT_EQ(EvalToString(OpEmpty()), "");

  OpPtr elem = MakeOp(OpKind::kElement);
  elem->name = Symbol("a");
  elem->inputs = {OpScalar(AtomicValue::String("hi"))};
  EXPECT_EQ(EvalToString(elem), "<a>hi</a>");

  OpPtr attr = MakeOp(OpKind::kAttribute);
  attr->name = Symbol("k");
  attr->inputs = {OpScalar(AtomicValue::Integer(7))};
  OpPtr elem2 = MakeOp(OpKind::kElement);
  elem2->name = Symbol("b");
  OpPtr seq2 = MakeOp(OpKind::kSequence);
  seq2->inputs = {attr, OpScalar(AtomicValue::String("t"))};
  elem2->inputs = {seq2};
  EXPECT_EQ(EvalToString(elem2), "<b k=\"7\">t</b>");

  OpPtr text = MakeOp(OpKind::kText);
  text->inputs = {OpScalar(AtomicValue::String("plain"))};
  EXPECT_EQ(EvalToString(text), "plain");

  OpPtr comment = MakeOp(OpKind::kComment);
  comment->inputs = {OpScalar(AtomicValue::String("c"))};
  EXPECT_EQ(EvalToString(comment), "<!--c-->");

  OpPtr pi = MakeOp(OpKind::kPI);
  pi->name = Symbol("tgt");
  pi->inputs = {OpScalar(AtomicValue::String("data"))};
  EXPECT_EQ(EvalToString(pi), "<?tgt data?>");
}

TEST(AlgebraEval, TreeJoinAndTypeOps) {
  DynamicContext ctx;
  NodePtr doc = MustParseXml("<r><a>1</a><a>2</a><b/></r>");
  ctx.BindVariable(Symbol("d"), {Item(doc)});

  OpPtr tj = OpTreeJoin(Axis::kDescendant, ItemTest::Element(Symbol("a")),
                        OpVar(Symbol("d")));
  CompiledQuery q;
  q.plan = OpCall(Symbol("fn:count"), {tj});
  PlanEvaluator eval(&q, &ctx, {});
  Result<Sequence> r = eval.Run();
  ASSERT_OK(r);
  EXPECT_EQ(r.value()[0].atomic().AsInt(), 2);

  OpPtr matches = MakeOp(OpKind::kTypeMatches);
  matches->stype = SequenceType::One(ItemTest::Atomic(AtomicType::kInteger));
  matches->inputs = {OpScalar(AtomicValue::Integer(3))};
  EXPECT_EQ(EvalToString(matches), "true");

  OpPtr cast = MakeOp(OpKind::kCast);
  cast->stype = SequenceType::One(ItemTest::Atomic(AtomicType::kInteger));
  cast->inputs = {OpScalar(AtomicValue::String("41"))};
  EXPECT_EQ(EvalToString(cast), "41");

  OpPtr castable = MakeOp(OpKind::kCastable);
  castable->stype = SequenceType::One(ItemTest::Atomic(AtomicType::kInteger));
  castable->inputs = {OpScalar(AtomicValue::String("x"))};
  EXPECT_EQ(EvalToString(castable), "false");

  OpPtr assert_ok = OpTypeAssert(
      SequenceType::Star(ItemTest::Atomic(AtomicType::kInteger)),
      OpScalar(AtomicValue::Integer(5)));
  EXPECT_EQ(EvalToString(assert_ok), "5");
  OpPtr assert_bad = OpTypeAssert(
      SequenceType::One(ItemTest::Atomic(AtomicType::kString)),
      OpScalar(AtomicValue::Integer(5)));
  EXPECT_EQ(EvalToString(assert_bad), "ERROR:XPTY0004");
}

TEST(AlgebraEval, CondTakesEffectiveBooleanValue) {
  OpPtr cond = OpCond(OpScalar(AtomicValue::String("then")),
                      OpScalar(AtomicValue::String("else")),
                      OpScalar(AtomicValue::Integer(1)));
  EXPECT_EQ(EvalToString(cond), "then");
  OpPtr cond2 = OpCond(OpScalar(AtomicValue::String("then")),
                       OpScalar(AtomicValue::String("else")), OpEmpty());
  EXPECT_EQ(EvalToString(cond2), "else");
}

TEST(AlgebraEval, TupleOperatorPipeline) {
  // MapToItem{IN#x}(Select{op:general-gt(IN#x, 1)}(MapFromItem{[x:IN]}(1,2,3)))
  OpPtr seq = MakeOp(OpKind::kSequence);
  seq->inputs = {OpScalar(AtomicValue::Integer(1)),
                 OpScalar(AtomicValue::Integer(2))};
  OpPtr seq2 = MakeOp(OpKind::kSequence);
  seq2->inputs = {seq, OpScalar(AtomicValue::Integer(3))};
  OpPtr stream =
      OpMapFromItem(OpTupleConstruct({Symbol("x")}, {OpIn()}), seq2);
  OpPtr filtered = OpSelect(
      OpCall(Symbol("op:general-gt"),
             {OpInField(Symbol("x")), OpScalar(AtomicValue::Integer(1))}),
      stream);
  OpPtr out = OpMapToItem(OpInField(Symbol("x")), filtered);
  EXPECT_EQ(EvalToString(out), "2 3");
}

TEST(AlgebraEval, ProductPreservesOrder) {
  auto mk_stream = [](const char* field, int lo, int hi) {
    OpPtr seq = OpScalar(AtomicValue::Integer(lo));
    for (int i = lo + 1; i <= hi; i++) {
      OpPtr s = MakeOp(OpKind::kSequence);
      s->inputs = {seq, OpScalar(AtomicValue::Integer(i))};
      seq = s;
    }
    return OpMapFromItem(OpTupleConstruct({Symbol(field)}, {OpIn()}), seq);
  };
  OpPtr prod = OpProduct(mk_stream("x", 1, 2), mk_stream("y", 10, 11));
  OpPtr out = OpMapToItem(
      OpCall(Symbol("op:plus"),
             {OpInField(Symbol("x")), OpInField(Symbol("y"))}),
      prod);
  EXPECT_EQ(EvalToString(out), "11 12 12 13");  // left-major order
}

TEST(AlgebraEval, OMapIntroducesNullFlagOnEmpty) {
  OpPtr empty_stream =
      OpMapFromItem(OpTupleConstruct({Symbol("x")}, {OpIn()}), OpEmpty());
  OpPtr omap = OpOMap(Symbol("null"), empty_stream);
  OpPtr out = OpMapToItem(OpInField(Symbol("null")), omap);
  EXPECT_EQ(EvalToString(out), "true");

  OpPtr one_stream = OpMapFromItem(OpTupleConstruct({Symbol("x")}, {OpIn()}),
                                   OpScalar(AtomicValue::Integer(9)));
  OpPtr omap2 = OpOMap(Symbol("null"), one_stream);
  OpPtr out2 = OpMapToItem(OpInField(Symbol("null")), omap2);
  EXPECT_EQ(EvalToString(out2), "false");
}

TEST(AlgebraEval, MapIndexNumbersFromOne) {
  OpPtr seq = MakeOp(OpKind::kSequence);
  seq->inputs = {OpScalar(AtomicValue::String("a")),
                 OpScalar(AtomicValue::String("b"))};
  OpPtr stream = OpMapFromItem(OpTupleConstruct({Symbol("x")}, {OpIn()}), seq);
  OpPtr indexed = OpMapIndex(Symbol("i"), stream);
  OpPtr out = OpMapToItem(OpInField(Symbol("i")), indexed);
  EXPECT_EQ(EvalToString(out), "1 2");
  // MapIndexStep has identical single-stream behaviour.
  OpPtr stepped = OpMapIndexStep(Symbol("j"), CloneOp(*stream));
  OpPtr out2 = OpMapToItem(OpInField(Symbol("j")), stepped);
  EXPECT_EQ(EvalToString(out2), "1 2");
}

TEST(AlgebraEval, MapBuildsOneTuplePerInput) {
  // Map{t1->t2}: the general functional map of Table 1.
  OpPtr seq = MakeOp(OpKind::kSequence);
  seq->inputs = {OpScalar(AtomicValue::Integer(3)),
                 OpScalar(AtomicValue::Integer(4))};
  OpPtr stream = OpMapFromItem(OpTupleConstruct({Symbol("x")}, {OpIn()}), seq);
  OpPtr map = MakeOp(OpKind::kMap);
  map->deps = {OpTupleConstruct(
      {Symbol("y")},
      {OpCall(Symbol("op:times"),
              {OpInField(Symbol("x")), OpScalar(AtomicValue::Integer(2))})})};
  map->inputs = {stream};
  OpPtr out = OpMapToItem(OpInField(Symbol("y")), map);
  EXPECT_EQ(EvalToString(out), "6 8");
}

TEST(AlgebraEval, TupleConcatCombinesFields) {
  // ++(t1, t2) evaluated in table context yields the combined tuple.
  OpPtr concat = MakeOp(OpKind::kTupleConcat);
  concat->inputs = {
      OpTupleConstruct({Symbol("a")}, {OpScalar(AtomicValue::Integer(1))}),
      OpTupleConstruct({Symbol("b")}, {OpScalar(AtomicValue::Integer(2))})};
  OpPtr out = OpMapToItem(
      OpCall(Symbol("op:plus"),
             {OpInField(Symbol("a")), OpInField(Symbol("b"))}),
      concat);
  EXPECT_EQ(EvalToString(out), "3");
}

TEST(AlgebraEval, OMapConcatFlagsEmptyDependents) {
  // OMapConcat[q]{dep}(input): null-flagged row when dep yields no tuples.
  OpPtr seq = MakeOp(OpKind::kSequence);
  seq->inputs = {OpScalar(AtomicValue::Integer(1)),
                 OpScalar(AtomicValue::Integer(2))};
  OpPtr input = OpMapFromItem(OpTupleConstruct({Symbol("x")}, {OpIn()}), seq);
  // dep: a tuple stream that is empty unless x = 1 (x flows in through the
  // dependent MapConcat over IN, as in compiled nested FLWORs).
  OpPtr dep = OpSelect(
      OpCall(Symbol("op:general-eq"),
             {OpInField(Symbol("x")), OpScalar(AtomicValue::Integer(1))}),
      OpMapConcat(OpMapFromItem(OpTupleConstruct({Symbol("y")}, {OpIn()}),
                                OpScalar(AtomicValue::Integer(9))),
                  OpIn()));
  OpPtr omc = OpOMapConcat(Symbol("null"), std::move(dep), std::move(input));
  OpPtr out = OpMapToItem(OpInField(Symbol("null")), omc);
  EXPECT_EQ(EvalToString(out), "false true");
}

TEST(AlgebraEval, MapSomeAndMapEvery) {
  OpPtr seq = MakeOp(OpKind::kSequence);
  seq->inputs = {OpScalar(AtomicValue::Integer(1)),
                 OpScalar(AtomicValue::Integer(5))};
  auto mk = [&](OpKind k) {
    OpPtr stream =
        OpMapFromItem(OpTupleConstruct({Symbol("x")}, {OpIn()}), CloneOp(*seq));
    OpPtr op = MakeOp(k);
    op->deps = {OpCall(Symbol("op:general-gt"),
                       {OpInField(Symbol("x")),
                        OpScalar(AtomicValue::Integer(3))})};
    op->inputs = {stream};
    return op;
  };
  EXPECT_EQ(EvalToString(mk(OpKind::kMapSome)), "true");
  EXPECT_EQ(EvalToString(mk(OpKind::kMapEvery)), "false");
}

TEST(AlgebraEval, ParseResolvesRegisteredDocuments) {
  DynamicContext ctx;
  ctx.RegisterDocument("u.xml", MustParseXml("<u/>"));
  OpPtr parse = MakeOp(OpKind::kParse);
  parse->inputs = {OpScalar(AtomicValue::String("u.xml"))};
  CompiledQuery q;
  q.plan = parse;
  PlanEvaluator eval(&q, &ctx, {});
  Result<Sequence> r = eval.Run();
  ASSERT_OK(r);
  EXPECT_EQ(SerializeSequence(r.value()), "<u/>");
}

TEST(AlgebraEval, VarUnboundReportsXPDY0002) {
  EXPECT_EQ(EvalToString(OpVar(Symbol("nope"))), "ERROR:XPDY0002");
}

}  // namespace
}  // namespace xqc
