// Tests for static join-key type analysis (the Section 6 static-typing
// optimization): class inference on key plans, Table 2-consistent mode
// combination, and differential checks that specialized key modes compute
// exactly what the general enumeration computes.
#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/opt/key_class.h"
#include "src/runtime/joins.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

TEST(KeyClassTest, ScalarsAndCalls) {
  EXPECT_EQ(InferJoinKeyClass(*OpScalar(AtomicValue::Integer(5)), false),
            KeyClass::kNumeric);
  EXPECT_EQ(InferJoinKeyClass(*OpScalar(AtomicValue::String("s")), false),
            KeyClass::kString);
  EXPECT_EQ(InferJoinKeyClass(*OpScalar(AtomicValue::Untyped("u")), false),
            KeyClass::kUntyped);
  EXPECT_EQ(InferJoinKeyClass(*OpCall(Symbol("fn:count"), {OpIn()}), false),
            KeyClass::kNumeric);
  EXPECT_EQ(InferJoinKeyClass(
                *OpCall(Symbol("fn:concat"), {OpIn(), OpIn()}), false),
            KeyClass::kString);
  EXPECT_EQ(InferJoinKeyClass(*OpInField(Symbol("x")), false),
            KeyClass::kGeneral);
}

TEST(KeyClassTest, NavigationIsUntypedOnlyWithoutSchema) {
  OpPtr tj = OpTreeJoin(Axis::kChild, ItemTest::Element(Symbol("a")),
                        OpInField(Symbol("p")));
  EXPECT_EQ(InferJoinKeyClass(*tj, /*schema_in_scope=*/false),
            KeyClass::kUntyped);
  EXPECT_EQ(InferJoinKeyClass(*tj, /*schema_in_scope=*/true),
            KeyClass::kGeneral);
  // ddo wrappers are transparent.
  OpPtr ddo = OpCall(Symbol("fs:distinct-docorder"), {CloneOp(*tj)});
  EXPECT_EQ(InferJoinKeyClass(*ddo, false), KeyClass::kUntyped);
}

TEST(KeyClassTest, CastsAndAsserts) {
  OpPtr cast = MakeOp(OpKind::kCast);
  cast->stype = SequenceType::One(ItemTest::Atomic(AtomicType::kInteger));
  cast->inputs = {OpInField(Symbol("x"))};
  EXPECT_EQ(InferJoinKeyClass(*cast, true), KeyClass::kNumeric);

  OpPtr assert_str = OpTypeAssert(
      SequenceType::Star(ItemTest::Atomic(AtomicType::kString)),
      OpInField(Symbol("x")));
  EXPECT_EQ(InferJoinKeyClass(*assert_str, true), KeyClass::kString);
}

TEST(KeyClassTest, CombinationFollowsTable2) {
  using KC = KeyClass;
  using KM = KeyMode;
  EXPECT_EQ(CombineKeyClasses(KC::kUntyped, KC::kUntyped), KM::kStringKeys);
  EXPECT_EQ(CombineKeyClasses(KC::kUntyped, KC::kString), KM::kStringKeys);
  EXPECT_EQ(CombineKeyClasses(KC::kString, KC::kString), KM::kStringKeys);
  EXPECT_EQ(CombineKeyClasses(KC::kNumeric, KC::kNumeric), KM::kDoubleKeys);
  EXPECT_EQ(CombineKeyClasses(KC::kUntyped, KC::kNumeric), KM::kDoubleKeys);
  EXPECT_EQ(CombineKeyClasses(KC::kString, KC::kNumeric), KM::kNoMatch);
  EXPECT_EQ(CombineKeyClasses(KC::kGeneral, KC::kNumeric),
            KM::kGeneralKeys);
}

// ---- specialized modes match the general enumeration -----------------------------

Tuple MakeTuple(const char* field, AtomicValue v) {
  Tuple t;
  t.Set(Symbol(field), {std::move(v)});
  return t;
}

KeyFn FieldKey(const char* field) {
  Symbol f(field);
  return [f](const Tuple& t) -> Result<Sequence> {
    return Atomize(*t.Get(f));
  };
}

std::string JoinString(const Table& left, const Table& right, KeyMode mode) {
  Result<std::shared_ptr<const MaterializedInner>> inner =
      MaterializeInner(right, FieldKey("b"), false, mode);
  EXPECT_TRUE(inner.ok());
  Result<Table> r = EqualityJoinWithIndex(left, FieldKey("a"), right,
                                          *inner.value(), false, Symbol("n"));
  EXPECT_TRUE(r.ok());
  std::string out;
  for (const Tuple& t : r.value()) {
    out += "(" + (*t.Get(Symbol("a")))[0].StringValue() + "," +
           (*t.Get(Symbol("b")))[0].StringValue() + ")";
  }
  return out;
}

TEST(KeyModeTest, StringModeMatchesGeneralOnUntypedData) {
  Table left = {MakeTuple("a", AtomicValue::Untyped("p0")),
                MakeTuple("a", AtomicValue::Untyped("1")),
                MakeTuple("a", AtomicValue::Untyped("01"))};
  Table right = {MakeTuple("b", AtomicValue::Untyped("p0")),
                 MakeTuple("b", AtomicValue::Untyped("1")),
                 MakeTuple("b", AtomicValue::Untyped("p1"))};
  EXPECT_EQ(JoinString(left, right, KeyMode::kStringKeys),
            JoinString(left, right, KeyMode::kGeneralKeys));
}

TEST(KeyModeTest, DoubleModeMatchesGeneralOnNumericData) {
  Table left = {MakeTuple("a", AtomicValue::Integer(1)),
                MakeTuple("a", AtomicValue::Decimal(2.5)),
                MakeTuple("a", AtomicValue::Untyped("2.5"))};
  Table right = {MakeTuple("b", AtomicValue::Double(1.0)),
                 MakeTuple("b", AtomicValue::Float(2.5)),
                 MakeTuple("b", AtomicValue::Integer(7))};
  EXPECT_EQ(JoinString(left, right, KeyMode::kDoubleKeys),
            JoinString(left, right, KeyMode::kGeneralKeys));
}

// ---- end-to-end: specialization fires and preserves results ----------------------

TEST(KeyModeTest, EngineUsesSpecializedModeForNavigationJoins) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", MustParseXml(
      "<r><p id=\"x\"/><p id=\"y\"/><q ref=\"x\"/><q ref=\"x\"/></r>"));
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(
      "let $r := doc(\"d.xml\")/r "
      "return for $p in $r/p, $t in $r/q where $t/@ref = $p/@id "
      "return string($p/@id)");
  ASSERT_OK(q);
  Result<std::string> r = q.value().ExecuteToString(&ctx);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "x x");
  // Both key sides are schema-less navigation -> untyped -> string mode.
  EXPECT_GE(q.value().last_exec_stats().specialized_joins, 1);
}

TEST(KeyModeTest, SchemaInScopeDisablesUntypedSpecialization) {
  Schema schema;  // any in-scope schema voids the untyped guarantee
  DynamicContext ctx;
  ctx.set_schema(&schema);
  ctx.RegisterDocument("d.xml", MustParseXml(
      "<r><p id=\"x\"/><q ref=\"x\"/></r>"));
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(
      "let $r := doc(\"d.xml\")/r "
      "return for $p in $r/p, $t in $r/q where $t/@ref = $p/@id "
      "return string($p/@id)");
  ASSERT_OK(q);
  Result<std::string> r = q.value().ExecuteToString(&ctx);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "x");
  EXPECT_EQ(q.value().last_exec_stats().specialized_joins, 0);
}

TEST(KeyModeTest, StaticallyIncompatibleJoinIsEmpty) {
  DynamicContext ctx;
  Engine engine;
  // string keys vs numeric keys: never comparable; the join short-circuits.
  Result<PreparedQuery> q = engine.Prepare(
      "for $a in (1,2,3), $b in (4,5) "
      "where concat(\"k\", $a) = ($b * 2) return 1");
  ASSERT_OK(q);
  Result<std::string> r = q.value().ExecuteToString(&ctx);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "");
  EXPECT_GE(q.value().last_exec_stats().specialized_joins, 1);
}

}  // namespace
}  // namespace xqc
