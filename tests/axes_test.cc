// Axis evaluation: interval numbering, the DocumentIndex, and the sort-free
// TreeJoin. Every long-axis result is cross-checked against a naive
// reference implementation that classifies candidate nodes by parent-chain
// walks and sorts by document order.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/xml/axes.h"
#include "src/xml/doc_index.h"
#include "src/xml/item.h"
#include "src/xml/xml_parser.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

// ---- naive reference ------------------------------------------------------

void CollectTree(const NodePtr& n, bool with_attrs, std::vector<NodePtr>* out) {
  out->push_back(n);
  if (with_attrs) {
    for (const NodePtr& a : n->attributes) out->push_back(a);
  }
  for (const NodePtr& c : n->children) CollectTree(c, with_attrs, out);
}

bool IsAncestorOf(const Node* a, const Node* n) {
  for (const Node* p = n->parent; p != nullptr; p = p->parent) {
    if (p == a) return true;
  }
  return false;
}

/// Document-order position by structure alone (no interval ids): the
/// root-to-node child-index path, with attributes ordered directly after
/// their element.
std::vector<size_t> PathOf(const Node* n) {
  std::vector<size_t> path;
  const Node* cur = n;
  while (cur->parent != nullptr) {
    const Node* p = cur->parent;
    size_t pos = 0;
    bool found = false;
    for (size_t i = 0; i < p->attributes.size() && !found; i++) {
      if (p->attributes[i].get() == cur) {
        pos = 1 + i;
        found = true;
      }
    }
    for (size_t i = 0; i < p->children.size() && !found; i++) {
      if (p->children[i].get() == cur) {
        pos = 1 + p->attributes.size() + i;
        found = true;
      }
    }
    EXPECT_TRUE(found) << "broken parent link";
    path.push_back(pos);
    cur = p;
  }
  path.push_back(0);
  std::reverse(path.begin(), path.end());
  return path;
}

/// Reference axis semantics defined by parent-chain relationships only.
bool InAxis(Axis axis, const Node* ctx, const Node* cand) {
  if (cand == ctx) {
    return axis == Axis::kSelf || axis == Axis::kDescendantOrSelf ||
           axis == Axis::kAncestorOrSelf;
  }
  bool cand_is_attr = cand->kind == NodeKind::kAttribute;
  switch (axis) {
    case Axis::kSelf:
      return false;
    case Axis::kChild:
      return cand->parent == ctx && !cand_is_attr;
    case Axis::kAttribute:
      return cand->parent == ctx && cand_is_attr;
    case Axis::kParent:
      return ctx->parent == cand;
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf:
      // Attributes are reachable only through the attribute axis.
      return !cand_is_attr && IsAncestorOf(ctx, cand);
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf:
      return IsAncestorOf(cand, ctx);
    case Axis::kFollowingSibling:
      return cand->parent == ctx->parent && ctx->parent != nullptr &&
             !cand_is_attr && ctx->kind != NodeKind::kAttribute &&
             PathOf(ctx) < PathOf(cand);
    case Axis::kPrecedingSibling:
      return cand->parent == ctx->parent && ctx->parent != nullptr &&
             !cand_is_attr && ctx->kind != NodeKind::kAttribute &&
             PathOf(cand) < PathOf(ctx);
    case Axis::kFollowing:
      return !cand_is_attr && !IsAncestorOf(ctx, cand) &&
             !IsAncestorOf(cand, ctx) && PathOf(ctx) < PathOf(cand);
    case Axis::kPreceding:
      return !cand_is_attr && !IsAncestorOf(ctx, cand) &&
             !IsAncestorOf(cand, ctx) && PathOf(cand) < PathOf(ctx);
  }
  return false;
}

Sequence NaiveAxis(const NodePtr& root, const NodePtr& ctx, Axis axis,
                   const ItemTest& test) {
  std::vector<NodePtr> all;
  CollectTree(root, /*with_attrs=*/true, &all);
  std::vector<NodePtr> hits;
  for (const NodePtr& cand : all) {
    if (InAxis(axis, ctx.get(), cand.get()) && test.Matches(*cand, nullptr)) {
      hits.push_back(cand);
    }
  }
  std::sort(hits.begin(), hits.end(), [](const NodePtr& a, const NodePtr& b) {
    return PathOf(a.get()) < PathOf(b.get());
  });
  Sequence out;
  for (NodePtr& n : hits) out.push_back(std::move(n));
  return out;
}

std::vector<const Node*> Ptrs(const Sequence& s) {
  std::vector<const Node*> out;
  for (const Item& it : s) out.push_back(it.node().get());
  return out;
}

const std::vector<Axis> kAllAxes = {
    Axis::kChild,           Axis::kDescendant,       Axis::kAttribute,
    Axis::kSelf,            Axis::kDescendantOrSelf, Axis::kParent,
    Axis::kAncestor,        Axis::kAncestorOrSelf,   Axis::kFollowingSibling,
    Axis::kPrecedingSibling, Axis::kFollowing,       Axis::kPreceding,
};

std::vector<ItemTest> SomeTests() {
  return {ItemTest::AnyNode(),
          ItemTest::Element(),
          ItemTest::Element(Symbol("b")),
          ItemTest::Element(Symbol("nosuch")),
          ItemTest::Attribute(),
          ItemTest::Attribute(Symbol("x")),
          ItemTest::OfKind(ItemTest::Kind::kText),
          ItemTest::OfKind(ItemTest::Kind::kComment),
          ItemTest::OfKind(ItemTest::Kind::kDocument)};
}

/// Checks ApplyAxis (walk and indexed) against the reference for every
/// context node of the tree, every axis, and a spread of node tests.
void CrossCheckTree(const NodePtr& root) {
  std::vector<NodePtr> contexts;
  CollectTree(root, /*with_attrs=*/true, &contexts);
  for (const NodePtr& ctx : contexts) {
    for (Axis axis : kAllAxes) {
      for (const ItemTest& test : SomeTests()) {
        Sequence expect = NaiveAxis(root, ctx, axis, test);
        for (bool use_index : {false, true}) {
          TreeJoinOpts opts;
          opts.use_index = use_index;
          Sequence got;
          ASSERT_TRUE(ApplyAxis(ctx, axis, test, nullptr, &got, opts).ok());
          EXPECT_EQ(Ptrs(got), Ptrs(expect))
              << AxisName(axis) << "::" << test.ToString()
              << " from node start=" << ctx->start
              << " use_index=" << use_index;
        }
      }
    }
  }
}

NodePtr BuildWideTree(int fanout, int depth, int* counter) {
  NodePtr e = NewElement(Symbol(depth % 2 == 0 ? "b" : "c"));
  Append(e, NewAttribute(Symbol("x"), std::to_string((*counter)++)));
  if (depth > 0) {
    for (int i = 0; i < fanout; i++) {
      Append(e, BuildWideTree(fanout, depth - 1, counter));
      if (i % 2 == 0) Append(e, NewText("t"));
    }
  }
  return e;
}

// ---- interval invariants --------------------------------------------------

TEST(IntervalTest, NestingAndDisjointness) {
  NodePtr doc = MustParseXml(
      "<a p=\"0\"><b x=\"1\"><d/>txt<e y=\"2\"/></b><!--c--><b><?pi z?></b></a>");
  std::vector<NodePtr> all;
  CollectTree(doc, true, &all);
  for (const NodePtr& n : all) {
    ASSERT_GT(n->start, 0u);
    EXPECT_LE(n->start, n->end);
    for (const NodePtr& m : all) {
      if (m.get() == n.get()) continue;
      bool anc = IsAncestorOf(n.get(), m.get());
      EXPECT_EQ(n->ContainsStrict(*m), anc)
          << "interval containment must equal ancestorship";
    }
  }
  // Preorder ids are exactly the CollectTree visit order.
  for (size_t i = 1; i < all.size(); i++) {
    EXPECT_LT(all[i - 1]->start, all[i]->start);
  }
  EXPECT_EQ(doc->SubtreeSize(), all.size());
}

TEST(IntervalTest, DistinctTreesUseDisjointBlocks) {
  NodePtr d1 = MustParseXml("<a><b/><b/></a>");
  NodePtr d2 = MustParseXml("<a><b/><b/></a>");
  // Blocks are contiguous and ordered by finalization, so doc-order
  // comparison works across trees.
  EXPECT_LT(d1->end, d2->start);
  EXPECT_TRUE(DocOrderLess(d1->children[0].get(), d2->children[0].get()));
  EXPECT_FALSE(d1->ContainsStrict(*d2->children[0]));
}

TEST(IntervalTest, RefinalizeRenumbers) {
  NodePtr doc = MustParseXml("<a><b/></a>");
  uint64_t first = doc->start;
  FinalizeTree(doc);
  EXPECT_GT(doc->start, first) << "re-finalizing draws a fresh id block";
  EXPECT_EQ(doc->SubtreeSize(), 3u);
}

// ---- cross-checks ---------------------------------------------------------

TEST(AxesCrossCheckTest, SmallDocument) {
  CrossCheckTree(MustParseXml(
      "<a p=\"0\" q=\"1\"><b x=\"1\">one<d/><e y=\"2\">two</e></b>"
      "<!--c--><b><d><d/></d><?pi z?></b>tail</a>"));
}

TEST(AxesCrossCheckTest, DeepChain) {
  std::string xml;
  for (int i = 0; i < 30; i++) xml += i % 2 == 0 ? "<b u=\"1\">" : "<c>";
  xml += "leaf";
  for (int i = 29; i >= 0; i--) xml += i % 2 == 0 ? "</b>" : "</c>";
  CrossCheckTree(MustParseXml(xml));
}

TEST(AxesCrossCheckTest, IndexedTreeAboveThreshold) {
  // Large enough that IndexFor builds the DocumentIndex, so the indexed
  // descendant/following/preceding paths execute for real.
  int counter = 0;
  NodePtr doc = NewDocument();
  Append(doc, BuildWideTree(3, 3, &counter));
  FinalizeTree(doc);
  ASSERT_GE(doc->SubtreeSize(), kMinIndexedTreeSize);
  CrossCheckTree(doc);
  EXPECT_NE(GetDocumentIndex(doc.get()), nullptr)
      << "cross-check should have triggered the lazy index build";
}

TEST(AxesCrossCheckTest, ConstructedTreeAndRenumbering) {
  // Build by hand, finalize, mutate, re-finalize: axes must follow the
  // fresh numbering and the stale index must be dropped.
  NodePtr root = NewElement(Symbol("r"));
  int counter = 0;
  Append(root, BuildWideTree(2, 2, &counter));
  Append(root, NewComment("note"));
  FinalizeTree(root);
  CrossCheckTree(root);

  Append(root, BuildWideTree(2, 3, &counter));
  FinalizeTree(root);
  EXPECT_EQ(GetDocumentIndex(root.get()), nullptr)
      << "FinalizeTree must invalidate the index";
  CrossCheckTree(root);
}

// ---- DocumentIndex --------------------------------------------------------

TEST(DocIndexTest, PartitionsAreDocOrdered) {
  int counter = 0;
  NodePtr doc = NewDocument();
  Append(doc, BuildWideTree(3, 3, &counter));
  FinalizeTree(doc);
  const DocumentIndex* idx = GetOrBuildDocumentIndex(doc.get());
  ASSERT_NE(idx, nullptr);
  // counter == #attrs; the root itself is excluded (it is never an indexed
  // axis result, and indexing it would cycle the ownership: root owns idx).
  EXPECT_EQ(idx->size(), doc->SubtreeSize() - counter - 1)
      << "all_ holds every non-attribute node except the root";
  for (const NodePtr& n : idx->AllNodes()) {
    EXPECT_NE(n.get(), doc.get());
  }
  auto check_sorted = [](const std::vector<NodePtr>& v) {
    for (size_t i = 1; i < v.size(); i++) {
      EXPECT_LT(v[i - 1]->start, v[i]->start);
    }
  };
  check_sorted(idx->AllNodes());
  check_sorted(idx->Elements());
  check_sorted(idx->Texts());
  ASSERT_NE(idx->ElementsByName(Symbol("b")), nullptr);
  check_sorted(*idx->ElementsByName(Symbol("b")));
  EXPECT_EQ(idx->ElementsByName(Symbol("nosuch")), nullptr);
  // Second call returns the cached instance.
  EXPECT_EQ(GetOrBuildDocumentIndex(doc.get()), idx);
  EXPECT_EQ(GetDocumentIndex(doc.get()), idx);
}

TEST(DocIndexTest, IndexDoesNotKeepItsTreeAlive) {
  // Regression: the index lives on the root, so a root entry in its tables
  // would be a shared_ptr cycle and the whole tree would leak.
  int counter = 0;
  NodePtr doc = NewDocument();
  Append(doc, BuildWideTree(3, 3, &counter));
  FinalizeTree(doc);
  ASSERT_NE(GetOrBuildDocumentIndex(doc.get()), nullptr);
  std::weak_ptr<Node> w = doc;
  doc.reset();
  EXPECT_TRUE(w.expired());
}

TEST(DocIndexTest, LowerBoundByStart) {
  int counter = 0;
  NodePtr doc = NewDocument();
  Append(doc, BuildWideTree(2, 2, &counter));
  FinalizeTree(doc);
  const DocumentIndex* idx = GetOrBuildDocumentIndex(doc.get());
  const std::vector<NodePtr>& all = idx->AllNodes();
  // For every node: [LowerBound(start), LowerBound(end)) is exactly its
  // non-attribute strict-descendant range.
  for (const NodePtr& n : all) {
    auto first = LowerBoundByStart(all, n->start);
    auto last = LowerBoundByStart(all, n->end);
    for (auto it = first; it != last; ++it) {
      EXPECT_TRUE(n->ContainsStrict(**it));
    }
    size_t expected = 0;
    for (const NodePtr& m : all) {
      if (n->ContainsStrict(*m)) expected++;
    }
    EXPECT_EQ(static_cast<size_t>(last - first), expected);
  }
}

// ---- TreeJoin: multi-node inputs and the DDO discharge chain -------------

TEST(TreeJoinTest, MultiDocumentInputStaysSorted) {
  NodePtr d1 = MustParseXml("<a><b/><b/></a>");
  NodePtr d2 = MustParseXml("<a><b/></a>");
  Sequence input{Item(d1->children[0]), Item(d2->children[0])};
  TreeJoinStats stats;
  auto r = TreeJoin(input, Axis::kChild, ItemTest::Element(Symbol("b")),
                    nullptr, {}, &stats);
  ASSERT_OK(r);
  ASSERT_EQ(r.value().size(), 3u);
  EXPECT_EQ(r.value()[0].node(), d1->children[0]->children[0]);
  EXPECT_EQ(r.value()[2].node(), d2->children[0]->children[0]);
  // Disjoint id blocks in finalization order: the concatenation is already
  // sorted, so the linear verify elides the sort.
  EXPECT_EQ(stats.ddo_skip_verified, 1);
  EXPECT_EQ(stats.ddo_sorts, 0);
}

TEST(TreeJoinTest, OverlappingInputNeedsSort) {
  NodePtr doc = MustParseXml("<a><b><c/></b><b><c/></b></a>");
  const NodePtr& a = doc->children[0];
  // parent:: over two cousins duplicates nothing, but ancestor:: over
  // {second b, first c} emits out-of-order output that must be sorted.
  Sequence input{Item(a->children[1]), Item(a->children[0]->children[0])};
  TreeJoinStats stats;
  auto r = TreeJoin(input, Axis::kAncestorOrSelf, ItemTest::AnyNode(), nullptr,
                    {}, &stats);
  ASSERT_OK(r);
  EXPECT_EQ(stats.ddo_sorts, 1);
  // doc, a, first b, c, second b — duplicates (doc, a) removed.
  ASSERT_EQ(r.value().size(), 5u);
  EXPECT_EQ(r.value()[0].node(), doc);
  for (size_t i = 1; i < r.value().size(); i++) {
    EXPECT_TRUE(DocOrderLess(r.value()[i - 1].node().get(),
                             r.value()[i].node().get()));
  }
}

TEST(TreeJoinTest, StaticSkipAndDedupModes) {
  NodePtr doc = MustParseXml("<a><b><c/><c/></b><b><c/></b></a>");
  const NodePtr& a = doc->children[0];
  auto cs_r = TreeJoin({Item(a)}, Axis::kDescendant,
                       ItemTest::Element(Symbol("c")), nullptr);
  ASSERT_OK(cs_r);
  Sequence cs = cs_r.take();
  ASSERT_EQ(cs.size(), 3u);

  // kSkip: trust the static annotation, no verify pass.
  TreeJoinStats stats;
  TreeJoinOpts skip;
  skip.ddo = DdoMode::kSkip;
  auto r = TreeJoin(cs, Axis::kSelf, ItemTest::AnyNode(), nullptr, skip,
                    &stats);
  ASSERT_OK(r);
  EXPECT_EQ(stats.ddo_skip_static, 1);
  EXPECT_EQ(r.value().size(), 3u);

  // kDedup: parent over same-depth input — ordered, adjacent duplicates.
  stats = {};
  TreeJoinOpts dedup;
  dedup.ddo = DdoMode::kDedup;
  r = TreeJoin(cs, Axis::kParent, ItemTest::AnyNode(), nullptr, dedup, &stats);
  ASSERT_OK(r);
  EXPECT_EQ(stats.ddo_dedups, 1);
  EXPECT_EQ(stats.ddo_sorts, 0);
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0].node(), a->children[0]);
  EXPECT_EQ(r.value()[1].node(), a->children[1]);

  // force_sort overrides everything.
  stats = {};
  TreeJoinOpts forced;
  forced.ddo = DdoMode::kSkip;
  forced.force_sort = true;
  r = TreeJoin(cs, Axis::kSelf, ItemTest::AnyNode(), nullptr, forced, &stats);
  ASSERT_OK(r);
  EXPECT_EQ(stats.ddo_sorts, 1);
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(TreeJoinTest, SingletonInputSkipsWithoutAnnotation) {
  NodePtr doc = MustParseXml("<a><b/><b/></a>");
  TreeJoinStats stats;
  auto r = TreeJoin({Item(doc)}, Axis::kDescendant, ItemTest::AnyNode(),
                    nullptr, {}, &stats);
  ASSERT_OK(r);
  EXPECT_EQ(stats.ddo_skip_singleton, 1);
  EXPECT_EQ(stats.ddo_sorts, 0);
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(TreeJoinTest, AtomicInputIsTypeError) {
  Sequence input{Item(AtomicValue::Integer(1))};
  auto r = TreeJoin(input, Axis::kChild, ItemTest::AnyNode(), nullptr);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "XPTY0004");
}

}  // namespace
}  // namespace xqc
