// Tests for normalization into the XQuery Core (Section 4): operator
// lowering to op:*/fn:* calls, the paper's FLWOR-preserving behaviour, path
// and predicate normalization (including the positional machinery and the
// set-level peeling of boolean predicates), typeswitch variable
// unification, and the hoisting passes.
#include <gtest/gtest.h>

#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"
#include "test_util.h"

namespace xqc {
namespace {

std::string Norm(const std::string& text) {
  Result<ExprPtr> e = ParseXQueryExpr(text);
  EXPECT_TRUE(e.ok()) << e.status().ToString() << " for " << text;
  if (!e.ok()) return "";
  Result<ExprPtr> n = NormalizeExpr(e.value());
  EXPECT_TRUE(n.ok()) << n.status().ToString() << " for " << text;
  if (!n.ok()) return "";
  return ExprToString(*n.value());
}

TEST(NormalizeOps, OperatorsBecomeCalls) {
  EXPECT_EQ(Norm("1 + 2"), "op:plus(1, 2)");
  EXPECT_EQ(Norm("1 - 2"), "op:minus(1, 2)");
  EXPECT_EQ(Norm("1 idiv 2"), "op:idiv(1, 2)");
  EXPECT_EQ(Norm("-$x"), "op:unary-minus($x)");
  EXPECT_EQ(Norm("1 eq 2"), "op:eq(1, 2)");
  EXPECT_EQ(Norm("1 != 2"), "op:general-ne(1, 2)");
  EXPECT_EQ(Norm("1 to 5"), "op:to(1, 5)");
  EXPECT_EQ(Norm("$a union $b"), "op:union($a, $b)");
  EXPECT_EQ(Norm("$a intersect $b"), "op:intersect($a, $b)");
  EXPECT_EQ(Norm("$a except $b"), "op:except($a, $b)");
  EXPECT_EQ(Norm("$a is $b"), "op:is-same-node($a, $b)");
}

TEST(NormalizeOps, AndOrTakeEBVOfOperands) {
  EXPECT_EQ(Norm("$a and $b"),
            "op:and(fn:boolean($a), fn:boolean($b))");
  EXPECT_EQ(Norm("$a or $b"), "op:or(fn:boolean($a), fn:boolean($b))");
}

TEST(NormalizeOps, IfConditionTakesEBV) {
  EXPECT_EQ(Norm("if ($c) then 1 else 2"),
            "if (fn:boolean($c)) then 1 else 2");
}

TEST(NormalizeOps, UnprefixedFunctionsResolveToFn) {
  EXPECT_EQ(Norm("count($x)"), "fn:count($x)");
  EXPECT_EQ(Norm("fn:count($x)"), "fn:count($x)");
}

TEST(NormalizeFLWOR, StructureIsPreserved) {
  // The paper's key normalization fix: FLWORs stay multi-clause blocks.
  Result<ExprPtr> e = ParseXQueryExpr(
      "for $a in (1,2) let $b := $a where $b > 1 order by $b return $b");
  ASSERT_OK(e);
  Result<ExprPtr> n = NormalizeExpr(e.value());
  ASSERT_OK(n);
  ASSERT_EQ(n.value()->kind, ExprKind::kFLWOR);
  EXPECT_EQ(n.value()->clauses.size(), 4u);  // NOT broken into nested FLWORs
}

TEST(NormalizeFLWOR, BooleanWherePredicateStaysBare) {
  Result<ExprPtr> e =
      ParseXQueryExpr("for $a in (1,2) where $a = 1 return $a");
  ASSERT_OK(e);
  Result<ExprPtr> n = NormalizeExpr(e.value());
  ASSERT_OK(n);
  // The general comparison is statically boolean; no fn:boolean wrapper
  // that would hide the join predicate.
  EXPECT_EQ(ExprToString(*n.value()->clauses[1].expr),
            "op:general-eq($a, 1)");
}

TEST(NormalizeFLWOR, NonBooleanWhereGetsEBV) {
  Result<ExprPtr> e = ParseXQueryExpr("for $a in (1,2) where $a return $a");
  ASSERT_OK(e);
  Result<ExprPtr> n = NormalizeExpr(e.value());
  ASSERT_OK(n);
  EXPECT_EQ(ExprToString(*n.value()->clauses[1].expr), "fn:boolean($a)");
}

TEST(NormalizePaths, ContextItemBecomesFsDot) {
  EXPECT_EQ(Norm("."), "$fs:dot");
}

TEST(NormalizePaths, StepBecomesPerDotFLWOR) {
  std::string n = Norm("$d/person");
  EXPECT_EQ(n,
            "fs:distinct-docorder(for $fs:dot in $d return "
            "child::element(person))");
}

TEST(NormalizePaths, PositionalPredicateUsesAtClause) {
  // The paper's Section 4 example shape: a single FLWOR block with an `at`
  // clause and a positional where clause.
  std::string n = Norm("$d/person[2]");
  EXPECT_NE(n.find("at $fs:position"), std::string::npos) << n;
  EXPECT_NE(n.find("op:general-eq($fs:position, 2)"), std::string::npos) << n;
}

TEST(NormalizePaths, PositionFunctionSubstituted) {
  std::string n = Norm("$d/person[position() = 2]");
  EXPECT_NE(n.find("op:general-eq($fs:position, 2)"), std::string::npos) << n;
  EXPECT_EQ(n.find("fn:position"), std::string::npos) << n;
}

TEST(NormalizePaths, LastBindsCountOfSequence) {
  std::string n = Norm("$d/person[last()]");
  EXPECT_NE(n.find("let $fs:last := fn:count($fs:sequence)"),
            std::string::npos)
      << n;
  EXPECT_NE(n.find("op:general-eq($fs:position, $fs:last)"),
            std::string::npos)
      << n;
}

TEST(NormalizePaths, BooleanPredicatePeeledToSetLevel) {
  // Position-independent predicates apply AFTER the step's ddo result —
  // the form that lets path joins de-correlate (Section 4's Q1 variant).
  std::string n = Norm("$d/person[@id = $p]");
  EXPECT_NE(n.find("where op:general-eq("), std::string::npos) << n;
  // No at-clause machinery for the boolean predicate.
  EXPECT_EQ(n.find("$fs:position"), std::string::npos) << n;
}

TEST(NormalizePaths, MixedPredicatesKeepPerStepForm) {
  std::string n = Norm("$d/person[@a = 1][2]");
  EXPECT_NE(n.find("$fs:position"), std::string::npos) << n;
}

TEST(NormalizePaths, DynamicPredicateUsesRuntimeRule) {
  std::string n = Norm("$d/person[$n]");
  EXPECT_NE(n.find("fs:predicate-truth($n, $fs:position)"),
            std::string::npos)
      << n;
}

TEST(NormalizeTypeswitch, BranchVariablesUnified) {
  Result<ExprPtr> e = ParseXQueryExpr(
      "typeswitch ($v) case $a as xs:integer return $a "
      "case $b as xs:string return $b default $c return $c");
  ASSERT_OK(e);
  Result<ExprPtr> n = NormalizeExpr(e.value());
  ASSERT_OK(n);
  const Expr& ts = *n.value();
  ASSERT_EQ(ts.kind, ExprKind::kTypeswitch);
  Symbol common = ts.cases[0].var;
  EXPECT_FALSE(common.empty());
  for (const TypeswitchCase& c : ts.cases) {
    EXPECT_EQ(c.var, common);
    EXPECT_EQ(c.body->kind, ExprKind::kVarRef);
    EXPECT_EQ(c.body->name, common);
  }
}

TEST(NormalizeQuantified, SatisfiesTakesEBV) {
  std::string n = Norm("some $x in $s satisfies $x");
  EXPECT_NE(n.find("satisfies fn:boolean($x)"), std::string::npos) << n;
}

TEST(NormalizeErrors, PositionOutsidePredicate) {
  Result<ExprPtr> e = ParseXQueryExpr("position()");
  ASSERT_OK(e);
  Result<ExprPtr> n = NormalizeExpr(e.value());
  EXPECT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), "XPDY0002");
}

// ---- substitution ------------------------------------------------------------

TEST(SubstituteVarTest, RespectsShadowing) {
  Result<ExprPtr> e = ParseXQueryExpr("$x + (for $x in (1) return $x)");
  ASSERT_OK(e);
  ExprPtr s = SubstituteVar(e.value(), Symbol("x"), Symbol("y"));
  // Outer $x renamed; the FLWOR-bound $x untouched.
  EXPECT_EQ(ExprToString(*s), "($y plus for $x in 1 return $x)");
}

TEST(SubstituteVarTest, ClauseBoundaryShadowing) {
  // $x is free in the first binding expr, bound afterwards.
  Result<ExprPtr> e =
      ParseXQueryExpr("for $a in $x, $x in (1) return ($a, $x)");
  ASSERT_OK(e);
  ExprPtr s = SubstituteVar(e.value(), Symbol("x"), Symbol("y"));
  EXPECT_EQ(ExprToString(*s), "for $a in $y for $x in 1 return ($a, $x)");
}

// ---- hoisting passes -----------------------------------------------------------

TEST(HoistTest, LeadingLetsBecomeGlobals) {
  Result<Query> q = ParseXQuery(
      "let $d := doc(\"x.xml\") let $e := $d/a return count($e)");
  ASSERT_OK(q);
  Result<Query> core = NormalizeQuery(q.value());
  ASSERT_OK(core);
  HoistLeadingLets(&core.value());
  ASSERT_EQ(core.value().variables.size(), 2u);
  EXPECT_EQ(core.value().variables[0].name.str(), "d");
  EXPECT_EQ(core.value().variables[1].name.str(), "e");
  EXPECT_NE(core.value().body->kind, ExprKind::kFLWOR);
}

TEST(HoistTest, NestedCorrelatedBlockInConstructorBecomesLet) {
  Result<Query> q = ParseXQuery(
      "for $a in $s return <r>{ for $b in $t where $b = $a return $b }</r>");
  ASSERT_OK(q);
  Result<Query> core = NormalizeQuery(q.value());
  ASSERT_OK(core);
  HoistNestedReturnBlocks(&core.value());
  const Expr& f = *core.value().body;
  ASSERT_EQ(f.kind, ExprKind::kFLWOR);
  ASSERT_EQ(f.clauses.size(), 2u);  // for $a + the hoisted let
  EXPECT_EQ(f.clauses[1].kind, Clause::Kind::kLet);
  EXPECT_EQ(f.clauses[1].expr->kind, ExprKind::kFLWOR);
  // The constructor now references the hoisted variable.
  EXPECT_NE(ExprToString(*f.ret).find("$fs:hoist"), std::string::npos);
}

TEST(HoistTest, UncorrelatedNestedBlockStaysInPlace) {
  Result<Query> q = ParseXQuery(
      "for $a in $s return <r>{ for $b in $t where $b = 1 return $b }</r>");
  ASSERT_OK(q);
  Result<Query> core = NormalizeQuery(q.value());
  ASSERT_OK(core);
  HoistNestedReturnBlocks(&core.value());
  EXPECT_EQ(core.value().body->clauses.size(), 1u);  // nothing hoisted
}

TEST(HoistTest, BlocksInsideConditionalsNotHoisted) {
  // Hoisting out of an if-branch would change evaluation conditions.
  Result<Query> q = ParseXQuery(
      "for $a in $s return (if ($a = 1) then "
      "(for $b in $t where $b = $a return $b) else ())");
  ASSERT_OK(q);
  Result<Query> core = NormalizeQuery(q.value());
  ASSERT_OK(core);
  HoistNestedReturnBlocks(&core.value());
  EXPECT_EQ(core.value().body->clauses.size(), 1u);
}

}  // namespace
}  // namespace xqc
