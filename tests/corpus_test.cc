// Regression corpus: a table-driven sweep of small query/expected pairs in
// the spirit of the Galax regression suite the paper reports (Section 7).
// Every entry runs under all five engine configurations; expected strings
// prefixed with "ERROR:" assert the W3C error code instead.
#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "src/engine/engine.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

struct CorpusEntry {
  const char* query;
  const char* expected;
};

// The corpus document available as $D in every query.
const char* kCorpusDoc = R"(
<corp>
  <nums><n>3</n><n>1</n><n>2</n></nums>
  <strs><s>beta</s><s>alpha</s><s/></strs>
  <emp><e id="e1" mgr="e3"/><e id="e2" mgr="e3"/><e id="e3"/></emp>
  <mix>text<a/>tail<b><c>deep</c></b></mix>
</corp>)";

const CorpusEntry kCorpus[] = {
    // -- arithmetic and numeric edge cases --
    {"0 - 7", "-7"},
    {"2 * 3 + 4 * 5", "26"},
    {"10 idiv 3", "3"},
    {"-10 idiv 3", "-3"},
    {"10 mod 3", "1"},
    {"5 div 2", "2.5"},
    {"0.1 + 0.2 = 0.3", "false"},  // decimal stored as double (DESIGN.md)
    {"1e308 * 10", "INF"},
    {"-1e308 * 10", "-INF"},
    {"number(\"abc\") = number(\"abc\")", "false"},  // NaN != NaN
    {"abs(-2.5)", "2.5"},
    {"floor(-1.5)", "-2"},
    {"ceiling(-1.5)", "-1"},
    {"round(-1.5)", "-1"},
    {"round(2.4999)", "2"},
    {"7 mod 0", "ERROR:FOAR0001"},
    {"() * 3", ""},
    {"3 * ()", ""},
    {"(1,2) + 1", "ERROR:XPTY0004"},
    // -- comparisons --
    {"1 < 2", "true"},
    {"2 <= 2", "true"},
    {"\"a\" < \"b\"", "true"},
    {"\"a\" = ()", "false"},
    {"() != ()", "false"},
    {"(1,2) = (2,3)", "true"},
    {"(1,2) != (1,2)", "true"},  // existential !=
    {"(1,1) != (1,1)", "false"},
    {"true() = true()", "true"},
    {"true() > false()", "true"},
    {"1 eq 1.0", "true"},
    {"1 is 1", "ERROR:XPTY0004"},  // node comparison on atomics
    // -- strings --
    {"concat(\"a\", (), \"b\")", "ab"},
    {"string-length(\"\")", "0"},
    {"contains(\"\", \"\")", "true"},
    {"starts-with(\"\", \"a\")", "false"},
    {"ends-with(\"abc\", \"bc\")", "true"},
    {"substring(\"12345\", 2, 2)", "23"},
    {"substring(\"12345\", -1, 3)", "1"},
    {"normalize-space(\" a  b \")", "a b"},
    {"upper-case(\"mIxEd\")", "MIXED"},
    {"string-join((\"x\",\"y\",\"z\"), \"\")", "xyz"},
    {"translate(\"abc\", \"\", \"x\")", "abc"},
    {"string(1.5)", "1.5"},
    {"string(true())", "true"},
    // -- sequences --
    {"count(())", "0"},
    {"count((1, (), 2))", "2"},
    {"(1,2,3)[.]", "1 2 3"},  // numeric predicate = position test
    {"empty((()))", "true"},
    {"exists((0))", "true"},
    {"reverse((1,2))[1]", "2"},
    {"insert-before((), 1, (7))", "7"},
    {"remove((9), 1)", ""},
    {"subsequence((1,2,3), 2)", "2 3"},
    {"distinct-values(())", ""},
    {"index-of((1,2,3,2), 2)", "2 4"},
    {"1 to 0", ""},
    {"5 to 5", "5"},
    {"count(0 to 9)", "10"},
    // -- FLWOR --
    {"for $x in () return 1", ""},
    {"for $x in 5 return $x", "5"},
    {"let $x := (1,2) return count($x)", "2"},
    {"let $x := () return count($x)", "0"},
    {"for $x in (1,2,3) where false() return $x", ""},
    {"for $x in (1,2), $y in ($x, $x*10) return $y", "1 10 2 20"},
    {"for $x in (3,1,2) order by $x return $x * 2", "2 4 6"},
    {"for $x in (1,2,3) let $y := $x where $y ge 2 return $y", "2 3"},
    {"(for $x in (1,2) return for $y in (3,4) return $x + $y)", "4 5 5 6"},
    {"for $x at $p in (9,8,7) where $p = 2 return $x", "8"},
    // -- quantifiers --
    {"some $x in (1,2) satisfies $x = 2", "true"},
    {"every $x in (1,2) satisfies $x = 2", "false"},
    {"some $x in () satisfies 1 idiv 0", "false"},  // vacuous: no bindings
    {"every $x in () satisfies false()", "true"},
    // -- conditionals and logic --
    {"if (()) then 1 else 2", "2"},
    {"if ((0)) then 1 else 2", "2"},
    {"if ((\"0\")) then 1 else 2", "1"},  // non-empty string EBV
    {"false() or true()", "true"},
    {"false() and (1 idiv 0 = 1)", "ERROR:FOAR0001"},  // non-short-circuit
    {"not(())", "true"},
    // -- constructors --
    {"<a/>", "<a/>"},
    {"<a>{()}</a>", "<a/>"},
    {"<a>{1,2}</a>", "<a>1 2</a>"},
    {"<a b=\"{(1,2)}\"/>", "<a b=\"1 2\"/>"},
    {"<a>{<b>{1+1}</b>}</a>", "<a><b>2</b></a>"},
    {"element x { element y {} }", "<x><y/></x>"},
    {"attribute z { 1, 2 } instance of attribute(z)", "true"},
    {"string(<a>{\"x\", \"y\"}</a>)", "x y"},
    {"count((<a/>, <b/>, <c/>))", "3"},
    {"comment { \"no\" } instance of comment()", "true"},
    {"(processing-instruction tgt { \"d\" }) instance of "
     "processing-instruction()", "true"},
    // -- types and casts --
    {"3.5 instance of xs:decimal", "true"},
    {"3.5 instance of xs:integer", "false"},
    {"\"s\" instance of xs:string", "true"},
    {"() instance of xs:string?", "true"},
    {"(1, \"a\") instance of item()+", "true"},
    {"(1, \"a\") instance of xs:integer+", "false"},
    {"\" 42 \" cast as xs:integer", "42"},
    {"\"4.5\" cast as xs:double > 4", "true"},
    {"1 cast as xs:string", "1"},
    {"\"true\" cast as xs:boolean", "true"},
    {"\"yes\" castable as xs:boolean", "false"},
    {"(5) treat as xs:integer", "5"},
    {"(5, 6) treat as xs:integer", "ERROR:XPTY0004"},
    {"typeswitch (<a/>) case $e as element(a) return 1 default return 2",
     "1"},
    {"typeswitch (()) case $e as empty-sequence() return \"none\" "
     "default return \"some\"", "none"},
    // -- paths over the corpus document --
    {"count($D//n)", "3"},
    {"sum($D//n)", "6"},
    {"$D/corp/nums/n[1]/text()", "3"},
    {"$D//n[. = 2]", "<n>2</n>"},
    {"string-join($D//s/text(), \"|\")", "beta|alpha"},
    {"count($D//s[not(text())])", "1"},
    {"for $s in $D//s order by string($s) return concat($s, \";\")",
     "; alpha; beta;"},
    {"count($D/corp/mix/node())", "4"},
    {"$D/corp/mix/b/c/text()", "deep"},
    {"count($D//mix//text())", "3"},
    {"string($D//e[not(@mgr)]/@id)", "e3"},
    {"for $e in $D//e where $e/@mgr = $D//e[not(@mgr)]/@id "
     "return string($e/@id)", "e1 e2"},
    {"count($D//e[@mgr = \"e3\"])", "2"},
    {"$D//c/ancestor::mix instance of element(mix)", "true"},
    {"count($D/corp/*)", "4"},
    {"count($D//node()) > 10", "true"},
    {"$D/corp/nums/n[last()]/text()", "2"},
    {"$D/corp/nums/n[position() ge 2]/text()", "12"},
    {"count(($D//n, $D//s) )", "6"},
    {"count($D//n | $D//n)", "3"},
    {"count($D//* except $D//n)", "14"},
    {"count($D//* intersect $D//s)", "3"},
    // -- functions --
    {"declare function local:id($x) { $x }; local:id((1,2))", "1 2"},
    {"declare function local:sum3($a, $b, $c) { $a + $b + $c }; "
     "local:sum3(1, 2, 3)", "6"},
    {"declare function local:rep($s, $n) { if ($n le 0) then \"\" else "
     "concat($s, local:rep($s, $n - 1)) }; local:rep(\"ab\", 3)", "ababab"},
    {"declare variable $k := 10; declare function local:f() { $k }; "
     "local:f() + $k", "20"},
    // -- errors surface with their codes --
    {"fn:no-such()", "ERROR:XPST0017"},
    {"zero-or-one((1,2))", "ERROR:FORG0003"},
    {"\"a\" + 1", "ERROR:XPTY0004"},
    {"let $x as xs:integer := \"s\" return $x", "ERROR:XPTY0004"},
    // ================= second wave =================
    // -- axes breadth --
    {"count($D//c/ancestor::*)", "3"},
    {"count($D//c/ancestor-or-self::*)", "4"},
    {"$D//a/following-sibling::b/c/text()", "deep"},
    {"count($D//b/preceding-sibling::node())", "3"},
    {"name($D//c/parent::*)", "b"},
    {"count($D//c/following::node())", "0"},
    {"count($D//mix/child::text())", "2"},
    {"$D//c/self::c instance of element(c)", "true"},
    {"count($D//c/self::nope)", "0"},
    {"count($D//e/@mgr/..)", "2"},
    {"count($D//b/descendant-or-self::node())", "3"},
    // -- deep-equal and identity --
    {"deep-equal((), ())", "true"},
    {"deep-equal((1,2), (1,2))", "true"},
    {"deep-equal((1,2), (2,1))", "false"},
    {"deep-equal(<a x=\"1\"><b/></a>, <a x=\"1\"><b/></a>)", "true"},
    {"deep-equal(<a x=\"1\"/>, <a x=\"2\"/>)", "false"},
    {"deep-equal(<a>1</a>, <a>2</a>)", "false"},
    {"deep-equal(1, 1.0)", "true"},
    {"$D//b is $D//c/..", "true"},
    {"$D//a << $D//b", "true"},
    {"$D//b >> $D//mix", "true"},
    {"count($D//b union $D//c/..)", "1"},
    // -- more FLWOR shapes --
    {"for $x in (1,2,3), $y in (1,2,3) where $x = $y return $x", "1 2 3"},
    {"for $x in (\"b\",\"a\") for $y in (\"d\",\"c\") "
     "order by $x, $y return concat($x, $y)", "ac ad bc bd"},
    {"let $f := for $x in (4,5) return $x let $g := $f return sum($g)", "9"},
    {"for $x in (1,2) let $y := $x + 1 for $z in ($x, $y) return $z",
     "1 2 2 3"},
    {"count(for $x in 1 to 100 where $x mod 7 = 0 return $x)", "14"},
    {"(for $x in (2,1) order by $x return $x)[1]", "1"},
    {"for $x in (1,2,3) order by -$x return $x", "3 2 1"},
    {"for $x in ($D//n, $D//s) return name($x)", "n n n s s s"},
    // -- nested/recursive functions --
    {"declare function local:even($n) { $n mod 2 = 0 }; "
     "count(for $i in 1 to 10 where local:even($i) return $i)", "5"},
    {"declare function local:depth($n) { if (empty($n/*)) then 1 else "
     "1 + max(for $c in $n/* return local:depth($c)) }; "
     "local:depth($D/corp)", "4"},
    {"declare function local:fold($s) { if (count($s) le 1) then $s else "
     "(local:fold(subsequence($s, 2)), $s[1]) }; "
     "local:fold((1,2,3))", "3 2 1"},
    {"declare function local:f($x as xs:integer) as xs:string "
     "{ string($x) }; local:f(3)", "3"},
    {"declare function local:g() { local:h() }; "
     "declare function local:h() { 42 }; local:g()", "42"},
    // -- typeswitch breadth --
    {"typeswitch (1.5) case $i as xs:integer return \"i\" "
     "case $d as xs:decimal return \"d\" default return \"o\"", "d"},
    {"typeswitch ((1,2)) case $s as xs:integer+ return sum($s) "
     "default return 0", "3"},
    {"typeswitch ($D//c) case $e as element() return name($e) "
     "default return \"none\"", "c"},
    {"for $x in 1 to 3 return typeswitch ($x mod 2) "
     "case $z as xs:integer return if ($z = 0) then \"e\" else \"o\" "
     "default return \"?\"", "o e o"},
    // -- casts, instance-of breadth --
    {"\"INF\" cast as xs:double", "INF"},
    {"\"-INF\" cast as xs:double > 0", "false"},
    {"\"NaN\" cast as xs:double = \"NaN\" cast as xs:double", "false"},
    {"0 cast as xs:boolean", "false"},
    {"7 cast as xs:boolean", "true"},
    {"true() cast as xs:integer", "1"},
    {"\"2026-07-06\" cast as xs:date instance of xs:date", "true"},
    {"xs:anyURI(\"http://x\") instance of xs:anyURI", "true"},
    {"3 instance of item()", "true"},
    {"<a/> instance of item()", "true"},
    {"(<a/>, 1) instance of node()+", "false"},
    {"$D instance of document-node()", "true"},
    {"$D//e/@id instance of attribute(id)+", "true"},
    // -- aggregates over document data --
    {"max($D//n)", "3"},
    {"min($D//n)", "1"},
    {"avg($D//n)", "2"},
    {"sum($D//n) idiv count($D//n)", "2"},
    {"max($D//s/text())", "ERROR:FORG0001"},  // untyped casts to double
    {"count(distinct-values($D//e/@mgr))", "1"},
    // -- where/order-by interplay --
    {"for $e in $D//e order by string($e/@mgr) descending, string($e/@id) "
     "return string($e/@id)", "e1 e2 e3"},
    {"for $n in $D//n where $n > 1 order by number($n) descending "
     "return $n/text()", "32"},
    // -- string edge cases --
    {"substring(\"abc\", 2, -1)", ""},
    {"substring(\"abc\", number(\"NaN\"))", ""},
    {"concat(1, 2.5, true())", "12.5true"},
    {"string-join(for $i in 1 to 3 return string($i), \"+\")", "1+2+3"},
    {"contains(\"needle in haystack\", \"needle\")", "true"},
    {"substring-after(\"key=value\", \"=\")", "value"},
    // -- boolean edge cases --
    {"boolean((<a/>, <b/>))", "true"},
    {"boolean(\"false\")", "true"},  // non-empty string!
    {"boolean(0.0)", "false"},
    {"boolean(number(\"NaN\"))", "false"},
    {"not(not(42))", "true"},
    // -- constructors round 2 --
    {"<out>{for $n in $D//n order by number($n) return <v>{$n/text()}"
     "</v>}</out>", "<out><v>1</v><v>2</v><v>3</v></out>"},
    {"<copy>{$D//b}</copy>/b/c/text()", "deep"},
    {"count(document { $D/corp/nums }//n)", "3"},
    {"element {concat(\"t\", \"ag\")} {}", "<tag/>"},
    {"<e a=\"{()}\"/>", "<e a=\"\"/>"},
    {"<x>{\"a\"}{\"b\"}</x>", "<x>a b</x>"},  // adjacent atomics
    {"<x>a{\"b\"}</x>", "<x>ab</x>"},  // text node + atomic merge
    {"string(<x>{1 to 3}</x>)", "1 2 3"},
    // -- positional predicates round 2 --
    {"$D//n[position() = last()]/text()", "2"},
    {"$D//n[position() != 2]/text()", "32"},
    {"($D//n)[2]/text()", "1"},
    {"($D//*)[1] instance of element(corp)", "true"},
    {"count($D//e[position() gt 1])", "2"},
    {"(1 to 20)[. mod 5 = 0][2]", "10"},
    // -- empty-sequence propagation --
    {"count($D//nothing)", "0"},
    {"string($D//nothing)", ""},
    {"sum($D//nothing)", "0"},
    {"$D//nothing = $D//n", "false"},
    {"for $x in $D//nothing return 1 idiv 0", ""},  // no bindings, no error
    {"($D//nothing, 5)[1]", "5"},
    // -- Unicode string functions (codepoints, not UTF-8 bytes) --
    {"string-length(\"déjà vu\")", "7"},
    {"substring(\"déjà vu\", 5, 2)", " v"},
    {"substring(\"déjà\", 2)", "éjà"},
    {"string-length(\"a\U0001F600b\")", "3"},
    {"substring(\"a\U0001F600b\", 2, 1)", "\U0001F600"},
    // -- substring / round F&O semantics --
    {"substring(\"abcde\", -0.5, 3)", "ab"},    // round(-0.5) = 0
    {"substring(\"12345\", 1.5, 2.6)", "234"},  // round(1.5)=2, round(2.6)=3
    {"substring(\"abc\", number(\"NaN\"), 2)", ""},
    {"round(-2.5)", "-2"},  // half toward +INF, unlike C round()
    {"round(2.5)", "3"},
    {"subsequence((1,2,3,4,5), -0.5, 3)", "1 2"},
    // -- errors round 2 --
    {"count()", "ERROR:XPST0017"},
    {"$D//n + 1", "ERROR:XPTY0004"},        // multi-item arithmetic
    {"sum(($D//s)[1])", "ERROR:FORG0001"},  // non-numeric untyped "beta"
    {"\"x\" castable as xs:date", "true"},  // lexical model accepts
    {"(1,2)[\"s\" + 1]", "ERROR:XPTY0004"},  // erroneous predicate
};

class CorpusTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CorpusTest, AllConfigsMatchExpected) {
  const CorpusEntry& entry = kCorpus[GetParam()];
  std::string query =
      std::string("declare variable $D external; ") + entry.query;
  Engine engine;
  const EngineOptions kConfigs[] = {
      {false, false, JoinImpl::kNestedLoop},
      // Streaming (iterator) execution, the default:
      {true, false, JoinImpl::kNestedLoop},
      {true, true, JoinImpl::kNestedLoop},
      {true, true, JoinImpl::kHash},
      {true, true, JoinImpl::kSort},
      // The same algebra configs under materializing execution; iterator
      // and materialized modes must agree on every corpus entry.
      {true, false, JoinImpl::kNestedLoop, ExecMode::kMaterialize},
      {true, true, JoinImpl::kNestedLoop, ExecMode::kMaterialize},
      {true, true, JoinImpl::kHash, ExecMode::kMaterialize},
      {true, true, JoinImpl::kSort, ExecMode::kMaterialize},
      // Force-sort oracle for the DDO elision machinery, both exec modes:
      // always sorting TreeJoin output must reproduce every entry exactly.
      {true, true, JoinImpl::kHash, ExecMode::kStreaming,
       /*force_sort=*/true},
      {true, true, JoinImpl::kHash, ExecMode::kMaterialize,
       /*force_sort=*/true},
      // And so must running without structural indexes.
      {true, true, JoinImpl::kHash, ExecMode::kStreaming,
       /*force_sort=*/false, /*use_doc_index=*/false},
  };
  for (size_t i = 0; i < std::size(kConfigs); i++) {
    DynamicContext ctx;
    NodePtr doc = MustParseXml(kCorpusDoc);
    ctx.BindVariable(Symbol("D"), {Item(doc)});
    Result<PreparedQuery> q = engine.Prepare(query, kConfigs[i]);
    ASSERT_TRUE(q.ok()) << q.status().ToString() << "\n" << entry.query;
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    std::string got =
        r.ok() ? r.value() : "ERROR:" + r.status().code();
    EXPECT_EQ(got, entry.expected)
        << "config " << i << "\nquery: " << entry.query;
  }
  // Batch-size sweep over the default streaming config: batch_size=1 is
  // the tuple-at-a-time oracle (the configs above, whose default is 1024,
  // already covered the batched side); tiny sizes force every
  // partial-batch / carry-over path through the vectorized iterators.
  for (int batch : {1, 2, 3, 7}) {
    EngineOptions opts;
    opts.batch_size = batch;
    DynamicContext ctx;
    NodePtr doc = MustParseXml(kCorpusDoc);
    ctx.BindVariable(Symbol("D"), {Item(doc)});
    Result<PreparedQuery> q = engine.Prepare(query, opts);
    ASSERT_TRUE(q.ok()) << q.status().ToString() << "\n" << entry.query;
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    std::string got = r.ok() ? r.value() : "ERROR:" + r.status().code();
    EXPECT_EQ(got, entry.expected)
        << "batch_size=" << batch << "\nquery: " << entry.query;
  }
}

// The DocumentStore ablation sweep: every corpus entry, with the corpus
// document reached through fn:doc instead of a bound variable, must
// produce byte-identical results with the store enabled and disabled
// (and match the bound-variable expectation).
TEST_P(CorpusTest, DocStoreOnAndOffAgree) {
  static const std::string* doc_path = [] {
    auto* p = new std::string(::testing::TempDir() + "xqc_corpus_doc.xml");
    std::ofstream out(*p, std::ios::trunc);
    out << kCorpusDoc;
    return p;
  }();

  const CorpusEntry& entry = kCorpus[GetParam()];
  // Rewrite every `$D` reference into a doc() call on the temp file.
  std::string query = entry.query;
  const std::string call = "doc(\"" + *doc_path + "\")";
  for (size_t pos = 0; (pos = query.find("$D", pos)) != std::string::npos;
       pos += call.size()) {
    query.replace(pos, 2, call);
  }

  Engine engine;
  EngineOptions store_on;
  EngineOptions store_off;
  store_off.use_doc_store = false;
  std::string results[2];
  const EngineOptions* configs[2] = {&store_on, &store_off};
  for (int i = 0; i < 2; i++) {
    DynamicContext ctx;
    Result<PreparedQuery> q = engine.Prepare(query, *configs[i]);
    ASSERT_TRUE(q.ok()) << q.status().ToString() << "\n" << query;
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    results[i] = r.ok() ? r.value() : "ERROR:" + r.status().code();
  }
  EXPECT_EQ(results[0], results[1])
      << "store-on and store-off disagree\nquery: " << query;
  EXPECT_EQ(results[0], entry.expected) << "query: " << query;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CorpusTest,
                         ::testing::Range<size_t>(0, std::size(kCorpus)),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           // += sidesteps a GCC 12 -Wrestrict false positive
                           // (PR105329) on operator+(const char*, string&&).
                           std::string name = "q";
                           name += std::to_string(info.param);
                           return name;
                         });

}  // namespace
}  // namespace xqc
