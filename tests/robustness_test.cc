// Robustness and failure-injection tests: resource guards (recursion
// depth), deeply nested inputs, adversarial documents and queries, and
// error-code fidelity — errors must surface as Status values with W3C
// codes, never crashes.
#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/xml/xml_parser.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::InterpToString;
using testutil::MustParseXml;

TEST(Robustness, InfiniteRecursionIsCaught) {
  // Both engines guard recursion depth instead of blowing the stack,
  // reporting the XQC0005 guardrail code (src/base/guard.h).
  EXPECT_EQ(InterpToString(
                "declare function local:loop($n) { local:loop($n + 1) }; "
                "local:loop(0)"),
            "ERROR:XQC0005");
  Engine engine;
  DynamicContext ctx;
  Result<PreparedQuery> q = engine.Prepare(
      "declare function local:loop($n) { local:loop($n + 1) }; "
      "local:loop(0)");
  ASSERT_OK(q);
  Result<Sequence> r = q.value().Execute(&ctx);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "XQC0005");
  EXPECT_EQ(r.status().kind(), StatusKind::kResourceExhausted);
}

TEST(Robustness, DeepRecursionWithinGuardSucceeds) {
  EXPECT_EQ(InterpToString(
                "declare function local:down($n) { if ($n = 0) then 0 "
                "else local:down($n - 1) }; local:down(2000)"),
            "0");
}

TEST(Robustness, DeeplyNestedDocumentParses) {
  std::string xml;
  const int kDepth = 2000;
  for (int i = 0; i < kDepth; i++) xml += "<d>";
  xml += "x";
  for (int i = 0; i < kDepth; i++) xml += "</d>";
  Result<NodePtr> doc = ParseXml(xml);
  ASSERT_OK(doc);
  DynamicContext ctx;
  ctx.RegisterDocument("deep.xml", doc.value());
  EXPECT_EQ(InterpToString("count(doc(\"deep.xml\")//d)", &ctx),
            std::to_string(kDepth));
}

TEST(Robustness, DeeplyNestedParensParse) {
  std::string q;
  for (int i = 0; i < 500; i++) q += "(";
  q += "1";
  for (int i = 0; i < 500; i++) q += ")";
  EXPECT_EQ(InterpToString(q), "1");
}

TEST(Robustness, LargeSequencesAndStrings) {
  EXPECT_EQ(InterpToString("count(1 to 100000)"), "100000");
  EXPECT_EQ(InterpToString("sum(1 to 100000)"), "5000050000");
  EXPECT_EQ(InterpToString("string-length(string-join(for $i in 1 to 1000 "
                           "return \"ab\", \"\"))"),
            "2000");
}

TEST(Robustness, AdversarialDocuments) {
  // Documents that stress the parser's edge cases.
  EXPECT_OK(ParseXml("<a b=\"&#x10000;\"/>"));          // astral char ref
  EXPECT_OK(ParseXml("<_x.y-z/>"));                      // odd name chars
  EXPECT_OK(ParseXml("<a><![CDATA[]]></a>"));            // empty CDATA
  EXPECT_OK(ParseXml("<a><!-- - - --></a>"));            // dashes in comment
  EXPECT_FALSE(ParseXml("<a>]]></a><b/>").ok());         // trailing junk
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("   ").ok());
  EXPECT_FALSE(ParseXml(std::string("<a>") + '\0' + "</a>").ok());
}

TEST(Robustness, ErrorCodesSurviveOptimization) {
  // A dynamic error raised inside an optimized plan keeps its code.
  Engine engine;
  DynamicContext ctx;
  struct Case {
    const char* query;
    const char* code;
  };
  const Case kCases[] = {
      {"1 idiv 0", "FOAR0001"},
      {"\"x\" cast as xs:integer", "FORG0001"},
      {"(1,2) cast as xs:integer", "XPTY0004"},
      {"$undefined", "XPDY0002"},
      {"sum((\"a\",\"b\"))", "XPTY0004"},
      {"exactly-one(())", "FORG0005"},
      {"for $x in (1,2) return 1 idiv ($x - 1)", "FOAR0001"},
  };
  for (const Case& tc : kCases) {
    for (bool optimize : {false, true}) {
      EngineOptions opts;
      opts.optimize = optimize;
      Result<PreparedQuery> q = engine.Prepare(tc.query, opts);
      ASSERT_TRUE(q.ok()) << tc.query;
      Result<Sequence> r = q.value().Execute(&ctx);
      ASSERT_FALSE(r.ok()) << tc.query;
      EXPECT_EQ(r.status().code(), tc.code) << tc.query;
    }
  }
}

TEST(Robustness, MalformedQueriesNeverCrash) {
  Engine engine;
  const char* kBad[] = {
      "",
      "   ",
      "(:",
      "for",
      "<",
      "<a",
      "<a>{",
      "}}",
      "declare",
      "declare function local:f($x { $x };",
      "$x[",
      "1 cast as",
      "typeswitch",
      "for $x in (1) order by return $x",
      "element {} {}",
      "99999999999999999999999999",  // integer overflow
  };
  for (const char* q : kBad) {
    Result<PreparedQuery> r = engine.Prepare(q);
    EXPECT_FALSE(r.ok()) << "should fail: " << q;
  }
}

TEST(Robustness, QuadraticBlowupsStayBounded) {
  // A worst-case correlated query at small scale completes in all configs.
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", [&] {
    std::string xml = "<r>";
    for (int i = 0; i < 60; i++) {
      xml += "<e k=\"" + std::to_string(i % 7) + "\"/>";
    }
    xml += "</r>";
    return MustParseXml(xml);
  }());
  Engine engine;
  std::string reference;
  for (JoinImpl impl :
       {JoinImpl::kNestedLoop, JoinImpl::kHash, JoinImpl::kSort}) {
    EngineOptions opts;
    opts.join_impl = impl;
    Result<PreparedQuery> q = engine.Prepare(
        "let $r := doc(\"d.xml\")/r return "
        "sum(for $a in $r/e, $b in $r/e where $a/@k = $b/@k return 1)",
        opts);
    ASSERT_OK(q);
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    ASSERT_OK(r);
    if (reference.empty()) {
      reference = r.value();
    } else {
      EXPECT_EQ(r.value(), reference);
    }
  }
  EXPECT_NE(reference, "0");
}

TEST(Robustness, ConstructedTreesDoNotAliasSources) {
  // Copied content is independent of the source document.
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", MustParseXml("<a><b>1</b></a>"));
  EXPECT_EQ(InterpToString(
                "let $c := <wrap>{doc(\"d.xml\")/a}</wrap> "
                "return (count($c//b), $c/a/b is doc(\"d.xml\")/a/b)",
                &ctx),
            "1 false");
}

TEST(Robustness, HugeAttributeValues) {
  std::string big(100000, 'x');
  Result<NodePtr> doc = ParseXml("<a v=\"" + big + "\"/>");
  ASSERT_OK(doc);
  EXPECT_EQ(doc.value()->children[0]->attributes[0]->value.size(), big.size());
}

TEST(Robustness, PathologicallyNestedQueriesAreRejected) {
  // 100k nested parens must hit the parser's nesting-depth guard (a clean
  // XPST0003), not smash the stack during recursive descent.
  Engine engine;
  {
    std::string q;
    for (int i = 0; i < 100000; i++) q += "(";
    q += "1";
    for (int i = 0; i < 100000; i++) q += ")";
    Result<PreparedQuery> r = engine.Prepare(q);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), "XPST0003");
  }
  {
    // Deeply nested direct constructors hit the same guard.
    std::string q;
    for (int i = 0; i < 5000; i++) q += "<a>";
    q += "x";
    for (int i = 0; i < 5000; i++) q += "</a>";
    Result<PreparedQuery> r = engine.Prepare(q);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), "XPST0003");
  }
}

TEST(Robustness, PathologicallyNestedDocumentIsRejected) {
  // The XML parser has its own (larger) element-depth cap.
  std::string xml;
  for (int i = 0; i < 100000; i++) xml += "<d>";
  Result<NodePtr> doc = ParseXml(xml);
  EXPECT_FALSE(doc.ok());
}

TEST(Robustness, TruncatedAndMalformedUtf8Documents) {
  // Rejection is fine; crashing is not. Accepted documents must also
  // survive being queried and serialized.
  const std::string kDocs[] = {
      std::string("<a>\xC3</a>"),             // truncated 2-byte sequence
      std::string("<a>\xE2\x82</a>"),         // truncated 3-byte sequence
      std::string("<a>\xF0\x9F\x92</a>"),     // truncated 4-byte sequence
      std::string("<a>\xFF\xFE</a>"),         // invalid lead bytes
      std::string("<a v=\"\xC0\xAF\"/>"),     // overlong encoding
      std::string("<a>\xED\xA0\x80</a>"),     // lone surrogate half
      std::string("<a"),                      // truncated mid-tag
      std::string("<a><b>ok"),                // truncated document
      std::string("<a><b></a></b>"),          // mismatched tags
      std::string("<a>&#xD800;</a>"),         // surrogate char ref
  };
  for (const std::string& doc : kDocs) {
    Result<NodePtr> r = ParseXml(doc);
    if (!r.ok()) continue;
    DynamicContext ctx;
    ctx.RegisterDocument("f.xml", r.value());
    InterpToString("string(doc(\"f.xml\"))", &ctx);  // must not crash
  }
}

TEST(Robustness, FuzzCorpusNeverCrashes) {
  // A mini fuzz corpus swept across both engines and both exec modes under
  // defensive limits: every entry must produce a value or a coded error,
  // never a crash or a hang.
  const char* kCorpus[] = {
      // Huge numeric literals.
      "99999999999999999999999999999999999999",
      "-99999999999999999999999999999999999999 - 1",
      "1e308 * 1e308",
      "1.0000000000000000000000000000001 div 3",
      "xs:double(\"1e400\")",
      // Deep-but-legal nesting and odd-but-legal expressions.
      "((((((((((((((((((((1))))))))))))))))))))",
      "(1 to 100)[. mod 0 = 0]",
      "string-join(for $i in 1 to 64 "
      "return codepoints-to-string($i + 64), \"\")",
      // Cross-product blowups, stopped by the budgets below.
      "count(for $a in 1 to 10000, $b in 1 to 10000 return 1)",
      "count(for $a in 1 to 10000, $b in 1 to 10000 return <e/>)",
  };
  Engine engine;
  for (const char* query : kCorpus) {
    for (bool use_algebra : {true, false}) {
      for (ExecMode mode : {ExecMode::kStreaming, ExecMode::kMaterialize}) {
        EngineOptions opts;
        opts.use_algebra = use_algebra;
        opts.exec_mode = mode;
        opts.limits.deadline_ms = 5000;
        opts.limits.max_memory_bytes = 64 << 20;
        Result<PreparedQuery> q = engine.Prepare(query, opts);
        if (!q.ok()) {
          EXPECT_FALSE(q.status().code().empty()) << query;
          continue;
        }
        DynamicContext ctx;
        Result<std::string> r = q.value().ExecuteToString(&ctx);
        if (!r.ok()) EXPECT_FALSE(r.status().code().empty()) << query;
      }
    }
  }
}

}  // namespace
}  // namespace xqc
