// Tests for the XML data model, parser, serializer, axes, and item helpers.
#include <gtest/gtest.h>

#include "src/xml/axes.h"
#include "src/xml/item.h"
#include "src/xml/serializer.h"
#include "src/xml/xml_parser.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

TEST(XmlParserTest, SimpleDocument) {
  NodePtr doc = MustParseXml("<a><b x=\"1\">hi</b><c/></a>");
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->kind, NodeKind::kDocument);
  ASSERT_EQ(doc->children.size(), 1u);
  const Node& a = *doc->children[0];
  EXPECT_EQ(a.name.str(), "a");
  ASSERT_EQ(a.children.size(), 2u);
  EXPECT_EQ(a.children[0]->name.str(), "b");
  ASSERT_EQ(a.children[0]->attributes.size(), 1u);
  EXPECT_EQ(a.children[0]->attributes[0]->value, "1");
  EXPECT_EQ(a.children[0]->StringValue(), "hi");
}

TEST(XmlParserTest, DocumentOrderAssigned) {
  NodePtr doc = MustParseXml("<a><b/><c><d/></c></a>");
  const Node& a = *doc->children[0];
  EXPECT_LT(doc->start, a.start);
  EXPECT_LT(a.start, a.children[0]->start);
  EXPECT_LT(a.children[0]->start, a.children[1]->start);
  EXPECT_LT(a.children[1]->start, a.children[1]->children[0]->start);
  // Interval nesting: every node's (start, end] contains its subtree.
  EXPECT_EQ(doc->end, a.end);
  EXPECT_TRUE(doc->ContainsStrict(*a.children[1]->children[0]));
  EXPECT_TRUE(a.children[1]->ContainsStrict(*a.children[1]->children[0]));
  EXPECT_FALSE(a.children[0]->ContainsStrict(*a.children[1]));
  EXPECT_EQ(a.children[0]->start, a.children[0]->end);  // leaf
}

TEST(XmlParserTest, AttributesOrderedBeforeChildren) {
  NodePtr doc = MustParseXml("<a x=\"1\"><b/></a>");
  const Node& a = *doc->children[0];
  EXPECT_LT(a.start, a.attributes[0]->start);
  EXPECT_LT(a.attributes[0]->start, a.children[0]->start);
  // Attributes live inside their element's interval.
  EXPECT_TRUE(a.ContainsStrict(*a.attributes[0]));
}

TEST(XmlParserTest, EntitiesAndCdata) {
  NodePtr doc = MustParseXml("<a>&lt;x&gt; &amp; <![CDATA[<raw>]]> &#65;</a>");
  EXPECT_EQ(doc->children[0]->StringValue(), "<x> & <raw> A");
}

TEST(XmlParserTest, NumericCharacterReferences) {
  NodePtr doc = MustParseXml("<a>&#x41;&#233;</a>");
  EXPECT_EQ(doc->children[0]->StringValue(), "A\xC3\xA9");
}

TEST(XmlParserTest, CommentsAndPIs) {
  NodePtr doc = MustParseXml("<a><!--note--><?target data?></a>");
  const Node& a = *doc->children[0];
  ASSERT_EQ(a.children.size(), 2u);
  EXPECT_EQ(a.children[0]->kind, NodeKind::kComment);
  EXPECT_EQ(a.children[0]->value, "note");
  EXPECT_EQ(a.children[1]->kind, NodeKind::kPI);
  EXPECT_EQ(a.children[1]->name.str(), "target");
  EXPECT_EQ(a.children[1]->value, "data");
}

TEST(XmlParserTest, StripsBoundaryWhitespaceByDefault) {
  NodePtr doc = MustParseXml("<a>\n  <b>x</b>\n</a>");
  EXPECT_EQ(doc->children[0]->children.size(), 1u);
}

TEST(XmlParserTest, PreserveWhitespaceOption) {
  XmlParseOptions opts;
  opts.strip_boundary_whitespace = false;
  Result<NodePtr> r = ParseXml("<a>\n  <b>x</b>\n</a>", opts);
  ASSERT_OK(r);
  EXPECT_EQ(r.value()->children[0]->children.size(), 3u);
}

TEST(XmlParserTest, XmlDeclAndDoctypeSkipped) {
  NodePtr doc = MustParseXml(
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a/>");
  EXPECT_EQ(doc->children[0]->name.str(), "a");
}

TEST(XmlParserTest, Errors) {
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("no root").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("<a x=1/>").ok());
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>").ok());
}

TEST(SerializerTest, RoundTrip) {
  const std::string xml = "<a x=\"1&quot;\"><b>t&lt;t</b><c/></a>";
  NodePtr doc = MustParseXml(xml);
  EXPECT_EQ(SerializeNode(*doc), xml);
}

TEST(SerializerTest, SequenceWithAtomics) {
  Sequence s = {AtomicValue::Integer(1), AtomicValue::String("a"),
                MustParseXml("<x/>")->children[0]};
  EXPECT_EQ(SerializeSequence(s), "1 a<x/>");
}

TEST(ItemTest, AtomizeUntypedNode) {
  NodePtr doc = MustParseXml("<a>42</a>");
  Sequence s = {doc->children[0]};
  Sequence atoms = Atomize(s).value();
  ASSERT_EQ(atoms.size(), 1u);
  EXPECT_EQ(atoms[0].atomic().type(), AtomicType::kUntypedAtomic);
  EXPECT_EQ(atoms[0].atomic().AsString(), "42");
}

TEST(ItemTest, AtomizeTypedAttribute) {
  NodePtr doc = MustParseXml("<a p=\"3.5\"/>");
  NodePtr attr = doc->children[0]->attributes[0];
  attr->type_annotation = Symbol("xs:decimal");
  Sequence atoms = Atomize({Item(attr)}).value();
  EXPECT_EQ(atoms[0].atomic().type(), AtomicType::kDecimal);
  EXPECT_EQ(atoms[0].atomic().AsDouble(), 3.5);
}

TEST(ItemTest, EffectiveBooleanValue) {
  EXPECT_FALSE(EffectiveBooleanValue({}).value());
  EXPECT_TRUE(EffectiveBooleanValue({AtomicValue::Boolean(true)}).value());
  EXPECT_FALSE(EffectiveBooleanValue({AtomicValue::Integer(0)}).value());
  EXPECT_TRUE(EffectiveBooleanValue({AtomicValue::String("x")}).value());
  EXPECT_FALSE(EffectiveBooleanValue({AtomicValue::Untyped("")}).value());
  NodePtr doc = MustParseXml("<a/>");
  EXPECT_TRUE(EffectiveBooleanValue({Item(doc)}).value());
  // Multi-item atomic sequence has no EBV.
  EXPECT_FALSE(EffectiveBooleanValue(
                   {AtomicValue::Integer(1), AtomicValue::Integer(2)}).ok());
  // Date has no EBV.
  EXPECT_FALSE(EffectiveBooleanValue(
                   {AtomicValue::Lexical(AtomicType::kDate, "2026-01-01")}).ok());
}

TEST(ItemTest, DistinctDocOrder) {
  NodePtr doc = MustParseXml("<a><b/><c/></a>");
  NodePtr a = doc->children[0];
  Sequence s = {a->children[1], a->children[0], a->children[1]};
  Sequence d = DistinctDocOrder(s).value();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].node()->name.str(), "b");
  EXPECT_EQ(d[1].node()->name.str(), "c");
  EXPECT_FALSE(DistinctDocOrder({AtomicValue::Integer(1)}).ok());
}

TEST(NodeTest, DeepCopyDetachesAndPreservesTypes) {
  NodePtr doc = MustParseXml("<a x=\"1\"><b>t</b></a>");
  NodePtr a = doc->children[0];
  a->type_annotation = Symbol("T");
  NodePtr copy_keep = DeepCopy(*a, /*keep_types=*/true);
  EXPECT_EQ(copy_keep->type_annotation.str(), "T");
  EXPECT_EQ(copy_keep->parent, nullptr);
  EXPECT_EQ(copy_keep->children[0]->parent, copy_keep.get());
  NodePtr copy_strip = DeepCopy(*a, /*keep_types=*/false);
  EXPECT_TRUE(copy_strip->type_annotation.empty());
  // Mutating the copy leaves the original untouched.
  copy_keep->children[0]->children[0]->value = "changed";
  EXPECT_EQ(a->StringValue(), "t");
}

// ---- axes -------------------------------------------------------------------

class AxesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    doc_ = MustParseXml(
        "<root><p id=\"1\"><q/><r><q/></r></p><p id=\"2\"/><s/></root>");
    root_ = doc_->children[0];
  }
  NodePtr doc_, root_;
};

TEST_F(AxesTest, ChildAxis) {
  Sequence out = TreeJoin({Item(root_)}, Axis::kChild,
                          ItemTest::Element(Symbol("p")), nullptr).value();
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(AxesTest, DescendantAxis) {
  Sequence out = TreeJoin({Item(root_)}, Axis::kDescendant,
                          ItemTest::Element(Symbol("q")), nullptr).value();
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(DocOrderLess(out[0].node().get(), out[1].node().get()));
}

TEST_F(AxesTest, DescendantOrSelf) {
  Sequence out = TreeJoin({Item(root_)}, Axis::kDescendantOrSelf,
                          ItemTest::AnyNode(), nullptr).value();
  EXPECT_EQ(out.size(), 7u);  // root, p, q, r, q, p, s
}

TEST_F(AxesTest, AttributeAxis) {
  Sequence ps = TreeJoin({Item(root_)}, Axis::kChild,
                         ItemTest::Element(Symbol("p")), nullptr).value();
  Sequence out = TreeJoin(ps, Axis::kAttribute,
                          ItemTest::Attribute(Symbol("id")), nullptr).value();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].node()->value, "1");
  EXPECT_EQ(out[1].node()->value, "2");
}

TEST_F(AxesTest, ParentAndAncestor) {
  Sequence qs = TreeJoin({Item(root_)}, Axis::kDescendant,
                         ItemTest::Element(Symbol("q")), nullptr).value();
  Sequence parents = TreeJoin(qs, Axis::kParent, ItemTest::AnyNode(), nullptr).value();
  EXPECT_EQ(parents.size(), 2u);  // p and r
  Sequence ancestors =
      TreeJoin({qs[1]}, Axis::kAncestor, ItemTest::AnyNode(), nullptr).value();
  EXPECT_EQ(ancestors.size(), 4u);  // doc, root, p, r
  // Ancestors arrive in document order (doc first).
  EXPECT_EQ(ancestors[0].node()->kind, NodeKind::kDocument);
}

TEST_F(AxesTest, Siblings) {
  Sequence ps = TreeJoin({Item(root_)}, Axis::kChild,
                         ItemTest::Element(Symbol("p")), nullptr).value();
  Sequence foll = TreeJoin({ps[0]}, Axis::kFollowingSibling,
                           ItemTest::AnyNode(), nullptr).value();
  EXPECT_EQ(foll.size(), 2u);  // second p and s
  Sequence prec = TreeJoin({ps[1]}, Axis::kPrecedingSibling,
                           ItemTest::AnyNode(), nullptr).value();
  EXPECT_EQ(prec.size(), 1u);
}

TEST_F(AxesTest, FollowingAndPreceding) {
  Sequence qs = TreeJoin({Item(root_)}, Axis::kDescendant,
                         ItemTest::Element(Symbol("q")), nullptr).value();
  // following of first q: r, q (inside r), p#2, s.
  Sequence foll = TreeJoin({qs[0]}, Axis::kFollowing,
                           ItemTest::AnyNode(), nullptr).value();
  EXPECT_EQ(foll.size(), 4u);
  Sequence prec = TreeJoin({qs[1]}, Axis::kPreceding,
                           ItemTest::AnyNode(), nullptr).value();
  EXPECT_EQ(prec.size(), 1u);  // the first q only (ancestors excluded)
}

TEST_F(AxesTest, SelfAxisFiltersByTest) {
  Sequence out = TreeJoin({Item(root_)}, Axis::kSelf,
                          ItemTest::Element(Symbol("nope")), nullptr).value();
  EXPECT_TRUE(out.empty());
}

TEST_F(AxesTest, TreeJoinDeduplicates) {
  // Both p elements' descendants include overlapping sets when queried from
  // duplicated inputs.
  Sequence in = {Item(root_), Item(root_)};
  Sequence out = TreeJoin(in, Axis::kDescendant,
                          ItemTest::Element(Symbol("q")), nullptr).value();
  EXPECT_EQ(out.size(), 2u);
}

TEST_F(AxesTest, TreeJoinRejectsAtomics) {
  EXPECT_FALSE(TreeJoin({AtomicValue::Integer(1)}, Axis::kChild,
                        ItemTest::AnyNode(), nullptr).ok());
}

TEST(AxisNameTest, RoundTrip) {
  for (int i = 0; i <= static_cast<int>(Axis::kPreceding); i++) {
    Axis a = static_cast<Axis>(i);
    Axis back;
    ASSERT_TRUE(AxisFromName(AxisName(a), &back));
    EXPECT_EQ(back, a);
  }
  Axis a;
  EXPECT_FALSE(AxisFromName("sideways", &a));
}

}  // namespace
}  // namespace xqc
