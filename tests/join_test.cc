// Tests for the Section 6 / Figure 6 join algorithms: the order-preserving
// XQuery hash join and its ordered-index variant, exercised directly and
// differentially against the nested-loop join with full predicate
// semantics (existential quantification, atomization, untyped casting,
// numeric type promotion).
#include <gtest/gtest.h>

#include <cmath>

#include "src/runtime/joins.h"
#include "src/types/compare.h"
#include "test_util.h"

namespace xqc {
namespace {

Tuple MakeTuple(const char* field, AtomicValue v) {
  Tuple t;
  t.Set(Symbol(field), {std::move(v)});
  return t;
}

Tuple MakeTupleSeq(const char* field, Sequence s) {
  Tuple t;
  t.Set(Symbol(field), std::move(s));
  return t;
}

KeyFn FieldKey(const char* field) {
  Symbol f(field);
  return [f](const Tuple& t) -> Result<Sequence> {
    const Sequence* v = t.Get(f);
    if (v == nullptr) return Sequence{};
    return Atomize(*v);
  };
}

/// The reference: nested loops with op:general-eq on the two key fields.
Result<Table> ReferenceJoin(const Table& left, const Table& right,
                            const char* lf, const char* rf, bool outer) {
  Symbol l(lf), r(rf);
  PredFn pred = [l, r](const Tuple& t) -> Result<bool> {
    const Sequence* a = t.Get(l);
    const Sequence* b = t.Get(r);
    if (a == nullptr || b == nullptr) return false;
    return GeneralCompare(CompOp::kEq, *a, *b);
  };
  return NestedLoopJoin(left, right, pred, outer, Symbol("null"));
}

std::string TableToString(const Table& t) {
  std::string out;
  for (const Tuple& tup : t) {
    out += "[";
    for (const auto& [f, v] : tup.entries()) {
      out += f.str() + "=";
      for (const Item& it : *v) out += it.StringValue() + ",";
      out += ";";
    }
    out += "]";
  }
  return out;
}

AtomicValue RandomKeyForRange(uint64_t* state) {
  auto next = [&] {
    *state = *state * 6364136223846793005ull + 1442695040888963407ull;
    return *state >> 33;
  };
  int v = static_cast<int>(next() % 12);
  switch (next() % 4) {
    case 0: return AtomicValue::Integer(v);
    case 1: return AtomicValue::Double(v + 0.5);
    case 2: return AtomicValue::Untyped(std::to_string(v));
    default: return AtomicValue::String("s" + std::to_string(v));
  }
}

/// Asserts hash join == ordered-index join == nested-loop reference.
void CheckAgainstReference(const Table& left, const Table& right,
                           const char* lf, const char* rf) {
  for (bool outer : {false, true}) {
    Result<Table> ref = ReferenceJoin(left, right, lf, rf, outer);
    ASSERT_OK(ref);
    for (bool ordered : {false, true}) {
      Result<Table> got =
          EqualityJoin(left, FieldKey(lf), right, FieldKey(rf), outer,
                       Symbol("null"), ordered);
      ASSERT_OK(got);
      EXPECT_EQ(TableToString(got.value()), TableToString(ref.value()))
          << "outer=" << outer << " ordered=" << ordered;
    }
  }
}

// ---- basic matching ----------------------------------------------------------

TEST(HashJoin, IntegerKeys) {
  Table left = {MakeTuple("a", AtomicValue::Integer(1)),
                MakeTuple("a", AtomicValue::Integer(2)),
                MakeTuple("a", AtomicValue::Integer(3))};
  Table right = {MakeTuple("b", AtomicValue::Integer(2)),
                 MakeTuple("b", AtomicValue::Integer(1)),
                 MakeTuple("b", AtomicValue::Integer(1))};
  CheckAgainstReference(left, right, "a", "b");
}

TEST(HashJoin, CrossTypeNumericPromotion) {
  // integer 1 must join decimal 1.0, float 1.0f, and double 1e0.
  Table left = {MakeTuple("a", AtomicValue::Integer(1)),
                MakeTuple("a", AtomicValue::Decimal(2.5))};
  Table right = {MakeTuple("b", AtomicValue::Decimal(1.0)),
                 MakeTuple("b", AtomicValue::Double(1.0)),
                 MakeTuple("b", AtomicValue::Float(2.5)),
                 MakeTuple("b", AtomicValue::Integer(9))};
  CheckAgainstReference(left, right, "a", "b");
  // Count explicitly: integer 1 matches two right tuples, decimal 2.5 one.
  Result<Table> r = EqualityJoin(left, FieldKey("a"), right, FieldKey("b"),
                                 false, Symbol("null"), false);
  ASSERT_OK(r);
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(HashJoin, UntypedCastsToOtherSidesType) {
  // fs:convert-operand: untyped "07" vs integer 7 compares numerically
  // (untyped -> double), but untyped "07" vs untyped "7" compares as
  // STRINGS and must not match.
  Table left = {MakeTuple("a", AtomicValue::Untyped("07"))};
  Table right = {MakeTuple("b", AtomicValue::Integer(7)),
                 MakeTuple("b", AtomicValue::Untyped("7")),
                 MakeTuple("b", AtomicValue::Untyped("07"))};
  CheckAgainstReference(left, right, "a", "b");
  Result<Table> r = EqualityJoin(left, FieldKey("a"), right, FieldKey("b"),
                                 false, Symbol("null"), false);
  ASSERT_OK(r);
  EXPECT_EQ(r.value().size(), 2u);  // integer 7 and untyped "07"
}

TEST(HashJoin, UntypedVsStringComparesAsString) {
  Table left = {MakeTuple("a", AtomicValue::Untyped("x1"))};
  Table right = {MakeTuple("b", AtomicValue::String("x1")),
                 MakeTuple("b", AtomicValue::String("x2"))};
  CheckAgainstReference(left, right, "a", "b");
}

TEST(HashJoin, TypedStringNeverMatchesNumber) {
  // xs:string "7" vs xs:integer 7: incomparable (no untyped side).
  Table left = {MakeTuple("a", AtomicValue::String("7"))};
  Table right = {MakeTuple("b", AtomicValue::Integer(7))};
  Result<Table> r = EqualityJoin(left, FieldKey("a"), right, FieldKey("b"),
                                 false, Symbol("null"), false);
  ASSERT_OK(r);
  EXPECT_TRUE(r.value().empty());
}

TEST(HashJoin, LexicalTypesMatchOnlySameType) {
  Table left = {MakeTuple("a", AtomicValue::Lexical(AtomicType::kDate,
                                                    "2026-07-06"))};
  Table right = {
      MakeTuple("b", AtomicValue::Lexical(AtomicType::kDate, "2026-07-06")),
      MakeTuple("b", AtomicValue::Lexical(AtomicType::kTime, "2026-07-06")),
      MakeTuple("b", AtomicValue::Untyped("2026-07-06"))};
  CheckAgainstReference(left, right, "a", "b");
  Result<Table> r = EqualityJoin(left, FieldKey("a"), right, FieldKey("b"),
                                 false, Symbol("null"), false);
  ASSERT_OK(r);
  EXPECT_EQ(r.value().size(), 2u);  // same date + untyped converted to date
}

TEST(HashJoin, NaNNeverJoins) {
  Table left = {MakeTuple("a", AtomicValue::Double(std::nan("")))};
  Table right = {MakeTuple("b", AtomicValue::Double(std::nan(""))),
                 MakeTuple("b", AtomicValue::Double(1.0))};
  Result<Table> r = EqualityJoin(left, FieldKey("a"), right, FieldKey("b"),
                                 false, Symbol("null"), false);
  ASSERT_OK(r);
  EXPECT_TRUE(r.value().empty());
}

// ---- existential semantics and order -------------------------------------------

TEST(HashJoin, ExistentialSequenceKeysDeduplicate) {
  // A left key sequence matching one right tuple through TWO of its values
  // must produce the right tuple ONCE (the removeDuplicates of Figure 6).
  Table left = {MakeTupleSeq(
      "a", {AtomicValue::Integer(1), AtomicValue::Integer(2)})};
  Table right = {MakeTupleSeq(
      "b", {AtomicValue::Integer(1), AtomicValue::Integer(2)})};
  Result<Table> r = EqualityJoin(left, FieldKey("a"), right, FieldKey("b"),
                                 false, Symbol("null"), false);
  ASSERT_OK(r);
  EXPECT_EQ(r.value().size(), 1u);
  CheckAgainstReference(left, right, "a", "b");
}

TEST(HashJoin, EmptyKeysMatchNothing) {
  Table left = {MakeTupleSeq("a", {}),
                MakeTuple("a", AtomicValue::Integer(1))};
  Table right = {MakeTuple("b", AtomicValue::Integer(1)),
                 MakeTupleSeq("b", {})};
  CheckAgainstReference(left, right, "a", "b");
}

TEST(HashJoin, PreservesLeftMajorRightMinorOrder) {
  // Matches must appear in ORIGINAL right order, not hash order
  // (Figure 6's order counter + sortOnOrderField).
  Table left = {MakeTupleSeq("a", {AtomicValue::Integer(5),
                                   AtomicValue::Integer(3)})};
  Table right;
  for (int i : {3, 9, 5, 3, 5}) {
    Tuple t;
    t.Set(Symbol("b"), {AtomicValue::Integer(i)});
    t.Set(Symbol("pos"), {AtomicValue::Integer(
                             static_cast<int64_t>(right.size()))});
    right.push_back(t);
  }
  Result<Table> r = EqualityJoin(left, FieldKey("a"), right, FieldKey("b"),
                                 false, Symbol("null"), false);
  ASSERT_OK(r);
  ASSERT_EQ(r.value().size(), 4u);
  // Right positions 0,2,3,4 in original order despite probing key 5 first.
  std::vector<int64_t> pos;
  for (const Tuple& t : r.value()) {
    pos.push_back((*t.Get(Symbol("pos")))[0].atomic().AsInt());
  }
  EXPECT_EQ(pos, (std::vector<int64_t>{0, 2, 3, 4}));
}

TEST(HashJoin, OuterJoinEmitsNullFlaggedRows) {
  Table left = {MakeTuple("a", AtomicValue::Integer(1)),
                MakeTuple("a", AtomicValue::Integer(99))};
  Table right = {MakeTuple("b", AtomicValue::Integer(1))};
  Result<Table> r = EqualityJoin(left, FieldKey("a"), right, FieldKey("b"),
                                 true, Symbol("null"), false);
  ASSERT_OK(r);
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_FALSE((*r.value()[0].Get(Symbol("null")))[0].atomic().AsBool());
  EXPECT_TRUE((*r.value()[1].Get(Symbol("null")))[0].atomic().AsBool());
  EXPECT_EQ(r.value()[1].Get(Symbol("b")), nullptr);  // no right fields
}

TEST(HashJoin, ResidualPredicateFiltersAndAffectsNullRows) {
  Table left = {MakeTuple("a", AtomicValue::Integer(1))};
  Table right = {MakeTuple("b", AtomicValue::Integer(1)),
                 MakeTuple("b", AtomicValue::Integer(1))};
  right[0].Set(Symbol("keep"), {AtomicValue::Boolean(false)});
  right[1].Set(Symbol("keep"), {AtomicValue::Boolean(true)});
  PredFn residual = [](const Tuple& t) -> Result<bool> {
    return (*t.Get(Symbol("keep")))[0].atomic().AsBool();
  };
  Result<Table> r = EqualityJoin(left, FieldKey("a"), right, FieldKey("b"),
                                 true, Symbol("null"), false, &residual);
  ASSERT_OK(r);
  ASSERT_EQ(r.value().size(), 1u);
  EXPECT_FALSE((*r.value()[0].Get(Symbol("null")))[0].atomic().AsBool());
  // When the residual rejects every match, the outer join emits a null row.
  PredFn reject_all = [](const Tuple&) -> Result<bool> { return false; };
  Result<Table> r2 = EqualityJoin(left, FieldKey("a"), right, FieldKey("b"),
                                  true, Symbol("null"), false, &reject_all);
  ASSERT_OK(r2);
  ASSERT_EQ(r2.value().size(), 1u);
  EXPECT_TRUE((*r2.value()[0].Get(Symbol("null")))[0].atomic().AsBool());
}

// ---- inequality (range) sort join ----------------------------------------------

/// Nested-loop reference for an arbitrary comparison operator.
Result<Table> ReferenceCompJoin(const Table& left, const Table& right,
                                CompOp op, bool outer) {
  Symbol l("a"), r("b");
  PredFn pred = [l, r, op](const Tuple& t) -> Result<bool> {
    const Sequence* a = t.Get(l);
    const Sequence* b = t.Get(r);
    if (a == nullptr || b == nullptr) return false;
    return GeneralCompare(op, *a, *b);
  };
  return NestedLoopJoin(left, right, pred, outer, Symbol("null"));
}

void CheckRangeAgainstReference(const Table& left, const Table& right,
                                CompOp op) {
  Result<std::shared_ptr<const MaterializedRangeInner>> inner =
      MaterializeRangeInner(right, FieldKey("b"));
  ASSERT_OK(inner);
  for (bool outer : {false, true}) {
    Result<Table> ref = ReferenceCompJoin(left, right, op, outer);
    ASSERT_OK(ref);
    Result<Table> got =
        InequalityJoinWithIndex(left, FieldKey("a"), right, *inner.value(),
                                op, outer, Symbol("null"));
    ASSERT_OK(got);
    EXPECT_EQ(TableToString(got.value()), TableToString(ref.value()))
        << "op=" << CompOpName(op) << " outer=" << outer;
  }
}

TEST(RangeJoin, NumericInequalities) {
  Table left = {MakeTuple("a", AtomicValue::Integer(5)),
                MakeTuple("a", AtomicValue::Decimal(2.5)),
                MakeTuple("a", AtomicValue::Untyped("4"))};
  Table right = {MakeTuple("b", AtomicValue::Integer(1)),
                 MakeTuple("b", AtomicValue::Double(3.0)),
                 MakeTuple("b", AtomicValue::Integer(5)),
                 MakeTuple("b", AtomicValue::Untyped("2"))};
  for (CompOp op : {CompOp::kLt, CompOp::kLe, CompOp::kGt, CompOp::kGe}) {
    CheckRangeAgainstReference(left, right, op);
  }
}

TEST(RangeJoin, StringAndUntypedLexicalOrder) {
  Table left = {MakeTuple("a", AtomicValue::String("banana")),
                MakeTuple("a", AtomicValue::Untyped("cherry"))};
  Table right = {MakeTuple("b", AtomicValue::String("apple")),
                 MakeTuple("b", AtomicValue::Untyped("banana")),
                 MakeTuple("b", AtomicValue::String("date"))};
  for (CompOp op : {CompOp::kLt, CompOp::kLe, CompOp::kGt, CompOp::kGe}) {
    CheckRangeAgainstReference(left, right, op);
  }
}

TEST(RangeJoin, UntypedVsUntypedComparesAsString) {
  // "10" < "9" lexically (the Table 2 row-1 trap) — both the reference and
  // the range join must agree.
  Table left = {MakeTuple("a", AtomicValue::Untyped("10"))};
  Table right = {MakeTuple("b", AtomicValue::Untyped("9"))};
  CheckRangeAgainstReference(left, right, CompOp::kLt);
  // ...but untyped "10" vs integer 9 compares numerically (no match).
  Table right2 = {MakeTuple("b", AtomicValue::Integer(9))};
  CheckRangeAgainstReference(left, right2, CompOp::kLt);
}

TEST(RangeJoin, ExistentialMultiValueKeys) {
  Table left = {MakeTupleSeq("a", {AtomicValue::Integer(1),
                                   AtomicValue::Integer(10)})};
  Table right = {MakeTuple("b", AtomicValue::Integer(5)),
                 MakeTuple("b", AtomicValue::Integer(20))};
  for (CompOp op : {CompOp::kLt, CompOp::kGt}) {
    CheckRangeAgainstReference(left, right, op);
  }
}

TEST(RangeJoin, RandomizedDifferential) {
  uint64_t state = 99;
  for (int round = 0; round < 6; round++) {
    Table left, right;
    for (int i = 0; i < 20; i++) {
      left.push_back(MakeTuple("a", RandomKeyForRange(&state)));
      right.push_back(MakeTuple("b", RandomKeyForRange(&state)));
    }
    for (CompOp op : {CompOp::kLt, CompOp::kLe, CompOp::kGt, CompOp::kGe}) {
      CheckRangeAgainstReference(left, right, op);
    }
  }
}

// ---- randomized differential property -------------------------------------------

struct RandomJoinParams {
  uint64_t seed;
  int left_size;
  int right_size;
  int key_space;
};

class RandomJoinTest : public ::testing::TestWithParam<RandomJoinParams> {};

AtomicValue RandomKey(uint64_t* state, int key_space) {
  auto next = [&] {
    *state = *state * 6364136223846793005ull + 1442695040888963407ull;
    return *state >> 33;
  };
  int v = static_cast<int>(next() % key_space);
  switch (next() % 6) {
    case 0: return AtomicValue::Integer(v);
    case 1: return AtomicValue::Decimal(v);
    case 2: return AtomicValue::Double(v);
    case 3: return AtomicValue::Untyped(std::to_string(v));
    case 4: return AtomicValue::String(std::to_string(v));
    default: return AtomicValue::Untyped("k" + std::to_string(v));
  }
}

TEST_P(RandomJoinTest, HashAndSortAgreeWithNestedLoop) {
  const RandomJoinParams& p = GetParam();
  uint64_t state = p.seed;
  Table left, right;
  for (int i = 0; i < p.left_size; i++) {
    Sequence keys;
    int n = 1 + static_cast<int>(state % 3);
    for (int k = 0; k < n; k++) keys.push_back(RandomKey(&state, p.key_space));
    Tuple t = MakeTupleSeq("a", std::move(keys));
    t.Set(Symbol("li"), {AtomicValue::Integer(i)});
    left.push_back(std::move(t));
  }
  for (int i = 0; i < p.right_size; i++) {
    Sequence keys;
    int n = 1 + static_cast<int>(state % 2);
    for (int k = 0; k < n; k++) keys.push_back(RandomKey(&state, p.key_space));
    Tuple t = MakeTupleSeq("b", std::move(keys));
    t.Set(Symbol("ri"), {AtomicValue::Integer(i)});
    right.push_back(std::move(t));
  }
  CheckAgainstReference(left, right, "a", "b");
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomJoinTest,
    ::testing::Values(RandomJoinParams{1, 10, 10, 4},
                      RandomJoinParams{2, 25, 15, 8},
                      RandomJoinParams{3, 40, 40, 5},
                      RandomJoinParams{4, 60, 30, 20},
                      RandomJoinParams{5, 13, 77, 3},
                      RandomJoinParams{6, 50, 50, 100},
                      RandomJoinParams{7, 1, 50, 2},
                      RandomJoinParams{8, 50, 1, 2},
                      RandomJoinParams{9, 0, 10, 2},
                      RandomJoinParams{10, 10, 0, 2}),
    [](const ::testing::TestParamInfo<RandomJoinParams>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace xqc
