// Tests for static projection-path inference: inferred paths, conservative
// failure cases, and the key soundness property — every projectable XMark
// query returns identical results over the projected document.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/engine/engine.h"
#include "src/opt/projection_infer.h"
#include "src/xml/project.h"
#include "src/xmark/xmark.h"
#include "src/xquery/parser.h"
#include "test_util.h"

namespace xqc {
namespace {

ProjectionAnalysis Infer(const std::string& query) {
  Result<Query> q = ParseXQuery(query);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return InferProjectionPaths(q.value());
}

bool HasPath(const ProjectionAnalysis& a, const char* var, const char* path) {
  auto it = a.paths_by_var.find(Symbol(var));
  if (it == a.paths_by_var.end()) return false;
  return std::find(it->second.begin(), it->second.end(), path) !=
         it->second.end();
}

TEST(ProjectionInfer, SimplePathQuery) {
  ProjectionAnalysis a = Infer(
      "declare variable $d external; count($d/site/people/person)");
  ASSERT_TRUE(a.projectable);
  EXPECT_TRUE(HasPath(a, "d", "site/people/person")) << "missing path";
}

TEST(ProjectionInfer, DescendantAndAttributePaths) {
  ProjectionAnalysis a = Infer(
      "declare variable $d external; "
      "for $p in $d//person return string($p/@id)");
  ASSERT_TRUE(a.projectable);
  EXPECT_TRUE(HasPath(a, "d", "//person/@id"));
}

TEST(ProjectionInfer, ReturnedNodesKeepSubtrees) {
  ProjectionAnalysis a = Infer(
      "declare variable $d external; "
      "for $p in $d/site/person return <x>{$p}</x>");
  ASSERT_TRUE(a.projectable);
  // $p is copied into output: its whole subtree is an end.
  EXPECT_TRUE(HasPath(a, "d", "site/person"));
}

TEST(ProjectionInfer, JoinQueryCollectsBothSides) {
  ProjectionAnalysis a = Infer(
      "declare variable $auction external; "
      "for $p in $auction//person "
      "let $t := for $c in $auction//closed_auction "
      "          where $c/buyer/@person = $p/@id return $c "
      "return count($t)");
  ASSERT_TRUE(a.projectable);
  EXPECT_TRUE(HasPath(a, "auction", "//person/@id"));
  EXPECT_TRUE(HasPath(a, "auction", "//closed_auction/buyer/@person"));
  EXPECT_TRUE(HasPath(a, "auction", "//closed_auction"));
}

TEST(ProjectionInfer, PredicatePathsAreCollected) {
  ProjectionAnalysis a = Infer(
      "declare variable $d external; $d//person[age = 31]/name");
  ASSERT_TRUE(a.projectable);
  EXPECT_TRUE(HasPath(a, "d", "//person/age"));
  EXPECT_TRUE(HasPath(a, "d", "//person/name"));
}

TEST(ProjectionInfer, ParentAxisIsNotProjectable) {
  EXPECT_FALSE(Infer("declare variable $d external; $d//name/..").projectable);
  EXPECT_FALSE(Infer("declare variable $d external; "
                     "$d//person/ancestor::site").projectable);
}

TEST(ProjectionInfer, RootFunctionIsNotProjectable) {
  EXPECT_FALSE(Infer("declare variable $d external; "
                     "root($d//person)").projectable);
  EXPECT_FALSE(Infer("declare variable $d external; "
                     "for $p in $d//person return /site").projectable);
}

TEST(ProjectionInfer, NodesEscapingToUserFunctionsNotProjectable) {
  EXPECT_FALSE(Infer("declare variable $d external; "
                     "declare function local:f($n) { $n/.. }; "
                     "local:f($d//person)").projectable);
  // ...but functions over atomics are fine.
  ProjectionAnalysis a = Infer(
      "declare variable $d external; "
      "declare function local:dbl($x) { $x * 2 }; "
      "local:dbl(count($d//person))");
  EXPECT_TRUE(a.projectable);
}

TEST(ProjectionInfer, UnnavigatedVariableNeedsNoProjection) {
  ProjectionAnalysis a = Infer("declare variable $n external; $n + 1");
  ASSERT_TRUE(a.projectable);
  // Used directly (atomized whole) -> "whole document" -> no path entry.
  EXPECT_EQ(a.paths_by_var.count(Symbol("n")), 0u);
}

// ---- end-to-end soundness over XMark --------------------------------------------

TEST(ProjectionInfer, XMarkQueriesAgreeOnProjectedDocument) {
  XMarkOptions opts;
  opts.target_bytes = 48 * 1024;
  Result<NodePtr> doc = GenerateXMarkDocument(opts);
  ASSERT_OK(doc);
  Engine engine;
  int projectable = 0;
  for (int qn = 1; qn <= 20; qn++) {
    Result<Query> parsed = ParseXQuery(XMarkQuery(qn));
    ASSERT_OK(parsed);
    ProjectionAnalysis a = InferProjectionPaths(parsed.value());
    if (!a.projectable) continue;
    auto it = a.paths_by_var.find(Symbol("auction"));
    if (it == a.paths_by_var.end()) continue;
    projectable++;

    Result<NodePtr> projected = ProjectTree(doc.value(), it->second);
    ASSERT_OK(projected);

    Result<PreparedQuery> q = engine.Prepare(XMarkQuery(qn));
    ASSERT_OK(q);
    std::string full, pruned;
    for (int which = 0; which < 2; which++) {
      DynamicContext ctx;
      ctx.BindVariable(Symbol("auction"),
                       {Item(which == 0 ? doc.value() : projected.value())});
      Result<std::string> r = q.value().ExecuteToString(&ctx);
      ASSERT_TRUE(r.ok()) << "Q" << qn << ": " << r.status().ToString();
      (which == 0 ? full : pruned) = r.value();
    }
    EXPECT_EQ(full, pruned) << "Q" << qn << " differs on projected document";
  }
  // Most of the suite should be projectable.
  EXPECT_GE(projectable, 12);
}

}  // namespace
}  // namespace xqc
