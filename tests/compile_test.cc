// Tests for the algebraic compilation rules (Section 4, Figures 2 and 3):
// FLWOR clause-by-clause compilation through the auxiliary judgment,
// path-step compilation to TreeJoin, the paper's worked examples, and
// typeswitch compilation via TypeMatches + Cond over a common tuple field.
#include <gtest/gtest.h>

#include "src/compile/compiler.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"
#include "test_util.h"

namespace xqc {
namespace {

/// Parses + normalizes + compiles a standalone expression.
std::string CompileToPlan(const std::string& text) {
  Result<ExprPtr> parsed = ParseXQueryExpr(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString() << " " << text;
  if (!parsed.ok()) return "";
  Result<ExprPtr> core = NormalizeExpr(parsed.value());
  EXPECT_TRUE(core.ok()) << core.status().ToString();
  if (!core.ok()) return "";
  Result<OpPtr> plan = CompileExpr(core.value());
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  if (!plan.ok()) return "";
  return OpToString(*plan.value());
}

// ---- basic rules --------------------------------------------------------------

TEST(CompileRules, SequenceRule) {
  // (SEQUENCE): Expr1, Expr2 => Sequence(Op1, Op2).
  EXPECT_EQ(CompileToPlan("(1, 2)"), "Sequence(1,2)");
  EXPECT_EQ(CompileToPlan("()"), "Empty()");
}

TEST(CompileRules, LiteralsAndVariables) {
  EXPECT_EQ(CompileToPlan("42"), "42");
  EXPECT_EQ(CompileToPlan("\"s\""), "\"s\"");
  // Free variables compile to algebra-context lookups.
  EXPECT_EQ(CompileToPlan("$x"), "Var[x]");
}

TEST(CompileRules, OperatorsBecomeCalls) {
  EXPECT_EQ(CompileToPlan("1 + 2"), "op:plus(1,2)");
  EXPECT_EQ(CompileToPlan("1 eq 2"), "op:eq(1,2)");
  EXPECT_EQ(CompileToPlan("1 = 2"), "op:general-eq(1,2)");
  EXPECT_EQ(CompileToPlan("1 to 3"), "op:to(1,3)");
}

TEST(CompileRules, IfBecomesCond) {
  EXPECT_EQ(CompileToPlan("if (1) then 2 else 3"),
            "Cond{2,3}(fn:boolean(1))");
}

// ---- Figure 2: FLWOR rules -----------------------------------------------------

TEST(CompileFLWOR, ForRuleShape) {
  // (FOR): MapConcat{MapFromItem{[x:IN]}(Op1)}(Op0), then the return's
  // MapToItem. Top level starts from ([]).
  EXPECT_EQ(CompileToPlan("for $x in $s return $x"),
            "MapToItem{IN#x}(MapConcat{MapFromItem{[x:IN]}(Var[s])}(([])))");
}

TEST(CompileFLWOR, ForWithTypeAssertsPerItem) {
  // (FOR) with `as T`: the [as T]_IN judgment produces TypeAssert over the
  // item.
  EXPECT_EQ(
      CompileToPlan("for $x as xs:integer in $s return $x"),
      "MapToItem{IN#x}(MapConcat{MapFromItem{[x:TypeAssert[xs:integer]"
      "(IN)]}(Var[s])}(([])))");
}

TEST(CompileFLWOR, ForAtIntroducesMapIndex) {
  // (FORAT): Op5 = MapIndex[i](Op4).
  EXPECT_EQ(CompileToPlan("for $x at $i in $s return $i"),
            "MapToItem{IN#i}(MapIndex[i](MapConcat{MapFromItem{[x:IN]}"
            "(Var[s])}(([]))))");
}

TEST(CompileFLWOR, LetRuleShape) {
  // (LET): MapConcat{[v:Op2]}(Op0).
  EXPECT_EQ(CompileToPlan("for $x in $s let $y := $x return $y"),
            "MapToItem{IN#y}(MapConcat{[y:IN#x]}(MapConcat{MapFromItem{"
            "[x:IN]}(Var[s])}(([]))))");
}

TEST(CompileFLWOR, WhereRuleShape) {
  // (WHERE): Select{pred}(Op0). Boolean predicates stay bare.
  EXPECT_EQ(CompileToPlan("for $x in $s where $x = 1 return $x"),
            "MapToItem{IN#x}(Select{op:general-eq(IN#x,1)}(MapConcat{"
            "MapFromItem{[x:IN]}(Var[s])}(([]))))");
}

TEST(CompileFLWOR, OrderByRuleShape) {
  EXPECT_EQ(CompileToPlan("for $x in $s order by $x descending return $x"),
            "MapToItem{IN#x}(OrderBy{IN#x desc}(MapConcat{MapFromItem{"
            "[x:IN]}(Var[s])}(([]))))");
}

TEST(CompileFLWOR, NestedCorrelatedBlockStartsFromIn) {
  // A nested FLWOR that references an outer variable compiles over IN so
  // the outer tuple's fields flow in (the paper's dependent-join shape)...
  std::string plan = CompileToPlan(
      "for $x in $s return (for $y in $x return $y)");
  EXPECT_NE(plan.find("MapConcat{MapFromItem{[y:IN]}(IN#x)}(IN)"),
            std::string::npos)
      << plan;
  // ...whereas an independent nested block starts from ([]).
  std::string indep = CompileToPlan(
      "for $x in $s return count(for $y in $t return $y)");
  EXPECT_NE(indep.find("MapConcat{MapFromItem{[y:IN]}(Var[t])}(([]))"),
            std::string::npos)
      << indep;
}

TEST(CompileFLWOR, VariablesShadowWithFreshFields) {
  // Rebinding $x must give distinct tuple fields.
  std::string plan =
      CompileToPlan("for $x in $s return (for $x in $x return $x)");
  EXPECT_NE(plan.find("[x_2:IN]"), std::string::npos) << plan;
  EXPECT_NE(plan.find("MapToItem{IN#x_2}"), std::string::npos) << plan;
}

// ---- quantifiers -----------------------------------------------------------

TEST(CompileQuantifiers, SomeBecomesMapSome) {
  EXPECT_EQ(CompileToPlan("some $x in $s satisfies $x = 1"),
            "MapSome{fn:boolean(op:general-eq(IN#x,1))}(MapConcat{"
            "MapFromItem{[x:IN]}(Var[s])}(IN))");
}

TEST(CompileQuantifiers, EveryBecomesMapEvery) {
  std::string plan = CompileToPlan("every $x in $s satisfies $x = 1");
  EXPECT_NE(plan.find("MapEvery{"), std::string::npos) << plan;
}

// ---- paths (the Section 4 worked example) -------------------------------------

TEST(CompilePaths, StepBecomesTreeJoin) {
  std::string plan = CompileToPlan("$d/person");
  EXPECT_NE(plan.find("TreeJoin[child::element(person)](IN#dot)"),
            std::string::npos)
      << plan;
  // The step sits inside the per-context-node FLWOR over $d.
  EXPECT_NE(plan.find("MapFromItem{[dot:IN]}(Var[d])"), std::string::npos)
      << plan;
  // Path results pass through fs:distinct-docorder.
  EXPECT_EQ(plan.rfind("fs:distinct-docorder(", 0), 0) << plan;
}

TEST(CompilePaths, PaperPositionalExample) {
  // $d/descendant::person[position()=1] — the paper's Section 4 example:
  // one complete FLWOR block per step with MapIndex computing the context
  // position and a Select for the predicate.
  std::string plan = CompileToPlan("$d/descendant::person[position() = 1]");
  EXPECT_NE(plan.find("TreeJoin[descendant::element(person)]"),
            std::string::npos)
      << plan;
  EXPECT_NE(plan.find("MapIndex[position]"), std::string::npos) << plan;
  EXPECT_NE(plan.find("Select{op:general-eq(IN#position,1)}"),
            std::string::npos)
      << plan;
}

TEST(CompilePaths, AbbreviatedPositional) {
  // [1] normalizes to the same positional where clause.
  std::string plan = CompileToPlan("$d/person[1]");
  EXPECT_NE(plan.find("Select{op:general-eq(IN#position,1)}"),
            std::string::npos)
      << plan;
}

TEST(CompilePaths, AttributeStep) {
  std::string plan = CompileToPlan("$d/@id");
  EXPECT_NE(plan.find("TreeJoin[attribute::attribute(id)]"),
            std::string::npos)
      << plan;
}

// ---- Figure 3: typeswitch ------------------------------------------------------

TEST(CompileTypeswitch, PaperRuleShape) {
  // Figure 3: input in one tuple field, branches as Cond over TypeMatches,
  // evaluated over ([x:Op0] ++ IN).
  std::string plan = CompileToPlan(
      "typeswitch ($a) case $u as element(us) return 1 "
      "case $e as element(eu) return 2 default $o return 3");
  EXPECT_NE(plan.find("MapToItem{Cond{1,Cond{2,3}"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("TypeMatches[element(us)](IN#ts"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("TypeMatches[element(eu)](IN#ts"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("++ IN)"), std::string::npos) << plan;
}

TEST(CompileTypeswitch, BranchesShareTheCommonField) {
  std::string plan = CompileToPlan(
      "typeswitch (1) case $i as xs:integer return $i default $d return $d");
  // Both $i and $d compile to the same unified field access.
  EXPECT_NE(plan.find("Cond{IN#ts0,IN#ts0}"), std::string::npos) << plan;
}

// ---- other Core forms ----------------------------------------------------------

TEST(CompileTypeExprs, MapToAlgebraTypeOperators) {
  EXPECT_EQ(CompileToPlan("1 instance of xs:integer"),
            "TypeMatches[xs:integer](1)");
  EXPECT_EQ(CompileToPlan("\"4\" cast as xs:integer"),
            "Cast[xs:integer](\"4\")");
  EXPECT_EQ(CompileToPlan("\"4\" castable as xs:integer"),
            "Castable[xs:integer](\"4\")");
  EXPECT_EQ(CompileToPlan("$x treat as xs:integer+"),
            "TypeAssert[xs:integer+](Var[x])");
}

TEST(CompileConstructors, ElementAndDocLoad) {
  EXPECT_EQ(CompileToPlan("<a>{1}</a>"), "Element[a](1)");
  EXPECT_EQ(CompileToPlan("doc(\"u.xml\")"), "Parse(\"u.xml\")");
}

TEST(CompileQuery, FunctionsCompileToPlansOverVarLeaves) {
  Result<Query> parsed = ParseXQuery(
      "declare function local:f($a, $b) { $a + $b }; local:f(1, 2)");
  ASSERT_OK(parsed);
  Result<Query> core = NormalizeQuery(parsed.value());
  ASSERT_OK(core);
  Result<CompiledQuery> compiled = CompileQuery(core.value());
  ASSERT_OK(compiled);
  const CompiledFunction& f =
      compiled.value().functions.at(Symbol("local:f"));
  EXPECT_EQ(OpToString(*f.plan), "op:plus(Var[a],Var[b])");
  EXPECT_EQ(OpToString(*compiled.value().plan), "local:f(1,2)");
}

TEST(CompileQuery, GlobalsCompileInDeclarationOrder) {
  Result<Query> parsed = ParseXQuery(
      "declare variable $a := 1; declare variable $b := $a + 1; $b");
  ASSERT_OK(parsed);
  Result<Query> core = NormalizeQuery(parsed.value());
  ASSERT_OK(core);
  Result<CompiledQuery> compiled = CompileQuery(core.value());
  ASSERT_OK(compiled);
  ASSERT_EQ(compiled.value().globals.size(), 2u);
  EXPECT_EQ(compiled.value().globals[0].first, Symbol("a"));
  EXPECT_EQ(OpToString(*compiled.value().globals[1].second),
            "op:plus(Var[a],1)");
}

}  // namespace
}  // namespace xqc
