// End-to-end tests of the algebraic engine. Every query is executed in the
// paper's four configurations (Table 3) and differentially checked against
// the baseline interpreter oracle.
#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

const EngineOptions kConfigs[] = {
    {/*use_algebra=*/false, /*optimize=*/false, JoinImpl::kNestedLoop},
    {/*use_algebra=*/true, /*optimize=*/false, JoinImpl::kNestedLoop},
    {/*use_algebra=*/true, /*optimize=*/true, JoinImpl::kNestedLoop},
    {/*use_algebra=*/true, /*optimize=*/true, JoinImpl::kHash},
    {/*use_algebra=*/true, /*optimize=*/true, JoinImpl::kSort},
};

const char* ConfigName(size_t i) {
  static const char* kNames[] = {"no-algebra", "algebra-no-optim",
                                 "optim-nl-join", "optim-hash-join",
                                 "optim-sort-join"};
  return kNames[i];
}

/// Runs `query` in every configuration; all must agree (and agree with
/// `expected` if non-null).
void CheckAllConfigs(const std::string& query, DynamicContext* ctx,
                     const char* expected = nullptr) {
  Engine engine;
  std::string reference;
  for (size_t i = 0; i < std::size(kConfigs); i++) {
    Result<PreparedQuery> q = engine.Prepare(query, kConfigs[i]);
    ASSERT_TRUE(q.ok()) << ConfigName(i) << ": " << q.status().ToString()
                        << "\nquery: " << query;
    Result<std::string> r = q.value().ExecuteToString(ctx);
    ASSERT_TRUE(r.ok()) << ConfigName(i) << ": " << r.status().ToString()
                        << "\nquery: " << query
                        << "\nplan: " << q.value().ExplainPlan();
    if (i == 0) {
      reference = r.value();
      if (expected != nullptr) {
        EXPECT_EQ(reference, expected) << query;
      }
    } else {
      EXPECT_EQ(r.value(), reference)
          << ConfigName(i) << " disagrees with baseline\nquery: " << query
          << "\nplan: " << q.value().ExplainPlan();
    }
  }
}

void CheckAllConfigs(const std::string& query, const char* expected = nullptr) {
  DynamicContext ctx;
  CheckAllConfigs(query, &ctx, expected);
}

TEST(EngineBasics, ScalarsThroughAllConfigs) {
  CheckAllConfigs("1 + 2 * 3", "7");
  CheckAllConfigs("(1, 2, 3)", "1 2 3");
  CheckAllConfigs("\"a\"", "a");
  CheckAllConfigs("()", "");
  CheckAllConfigs("if (2 > 1) then \"y\" else \"n\"", "y");
  CheckAllConfigs("sum(1 to 100)", "5050");
}

TEST(EngineBasics, FLWOR) {
  CheckAllConfigs("for $x in (1,2,3) return $x * 10", "10 20 30");
  CheckAllConfigs("for $x in (1,2), $y in (10,20) return $x + $y",
                  "11 21 12 22");
  CheckAllConfigs(
      "for $x in 1 to 5 let $y := $x * $x where $y > 5 return $y", "9 16 25");
  CheckAllConfigs("for $x at $i in ('a','b','c') return $i", "1 2 3");
  // `at` on a non-leading for clause restarts per outer binding.
  CheckAllConfigs(
      "for $x in (10, 20) for $y at $i in (1 to $x idiv 10) return $i",
      "1 1 2");
  CheckAllConfigs(
      "for $x in ('a','b'), $y at $i in (1,2) return concat($x, $i)",
      "a1 a2 b1 b2");
  CheckAllConfigs("for $x in (3,1,2) order by $x return $x", "1 2 3");
  CheckAllConfigs("for $x in (3,1,2) order by $x descending return $x",
                  "3 2 1");
}

TEST(EngineBasics, PaperGroupByExample) {
  // Section 5 / Figure 4 of the paper.
  CheckAllConfigs(
      "for $x in (1,1,3) "
      "let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) "
      "return ($x, $a)",
      "1 15 1 15 3");
}

TEST(EngineBasics, Quantifiers) {
  CheckAllConfigs("some $x in (1,2,3) satisfies $x > 2", "true");
  CheckAllConfigs("every $x in (1,2,3) satisfies $x > 0", "true");
  CheckAllConfigs("some $x in (1,2), $y in (2,3) satisfies $x = $y", "true");
}

TEST(EngineBasics, Typeswitch) {
  CheckAllConfigs(
      "typeswitch (42) case $i as xs:integer return \"int\" "
      "default $d return \"other\"",
      "int");
  CheckAllConfigs(
      "for $v in (1, \"s\", 2.5) return "
      "typeswitch ($v) case $i as xs:integer return $i * 100 "
      "case $s as xs:string return $s default $d return 0",
      "100 s 0");
}

TEST(EngineBasics, Constructors) {
  CheckAllConfigs("<r>{for $i in 1 to 3 return <x v=\"{$i}\"/>}</r>",
                  "<r><x v=\"1\"/><x v=\"2\"/><x v=\"3\"/></r>");
  CheckAllConfigs("element foo { attribute a { 1 }, \"txt\" }",
                  "<foo a=\"1\">txt</foo>");
  CheckAllConfigs("let $e := <a><b>1</b><b>2</b></a> return count($e/b)", "2");
}

TEST(EngineBasics, FunctionsAndRecursion) {
  CheckAllConfigs(
      "declare function local:fib($n) { if ($n < 2) then $n else "
      "local:fib($n - 1) + local:fib($n - 2) }; local:fib(15)",
      "610");
  CheckAllConfigs(
      "declare variable $base := 10; "
      "declare function local:scale($x) { $x * $base }; "
      "sum(for $i in 1 to 4 return local:scale($i))",
      "100");
}

TEST(EngineBasics, TypeExpressions) {
  CheckAllConfigs("1 instance of xs:integer", "true");
  CheckAllConfigs("\"42\" cast as xs:integer", "42");
  CheckAllConfigs("\"x\" castable as xs:double", "false");
  CheckAllConfigs("(1,2) treat as xs:integer*", "1 2");
}

// ---- document-based queries -------------------------------------------------

class EngineDocTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_.RegisterDocument("auction.xml", MustParseXml(R"(
      <site>
        <people>
          <person id="person0"><name>Ann</name><age>31</age></person>
          <person id="person1"><name>Bob</name><age>25</age></person>
          <person id="person2"><name>Cyd</name><age>31</age></person>
          <person id="person3"><name>Dan</name><age>40</age></person>
        </people>
        <closed_auctions>
          <closed_auction><buyer person="person0"/><price>10</price></closed_auction>
          <closed_auction><buyer person="person0"/><price>20</price></closed_auction>
          <closed_auction><buyer person="person2"/><price>30</price></closed_auction>
          <closed_auction><buyer person="person2"/><price>15</price></closed_auction>
          <closed_auction><buyer person="person2"/><price>5</price></closed_auction>
        </closed_auctions>
      </site>)"));
  }
  void Check(const std::string& q, const char* expected = nullptr) {
    CheckAllConfigs("let $auction := doc(\"auction.xml\") return " + q, &ctx_,
                    expected);
  }
  DynamicContext ctx_;
};

TEST_F(EngineDocTest, Paths) {
  Check("count($auction//person)", "4");
  Check("$auction//person[1]/name/text()", "Ann");
  Check("$auction//person[position() = 2]/name/text()", "Bob");
  Check("$auction//person[last()]/name/text()", "Dan");
  Check("string($auction//person[age = 25]/@id)", "person1");
  Check("count($auction//closed_auction[price > 12])", "3");
}

TEST_F(EngineDocTest, NestedFLWORJoin) {
  // The shape of the paper's Q8 variant: nested FLWOR with a join predicate
  // and an aggregate over the nested result.
  Check(
      "for $p in $auction//person "
      "let $a := for $t in $auction//closed_auction "
      "          where $t/buyer/@person = $p/@id "
      "          return $t "
      "return <item person=\"{$p/name/text()}\">{count($a)}</item>",
      "<item person=\"Ann\">2</item><item person=\"Bob\">0</item>"
      "<item person=\"Cyd\">3</item><item person=\"Dan\">0</item>");
}

TEST_F(EngineDocTest, NestedPathJoin) {
  // The paper's Q1 path-expression variant (Section 4): joins through a
  // nested path predicate instead of a nested FLWOR.
  Check(
      "for $p in $auction//person "
      "let $a := $auction//closed_auction[buyer/@person = $p/@id] "
      "return count($a)",
      "2 0 3 0");
}

TEST_F(EngineDocTest, JoinWithAggregates) {
  Check(
      "for $p in $auction//person "
      "let $spent := sum(for $t in $auction//closed_auction "
      "                  where $t/buyer/@person = $p/@id "
      "                  return number($t/price)) "
      "order by $spent descending "
      "return <p n=\"{$p/name/text()}\" s=\"{$spent}\"/>",
      "<p n=\"Cyd\" s=\"50\"/><p n=\"Ann\" s=\"30\"/>"
      "<p n=\"Bob\" s=\"0\"/><p n=\"Dan\" s=\"0\"/>");
}

TEST_F(EngineDocTest, UncorrelatedJoin) {
  Check(
      "for $p in $auction//person, $t in $auction//closed_auction "
      "where $t/buyer/@person = $p/@id "
      "return string($p/@id)",
      "person0 person0 person2 person2 person2");
}

TEST_F(EngineDocTest, ConjunctivePredicates) {
  Check(
      "for $p in $auction//person, $t in $auction//closed_auction "
      "where $t/buyer/@person = $p/@id and $t/price > 12 "
      "return ($p/name/text(), $t/price/text())",
      "Ann20Cyd30Cyd15");
}

TEST_F(EngineDocTest, OrderPreservation) {
  // Join results must preserve the left input order, then the right order —
  // also under hash/sort joins (the paper's order-preserving variants).
  Check(
      "for $t in $auction//closed_auction, $p in $auction//person "
      "where $p/@id = $t/buyer/@person "
      "return $t/price/text()",
      "102030155");
}

TEST_F(EngineDocTest, QuantifiedJoin) {
  Check(
      "for $p in $auction//person "
      "where some $t in $auction//closed_auction "
      "      satisfies $t/buyer/@person = $p/@id "
      "return $p/name/text()",
      "AnnCyd");
}

// ---- engine plumbing ----------------------------------------------------------

TEST(EngineApi, ExplainShowsOptimizedPlan) {
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(
      "for $x in (1,1,3) "
      "let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) "
      "return ($x, $a)");
  ASSERT_OK(q);
  std::string plan = q.value().ExplainPlan(false);
  EXPECT_NE(plan.find("GroupBy"), std::string::npos) << plan;
  EXPECT_NE(plan.find("LOuterJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("MapIndexStep"), std::string::npos) << plan;
  std::string naive = q.value().ExplainUnoptimizedPlan(false);
  EXPECT_EQ(naive.find("GroupBy"), std::string::npos) << naive;
  EXPECT_NE(naive.find("MapConcat"), std::string::npos) << naive;
}

TEST(EngineApi, OptimizerStatsReported) {
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(
      "for $x in (1,1,3) "
      "let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) "
      "return ($x, $a)");
  ASSERT_OK(q);
  const OptimizerStats& s = q.value().optimizer_stats();
  EXPECT_EQ(s.insert_group_by, 1);
  EXPECT_EQ(s.map_through_group_by, 1);
  EXPECT_EQ(s.remove_duplicate_null, 1);
  EXPECT_EQ(s.insert_outer_join, 1);
  EXPECT_GE(s.index_to_index_step, 1);
}

TEST(EngineApi, ExecStatsCountJoinAlgorithms) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", MustParseXml(
      "<r><a k=\"1\"/><a k=\"2\"/><b k=\"2\"/><b k=\"1\"/></r>"));
  Engine engine;
  const std::string q =
      "let $r := doc(\"d.xml\")/r "
      "return for $a in $r/a, $b in $r/b where $a/@k = $b/@k "
      "return string($a/@k)";
  for (JoinImpl impl : {JoinImpl::kHash, JoinImpl::kSort, JoinImpl::kNestedLoop}) {
    EngineOptions opts;
    opts.join_impl = impl;
    Result<PreparedQuery> pq = engine.Prepare(q, opts);
    ASSERT_OK(pq);
    Result<std::string> r = pq.value().ExecuteToString(&ctx);
    ASSERT_OK(r);
    EXPECT_EQ(r.value(), "1 2");
    const ExecStats& s = pq.value().last_exec_stats();
    switch (impl) {
      case JoinImpl::kHash: EXPECT_GE(s.hash_joins, 1); break;
      case JoinImpl::kSort: EXPECT_GE(s.sort_joins, 1); break;
      case JoinImpl::kNestedLoop: EXPECT_GE(s.nested_loop_joins, 1); break;
    }
  }
}

TEST(EngineApi, SortFreePathsSkipDistinctDocOrder) {
  Engine engine;
  DynamicContext ctx;
  std::string xml = "<site><people>";
  for (int i = 0; i < 40; i++) {
    xml += "<person id=\"p" + std::to_string(i) +
           "\"><name>n</name><age>3</age></person>";
  }
  xml += "</people></site>";
  ctx.RegisterDocument("d.xml", MustParseXml(xml));

  // Child/attribute-only path from a statically known singleton (fn:doc):
  // every step is annotated kSkip and no DistinctDocOrder sort runs.
  {
    Result<PreparedQuery> q =
        engine.Prepare("doc(\"d.xml\")/site/people/person/@id");
    ASSERT_OK(q);
    ASSERT_OK(q.value().ExecuteToString(&ctx));
    ExecStats s = q.value().last_exec_stats();
    EXPECT_EQ(s.tree_join.ddo_sorts, 0);
    EXPECT_GT(s.tree_join.ddo_skip_static, 0);
  }
  // Descendant step over an indexed tree: sort-free and index-served.
  {
    Result<PreparedQuery> q = engine.Prepare("count(doc(\"d.xml\")//person)");
    ASSERT_OK(q);
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    ASSERT_OK(r);
    EXPECT_EQ(r.value(), "40");
    ExecStats s = q.value().last_exec_stats();
    EXPECT_EQ(s.tree_join.ddo_sorts, 0);
    EXPECT_GT(s.tree_join.index_lookups, 0);
  }
  // force_sort baseline: identical answer, sorts reinstated.
  {
    EngineOptions opts;
    opts.force_sort = true;
    Result<PreparedQuery> q =
        engine.Prepare("count(doc(\"d.xml\")//person)", opts);
    ASSERT_OK(q);
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    ASSERT_OK(r);
    EXPECT_EQ(r.value(), "40");
    EXPECT_GT(q.value().last_exec_stats().tree_join.ddo_sorts, 0);
  }
}

// Batched execution is an internal amortization, not a semantic change:
// every observable ExecStats counter — guard checks/steps, peak memory,
// source tuples, early stops, join/tree-join counters — must be identical
// whether the pipeline runs tuple-at-a-time (batch_size=1, the oracle) or
// with the default 1024-tuple batches.
void ExpectStatsEqual(const ExecStats& a, const ExecStats& b,
                      const std::string& what) {
  EXPECT_EQ(a.hash_joins, b.hash_joins) << what;
  EXPECT_EQ(a.sort_joins, b.sort_joins) << what;
  EXPECT_EQ(a.range_joins, b.range_joins) << what;
  EXPECT_EQ(a.nested_loop_joins, b.nested_loop_joins) << what;
  EXPECT_EQ(a.group_bys, b.group_bys) << what;
  EXPECT_EQ(a.join_index_reuses, b.join_index_reuses) << what;
  EXPECT_EQ(a.specialized_joins, b.specialized_joins) << what;
  EXPECT_EQ(a.source_tuples, b.source_tuples) << what;
  EXPECT_EQ(a.streaming_early_stops, b.streaming_early_stops) << what;
  EXPECT_EQ(a.guard_checks, b.guard_checks) << what;
  EXPECT_EQ(a.guard_steps, b.guard_steps) << what;
  EXPECT_EQ(a.peak_memory_bytes, b.peak_memory_bytes) << what;
  EXPECT_EQ(a.tree_join.ddo_sorts, b.tree_join.ddo_sorts) << what;
  EXPECT_EQ(a.tree_join.ddo_dedups, b.tree_join.ddo_dedups) << what;
  EXPECT_EQ(a.tree_join.ddo_skip_static, b.tree_join.ddo_skip_static) << what;
  EXPECT_EQ(a.tree_join.ddo_skip_singleton, b.tree_join.ddo_skip_singleton)
      << what;
  EXPECT_EQ(a.tree_join.ddo_skip_verified, b.tree_join.ddo_skip_verified)
      << what;
  EXPECT_EQ(a.tree_join.index_lookups, b.tree_join.index_lookups) << what;
}

TEST(EngineApi, ExecStatsBatchSizeInvariant) {
  DynamicContext ctx;
  std::string xml = "<r>";
  for (int i = 0; i < 500; i++) {
    xml += "<e k=\"" + std::to_string(i % 7) + "\"><v>" + std::to_string(i) +
           "</v></e>";
  }
  xml += "</r>";
  ctx.RegisterDocument("d.xml", MustParseXml(xml));

  const char* kQueries[] = {
      // Full consumption through scan / select / map / aggregation.
      "sum(for $e in doc(\"d.xml\")/r/e where $e/@k = \"3\" "
      "return xs:integer($e/v))",
      // Descendant axis + positional predicate (demand-bounded pipeline).
      "string((doc(\"d.xml\")//v)[3])",
      // Early exit: exists() cuts the source stream mid-way.
      "exists(doc(\"d.xml\")//e[v = \"250\"])",
      // Quantifier early exit.
      "some $e in doc(\"d.xml\")/r/e satisfies $e/@k = \"5\"",
      // Join-heavy FLWOR.
      "count(for $a in doc(\"d.xml\")/r/e, $b in doc(\"d.xml\")/r/e "
      "where $a/@k = $b/@k and $a/v = \"7\" return $b)",
      // subsequence over an unbounded generator.
      "sum(subsequence(for $e in doc(\"d.xml\")/r/e return "
      "xs:integer($e/v), 2, 5))",
  };

  Engine engine;
  // Warm the lazy per-document structural index first: its one-time build
  // cost is guard-accounted by whichever execution triggers it, which would
  // otherwise skew the first run's peak_memory_bytes.
  {
    Result<std::string> warm =
        engine.Execute("count(doc(\"d.xml\")//v)", &ctx);
    ASSERT_OK(warm);
  }
  for (ExecMode mode : {ExecMode::kStreaming, ExecMode::kMaterialize}) {
    for (const char* query : kQueries) {
      ExecStats oracle;
      std::string oracle_out;
      for (int batch : {1, 1024}) {
        EngineOptions opts;
        opts.exec_mode = mode;
        opts.batch_size = batch;
        Result<PreparedQuery> q = engine.Prepare(query, opts);
        ASSERT_OK(q);
        Result<std::string> r = q.value().ExecuteToString(&ctx);
        ASSERT_OK(r);
        const std::string what =
            std::string(mode == ExecMode::kStreaming ? "streaming"
                                                     : "materialize") +
            " batch=" + std::to_string(batch) + "\nquery: " + query;
        if (batch == 1) {
          oracle = q.value().last_exec_stats();
          oracle_out = r.value();
        } else {
          EXPECT_EQ(r.value(), oracle_out) << what;
          ExpectStatsEqual(q.value().last_exec_stats(), oracle, what);
        }
      }
    }
  }
}

TEST(EngineApi, OneShotExecute) {
  Engine engine;
  DynamicContext ctx;
  Result<std::string> r = engine.Execute("sum(1 to 4)", &ctx);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "10");
  EXPECT_FALSE(engine.Execute("1 idiv 0", &ctx).ok());
  EXPECT_FALSE(engine.Execute("syntax error (", &ctx).ok());
}

TEST(EngineApi, ParseErrorsSurface) {
  Engine engine;
  EXPECT_FALSE(engine.Prepare("for $x in").ok());
  EXPECT_FALSE(engine.Prepare("1 +").ok());
  EXPECT_FALSE(engine.Prepare("<a>").ok());
}

}  // namespace
}  // namespace xqc
