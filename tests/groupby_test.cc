// Tests for the XQuery-specific GroupBy operator (Section 5): its
// two-dependent-operator semantics, null-flag handling, index-field
// partitioning — including an exact reproduction of the Figure 4
// input/output table.
#include <gtest/gtest.h>

#include "src/algebra/op.h"
#include "src/runtime/eval.h"
#include "src/xml/serializer.h"
#include "test_util.h"

namespace xqc {
namespace {

/// Runs a table-producing plan and returns the result table.
Result<Table> RunTable(const OpPtr& plan, DynamicContext* ctx) {
  CompiledQuery q;
  q.plan = plan;  // not used for table eval, but Run needs a plan
  PlanEvaluator eval(&q, ctx, {});
  return eval.EvalTable(*plan, EvalCtx{});
}

/// Builds the Figure 4 input table:
///   x  y  index null
///   1  1  1     false
///   1  2  1     false
///   1  1  2     false
///   1  2  2     false
///   3  () 3     true
Table Figure4Input() {
  Table t;
  auto row = [&](int x, int y, int index, bool null_flag, bool has_y) {
    Tuple tup;
    tup.Set(Symbol("x"), {AtomicValue::Integer(x)});
    if (has_y) tup.Set(Symbol("y"), {AtomicValue::Integer(y)});
    tup.Set(Symbol("index"), {AtomicValue::Integer(index)});
    tup.Set(Symbol("null"), {AtomicValue::Boolean(null_flag)});
    t.push_back(std::move(tup));
  };
  row(1, 1, 1, false, true);
  row(1, 2, 1, false, true);
  row(1, 1, 2, false, true);
  row(1, 2, 2, false, true);
  row(3, 0, 3, true, false);
  return t;
}

/// Wraps a table literal as an input operator by materializing it through a
/// constant plan: we cheat by building the table with MapFromItem over a
/// sequence is cumbersome, so tests call EvalGroupBy via a custom input.
class TableSource {
 public:
  // Build the GroupBy over a pre-built input by evaluating the pieces
  // manually: we construct the plan with the input replaced by ([]) and
  // instead drive PlanEvaluator::EvalTable on a GroupBy whose input was
  // already evaluated. Simplest robust route: rebuild the input as a
  // sequence of MapConcat'd tuple constructors.
  static OpPtr AsPlan(const Table& t) {
    // Produce a plan evaluating to exactly `t`: chain of appends using
    // Map over MapFromItem is overkill; we build
    //   [f1:..]++ per row via MapFromItem over integers then Select.
    // Instead: build Sequence of row indices, MapFromItem binds i, and a
    // Map dep constructs each row... that needs literals per row anyway.
    // We go direct: a plan of kind kEmptyTuples replaced below.
    (void)t;
    return nullptr;
  }
};

/// The Figure 4 GroupBy: GroupBy[a, index, null]{avg(IN)}{IN#y * 10}.
OpPtr Figure4GroupBy(OpPtr input) {
  OpPtr pre = OpCall(Symbol("op:times"),
                     {OpInField(Symbol("y")),
                      OpScalar(AtomicValue::Integer(10))});
  OpPtr post = OpCall(Symbol("fn:avg"), {OpIn()});
  return OpGroupBy(Symbol("a"), {Symbol("index")}, {Symbol("null")},
                   std::move(post), std::move(pre), std::move(input));
}

/// Builds a plan that evaluates to the Figure 4 input table, from scratch
/// with algebra operators: MapIndexStep over MapFromItem gives (x, index),
/// LOuterJoin with the <= predicate gives (null, y).
OpPtr Figure4InputPlan() {
  OpPtr xs = MakeOp(OpKind::kSequence);
  OpPtr xs_inner = MakeOp(OpKind::kSequence);
  xs_inner->inputs = {OpScalar(AtomicValue::Integer(1)),
                      OpScalar(AtomicValue::Integer(1))};
  xs->inputs = {xs_inner, OpScalar(AtomicValue::Integer(3))};
  OpPtr ys = MakeOp(OpKind::kSequence);
  ys->inputs = {OpScalar(AtomicValue::Integer(1)),
                OpScalar(AtomicValue::Integer(2))};
  OpPtr left = OpMapIndexStep(
      Symbol("index"),
      OpMapFromItem(OpTupleConstruct({Symbol("x")}, {OpIn()}), xs));
  OpPtr right = OpMapFromItem(OpTupleConstruct({Symbol("y")}, {OpIn()}), ys);
  OpPtr pred = OpCall(Symbol("op:general-le"),
                      {OpInField(Symbol("x")), OpInField(Symbol("y"))});
  return OpLOuterJoin(Symbol("null"), std::move(pred), std::move(left),
                      std::move(right));
}

TEST(GroupByTest, Figure4InputTableIsReproduced) {
  DynamicContext ctx;
  Result<Table> input = RunTable(Figure4InputPlan(), &ctx);
  ASSERT_OK(input);
  const Table& t = input.value();
  const Table expected = Figure4Input();
  ASSERT_EQ(t.size(), expected.size());
  for (size_t i = 0; i < t.size(); i++) {
    for (const char* f : {"x", "y", "index", "null"}) {
      // An absent field reads as the empty sequence (the paper models null
      // by the empty sequence, not a special value — Section 3).
      static const Sequence kEmpty;
      const Sequence* got = t[i].Get(Symbol(f));
      const Sequence* want = expected[i].Get(Symbol(f));
      if (got == nullptr) got = &kEmpty;
      if (want == nullptr) want = &kEmpty;
      ASSERT_EQ(got->size(), want->size()) << "row " << i << " field " << f;
      for (size_t k = 0; k < got->size(); k++) {
        EXPECT_TRUE((*got)[k].atomic().StrictEquals((*want)[k].atomic()))
            << "row " << i << " field " << f;
      }
    }
  }
}

TEST(GroupByTest, Figure4OutputTable) {
  // Output (Figure 4): (x=1, a=15), (x=1, a=15), (x=3, a=()).
  DynamicContext ctx;
  Result<Table> out = RunTable(Figure4GroupBy(Figure4InputPlan()), &ctx);
  ASSERT_OK(out);
  const Table& t = out.value();
  ASSERT_EQ(t.size(), 3u);
  auto x_of = [&](size_t i) {
    return (*t[i].Get(Symbol("x")))[0].atomic().AsInt();
  };
  auto a_of = [&](size_t i) { return *t[i].Get(Symbol("a")); };
  EXPECT_EQ(x_of(0), 1);
  ASSERT_EQ(a_of(0).size(), 1u);
  EXPECT_EQ(a_of(0)[0].atomic().AsDouble(), 15.0);
  EXPECT_EQ(x_of(1), 1);
  ASSERT_EQ(a_of(1).size(), 1u);
  EXPECT_EQ(a_of(1)[0].atomic().AsDouble(), 15.0);
  EXPECT_EQ(x_of(2), 3);
  EXPECT_TRUE(a_of(2).empty());  // avg over the empty (null) partition
}

TEST(GroupByTest, PreGroupingSkippedForNullTuples) {
  // The pre-grouping operator must NOT be applied to null-flagged tuples
  // (IN#y * 10 on an empty y would not error here, so use a post check:
  // the partition items of the null row stay empty).
  DynamicContext ctx;
  OpPtr post = OpCall(Symbol("fn:count"), {OpIn()});
  OpPtr pre = OpInField(Symbol("y"));
  OpPtr gb = OpGroupBy(Symbol("c"), {Symbol("index")}, {Symbol("null")},
                       std::move(post), std::move(pre), Figure4InputPlan());
  Result<Table> out = RunTable(gb, &ctx);
  ASSERT_OK(out);
  ASSERT_EQ(out.value().size(), 3u);
  EXPECT_EQ((*out.value()[0].Get(Symbol("c")))[0].atomic().AsInt(), 2);
  EXPECT_EQ((*out.value()[2].Get(Symbol("c")))[0].atomic().AsInt(), 0);
}

TEST(GroupByTest, EmptyIndexListMakesOnePartition) {
  // GroupBy[x,[],[null]] (the trivial group-by of (insert group-by)):
  // all input tuples form one partition.
  DynamicContext ctx;
  OpPtr input = OpOMap(
      Symbol("null"),
      OpMapFromItem(OpTupleConstruct({Symbol("y")}, {OpIn()}),
                    [] {
                      OpPtr s = MakeOp(OpKind::kSequence);
                      s->inputs = {OpScalar(AtomicValue::Integer(4)),
                                   OpScalar(AtomicValue::Integer(5))};
                      return s;
                    }()));
  OpPtr gb = OpGroupBy(Symbol("a"), {}, {Symbol("null")},
                       OpCall(Symbol("fn:sum"), {OpIn()}),
                       OpInField(Symbol("y")), std::move(input));
  Result<Table> out = RunTable(gb, &ctx);
  ASSERT_OK(out);
  ASSERT_EQ(out.value().size(), 1u);
  EXPECT_EQ((*out.value()[0].Get(Symbol("a")))[0].atomic().AsInt(), 9);
}

TEST(GroupByTest, PartitionsSortStablyAscendingByIndex) {
  // Input arrives with index values out of order; output partitions are
  // emitted in ascending index order.
  DynamicContext ctx;
  OpPtr seq = MakeOp(OpKind::kSequence);
  OpPtr seq_inner = MakeOp(OpKind::kSequence);
  seq_inner->inputs = {OpScalar(AtomicValue::Integer(30)),
                       OpScalar(AtomicValue::Integer(10))};
  seq->inputs = {seq_inner, OpScalar(AtomicValue::Integer(20))};
  // index := the value itself (via a Map over tuple construct).
  OpPtr stream = OpMapFromItem(
      OpTupleConstruct({Symbol("index")}, {OpIn()}), seq);
  OpPtr flagged = OpOMap(Symbol("null"), std::move(stream));
  OpPtr gb = OpGroupBy(Symbol("a"), {Symbol("index")}, {Symbol("null")},
                       OpCall(Symbol("fn:count"), {OpIn()}),
                       OpInField(Symbol("index")), std::move(flagged));
  Result<Table> out = RunTable(gb, &ctx);
  ASSERT_OK(out);
  ASSERT_EQ(out.value().size(), 3u);
  std::vector<int64_t> order;
  for (const Tuple& t : out.value()) {
    order.push_back((*t.Get(Symbol("index")))[0].atomic().AsInt());
  }
  EXPECT_EQ(order, (std::vector<int64_t>{10, 20, 30}));
}

TEST(GroupByTest, MultipleIndexFieldsPartitionJointly) {
  DynamicContext ctx;
  // Build tuples (i, j) for i in 1..2, j in 1..2 via product.
  auto stream = [](const char* f, int a, int b) {
    OpPtr s = MakeOp(OpKind::kSequence);
    s->inputs = {OpScalar(AtomicValue::Integer(a)),
                 OpScalar(AtomicValue::Integer(b))};
    return OpMapFromItem(OpTupleConstruct({Symbol(f)}, {OpIn()}), s);
  };
  OpPtr prod = OpProduct(stream("i", 1, 2), stream("j", 1, 2));
  OpPtr flagged = OpOMap(Symbol("null"), std::move(prod));
  OpPtr gb = OpGroupBy(Symbol("a"), {Symbol("i"), Symbol("j")},
                       {Symbol("null")},
                       OpCall(Symbol("fn:count"), {OpIn()}),
                       OpInField(Symbol("i")), std::move(flagged));
  Result<Table> out = RunTable(gb, &ctx);
  ASSERT_OK(out);
  EXPECT_EQ(out.value().size(), 4u);  // four (i,j) partitions
}

TEST(GroupByTest, StatsCountGroupBys) {
  DynamicContext ctx;
  CompiledQuery q;
  q.plan = OpCall(Symbol("fn:count"),
                  {OpMapToItem(OpInField(Symbol("a")),
                               Figure4GroupBy(Figure4InputPlan()))});
  PlanEvaluator eval(&q, &ctx, {});
  ASSERT_OK(eval.Run());
  EXPECT_EQ(eval.stats().group_bys, 1);
}

}  // namespace
}  // namespace xqc
