// Property-based differential testing: randomly generated queries are
// executed under every engine configuration (baseline interpreter, algebra
// without rewritings, optimized plans with nested-loop / hash / ordered
// joins) and must all agree. This is the broad-spectrum check that the
// compilation rules, the Figure 5 rewritings, and the Figure 6 join
// algorithms preserve semantics on query shapes nobody hand-wrote.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

/// Deterministic generator state.
class Gen {
 public:
  explicit Gen(uint64_t seed) : state_(seed * 2654435769u + 1) {}

  uint64_t Next() {
    state_ = state_ * 6364136223846793005ull + 1442695040888963407ull;
    return state_ >> 33;
  }
  int Below(int n) { return static_cast<int>(Next() % n); }
  bool Coin() { return Next() % 2 == 0; }

  /// A numeric-valued expression over in-scope numeric variables.
  std::string Numeric(int depth) {
    if (depth <= 0 || Below(3) == 0) {
      if (!num_vars_.empty() && Coin()) {
        return "$" + num_vars_[Below(static_cast<int>(num_vars_.size()))];
      }
      return std::to_string(Below(20));
    }
    switch (Below(6)) {
      case 0: return "(" + Numeric(depth - 1) + " + " + Numeric(depth - 1) + ")";
      case 1: return "(" + Numeric(depth - 1) + " - " + Numeric(depth - 1) + ")";
      case 2: return "(" + Numeric(depth - 1) + " * " + Numeric(depth - 1) + ")";
      case 3: return "count(" + NumSeq(depth - 1) + ")";
      case 4: return "sum(" + NumSeq(depth - 1) + ")";
      default:
        return "(if (" + Boolean(depth - 1) + ") then " + Numeric(depth - 1) +
               " else " + Numeric(depth - 1) + ")";
    }
  }

  /// A sequence-of-numbers expression.
  std::string NumSeq(int depth) {
    if (depth <= 0 || Below(3) == 0) {
      switch (Below(4)) {
        case 0: {
          int lo = Below(5), hi = lo + Below(6);
          return "(" + std::to_string(lo) + " to " + std::to_string(hi) + ")";
        }
        case 1:
          return "(" + Numeric(0) + ", " + Numeric(0) + ", " + Numeric(0) + ")";
        case 2:
          return "()";
        default:
          return "(" + Numeric(0) + ")";
      }
    }
    switch (Below(4)) {
      case 0: {
        std::string var = FreshVar();
        num_vars_.push_back(var);
        std::string body = "for $" + var + " in " + NumSeq(depth - 1) +
                           (Coin() ? " where " + Boolean(depth - 1) : "") +
                           " return " + Numeric(depth - 1);
        num_vars_.pop_back();
        return "(" + body + ")";
      }
      case 1: {
        std::string var = FreshVar();
        num_vars_.push_back(var);
        std::string body = "for $" + var + " in " + NumSeq(depth - 1) +
                           " order by $" + var +
                           (Coin() ? " descending" : "") + " return $" + var;
        num_vars_.pop_back();
        return "(" + body + ")";
      }
      case 2:
        return "distinct-values(" + NumSeq(depth - 1) + ")";
      default:
        return "reverse(" + NumSeq(depth - 1) + ")";
    }
  }

  /// A boolean expression.
  std::string Boolean(int depth) {
    if (depth <= 0 || Below(3) == 0) {
      switch (Below(4)) {
        case 0: return "true()";
        case 1: return "false()";
        default:
          return "(" + Numeric(0) + (Coin() ? " = " : " < ") + Numeric(0) + ")";
      }
    }
    switch (Below(6)) {
      case 0: return "(" + Boolean(depth - 1) + " and " + Boolean(depth - 1) + ")";
      case 1: return "(" + Boolean(depth - 1) + " or " + Boolean(depth - 1) + ")";
      case 2: return "not(" + Boolean(depth - 1) + ")";
      case 3: {
        std::string var = FreshVar();
        num_vars_.push_back(var);
        std::string body = (Coin() ? "some" : "every") + std::string(" $") +
                           var + " in " + NumSeq(depth - 1) + " satisfies " +
                           Boolean(depth - 1);
        num_vars_.pop_back();
        return "(" + body + ")";
      }
      case 4:
        return "(" + NumSeq(depth - 1) + " = " + NumSeq(depth - 1) + ")";
      default:
        return "empty(" + NumSeq(depth - 1) + ")";
    }
  }

  /// A document-navigation query over the fixed test document.
  std::string DocQuery(int depth) {
    static const char* const kPaths[] = {
        "$doc//person", "$doc//person/@id", "$doc//order",
        "$doc//order/@buyer", "$doc/site/people/person/name",
        "$doc//person[age > 30]", "$doc//order[amount >= 20]",
    };
    std::string path = kPaths[Below(std::size(kPaths))];
    switch (Below(5)) {
      case 0:
        return "count(" + path + ")";
      case 1: {
        std::string var = FreshVar();
        return "for $" + var + " in " + path + " return <i>{string($" + var +
               "/@id), " + Numeric(depth - 1) + "}</i>";
      }
      case 2: {
        // The join shape: nested correlated block with an aggregate.
        std::string p = FreshVar();
        std::string t = FreshVar();
        return "for $" + p + " in $doc//person " +
               "let $a := for $" + t + " in $doc//order where $" + t +
               "/@buyer = $" + p + "/@id return $" + t +
               " return (string($" + p + "/@id), count($a))";
      }
      case 3: {
        std::string p = FreshVar();
        return "for $" + p + " in $doc//person " +
               "where some $t in $doc//order satisfies $t/@buyer = $" + p +
               "/@id return $" + p + "/name/text()";
      }
      default: {
        std::string p = FreshVar();
        return "for $" + p + " at $i in " + path +
               " where $i <= " + std::to_string(1 + Below(4)) +
               " return string($" + p + ")";
      }
    }
  }

  /// Query shapes that drive the unnesting machinery hard: correlated
  /// aggregates (GroupBy introduction), multi-level nesting, constructors
  /// wrapping nested blocks (hoisting), and mixed inequality predicates.
  std::string UnnestingQuery(int depth) {
    const char* agg = (const char*[]){"count", "sum", "avg", "min",
                                      "max"}[Below(5)];
    std::string p = FreshVar(), t = FreshVar();
    switch (Below(5)) {
      case 0:
        // Aggregate over a correlated equality block (the Figure 4 family).
        return "for $" + p + " in $doc//person " +
               "let $a := " + agg + "(for $" + t +
               " in $doc//order where $" + t + "/@buyer = $" + p +
               "/@id return number($" + t + "/amount)) " +
               "return (string($" + p + "/@id), $a)";
      case 1:
        // Nested block inside a constructor (exercises hoisting).
        return "for $" + p + " in $doc//person return <r id=\"{$" + p +
               "/@id}\">{ " + agg + "(for $" + t + " in $doc//order where $" +
               t + "/@buyer = $" + p + "/@id return 1) }</r>";
      case 2: {
        // Two-level nesting with an inner inequality.
        std::string u = FreshVar();
        return "for $" + p + " in $doc//person " +
               "let $a := for $" + t + " in $doc//order " +
               "          where $" + t + "/@buyer = $" + p + "/@id " +
               "          return count(for $" + u + " in $doc//order " +
               "                       where number($" + u +
               "/amount) < number($" + t + "/amount) return 1) " +
               "return ($" + p + "/name/text(), sum($a))";
      }
      case 3:
        // Inequality join (range sort join path).
        return "for $" + p + " in $doc//person " +
               "let $a := for $" + t + " in $doc//order " +
               "          where number($" + t + "/amount) > $" + p +
               "/age + " + std::to_string(Below(20) - 10) +
               "          return $" + t +
               " order by count($a) descending, string($" + p +
               "/@id) return count($a)";
      default:
        // Path-predicate join variant (Section 4's Q1 form).
        return "for $" + p + " in $doc//person " +
               "let $a := $doc//order[@buyer = $" + p + "/@id]" +
               "[number(amount) > " + std::to_string(Below(30)) + "] " +
               "return count($a) * " + Numeric(depth - 1);
    }
  }

  std::string Query(int kind, int depth) {
    switch (kind % 4) {
      case 0: return NumSeq(depth);
      case 1: return DocQuery(depth);
      case 2: return UnnestingQuery(depth);
      default:
        return "(" + NumSeq(depth) + ", " + Numeric(depth) + ")";
    }
  }

 private:
  std::string FreshVar() { return "v" + std::to_string(counter_++); }

  uint64_t state_;
  int counter_ = 0;
  std::vector<std::string> num_vars_;
};

// The shared input document ($doc in every generated query).
const char* kPropertyDoc = R"(
      <site>
        <people>
          <person id="p0"><name>Ann</name><age>31</age></person>
          <person id="p1"><name>Bob</name><age>25</age></person>
          <person id="p2"><name>Cyd</name><age>44</age></person>
          <person id="p3"><name>Dan</name><age>19</age></person>
        </people>
        <orders>
          <order id="o0" buyer="p0"><amount>10</amount></order>
          <order id="o1" buyer="p2"><amount>25</amount></order>
          <order id="o2" buyer="p0"><amount>40</amount></order>
          <order id="o3" buyer="p9"><amount>5</amount></order>
        </orders>
      </site>)";

class PropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    doc_ = new NodePtr(MustParseXml(kPropertyDoc));
  }
  static void TearDownTestSuite() {
    delete doc_;
    doc_ = nullptr;
  }
  static NodePtr* doc_;
};

NodePtr* PropertyTest::doc_ = nullptr;

TEST_P(PropertyTest, AllConfigurationsAgree) {
  uint64_t seed = GetParam();
  Gen gen(seed);
  Engine engine;
  const EngineOptions kConfigs[] = {
      {false, false, JoinImpl::kNestedLoop},
      {true, false, JoinImpl::kNestedLoop},
      {true, true, JoinImpl::kNestedLoop},
      {true, true, JoinImpl::kHash},
      {true, true, JoinImpl::kSort},
      // Sort-elision oracle: forcing every TreeJoin through the full
      // DistinctDocOrder sort must not change a byte, in either exec mode;
      // nor may disabling the structural indexes.
      {true, true, JoinImpl::kHash, ExecMode::kStreaming,
       /*force_sort=*/true},
      {true, true, JoinImpl::kHash, ExecMode::kMaterialize,
       /*force_sort=*/true},
      {true, true, JoinImpl::kHash, ExecMode::kMaterialize,
       /*force_sort=*/false, /*use_doc_index=*/false},
  };
  int errored = 0;
  const int kQueriesPerSeed = 8;
  for (int qi = 0; qi < kQueriesPerSeed; qi++) {
    std::string query =
        "declare variable $doc external; " + gen.Query(qi, 3);
    DynamicContext ctx;
    ctx.BindVariable(Symbol("doc"), {Item(*doc_)});

    std::string reference;
    bool reference_error = false;
    for (size_t i = 0; i < std::size(kConfigs); i++) {
      Result<PreparedQuery> pq = engine.Prepare(query, kConfigs[i]);
      ASSERT_TRUE(pq.ok()) << pq.status().ToString() << "\nquery: " << query;
      Result<std::string> r = pq.value().ExecuteToString(&ctx);
      if (i == 0) {
        reference_error = !r.ok();
        if (reference_error) {
          errored++;
          break;  // generated a dynamically erroneous query; skip
        }
        reference = r.value();
      } else {
        ASSERT_TRUE(r.ok())
            << "config " << i << " errored where baseline succeeded: "
            << r.status().ToString() << "\nquery: " << query;
        ASSERT_EQ(r.value(), reference)
            << "config " << i << " disagrees\nquery: " << query << "\nplan: "
            << pq.value().ExplainPlan();
      }
    }
  }
  // The generator should produce mostly well-typed queries.
  EXPECT_LE(errored, kQueriesPerSeed / 2) << "seed " << seed;
}

// Batch-size ablation: the streaming engine's vectorized iterators are an
// internal amortization only. Sweeping batch_size over 1 (the
// tuple-at-a-time oracle), tiny sizes that force every partial-batch and
// carry-over path (2, 3, 7), and the default 1024 must be byte-identical
// on every generated query — including ones that error.
TEST_P(PropertyTest, BatchSizesAgree) {
  uint64_t seed = GetParam();
  Gen gen(seed);
  Engine engine;
  const int kBatchSizes[] = {1, 2, 3, 7, 1024};
  const int kQueriesPerSeed = 6;
  for (int qi = 0; qi < kQueriesPerSeed; qi++) {
    std::string query =
        "declare variable $doc external; " + gen.Query(qi, 3);
    DynamicContext ctx;
    ctx.BindVariable(Symbol("doc"), {Item(*doc_)});

    std::string reference;
    for (size_t i = 0; i < std::size(kBatchSizes); i++) {
      EngineOptions opts;  // streaming algebra, optimized (the default)
      opts.batch_size = kBatchSizes[i];
      Result<PreparedQuery> pq = engine.Prepare(query, opts);
      ASSERT_TRUE(pq.ok()) << pq.status().ToString() << "\nquery: " << query;
      Result<std::string> r = pq.value().ExecuteToString(&ctx);
      std::string got = r.ok() ? r.value() : "ERROR:" + r.status().code();
      if (i == 0) {
        reference = got;
      } else {
        ASSERT_EQ(got, reference)
            << "batch_size=" << kBatchSizes[i]
            << " disagrees with the tuple-at-a-time oracle\nquery: " << query
            << "\nplan: " << pq.value().ExplainPlan();
      }
    }
  }
}

// Parallelism ablation: generated queries rewritten to scan a small
// fn:collection corpus must be byte-identical at parallelism 1 (the serial
// oracle), 2, and 4 — including queries that error, and including the many
// generated shapes that are statically ineligible and take the serial
// fallback. This is the broad-spectrum check for the partition/merge path:
// most shapes exercise the eligibility analyzer's "reject" verdicts, the
// eligible ones exercise the doc-partitioned k-way merge.
TEST_P(PropertyTest, ParallelismLevelsAgree) {
  static const std::string* corpus_dir = [] {
    auto* dir = new std::string(::testing::TempDir() + "xqc_property_corpus");
    std::system(("rm -rf " + *dir + " && mkdir -p " + *dir).c_str());
    // Three members with distinct content so cross-document order and
    // per-document results are distinguishable in the merged output.
    const char* members[3] = {
        "<site><people><person id=\"p0\"><name>Ann</name><age>31</age>"
        "</person></people></site>",
        "<site><people><person id=\"p1\"><name>Bob</name><age>25</age>"
        "</person><person id=\"p2\"><name>Cyd</name><age>44</age>"
        "</person></people></site>",
        "<site><orders><order oid=\"o1\" by=\"p2\"><total>15</total>"
        "</order></orders></site>"};
    for (int i = 0; i < 3; i++) {
      std::ofstream out(*dir + "/m" + std::to_string(i) + ".xml",
                        std::ios::trunc);
      out << members[i];
    }
    return dir;
  }();

  uint64_t seed = GetParam();
  Gen gen(seed);
  Engine engine;
  const std::string call = "fn:collection(\"" + *corpus_dir + "\")";
  const int kLevels[] = {1, 2, 4};
  const int kQueriesPerSeed = 4;
  for (int qi = 0; qi < kQueriesPerSeed; qi++) {
    std::string query = gen.Query(qi, 3);
    for (size_t pos = 0; (pos = query.find("$doc", pos)) != std::string::npos;
         pos += call.size()) {
      query.replace(pos, 4, call);
    }

    std::string reference;
    for (size_t i = 0; i < std::size(kLevels); i++) {
      EngineOptions opts;
      opts.parallelism = kLevels[i];
      DynamicContext ctx;
      Result<PreparedQuery> pq = engine.Prepare(query, opts);
      ASSERT_TRUE(pq.ok()) << pq.status().ToString() << "\nquery: " << query;
      Result<std::string> r = pq.value().ExecuteToString(&ctx);
      std::string got = r.ok() ? r.value() : "ERROR:" + r.status().code();
      if (i == 0) {
        reference = got;
      } else {
        ASSERT_EQ(got, reference)
            << "parallelism=" << kLevels[i]
            << " disagrees with the serial oracle\nquery: " << query
            << "\nplan: " << pq.value().ExplainPlan();
      }
    }
  }
}

// DocumentStore ablation: the same generated queries with $doc rewritten
// into fn:doc calls must be byte-identical with the store enabled and
// disabled (and cheap on the store side — one parse total, then hits).
TEST_P(PropertyTest, DocStoreOnAndOffAgree) {
  static const std::string* doc_path = [] {
    auto* p = new std::string(::testing::TempDir() + "xqc_property_doc.xml");
    std::ofstream out(*p, std::ios::trunc);
    out << kPropertyDoc;
    return p;
  }();

  uint64_t seed = GetParam();
  Gen gen(seed);
  Engine engine;
  EngineOptions store_on;
  EngineOptions store_off;
  store_off.use_doc_store = false;
  const std::string call = "doc(\"" + *doc_path + "\")";
  const int kQueriesPerSeed = 4;
  for (int qi = 0; qi < kQueriesPerSeed; qi++) {
    std::string query = gen.Query(qi, 3);
    for (size_t pos = 0; (pos = query.find("$doc", pos)) != std::string::npos;
         pos += call.size()) {
      query.replace(pos, 4, call);
    }

    std::string results[2];
    const EngineOptions* configs[2] = {&store_on, &store_off};
    for (int i = 0; i < 2; i++) {
      DynamicContext ctx;
      Result<PreparedQuery> pq = engine.Prepare(query, *configs[i]);
      ASSERT_TRUE(pq.ok()) << pq.status().ToString() << "\nquery: " << query;
      Result<std::string> r = pq.value().ExecuteToString(&ctx);
      results[i] = r.ok() ? r.value() : "ERROR:" + r.status().code();
    }
    ASSERT_EQ(results[0], results[1])
        << "store-on and store-off disagree\nquery: " << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Range<uint64_t>(1, 33),
                         [](const ::testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// The differential oracle extended to the concurrent path: a generated
// query is prepared once per configuration, a serial reference result is
// taken, and then every shared plan is executed from N threads with
// per-thread dynamic contexts over the same shared document. Every
// concurrent execution must reproduce the serial answer — this is the
// PreparedQuery-reuse contract (immutable after Prepare) under load.
TEST(ConcurrentPropertyTest, SharedPlansAgreeAcrossThreads) {
  NodePtr doc = MustParseXml(R"(
      <site>
        <people>
          <person id="p0"><name>Ann</name><age>31</age></person>
          <person id="p1"><name>Bob</name><age>25</age></person>
          <person id="p2"><name>Cyd</name><age>44</age></person>
        </people>
        <orders>
          <order id="o0" buyer="p0"><amount>10</amount></order>
          <order id="o1" buyer="p2"><amount>25</amount></order>
          <order id="o2" buyer="p0"><amount>40</amount></order>
        </orders>
      </site>)");
  Engine engine;
  const EngineOptions kConfigs[] = {
      {true, true, JoinImpl::kHash, ExecMode::kStreaming},
      {true, true, JoinImpl::kHash, ExecMode::kMaterialize},
      {true, true, JoinImpl::kNestedLoop, ExecMode::kStreaming},
  };
  constexpr int kThreads = 4;
  constexpr int kRunsPerThread = 3;
  for (uint64_t seed = 101; seed < 106; seed++) {
    Gen gen(seed);
    // Kinds 1 and 2 generate document/join shapes (the plans that share
    // caches and symbols most aggressively).
    std::string query = "declare variable $doc external; " +
                        gen.Query(1 + static_cast<int>(seed % 2), 3);
    for (const EngineOptions& config : kConfigs) {
      Result<PreparedQuery> pq = engine.Prepare(query, config);
      ASSERT_TRUE(pq.ok()) << pq.status().ToString() << "\nquery: " << query;
      const PreparedQuery& plan = pq.value();
      DynamicContext serial_ctx;
      serial_ctx.BindVariable(Symbol("doc"), {Item(doc)});
      Result<std::string> serial = plan.ExecuteToString(&serial_ctx);
      if (!serial.ok()) continue;  // dynamically erroneous shape: skip
      std::atomic<int> mismatches{0};
      std::vector<std::thread> threads;
      for (int t = 0; t < kThreads; t++) {
        threads.emplace_back([&] {
          for (int i = 0; i < kRunsPerThread; i++) {
            DynamicContext ctx;
            ctx.BindVariable(Symbol("doc"), {Item(doc)});
            Result<std::string> r = plan.ExecuteToString(&ctx);
            if (!r.ok() || r.value() != serial.value()) mismatches++;
          }
        });
      }
      for (auto& th : threads) th.join();
      EXPECT_EQ(mismatches.load(), 0)
          << "concurrent executions diverged from serial\nquery: " << query;
    }
  }
}

}  // namespace
}  // namespace xqc
