// Overload-resilience tests for QueryService (see DESIGN.md "Overload
// policy"): per-tenant admission quotas (XQC0010), weighted-fair dequeue,
// deadline-aware load shedding at dispatch and admission, the zero-deadline
// dispatch edge, retry-backoff jitter, and prompt shutdown during backoff.
//
// Everything here runs under TSan in scripts/check.sh alongside
// concurrency_test, so the new queue bookkeeping is race-checked too.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/service/query_service.h"

namespace xqc {
namespace {

// Runs effectively forever unless a guard or cancellation stops it — used
// to pin a worker so queue behavior can be observed deterministically.
const char* kUnboundedQuery =
    "count(for $a in 1 to 1000000, $b in 1 to 1000000 return 1)";

/// Submits `query` under a caller-held token and blocks until a worker has
/// picked it up (bind_context runs on the worker thread before execution).
std::future<QueryResponse> SubmitAndWaitStart(QueryService* service,
                                              const std::string& query,
                                              CancellationToken token,
                                              const std::string& tenant = "") {
  auto started = std::make_shared<std::promise<void>>();
  std::future<void> started_future = started->get_future();
  QueryRequest req;
  req.query_text = query;
  req.tenant = tenant;
  req.cancel = std::move(token);
  req.bind_context = [started,
                      fired = std::make_shared<std::atomic<bool>>(false)](
                         DynamicContext*) {
    if (!fired->exchange(true)) started->set_value();
  };
  std::future<QueryResponse> f = service->Submit(std::move(req));
  if (f.wait_for(std::chrono::milliseconds(0)) != std::future_status::ready) {
    started_future.wait();
  }
  return f;
}

// ---- per-tenant quotas -----------------------------------------------------

TEST(ServiceTenantQuota, OverQuotaTenantFailsFastOthersAdmitted) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_queue = 16;
  opts.tenant_max_in_flight = 2;  // queued + running per tenant
  opts.retry_transient = false;
  QueryService service(opts);

  // Tenant A: one running (pins the worker), one queued — at quota.
  CancellationToken pin = CancellationToken::Make();
  auto running = SubmitAndWaitStart(&service, kUnboundedQuery, pin, "A");
  QueryRequest queued;
  queued.query_text = "1 + 1";
  queued.tenant = "A";
  auto waiting = service.Submit(std::move(queued));

  // A third request from A is over quota: it must fail synchronously
  // (future already ready) with XQC0010, without touching the queue.
  auto t0 = std::chrono::steady_clock::now();
  QueryRequest over;
  over.query_text = "2 + 2";
  over.tenant = "A";
  auto rejected = service.Submit(std::move(over));
  ASSERT_EQ(rejected.wait_for(std::chrono::milliseconds(0)),
            std::future_status::ready);
  QueryResponse resp = rejected.get();
  int64_t reject_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  EXPECT_EQ(resp.status.code(), kTenantOverQuotaCode);
  EXPECT_LT(reject_ms, 5);

  // Tenant B is unaffected by A's saturation.
  QueryRequest other;
  other.query_text = "3 + 3";
  other.tenant = "B";
  auto admitted = service.Submit(std::move(other));

  pin.RequestCancel();
  EXPECT_FALSE(running.get().status.ok());
  EXPECT_EQ(waiting.get().result, "2");
  EXPECT_EQ(admitted.get().result, "6");

  // Quota slots are released by completion: A fits again.
  QueryRequest again;
  again.query_text = "4 + 4";
  again.tenant = "A";
  EXPECT_EQ(service.Run(std::move(again)).result, "8");

  QueryService::Counters c = service.counters();
  EXPECT_EQ(c.tenant_rejected, 1);
  EXPECT_EQ(c.tenant_rejections.at("A"), 1);
  EXPECT_EQ(c.tenant_rejections.count("B"), 0u);
}

TEST(ServiceTenantQuota, QueuedQuotaCapsBacklogOnly) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_queue = 16;
  opts.tenant_max_queued = 1;
  opts.retry_transient = false;
  QueryService service(opts);

  CancellationToken pin = CancellationToken::Make();
  auto running = SubmitAndWaitStart(&service, kUnboundedQuery, pin, "A");

  QueryRequest first;
  first.query_text = "1";
  first.tenant = "A";
  auto q1 = service.Submit(std::move(first));  // 1 queued: at cap
  QueryRequest second;
  second.query_text = "2";
  second.tenant = "A";
  auto q2 = service.Submit(std::move(second));
  EXPECT_EQ(q2.get().status.code(), kTenantOverQuotaCode);

  pin.RequestCancel();
  EXPECT_EQ(q1.get().result, "1");
  running.get();
}

// ---- weighted-fair dequeue -------------------------------------------------

TEST(ServiceFairDequeue, RoundRobinAcrossTenantsFifoWithin) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_queue = 16;
  opts.fair_dequeue = true;
  opts.retry_transient = false;
  QueryService service(opts);

  CancellationToken pin = CancellationToken::Make();
  auto running = SubmitAndWaitStart(&service, kUnboundedQuery, pin, "Z");

  // Backlog while the worker is pinned: A floods, B and C each queue one.
  std::mutex mu;
  std::vector<std::string> pickup_order;
  std::vector<std::future<QueryResponse>> futures;
  auto enqueue = [&](const std::string& tenant, const std::string& tag) {
    QueryRequest req;
    req.query_text = "'" + tag + "'";
    req.tenant = tenant;
    req.bind_context = [&mu, &pickup_order, tag](DynamicContext*) {
      std::lock_guard<std::mutex> lock(mu);
      pickup_order.push_back(tag);
    };
    futures.push_back(service.Submit(std::move(req)));
  };
  enqueue("A", "a1");
  enqueue("A", "a2");
  enqueue("A", "a3");
  enqueue("B", "b1");
  enqueue("C", "c1");

  pin.RequestCancel();
  running.get();
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());

  // One slot per tenant per cycle (A, B, C, then A's remaining backlog),
  // and A's own jobs stay in submission order.
  std::vector<std::string> want = {"a1", "b1", "c1", "a2", "a3"};
  EXPECT_EQ(pickup_order, want);
}

// ---- deadline-aware shedding -----------------------------------------------

TEST(ServiceShedding, EwmaShedsCorpseJobsFastWithDeadlineCode) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_queue = 16;
  opts.shed_on_dequeue = true;
  opts.ewma_seed_ms = 60'000;  // "queries have been taking a minute"
  opts.retry_transient = false;
  QueryService service(opts);
  EXPECT_DOUBLE_EQ(service.ewma_exec_ms(), 60'000.0);

  CancellationToken pin = CancellationToken::Make();
  auto running = SubmitAndWaitStart(&service, kUnboundedQuery, pin, "");

  // 5s of budget remains when this dequeues, far below the 60s estimate:
  // a corpse. It must fail with the deadline code without executing.
  std::atomic<bool> engine_touched{false};
  QueryRequest doomed;
  doomed.query_text = "1 + 1";
  doomed.limits.deadline_ms = 5'000;
  doomed.bind_context = [&engine_touched](DynamicContext*) {
    engine_touched = true;
  };
  auto shed = service.Submit(std::move(doomed));

  pin.RequestCancel();
  running.get();
  QueryResponse resp = shed.get();
  EXPECT_EQ(resp.status.code(), kGuardTimeoutCode);
  EXPECT_NE(resp.status.message().find("shed at dispatch"), std::string::npos);
  EXPECT_EQ(resp.attempts, 1);
  EXPECT_FALSE(resp.retried_transient);
  EXPECT_FALSE(engine_touched.load());
  EXPECT_EQ(service.counters().shed_in_queue, 1);
}

TEST(ServiceShedding, PredictedQueueWaitRejectsAtAdmission) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_queue = 32;
  opts.predict_admission = true;
  opts.ewma_seed_ms = 10'000;  // each queued job predicts 10s of wait
  opts.retry_transient = false;
  QueryService service(opts);

  CancellationToken pin = CancellationToken::Make();
  auto running = SubmitAndWaitStart(&service, kUnboundedQuery, pin, "");

  // Backlog of deadline-less jobs (never rejected by prediction).
  std::vector<std::future<QueryResponse>> backlog;
  for (int i = 0; i < 4; i++) {
    QueryRequest req;
    req.query_text = kUnboundedQuery;
    req.cancel = pin;  // all released together
    backlog.push_back(service.Submit(std::move(req)));
  }

  // Predicted wait is 4 x 10s / 1 worker = 40s >> the 100ms budget:
  // reject at Submit, synchronously, with the overload code.
  QueryRequest hopeless;
  hopeless.query_text = "1";
  hopeless.limits.deadline_ms = 100;
  auto rejected = service.Submit(std::move(hopeless));
  ASSERT_EQ(rejected.wait_for(std::chrono::milliseconds(0)),
            std::future_status::ready);
  QueryResponse resp = rejected.get();
  EXPECT_EQ(resp.status.code(), kServiceOverloadedCode);
  EXPECT_NE(resp.status.message().find("predicted queue wait"),
            std::string::npos);
  EXPECT_EQ(service.counters().rejected_predicted, 1);

  pin.RequestCancel();
  service.Shutdown();  // queued backlog fails XQC0007; that's fine here
  running.get();
  for (auto& f : backlog) f.get();
}

// ---- the zero-deadline dispatch edge ---------------------------------------

TEST(ServiceShedding, BudgetExhaustedInQueueFailsBeforeEngineSetup) {
  // When the queue wait consumed the entire end-to-end budget, the job
  // must fail before ANY engine setup: bind_context (which ExecuteOnce
  // invokes before Prepare) is the sentinel — it must never fire.
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_queue = 16;
  opts.retry_transient = false;  // isolate the dispatch path
  QueryService service(opts);

  CancellationToken pin = CancellationToken::Make();
  auto running = SubmitAndWaitStart(&service, kUnboundedQuery, pin, "");

  std::atomic<bool> engine_touched{false};
  QueryRequest req;
  req.query_text = "1 + 1";
  req.limits.deadline_ms = 1;  // gone by the time a worker frees up
  req.bind_context = [&engine_touched](DynamicContext*) {
    engine_touched = true;
  };
  auto f = service.Submit(std::move(req));

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pin.RequestCancel();
  running.get();
  QueryResponse resp = f.get();
  EXPECT_EQ(resp.status.code(), kGuardTimeoutCode);
  EXPECT_NE(resp.status.message().find("exhausted in the admission queue"),
            std::string::npos);
  EXPECT_GE(resp.queue_wait_ms, 1);
  EXPECT_FALSE(engine_touched.load());
  // Not an EWMA shed: with shedding off the counter stays zero.
  EXPECT_EQ(service.counters().shed_in_queue, 0);
}

// ---- retry-backoff jitter --------------------------------------------------

TEST(ServiceJitter, BackoffStaysInHalfOpenRange) {
  uint64_t state = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 10'000; i++) {
    int64_t wait = JitteredBackoffMs(8, &state);
    EXPECT_GE(wait, 8);
    EXPECT_LT(wait, 16);
  }
}

TEST(ServiceJitter, DeterministicForFixedSeedDistinctAcrossSeeds) {
  uint64_t a = 42, b = 42, c = 43;
  bool diverged = false;
  for (int i = 0; i < 256; i++) {
    int64_t wa = JitteredBackoffMs(100, &a);
    EXPECT_EQ(wa, JitteredBackoffMs(100, &b));  // same seed, same stream
    if (wa != JitteredBackoffMs(100, &c)) diverged = true;
  }
  EXPECT_TRUE(diverged);  // different seeds decorrelate
}

TEST(ServiceJitter, ShutdownInterruptsBackoffPromptly) {
  // Force a transient (congestion-caused) deadline trip so the worker
  // enters its retry backoff, sized at a full minute — Shutdown must cut
  // through it immediately and the original failure must stand.
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.max_queue = 16;
  opts.retry_transient = true;
  opts.retry_backoff_ms = 60'000;
  QueryService service(opts);

  CancellationToken pin = CancellationToken::Make();
  auto running = SubmitAndWaitStart(&service, kUnboundedQuery, pin, "");

  QueryRequest req;
  req.query_text = "1 + 1";
  req.limits.deadline_ms = 5;  // consumed in queue => transient trip
  auto f = service.Submit(std::move(req));

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  pin.RequestCancel();
  running.get();
  // Give the worker a moment to land inside the backoff wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  auto t0 = std::chrono::steady_clock::now();
  service.Shutdown();
  int64_t shutdown_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  EXPECT_LT(shutdown_ms, 5'000);  // nowhere near the 60s backoff

  QueryResponse resp = f.get();
  EXPECT_EQ(resp.status.code(), kGuardTimeoutCode);
  EXPECT_EQ(resp.attempts, 1);
  EXPECT_FALSE(resp.retried_transient);
}

// ---- EWMA plumbing ---------------------------------------------------------

TEST(ServiceEwma, TracksCompletedExecutions) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.retry_transient = false;
  QueryService service(opts);
  EXPECT_DOUBLE_EQ(service.ewma_exec_ms(), 0.0);

  QueryRequest req;
  req.query_text = "sum(1 to 1000)";
  EXPECT_EQ(service.Run(std::move(req)).result, "500500");
  // A completed execution seeds the estimate (>= 0; typically sub-ms
  // rounds to 0ms, so only check that seeding from options still works).
  ServiceOptions seeded;
  seeded.ewma_seed_ms = 25;
  QueryService seeded_service(seeded);
  EXPECT_DOUBLE_EQ(seeded_service.ewma_exec_ms(), 25.0);
}

// ---- ablation parity -------------------------------------------------------

TEST(ServiceAblation, DefaultOptionsLeaveNewCountersUntouched) {
  // With every overload knob at its default the service must behave like
  // the pre-quota layer: tenants are accepted but untracked, nothing is
  // shed or predicted, and the new counters stay zero.
  ServiceOptions opts;
  opts.num_threads = 2;
  opts.retry_transient = false;
  QueryService service(opts);

  for (int i = 0; i < 8; i++) {
    QueryRequest req;
    req.query_text = std::to_string(i) + " * 2";
    req.tenant = (i % 2 == 0) ? "A" : "B";  // ignored without quotas
    req.limits.deadline_ms = 60'000;
    QueryResponse resp = service.Run(std::move(req));
    EXPECT_TRUE(resp.status.ok()) << resp.status.message();
    EXPECT_EQ(resp.result, std::to_string(i * 2));
  }

  QueryService::Counters c = service.counters();
  EXPECT_EQ(c.submitted, 8);
  EXPECT_EQ(c.completed, 8);
  EXPECT_EQ(c.rejected, 0);
  EXPECT_EQ(c.shed_in_queue, 0);
  EXPECT_EQ(c.rejected_predicted, 0);
  EXPECT_EQ(c.tenant_rejected, 0);
  EXPECT_TRUE(c.tenant_rejections.empty());
}

// ---- prepared-plan cache ---------------------------------------------------

TEST(PlanCache, HitSkipsCompileAndAnswersIdentically) {
  ServiceOptions opts;
  opts.num_threads = 2;
  QueryService service(opts);

  QueryRequest a;
  a.query_text = "for $i in 1 to 10 return $i * $i";
  QueryResponse ra = service.Run(std::move(a));
  ASSERT_TRUE(ra.status.ok());
  QueryRequest b;
  b.query_text = "  for $i in 1 to 10 return $i * $i \n";  // same after trim
  QueryResponse rb = service.Run(std::move(b));
  ASSERT_TRUE(rb.status.ok());
  EXPECT_EQ(ra.result, rb.result);

  QueryService::PlanCacheStats pc = service.plan_cache_stats();
  EXPECT_EQ(pc.compiles, 1);
  EXPECT_EQ(pc.misses, 1);
  EXPECT_EQ(pc.hits, 1);
  EXPECT_EQ(pc.entries, 1);
  EXPECT_GT(pc.bytes, 0);
}

TEST(PlanCache, AblationIsByteIdenticalAndUncounted) {
  // The --no-plan-cache path must be the exact pre-cache code path: same
  // bytes out, nothing recorded in the cache.
  ServiceOptions cached_opts;
  cached_opts.num_threads = 1;
  ServiceOptions ablated_opts;
  ablated_opts.num_threads = 1;
  ablated_opts.plan_cache_entries = 0;
  QueryService cached(cached_opts);
  QueryService ablated(ablated_opts);
  const char* kQueries[] = {
      "1 to 5",
      "<r>{for $i in 1 to 3 return <x>{$i}</x>}</r>",
      "sum(for $i in 1 to 100 return $i)",
  };
  for (const char* q : kQueries) {
    for (int round = 0; round < 2; round++) {
      QueryRequest r1;
      r1.query_text = q;
      QueryRequest r2;
      r2.query_text = q;
      QueryResponse a = cached.Run(std::move(r1));
      QueryResponse b = ablated.Run(std::move(r2));
      ASSERT_TRUE(a.status.ok()) << q;
      ASSERT_TRUE(b.status.ok()) << q;
      EXPECT_EQ(a.result, b.result) << q;
    }
  }
  EXPECT_GT(cached.plan_cache_stats().hits, 0);
  QueryService::PlanCacheStats pc = ablated.plan_cache_stats();
  EXPECT_EQ(pc.hits + pc.misses + pc.compiles + pc.entries, 0);

  // Per-request bypass on a cache-enabled service is also untracked.
  QueryRequest bypass;
  bypass.query_text = "9 - 2";
  bypass.no_plan_cache = true;
  EXPECT_TRUE(cached.Run(std::move(bypass)).status.ok());
  EXPECT_EQ(cached.plan_cache_stats().entries, 3u);  // nothing new cached
}

TEST(PlanCache, StampedeCompilesExactlyOnce) {
  // N threads race one cold query; singleflight must compile it once and
  // coalesce every other thread onto that compilation.
  ServiceOptions opts;
  opts.num_threads = 8;
  opts.max_queue = 64;
  QueryService service(opts);
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      QueryRequest req;
      req.query_text = "count(for $i in 1 to 500 return $i)";
      req.limits.deadline_ms = 60'000;
      QueryResponse resp = service.Run(std::move(req));
      if (resp.status.ok() && resp.result == "500") ok.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads);
  QueryService::PlanCacheStats pc = service.plan_cache_stats();
  EXPECT_EQ(pc.compiles, 1);
  EXPECT_EQ(pc.hits + pc.waiters_coalesced, kThreads - 1);
}

TEST(PlanCache, BatchAndParallelismKeySeparately) {
  // batch_size/parallelism bake into the compiled plan, so each effective
  // combination is its own cache entry — a hit may never change semantics.
  ServiceOptions opts;
  opts.num_threads = 2;
  QueryService service(opts);
  const std::string q = "count(for $i in 1 to 200 return $i)";
  for (int batch : {0, 64}) {
    QueryRequest req;
    req.query_text = q;
    req.batch_size = batch;
    QueryResponse resp = service.Run(std::move(req));
    ASSERT_TRUE(resp.status.ok());
    EXPECT_EQ(resp.result, "200");
  }
  EXPECT_EQ(service.plan_cache_stats().compiles, 2);
  EXPECT_EQ(service.plan_cache_stats().entries, 2u);
}

TEST(PlanCache, NegativeCachingOnlyForDeterministicErrors) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.plan_cache_negative_ttl_ms = 60'000;
  QueryService service(opts);
  for (int i = 0; i < 3; i++) {
    QueryRequest req;
    req.query_text = "1 to (((";  // parse error: deterministic
    QueryResponse resp = service.Run(std::move(req));
    EXPECT_FALSE(resp.status.ok());
    EXPECT_EQ(resp.status.kind(), StatusKind::kParseError);
  }
  QueryService::PlanCacheStats pc = service.plan_cache_stats();
  EXPECT_EQ(pc.compiles, 1);  // the error was cached, not re-derived
  EXPECT_EQ(pc.negative_hits, 2);
}

TEST(PlanCache, InvalidationDropsEntriesAndForcesRecompile) {
  ServiceOptions opts;
  opts.num_threads = 1;
  QueryService service(opts);
  auto run = [&](const std::string& q) {
    QueryRequest req;
    req.query_text = q;
    return service.Run(std::move(req));
  };
  ASSERT_TRUE(run("1 + 1").status.ok());
  ASSERT_TRUE(run("2 + 2").status.ok());
  EXPECT_EQ(service.plan_cache_stats().entries, 2u);
  EXPECT_EQ(service.InvalidatePlan("1 + 1"), 1);
  EXPECT_EQ(service.InvalidatePlan("no such entry"), 0);
  EXPECT_EQ(service.plan_cache_stats().entries, 1u);
  ASSERT_TRUE(run("1 + 1").status.ok());
  EXPECT_EQ(service.plan_cache_stats().compiles, 3);  // recompiled
  EXPECT_EQ(service.InvalidateAllPlans(), 2);
  EXPECT_EQ(service.plan_cache_stats().entries, 0u);
}

TEST(PlanCache, LruEvictionBoundsEntries) {
  ServiceOptions opts;
  opts.num_threads = 1;
  opts.plan_cache_entries = 4;
  QueryService service(opts);
  for (int i = 0; i < 10; i++) {
    QueryRequest req;
    req.query_text = std::to_string(i) + " + 0";
    ASSERT_TRUE(service.Run(std::move(req)).status.ok());
  }
  QueryService::PlanCacheStats pc = service.plan_cache_stats();
  EXPECT_LE(pc.entries, 4u);
  EXPECT_EQ(pc.evictions, 6);
  // The most recent entry is resident; the oldest was evicted.
  QueryRequest hot;
  hot.query_text = "9 + 0";
  ASSERT_TRUE(service.Run(std::move(hot)).status.ok());
  EXPECT_EQ(service.plan_cache_stats().compiles, 10);  // hit, no recompile
  QueryRequest cold;
  cold.query_text = "0 + 0";
  ASSERT_TRUE(service.Run(std::move(cold)).status.ok());
  EXPECT_EQ(service.plan_cache_stats().compiles, 11);  // evicted, recompiled
}

}  // namespace
}  // namespace xqc
