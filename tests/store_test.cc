// Tests for the fault-tolerant shared DocumentStore (src/store): URI
// normalization, bounded LRU caching, singleflight loading, retry/backoff
// under injected I/O faults, quarantine, negative caching, staleness, and
// the store-on/store-off ablation. The FaultMatrix suite at the bottom is
// additionally swept by scripts/check.sh with XQC_IO_FAULT_MODE set to
// each injector mode.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/engine/engine.h"
#include "src/runtime/context.h"
#include "src/store/document_store.h"
#include "src/store/io_fault.h"
#include "tests/test_util.h"

namespace xqc {
namespace {

// ---------------------------------------------------------------------------
// NormalizeDocUri (satellite: fn:doc cache-key aliasing regression)
// ---------------------------------------------------------------------------

TEST(NormalizeDocUriTest, AliasesCollapseToOneKey) {
  // The original aliasing bug: these three spellings of one file used to
  // occupy three distinct cache entries.
  EXPECT_EQ(NormalizeDocUri("a.xml"), "a.xml");
  EXPECT_EQ(NormalizeDocUri("./a.xml"), "a.xml");
  EXPECT_EQ(NormalizeDocUri("dir/../a.xml"), "a.xml");
}

TEST(NormalizeDocUriTest, LexicalRules) {
  EXPECT_EQ(NormalizeDocUri("/a/b/../c"), "/a/c");
  EXPECT_EQ(NormalizeDocUri("a//b/./c"), "a/b/c");
  EXPECT_EQ(NormalizeDocUri("/a/./b/"), "/a/b");
  // Relative paths keep leading ".."s (they are resolved by the OS, not
  // by us); absolute paths cannot climb above the root.
  EXPECT_EQ(NormalizeDocUri("../x.xml"), "../x.xml");
  EXPECT_EQ(NormalizeDocUri("a/../../x.xml"), "../x.xml");
  EXPECT_EQ(NormalizeDocUri("/../x.xml"), "/x.xml");
  // Degenerate inputs.
  EXPECT_EQ(NormalizeDocUri(""), "");
  EXPECT_EQ(NormalizeDocUri("."), ".");
  EXPECT_EQ(NormalizeDocUri("a/.."), ".");
  EXPECT_EQ(NormalizeDocUri("/"), "/");
  // Anything with a scheme passes through untouched.
  EXPECT_EQ(NormalizeDocUri("http://host/a/../b"), "http://host/a/../b");
}

// ---------------------------------------------------------------------------
// Store fixture: a private store plus scratch files under TempDir.
// ---------------------------------------------------------------------------

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "xqc_store_test/";
    std::system(("mkdir -p " + dir_).c_str());
  }
  void TearDown() override {
    for (const std::string& p : files_) std::remove(p.c_str());
  }

  std::string WriteDoc(const std::string& name, const std::string& content) {
    std::string path = dir_ + name;
    std::ofstream out(path, std::ios::trunc);
    out << content;
    out.close();
    files_.push_back(path);
    return path;
  }

  static DocumentStoreOptions FastOptions() {
    DocumentStoreOptions o;
    o.retry_backoff_ms = 1;  // keep injected-fault tests fast
    return o;
  }

  std::string dir_;
  std::vector<std::string> files_;
};

TEST_F(StoreTest, SecondLoadHitsCacheAndSharesTheTree) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("hit.xml", "<r><a/><a/></r>");

  DocStoreStats stats;
  bool parsed = false;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  opts.performed_parse = &parsed;

  Result<NodePtr> first = store.Load(path, opts);
  ASSERT_OK(first);
  EXPECT_TRUE(parsed);
  EXPECT_EQ(stats.misses, 1);

  parsed = false;
  Result<NodePtr> second = store.Load(path, opts);
  ASSERT_OK(second);
  EXPECT_FALSE(parsed);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ(store.counters().entries, 1);
}

TEST_F(StoreTest, AliasedUrisShareOneCacheEntry) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("alias.xml", "<r/>");

  ASSERT_OK(store.Load(path));
  // "dir/../alias.xml" and "dir/./alias.xml" style respellings of the same
  // absolute path must hit the same entry, not parse three copies.
  std::string dotted = dir_ + "." + "/alias.xml";
  std::string climbed = dir_ + "sub/../alias.xml";

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  ASSERT_OK(store.Load(dotted, opts));
  ASSERT_OK(store.Load(climbed, opts));
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(store.counters().entries, 1);
}

TEST_F(StoreTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Each doc costs ~content + nodes * kNodeCost; budget fits roughly one.
  DocumentStoreOptions options = FastOptions();
  options.max_bytes = 1200;
  DocumentStore store(options);

  std::string a = WriteDoc("evict_a.xml", "<r><a/><a/></r>");
  std::string b = WriteDoc("evict_b.xml", "<r><b/><b/></r>");

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  ASSERT_OK(store.Load(a, opts));
  ASSERT_OK(store.Load(b, opts));  // evicts a
  EXPECT_GE(stats.evictions, 1);
  EXPECT_LE(store.counters().bytes_cached, options.max_bytes);

  bool parsed = false;
  opts.performed_parse = &parsed;
  ASSERT_OK(store.Load(a, opts));  // a was evicted: parses again
  EXPECT_TRUE(parsed);
}

TEST_F(StoreTest, OversizedDocumentServedUncached) {
  DocumentStoreOptions options = FastOptions();
  options.max_bytes = 16;  // smaller than any parsed tree
  DocumentStore store(options);
  std::string path = WriteDoc("big.xml", "<r><a/><b/><c/></r>");

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_OK(r);
  EXPECT_EQ(stats.uncached_oversize, 1);
  EXPECT_EQ(store.counters().entries, 0);
  EXPECT_EQ(store.counters().bytes_cached, 0);

  // Still served (degradation, not failure) — just re-parsed each time.
  bool parsed = false;
  opts.performed_parse = &parsed;
  ASSERT_OK(store.Load(path, opts));
  EXPECT_TRUE(parsed);
}

TEST_F(StoreTest, ZeroBudgetDisablesCachingButNotService) {
  DocumentStoreOptions options = FastOptions();
  options.max_bytes = 0;
  DocumentStore store(options);
  std::string path = WriteDoc("nocache.xml", "<r/>");
  ASSERT_OK(store.Load(path));
  ASSERT_OK(store.Load(path));
  EXPECT_EQ(store.counters().entries, 0);
}

TEST_F(StoreTest, InvalidateDropsTheEntry) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("inval.xml", "<r/>");
  ASSERT_OK(store.Load(path));
  EXPECT_EQ(store.counters().entries, 1);

  EXPECT_TRUE(store.Invalidate(path));
  EXPECT_FALSE(store.Invalidate(path));  // nothing left to drop
  EXPECT_EQ(store.counters().entries, 0);
  EXPECT_EQ(store.counters().bytes_cached, 0);

  bool parsed = false;
  DocumentStore::LoadOptions opts;
  opts.performed_parse = &parsed;
  ASSERT_OK(store.Load(path, opts));
  EXPECT_TRUE(parsed);
}

TEST_F(StoreTest, HotReloadSwapsStaleEntryAtomically) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("stale.xml", "<r><old/></r>");

  Result<NodePtr> first = store.Load(path);
  ASSERT_OK(first);
  NodePtr held = first.value();  // a query still holding the old tree

  // Rewrite with different content (size change guarantees a fingerprint
  // mismatch even on coarse-mtime filesystems).
  WriteDoc("stale.xml", "<r><brand_new/><brand_new/></r>");

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> second = store.Load(path, opts);
  ASSERT_OK(second);
  EXPECT_EQ(stats.stale_reloads, 1);
  EXPECT_NE(held.get(), second.value().get());
  // The old tree stays alive and intact for its holder.
  ASSERT_FALSE(held->children.empty());
  ASSERT_FALSE(held->children[0]->children.empty());
  EXPECT_EQ(held->children[0]->children[0]->name.str(), "old");
}

// ---------------------------------------------------------------------------
// Error classification: retries, exhaustion, negative cache, quarantine.
// ---------------------------------------------------------------------------

TEST_F(StoreTest, FlakyReadsRecoverThroughRetries) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("flaky.xml", "<r><ok/></r>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFlakyThenSucceed;
  fault.fail_n = 2;
  store.set_fault_injector(&fault);

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_OK(r);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(fault.attempts.load(), 3);
  store.set_fault_injector(nullptr);
}

TEST_F(StoreTest, TransientFailuresExhaustRetriesWithXQC0008) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 2;
  DocumentStore store(options);
  std::string path = WriteDoc("downdev.xml", "<r/>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 0;  // every attempt fails
  store.set_fault_injector(&fault);

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().kind(), StatusKind::kIOError);
  EXPECT_EQ(r.status().code(), kStoreRetriesExhaustedCode);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(fault.attempts.load(), 3);  // initial attempt + 2 retries

  // Retry exhaustion is not negative-cached: once the device recovers the
  // next load succeeds immediately.
  store.set_fault_injector(nullptr);
  ASSERT_OK(store.Load(path));
}

TEST_F(StoreTest, PermanentFailureIsNegativeCachedWithTtl) {
  DocumentStoreOptions options = FastOptions();
  options.negative_ttl_ms = 60 * 1000;  // long enough to observe the replay
  DocumentStore store(options);
  std::string path = dir_ + "does_not_exist.xml";

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> first = store.Load(path, opts);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().kind(), StatusKind::kIOError);
  EXPECT_EQ(first.status().code(), "FODC0002");
  EXPECT_EQ(stats.negative_hits, 0);

  Result<NodePtr> second = store.Load(path, opts);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), "FODC0002");
  EXPECT_EQ(stats.negative_hits, 1);  // replayed without touching the FS

  // Invalidate clears the verdict; creating the file makes it loadable.
  EXPECT_TRUE(store.Invalidate(path));
  WriteDoc("does_not_exist.xml", "<r/>");
  ASSERT_OK(store.Load(path, opts));
}

TEST_F(StoreTest, NegativeVerdictExpiresAfterTtl) {
  DocumentStoreOptions options = FastOptions();
  options.negative_ttl_ms = 20;
  DocumentStore store(options);
  std::string path = dir_ + "late_arrival.xml";

  ASSERT_FALSE(store.Load(path).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  WriteDoc("late_arrival.xml", "<r/>");
  ASSERT_OK(store.Load(path));  // TTL expired: the FS is re-probed
}

TEST_F(StoreTest, MalformedDocumentIsQuarantinedAndReplayed) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("poison.xml", "<r><unclosed></r>");

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> first = store.Load(path, opts);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().kind(), StatusKind::kParseError);
  EXPECT_EQ(stats.quarantine_hits, 0);

  // Subsequent loads replay the cached failure (XQC0009, same kind)
  // without re-reading or re-parsing the file.
  Result<NodePtr> second = store.Load(path, opts);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().kind(), StatusKind::kParseError);
  EXPECT_EQ(second.status().code(), kStoreQuarantinedCode);
  EXPECT_EQ(stats.quarantine_hits, 1);
  EXPECT_EQ(store.counters().quarantined, 1);
}

TEST_F(StoreTest, QuarantineLiftsViaInvalidate) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("poison2.xml", "<r><unclosed></r>");
  ASSERT_FALSE(store.Load(path).ok());
  ASSERT_EQ(store.Load(path).status().code(), kStoreQuarantinedCode);

  EXPECT_TRUE(store.Invalidate(path));
  // The file is still malformed: a fresh parse attempt, fresh verdict.
  Result<NodePtr> r = store.Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().code(), kStoreQuarantinedCode);
}

TEST_F(StoreTest, QuarantineLiftsWhenTheFileIsFixed) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("fixed.xml", "<r><unclosed></r>");
  ASSERT_FALSE(store.Load(path).ok());
  ASSERT_EQ(store.Load(path).status().code(), kStoreQuarantinedCode);

  // Fixing the file changes its fingerprint; the quarantine lifts on its
  // own, no Invalidate needed.
  WriteDoc("fixed.xml", "<r><all_better_now/></r>");
  ASSERT_OK(store.Load(path));
  EXPECT_EQ(store.counters().quarantined, 0);
}

TEST_F(StoreTest, GuardTripsAreNeverCached) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("budget.xml", "<r><a/><b/><c/><d/></r>");

  GuardLimits limits;
  limits.max_memory_bytes = 64;  // far below the parse's node accounting
  QueryGuard tight(limits);
  DocumentStore::LoadOptions opts;
  opts.guard = &tight;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().kind(), StatusKind::kResourceExhausted);
  EXPECT_EQ(r.status().code(), kGuardMemoryCode);

  // The trip belonged to that caller, not the document: an unlimited
  // caller succeeds immediately (nothing was quarantined).
  ASSERT_OK(store.Load(path));
}

// ---------------------------------------------------------------------------
// Singleflight: shared parses, waiter deadlines/cancellation, abandonment.
// ---------------------------------------------------------------------------

TEST_F(StoreTest, ConcurrentLoadsShareOneParse) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("shared.xml", "<r><a/><a/><a/></r>");

  IoFaultInjector slow;
  slow.mode = IoFaultMode::kSlowRead;
  slow.delay_ms = 100;  // a window for every thread to pile in
  store.set_fault_injector(&slow);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<DocStoreStats> stats(kThreads);
  std::vector<NodePtr> docs(kThreads);
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      DocumentStore::LoadOptions opts;
      opts.stats = &stats[i];
      Result<NodePtr> r = store.Load(path, opts);
      if (r.ok()) {
        docs[i] = r.value();
      } else {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  store.set_fault_injector(nullptr);

  EXPECT_EQ(failures.load(), 0);
  int64_t misses = 0, waits = 0, hits = 0;
  for (const DocStoreStats& s : stats) {
    misses += s.misses;
    waits += s.singleflight_waits;
    hits += s.hits;
  }
  EXPECT_EQ(misses, 1) << "exactly one thread should have parsed";
  // Every other thread either waited on the leader or (if it started late)
  // hit the already-published cache entry.
  EXPECT_EQ(waits + hits, kThreads - 1);
  EXPECT_EQ(slow.attempts.load(), 1) << "one physical read for all threads";
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(docs[0].get(), docs[i].get());
  }
}

TEST_F(StoreTest, WaiterHonorsItsOwnDeadline) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("slowload.xml", "<r/>");

  IoFaultInjector slow;
  slow.mode = IoFaultMode::kSlowRead;
  slow.delay_ms = 400;
  store.set_fault_injector(&slow);

  // Leader: no deadline, rides out the slow read.
  std::thread leader([&] { ASSERT_OK(store.Load(path)); });
  // Give the leader time to claim the in-flight slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Waiter: a 30ms deadline expires long before the leader finishes. The
  // waiter must abandon the wait with ITS OWN timeout, not block 400ms.
  GuardLimits limits;
  limits.deadline_ms = 30;
  QueryGuard guard(limits);
  DocumentStore::LoadOptions opts;
  opts.guard = &guard;
  auto t0 = std::chrono::steady_clock::now();
  Result<NodePtr> r = store.Load(path, opts);
  auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), kGuardTimeoutCode);
  EXPECT_LT(waited, 300) << "waiter must not ride out the leader's read";

  leader.join();
  store.set_fault_injector(nullptr);
  // Abandonment leaked nothing: the leader published and later loads hit.
  DocStoreStats stats;
  DocumentStore::LoadOptions hit;
  hit.stats = &stats;
  ASSERT_OK(store.Load(path, hit));
  EXPECT_EQ(stats.hits, 1);
}

TEST_F(StoreTest, WaiterHonorsCancellation) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("cancelload.xml", "<r/>");

  IoFaultInjector slow;
  slow.mode = IoFaultMode::kSlowRead;
  slow.delay_ms = 400;
  store.set_fault_injector(&slow);

  std::thread leader([&] { ASSERT_OK(store.Load(path)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  CancellationToken token = CancellationToken::Make();
  QueryGuard guard(GuardLimits{}, token);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.RequestCancel();
  });
  DocumentStore::LoadOptions opts;
  opts.guard = &guard;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), kGuardCancelledCode);

  canceller.join();
  leader.join();
  store.set_fault_injector(nullptr);
  ASSERT_OK(store.Load(path));
}

TEST_F(StoreTest, WaitersRetryWhenLeaderTripsItsOwnGuard) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("tripped_leader.xml", "<r/>");

  IoFaultInjector slow;
  slow.mode = IoFaultMode::kSlowRead;
  slow.delay_ms = 200;
  store.set_fault_injector(&slow);

  // Leader trips its own deadline mid-read. Its failure must not be
  // shared with the waiter, which retries (becoming the new leader) and
  // succeeds once the injector is cleared.
  GuardLimits tight;
  tight.deadline_ms = 40;
  QueryGuard leader_guard(tight);
  std::atomic<bool> leader_failed{false};
  std::thread leader([&] {
    DocumentStore::LoadOptions opts;
    opts.guard = &leader_guard;
    Result<NodePtr> r = store.Load(path, opts);
    leader_failed.store(!r.ok());
    store.set_fault_injector(nullptr);  // device "recovers"
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  leader.join();
  ASSERT_TRUE(leader_failed.load());
  ASSERT_OK(r);
  EXPECT_GE(stats.misses, 1) << "the waiter re-led the load itself";
}

// ---------------------------------------------------------------------------
// Ablation: store-on and store-off must be byte-identical.
// ---------------------------------------------------------------------------

TEST_F(StoreTest, StoreOnAndOffProduceIdenticalResults) {
  std::string path = WriteDoc("diff.xml",
                              "<site><a id='1'>x</a><a id='2'>y</a></site>");
  const std::string query =
      "for $a in doc(\"" + path + "\")//a return string($a)";

  EngineOptions on;
  on.use_doc_store = true;
  EngineOptions off;
  off.use_doc_store = false;

  DynamicContext ctx_on, ctx_off;
  // Private store so the test doesn't touch the process-wide cache.
  DocumentStore store(FastOptions());
  ctx_on.set_document_store(&store);

  Result<std::string> r_on = Engine(on).Execute(query, &ctx_on);
  Result<std::string> r_off = Engine(off).Execute(query, &ctx_off);
  ASSERT_OK(r_on);
  ASSERT_OK(r_off);
  EXPECT_EQ(r_on.value(), r_off.value());
  EXPECT_EQ(store.counters().totals.misses, 1);
  EXPECT_EQ(ctx_off.doc_store_stats().misses, 0)
      << "store-off execution must not touch the store";
}

// ---------------------------------------------------------------------------
// Circuit breaker + brownout (see DESIGN.md "Overload policy"). All tests
// use max_retries=0 so one Load is exactly one I/O attempt and the
// consecutive-failure count is deterministic.
// ---------------------------------------------------------------------------

TEST_F(StoreTest, BreakerOpensAfterThresholdAndFailsFastWithoutIo) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 0;
  options.breaker_threshold = 2;
  options.breaker_cooldown_ms = 60 * 1000;  // stays open for this test
  DocumentStore store(options);
  std::string path = WriteDoc("sick.xml", "<r/>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 0;  // every attempt fails
  store.set_fault_injector(&fault);

  // Two real attempts trip the threshold.
  EXPECT_EQ(store.Load(path).status().code(), kStoreRetriesExhaustedCode);
  EXPECT_EQ(store.Load(path).status().code(), kStoreRetriesExhaustedCode);
  EXPECT_EQ(fault.attempts.load(), 2);

  // The third load fails in microseconds with XQC0011 — crucially, the
  // injector (i.e. the sick device) is never touched again.
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().kind(), StatusKind::kIOError);
  EXPECT_EQ(r.status().code(), kStoreBreakerOpenCode);
  EXPECT_EQ(fault.attempts.load(), 2);
  EXPECT_EQ(stats.breaker_fast_fails, 1);
  EXPECT_EQ(stats.retries, 0);

  DocumentStore::Counters c = store.counters();
  EXPECT_EQ(c.breaker_opens, 1);
  EXPECT_EQ(c.breakers_open, 1);
  store.set_fault_injector(nullptr);
}

TEST_F(StoreTest, BreakerSharedAcrossPrefixNotAcrossDirectories) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 0;
  options.breaker_threshold = 1;
  options.breaker_cooldown_ms = 60 * 1000;
  DocumentStore store(options);
  std::string sick = WriteDoc("sick_a.xml", "<r/>");
  std::string sibling = WriteDoc("sick_b.xml", "<r/>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 0;
  store.set_fault_injector(&fault);
  EXPECT_EQ(store.Load(sick).status().code(), kStoreRetriesExhaustedCode);
  store.set_fault_injector(nullptr);

  // The sibling shares the directory, hence the breaker: it fails fast
  // even though its own file is perfectly healthy.
  EXPECT_EQ(store.Load(sibling).status().code(), kStoreBreakerOpenCode);

  // A different directory has its own (closed) breaker.
  std::string other_dir = dir_ + "healthy/";
  std::system(("mkdir -p " + other_dir).c_str());
  std::string healthy = other_dir + "ok.xml";
  {
    std::ofstream out(healthy, std::ios::trunc);
    out << "<r/>";
  }
  files_.push_back(healthy);
  ASSERT_OK(store.Load(healthy));
}

TEST_F(StoreTest, HalfOpenProbeClosesBreakerOnRecovery) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 0;
  options.breaker_threshold = 1;
  options.breaker_cooldown_ms = 5;
  DocumentStore store(options);
  std::string path = WriteDoc("recovering.xml", "<r><ok/></r>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 0;
  store.set_fault_injector(&fault);
  EXPECT_EQ(store.Load(path).status().code(), kStoreRetriesExhaustedCode);
  EXPECT_EQ(store.counters().breakers_open, 1);

  // Device recovers; after the cooldown the next load is the half-open
  // probe, succeeds, and the breaker closes.
  store.set_fault_injector(nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_OK(store.Load(path));

  DocumentStore::Counters c = store.counters();
  EXPECT_EQ(c.breaker_opens, 1);
  EXPECT_EQ(c.breaker_half_opens, 1);
  EXPECT_EQ(c.breaker_closes, 1);
  EXPECT_EQ(c.breakers_open, 0);

  // Fully healthy again: subsequent loads are plain cache hits.
  ASSERT_OK(store.Load(path));
}

TEST_F(StoreTest, FailedProbeReopensBreaker) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 0;
  options.breaker_threshold = 1;
  options.breaker_cooldown_ms = 5;
  DocumentStore store(options);
  std::string path = WriteDoc("still_sick.xml", "<r/>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 0;
  store.set_fault_injector(&fault);
  EXPECT_EQ(store.Load(path).status().code(), kStoreRetriesExhaustedCode);

  // Cooldown elapses, the probe goes out, the device is still sick: the
  // probe's real failure re-opens the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(store.Load(path).status().code(), kStoreRetriesExhaustedCode);
  EXPECT_EQ(fault.attempts.load(), 2);  // only the original + the probe

  DocumentStore::Counters c = store.counters();
  EXPECT_EQ(c.breaker_opens, 2);
  EXPECT_EQ(c.breaker_half_opens, 1);
  EXPECT_EQ(c.breaker_closes, 0);
  EXPECT_EQ(c.breakers_open, 1);
  store.set_fault_injector(nullptr);
}

TEST_F(StoreTest, BrownoutServesStaleCachedDocWhileOpen) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 0;
  options.breaker_threshold = 1;
  options.breaker_cooldown_ms = 60 * 1000;
  options.brownout = true;
  DocumentStore store(options);

  // Cache v1 of the document, then change the file so the entry is stale.
  std::string path = WriteDoc("brown.xml", "<r>v1</r>");
  Result<NodePtr> v1 = store.Load(path);
  ASSERT_OK(v1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  WriteDoc("brown.xml", "<r>v2 is longer</r>");  // new size => new fingerprint

  // A sibling load opens the directory's breaker.
  std::string sibling = WriteDoc("brown_sibling.xml", "<r/>");
  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 0;
  store.set_fault_injector(&fault);
  EXPECT_EQ(store.Load(sibling).status().code(), kStoreRetriesExhaustedCode);

  // Brownout: the stale v1 tree is served (flagged) instead of XQC0011.
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> stale = store.Load(path, opts);
  ASSERT_OK(stale);
  EXPECT_EQ(stale.value().get(), v1.value().get()) << "must be the v1 tree";
  EXPECT_EQ(stats.brownout_serves, 1);
  EXPECT_EQ(stats.breaker_fast_fails, 0);

  // With brownout off, the same situation is a fast XQC0011.
  store.set_brownout(false);
  Result<NodePtr> hard = store.Load(path, opts);
  ASSERT_FALSE(hard.ok());
  EXPECT_EQ(hard.status().code(), kStoreBreakerOpenCode);
  EXPECT_EQ(stats.breaker_fast_fails, 1);
  store.set_fault_injector(nullptr);
}

TEST_F(StoreTest, BreakerDisabledIsByteIdenticalToOracle) {
  // Ablation: threshold 0 (the default) must leave every breaker counter
  // at zero and never interfere with loads — including under faults.
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("ablation.xml", "<r/>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFlakyThenSucceed;
  fault.fail_n = 2;
  store.set_fault_injector(&fault);
  ASSERT_OK(store.Load(path));
  store.set_fault_injector(nullptr);

  DocumentStore::Counters c = store.counters();
  EXPECT_EQ(c.breaker_opens, 0);
  EXPECT_EQ(c.breaker_half_opens, 0);
  EXPECT_EQ(c.breaker_closes, 0);
  EXPECT_EQ(c.breakers_open, 0);
  EXPECT_EQ(c.totals.breaker_fast_fails, 0);
  EXPECT_EQ(c.totals.brownout_serves, 0);
}

// ---------------------------------------------------------------------------
// FaultMatrix: swept by scripts/check.sh over XQC_IO_FAULT_MODE. Under
// every injected fault the store must return either a document or a
// classified, coded error — never crash, hang, or corrupt the cache.
// ---------------------------------------------------------------------------

class FaultMatrixTest : public StoreTest {
 protected:
  static IoFaultMode ModeFromEnv() {
    const char* name = std::getenv("XQC_IO_FAULT_MODE");
    IoFaultMode mode = IoFaultMode::kNone;
    if (name != nullptr) {
      EXPECT_TRUE(IoFaultModeFromName(name, &mode))
          << "unknown XQC_IO_FAULT_MODE '" << name << "'";
    }
    return mode;
  }
};

TEST_F(FaultMatrixTest, LoadsSurviveInjectedFaults) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 3;
  DocumentStore store(options);
  std::string path = WriteDoc("matrix.xml", "<r><a/><b/></r>");

  IoFaultInjector fault;
  fault.mode = ModeFromEnv();
  fault.fail_n = 2;     // flaky/fail-open: recover within the retry budget
  fault.delay_ms = 20;  // slow-read: short enough for an un-deadlined load
  store.set_fault_injector(&fault);

  for (int round = 0; round < 3; ++round) {
    DocStoreStats stats;
    DocumentStore::LoadOptions opts;
    opts.stats = &stats;
    Result<NodePtr> r = store.Load(path, opts);
    switch (fault.mode) {
      case IoFaultMode::kNone:
      case IoFaultMode::kSlowRead:
        ASSERT_OK(r);
        break;
      case IoFaultMode::kFailOpen:
      case IoFaultMode::kFlakyThenSucceed:
        // First load retries through the flaky window and succeeds;
        // later rounds hit the cache.
        ASSERT_OK(r);
        if (round == 0) {
          EXPECT_EQ(stats.retries, 2);
        }
        break;
      case IoFaultMode::kShortRead: {
        // Truncated reads poison the parse: a coded failure, then cheap
        // quarantine replays.
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().kind(), StatusKind::kParseError);
        if (round > 0) {
          EXPECT_EQ(r.status().code(), kStoreQuarantinedCode);
        }
        break;
      }
    }
  }
  store.set_fault_injector(nullptr);

  // Whatever the fault did, the store must still serve clean loads after
  // the device recovers (short-read's quarantine lifts via Invalidate).
  store.Invalidate(path);
  ASSERT_OK(store.Load(path));
}

TEST_F(FaultMatrixTest, DeadlinedLoadsFailWithGuardCodesNotHangs) {
  DocumentStoreOptions options = FastOptions();
  DocumentStore store(options);
  std::string path = WriteDoc("matrix_deadline.xml", "<r/>");

  IoFaultInjector fault;
  fault.mode = ModeFromEnv();
  fault.fail_n = 0;      // fail-open: never recovers
  fault.delay_ms = 400;  // slow-read: far beyond the deadline
  store.set_fault_injector(&fault);

  GuardLimits limits;
  limits.deadline_ms = 50;
  QueryGuard guard(limits);
  DocumentStore::LoadOptions opts;
  opts.guard = &guard;
  auto t0 = std::chrono::steady_clock::now();
  Result<NodePtr> r = store.Load(path, opts);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  EXPECT_LT(elapsed, 350) << "a 50ms deadline must cut every fault short";

  switch (fault.mode) {
    case IoFaultMode::kNone:
      ASSERT_OK(r);
      break;
    case IoFaultMode::kSlowRead:
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), kGuardTimeoutCode);
      break;
    case IoFaultMode::kFailOpen:
      // Either the deadline cuts the backoff short (XQC0001) or the retry
      // budget runs out first (XQC0008) — both are classified failures.
      ASSERT_FALSE(r.ok());
      EXPECT_TRUE(r.status().code() == kGuardTimeoutCode ||
                  r.status().code() == kStoreRetriesExhaustedCode)
          << r.status().ToString();
      break;
    case IoFaultMode::kShortRead:
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().kind(), StatusKind::kParseError);
      break;
    case IoFaultMode::kFlakyThenSucceed:
      // fail_n=0 means every attempt succeeds immediately.
      ASSERT_OK(r);
      break;
  }
  store.set_fault_injector(nullptr);
}

}  // namespace
}  // namespace xqc
