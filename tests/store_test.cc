// Tests for the fault-tolerant shared DocumentStore (src/store): URI
// normalization, bounded LRU caching, singleflight loading, retry/backoff
// under injected I/O faults, quarantine, negative caching, staleness, and
// the store-on/store-off ablation. The FaultMatrix suite at the bottom is
// additionally swept by scripts/check.sh with XQC_IO_FAULT_MODE set to
// each injector mode.
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/engine/engine.h"
#include "src/runtime/context.h"
#include "src/store/document_store.h"
#include "src/store/io_fault.h"
#include "src/store/snapshot.h"
#include "src/xml/serializer.h"
#include "tests/test_util.h"

namespace xqc {
namespace {

// ---------------------------------------------------------------------------
// NormalizeDocUri (satellite: fn:doc cache-key aliasing regression)
// ---------------------------------------------------------------------------

TEST(NormalizeDocUriTest, AliasesCollapseToOneKey) {
  // The original aliasing bug: these three spellings of one file used to
  // occupy three distinct cache entries.
  EXPECT_EQ(NormalizeDocUri("a.xml"), "a.xml");
  EXPECT_EQ(NormalizeDocUri("./a.xml"), "a.xml");
  EXPECT_EQ(NormalizeDocUri("dir/../a.xml"), "a.xml");
}

TEST(NormalizeDocUriTest, LexicalRules) {
  EXPECT_EQ(NormalizeDocUri("/a/b/../c"), "/a/c");
  EXPECT_EQ(NormalizeDocUri("a//b/./c"), "a/b/c");
  EXPECT_EQ(NormalizeDocUri("/a/./b/"), "/a/b");
  // Relative paths keep leading ".."s (they are resolved by the OS, not
  // by us); absolute paths cannot climb above the root.
  EXPECT_EQ(NormalizeDocUri("../x.xml"), "../x.xml");
  EXPECT_EQ(NormalizeDocUri("a/../../x.xml"), "../x.xml");
  EXPECT_EQ(NormalizeDocUri("/../x.xml"), "/x.xml");
  // Degenerate inputs.
  EXPECT_EQ(NormalizeDocUri(""), "");
  EXPECT_EQ(NormalizeDocUri("."), ".");
  EXPECT_EQ(NormalizeDocUri("a/.."), ".");
  EXPECT_EQ(NormalizeDocUri("/"), "/");
  // Anything with a scheme passes through untouched.
  EXPECT_EQ(NormalizeDocUri("http://host/a/../b"), "http://host/a/../b");
}

TEST(NormalizeDocUriTest, FileUrisMapToLocalPaths) {
  // The percent-encoded aliasing bug: "file:///a%20b.xml" and "/a b.xml"
  // name the same file and must share one cache entry.
  EXPECT_EQ(NormalizeDocUri("file:///a%20b.xml"), "/a b.xml");
  EXPECT_EQ(NormalizeDocUri("/a b.xml"), "/a b.xml");
  // Empty and "localhost" authorities both mean "this host".
  EXPECT_EQ(NormalizeDocUri("file://localhost/x.xml"), "/x.xml");
  EXPECT_EQ(NormalizeDocUri("file:///x.xml"), "/x.xml");
  // Decoded paths still get the lexical treatment.
  EXPECT_EQ(NormalizeDocUri("file:///dir/../a.xml"), "/a.xml");
  EXPECT_EQ(NormalizeDocUri("file:///a/./b//c.xml"), "/a/b/c.xml");
  // Scheme-only relative form (RFC 8089 appendix) decodes too.
  EXPECT_EQ(NormalizeDocUri("file:rel%2Dname.xml"), "rel-name.xml");
  // A remote authority is not a local path: pass through untouched.
  EXPECT_EQ(NormalizeDocUri("file://nfs-host/x.xml"), "file://nfs-host/x.xml");
  // Malformed escapes are kept literally rather than dropped.
  EXPECT_EQ(NormalizeDocUri("file:///a%zz.xml"), "/a%zz.xml");
  EXPECT_EQ(NormalizeDocUri("file:///a%2"), "/a%2");
}

TEST(NormalizeDocUriTest, MalformedEscapesShareTheHttpDecoderContract) {
  // NormalizeDocUri and the HTTP request-target parser decode with the
  // same shared PercentDecode (src/base/strutil.h); these are the exact
  // malformed-escape cases base_test pins on the helper, replayed through
  // the store's URI path to catch the two layers drifting apart.
  EXPECT_EQ(NormalizeDocUri("file:///%"), "/%");
  EXPECT_EQ(NormalizeDocUri("file:///x%"), "/x%");
  EXPECT_EQ(NormalizeDocUri("file:///a%2x.xml"), "/a%2x.xml");
  EXPECT_EQ(NormalizeDocUri("file:///a%%20b.xml"), "/a% b.xml");
  EXPECT_EQ(NormalizeDocUri("file:///a%ZZ%20b"), "/a%ZZ b");
  // Uppercase and lowercase hex both decode (then the lexical pass
  // collapses the resulting empty segments).
  EXPECT_EQ(NormalizeDocUri("file:///%2F%2f"), "/");
  // And a decoded %2E must NOT re-enter dot-segment collapsing: the
  // decode happens before lexical normalization, so it does collapse —
  // pin that order so it never changes silently.
  EXPECT_EQ(NormalizeDocUri("file:///a/%2E%2E/b.xml"), "/b.xml");
}

// ---------------------------------------------------------------------------
// Store fixture: a private store plus scratch files under TempDir.
// ---------------------------------------------------------------------------

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "xqc_store_test/";
    std::system(("mkdir -p " + dir_).c_str());
  }
  void TearDown() override {
    for (const std::string& p : files_) std::remove(p.c_str());
  }

  std::string WriteDoc(const std::string& name, const std::string& content) {
    std::string path = dir_ + name;
    std::ofstream out(path, std::ios::trunc);
    out << content;
    out.close();
    files_.push_back(path);
    return path;
  }

  static DocumentStoreOptions FastOptions() {
    DocumentStoreOptions o;
    o.retry_backoff_ms = 1;  // keep injected-fault tests fast
    return o;
  }

  std::string dir_;
  std::vector<std::string> files_;
};

TEST_F(StoreTest, SecondLoadHitsCacheAndSharesTheTree) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("hit.xml", "<r><a/><a/></r>");

  DocStoreStats stats;
  bool parsed = false;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  opts.performed_parse = &parsed;

  Result<NodePtr> first = store.Load(path, opts);
  ASSERT_OK(first);
  EXPECT_TRUE(parsed);
  EXPECT_EQ(stats.misses, 1);

  parsed = false;
  Result<NodePtr> second = store.Load(path, opts);
  ASSERT_OK(second);
  EXPECT_FALSE(parsed);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(first.value().get(), second.value().get());
  EXPECT_EQ(store.counters().entries, 1);
}

TEST_F(StoreTest, AliasedUrisShareOneCacheEntry) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("alias.xml", "<r/>");

  ASSERT_OK(store.Load(path));
  // "dir/../alias.xml" and "dir/./alias.xml" style respellings of the same
  // absolute path must hit the same entry, not parse three copies.
  std::string dotted = dir_ + "." + "/alias.xml";
  std::string climbed = dir_ + "sub/../alias.xml";

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  ASSERT_OK(store.Load(dotted, opts));
  ASSERT_OK(store.Load(climbed, opts));
  EXPECT_EQ(stats.hits, 2);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(store.counters().entries, 1);
}

TEST_F(StoreTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  // Each doc costs ~content + nodes * kNodeCost; budget fits roughly one.
  DocumentStoreOptions options = FastOptions();
  options.max_bytes = 1200;
  DocumentStore store(options);

  std::string a = WriteDoc("evict_a.xml", "<r><a/><a/></r>");
  std::string b = WriteDoc("evict_b.xml", "<r><b/><b/></r>");

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  ASSERT_OK(store.Load(a, opts));
  ASSERT_OK(store.Load(b, opts));  // evicts a
  EXPECT_GE(stats.evictions, 1);
  EXPECT_LE(store.counters().bytes_cached, options.max_bytes);

  bool parsed = false;
  opts.performed_parse = &parsed;
  ASSERT_OK(store.Load(a, opts));  // a was evicted: parses again
  EXPECT_TRUE(parsed);
}

TEST_F(StoreTest, OversizedDocumentServedUncached) {
  DocumentStoreOptions options = FastOptions();
  options.max_bytes = 16;  // smaller than any parsed tree
  DocumentStore store(options);
  std::string path = WriteDoc("big.xml", "<r><a/><b/><c/></r>");

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_OK(r);
  EXPECT_EQ(stats.uncached_oversize, 1);
  EXPECT_EQ(store.counters().entries, 0);
  EXPECT_EQ(store.counters().bytes_cached, 0);

  // Still served (degradation, not failure) — just re-parsed each time.
  bool parsed = false;
  opts.performed_parse = &parsed;
  ASSERT_OK(store.Load(path, opts));
  EXPECT_TRUE(parsed);
}

TEST_F(StoreTest, ZeroBudgetDisablesCachingButNotService) {
  DocumentStoreOptions options = FastOptions();
  options.max_bytes = 0;
  DocumentStore store(options);
  std::string path = WriteDoc("nocache.xml", "<r/>");
  ASSERT_OK(store.Load(path));
  ASSERT_OK(store.Load(path));
  EXPECT_EQ(store.counters().entries, 0);
}

TEST_F(StoreTest, InvalidateDropsTheEntry) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("inval.xml", "<r/>");
  ASSERT_OK(store.Load(path));
  EXPECT_EQ(store.counters().entries, 1);

  EXPECT_TRUE(store.Invalidate(path));
  EXPECT_FALSE(store.Invalidate(path));  // nothing left to drop
  EXPECT_EQ(store.counters().entries, 0);
  EXPECT_EQ(store.counters().bytes_cached, 0);

  bool parsed = false;
  DocumentStore::LoadOptions opts;
  opts.performed_parse = &parsed;
  ASSERT_OK(store.Load(path, opts));
  EXPECT_TRUE(parsed);
}

TEST_F(StoreTest, HotReloadSwapsStaleEntryAtomically) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("stale.xml", "<r><old/></r>");

  Result<NodePtr> first = store.Load(path);
  ASSERT_OK(first);
  NodePtr held = first.value();  // a query still holding the old tree

  // Rewrite with different content (size change guarantees a fingerprint
  // mismatch even on coarse-mtime filesystems).
  WriteDoc("stale.xml", "<r><brand_new/><brand_new/></r>");

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> second = store.Load(path, opts);
  ASSERT_OK(second);
  EXPECT_EQ(stats.stale_reloads, 1);
  EXPECT_NE(held.get(), second.value().get());
  // The old tree stays alive and intact for its holder.
  ASSERT_FALSE(held->children.empty());
  ASSERT_FALSE(held->children[0]->children.empty());
  EXPECT_EQ(held->children[0]->children[0]->name.str(), "old");
}

// ---------------------------------------------------------------------------
// Error classification: retries, exhaustion, negative cache, quarantine.
// ---------------------------------------------------------------------------

TEST_F(StoreTest, FlakyReadsRecoverThroughRetries) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("flaky.xml", "<r><ok/></r>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFlakyThenSucceed;
  fault.fail_n = 2;
  store.set_fault_injector(&fault);

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_OK(r);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(fault.attempts.load(), 3);
  store.set_fault_injector(nullptr);
}

TEST_F(StoreTest, TransientFailuresExhaustRetriesWithXQC0008) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 2;
  DocumentStore store(options);
  std::string path = WriteDoc("downdev.xml", "<r/>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 0;  // every attempt fails
  store.set_fault_injector(&fault);

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().kind(), StatusKind::kIOError);
  EXPECT_EQ(r.status().code(), kStoreRetriesExhaustedCode);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(fault.attempts.load(), 3);  // initial attempt + 2 retries

  // Retry exhaustion is not negative-cached: once the device recovers the
  // next load succeeds immediately.
  store.set_fault_injector(nullptr);
  ASSERT_OK(store.Load(path));
}

TEST_F(StoreTest, PermanentFailureIsNegativeCachedWithTtl) {
  DocumentStoreOptions options = FastOptions();
  options.negative_ttl_ms = 60 * 1000;  // long enough to observe the replay
  DocumentStore store(options);
  std::string path = dir_ + "does_not_exist.xml";

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> first = store.Load(path, opts);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().kind(), StatusKind::kIOError);
  EXPECT_EQ(first.status().code(), "FODC0002");
  EXPECT_EQ(stats.negative_hits, 0);

  Result<NodePtr> second = store.Load(path, opts);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), "FODC0002");
  EXPECT_EQ(stats.negative_hits, 1);  // replayed without touching the FS

  // Invalidate clears the verdict; creating the file makes it loadable.
  EXPECT_TRUE(store.Invalidate(path));
  WriteDoc("does_not_exist.xml", "<r/>");
  ASSERT_OK(store.Load(path, opts));
}

TEST_F(StoreTest, NegativeVerdictExpiresAfterTtl) {
  DocumentStoreOptions options = FastOptions();
  options.negative_ttl_ms = 20;
  DocumentStore store(options);
  std::string path = dir_ + "late_arrival.xml";

  ASSERT_FALSE(store.Load(path).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  WriteDoc("late_arrival.xml", "<r/>");
  ASSERT_OK(store.Load(path));  // TTL expired: the FS is re-probed
}

TEST_F(StoreTest, MalformedDocumentIsQuarantinedAndReplayed) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("poison.xml", "<r><unclosed></r>");

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> first = store.Load(path, opts);
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().kind(), StatusKind::kParseError);
  EXPECT_EQ(stats.quarantine_hits, 0);

  // Subsequent loads replay the cached failure (XQC0009, same kind)
  // without re-reading or re-parsing the file.
  Result<NodePtr> second = store.Load(path, opts);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().kind(), StatusKind::kParseError);
  EXPECT_EQ(second.status().code(), kStoreQuarantinedCode);
  EXPECT_EQ(stats.quarantine_hits, 1);
  EXPECT_EQ(store.counters().quarantined, 1);
}

TEST_F(StoreTest, QuarantineLiftsViaInvalidate) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("poison2.xml", "<r><unclosed></r>");
  ASSERT_FALSE(store.Load(path).ok());
  ASSERT_EQ(store.Load(path).status().code(), kStoreQuarantinedCode);

  EXPECT_TRUE(store.Invalidate(path));
  // The file is still malformed: a fresh parse attempt, fresh verdict.
  Result<NodePtr> r = store.Load(path);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().code(), kStoreQuarantinedCode);
}

TEST_F(StoreTest, QuarantineLiftsWhenTheFileIsFixed) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("fixed.xml", "<r><unclosed></r>");
  ASSERT_FALSE(store.Load(path).ok());
  ASSERT_EQ(store.Load(path).status().code(), kStoreQuarantinedCode);

  // Fixing the file changes its fingerprint; the quarantine lifts on its
  // own, no Invalidate needed.
  WriteDoc("fixed.xml", "<r><all_better_now/></r>");
  ASSERT_OK(store.Load(path));
  EXPECT_EQ(store.counters().quarantined, 0);
}

TEST_F(StoreTest, GuardTripsAreNeverCached) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("budget.xml", "<r><a/><b/><c/><d/></r>");

  GuardLimits limits;
  limits.max_memory_bytes = 64;  // far below the parse's node accounting
  QueryGuard tight(limits);
  DocumentStore::LoadOptions opts;
  opts.guard = &tight;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().kind(), StatusKind::kResourceExhausted);
  EXPECT_EQ(r.status().code(), kGuardMemoryCode);

  // The trip belonged to that caller, not the document: an unlimited
  // caller succeeds immediately (nothing was quarantined).
  ASSERT_OK(store.Load(path));
}

// ---------------------------------------------------------------------------
// Singleflight: shared parses, waiter deadlines/cancellation, abandonment.
// ---------------------------------------------------------------------------

TEST_F(StoreTest, ConcurrentLoadsShareOneParse) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("shared.xml", "<r><a/><a/><a/></r>");

  IoFaultInjector slow;
  slow.mode = IoFaultMode::kSlowRead;
  slow.delay_ms = 100;  // a window for every thread to pile in
  store.set_fault_injector(&slow);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<DocStoreStats> stats(kThreads);
  std::vector<NodePtr> docs(kThreads);
  std::atomic<int> failures{0};
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      DocumentStore::LoadOptions opts;
      opts.stats = &stats[i];
      Result<NodePtr> r = store.Load(path, opts);
      if (r.ok()) {
        docs[i] = r.value();
      } else {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  store.set_fault_injector(nullptr);

  EXPECT_EQ(failures.load(), 0);
  int64_t misses = 0, waits = 0, hits = 0;
  for (const DocStoreStats& s : stats) {
    misses += s.misses;
    waits += s.singleflight_waits;
    hits += s.hits;
  }
  EXPECT_EQ(misses, 1) << "exactly one thread should have parsed";
  // Every other thread either waited on the leader or (if it started late)
  // hit the already-published cache entry.
  EXPECT_EQ(waits + hits, kThreads - 1);
  EXPECT_EQ(slow.attempts.load(), 1) << "one physical read for all threads";
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(docs[0].get(), docs[i].get());
  }
}

TEST_F(StoreTest, WaiterHonorsItsOwnDeadline) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("slowload.xml", "<r/>");

  IoFaultInjector slow;
  slow.mode = IoFaultMode::kSlowRead;
  slow.delay_ms = 400;
  store.set_fault_injector(&slow);

  // Leader: no deadline, rides out the slow read.
  std::thread leader([&] { ASSERT_OK(store.Load(path)); });
  // Give the leader time to claim the in-flight slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Waiter: a 30ms deadline expires long before the leader finishes. The
  // waiter must abandon the wait with ITS OWN timeout, not block 400ms.
  GuardLimits limits;
  limits.deadline_ms = 30;
  QueryGuard guard(limits);
  DocumentStore::LoadOptions opts;
  opts.guard = &guard;
  auto t0 = std::chrono::steady_clock::now();
  Result<NodePtr> r = store.Load(path, opts);
  auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), kGuardTimeoutCode);
  EXPECT_LT(waited, 300) << "waiter must not ride out the leader's read";

  leader.join();
  store.set_fault_injector(nullptr);
  // Abandonment leaked nothing: the leader published and later loads hit.
  DocStoreStats stats;
  DocumentStore::LoadOptions hit;
  hit.stats = &stats;
  ASSERT_OK(store.Load(path, hit));
  EXPECT_EQ(stats.hits, 1);
}

TEST_F(StoreTest, WaiterHonorsCancellation) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("cancelload.xml", "<r/>");

  IoFaultInjector slow;
  slow.mode = IoFaultMode::kSlowRead;
  slow.delay_ms = 400;
  store.set_fault_injector(&slow);

  std::thread leader([&] { ASSERT_OK(store.Load(path)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  CancellationToken token = CancellationToken::Make();
  QueryGuard guard(GuardLimits{}, token);
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.RequestCancel();
  });
  DocumentStore::LoadOptions opts;
  opts.guard = &guard;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), kGuardCancelledCode);

  canceller.join();
  leader.join();
  store.set_fault_injector(nullptr);
  ASSERT_OK(store.Load(path));
}

TEST_F(StoreTest, WaitersRetryWhenLeaderTripsItsOwnGuard) {
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("tripped_leader.xml", "<r/>");

  IoFaultInjector slow;
  slow.mode = IoFaultMode::kSlowRead;
  slow.delay_ms = 200;
  store.set_fault_injector(&slow);

  // Leader trips its own deadline mid-read. Its failure must not be
  // shared with the waiter, which retries (becoming the new leader) and
  // succeeds once the injector is cleared.
  GuardLimits tight;
  tight.deadline_ms = 40;
  QueryGuard leader_guard(tight);
  std::atomic<bool> leader_failed{false};
  std::thread leader([&] {
    DocumentStore::LoadOptions opts;
    opts.guard = &leader_guard;
    Result<NodePtr> r = store.Load(path, opts);
    leader_failed.store(!r.ok());
    store.set_fault_injector(nullptr);  // device "recovers"
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  leader.join();
  ASSERT_TRUE(leader_failed.load());
  ASSERT_OK(r);
  EXPECT_GE(stats.misses, 1) << "the waiter re-led the load itself";
}

// ---------------------------------------------------------------------------
// Ablation: store-on and store-off must be byte-identical.
// ---------------------------------------------------------------------------

TEST_F(StoreTest, StoreOnAndOffProduceIdenticalResults) {
  std::string path = WriteDoc("diff.xml",
                              "<site><a id='1'>x</a><a id='2'>y</a></site>");
  const std::string query =
      "for $a in doc(\"" + path + "\")//a return string($a)";

  EngineOptions on;
  on.use_doc_store = true;
  EngineOptions off;
  off.use_doc_store = false;

  DynamicContext ctx_on, ctx_off;
  // Private store so the test doesn't touch the process-wide cache.
  DocumentStore store(FastOptions());
  ctx_on.set_document_store(&store);

  Result<std::string> r_on = Engine(on).Execute(query, &ctx_on);
  Result<std::string> r_off = Engine(off).Execute(query, &ctx_off);
  ASSERT_OK(r_on);
  ASSERT_OK(r_off);
  EXPECT_EQ(r_on.value(), r_off.value());
  EXPECT_EQ(store.counters().totals.misses, 1);
  EXPECT_EQ(ctx_off.doc_store_stats().misses, 0)
      << "store-off execution must not touch the store";
}

// ---------------------------------------------------------------------------
// Circuit breaker + brownout (see DESIGN.md "Overload policy"). All tests
// use max_retries=0 so one Load is exactly one I/O attempt and the
// consecutive-failure count is deterministic.
// ---------------------------------------------------------------------------

TEST_F(StoreTest, BreakerOpensAfterThresholdAndFailsFastWithoutIo) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 0;
  options.breaker_threshold = 2;
  options.breaker_cooldown_ms = 60 * 1000;  // stays open for this test
  DocumentStore store(options);
  std::string path = WriteDoc("sick.xml", "<r/>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 0;  // every attempt fails
  store.set_fault_injector(&fault);

  // Two real attempts trip the threshold.
  EXPECT_EQ(store.Load(path).status().code(), kStoreRetriesExhaustedCode);
  EXPECT_EQ(store.Load(path).status().code(), kStoreRetriesExhaustedCode);
  EXPECT_EQ(fault.attempts.load(), 2);

  // The third load fails in microseconds with XQC0011 — crucially, the
  // injector (i.e. the sick device) is never touched again.
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().kind(), StatusKind::kIOError);
  EXPECT_EQ(r.status().code(), kStoreBreakerOpenCode);
  EXPECT_EQ(fault.attempts.load(), 2);
  EXPECT_EQ(stats.breaker_fast_fails, 1);
  EXPECT_EQ(stats.retries, 0);

  DocumentStore::Counters c = store.counters();
  EXPECT_EQ(c.breaker_opens, 1);
  EXPECT_EQ(c.breakers_open, 1);
  store.set_fault_injector(nullptr);
}

TEST_F(StoreTest, BreakerSharedAcrossPrefixNotAcrossDirectories) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 0;
  options.breaker_threshold = 1;
  options.breaker_cooldown_ms = 60 * 1000;
  DocumentStore store(options);
  std::string sick = WriteDoc("sick_a.xml", "<r/>");
  std::string sibling = WriteDoc("sick_b.xml", "<r/>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 0;
  store.set_fault_injector(&fault);
  EXPECT_EQ(store.Load(sick).status().code(), kStoreRetriesExhaustedCode);
  store.set_fault_injector(nullptr);

  // The sibling shares the directory, hence the breaker: it fails fast
  // even though its own file is perfectly healthy.
  EXPECT_EQ(store.Load(sibling).status().code(), kStoreBreakerOpenCode);

  // A different directory has its own (closed) breaker.
  std::string other_dir = dir_ + "healthy/";
  std::system(("mkdir -p " + other_dir).c_str());
  std::string healthy = other_dir + "ok.xml";
  {
    std::ofstream out(healthy, std::ios::trunc);
    out << "<r/>";
  }
  files_.push_back(healthy);
  ASSERT_OK(store.Load(healthy));
}

TEST_F(StoreTest, HalfOpenProbeClosesBreakerOnRecovery) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 0;
  options.breaker_threshold = 1;
  options.breaker_cooldown_ms = 5;
  DocumentStore store(options);
  std::string path = WriteDoc("recovering.xml", "<r><ok/></r>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 0;
  store.set_fault_injector(&fault);
  EXPECT_EQ(store.Load(path).status().code(), kStoreRetriesExhaustedCode);
  EXPECT_EQ(store.counters().breakers_open, 1);

  // Device recovers; after the cooldown the next load is the half-open
  // probe, succeeds, and the breaker closes.
  store.set_fault_injector(nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_OK(store.Load(path));

  DocumentStore::Counters c = store.counters();
  EXPECT_EQ(c.breaker_opens, 1);
  EXPECT_EQ(c.breaker_half_opens, 1);
  EXPECT_EQ(c.breaker_closes, 1);
  EXPECT_EQ(c.breakers_open, 0);

  // Fully healthy again: subsequent loads are plain cache hits.
  ASSERT_OK(store.Load(path));
}

TEST_F(StoreTest, FailedProbeReopensBreaker) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 0;
  options.breaker_threshold = 1;
  options.breaker_cooldown_ms = 5;
  DocumentStore store(options);
  std::string path = WriteDoc("still_sick.xml", "<r/>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 0;
  store.set_fault_injector(&fault);
  EXPECT_EQ(store.Load(path).status().code(), kStoreRetriesExhaustedCode);

  // Cooldown elapses, the probe goes out, the device is still sick: the
  // probe's real failure re-opens the breaker.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(store.Load(path).status().code(), kStoreRetriesExhaustedCode);
  EXPECT_EQ(fault.attempts.load(), 2);  // only the original + the probe

  DocumentStore::Counters c = store.counters();
  EXPECT_EQ(c.breaker_opens, 2);
  EXPECT_EQ(c.breaker_half_opens, 1);
  EXPECT_EQ(c.breaker_closes, 0);
  EXPECT_EQ(c.breakers_open, 1);
  store.set_fault_injector(nullptr);
}

TEST_F(StoreTest, BrownoutServesStaleCachedDocWhileOpen) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 0;
  options.breaker_threshold = 1;
  options.breaker_cooldown_ms = 60 * 1000;
  options.brownout = true;
  DocumentStore store(options);

  // Cache v1 of the document, then change the file so the entry is stale.
  std::string path = WriteDoc("brown.xml", "<r>v1</r>");
  Result<NodePtr> v1 = store.Load(path);
  ASSERT_OK(v1);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  WriteDoc("brown.xml", "<r>v2 is longer</r>");  // new size => new fingerprint

  // A sibling load opens the directory's breaker.
  std::string sibling = WriteDoc("brown_sibling.xml", "<r/>");
  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 0;
  store.set_fault_injector(&fault);
  EXPECT_EQ(store.Load(sibling).status().code(), kStoreRetriesExhaustedCode);

  // Brownout: the stale v1 tree is served (flagged) instead of XQC0011.
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> stale = store.Load(path, opts);
  ASSERT_OK(stale);
  EXPECT_EQ(stale.value().get(), v1.value().get()) << "must be the v1 tree";
  EXPECT_EQ(stats.brownout_serves, 1);
  EXPECT_EQ(stats.breaker_fast_fails, 0);

  // With brownout off, the same situation is a fast XQC0011.
  store.set_brownout(false);
  Result<NodePtr> hard = store.Load(path, opts);
  ASSERT_FALSE(hard.ok());
  EXPECT_EQ(hard.status().code(), kStoreBreakerOpenCode);
  EXPECT_EQ(stats.breaker_fast_fails, 1);
  store.set_fault_injector(nullptr);
}

TEST_F(StoreTest, BreakerDisabledIsByteIdenticalToOracle) {
  // Ablation: threshold 0 (the default) must leave every breaker counter
  // at zero and never interfere with loads — including under faults.
  DocumentStore store(FastOptions());
  std::string path = WriteDoc("ablation.xml", "<r/>");

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFlakyThenSucceed;
  fault.fail_n = 2;
  store.set_fault_injector(&fault);
  ASSERT_OK(store.Load(path));
  store.set_fault_injector(nullptr);

  DocumentStore::Counters c = store.counters();
  EXPECT_EQ(c.breaker_opens, 0);
  EXPECT_EQ(c.breaker_half_opens, 0);
  EXPECT_EQ(c.breaker_closes, 0);
  EXPECT_EQ(c.breakers_open, 0);
  EXPECT_EQ(c.totals.breaker_fast_fails, 0);
  EXPECT_EQ(c.totals.brownout_serves, 0);
}

// ---------------------------------------------------------------------------
// FaultMatrix: swept by scripts/check.sh over XQC_IO_FAULT_MODE. Under
// every injected fault the store must return either a document or a
// classified, coded error — never crash, hang, or corrupt the cache.
// ---------------------------------------------------------------------------

class FaultMatrixTest : public StoreTest {
 protected:
  static IoFaultMode ModeFromEnv() {
    const char* name = std::getenv("XQC_IO_FAULT_MODE");
    IoFaultMode mode = IoFaultMode::kNone;
    if (name != nullptr) {
      EXPECT_TRUE(IoFaultModeFromName(name, &mode))
          << "unknown XQC_IO_FAULT_MODE '" << name << "'";
    }
    return mode;
  }
};

TEST_F(FaultMatrixTest, LoadsSurviveInjectedFaults) {
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 3;
  DocumentStore store(options);
  std::string path = WriteDoc("matrix.xml", "<r><a/><b/></r>");

  IoFaultInjector fault;
  fault.mode = ModeFromEnv();
  fault.fail_n = 2;     // flaky/fail-open: recover within the retry budget
  fault.delay_ms = 20;  // slow-read: short enough for an un-deadlined load
  store.set_fault_injector(&fault);

  for (int round = 0; round < 3; ++round) {
    DocStoreStats stats;
    DocumentStore::LoadOptions opts;
    opts.stats = &stats;
    Result<NodePtr> r = store.Load(path, opts);
    switch (fault.mode) {
      case IoFaultMode::kNone:
      case IoFaultMode::kSlowRead:
        ASSERT_OK(r);
        break;
      case IoFaultMode::kFailOpen:
      case IoFaultMode::kFlakyThenSucceed:
        // First load retries through the flaky window and succeeds;
        // later rounds hit the cache.
        ASSERT_OK(r);
        if (round == 0) {
          EXPECT_EQ(stats.retries, 2);
        }
        break;
      case IoFaultMode::kShortRead: {
        // Truncated reads poison the parse: a coded failure, then cheap
        // quarantine replays.
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.status().kind(), StatusKind::kParseError);
        if (round > 0) {
          EXPECT_EQ(r.status().code(), kStoreQuarantinedCode);
        }
        break;
      }
      default:
        // Snapshot-tier faults: inert without a snapshot_dir (the
        // SnapshotFaultMatrix suite covers them with the tier enabled).
        ASSERT_OK(r);
        break;
    }
  }
  store.set_fault_injector(nullptr);

  // Whatever the fault did, the store must still serve clean loads after
  // the device recovers (short-read's quarantine lifts via Invalidate).
  store.Invalidate(path);
  ASSERT_OK(store.Load(path));
}

TEST_F(FaultMatrixTest, DeadlinedLoadsFailWithGuardCodesNotHangs) {
  DocumentStoreOptions options = FastOptions();
  DocumentStore store(options);
  std::string path = WriteDoc("matrix_deadline.xml", "<r/>");

  IoFaultInjector fault;
  fault.mode = ModeFromEnv();
  fault.fail_n = 0;      // fail-open: never recovers
  fault.delay_ms = 400;  // slow-read: far beyond the deadline
  store.set_fault_injector(&fault);

  GuardLimits limits;
  limits.deadline_ms = 50;
  QueryGuard guard(limits);
  DocumentStore::LoadOptions opts;
  opts.guard = &guard;
  auto t0 = std::chrono::steady_clock::now();
  Result<NodePtr> r = store.Load(path, opts);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  EXPECT_LT(elapsed, 350) << "a 50ms deadline must cut every fault short";

  switch (fault.mode) {
    case IoFaultMode::kNone:
      ASSERT_OK(r);
      break;
    case IoFaultMode::kSlowRead:
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), kGuardTimeoutCode);
      break;
    case IoFaultMode::kFailOpen:
      // Either the deadline cuts the backoff short (XQC0001) or the retry
      // budget runs out first (XQC0008) — both are classified failures.
      ASSERT_FALSE(r.ok());
      EXPECT_TRUE(r.status().code() == kGuardTimeoutCode ||
                  r.status().code() == kStoreRetriesExhaustedCode)
          << r.status().ToString();
      break;
    case IoFaultMode::kShortRead:
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().kind(), StatusKind::kParseError);
      break;
    case IoFaultMode::kFlakyThenSucceed:
      // fail_n=0 means every attempt succeeds immediately.
      ASSERT_OK(r);
      break;
    default:
      // Snapshot-tier faults are inert without a snapshot_dir.
      ASSERT_OK(r);
      break;
  }
  store.set_fault_injector(nullptr);
}

TEST_F(FaultMatrixTest, CollectionScansSurviveInjectedFaults) {
  // A whole fn:collection scan through the engine under each injected
  // fault: lenient scans must yield a (possibly shrunken) result or a
  // classified error; strict scans must propagate a classified error; no
  // fault may crash, hang, or leave the store unable to serve once clear.
  DocumentStoreOptions options = FastOptions();
  options.max_retries = 3;
  DocumentStore store(options);
  std::string cdir = dir_ + "collection_matrix";
  std::system(("rm -rf " + cdir + " && mkdir -p " + cdir).c_str());
  for (int d = 0; d < 3; d++) {
    std::ofstream out(cdir + "/d" + std::to_string(d) + ".xml",
                      std::ios::trunc);
    out << "<doc><v>" << d << "</v></doc>";
  }

  IoFaultInjector fault;
  fault.mode = ModeFromEnv();
  fault.fail_n = 2;     // flaky/fail-open: recover within the retry budget
  fault.delay_ms = 20;  // slow-read: short enough for an un-deadlined load
  store.set_fault_injector(&fault);

  const std::string query =
      "for $v in fn:collection(\"" + cdir + "\")//v return string($v)";
  for (bool strict : {false, true}) {
    // Parallel levels share the same classified-outcome contract.
    for (int parallelism : {1, 4}) {
      EngineOptions eo;
      eo.strict_collections = strict;
      eo.parallelism = parallelism;
      DynamicContext ctx;
      ctx.set_document_store(&store);
      Result<std::string> r = Engine(eo).Execute(query, &ctx);
      switch (fault.mode) {
        case IoFaultMode::kNone:
        case IoFaultMode::kSlowRead:
        case IoFaultMode::kFlakyThenSucceed:  // per-load retries recover
          ASSERT_OK(r);
          EXPECT_EQ(r.value(), "0 1 2")
              << "strict=" << strict << " parallelism=" << parallelism;
          break;
        case IoFaultMode::kFailOpen:
          // Enumeration itself has no retry loop: while the injector's
          // fail window is open the whole scan fails with the classified
          // collection code; once past it, scans are clean.
          if (r.ok()) {
            EXPECT_EQ(r.value(), "0 1 2");
          } else {
            EXPECT_EQ(r.status().code(), "FODC0002")
                << r.status().ToString();
          }
          break;
        case IoFaultMode::kShortRead:
          // Every member's parse fails: lenient scans shrink to empty,
          // strict scans propagate the member failure.
          if (strict) {
            ASSERT_FALSE(r.ok());
            EXPECT_TRUE(r.status().kind() == StatusKind::kParseError ||
                        r.status().code() == kStoreQuarantinedCode)
                << r.status().ToString();
          } else {
            ASSERT_OK(r);
            EXPECT_EQ(r.value(), "");
          }
          break;
        default:
          // Snapshot-tier faults are inert without a snapshot_dir.
          ASSERT_OK(r);
          break;
      }
    }
  }
  store.set_fault_injector(nullptr);

  // Once the device recovers the same store must serve the scan cleanly
  // (short-read's quarantines lift via Invalidate).
  for (int d = 0; d < 3; d++) {
    store.Invalidate(cdir + "/d" + std::to_string(d) + ".xml");
  }
  DynamicContext ctx;
  ctx.set_document_store(&store);
  Result<std::string> clean = Engine().Execute(query, &ctx);
  ASSERT_OK(clean);
  EXPECT_EQ(clean.value(), "0 1 2");
  std::system(("rm -rf " + cdir).c_str());
}

// ---------------------------------------------------------------------------
// Persistent snapshot tier (src/store/snapshot.h): write-on-first-parse,
// cold-start reuse, corruption quarantine, crash artifacts, brownout from
// disk, and the content-recheck staleness fix.
// ---------------------------------------------------------------------------

class SnapshotTest : public StoreTest {
 protected:
  void SetUp() override {
    StoreTest::SetUp();
    snap_dir_ = dir_ + "snaps";
    std::system(("rm -rf " + snap_dir_).c_str());
  }
  void TearDown() override {
    std::system(("rm -rf " + snap_dir_).c_str());
    StoreTest::TearDown();
  }

  DocumentStoreOptions SnapOptions() {
    DocumentStoreOptions o = FastOptions();
    o.snapshot_dir = snap_dir_;
    o.content_recheck_window_ms = 0;  // tested explicitly where relevant
    return o;
  }

  /// Files in the snapshot dir whose name contains `needle`.
  std::vector<std::string> SnapFiles(const std::string& needle) {
    std::vector<std::string> out;
    DIR* d = ::opendir(snap_dir_.c_str());
    if (d == nullptr) return out;
    while (struct dirent* e = ::readdir(d)) {
      std::string name = e->d_name;
      if (name.find(needle) != std::string::npos) out.push_back(name);
    }
    ::closedir(d);
    return out;
  }
  std::vector<std::string> Published() {
    std::vector<std::string> out;
    for (const std::string& f : SnapFiles(".xqsnap")) {
      if (f.size() >= 7 && f.compare(f.size() - 7, 7, ".xqsnap") == 0) {
        out.push_back(f);
      }
    }
    return out;
  }

  /// Flips one byte at `offset` from the end of the file (negative) or the
  /// start (non-negative).
  void CorruptSnapshotByte(int64_t offset) {
    std::vector<std::string> snaps = Published();
    ASSERT_EQ(snaps.size(), 1u);
    std::string path = snap_dir_ + "/" + snaps[0];
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    long pos = offset >= 0 ? offset : size + offset;
    std::fseek(f, pos, SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, pos, SEEK_SET);
    std::fputc(c ^ 0x01, f);
    std::fclose(f);
  }

  std::string snap_dir_;
};

TEST_F(SnapshotTest, FirstParsePublishesSnapshotColdStoreReusesIt) {
  std::string path = WriteDoc("snap.xml",
                              "<site><a id='1'>x</a><a id='2'>y</a></site>");
  std::string first_xml, second_xml;
  {
    DocumentStore store(SnapOptions());
    DocStoreStats stats;
    DocumentStore::LoadOptions opts;
    opts.stats = &stats;
    Result<NodePtr> r = store.Load(path, opts);
    ASSERT_OK(r);
    EXPECT_EQ(stats.snapshot_writes, 1);
    EXPECT_GT(stats.snapshot_bytes_written, 0);
    EXPECT_EQ(stats.snapshot_hits, 0);
    first_xml = SerializeNode(*r.value());
  }
  ASSERT_EQ(Published().size(), 1u);
  EXPECT_TRUE(SnapFiles(".tmp.").empty()) << "no temp artifacts may remain";

  // A brand-new store (a "new process"): the tree comes back from the
  // snapshot, not the parser, and serializes byte-identically.
  DocumentStore cold(SnapOptions());
  DocStoreStats stats;
  bool built = false;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  opts.performed_parse = &built;
  Result<NodePtr> r = cold.Load(path, opts);
  ASSERT_OK(r);
  EXPECT_EQ(stats.snapshot_hits, 1);
  EXPECT_EQ(stats.snapshot_writes, 0) << "a valid snapshot is not rewritten";
  EXPECT_GT(stats.snapshot_bytes_read, 0);
  EXPECT_TRUE(built);
  second_xml = SerializeNode(*r.value());
  EXPECT_EQ(first_xml, second_xml);
}

TEST_F(SnapshotTest, SnapshotTreesAnswerQueriesIdenticallyToReparse) {
  std::string path =
      WriteDoc("snapq.xml",
               "<site><region><item id='i1'><name>a</name></item>"
               "<item id='i2'><name>b</name></item></region>"
               "<people><person><name>p</name></person></people></site>");
  // Descendant steps + attributes + document order: exercises the restored
  // pre/post intervals and the lazily built DocumentIndex on the rebuilt
  // tree.
  const std::string query = "for $i in doc(\"" + path +
                            "\")//item order by string($i/@id) descending "
                            "return concat($i/@id, ':', $i/name)";

  DocumentStore store(SnapOptions());
  DynamicContext ctx;
  ctx.set_document_store(&store);
  Engine engine;
  Result<std::string> parsed_run = engine.Execute(query, &ctx);
  ASSERT_OK(parsed_run);

  // Cold memory, warm disk: the same query over the snapshot-rebuilt tree.
  store.DropMemoryCache();
  Result<std::string> snap_run = engine.Execute(query, &ctx);
  ASSERT_OK(snap_run);
  EXPECT_EQ(parsed_run.value(), snap_run.value());
  EXPECT_EQ(store.counters().totals.snapshot_hits, 1);

  // Oracle ablation: --no-snapshots must also be byte-identical.
  store.DropMemoryCache();
  EngineOptions no_snaps;
  no_snaps.use_snapshots = false;
  Result<std::string> ablation_run = Engine(no_snaps).Execute(query, &ctx);
  ASSERT_OK(ablation_run);
  EXPECT_EQ(parsed_run.value(), ablation_run.value());
  EXPECT_EQ(store.counters().totals.snapshot_hits, 1)
      << "--no-snapshots must not touch the snapshot tier";
}

TEST_F(SnapshotTest, TruncatedSnapshotIsQuarantinedAndReparsed) {
  std::string path = WriteDoc("trunc.xml", "<r><a/><b/><c/></r>");
  DocumentStore store(SnapOptions());
  ASSERT_OK(store.Load(path));
  ASSERT_EQ(Published().size(), 1u);

  // Simulate a torn publish / post-publish truncation: chop the footer.
  std::string snap = snap_dir_ + "/" + Published()[0];
  struct stat sb;
  ASSERT_EQ(::stat(snap.c_str(), &sb), 0);
  ASSERT_EQ(::truncate(snap.c_str(), sb.st_size - 9), 0);

  store.DropMemoryCache();
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  // A bad snapshot must never fail the query.
  ASSERT_OK(r);
  EXPECT_EQ(stats.snapshot_hits, 0);
  EXPECT_EQ(stats.snapshot_quarantines, 1);
  EXPECT_EQ(stats.snapshot_writes, 1) << "a fresh snapshot is republished";
  EXPECT_EQ(SnapFiles(".corrupt").size(), 1u);
  ASSERT_EQ(Published().size(), 1u);

  // The republished snapshot is valid again.
  store.DropMemoryCache();
  DocStoreStats stats2;
  opts.stats = &stats2;
  ASSERT_OK(store.Load(path, opts));
  EXPECT_EQ(stats2.snapshot_hits, 1);
}

TEST_F(SnapshotTest, BitRotAnywhereIsCaughtByChecksums) {
  std::string path = WriteDoc("rot.xml", "<r><a x='1'>text</a><b/></r>");
  {
    DocumentStore store(SnapOptions());
    ASSERT_OK(store.Load(path));
  }
  // Flip a byte in the middle of the file (node records / values).
  CorruptSnapshotByte(-40);

  DocumentStore store(SnapOptions());
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  ASSERT_OK(store.Load(path, opts));
  EXPECT_EQ(stats.snapshot_quarantines, 1);
  EXPECT_EQ(stats.snapshot_hits, 0);
  EXPECT_EQ(SnapFiles(".corrupt").size(), 1u);
}

TEST_F(SnapshotTest, VersionSkewIsQuarantinedNotTrusted) {
  std::string path = WriteDoc("skew.xml", "<r/>");
  {
    DocumentStore store(SnapOptions());
    ASSERT_OK(store.Load(path));
  }
  // Patch the format version field (offset 8, u32) to a future version.
  CorruptSnapshotByte(8);

  DocumentStore store(SnapOptions());
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  ASSERT_OK(store.Load(path, opts));
  EXPECT_EQ(stats.snapshot_quarantines, 1);
  EXPECT_EQ(SnapFiles(".corrupt").size(), 1u);
  // The rewrite brought the snapshot back to the current version.
  store.DropMemoryCache();
  DocStoreStats stats2;
  opts.stats = &stats2;
  ASSERT_OK(store.Load(path, opts));
  EXPECT_EQ(stats2.snapshot_hits, 1);
}

TEST_F(SnapshotTest, ChangedSourceContentMakesSnapshotStale) {
  std::string path = WriteDoc("stale_snap.xml", "<r>v1</r>");
  {
    DocumentStore store(SnapOptions());
    ASSERT_OK(store.Load(path));
  }
  WriteDoc("stale_snap.xml", "<r>version two</r>");

  DocumentStore store(SnapOptions());
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_OK(r);
  EXPECT_EQ(stats.snapshot_hits, 0);
  EXPECT_EQ(stats.snapshot_stale, 1);
  EXPECT_EQ(stats.snapshot_quarantines, 1);
  EXPECT_EQ(stats.snapshot_writes, 1);
  EXPECT_EQ(r.value()->StringValue(), "version two");

  // The fresh snapshot matches the new content.
  store.DropMemoryCache();
  DocStoreStats stats2;
  opts.stats = &stats2;
  ASSERT_OK(store.Load(path, opts));
  EXPECT_EQ(stats2.snapshot_hits, 1);
}

TEST_F(SnapshotTest, WriteFaultsNeverAffectTheLoad) {
  for (IoFaultMode mode :
       {IoFaultMode::kSnapshotShortWrite, IoFaultMode::kSnapshotFsyncError,
        IoFaultMode::kSnapshotRenameError}) {
    SCOPED_TRACE(static_cast<int>(mode));
    std::system(("rm -rf " + snap_dir_).c_str());
    DocumentStore store(SnapOptions());
    std::string path = WriteDoc("wfault.xml", "<r><a/></r>");

    IoFaultInjector fault;
    fault.mode = mode;
    store.set_fault_injector(&fault);
    DocStoreStats stats;
    DocumentStore::LoadOptions opts;
    opts.stats = &stats;
    Result<NodePtr> r = store.Load(path, opts);
    // A failed snapshot publish must never fail the query.
    ASSERT_OK(r);
    EXPECT_EQ(stats.snapshot_write_failures, 1);
    EXPECT_EQ(stats.snapshot_writes, 0);
    EXPECT_TRUE(Published().empty()) << "no partial file may be published";
    EXPECT_TRUE(SnapFiles(".tmp.").empty()) << "temp files are cleaned up";
    EXPECT_GE(fault.snapshot_ops.load(), 1);
    store.set_fault_injector(nullptr);

    // With the device healthy again the next cold load publishes fine.
    store.DropMemoryCache();
    DocStoreStats stats2;
    opts.stats = &stats2;
    ASSERT_OK(store.Load(path, opts));
    EXPECT_EQ(stats2.snapshot_writes, 1);
  }
}

TEST_F(SnapshotTest, InjectedReadBitFlipQuarantinesAndRecovers) {
  DocumentStore store(SnapOptions());
  std::string path = WriteDoc("rflip.xml", "<r><a/><b/></r>");
  ASSERT_OK(store.Load(path));  // publishes a good snapshot

  IoFaultInjector fault;
  fault.mode = IoFaultMode::kSnapshotBitFlip;
  store.set_fault_injector(&fault);
  store.DropMemoryCache();
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_OK(r);
  EXPECT_EQ(stats.snapshot_quarantines, 1);
  EXPECT_EQ(stats.snapshot_hits, 0);
  store.set_fault_injector(nullptr);

  // Rot stopped: the republished snapshot reads back clean.
  store.DropMemoryCache();
  DocStoreStats stats2;
  opts.stats = &stats2;
  ASSERT_OK(store.Load(path, opts));
  EXPECT_EQ(stats2.snapshot_hits, 1);
}

TEST_F(SnapshotTest, InvalidateRemovesSnapshotArtifacts) {
  DocumentStore store(SnapOptions());
  std::string path = WriteDoc("snapinval.xml", "<r/>");
  ASSERT_OK(store.Load(path));
  ASSERT_EQ(Published().size(), 1u);

  EXPECT_TRUE(store.Invalidate(path));
  EXPECT_TRUE(Published().empty()) << "Invalidate extends to the disk tier";

  // The next load is a true cold parse that republishes.
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  ASSERT_OK(store.Load(path, opts));
  EXPECT_EQ(stats.snapshot_hits, 0);
  EXPECT_EQ(stats.snapshot_writes, 1);
}

TEST_F(SnapshotTest, OrphanedTempFilesAreSweptOnConfiguration) {
  ::mkdir(snap_dir_.c_str(), 0755);
  // A crash mid-write leaves a temp sibling that no rename will claim.
  std::string orphan = snap_dir_ + "/0123-doc.xqsnap.tmp.9999.0";
  {
    std::ofstream out(orphan);
    out << "partial bytes";
  }
  std::string keeper = snap_dir_ + "/0123-doc.xqsnap";
  {
    std::ofstream out(keeper);
    out << "published";
  }
  DocumentStore store(SnapOptions());  // configuration sweeps orphans
  struct stat sb;
  EXPECT_NE(::stat(orphan.c_str(), &sb), 0) << "orphan must be removed";
  EXPECT_EQ(::stat(keeper.c_str(), &sb), 0) << "published file untouched";
}

TEST_F(SnapshotTest, GuardTripDuringRebuildIsNotQuarantined) {
  std::string doc = "<r>";
  for (int i = 0; i < 200; ++i) doc += "<item attr='v'>text</item>";
  doc += "</r>";
  std::string path = WriteDoc("snapguard.xml", doc);
  {
    DocumentStore store(SnapOptions());
    ASSERT_OK(store.Load(path));
  }

  DocumentStore store(SnapOptions());
  GuardLimits limits;
  limits.max_memory_bytes = 256;  // trips inside the snapshot rebuild
  QueryGuard tight(limits);
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.guard = &tight;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().kind(), StatusKind::kResourceExhausted);
  EXPECT_EQ(stats.snapshot_quarantines, 0)
      << "the snapshot is fine; the caller's budget is not";
  ASSERT_EQ(Published().size(), 1u);

  // An unlimited caller immediately rebuilds from the same snapshot.
  DocStoreStats stats2;
  DocumentStore::LoadOptions unlimited;
  unlimited.stats = &stats2;
  ASSERT_OK(store.Load(path, unlimited));
  EXPECT_EQ(stats2.snapshot_hits, 1);
}

TEST_F(SnapshotTest, BrownoutServesSnapshotWhenMemoryIsCold) {
  DocumentStoreOptions options = SnapOptions();
  options.max_retries = 0;
  options.breaker_threshold = 1;
  options.breaker_cooldown_ms = 60 * 1000;
  options.brownout = true;
  DocumentStore store(options);
  std::string path = WriteDoc("dbrown.xml", "<r><kept/></r>");
  ASSERT_OK(store.Load(path));  // publishes the snapshot

  // Cold memory + sick device: open the breaker.
  store.DropMemoryCache();
  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 0;
  store.set_fault_injector(&fault);
  EXPECT_EQ(store.Load(path).status().code(), kStoreRetriesExhaustedCode);

  // Breaker open, nothing in memory — but the disk tier still has a valid
  // snapshot: brownout serves it instead of failing XQC0011.
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> r = store.Load(path, opts);
  ASSERT_OK(r);
  EXPECT_EQ(stats.snapshot_brownout_serves, 1);
  EXPECT_EQ(stats.breaker_fast_fails, 0);
  ASSERT_FALSE(r.value()->children.empty());
  EXPECT_EQ(r.value()->children[0]->children[0]->name.str(), "kept");

  // Without brownout the same state is a fast XQC0011.
  store.set_brownout(false);
  Result<NodePtr> hard = store.Load(path, opts);
  ASSERT_FALSE(hard.ok());
  EXPECT_EQ(hard.status().code(), kStoreBreakerOpenCode);
  EXPECT_EQ(stats.breaker_fast_fails, 1);
  store.set_fault_injector(nullptr);
}

TEST_F(SnapshotTest, ContentRecheckCatchesSameSecondRewrite) {
  DocumentStoreOptions options = SnapOptions();
  options.content_recheck_window_ms = 60 * 1000;  // every hit rechecks
  DocumentStore store(options);
  std::string path = WriteDoc("samesec.xml", "<r>A</r>");

  Result<NodePtr> v1 = store.Load(path);
  ASSERT_OK(v1);
  struct stat before;
  ASSERT_EQ(::stat(path.c_str(), &before), 0);

  // Same-size rewrite, then forge the mtime back: the (inode, size, mtime)
  // fingerprint is now a lie only the content hash can expose.
  WriteDoc("samesec.xml", "<r>B</r>");
  struct timespec times[2] = {before.st_atim, before.st_mtim};
  ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0);
  struct stat after;
  ASSERT_EQ(::stat(path.c_str(), &after), 0);
  ASSERT_EQ(before.st_mtim.tv_nsec, after.st_mtim.tv_nsec)
      << "test setup: the forged fingerprint must match";

  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  Result<NodePtr> v2 = store.Load(path, opts);
  ASSERT_OK(v2);
  EXPECT_GE(stats.content_rechecks, 1);
  EXPECT_EQ(stats.stale_reloads, 1);
  EXPECT_EQ(v2.value()->StringValue(), "B") << "the rewrite must be seen";

  // Control: with rechecks disabled the forged fingerprint serves stale.
  DocumentStore naive(SnapOptions());  // window = 0
  std::string path2 = WriteDoc("samesec2.xml", "<r>A</r>");
  ASSERT_OK(naive.Load(path2));
  struct stat b2;
  ASSERT_EQ(::stat(path2.c_str(), &b2), 0);
  WriteDoc("samesec2.xml", "<r>B</r>");
  struct timespec t2[2] = {b2.st_atim, b2.st_mtim};
  ASSERT_EQ(::utimensat(AT_FDCWD, path2.c_str(), t2, 0), 0);
  Result<NodePtr> stale = naive.Load(path2);
  ASSERT_OK(stale);
  EXPECT_EQ(stale.value()->StringValue(), "A")
      << "control: without rechecks the stale tree is served";
}

TEST_F(SnapshotTest, FileUriAndPlainPathShareEntryAndSnapshot) {
  std::string path = WriteDoc("uri doc.xml", "<r/>");  // space on purpose
  DocumentStore store(SnapOptions());
  ASSERT_OK(store.Load(path));

  // file: spelling with the space percent-encoded: same entry, no reparse.
  std::string encoded = path;
  size_t sp = encoded.find(' ');
  ASSERT_NE(sp, std::string::npos);
  encoded.replace(sp, 1, "%20");
  DocStoreStats stats;
  DocumentStore::LoadOptions opts;
  opts.stats = &stats;
  ASSERT_OK(store.Load("file://" + encoded, opts));
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(store.counters().entries, 1);
  EXPECT_EQ(Published().size(), 1u) << "one snapshot for both spellings";
}

// ---------------------------------------------------------------------------
// SnapshotFaultMatrix: swept by scripts/check.sh over XQC_SNAP_FAULT_MODE.
// Under every injected snapshot fault a load must return the correct
// document; write faults may only cost the publish, read faults may only
// cost a quarantine + reparse.
// ---------------------------------------------------------------------------

class SnapshotFaultMatrixTest : public SnapshotTest {
 protected:
  static IoFaultMode ModeFromEnv() {
    const char* name = std::getenv("XQC_SNAP_FAULT_MODE");
    IoFaultMode mode = IoFaultMode::kNone;
    if (name != nullptr) {
      EXPECT_TRUE(IoFaultModeFromName(name, &mode))
          << "unknown XQC_SNAP_FAULT_MODE '" << name << "'";
    }
    return mode;
  }
};

TEST_F(SnapshotFaultMatrixTest, LoadsSurviveInjectedSnapshotFaults) {
  DocumentStore store(SnapOptions());
  std::string path = WriteDoc("snapmatrix.xml", "<r><a/><b>t</b></r>");
  const std::string want = "t";

  IoFaultInjector fault;
  fault.mode = ModeFromEnv();
  fault.delay_ms = 5;  // slow-write: keep the publish window short
  store.set_fault_injector(&fault);

  DocStoreStats stats;
  for (int round = 0; round < 3; ++round) {
    store.DropMemoryCache();
    DocumentStore::LoadOptions opts;
    opts.stats = &stats;
    Result<NodePtr> r = store.Load(path, opts);
    SCOPED_TRACE(round);
    ASSERT_OK(r);
    EXPECT_EQ(r.value()->StringValue(), want);
  }
  store.set_fault_injector(nullptr);

  switch (fault.mode) {
    case IoFaultMode::kNone:
    case IoFaultMode::kSnapshotSlowWrite:
      // Round 1 publishes (slowly, perhaps); rounds 2-3 reuse it.
      EXPECT_EQ(stats.snapshot_writes, 1);
      EXPECT_EQ(stats.snapshot_hits, 2);
      EXPECT_EQ(stats.snapshot_quarantines, 0);
      break;
    case IoFaultMode::kSnapshotShortWrite:
    case IoFaultMode::kSnapshotFsyncError:
    case IoFaultMode::kSnapshotRenameError:
      // Every publish fails; every round parses; nothing is published.
      EXPECT_EQ(stats.snapshot_writes, 0);
      EXPECT_EQ(stats.snapshot_write_failures, 3);
      EXPECT_EQ(stats.snapshot_hits, 0);
      EXPECT_TRUE(Published().empty());
      EXPECT_TRUE(SnapFiles(".tmp.").empty());
      break;
    case IoFaultMode::kSnapshotBitFlip:
      // Round 1 publishes; rounds 2-3 read rotted bytes, quarantine, and
      // reparse + republish each time.
      EXPECT_EQ(stats.snapshot_hits, 0);
      EXPECT_EQ(stats.snapshot_quarantines, 2);
      EXPECT_EQ(stats.snapshot_writes, 3);
      break;
    default:
      // Source-read faults are the FaultMatrix suite's business; here they
      // would interfere with the load itself, so the sweep doesn't use
      // them. Nothing to assert.
      break;
  }

  // Whatever the fault did, a clean device serves a clean snapshot cycle.
  store.DropMemoryCache();
  store.Invalidate(path);
  DocStoreStats clean;
  DocumentStore::LoadOptions opts;
  opts.stats = &clean;
  ASSERT_OK(store.Load(path, opts));
  EXPECT_EQ(clean.snapshot_writes, 1);
}

}  // namespace
}  // namespace xqc
