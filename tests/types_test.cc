// Tests for the type system: atomic values, casting, fs:convert-operand
// (exhaustively reproducing Table 2 of the paper), op:equal / op:compare
// with promotion, general comparison, and promoteToSimpleTypes (Figure 6).
#include <gtest/gtest.h>

#include <cmath>

#include "src/types/compare.h"
#include "src/xml/atomic.h"
#include "test_util.h"

namespace xqc {
namespace {

TEST(AtomicTest, TypeNamesRoundTrip) {
  for (int i = 0; i < kNumAtomicTypes; i++) {
    AtomicType t = static_cast<AtomicType>(i);
    AtomicType back;
    ASSERT_TRUE(AtomicTypeFromName(AtomicTypeName(t), &back))
        << AtomicTypeName(t);
    EXPECT_EQ(back, t);
  }
}

TEST(AtomicTest, TypeNameWithoutPrefix) {
  AtomicType t;
  ASSERT_TRUE(AtomicTypeFromName("double", &t));
  EXPECT_EQ(t, AtomicType::kDouble);
  ASSERT_TRUE(AtomicTypeFromName("xs:integer", &t));
  EXPECT_EQ(t, AtomicType::kInteger);
  EXPECT_FALSE(AtomicTypeFromName("Auction", &t));
}

TEST(AtomicTest, NineteenPrimitivesPlusDerived) {
  // The paper (Section 6) relies on there being 19 primitive XML Schema
  // types; we add xs:integer and xdt:untypedAtomic.
  EXPECT_EQ(kNumAtomicTypes, 21);
}

TEST(AtomicTest, FromLexicalNumbers) {
  ASSERT_OK(AtomicValue::FromLexical(AtomicType::kInteger, " 42 "));
  EXPECT_EQ(AtomicValue::FromLexical(AtomicType::kInteger, "42").value().AsInt(), 42);
  EXPECT_EQ(AtomicValue::FromLexical(AtomicType::kDouble, "1e3").value().AsDouble(), 1000.0);
  EXPECT_FALSE(AtomicValue::FromLexical(AtomicType::kInteger, "4.5").ok());
  EXPECT_FALSE(AtomicValue::FromLexical(AtomicType::kDecimal, "NaN").ok());
  EXPECT_TRUE(std::isnan(
      AtomicValue::FromLexical(AtomicType::kDouble, "NaN").value().AsDouble()));
}

TEST(AtomicTest, FromLexicalBoolean) {
  EXPECT_TRUE(AtomicValue::FromLexical(AtomicType::kBoolean, "true").value().AsBool());
  EXPECT_TRUE(AtomicValue::FromLexical(AtomicType::kBoolean, "1").value().AsBool());
  EXPECT_FALSE(AtomicValue::FromLexical(AtomicType::kBoolean, "false").value().AsBool());
  EXPECT_FALSE(AtomicValue::FromLexical(AtomicType::kBoolean, "maybe").ok());
}

TEST(AtomicTest, LexicalForms) {
  EXPECT_EQ(AtomicValue::Integer(-3).Lexical(), "-3");
  EXPECT_EQ(AtomicValue::Boolean(true).Lexical(), "true");
  EXPECT_EQ(AtomicValue::Double(2.5).Lexical(), "2.5");
  EXPECT_EQ(AtomicValue::String("hi").Lexical(), "hi");
}

TEST(AtomicTest, FloatRoundsThroughSinglePrecision) {
  AtomicValue f = AtomicValue::Float(0.1);
  EXPECT_EQ(f.AsDouble(), static_cast<double>(0.1f));
}

TEST(AtomicTest, StrictEquals) {
  EXPECT_TRUE(AtomicValue::Integer(1).StrictEquals(AtomicValue::Integer(1)));
  EXPECT_FALSE(AtomicValue::Integer(1).StrictEquals(AtomicValue::Double(1)));
  EXPECT_TRUE(AtomicValue::Double(std::nan(""))
                  .StrictEquals(AtomicValue::Double(std::nan(""))));
}

// ---- Table 2: fs:convert-operand -------------------------------------------

TEST(ConvertOperandTest, UntypedVsUntypedOrString) {
  // Row 1 of Table 2: untyped/string x untyped/string -> xs:string.
  EXPECT_EQ(ConvertOperandTarget(AtomicType::kUntypedAtomic,
                                 AtomicType::kUntypedAtomic),
            AtomicType::kString);
  EXPECT_EQ(ConvertOperandTarget(AtomicType::kUntypedAtomic, AtomicType::kString),
            AtomicType::kString);
  // A typed xs:string first operand stays xs:string.
  EXPECT_EQ(ConvertOperandTarget(AtomicType::kString, AtomicType::kUntypedAtomic),
            AtomicType::kString);
}

TEST(ConvertOperandTest, UntypedVsNumeric) {
  // Row 2: untyped x numeric -> xs:double.
  for (AtomicType num : {AtomicType::kInteger, AtomicType::kDecimal,
                         AtomicType::kFloat, AtomicType::kDouble}) {
    EXPECT_EQ(ConvertOperandTarget(AtomicType::kUntypedAtomic, num),
              AtomicType::kDouble);
  }
}

TEST(ConvertOperandTest, UntypedVsOtherType) {
  // Row 3: untyped x T -> T.
  for (AtomicType t : {AtomicType::kBoolean, AtomicType::kDate,
                       AtomicType::kAnyURI, AtomicType::kHexBinary}) {
    EXPECT_EQ(ConvertOperandTarget(AtomicType::kUntypedAtomic, t), t);
  }
}

TEST(ConvertOperandTest, TypedFirstOperandUnchanged) {
  // Row 4: a typed first operand is never converted.
  for (int i = 0; i < kNumAtomicTypes; i++) {
    AtomicType t = static_cast<AtomicType>(i);
    if (t == AtomicType::kUntypedAtomic) continue;
    for (int j = 0; j < kNumAtomicTypes; j++) {
      EXPECT_EQ(ConvertOperandTarget(t, static_cast<AtomicType>(j)), t);
    }
  }
}

TEST(ConvertOperandTest, AppliesCast) {
  AtomicValue u = AtomicValue::Untyped("1.5");
  AtomicValue conv = ConvertOperand(u, AtomicType::kInteger).value();
  EXPECT_EQ(conv.type(), AtomicType::kDouble);  // numeric -> double
  EXPECT_EQ(conv.AsDouble(), 1.5);
  AtomicValue s = ConvertOperand(u, AtomicType::kString).value();
  EXPECT_EQ(s.type(), AtomicType::kString);
  EXPECT_FALSE(ConvertOperand(AtomicValue::Untyped("abc"),
                              AtomicType::kDouble).ok());
}

TEST(ConvertOperandTest, CompatibilityCheck) {
  // The allMatches "in Table 2" check (Figure 6 line 25).
  EXPECT_TRUE(ConvertCompatible(AtomicType::kUntypedAtomic, AtomicType::kDate));
  EXPECT_TRUE(ConvertCompatible(AtomicType::kInteger, AtomicType::kDouble));
  EXPECT_TRUE(ConvertCompatible(AtomicType::kString, AtomicType::kAnyURI));
  EXPECT_TRUE(ConvertCompatible(AtomicType::kDate, AtomicType::kDate));
  EXPECT_FALSE(ConvertCompatible(AtomicType::kInteger, AtomicType::kString));
  EXPECT_FALSE(ConvertCompatible(AtomicType::kDate, AtomicType::kTime));
  EXPECT_FALSE(ConvertCompatible(AtomicType::kBoolean, AtomicType::kDouble));
}

// ---- comparisons ------------------------------------------------------------

TEST(CompareTest, NumericPromotion) {
  EXPECT_TRUE(AtomicCompare(CompOp::kEq, AtomicValue::Integer(1),
                            AtomicValue::Double(1.0)).value());
  EXPECT_TRUE(AtomicCompare(CompOp::kLt, AtomicValue::Decimal(1.5),
                            AtomicValue::Integer(2)).value());
  EXPECT_TRUE(AtomicCompare(CompOp::kGe, AtomicValue::Float(2.0),
                            AtomicValue::Integer(2)).value());
}

TEST(CompareTest, NaNSemantics) {
  AtomicValue nan = AtomicValue::Double(std::nan(""));
  EXPECT_FALSE(AtomicCompare(CompOp::kEq, nan, nan).value());
  EXPECT_TRUE(AtomicCompare(CompOp::kNe, nan, nan).value());
  EXPECT_FALSE(AtomicCompare(CompOp::kLt, nan, AtomicValue::Double(1)).value());
  EXPECT_FALSE(AtomicCompare(CompOp::kGe, nan, AtomicValue::Double(1)).value());
}

TEST(CompareTest, StringsAndBooleans) {
  EXPECT_TRUE(AtomicCompare(CompOp::kLt, AtomicValue::String("abc"),
                            AtomicValue::String("abd")).value());
  EXPECT_TRUE(AtomicCompare(CompOp::kLt, AtomicValue::Boolean(false),
                            AtomicValue::Boolean(true)).value());
  EXPECT_FALSE(AtomicCompare(CompOp::kEq, AtomicValue::String("1"),
                             AtomicValue::Integer(1)).ok());
}

TEST(CompareTest, ValueCompareConvertsUntypedBothWays) {
  // untyped "2" = integer 2 (untyped -> double).
  EXPECT_TRUE(ValueCompareAtomic(CompOp::kEq, AtomicValue::Untyped("2"),
                                 AtomicValue::Integer(2)).value());
  EXPECT_TRUE(ValueCompareAtomic(CompOp::kEq, AtomicValue::Integer(2),
                                 AtomicValue::Untyped("2")).value());
  // untyped vs untyped compares as string: "1" != "1.0".
  EXPECT_FALSE(ValueCompareAtomic(CompOp::kEq, AtomicValue::Untyped("1"),
                                  AtomicValue::Untyped("1.0")).value());
  EXPECT_TRUE(ValueCompareAtomic(CompOp::kEq, AtomicValue::Untyped("x"),
                                 AtomicValue::Untyped("x")).value());
}

TEST(CompareTest, GeneralCompareIsExistential) {
  Sequence xs = {AtomicValue::Integer(1), AtomicValue::Integer(5)};
  Sequence ys = {AtomicValue::Integer(3), AtomicValue::Integer(5)};
  EXPECT_TRUE(GeneralCompare(CompOp::kEq, xs, ys).value());
  EXPECT_TRUE(GeneralCompare(CompOp::kLt, xs, ys).value());
  EXPECT_FALSE(GeneralCompare(CompOp::kEq, xs, {AtomicValue::Integer(2)}).value());
  EXPECT_FALSE(GeneralCompare(CompOp::kEq, {}, ys).value());
  // The classic XQuery oddity: (1,3) both < and > (2,2).
  Sequence a = {AtomicValue::Integer(1), AtomicValue::Integer(3)};
  Sequence b = {AtomicValue::Integer(2)};
  EXPECT_TRUE(GeneralCompare(CompOp::kLt, a, b).value());
  EXPECT_TRUE(GeneralCompare(CompOp::kGt, a, b).value());
}

TEST(CompareTest, CastBetweenNumericsAndStrings) {
  EXPECT_EQ(CastTo(AtomicValue::Integer(3), AtomicType::kDouble).value().AsDouble(), 3.0);
  EXPECT_EQ(CastTo(AtomicValue::Double(3.7), AtomicType::kInteger).value().AsInt(), 3);
  EXPECT_EQ(CastTo(AtomicValue::Integer(3), AtomicType::kString).value().AsString(), "3");
  EXPECT_EQ(CastTo(AtomicValue::String("2.5"), AtomicType::kDouble).value().AsDouble(), 2.5);
  EXPECT_TRUE(CastTo(AtomicValue::Boolean(true), AtomicType::kInteger).value().AsInt() == 1);
  EXPECT_FALSE(CastTo(AtomicValue::String("abc"), AtomicType::kInteger).ok());
  EXPECT_FALSE(CastTo(AtomicValue::Double(std::nan("")), AtomicType::kInteger).ok());
  EXPECT_TRUE(CastableTo(AtomicValue::String("1"), AtomicType::kInteger));
  EXPECT_FALSE(CastableTo(AtomicValue::String(""), AtomicType::kInteger));
}

// ---- promoteToSimpleTypes (Figure 6) ----------------------------------------

TEST(PromoteTest, UntypedGetsStringAndDoubleEntries) {
  auto keys = PromoteToSimpleTypes(AtomicValue::Untyped("42"));
  ASSERT_EQ(keys.size(), 2u);  // the paper's "reduced to two" case
  EXPECT_EQ(keys[0].type, AtomicType::kString);
  EXPECT_EQ(keys[1].type, AtomicType::kDouble);
}

TEST(PromoteTest, UntypedNonNumericGetsOnlyString) {
  auto keys = PromoteToSimpleTypes(AtomicValue::Untyped("person0"));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].type, AtomicType::kString);
}

TEST(PromoteTest, IntegerPromotesUpTheNumericTower) {
  auto keys = PromoteToSimpleTypes(AtomicValue::Integer(7));
  ASSERT_EQ(keys.size(), 4u);  // integer, decimal, float, double
  EXPECT_EQ(keys[0].type, AtomicType::kInteger);
  EXPECT_EQ(keys[3].type, AtomicType::kDouble);
}

TEST(PromoteTest, DoubleHasSingleEntry) {
  auto keys = PromoteToSimpleTypes(AtomicValue::Double(7));
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].type, AtomicType::kDouble);
}

TEST(PromoteTest, CrossTypeNumericKeysCollide) {
  auto a = PromoteToSimpleTypes(AtomicValue::Integer(7));
  auto b = PromoteToSimpleTypes(AtomicValue::Decimal(7.0));
  bool collide = false;
  for (const auto& ka : a) {
    for (const auto& kb : b) {
      if (ka == kb) collide = true;
    }
  }
  EXPECT_TRUE(collide);
}

TEST(PromoteTest, NaNProducesNoKeys) {
  EXPECT_TRUE(PromoteToSimpleTypes(AtomicValue::Double(std::nan(""))).empty());
}

TEST(PromoteTest, NegativeZeroFoldsToZero) {
  auto a = PromoteToSimpleTypes(AtomicValue::Double(0.0));
  auto b = PromoteToSimpleTypes(AtomicValue::Double(-0.0));
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_TRUE(a[0] == b[0]);
}

TEST(PromoteTest, LexicalTypesKeyOnOriginalTypePlusStringBridge) {
  auto keys = PromoteToSimpleTypes(
      AtomicValue::Lexical(AtomicType::kDate, "2026-07-06"));
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0].type, AtomicType::kDate);
  EXPECT_EQ(keys[0].canon, "2026-07-06");
  // The bridge entry lets untyped probes find typed lexical values.
  EXPECT_EQ(keys[1].type, AtomicType::kString);
  EXPECT_EQ(keys[1].canon, "2026-07-06");
}

}  // namespace
}  // namespace xqc
