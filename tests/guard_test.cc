// Tests for the QueryGuard resource-governance layer (src/base/guard.h):
// deadlines, cooperative cancellation, memory budgets, output caps, step
// quotas, and deterministic fault injection — exercised through the public
// engine API across all three configurations (algebra streaming, algebra
// materializing, baseline interpreter).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/xml/doc_index.h"
#include "src/xml/xml_parser.h"
#include "test_util.h"

namespace xqc {
namespace {

struct Config {
  const char* name;
  EngineOptions opts;
};

std::vector<Config> AllConfigs() {
  Config streaming{"algebra-streaming", EngineOptions{}};
  streaming.opts.exec_mode = ExecMode::kStreaming;
  Config materialize{"algebra-materialize", EngineOptions{}};
  materialize.opts.exec_mode = ExecMode::kMaterialize;
  Config interp{"interpreter", EngineOptions{}};
  interp.opts.use_algebra = false;
  return {streaming, materialize, interp};
}

// Prepares and executes; errors come back as "ERROR:<code>" (execution) or
// "PREPARE-ERROR:<code>" (compilation).
std::string RunQuery(const std::string& query, const EngineOptions& opts,
                DynamicContext* ctx) {
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(query, opts);
  if (!q.ok()) return "PREPARE-ERROR:" + q.status().code();
  Result<std::string> r = q.value().ExecuteToString(ctx);
  if (!r.ok()) return "ERROR:" + r.status().code();
  return r.value();
}

TEST(Guard, UnlimitedByDefault) {
  for (const Config& cfg : AllConfigs()) {
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("count(1 to 100000)", cfg.opts, &ctx), "100000")
        << cfg.name;
  }
}

TEST(Guard, DeadlineTripsOnUnboundedCrossProduct) {
  // Acceptance criterion: a 50ms deadline over an effectively unbounded
  // cross product terminates promptly with XQC0001 in every config.
  const std::string kQuery =
      "count(for $a in 1 to 100000, $b in 1 to 100000, "
      "$c in 1 to 100000 return 1)";
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.limits.deadline_ms = 50;
    Engine engine;
    Result<PreparedQuery> q = engine.Prepare(kQuery, opts);
    ASSERT_OK(q);
    DynamicContext ctx;
    auto start = std::chrono::steady_clock::now();
    Result<Sequence> r = q.value().Execute(&ctx);
    auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    ASSERT_FALSE(r.ok()) << cfg.name;
    EXPECT_EQ(r.status().code(), "XQC0001") << cfg.name;
    // Unloaded release builds finish within ~2x the deadline; the slack
    // here covers sanitizer builds and loaded test runners. Any bound at
    // all proves termination is deadline-driven: the full cross product is
    // 10^15 tuples and would otherwise run for days.
    EXPECT_LT(elapsed_ms, 5000) << cfg.name;
  }
}

TEST(Guard, PreCancelledTokenTrips) {
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.cancel = CancellationToken::Make();
    opts.cancel.RequestCancel();
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("count(for $i in 1 to 1000000 return $i + 0)", opts, &ctx),
              "ERROR:XQC0002")
        << cfg.name;
  }
}

TEST(Guard, MidStreamCancellation) {
  // Pull a few items from a live stream, cancel, and the very next pull
  // must fail with XQC0002 (the stream does an unamortized check per
  // tuple).
  EngineOptions opts;  // streaming algebra (the default)
  opts.cancel = CancellationToken::Make();
  Engine engine;
  Result<PreparedQuery> q =
      engine.Prepare("for $x in 1 to 100000 return $x", opts);
  ASSERT_OK(q);
  DynamicContext ctx;
  Result<ResultStream> rs = q.value().ExecuteStream(&ctx);
  ASSERT_OK(rs);
  Item item;
  for (int i = 0; i < 10; i++) {
    Result<bool> has = rs.value().Next(&item);
    ASSERT_OK(has);
    ASSERT_TRUE(has.value());
  }
  opts.cancel.RequestCancel();
  Result<bool> has = rs.value().Next(&item);
  ASSERT_FALSE(has.ok());
  EXPECT_EQ(has.status().code(), "XQC0002");
  EXPECT_EQ(has.status().kind(), StatusKind::kResourceExhausted);
}

TEST(Guard, MemoryBudgetTrips) {
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.limits.max_memory_bytes = 1 << 20;  // 1 MiB
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("count(for $i in 1 to 1000000 return <e/>)", opts, &ctx),
              "ERROR:XQC0003")
        << cfg.name;
  }
}

TEST(Guard, MemoryBudgetAllowsSmallQueries) {
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.limits.max_memory_bytes = 64 << 20;
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("count(for $i in 1 to 1000 return <e/>)", opts, &ctx),
              "1000")
        << cfg.name;
  }
}

TEST(Guard, OutputCapTrips) {
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.limits.max_output_items = 100;
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("1 to 1000", opts, &ctx), "ERROR:XQC0004") << cfg.name;
    // Exactly at the cap is allowed.
    std::string ok = RunQuery("1 to 100", opts, &ctx);
    EXPECT_EQ(ok.substr(0, 8), "1 2 3 4 ") << cfg.name;
  }
}

TEST(Guard, OutputCapTripsMidStream) {
  // Streaming delivery enforces the cap per item: exactly `cap` items come
  // out, then XQC0004 — the remainder of the plan is never evaluated.
  EngineOptions opts;
  opts.limits.max_output_items = 10;
  Engine engine;
  Result<PreparedQuery> q =
      engine.Prepare("for $x in 1 to 100000 return $x", opts);
  ASSERT_OK(q);
  DynamicContext ctx;
  Result<ResultStream> rs = q.value().ExecuteStream(&ctx);
  ASSERT_OK(rs);
  Item item;
  int delivered = 0;
  while (true) {
    Result<bool> has = rs.value().Next(&item);
    if (!has.ok()) {
      EXPECT_EQ(has.status().code(), "XQC0004");
      break;
    }
    ASSERT_TRUE(has.value()) << "stream ended before tripping the cap";
    delivered++;
    ASSERT_LE(delivered, 10);
  }
  EXPECT_EQ(delivered, 10);
}

TEST(Guard, StepQuotaTrips) {
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.limits.max_eval_steps = 10000;
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("count(for $i in 1 to 300000 return $i + 0)", opts, &ctx),
              "ERROR:XQC0006")
        << cfg.name;
  }
}

TEST(Guard, FaultInjectorTripsEveryCode) {
  // Deterministically trip the guard with each vendor code in every
  // config, proving each unwind path is exercised and reports faithfully.
  const char* kCodes[] = {kGuardTimeoutCode,   kGuardCancelledCode,
                          kGuardMemoryCode,    kGuardOutputCode,
                          kGuardRecursionCode, kGuardStepsCode};
  for (const Config& cfg : AllConfigs()) {
    for (const char* code : kCodes) {
      EngineOptions opts = cfg.opts;
      opts.fault_injector.trip_check_n = 2;
      opts.fault_injector.trip_code = code;
      DynamicContext ctx;
      EXPECT_EQ(RunQuery("count(for $i in 1 to 100000 return $i + 0)", opts, &ctx),
                std::string("ERROR:") + code)
          << cfg.name << " " << code;
    }
  }
}

TEST(Guard, FaultInjectorFailsAllocation) {
  // Failing the Nth accounted allocation unwinds node construction
  // mid-build in every config (leak-free under ASan; see scripts/check.sh).
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.fault_injector.fail_alloc_n = 5;
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("<r>{for $i in 1 to 100 return <e>{$i}</e>}</r>", opts,
                  &ctx),
              "ERROR:XQC0003")
        << cfg.name;
  }
}

TEST(Guard, FaultInjectorTripsMidStream) {
  // A mid-stream trip delivers some items, then surfaces the injected
  // code; the stream must unwind cleanly with items still buffered.
  EngineOptions opts;
  opts.fault_injector.trip_check_n = 50;
  Engine engine;
  Result<PreparedQuery> q =
      engine.Prepare("for $x in 1 to 100000 return $x", opts);
  ASSERT_OK(q);
  DynamicContext ctx;
  Result<ResultStream> rs = q.value().ExecuteStream(&ctx);
  ASSERT_OK(rs);
  Item item;
  int delivered = 0;
  while (true) {
    Result<bool> has = rs.value().Next(&item);
    if (!has.ok()) {
      EXPECT_EQ(has.status().code(), kGuardCancelledCode);
      break;
    }
    ASSERT_TRUE(has.value()) << "stream ended before the injected trip";
    delivered++;
    ASSERT_LT(delivered, 100000);
  }
  EXPECT_GT(delivered, 0);
}

// ---------------------------------------------------------------------------
// Batched-execution parity. batch_size=1 runs the tuple-at-a-time Next()
// loops unchanged (the oracle); larger batches amortize virtual dispatch
// but must trip the same guard faults at the same logical step, account
// the same memory, and honor cancellation with the same latency.
// ---------------------------------------------------------------------------

TEST(Guard, BatchedTripParityWithOracle) {
  // Every injected trip point must produce a byte-identical outcome
  // (same items delivered or same error code) at batch 1 and batch 1024:
  // NextBatch credits guard steps per tuple, never per batch, so the Nth
  // slow-path check fires at the same logical step either way.
  const char* kQueries[] = {
      "count(for $i in 1 to 100000 return $i + 0)",
      "count(for $i in 1 to 300 where $i mod 3 = 0 return $i)",
      "count(for $a in 1 to 200, $b in 1 to 200 where $a = $b return $a)",
      "string-join(for $i in 1 to 500 return string($i), \",\")",
  };
  for (const char* query : kQueries) {
    for (int64_t trip_n : {1, 2, 3, 5, 17, 50, 200}) {
      std::string oracle;
      for (int batch : {1, 1024}) {
        EngineOptions opts;
        opts.batch_size = batch;
        opts.fault_injector.trip_check_n = trip_n;
        opts.fault_injector.trip_code = kGuardStepsCode;
        DynamicContext ctx;
        std::string got = RunQuery(query, opts, &ctx);
        if (batch == 1) {
          oracle = got;
        } else {
          EXPECT_EQ(got, oracle)
              << "trip_check_n=" << trip_n << " query: " << query;
        }
      }
    }
  }
}

TEST(Guard, BatchedAllocationFaultParity) {
  // fail_alloc_n targets the Nth accounted allocation. Batched operators
  // keep the oracle's per-tuple Account* call granularity, so the same
  // allocation fails — same code, same partial work torn down.
  const char* kQueries[] = {
      "<r>{for $i in 1 to 100 return <e>{$i}</e>}</r>",
      "count(for $a in (1,2,3), $b in 1 to 50 where $a <= $b return $b)",
  };
  for (const char* query : kQueries) {
    for (int64_t alloc_n : {1, 2, 5, 20, 60}) {
      std::string oracle;
      for (int batch : {1, 1024}) {
        EngineOptions opts;
        opts.batch_size = batch;
        opts.fault_injector.fail_alloc_n = alloc_n;
        DynamicContext ctx;
        std::string got = RunQuery(query, opts, &ctx);
        if (batch == 1) {
          oracle = got;
        } else {
          EXPECT_EQ(got, oracle)
              << "fail_alloc_n=" << alloc_n << " query: " << query;
        }
      }
    }
  }
}

TEST(Guard, BatchedEarlyExitMemoryParity) {
  // Early-exit consumers (exists, [1], quantifiers, subsequence) must not
  // cause a batched pipeline to pull ahead of demand: peak accounted
  // memory — a proxy for work actually performed — matches the oracle.
  const char* kQueries[] = {
      "exists(for $i in 1 to 100000 return <e>{$i}</e>)",
      "string((for $i in 1 to 100000 return <e>{$i}</e>)[1])",
      "some $i in 1 to 100000 satisfies $i = 40",
      "count(subsequence(for $i in 1 to 100000 return <e>{$i}</e>, 2, 4))",
  };
  for (const char* query : kQueries) {
    ExecStats oracle;
    for (int batch : {1, 1024}) {
      EngineOptions opts;
      opts.batch_size = batch;
      Engine engine;
      Result<PreparedQuery> q = engine.Prepare(query, opts);
      ASSERT_OK(q);
      DynamicContext ctx;
      ASSERT_OK(q.value().ExecuteToString(&ctx));
      const ExecStats& s = q.value().last_exec_stats();
      if (batch == 1) {
        oracle = s;
      } else {
        EXPECT_EQ(s.peak_memory_bytes, oracle.peak_memory_bytes) << query;
        EXPECT_EQ(s.guard_steps, oracle.guard_steps) << query;
        EXPECT_EQ(s.guard_checks, oracle.guard_checks) << query;
        EXPECT_EQ(s.streaming_early_stops, oracle.streaming_early_stops)
            << query;
      }
    }
  }
}

TEST(Guard, BatchedNoBudgetLeakAcrossExecutions) {
  // Each execution runs under a fresh ScopedGuard; batch buffers
  // abandoned by an early exit or a dropped mid-stream cursor must not
  // leak accounted budget into later executions. Re-running under a
  // tight memory limit stays within budget every time, and the peak
  // reported by the last run equals the first run's.
  EngineOptions opts;
  opts.batch_size = 1024;
  // Roomy enough for one execution (the `1 to 100000` source range is
  // materialized at Open, ~4.8MB accounted) but far too small for even
  // two executions' worth of leaked accounting.
  opts.limits.max_memory_bytes = 8 << 20;
  Engine engine;
  Result<PreparedQuery> early = engine.Prepare(
      "exists(for $i in 1 to 100000 return <e>{$i}</e>)", opts);
  ASSERT_OK(early);
  DynamicContext ctx;
  int64_t first_peak = -1;
  for (int run = 0; run < 20; run++) {
    Result<std::string> r = early.value().ExecuteToString(&ctx);
    // A trip here means accounted memory leaked across executions.
    ASSERT_OK(r);
    EXPECT_EQ(r.value(), "true");
    int64_t peak = early.value().last_exec_stats().peak_memory_bytes;
    if (run == 0) {
      first_peak = peak;
    } else {
      EXPECT_EQ(peak, first_peak) << "run " << run;
    }
  }
  // Abandon a batched stream mid-way, repeatedly; the dropped cursor's
  // buffered tuples must be released with its guard, not carried over.
  Result<PreparedQuery> streamed =
      engine.Prepare("for $i in 1 to 100000 return <e>{$i}</e>", opts);
  ASSERT_OK(streamed);
  for (int run = 0; run < 20; run++) {
    Result<ResultStream> rs = streamed.value().ExecuteStream(&ctx);
    ASSERT_OK(rs);
    Item item;
    for (int i = 0; i < 5; i++) {
      Result<bool> has = rs.value().Next(&item);
      ASSERT_OK(has);
      ASSERT_TRUE(has.value());
    }
    // rs drops here with ~99995 tuples unconsumed.
  }
  Result<std::string> after = early.value().ExecuteToString(&ctx);
  ASSERT_OK(after);
  EXPECT_EQ(early.value().last_exec_stats().peak_memory_bytes, first_peak);
}

TEST(Guard, BatchedMidStreamCancellationLatency) {
  // The result cursor always pulls tuple-at-a-time regardless of
  // batch_size, so cancellation is honored on the very next pull — a
  // batched pipeline must not have buffered the rest of the stream.
  EngineOptions opts;
  opts.batch_size = 1024;
  opts.cancel = CancellationToken::Make();
  Engine engine;
  Result<PreparedQuery> q =
      engine.Prepare("for $x in 1 to 100000 return $x", opts);
  ASSERT_OK(q);
  DynamicContext ctx;
  Result<ResultStream> rs = q.value().ExecuteStream(&ctx);
  ASSERT_OK(rs);
  Item item;
  for (int i = 0; i < 10; i++) {
    Result<bool> has = rs.value().Next(&item);
    ASSERT_OK(has);
    ASSERT_TRUE(has.value());
  }
  opts.cancel.RequestCancel();
  Result<bool> has = rs.value().Next(&item);
  ASSERT_FALSE(has.ok());
  EXPECT_EQ(has.status().code(), "XQC0002");
}

TEST(Guard, StatsReportGuardActivity) {
  EngineOptions opts;
  opts.limits.deadline_ms = 60000;
  Engine engine;
  Result<PreparedQuery> q =
      engine.Prepare("count(for $i in 1 to 100000 return <e/>)", opts);
  ASSERT_OK(q);
  DynamicContext ctx;
  Result<Sequence> r = q.value().Execute(&ctx);
  ASSERT_OK(r);
  const ExecStats& es = q.value().last_exec_stats();
  EXPECT_GT(es.guard_checks, 0);
  EXPECT_GT(es.peak_memory_bytes, 0);
}

TEST(Guard, StreamStatsReportGuardActivity) {
  EngineOptions opts;
  opts.limits.deadline_ms = 60000;
  Engine engine;
  Result<PreparedQuery> q =
      engine.Prepare("for $x in 1 to 100000 return $x", opts);
  ASSERT_OK(q);
  DynamicContext ctx;
  Result<ResultStream> rs = q.value().ExecuteStream(&ctx);
  ASSERT_OK(rs);
  Result<Sequence> all = rs.value().Drain();
  ASSERT_OK(all);
  EXPECT_EQ(all.value().size(), 100000u);
  EXPECT_GT(rs.value().stats().guard_checks, 0);
}

TEST(Guard, GuardedXmlParseHonorsBudget) {
  // Document parsing accounts constructed nodes, so a tight budget bounds
  // materialization of a large document (the same path fn:doc uses —
  // DynamicContext::ResolveDocument forwards the installed query guard).
  std::string xml = "<r>";
  for (int i = 0; i < 20000; i++) xml += "<e>text</e>";
  xml += "</r>";
  GuardLimits limits;
  limits.max_memory_bytes = 1 << 20;  // 1 MiB << 20k nodes
  QueryGuard guard(limits);
  XmlParseOptions options;
  options.guard = &guard;
  Result<NodePtr> r = ParseXml(xml, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "XQC0003");
  // The same document parses fine without a budget.
  EXPECT_OK(ParseXml(xml));
}

TEST(Guard, DocumentIndexBuildHonorsGuard) {
  // Lazy structural-index construction (PR 4) runs under the requesting
  // query's guard: a trip during the build aborts it, and the failed
  // build is NOT published — the next query retries and succeeds.
  std::string xml = "<r>";
  for (int i = 0; i < 1000; i++) xml += "<e/>";
  xml += "</r>";
  NodePtr doc = testutil::MustParseXml(xml);

  GuardFaultInjector inject;
  inject.trip_check_n = 1;
  inject.trip_code = kGuardCancelledCode;
  QueryGuard tripped(GuardLimits{}, CancellationToken(), inject);
  Result<const DocumentIndex*> r =
      GetOrBuildDocumentIndex(doc.get(), &tripped);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "XQC0002");

  QueryGuard clean;
  Result<const DocumentIndex*> ok = GetOrBuildDocumentIndex(doc.get(), &clean);
  ASSERT_OK(ok);
  EXPECT_NE(ok.value(), nullptr);
}

TEST(Guard, DocumentIndexBuildHonorsMemoryBudget) {
  // The guard's memory budget also covers index construction: a budget
  // that admits the parse but not the index trips with XQC0003.
  std::string xml = "<r>";
  for (int i = 0; i < 2000; i++) xml += "<e/>";
  xml += "</r>";
  NodePtr doc = testutil::MustParseXml(xml);

  GuardLimits limits;
  limits.max_memory_bytes = 1;
  QueryGuard tight(limits);
  Result<const DocumentIndex*> r = GetOrBuildDocumentIndex(doc.get(), &tight);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "XQC0003");

  QueryGuard clean;
  EXPECT_OK(GetOrBuildDocumentIndex(doc.get(), &clean));
}

TEST(Guard, GuardedXmlParseHonorsCancellation) {
  std::string xml = "<r>";
  for (int i = 0; i < 20000; i++) xml += "<e>text</e>";
  xml += "</r>";
  CancellationToken cancel = CancellationToken::Make();
  cancel.RequestCancel();
  QueryGuard guard(GuardLimits{}, cancel);
  XmlParseOptions options;
  options.guard = &guard;
  Result<NodePtr> r = ParseXml(xml, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "XQC0002");
}

// ---------------------------------------------------------------------------
// ParallelGuard: partitioned execution (src/runtime/parallel.cc) splits the
// parent guard's *remaining* budget across per-partition worker guards and
// re-charges the parent at recombination. Whatever limit trips, the trip code
// must match the serial run — the guard contract is parallelism-agnostic.
// ---------------------------------------------------------------------------

class ParallelGuardTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "xqc_parallel_guard_test";
    std::system(("rm -rf " + dir_ + " && mkdir -p " + dir_).c_str());
    for (int d = 0; d < 4; d++) {
      std::string body = "<doc>";
      for (int i = 0; i < 200; i++) {
        body += "<item id=\"" + std::to_string(d * 200 + i) + "\"/>";
      }
      body += "</doc>";
      std::ofstream out(dir_ + "/d" + std::to_string(d) + ".xml",
                        std::ios::trunc);
      out << body;
    }
    query_ = "for $i in fn:collection(\"" + dir_ +
             "\")//item return string($i/@id)";
  }
  void TearDown() override { std::system(("rm -rf " + dir_).c_str()); }

  // Runs at a parallelism level; "" on success, the code on error.
  std::string Trip(const EngineOptions& opts) {
    Engine engine;
    Result<PreparedQuery> q = engine.Prepare(query_, opts);
    EXPECT_OK(q);
    DynamicContext ctx;
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    return r.ok() ? "" : r.status().code();
  }

  std::string dir_;
  std::string query_;
};

TEST_F(ParallelGuardTest, StepQuotaTripsIdenticallyAcrossParallelism) {
  EngineOptions serial;
  serial.limits.max_eval_steps = 100;  // far below what the scan needs
  ASSERT_EQ(Trip(serial), "XQC0006");
  for (int n : {2, 4}) {
    EngineOptions par = serial;
    par.parallelism = n;
    EXPECT_EQ(Trip(par), "XQC0006") << "parallelism " << n;
  }
  // A generous quota passes everywhere (workers + recombination re-charge
  // stay within the parent's budget).
  EngineOptions roomy;
  roomy.limits.max_eval_steps = 50'000'000;
  ASSERT_EQ(Trip(roomy), "");
  for (int n : {2, 4}) {
    EngineOptions par = roomy;
    par.parallelism = n;
    EXPECT_EQ(Trip(par), "") << "parallelism " << n;
  }
}

TEST_F(ParallelGuardTest, MemoryBudgetTripsIdenticallyAcrossParallelism) {
  EngineOptions serial;
  serial.limits.max_memory_bytes = 2048;  // far below the corpus trees
  ASSERT_EQ(Trip(serial), "XQC0003");
  for (int n : {2, 4}) {
    EngineOptions par = serial;
    par.parallelism = n;
    EXPECT_EQ(Trip(par), "XQC0003") << "parallelism " << n;
  }
}

TEST_F(ParallelGuardTest, PreCancelledTokenTripsIdenticallyAcrossParallelism) {
  for (int n : {1, 2, 4}) {
    EngineOptions opts;
    opts.parallelism = n;
    opts.cancel = CancellationToken::Make();
    opts.cancel.RequestCancel();
    EXPECT_EQ(Trip(opts), "XQC0002") << "parallelism " << n;
  }
}

TEST_F(ParallelGuardTest, MidRunCancellationIsHonoredPromptly) {
  // A deliberately slow partitioned query (a quadratic join inside the
  // per-tuple work): cancel from another thread shortly after launch and
  // require prompt teardown — the driver polls the parent guard in 1ms
  // slices and broadcasts to the workers' shared abort token.
  query_ = "for $i in fn:collection(\"" + dir_ +
           "\")//item return count(for $a in 1 to 2000, $b in 1 to 2000 "
           "return 1)";
  EngineOptions opts;
  opts.parallelism = 4;
  opts.cancel = CancellationToken::Make();
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(query_, opts);
  ASSERT_OK(q);
  DynamicContext ctx;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    opts.cancel.RequestCancel();
  });
  auto start = std::chrono::steady_clock::now();
  Result<std::string> r = q.value().ExecuteToString(&ctx);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  canceller.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "XQC0002");
  // Generous bound (slow CI boxes): the uncancelled query takes many
  // seconds; prompt teardown finishes well under two.
  EXPECT_LT(elapsed, 2000) << "cancellation latency too high";
}

TEST_F(ParallelGuardTest, DeadlineTripsAcrossParallelismWithoutHanging) {
  query_ = "for $i in fn:collection(\"" + dir_ +
           "\")//item return count(for $a in 1 to 2000, $b in 1 to 2000 "
           "return 1)";
  for (int n : {1, 4}) {
    EngineOptions opts;
    opts.parallelism = n;
    opts.limits.deadline_ms = 50;
    auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(Trip(opts), "XQC0001") << "parallelism " << n;
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    EXPECT_LT(elapsed, 2000) << "parallelism " << n;
  }
}

}  // namespace
}  // namespace xqc
