// Tests for the QueryGuard resource-governance layer (src/base/guard.h):
// deadlines, cooperative cancellation, memory budgets, output caps, step
// quotas, and deterministic fault injection — exercised through the public
// engine API across all three configurations (algebra streaming, algebra
// materializing, baseline interpreter).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "src/engine/engine.h"
#include "src/xml/doc_index.h"
#include "src/xml/xml_parser.h"
#include "test_util.h"

namespace xqc {
namespace {

struct Config {
  const char* name;
  EngineOptions opts;
};

std::vector<Config> AllConfigs() {
  Config streaming{"algebra-streaming", EngineOptions{}};
  streaming.opts.exec_mode = ExecMode::kStreaming;
  Config materialize{"algebra-materialize", EngineOptions{}};
  materialize.opts.exec_mode = ExecMode::kMaterialize;
  Config interp{"interpreter", EngineOptions{}};
  interp.opts.use_algebra = false;
  return {streaming, materialize, interp};
}

// Prepares and executes; errors come back as "ERROR:<code>" (execution) or
// "PREPARE-ERROR:<code>" (compilation).
std::string RunQuery(const std::string& query, const EngineOptions& opts,
                DynamicContext* ctx) {
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(query, opts);
  if (!q.ok()) return "PREPARE-ERROR:" + q.status().code();
  Result<std::string> r = q.value().ExecuteToString(ctx);
  if (!r.ok()) return "ERROR:" + r.status().code();
  return r.value();
}

TEST(Guard, UnlimitedByDefault) {
  for (const Config& cfg : AllConfigs()) {
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("count(1 to 100000)", cfg.opts, &ctx), "100000")
        << cfg.name;
  }
}

TEST(Guard, DeadlineTripsOnUnboundedCrossProduct) {
  // Acceptance criterion: a 50ms deadline over an effectively unbounded
  // cross product terminates promptly with XQC0001 in every config.
  const std::string kQuery =
      "count(for $a in 1 to 100000, $b in 1 to 100000, "
      "$c in 1 to 100000 return 1)";
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.limits.deadline_ms = 50;
    Engine engine;
    Result<PreparedQuery> q = engine.Prepare(kQuery, opts);
    ASSERT_OK(q);
    DynamicContext ctx;
    auto start = std::chrono::steady_clock::now();
    Result<Sequence> r = q.value().Execute(&ctx);
    auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    ASSERT_FALSE(r.ok()) << cfg.name;
    EXPECT_EQ(r.status().code(), "XQC0001") << cfg.name;
    // Unloaded release builds finish within ~2x the deadline; the slack
    // here covers sanitizer builds and loaded test runners. Any bound at
    // all proves termination is deadline-driven: the full cross product is
    // 10^15 tuples and would otherwise run for days.
    EXPECT_LT(elapsed_ms, 5000) << cfg.name;
  }
}

TEST(Guard, PreCancelledTokenTrips) {
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.cancel = CancellationToken::Make();
    opts.cancel.RequestCancel();
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("count(for $i in 1 to 1000000 return $i + 0)", opts, &ctx),
              "ERROR:XQC0002")
        << cfg.name;
  }
}

TEST(Guard, MidStreamCancellation) {
  // Pull a few items from a live stream, cancel, and the very next pull
  // must fail with XQC0002 (the stream does an unamortized check per
  // tuple).
  EngineOptions opts;  // streaming algebra (the default)
  opts.cancel = CancellationToken::Make();
  Engine engine;
  Result<PreparedQuery> q =
      engine.Prepare("for $x in 1 to 100000 return $x", opts);
  ASSERT_OK(q);
  DynamicContext ctx;
  Result<ResultStream> rs = q.value().ExecuteStream(&ctx);
  ASSERT_OK(rs);
  Item item;
  for (int i = 0; i < 10; i++) {
    Result<bool> has = rs.value().Next(&item);
    ASSERT_OK(has);
    ASSERT_TRUE(has.value());
  }
  opts.cancel.RequestCancel();
  Result<bool> has = rs.value().Next(&item);
  ASSERT_FALSE(has.ok());
  EXPECT_EQ(has.status().code(), "XQC0002");
  EXPECT_EQ(has.status().kind(), StatusKind::kResourceExhausted);
}

TEST(Guard, MemoryBudgetTrips) {
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.limits.max_memory_bytes = 1 << 20;  // 1 MiB
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("count(for $i in 1 to 1000000 return <e/>)", opts, &ctx),
              "ERROR:XQC0003")
        << cfg.name;
  }
}

TEST(Guard, MemoryBudgetAllowsSmallQueries) {
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.limits.max_memory_bytes = 64 << 20;
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("count(for $i in 1 to 1000 return <e/>)", opts, &ctx),
              "1000")
        << cfg.name;
  }
}

TEST(Guard, OutputCapTrips) {
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.limits.max_output_items = 100;
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("1 to 1000", opts, &ctx), "ERROR:XQC0004") << cfg.name;
    // Exactly at the cap is allowed.
    std::string ok = RunQuery("1 to 100", opts, &ctx);
    EXPECT_EQ(ok.substr(0, 8), "1 2 3 4 ") << cfg.name;
  }
}

TEST(Guard, OutputCapTripsMidStream) {
  // Streaming delivery enforces the cap per item: exactly `cap` items come
  // out, then XQC0004 — the remainder of the plan is never evaluated.
  EngineOptions opts;
  opts.limits.max_output_items = 10;
  Engine engine;
  Result<PreparedQuery> q =
      engine.Prepare("for $x in 1 to 100000 return $x", opts);
  ASSERT_OK(q);
  DynamicContext ctx;
  Result<ResultStream> rs = q.value().ExecuteStream(&ctx);
  ASSERT_OK(rs);
  Item item;
  int delivered = 0;
  while (true) {
    Result<bool> has = rs.value().Next(&item);
    if (!has.ok()) {
      EXPECT_EQ(has.status().code(), "XQC0004");
      break;
    }
    ASSERT_TRUE(has.value()) << "stream ended before tripping the cap";
    delivered++;
    ASSERT_LE(delivered, 10);
  }
  EXPECT_EQ(delivered, 10);
}

TEST(Guard, StepQuotaTrips) {
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.limits.max_eval_steps = 10000;
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("count(for $i in 1 to 300000 return $i + 0)", opts, &ctx),
              "ERROR:XQC0006")
        << cfg.name;
  }
}

TEST(Guard, FaultInjectorTripsEveryCode) {
  // Deterministically trip the guard with each vendor code in every
  // config, proving each unwind path is exercised and reports faithfully.
  const char* kCodes[] = {kGuardTimeoutCode,   kGuardCancelledCode,
                          kGuardMemoryCode,    kGuardOutputCode,
                          kGuardRecursionCode, kGuardStepsCode};
  for (const Config& cfg : AllConfigs()) {
    for (const char* code : kCodes) {
      EngineOptions opts = cfg.opts;
      opts.fault_injector.trip_check_n = 2;
      opts.fault_injector.trip_code = code;
      DynamicContext ctx;
      EXPECT_EQ(RunQuery("count(for $i in 1 to 100000 return $i + 0)", opts, &ctx),
                std::string("ERROR:") + code)
          << cfg.name << " " << code;
    }
  }
}

TEST(Guard, FaultInjectorFailsAllocation) {
  // Failing the Nth accounted allocation unwinds node construction
  // mid-build in every config (leak-free under ASan; see scripts/check.sh).
  for (const Config& cfg : AllConfigs()) {
    EngineOptions opts = cfg.opts;
    opts.fault_injector.fail_alloc_n = 5;
    DynamicContext ctx;
    EXPECT_EQ(RunQuery("<r>{for $i in 1 to 100 return <e>{$i}</e>}</r>", opts,
                  &ctx),
              "ERROR:XQC0003")
        << cfg.name;
  }
}

TEST(Guard, FaultInjectorTripsMidStream) {
  // A mid-stream trip delivers some items, then surfaces the injected
  // code; the stream must unwind cleanly with items still buffered.
  EngineOptions opts;
  opts.fault_injector.trip_check_n = 50;
  Engine engine;
  Result<PreparedQuery> q =
      engine.Prepare("for $x in 1 to 100000 return $x", opts);
  ASSERT_OK(q);
  DynamicContext ctx;
  Result<ResultStream> rs = q.value().ExecuteStream(&ctx);
  ASSERT_OK(rs);
  Item item;
  int delivered = 0;
  while (true) {
    Result<bool> has = rs.value().Next(&item);
    if (!has.ok()) {
      EXPECT_EQ(has.status().code(), kGuardCancelledCode);
      break;
    }
    ASSERT_TRUE(has.value()) << "stream ended before the injected trip";
    delivered++;
    ASSERT_LT(delivered, 100000);
  }
  EXPECT_GT(delivered, 0);
}

TEST(Guard, StatsReportGuardActivity) {
  EngineOptions opts;
  opts.limits.deadline_ms = 60000;
  Engine engine;
  Result<PreparedQuery> q =
      engine.Prepare("count(for $i in 1 to 100000 return <e/>)", opts);
  ASSERT_OK(q);
  DynamicContext ctx;
  Result<Sequence> r = q.value().Execute(&ctx);
  ASSERT_OK(r);
  const ExecStats& es = q.value().last_exec_stats();
  EXPECT_GT(es.guard_checks, 0);
  EXPECT_GT(es.peak_memory_bytes, 0);
}

TEST(Guard, StreamStatsReportGuardActivity) {
  EngineOptions opts;
  opts.limits.deadline_ms = 60000;
  Engine engine;
  Result<PreparedQuery> q =
      engine.Prepare("for $x in 1 to 100000 return $x", opts);
  ASSERT_OK(q);
  DynamicContext ctx;
  Result<ResultStream> rs = q.value().ExecuteStream(&ctx);
  ASSERT_OK(rs);
  Result<Sequence> all = rs.value().Drain();
  ASSERT_OK(all);
  EXPECT_EQ(all.value().size(), 100000u);
  EXPECT_GT(rs.value().stats().guard_checks, 0);
}

TEST(Guard, GuardedXmlParseHonorsBudget) {
  // Document parsing accounts constructed nodes, so a tight budget bounds
  // materialization of a large document (the same path fn:doc uses —
  // DynamicContext::ResolveDocument forwards the installed query guard).
  std::string xml = "<r>";
  for (int i = 0; i < 20000; i++) xml += "<e>text</e>";
  xml += "</r>";
  GuardLimits limits;
  limits.max_memory_bytes = 1 << 20;  // 1 MiB << 20k nodes
  QueryGuard guard(limits);
  XmlParseOptions options;
  options.guard = &guard;
  Result<NodePtr> r = ParseXml(xml, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "XQC0003");
  // The same document parses fine without a budget.
  EXPECT_OK(ParseXml(xml));
}

TEST(Guard, DocumentIndexBuildHonorsGuard) {
  // Lazy structural-index construction (PR 4) runs under the requesting
  // query's guard: a trip during the build aborts it, and the failed
  // build is NOT published — the next query retries and succeeds.
  std::string xml = "<r>";
  for (int i = 0; i < 1000; i++) xml += "<e/>";
  xml += "</r>";
  NodePtr doc = testutil::MustParseXml(xml);

  GuardFaultInjector inject;
  inject.trip_check_n = 1;
  inject.trip_code = kGuardCancelledCode;
  QueryGuard tripped(GuardLimits{}, CancellationToken(), inject);
  Result<const DocumentIndex*> r =
      GetOrBuildDocumentIndex(doc.get(), &tripped);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "XQC0002");

  QueryGuard clean;
  Result<const DocumentIndex*> ok = GetOrBuildDocumentIndex(doc.get(), &clean);
  ASSERT_OK(ok);
  EXPECT_NE(ok.value(), nullptr);
}

TEST(Guard, DocumentIndexBuildHonorsMemoryBudget) {
  // The guard's memory budget also covers index construction: a budget
  // that admits the parse but not the index trips with XQC0003.
  std::string xml = "<r>";
  for (int i = 0; i < 2000; i++) xml += "<e/>";
  xml += "</r>";
  NodePtr doc = testutil::MustParseXml(xml);

  GuardLimits limits;
  limits.max_memory_bytes = 1;
  QueryGuard tight(limits);
  Result<const DocumentIndex*> r = GetOrBuildDocumentIndex(doc.get(), &tight);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "XQC0003");

  QueryGuard clean;
  EXPECT_OK(GetOrBuildDocumentIndex(doc.get(), &clean));
}

TEST(Guard, GuardedXmlParseHonorsCancellation) {
  std::string xml = "<r>";
  for (int i = 0; i < 20000; i++) xml += "<e>text</e>";
  xml += "</r>";
  CancellationToken cancel = CancellationToken::Make();
  cancel.RequestCancel();
  QueryGuard guard(GuardLimits{}, cancel);
  XmlParseOptions options;
  options.guard = &guard;
  Result<NodePtr> r = ParseXml(xml, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "XQC0002");
}

}  // namespace
}  // namespace xqc
