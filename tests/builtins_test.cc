// Tests for the built-in function library: registry sanity, arity
// enforcement, and edge-case semantics of the fn:/op:/fs: functions (the
// paper notes the built-ins are required for algebra completeness).
#include <gtest/gtest.h>

#include <cmath>

#include "src/runtime/builtins.h"
#include "src/xml/serializer.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::InterpToString;

TEST(BuiltinRegistry, LookupAndEnumeration) {
  EXPECT_TRUE(IsBuiltinFunction(Symbol("fn:count")));
  EXPECT_TRUE(IsBuiltinFunction(Symbol("op:general-eq")));
  EXPECT_TRUE(IsBuiltinFunction(Symbol("fs:distinct-docorder")));
  EXPECT_FALSE(IsBuiltinFunction(Symbol("fn:no-such-thing")));
  // Completeness floor: the library is substantial.
  EXPECT_GE(AllBuiltinFunctions().size(), 60u);
}

TEST(BuiltinRegistry, ArityEnforced) {
  DynamicContext ctx;
  Result<Sequence> r = CallBuiltin(Symbol("fn:count"), {}, &ctx);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "XPST0017");
  r = CallBuiltin(Symbol("fn:count"), {{}, {}}, &ctx);
  EXPECT_FALSE(r.ok());
  // fn:concat is variadic (>= 2).
  r = CallBuiltin(Symbol("fn:concat"),
                  {{AtomicValue::String("a")},
                   {AtomicValue::String("b")},
                   {AtomicValue::String("c")},
                   {AtomicValue::String("d")}},
                  &ctx);
  ASSERT_OK(r);
  EXPECT_EQ(r.value()[0].atomic().AsString(), "abcd");
}

TEST(BuiltinNumerics, ArithmeticTypeRules) {
  // integer op integer stays integer; div goes to decimal.
  EXPECT_EQ(InterpToString("3 + 4"), "7");
  EXPECT_EQ(InterpToString("(6 div 3) instance of xs:decimal"), "true");
  EXPECT_EQ(InterpToString("(6 div 4)"), "1.5");
  EXPECT_EQ(InterpToString("(1 + 0.5) instance of xs:decimal"), "true");
  EXPECT_EQ(InterpToString("(1 + 1e0) instance of xs:double"), "true");
  EXPECT_EQ(InterpToString("-7 idiv 2"), "-3");  // truncating
  EXPECT_EQ(InterpToString("-7 mod 2"), "-1");
  EXPECT_EQ(InterpToString("1e0 div 0"), "INF");
  EXPECT_EQ(InterpToString("-1e0 div 0"), "-INF");
  EXPECT_EQ(InterpToString("0e0 div 0"), "NaN");
  EXPECT_EQ(InterpToString("1.0 div 0"), "ERROR:FOAR0001");  // decimal
}

TEST(BuiltinNumerics, UntypedOperandsCastToDouble) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", testutil::MustParseXml("<a><n>4</n></a>"));
  EXPECT_EQ(InterpToString("doc(\"d.xml\")/a/n + 1", &ctx), "5");
  EXPECT_EQ(InterpToString(
                "(doc(\"d.xml\")/a/n + 1) instance of xs:double", &ctx),
            "true");
}

TEST(BuiltinAggregates, EmptyAndMixed) {
  EXPECT_EQ(InterpToString("sum(())"), "0");
  EXPECT_EQ(InterpToString("sum((1, 2.5))"), "3.5");
  EXPECT_EQ(InterpToString("sum((1,2,3)) instance of xs:integer"), "true");
  EXPECT_EQ(InterpToString("avg((1,2)) instance of xs:decimal"), "true");
  EXPECT_EQ(InterpToString("min(())"), "");
  EXPECT_EQ(InterpToString("max((1, 2.5, 2))"), "2.5");
  EXPECT_EQ(InterpToString("min((\"b\",\"a\"))"), "a");
  EXPECT_EQ(InterpToString("sum((\"x\"))"), "ERROR:XPTY0004");
}

TEST(BuiltinStrings, EdgeCases) {
  EXPECT_EQ(InterpToString("substring(\"hello\", 0)"), "hello");
  EXPECT_EQ(InterpToString("substring(\"hello\", 2)"), "ello");
  EXPECT_EQ(InterpToString("substring(\"hello\", 1.5, 2.6)"), "ell");
  EXPECT_EQ(InterpToString("substring(\"\", 1)"), "");
  EXPECT_EQ(InterpToString("substring-before(\"a-b\", \"-\")"), "a");
  EXPECT_EQ(InterpToString("substring-after(\"a-b\", \"-\")"), "b");
  EXPECT_EQ(InterpToString("substring-before(\"ab\", \"x\")"), "");
  EXPECT_EQ(InterpToString("contains(\"abc\", \"\")"), "true");
  EXPECT_EQ(InterpToString("upper-case(\"aBc\")"), "ABC");
  EXPECT_EQ(InterpToString("lower-case(\"AbC\")"), "abc");
  EXPECT_EQ(InterpToString("translate(\"abcabc\", \"abc\", \"AB\")"), "ABAB");
  EXPECT_EQ(InterpToString("normalize-space(\"  a   b \")"), "a b");
  EXPECT_EQ(InterpToString("string-join((), \"-\")"), "");
  EXPECT_EQ(InterpToString("string(())"), "");
}

// F&O 7.4.3: every edge case of fn:substring's positional arithmetic —
// fn:round semantics, NaN/±INF start or length, start < 1, and
// overflowing start+length all resolve through IEEE double comparisons
// against the 1-based codepoint position.
TEST(BuiltinStrings, SubstringSpecEdgeCases) {
  // The spec's own examples.
  EXPECT_EQ(InterpToString("substring(\"motor car\", 6)"), " car");
  EXPECT_EQ(InterpToString("substring(\"metadata\", 4, 3)"), "ada");
  EXPECT_EQ(InterpToString("substring(\"12345\", 1.5, 2.6)"), "234");
  EXPECT_EQ(InterpToString("substring(\"12345\", 0, 3)"), "12");
  EXPECT_EQ(InterpToString("substring(\"12345\", 5, -3)"), "");
  EXPECT_EQ(InterpToString("substring(\"12345\", -3, 5)"), "1");
  EXPECT_EQ(InterpToString("substring(\"12345\", 0 div 0e0, 3)"), "");
  EXPECT_EQ(InterpToString("substring(\"12345\", 1, 0 div 0e0)"), "");
  EXPECT_EQ(InterpToString("substring(\"12345\", -42, 1 div 0e0)"), "12345");
  // -INF start with INF length: round(-INF) + round(INF) is NaN, and
  // position < NaN holds for no position — empty, not the whole string.
  EXPECT_EQ(InterpToString("substring(\"12345\", -1 div 0e0, 1 div 0e0)"),
            "");
  // 2-argument form with infinite/negative starts.
  EXPECT_EQ(InterpToString("substring(\"12345\", -1 div 0e0)"), "12345");
  EXPECT_EQ(InterpToString("substring(\"12345\", 1 div 0e0)"), "");
  EXPECT_EQ(InterpToString("substring(\"12345\", 0 div 0e0)"), "");
  // fn:round rounds .5 toward positive infinity, including negatives.
  EXPECT_EQ(InterpToString("substring(\"12345\", 0.5)"), "12345");
  EXPECT_EQ(InterpToString("substring(\"12345\", -0.5, 3.5)"), "123");
  EXPECT_EQ(InterpToString("substring(\"12345\", 2.5, 0.4)"), "");
  // start+length overflowing past the end selects to the end.
  EXPECT_EQ(InterpToString("substring(\"12345\", 4, 1000000)"), "45");
  EXPECT_EQ(InterpToString("substring(\"12345\", 2, 1e308)"), "2345");
  // Empty-sequence first argument behaves as "".
  EXPECT_EQ(InterpToString("substring((), 1, 3)"), "");
  // Non-numeric start/length is a type error.
  EXPECT_EQ(InterpToString("substring(\"12345\", \"2\")"),
            "ERROR:XPTY0004");
  EXPECT_EQ(InterpToString("substring(\"12345\", 1, \"2\")"),
            "ERROR:XPTY0004");
}

// F&O 7.4.7 / 7.4.9: fn:substring-before / fn:substring-after edges, and
// their 3-arity collation forms (codepoint supported, others FOCH0002).
TEST(BuiltinStrings, SubstringBeforeAfterSpecEdgeCases) {
  // Zero-length search string: before -> "", after -> the whole string.
  EXPECT_EQ(InterpToString("substring-before(\"tattoo\", \"\")"), "");
  EXPECT_EQ(InterpToString("substring-after(\"tattoo\", \"\")"), "tattoo");
  // No match: both return "".
  EXPECT_EQ(InterpToString("substring-before(\"tattoo\", \"x\")"), "");
  EXPECT_EQ(InterpToString("substring-after(\"tattoo\", \"x\")"), "");
  // First occurrence wins.
  EXPECT_EQ(InterpToString("substring-before(\"tattoo\", \"t\")"), "");
  EXPECT_EQ(InterpToString("substring-after(\"tattoo\", \"tat\")"), "too");
  EXPECT_EQ(InterpToString("substring-after(\"tattoo\", \"o\")"), "o");
  // Empty-sequence arguments behave as "".
  EXPECT_EQ(InterpToString("substring-before((), \"a\")"), "");
  EXPECT_EQ(InterpToString("substring-after(\"ab\", ())"), "ab");
  // Multi-codepoint (UTF-8) needles match whole codepoints.
  EXPECT_EQ(InterpToString("substring-before(\"déjà\", \"à\")"), "déj");
  EXPECT_EQ(InterpToString("substring-after(\"déjà vu\", \"à\")"), " vu");
  // The codepoint collation is accepted; any other collation is FOCH0002.
  EXPECT_EQ(
      InterpToString("substring-before(\"a-b\", \"-\", \"http://www.w3.org/"
                     "2005/xpath-functions/collation/codepoint\")"),
      "a");
  EXPECT_EQ(
      InterpToString("substring-after(\"a-b\", \"-\", \"http://www.w3.org/"
                     "2005/xpath-functions/collation/codepoint\")"),
      "b");
  EXPECT_EQ(InterpToString(
                "substring-before(\"a-b\", \"-\", \"http://example.com/"
                "collation\")"),
            "ERROR:FOCH0002");
  EXPECT_EQ(InterpToString(
                "substring-after(\"a-b\", \"-\", \"http://example.com/"
                "collation\")"),
            "ERROR:FOCH0002");
}

TEST(BuiltinStrings, UnicodeCodepoints) {
  // string-length/substring count codepoints, not UTF-8 bytes.
  // 2-byte sequences:
  EXPECT_EQ(InterpToString("string-length(\"déjà vu\")"), "7");
  EXPECT_EQ(InterpToString("substring(\"déjà vu\", 5, 2)"), " v");
  EXPECT_EQ(InterpToString("substring(\"déjà\", 2)"), "éjà");
  EXPECT_EQ(InterpToString(
                "concat(substring(\"déjà\", 1, 2), substring(\"déjà\", 3))"),
            "déjà");
  // 3-byte sequences:
  EXPECT_EQ(InterpToString("string-length(\"日本語\")"), "3");
  EXPECT_EQ(InterpToString("substring(\"日本語\", 2, 1)"), "本");
  // 4-byte sequences (astral plane):
  EXPECT_EQ(InterpToString("string-length(\"a\U0001F600b\")"), "3");
  EXPECT_EQ(InterpToString("substring(\"a\U0001F600b\", 2, 1)"),
            "\U0001F600");
  EXPECT_EQ(InterpToString("substring(\"\U0001F600\U0001F601\U0001F602\", "
                           "2, 2)"),
            "\U0001F601\U0001F602");
}

TEST(BuiltinStrings, SubstringRounding) {
  // F&O 7.4.3: both arguments pass through fn:round, i.e. floor(x + 0.5).
  EXPECT_EQ(InterpToString("substring(\"abcde\", -0.5, 3)"), "ab");
  EXPECT_EQ(InterpToString("substring(\"12345\", 1.5, 2.6)"), "234");
  EXPECT_EQ(InterpToString("substring(\"abc\", number(\"NaN\"), 2)"), "");
  EXPECT_EQ(InterpToString("substring(\"abc\", 1, number(\"NaN\"))"), "");
}

TEST(BuiltinNumerics, RoundHalfTowardPositiveInfinity) {
  EXPECT_EQ(InterpToString("round(2.5)"), "3");
  EXPECT_EQ(InterpToString("round(-2.5)"), "-2");  // NOT -3 (C round())
  EXPECT_EQ(InterpToString("round(-3.5)"), "-3");
  EXPECT_EQ(InterpToString("string(round(number(\"NaN\")))"), "NaN");
  EXPECT_EQ(InterpToString("subsequence((1,2,3,4,5), -0.5, 3)"), "1 2");
}

TEST(BuiltinSequences, PositionalFunctions) {
  EXPECT_EQ(InterpToString("subsequence((1,2,3,4,5), 2)"), "2 3 4 5");
  EXPECT_EQ(InterpToString("subsequence((1,2,3), 0, 2)"), "1");
  EXPECT_EQ(InterpToString("insert-before((1,2), 1, (9))"), "9 1 2");
  EXPECT_EQ(InterpToString("insert-before((1,2), 9, (9))"), "1 2 9");
  EXPECT_EQ(InterpToString("remove((1,2,3), 2)"), "1 3");
  EXPECT_EQ(InterpToString("remove((1,2,3), 9)"), "1 2 3");
  EXPECT_EQ(InterpToString("index-of((), 1)"), "");
  EXPECT_EQ(InterpToString("reverse(())"), "");
}

TEST(BuiltinSequences, DistinctValuesSemantics) {
  // Cross-type numeric equality dedups; untyped dedups as string vs
  // numeric per promotion; NaN kept once.
  EXPECT_EQ(InterpToString("distinct-values((1, 1.0, 1e0))"), "1");
  EXPECT_EQ(InterpToString("count(distinct-values((number(\"NaN\"), "
                           "number(\"NaN\"))))"),
            "1");
  EXPECT_EQ(InterpToString("distinct-values((\"a\", \"a\", \"b\"))"), "a b");
}

TEST(BuiltinCardinality, CheckFunctions) {
  EXPECT_EQ(InterpToString("zero-or-one(())"), "");
  EXPECT_EQ(InterpToString("zero-or-one((1))"), "1");
  EXPECT_EQ(InterpToString("zero-or-one((1,2))"), "ERROR:FORG0003");
  EXPECT_EQ(InterpToString("one-or-more(())"), "ERROR:FORG0004");
  EXPECT_EQ(InterpToString("exactly-one((1,2))"), "ERROR:FORG0005");
  EXPECT_EQ(InterpToString("exactly-one((7))"), "7");
}

TEST(BuiltinNodes, NamesAndRoots) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml",
                       testutil::MustParseXml("<root><kid a=\"1\"/></root>"));
  EXPECT_EQ(InterpToString("name(doc(\"d.xml\")/root/kid)", &ctx), "kid");
  EXPECT_EQ(InterpToString("local-name(doc(\"d.xml\")/root/kid/@a)", &ctx),
            "a");
  EXPECT_EQ(InterpToString("name(())"), "");
  EXPECT_EQ(InterpToString(
                "count(root(doc(\"d.xml\")//kid)/root)", &ctx),
            "1");
}

TEST(BuiltinErrors, FnError) {
  EXPECT_EQ(InterpToString("error()"), "ERROR:FOER0000");
  EXPECT_EQ(InterpToString("if (false()) then error() else 1"), "1");
}

TEST(BuiltinFs, ConvertOperandExposed) {
  // fs:convert-operand is callable directly (used by the formal-semantics
  // tests): untyped + numeric second operand -> double.
  EXPECT_EQ(InterpToString(
                "fs:convert-operand(\"3\" cast as xdt:untypedAtomic, 1) "
                "instance of xs:double"),
            "true");
  EXPECT_EQ(InterpToString(
                "fs:convert-operand(\"3\" cast as xdt:untypedAtomic, \"s\") "
                "instance of xs:string"),
            "true");
}

TEST(BuiltinDocs, DocFailsOnMissingFile) {
  EXPECT_EQ(InterpToString("doc(\"/no/such/file.xml\")"), "ERROR:FODC0002");
}

}  // namespace
}  // namespace xqc
