// Tests for the pull-based iterator execution mode (src/runtime/iterator.h):
//  - iterator and materializing modes produce identical results, and
//  - early-terminating consumers (fn:exists, [1] heads, fn:subsequence,
//    quantifiers) touch only a prefix of the input in streaming mode.
#include <gtest/gtest.h>

#include <string>

#include "src/engine/engine.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

// Early-exit stats run against a large doc so the <=1% bound is meaningful;
// equivalence sweeps (which include an unoptimized nested-loop self-join,
// quadratic in the doc size) use a small one.
constexpr int kItems = 2000;
constexpr int kSmallItems = 200;

// <doc><item><id>1</id><grp>1</grp></item>...</doc>
std::string BigDoc(int n) {
  std::string xml = "<doc>";
  for (int i = 1; i <= n; i++) {
    std::string id = std::to_string(i);
    xml += "<item><id>" + id + "</id><grp>" + std::to_string(i % 7) +
           "</grp></item>";
  }
  xml += "</doc>";
  return xml;
}

void BindDoc(DynamicContext* ctx, int items = kItems) {
  static const std::string kXml = BigDoc(kItems);
  static const std::string kSmallXml = BigDoc(kSmallItems);
  NodePtr doc = MustParseXml(items == kSmallItems ? kSmallXml : kXml);
  ctx->BindVariable(Symbol("D"), {Item(doc)});
}

std::string Prologue(const std::string& query) {
  return "declare variable $D external; " + query;
}

// Runs `query` under `options`, returning the serialized result (errors as
// "ERROR:<code>") and the MapFromItem tuple count through *source_tuples.
std::string RunWith(const std::string& query, const EngineOptions& options,
                    int64_t* source_tuples = nullptr, int items = kItems) {
  Engine engine;
  DynamicContext ctx;
  BindDoc(&ctx, items);
  Result<PreparedQuery> q = engine.Prepare(Prologue(query), options);
  if (!q.ok()) return "PREPARE-ERROR:" + q.status().code();
  Result<std::string> r = q.value().ExecuteToString(&ctx);
  if (source_tuples != nullptr) {
    *source_tuples = q.value().last_exec_stats().source_tuples;
  }
  return r.ok() ? r.value() : "ERROR:" + r.status().code();
}

EngineOptions Streaming(JoinImpl join = JoinImpl::kHash) {
  return {/*use_algebra=*/true, /*optimize=*/true, join, ExecMode::kStreaming};
}

EngineOptions Materialize(JoinImpl join = JoinImpl::kHash) {
  return {/*use_algebra=*/true, /*optimize=*/true, join,
          ExecMode::kMaterialize};
}

// --- Equivalence: both modes agree on queries spanning every streamed
// operator (Select, Map, MapConcat, Product, joins, MapIndex) and the
// pipeline breakers (GroupBy, OrderBy). ---

const char* kEquivalenceQueries[] = {
    "count(for $x in $D//item return $x)",
    "for $x in $D//item where number($x/id) > 195 return string($x/id)",
    "for $x in $D//item[number($x/id) <= 3] return <v>{$x/id/text()}</v>",
    // let + for (MapConcat):
    "for $x in $D//item let $i := number($x/id) where $i > 197 "
    "return $i * 2",
    // outer for over a possibly-empty inner (OMapConcat):
    "for $x in $D//item where number($x/id) > 198 "
    "return count(for $y in $x/nothing return $y)",
    // positional (MapIndex):
    "(for $x in $D//item return string($x/id))[5]",
    "for $x at $p in $D//item where $p <= 3 return $p",
    // join between two streams:
    "for $x in $D//item, $y in $D//item "
    "where $x/id = $y/id and number($x/id) > 196 return string($y/id)",
    // pipeline breakers:
    "for $x in $D//item where number($x/id) > 194 "
    "order by number($x/id) descending return string($x/id)",
    "count(distinct-values(for $x in $D//item return string($x/grp)))",
    // quantifiers:
    "some $x in $D//item satisfies number($x/id) = 7",
    "every $x in $D//item satisfies number($x/id) > 0",
    // early-exit heads must still produce identical output:
    "exists(for $x in $D//item return $x)",
    "subsequence(for $x in $D//item return string($x/id), 4, 3)",
    // conditional over a stream:
    "if (for $x in $D//item where number($x/id) = 3 return $x) "
    "then \"yes\" else \"no\"",
};

TEST(StreamingEquivalence, BothModesAgree) {
  const JoinImpl kJoins[] = {JoinImpl::kNestedLoop, JoinImpl::kHash,
                             JoinImpl::kSort};
  for (const char* query : kEquivalenceQueries) {
    for (JoinImpl join : kJoins) {
      std::string materialized =
          RunWith(query, Materialize(join), nullptr, kSmallItems);
      std::string streamed =
          RunWith(query, Streaming(join), nullptr, kSmallItems);
      EXPECT_EQ(streamed, materialized) << "query: " << query;
    }
  }
}

TEST(StreamingEquivalence, CorpusStyleUnoptimized) {
  EngineOptions s{true, false, JoinImpl::kNestedLoop, ExecMode::kStreaming};
  EngineOptions m{true, false, JoinImpl::kNestedLoop, ExecMode::kMaterialize};
  for (const char* query : kEquivalenceQueries) {
    EXPECT_EQ(RunWith(query, s, nullptr, kSmallItems),
              RunWith(query, m, nullptr, kSmallItems))
        << "query: " << query;
  }
}

// --- Early termination: streaming touches <=1% of the tuples the
// materializing mode produces. ---

void CheckEarlyExit(const std::string& query, const char* expected) {
  int64_t streamed_tuples = 0;
  int64_t materialized_tuples = 0;
  std::string streamed = RunWith(query, Streaming(), &streamed_tuples);
  std::string materialized =
      RunWith(query, Materialize(), &materialized_tuples);
  EXPECT_EQ(streamed, expected) << query;
  EXPECT_EQ(materialized, expected) << query;
  ASSERT_GE(materialized_tuples, kItems) << query;
  EXPECT_LE(streamed_tuples * 100, materialized_tuples)
      << query << "\nstreaming touched " << streamed_tuples << " of "
      << materialized_tuples << " tuples";
}

TEST(StreamingEarlyExit, Exists) {
  CheckEarlyExit("exists(for $x in $D//item return $x)", "true");
}

TEST(StreamingEarlyExit, ExistsWithEarlyMatch) {
  CheckEarlyExit(
      "exists(for $x in $D//item where number($x/id) >= 1 return $x)", "true");
}

TEST(StreamingEarlyExit, FirstItemHead) {
  CheckEarlyExit("(for $x in $D//item return string($x/id))[1]", "1");
}

TEST(StreamingEarlyExit, Subsequence) {
  CheckEarlyExit("subsequence(for $x in $D//item return string($x/id), 1, 3)",
                 "1 2 3");
}

TEST(StreamingEarlyExit, SubsequenceFractional) {
  // round(1.5)=2, round(2.6)=3: items 2..4.
  CheckEarlyExit(
      "subsequence(for $x in $D//item return string($x/id), 1.5, 2.6)",
      "2 3 4");
}

TEST(StreamingEarlyExit, SomeQuantifier) {
  CheckEarlyExit("some $x in $D//item satisfies number($x/id) = 2", "true");
}

TEST(StreamingEarlyExit, EveryQuantifierCounterexample) {
  CheckEarlyExit("every $x in $D//item satisfies number($x/id) > 5", "false");
}

TEST(StreamingEarlyExit, ConditionalTest) {
  CheckEarlyExit(
      "if (for $x in $D//item return $x) then \"yes\" else \"no\"", "yes");
}

TEST(StreamingEarlyExit, BumpsEarlyStopStat) {
  Engine engine;
  DynamicContext ctx;
  BindDoc(&ctx);
  Result<PreparedQuery> q = engine.Prepare(
      Prologue("exists(for $x in $D//item return $x)"), Streaming());
  ASSERT_OK(q);
  Result<std::string> r = q.value().ExecuteToString(&ctx);
  ASSERT_OK(r);
  EXPECT_GT(q.value().last_exec_stats().streaming_early_stops, 0);
}

// Full consumption streams every tuple exactly once: no early stop, and the
// same tuple count as materializing.
TEST(StreamingEarlyExit, FullScanTouchesEverything) {
  int64_t streamed_tuples = 0;
  int64_t materialized_tuples = 0;
  const std::string query = "count(for $x in $D//item return $x)";
  EXPECT_EQ(RunWith(query, Streaming(), &streamed_tuples),
            RunWith(query, Materialize(), &materialized_tuples));
  EXPECT_EQ(streamed_tuples, materialized_tuples);
  EXPECT_GE(streamed_tuples, kItems);
}

// --- ResultStream: pulling a few items evaluates only a prefix. ---

TEST(ResultStream, PartialPullIsLazy) {
  Engine engine;
  DynamicContext ctx;
  BindDoc(&ctx);
  Result<PreparedQuery> q = engine.Prepare(
      Prologue("for $x in $D//item return string($x/id)"), Streaming());
  ASSERT_OK(q);
  Result<ResultStream> rs = q.value().ExecuteStream(&ctx);
  ASSERT_OK(rs);
  for (int i = 1; i <= 5; i++) {
    Item item;
    Result<bool> has = rs.value().Next(&item);
    ASSERT_OK(has);
    ASSERT_TRUE(has.value());
    EXPECT_EQ(item.atomic().AsString(), std::to_string(i));
  }
  // Only the pulled prefix (plus at most a small lookahead) was evaluated.
  EXPECT_LE(rs.value().stats().source_tuples, 10);
}

TEST(ResultStream, DrainMatchesExecute) {
  Engine engine;
  DynamicContext ctx;
  BindDoc(&ctx);
  const std::string query =
      Prologue("for $x in $D//item where number($x/id) <= 7 "
               "return string($x/id)");
  Result<PreparedQuery> q = engine.Prepare(query, Streaming());
  ASSERT_OK(q);
  Result<ResultStream> rs = q.value().ExecuteStream(&ctx);
  ASSERT_OK(rs);
  Result<Sequence> drained = rs.value().Drain();
  ASSERT_OK(drained);
  DynamicContext ctx2;
  BindDoc(&ctx2);
  Result<Sequence> full = q.value().Execute(&ctx2);
  ASSERT_OK(full);
  ASSERT_EQ(drained.value().size(), full.value().size());
  for (size_t i = 0; i < full.value().size(); i++) {
    EXPECT_EQ(drained.value()[i].atomic().AsString(),
              full.value()[i].atomic().AsString());
  }
}

// Materializing mode serves ExecuteStream from a buffer with identical
// contents.
TEST(ResultStream, MaterializedFallbackAgrees) {
  Engine engine;
  DynamicContext ctx;
  BindDoc(&ctx);
  const std::string query =
      Prologue("for $x in $D//item where number($x/id) > 1995 "
               "return string($x/id)");
  Result<PreparedQuery> qs = engine.Prepare(query, Streaming());
  Result<PreparedQuery> qm = engine.Prepare(query, Materialize());
  ASSERT_OK(qs);
  ASSERT_OK(qm);
  Result<ResultStream> rss = qs.value().ExecuteStream(&ctx);
  ASSERT_OK(rss);
  Result<Sequence> a = rss.value().Drain();
  DynamicContext ctx2;
  BindDoc(&ctx2);
  Result<ResultStream> rsm = qm.value().ExecuteStream(&ctx2);
  ASSERT_OK(rsm);
  Result<Sequence> b = rsm.value().Drain();
  ASSERT_OK(a);
  ASSERT_OK(b);
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); i++) {
    EXPECT_EQ(a.value()[i].atomic().AsString(),
              b.value()[i].atomic().AsString());
  }
}

}  // namespace
}  // namespace xqc
