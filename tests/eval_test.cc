// Direct tests of the plan evaluator's context handling: global evaluation
// order, external bindings, the function-parameter algebra context, typed
// evaluation errors (tuple operators in item context and vice versa), and
// operator-level error propagation.
#include <gtest/gtest.h>

#include "src/algebra/op.h"
#include "src/engine/engine.h"
#include "src/runtime/eval.h"
#include "src/xml/serializer.h"
#include "test_util.h"

namespace xqc {
namespace {

TEST(EvalContextTest, GlobalsEvaluateInDeclarationOrder) {
  CompiledQuery q;
  q.globals.emplace_back(Symbol("a"), OpScalar(AtomicValue::Integer(2)));
  q.globals.emplace_back(
      Symbol("b"),
      OpCall(Symbol("op:times"),
             {OpVar(Symbol("a")), OpScalar(AtomicValue::Integer(10))}));
  q.plan = OpCall(Symbol("op:plus"),
                  {OpVar(Symbol("a")), OpVar(Symbol("b"))});
  DynamicContext ctx;
  PlanEvaluator eval(&q, &ctx, {});
  Result<Sequence> r = eval.Run();
  ASSERT_OK(r);
  EXPECT_EQ(r.value()[0].atomic().AsInt(), 22);
}

TEST(EvalContextTest, ExternalGlobalsComeFromContext) {
  CompiledQuery q;
  q.globals.emplace_back(Symbol("x"), nullptr);  // external
  q.plan = OpVar(Symbol("x"));
  DynamicContext ctx;
  // Unbound external is an error...
  {
    PlanEvaluator eval(&q, &ctx, {});
    Result<Sequence> r = eval.Run();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), "XPDY0002");
  }
  // ...bound external resolves.
  ctx.BindVariable(Symbol("x"), {AtomicValue::Integer(9)});
  PlanEvaluator eval(&q, &ctx, {});
  Result<Sequence> r = eval.Run();
  ASSERT_OK(r);
  EXPECT_EQ(r.value()[0].atomic().AsInt(), 9);
}

TEST(EvalContextTest, FunctionParametersShadowGlobals) {
  CompiledQuery q;
  q.globals.emplace_back(Symbol("v"), OpScalar(AtomicValue::Integer(1)));
  CompiledFunction f;
  f.name = Symbol("local:f");
  f.params = {Symbol("v")};
  f.param_types = {std::nullopt};
  f.plan = OpVar(Symbol("v"));  // must see the parameter, not the global
  q.functions.emplace(f.name, f);
  q.plan = OpCall(Symbol("local:f"), {OpScalar(AtomicValue::Integer(42))});
  DynamicContext ctx;
  PlanEvaluator eval(&q, &ctx, {});
  Result<Sequence> r = eval.Run();
  ASSERT_OK(r);
  EXPECT_EQ(r.value()[0].atomic().AsInt(), 42);
}

TEST(EvalContextTest, FunctionArityAndTypeChecks) {
  CompiledQuery q;
  CompiledFunction f;
  f.name = Symbol("local:g");
  f.params = {Symbol("p")};
  f.param_types = {
      SequenceType::One(ItemTest::Atomic(AtomicType::kInteger))};
  f.return_type = SequenceType::One(ItemTest::Atomic(AtomicType::kString));
  f.plan = OpVar(Symbol("p"));  // returns an integer: violates return type
  q.functions.emplace(f.name, f);
  DynamicContext ctx;
  // Wrong arity.
  q.plan = OpCall(Symbol("local:g"), {});
  {
    PlanEvaluator eval(&q, &ctx, {});
    EXPECT_EQ(eval.Run().status().code(), "XPST0017");
  }
  // Wrong argument type.
  q.plan = OpCall(Symbol("local:g"), {OpScalar(AtomicValue::String("s"))});
  {
    PlanEvaluator eval(&q, &ctx, {});
    EXPECT_EQ(eval.Run().status().code(), "XPTY0004");
  }
  // Return-type violation.
  q.plan = OpCall(Symbol("local:g"), {OpScalar(AtomicValue::Integer(1))});
  {
    PlanEvaluator eval(&q, &ctx, {});
    EXPECT_EQ(eval.Run().status().code(), "XPTY0004");
  }
}

TEST(EvalTypingTest, TupleOperatorInItemContextIsInternalError) {
  CompiledQuery q;
  q.plan = OpSelect(OpScalar(AtomicValue::Boolean(true)), OpEmptyTuples());
  DynamicContext ctx;
  PlanEvaluator eval(&q, &ctx, {});
  Result<Sequence> r = eval.Run();  // Select evaluated as items
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().kind(), StatusKind::kInternal);
}

TEST(EvalTypingTest, ItemOperatorInTableContextIsInternalError) {
  CompiledQuery q;
  q.plan = OpMapToItem(OpIn(), OpScalar(AtomicValue::Integer(1)));
  DynamicContext ctx;
  PlanEvaluator eval(&q, &ctx, {});
  Result<Sequence> r = eval.Run();  // Scalar evaluated as a table
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().kind(), StatusKind::kInternal);
}

TEST(EvalErrorsTest, ErrorsInsideDependentsPropagate) {
  // An error raised per-tuple inside a Select predicate aborts evaluation.
  OpPtr seq = MakeOp(OpKind::kSequence);
  seq->inputs = {OpScalar(AtomicValue::Integer(1)),
                 OpScalar(AtomicValue::Integer(0))};
  OpPtr stream = OpMapFromItem(OpTupleConstruct({Symbol("x")}, {OpIn()}), seq);
  OpPtr pred = OpCall(
      Symbol("op:general-eq"),
      {OpCall(Symbol("op:idiv"),
              {OpScalar(AtomicValue::Integer(1)), OpInField(Symbol("x"))}),
       OpScalar(AtomicValue::Integer(1))});
  CompiledQuery q;
  q.plan = OpMapToItem(OpInField(Symbol("x")),
                       OpSelect(std::move(pred), std::move(stream)));
  DynamicContext ctx;
  PlanEvaluator eval(&q, &ctx, {});
  Result<Sequence> r = eval.Run();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "FOAR0001");
}

TEST(EvalErrorsTest, OrderByMultiItemKeyIsTypeError) {
  OpPtr stream = OpMapFromItem(OpTupleConstruct({Symbol("x")}, {OpIn()}),
                               OpScalar(AtomicValue::Integer(1)));
  OpPtr ob = MakeOp(OpKind::kOrderBy);
  OrderSpecOp spec;
  OpPtr two = MakeOp(OpKind::kSequence);
  two->inputs = {OpScalar(AtomicValue::Integer(1)),
                 OpScalar(AtomicValue::Integer(2))};
  spec.key = two;
  ob->specs.push_back(std::move(spec));
  ob->inputs = {std::move(stream)};
  CompiledQuery q;
  q.plan = OpMapToItem(OpInField(Symbol("x")), ob);
  DynamicContext ctx;
  PlanEvaluator eval(&q, &ctx, {});
  EXPECT_EQ(eval.Run().status().code(), "XPTY0004");
}

TEST(EvalErrorsTest, GroupByRejectsNonIntegerIndexField) {
  OpPtr stream = OpMapFromItem(OpTupleConstruct({Symbol("k")}, {OpIn()}),
                               OpScalar(AtomicValue::String("not-an-int")));
  OpPtr flagged = OpOMap(Symbol("null"), std::move(stream));
  OpPtr gb = OpGroupBy(Symbol("a"), {Symbol("k")}, {Symbol("null")},
                       OpCall(Symbol("fn:count"), {OpIn()}),
                       OpInField(Symbol("k")), std::move(flagged));
  CompiledQuery q;
  q.plan = OpMapToItem(OpInField(Symbol("a")), gb);
  DynamicContext ctx;
  PlanEvaluator eval(&q, &ctx, {});
  Result<Sequence> r = eval.Run();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().kind(), StatusKind::kInternal);
}

TEST(EvalCachingTest, IndependentJoinInputsAreReused) {
  // A correlated subplan with an independent right join input builds the
  // inner index once (the caching behind Table 5's deep-nesting results).
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", testutil::MustParseXml(
      "<r><p k=\"1\"/><p k=\"2\"/><p k=\"3\"/>"
      "<q k=\"1\"/><q k=\"3\"/></r>"));
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(
      "let $r := doc(\"d.xml\")/r return "
      "for $p in $r/p "
      "let $m := for $q in $r/q where $q/@k = $p/@k return $q "
      "let $m2 := for $q in $r/q where $q/@k = $p/@k return $q "
      "return count($m) + count($m2)");
  ASSERT_OK(q);
  Result<std::string> r = q.value().ExecuteToString(&ctx);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "2 0 2");
}

TEST(EvalStatsTest, CountersAccumulateAcrossOneExecution) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", testutil::MustParseXml(
      "<r><a k=\"1\"/><b k=\"1\"/></r>"));
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(
      "let $r := doc(\"d.xml\")/r return ("
      "count(for $a in $r/a, $b in $r/b where $a/@k = $b/@k return 1), "
      "count(for $a in $r/a, $b in $r/b where $a/@k = $b/@k return 1))");
  ASSERT_OK(q);
  ASSERT_OK(q.value().Execute(&ctx));
  EXPECT_EQ(q.value().last_exec_stats().hash_joins, 2);
}

}  // namespace
}  // namespace xqc
