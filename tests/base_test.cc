// Tests for the base substrate: Status/Result, symbols, string utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "src/base/status.h"
#include "src/base/strutil.h"
#include "src/base/symbol.h"
#include "src/base/xqc_codes.h"

namespace xqc {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, XQueryErrorCarriesCode) {
  Status s = Status::XQueryError("XPTY0004", "bad type");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), "XPTY0004");
  EXPECT_EQ(s.ToString(), "[XPTY0004] bad type");
}

TEST(StatusTest, ResultHoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(StatusTest, ResultHoldsError) {
  Result<int> r(Status::ParseError("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "XPST0003");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Internal("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  XQC_ASSIGN_OR_RETURN(int h, Half(x));
  XQC_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(SymbolTest, InterningIsIdempotent) {
  Symbol a("person");
  Symbol b("person");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.str(), "person");
}

TEST(SymbolTest, DistinctNamesDistinctIds) {
  Symbol a("alpha"), b("beta");
  EXPECT_NE(a, b);
  EXPECT_NE(a.id(), b.id());
}

TEST(SymbolTest, EmptySymbol) {
  Symbol e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.str(), "");
  EXPECT_EQ(e, Symbol(""));
}

TEST(StrUtilTest, TrimXmlSpace) {
  EXPECT_EQ(TrimXmlSpace("  a b \t\n"), "a b");
  EXPECT_EQ(TrimXmlSpace(""), "");
  EXPECT_EQ(TrimXmlSpace(" \r\n "), "");
}

TEST(StrUtilTest, NormalizeSpace) {
  EXPECT_EQ(NormalizeSpace("  a   b\t c  "), "a b c");
  EXPECT_EQ(NormalizeSpace(""), "");
}

TEST(StrUtilTest, FormatDoubleIntegral) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-2.0), "-2");
  EXPECT_EQ(FormatDouble(0.0), "0");
}

TEST(StrUtilTest, FormatDoubleSpecials) {
  EXPECT_EQ(FormatDouble(std::nan("")), "NaN");
  EXPECT_EQ(FormatDouble(HUGE_VAL), "INF");
  EXPECT_EQ(FormatDouble(-HUGE_VAL), "-INF");
}

TEST(StrUtilTest, FormatDoubleRoundTrips) {
  for (double d : {0.1, 1.5, 3.14159265358979, -42.25, 1e-7, 123456.789}) {
    double back;
    ASSERT_TRUE(ParseDouble(FormatDouble(d), &back));
    EXPECT_EQ(back, d) << FormatDouble(d);
  }
}

TEST(StrUtilTest, ParseDoubleSpecials) {
  double d;
  ASSERT_TRUE(ParseDouble("INF", &d));
  EXPECT_TRUE(std::isinf(d) && d > 0);
  ASSERT_TRUE(ParseDouble("-INF", &d));
  EXPECT_TRUE(std::isinf(d) && d < 0);
  ASSERT_TRUE(ParseDouble("NaN", &d));
  EXPECT_TRUE(std::isnan(d));
  EXPECT_FALSE(ParseDouble("1.2.3", &d));
  EXPECT_FALSE(ParseDouble("", &d));
}

TEST(StrUtilTest, ParseInt) {
  int64_t v;
  ASSERT_TRUE(ParseInt(" 42 ", &v));
  EXPECT_EQ(v, 42);
  ASSERT_TRUE(ParseInt("-7", &v));
  EXPECT_EQ(v, -7);
  ASSERT_TRUE(ParseInt("+9", &v));
  EXPECT_EQ(v, 9);
  EXPECT_FALSE(ParseInt("4.2", &v));
  EXPECT_FALSE(ParseInt("abc", &v));
}

TEST(StrUtilTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b&c>d", false), "a&lt;b&amp;c&gt;d");
  EXPECT_EQ(XmlEscape("say \"hi\"", true), "say &quot;hi&quot;");
  EXPECT_EQ(XmlEscape("say \"hi\"", false), "say \"hi\"");
}

TEST(StrUtilTest, Split) {
  auto parts = Split("a/b//c", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(StrUtilTest, PercentDecode) {
  EXPECT_EQ(PercentDecode("plain"), "plain");
  EXPECT_EQ(PercentDecode("a%20b"), "a b");
  EXPECT_EQ(PercentDecode("%2Fetc%2fhosts"), "/etc/hosts");  // both cases
  EXPECT_EQ(PercentDecode("100%25"), "100%");
  EXPECT_EQ(PercentDecode(""), "");
}

TEST(StrUtilTest, PercentDecodeMalformedEscapesPassThrough) {
  // The shared contract (NormalizeDocUri and the HTTP request-target
  // parser both rely on it): a '%' not followed by two hex digits is
  // literal, never an error and never dropped.
  EXPECT_EQ(PercentDecode("%"), "%");
  EXPECT_EQ(PercentDecode("%2"), "%2");
  EXPECT_EQ(PercentDecode("%zz"), "%zz");
  EXPECT_EQ(PercentDecode("%2x"), "%2x");
  EXPECT_EQ(PercentDecode("a%%20b"), "a% b");  // first % literal, then %20
  EXPECT_EQ(PercentDecode("%%"), "%%");
  EXPECT_EQ(PercentDecode("trail%"), "trail%");
}

// ---- XQC error-code registry (src/base/xqc_codes.h) -------------------

TEST(XqcCodeRegistry, CodesAreUniqueAndWellFormed) {
  for (size_t i = 0; i < kXqcCodeCount; i++) {
    const XqcCodeInfo& info = kXqcCodeTable[i];
    const std::string code = info.code;
    ASSERT_EQ(code.size(), 7u) << code;
    EXPECT_EQ(code.substr(0, 3), "XQC") << code;
    for (size_t d = 3; d < 7; d++) {
      EXPECT_TRUE(code[d] >= '0' && code[d] <= '9') << code;
    }
    EXPECT_NE(info.symbol[0], '\0');
    EXPECT_NE(info.meaning[0], '\0');
    EXPECT_NE(info.origin[0], '\0');
    for (size_t j = i + 1; j < kXqcCodeCount; j++) {
      EXPECT_STRNE(info.code, kXqcCodeTable[j].code)
          << "duplicate wire code at rows " << i << " and " << j;
      EXPECT_STRNE(info.symbol, kXqcCodeTable[j].symbol)
          << "duplicate symbol at rows " << i << " and " << j;
    }
  }
}

TEST(XqcCodeRegistry, TableIsDenseAndOrdered) {
  // XQC0001..XQC00NN with no gaps: new codes are appended, never recycled.
  for (size_t i = 0; i < kXqcCodeCount; i++) {
    EXPECT_EQ(std::string(kXqcCodeTable[i].code),
              "XQC" + std::string(3 - std::to_string(i + 1).size(), '0') +
                  "0" + std::to_string(i + 1))
        << "row " << i;
  }
  // Every exported constant appears in the table.
  const char* kConstants[] = {
      kGuardTimeoutCode,    kGuardCancelledCode,
      kGuardMemoryCode,     kGuardOutputCode,
      kGuardRecursionCode,  kGuardStepsCode,
      kServiceOverloadedCode, kStoreRetriesExhaustedCode,
      kStoreQuarantinedCode, kTenantOverQuotaCode,
      kStoreBreakerOpenCode, kServiceDrainingCode,
      kMalformedRequestCode,
  };
  ASSERT_EQ(sizeof(kConstants) / sizeof(kConstants[0]), kXqcCodeCount);
  for (const char* c : kConstants) {
    bool found = false;
    for (size_t i = 0; i < kXqcCodeCount; i++) {
      if (std::string(kXqcCodeTable[i].code) == c) found = true;
    }
    EXPECT_TRUE(found) << c << " missing from kXqcCodeTable";
  }
}

}  // namespace
}  // namespace xqc
