// Tests for XML serialization (compact and pretty-printed) and the
// Serialize I/O operator's file output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/algebra/op.h"
#include "src/runtime/eval.h"
#include "src/xml/serializer.h"
#include "src/xml/xml_parser.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

TEST(SerializerTest, CompactRoundTripsStructure) {
  const char* kDocs[] = {
      "<a/>",
      "<a x=\"1\" y=\"2\"/>",
      "<a><b><c>deep</c></b></a>",
      "<a>text<b/>tail</a>",
      "<a><!--c--><?pi data?></a>",
      "<a>&amp;&lt;&gt;</a>",
  };
  for (const char* xml : kDocs) {
    XmlParseOptions opts;
    opts.strip_boundary_whitespace = false;
    Result<NodePtr> doc = ParseXml(xml, opts);
    ASSERT_OK(doc);
    EXPECT_EQ(SerializeNode(*doc.value()), xml);
  }
}

TEST(SerializerTest, IndentedOutput) {
  NodePtr doc = MustParseXml("<a><b><c>x</c></b><d/></a>");
  SerializeOptions opts;
  opts.indent = true;
  EXPECT_EQ(SerializeNode(*doc, opts),
            "<a>\n"
            "  <b>\n"
            "    <c>x</c>\n"
            "  </b>\n"
            "  <d/>\n"
            "</a>");
}

TEST(SerializerTest, TextOnlyElementsStayInline) {
  NodePtr doc = MustParseXml("<a><b>only text</b></a>");
  SerializeOptions opts;
  opts.indent = true;
  EXPECT_EQ(SerializeNode(*doc, opts), "<a>\n  <b>only text</b>\n</a>");
}

TEST(SerializerTest, AttributeNodeAlone) {
  NodePtr attr = NewAttribute(Symbol("k"), "v\"w");
  EXPECT_EQ(SerializeNode(*attr), "k=\"v&quot;w\"");
}

TEST(SerializerTest, RepairsCommentDoubleHyphen) {
  // "--" is illegal inside an XML comment; the serializer breaks the pair
  // with a space so the output is well-formed and re-parses.
  EXPECT_EQ(SerializeNode(*NewComment("a--b")), "<!--a- -b-->");
  EXPECT_EQ(SerializeNode(*NewComment("a----b")), "<!--a- - - -b-->");
  // A trailing "-" would produce "--->"; a space is appended.
  EXPECT_EQ(SerializeNode(*NewComment("ends-")), "<!--ends- -->");
  EXPECT_EQ(SerializeNode(*NewComment("clean")), "<!--clean-->");
}

TEST(SerializerTest, RepairsPIEndMarker) {
  EXPECT_EQ(SerializeNode(*NewPI(Symbol("foo"), "x?>y")), "<?foo x? >y?>");
  EXPECT_EQ(SerializeNode(*NewPI(Symbol("foo"), "plain")), "<?foo plain?>");
}

TEST(SerializerTest, RepairedCommentAndPIReparse) {
  NodePtr doc = MustParseXml("<r/>");
  doc->children[0]->children.push_back(NewComment("a--b-"));
  doc->children[0]->children.push_back(NewPI(Symbol("p"), "q?>r"));
  std::string xml = SerializeNode(*doc);
  NodePtr again = MustParseXml(xml);
  EXPECT_EQ(SerializeNode(*again), xml);
}

TEST(SerializerTest, SequenceSpacingRules) {
  NodePtr doc = MustParseXml("<x/>");
  // atomic atomic -> space; atomic node -> no space; node atomic -> none.
  Sequence s = {AtomicValue::Integer(1), AtomicValue::Integer(2),
                doc->children[0], AtomicValue::String("t")};
  EXPECT_EQ(SerializeSequence(s), "1 2<x/>t");
  EXPECT_EQ(SerializeSequence({}), "");
}

TEST(SerializeOperatorTest, WritesFileAndReturnsEmpty) {
  std::string path = ::testing::TempDir() + "/xqc_serialize_test.xml";
  std::remove(path.c_str());

  OpPtr elem = MakeOp(OpKind::kElement);
  elem->name = Symbol("out");
  elem->inputs = {OpScalar(AtomicValue::Integer(42))};
  OpPtr ser = MakeOp(OpKind::kSerialize);
  ser->inputs = {OpScalar(AtomicValue::String(path)), elem};

  DynamicContext ctx;
  CompiledQuery q;
  q.plan = ser;
  PlanEvaluator eval(&q, &ctx, {});
  Result<Sequence> r = eval.Run();
  ASSERT_OK(r);
  EXPECT_TRUE(r.value().empty());  // Serialize(URI, S(i)) -> ()

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "<out>42</out>");
  std::remove(path.c_str());
}

TEST(SerializeOperatorTest, ErrorsOnUnwritablePath) {
  OpPtr ser = MakeOp(OpKind::kSerialize);
  ser->inputs = {OpScalar(AtomicValue::String("/no/such/dir/file.xml")),
                 OpScalar(AtomicValue::Integer(1))};
  DynamicContext ctx;
  CompiledQuery q;
  q.plan = ser;
  PlanEvaluator eval(&q, &ctx, {});
  Result<Sequence> r = eval.Run();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), "FODC0002");
}

TEST(ParseSerializeRoundTrip, FileSystem) {
  // Serialize then Parse from the filesystem round-trips.
  std::string path = ::testing::TempDir() + "/xqc_roundtrip.xml";
  {
    std::ofstream out(path);
    out << "<data><v>7</v><v>9</v></data>";
  }
  Result<NodePtr> doc = ParseXmlFile(path);
  ASSERT_OK(doc);
  EXPECT_EQ(SerializeNode(*doc.value()), "<data><v>7</v><v>9</v></data>");
  std::remove(path.c_str());
  EXPECT_FALSE(ParseXmlFile(path).ok());  // deleted -> IO error
}

}  // namespace
}  // namespace xqc
