// Tests for the Figure 5 rewritings (Section 5): each rule in isolation on
// hand-built plans, and the paper's complete derivations — the Figure 4
// GroupBy example reaching its published P2-shaped plan, and the Section 2
// Q8 variant reaching GroupBy + LOuterJoin + MapIndexStep with the type
// operations kept inside the GroupBy.
#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/opt/optimizer.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"
#include "test_util.h"

namespace xqc {
namespace {

std::string Optimized(OpPtr plan, OptimizerStats* stats = nullptr) {
  return OpToString(*OptimizePlan(std::move(plan), stats));
}

/// Builds MapFromItem{[f:IN]}(Var[v]) — an independent tuple stream.
OpPtr Stream(const char* field, const char* var) {
  return OpMapFromItem(OpTupleConstruct({Symbol(field)}, {OpIn()}),
                       OpVar(Symbol(var)));
}

// ---- standard rules ----------------------------------------------------------

TEST(RewriteRules, RemoveMap) {
  // MapConcat{Op1}([]) => Op1.
  OptimizerStats stats;
  EXPECT_EQ(Optimized(OpMapConcat(Stream("p", "people"), OpEmptyTuples()),
                      &stats),
            "MapFromItem{[p:IN]}(Var[people])");
  EXPECT_EQ(stats.remove_map, 1);
}

TEST(RewriteRules, InsertProduct) {
  // MapConcat{Op1}(Op2) => Product(Op2, Op1) when Op1 is independent.
  OptimizerStats stats;
  EXPECT_EQ(Optimized(OpMapConcat(Stream("t", "auctions"), Stream("p", "people")),
                      &stats),
            "Product(MapFromItem{[p:IN]}(Var[people]),"
            "MapFromItem{[t:IN]}(Var[auctions]))");
  EXPECT_EQ(stats.insert_product, 1);
}

TEST(RewriteRules, InsertProductRequiresIndependence) {
  // A dependent stream (reads IN#p) must stay a MapConcat.
  OpPtr dep = OpMapFromItem(OpTupleConstruct({Symbol("t")}, {OpIn()}),
                            OpInField(Symbol("p")));
  OptimizerStats stats;
  std::string out =
      Optimized(OpMapConcat(std::move(dep), Stream("p", "people")), &stats);
  EXPECT_NE(out.find("MapConcat{"), std::string::npos) << out;
  EXPECT_EQ(stats.insert_product, 0);
}

TEST(RewriteRules, InsertJoin) {
  // Select{P}(Product(A,B)) => Join{P}(A,B).
  OpPtr pred = OpCall(Symbol("op:general-eq"),
                      {OpInField(Symbol("p")), OpInField(Symbol("t"))});
  OptimizerStats stats;
  EXPECT_EQ(Optimized(OpSelect(pred, OpProduct(Stream("p", "A"), Stream("t", "B"))),
                      &stats),
            "Join{op:general-eq(IN#p,IN#t)}(MapFromItem{[p:IN]}(Var[A]),"
            "MapFromItem{[t:IN]}(Var[B]))");
  EXPECT_EQ(stats.insert_join, 1);
}

TEST(RewriteRules, SplitAndMergeConjunctions) {
  // Select{op:and(P,Q)}(Product) ends as one Join with both conjuncts.
  OpPtr p = OpCall(Symbol("op:general-eq"),
                   {OpInField(Symbol("a")), OpInField(Symbol("b"))});
  OpPtr q = OpCall(Symbol("op:general-gt"),
                   {OpInField(Symbol("a")), OpScalar(AtomicValue::Integer(1))});
  OpPtr both = OpCall(Symbol("op:and"), {p, q});
  OptimizerStats stats;
  std::string out = Optimized(
      OpSelect(both, OpProduct(Stream("a", "A"), Stream("b", "B"))), &stats);
  EXPECT_EQ(out.rfind("Join{op:and(", 0), 0) << out;
  EXPECT_GE(stats.split_select, 1);
  EXPECT_EQ(out.find("Select"), std::string::npos) << out;
}

// ---- new rules (the paper's contribution) --------------------------------------

/// The nested correlated stream of the Figure 4 example:
/// Select{IN#x <= IN#y}(MapConcat{MapFromItem{[y:IN]}((1,2))}(IN)).
OpPtr Fig4NestedStream() {
  OpPtr one_two = MakeOp(OpKind::kSequence);
  one_two->inputs = {OpScalar(AtomicValue::Integer(1)),
                     OpScalar(AtomicValue::Integer(2))};
  OpPtr inner = OpMapConcat(
      OpMapFromItem(OpTupleConstruct({Symbol("y")}, {OpIn()}), one_two),
      OpIn());
  OpPtr le = OpCall(Symbol("op:general-le"),
                    {OpInField(Symbol("x")), OpInField(Symbol("y"))});
  return OpSelect(std::move(le), std::move(inner));
}

/// [a : avg(MapToItem{IN#y * 10}(nested))] as a MapConcat dependent.
OpPtr Fig4LetPlan() {
  OpPtr times = OpCall(Symbol("op:times"),
                       {OpInField(Symbol("y")),
                        OpScalar(AtomicValue::Integer(10))});
  OpPtr nested = OpMapToItem(std::move(times), Fig4NestedStream());
  OpPtr avg = OpCall(Symbol("fn:avg"), {std::move(nested)});
  OpPtr one_one_three = MakeOp(OpKind::kSequence);
  OpPtr inner_seq = MakeOp(OpKind::kSequence);
  inner_seq->inputs = {OpScalar(AtomicValue::Integer(1)),
                       OpScalar(AtomicValue::Integer(1))};
  one_one_three->inputs = {inner_seq, OpScalar(AtomicValue::Integer(3))};
  OpPtr outer = OpMapFromItem(OpTupleConstruct({Symbol("x")}, {OpIn()}),
                              one_one_three);
  return OpMapConcat(OpTupleConstruct({Symbol("a")}, {std::move(avg)}),
                     std::move(outer));
}

TEST(RewriteRules, InsertGroupByOnUnaryTupleConstructor) {
  // (insert group-by): the unary tuple constructor over a correlated
  // MapToItem becomes a trivial GroupBy over OMap.
  OptimizerStats stats;
  std::string out = Optimized(Fig4LetPlan(), &stats);
  EXPECT_EQ(stats.insert_group_by, 1);
  EXPECT_NE(out.find("GroupBy[a,"), std::string::npos) << out;
  // The avg moved into the post-grouping operator applied to the partition.
  EXPECT_NE(out.find("{fn:avg(IN),"), std::string::npos) << out;
  // The per-item operator became the pre-grouping operator.
  EXPECT_NE(out.find("op:times(IN#y,10)"), std::string::npos) << out;
}

TEST(RewriteRules, FullFigure4Derivation) {
  // The complete pipeline reaches the paper's final plan:
  //   GroupBy[a,[index],[null]]{avg(IN)}{IN#y*10}
  //     (LOuterJoin[null]{IN#x<=IN#y}
  //       (MapIndexStep[index](MapFromItem{[x:IN]}((1,1),3)),
  //        MapFromItem{[y:IN]}((1,2))))
  OptimizerStats stats;
  std::string out = Optimized(Fig4LetPlan(), &stats);
  EXPECT_EQ(stats.map_through_group_by, 1);
  EXPECT_EQ(stats.remove_duplicate_null, 1);
  EXPECT_EQ(stats.insert_outer_join, 1);
  EXPECT_EQ(stats.index_to_index_step, 1);
  EXPECT_EQ(out,
            "GroupBy[a,[index1],[null2]]{fn:avg(IN),op:times(IN#y,10)}("
            "LOuterJoin[null2]{op:general-le(IN#x,IN#y)}("
            "MapIndexStep[index1](MapFromItem{[x:IN]}(Sequence(Sequence(1,1)"
            ",3))),MapFromItem{[y:IN]}(Sequence(1,2))))");
}

TEST(RewriteRules, GroupByKeepsUncorrelatedStreamsNested) {
  // An independent nested stream needs no unnesting.
  OpPtr indep_nested = OpMapToItem(
      OpInField(Symbol("y")),
      OpSelect(OpCall(Symbol("op:general-gt"),
                      {OpInField(Symbol("y")),
                       OpScalar(AtomicValue::Integer(0))}),
               Stream("y", "ys")));
  OpPtr plan = OpMapConcat(
      OpTupleConstruct({Symbol("a")},
                       {OpCall(Symbol("fn:avg"), {std::move(indep_nested)})}),
      Stream("x", "xs"));
  OptimizerStats stats;
  Optimized(std::move(plan), &stats);
  EXPECT_EQ(stats.insert_group_by, 0);
}

TEST(RewriteRules, TypeOperatorChainMovesIntoGroupBy) {
  // The paper's P1 shape: [a: TypeAssert[T*](MapToItem{Validate(IN#t)}(..))]
  // — the chain ends up applied to the partition inside the GroupBy.
  SequenceType auction_star =
      SequenceType::Star(ItemTest::Element(Symbol(), Symbol("Auction")));
  OpPtr validate = MakeOp(OpKind::kValidate);
  validate->inputs = {OpInField(Symbol("t"))};
  OpPtr nested_stream = OpSelect(
      OpCall(Symbol("op:general-eq"),
             {OpInField(Symbol("t")), OpInField(Symbol("p"))}),
      OpMapConcat(Stream("t", "auctions"), OpIn()));
  OpPtr let_value = OpTypeAssert(
      auction_star, OpMapToItem(std::move(validate), std::move(nested_stream)));
  OpPtr plan =
      OpMapConcat(OpTupleConstruct({Symbol("a")}, {std::move(let_value)}),
                  Stream("p", "people"));
  OptimizerStats stats;
  std::string out = Optimized(std::move(plan), &stats);
  EXPECT_EQ(stats.insert_group_by, 1);
  EXPECT_EQ(stats.insert_outer_join, 1);
  // Post-grouping operator: TypeAssert applied to the whole partition.
  EXPECT_NE(out.find("{TypeAssert[element(*,Auction)*](IN),"),
            std::string::npos)
      << out;
  // Pre-grouping operator: Validate applied per item.
  EXPECT_NE(out.find("Validate(IN#t)"), std::string::npos) << out;
  EXPECT_NE(out.find("LOuterJoin"), std::string::npos) << out;
}

TEST(RewriteRules, MapIndexStaysWhenFieldIsAccessed) {
  // MapIndex[i] must NOT become MapIndexStep when IN#i is read.
  OpPtr plan = OpMapToItem(OpInField(Symbol("i")),
                           OpMapIndex(Symbol("i"), Stream("x", "xs")));
  OptimizerStats stats;
  std::string out = Optimized(std::move(plan), &stats);
  EXPECT_NE(out.find("MapIndex[i]"), std::string::npos) << out;
  EXPECT_EQ(out.find("MapIndexStep"), std::string::npos) << out;
  EXPECT_EQ(stats.index_to_index_step, 0);
}

// ---- end-to-end derivations through the engine ---------------------------------

std::string PlanFor(const std::string& query) {
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(query);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  if (!q.ok()) return "";
  return q.value().ExplainPlan(false);
}

TEST(Derivations, PaperGroupByQueryFromSource) {
  // Compiling + optimizing the actual Section 5 query text produces the
  // same operator skeleton as the hand-built derivation above.
  std::string plan = PlanFor(
      "for $x in (1,1,3) "
      "let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) "
      "return ($x, $a)");
  EXPECT_EQ(plan.rfind("MapToItem{Sequence(IN#x,IN#a)}(GroupBy[a,", 0), 0)
      << plan;
  EXPECT_NE(plan.find("LOuterJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("MapIndexStep"), std::string::npos) << plan;
  EXPECT_NE(plan.find("fn:avg(IN)"), std::string::npos) << plan;
  EXPECT_NE(plan.find("op:times(IN#y,10)"), std::string::npos) << plan;
}

TEST(Derivations, NestedPathVariantAlsoUnnests) {
  // Section 4's claim: the path-predicate variant of Q1 de-correlates too.
  std::string plan = PlanFor(
      "declare variable $auction external; "
      "for $p in $auction//person "
      "let $a := $auction//closed_auction[.//@person = $p/@id] "
      "return count($a)");
  EXPECT_NE(plan.find("GroupBy"), std::string::npos) << plan;
  EXPECT_NE(plan.find("LOuterJoin"), std::string::npos) << plan;
}

TEST(Derivations, UncorrelatedQueriesGetNoGroupBy) {
  std::string plan = PlanFor("for $x in (1,2,3) return $x + 1");
  EXPECT_EQ(plan.find("GroupBy"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("Join"), std::string::npos) << plan;
}

TEST(Derivations, OptimizationPreservesFigure4Result) {
  Engine engine;
  DynamicContext ctx;
  Result<PreparedQuery> q = engine.Prepare(
      "for $x in (1,1,3) "
      "let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) "
      "return ($x, $a)");
  ASSERT_OK(q);
  Result<std::string> r = q.value().ExecuteToString(&ctx);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "1 15 1 15 3");  // Figure 4's output column
}

}  // namespace
}  // namespace xqc
