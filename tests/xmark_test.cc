// XMark substrate tests: generator structure and determinism, and all
// twenty benchmark queries run differentially across engine configurations
// on a small document — plus the paper's Section 2 Q8 variant with schema
// validation.
#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "src/xmark/xmark.h"
#include "src/xml/xml_parser.h"
#include "test_util.h"

namespace xqc {
namespace {

TEST(XMarkGenerator, Deterministic) {
  XMarkOptions opts;
  opts.target_bytes = 32 * 1024;
  EXPECT_EQ(GenerateXMarkXml(opts), GenerateXMarkXml(opts));
  XMarkOptions other = opts;
  other.seed = 43;
  EXPECT_NE(GenerateXMarkXml(opts), GenerateXMarkXml(other));
}

TEST(XMarkGenerator, SizeScalesWithTarget) {
  XMarkOptions small, large;
  small.target_bytes = 64 * 1024;
  large.target_bytes = 256 * 1024;
  size_t s = GenerateXMarkXml(small).size();
  size_t l = GenerateXMarkXml(large).size();
  // Within 2x of the target and monotone.
  EXPECT_GT(s, small.target_bytes / 2);
  EXPECT_LT(s, small.target_bytes * 2);
  EXPECT_GT(l, large.target_bytes / 2);
  EXPECT_LT(l, large.target_bytes * 2);
  EXPECT_GT(l, 3 * s);
}

TEST(XMarkGenerator, ParsesAndHasExpectedStructure) {
  XMarkOptions opts;
  opts.target_bytes = 64 * 1024;
  Result<NodePtr> doc = GenerateXMarkDocument(opts);
  ASSERT_OK(doc);
  DynamicContext ctx;
  ctx.BindVariable(Symbol("auction"), {Item(doc.value())});
  Engine engine;
  auto count = [&](const std::string& path) -> int64_t {
    auto q = engine.Prepare("declare variable $auction external; count(" +
                            path + ")");
    EXPECT_TRUE(q.ok());
    auto r = q.value().Execute(&ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value()[0].atomic().AsInt();
  };
  EXPECT_GT(count("$auction/site/people/person"), 10);
  EXPECT_GT(count("$auction/site/closed_auctions/closed_auction"), 5);
  EXPECT_GT(count("$auction/site/open_auctions/open_auction/bidder"), 5);
  EXPECT_GT(count("$auction/site/regions//item"), 10);
  EXPECT_GT(count("$auction/site/categories/category"), 3);
  // Every closed auction's buyer refers to an existing person.
  auto q = engine.Prepare(
      "declare variable $auction external; "
      "every $t in $auction/site/closed_auctions/closed_auction satisfies "
      "exists($auction/site/people/person[@id = $t/buyer/@person])");
  ASSERT_OK(q);
  auto r = q.value().ExecuteToString(&ctx);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(), "true");
}

class XMarkQueryTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    XMarkOptions opts;
    opts.target_bytes = 48 * 1024;
    Result<NodePtr> doc = GenerateXMarkDocument(opts);
    ASSERT_TRUE(doc.ok());
    doc_ = new NodePtr(doc.take());
  }
  static void TearDownTestSuite() {
    delete doc_;
    doc_ = nullptr;
  }
  static NodePtr* doc_;
};

NodePtr* XMarkQueryTest::doc_ = nullptr;

TEST_P(XMarkQueryTest, AllConfigsAgree) {
  int n = GetParam();
  DynamicContext ctx;
  ctx.BindVariable(Symbol("auction"), {Item(*doc_)});
  Engine engine;
  const EngineOptions kConfigs[] = {
      {false, false, JoinImpl::kNestedLoop},
      {true, false, JoinImpl::kNestedLoop},
      {true, true, JoinImpl::kNestedLoop},
      {true, true, JoinImpl::kHash},
      {true, true, JoinImpl::kSort},
  };
  std::string reference;
  for (size_t i = 0; i < std::size(kConfigs); i++) {
    Result<PreparedQuery> q = engine.Prepare(XMarkQuery(n), kConfigs[i]);
    ASSERT_TRUE(q.ok()) << "Q" << n << ": " << q.status().ToString();
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    ASSERT_TRUE(r.ok()) << "Q" << n << " config " << i << ": "
                        << r.status().ToString();
    if (i == 0) {
      reference = r.value();
    } else {
      ASSERT_EQ(r.value(), reference) << "Q" << n << " config " << i;
    }
  }
  // Sanity: queries on this document should not be trivially empty, except
  // those whose predicates may not match at tiny scale.
  if (n != 1 && n != 4) {
    EXPECT_FALSE(reference.empty()) << "Q" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTwenty, XMarkQueryTest, ::testing::Range(1, 21),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param);
                         });

TEST(XMarkQ8VariantTest, SchemaTypesFlowThroughUnnesting) {
  XMarkOptions opts;
  opts.target_bytes = 48 * 1024;
  Result<NodePtr> doc = GenerateXMarkDocument(opts);
  ASSERT_OK(doc);
  Schema schema = XMarkSchema();
  DynamicContext ctx;
  ctx.set_schema(&schema);
  ctx.BindVariable(Symbol("auction"), {Item(doc.value())});

  Engine engine;
  const EngineOptions kConfigs[] = {
      {false, false, JoinImpl::kNestedLoop},
      {true, false, JoinImpl::kNestedLoop},
      {true, true, JoinImpl::kHash},
  };
  std::string reference;
  for (size_t i = 0; i < std::size(kConfigs); i++) {
    Result<PreparedQuery> q = engine.Prepare(XMarkQ8Variant(), kConfigs[i]);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    ASSERT_TRUE(r.ok()) << "config " << i << ": " << r.status().ToString()
                        << "\n" << q.value().ExplainPlan();
    if (i == 0) {
      reference = r.value();
    } else {
      ASSERT_EQ(r.value(), reference) << "config " << i;
    }
  }
  // The validated plan counts some US sellers somewhere.
  EXPECT_NE(reference.find("<item person="), std::string::npos);

  // The optimized plan must exhibit the paper's P2 shape: the type
  // operations stay inside the GroupBy and the join is an outer join.
  Result<PreparedQuery> q = engine.Prepare(XMarkQ8Variant());
  ASSERT_OK(q);
  std::string plan = q.value().ExplainPlan(false);
  EXPECT_NE(plan.find("GroupBy"), std::string::npos) << plan;
  EXPECT_NE(plan.find("LOuterJoin"), std::string::npos) << plan;
  EXPECT_NE(plan.find("TypeAssert[element(*,Auction)*]"), std::string::npos)
      << plan;
  EXPECT_NE(plan.find("Validate"), std::string::npos) << plan;
}

}  // namespace
}  // namespace xqc
