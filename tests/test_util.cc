#include "test_util.h"

#include <gtest/gtest.h>

#include "src/interp/interpreter.h"
#include "src/xml/serializer.h"
#include "src/xml/xml_parser.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqc {
namespace testutil {

NodePtr MustParseXml(const std::string& xml) {
  Result<NodePtr> r = ParseXml(xml);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << xml;
  return r.ok() ? r.take() : nullptr;
}

Result<Sequence> Interp(const std::string& query, DynamicContext* ctx) {
  Result<Query> parsed = ParseXQuery(query);
  if (!parsed.ok()) return parsed.status();
  Result<Query> core = NormalizeQuery(parsed.value());
  if (!core.ok()) return core.status();
  Interpreter interp(&core.value(), ctx);
  return interp.Run();
}

std::string InterpToString(const std::string& query, DynamicContext* ctx) {
  Result<Sequence> r = Interp(query, ctx);
  if (!r.ok()) return "ERROR:" + r.status().code();
  return SerializeSequence(r.value());
}

std::string InterpToString(const std::string& query) {
  DynamicContext ctx;
  return InterpToString(query, &ctx);
}

}  // namespace testutil
}  // namespace xqc
