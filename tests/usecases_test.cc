// Integration tests in the style of the W3C XML Query Use Cases — the
// suite the paper's compiler regression-tests against (Section 7 cites the
// Use Cases as part of its 1000+ test regression suite). Queries run in all
// engine configurations and check exact expected output.
#include <gtest/gtest.h>

#include "src/engine/engine.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::MustParseXml;

class UseCaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The classic bibliography document (Use Case "XMP"), abridged.
    ctx_.RegisterDocument("bib.xml", MustParseXml(R"(
      <bib>
        <book year="1994">
          <title>TCP/IP Illustrated</title>
          <author><last>Stevens</last><first>W.</first></author>
          <publisher>Addison-Wesley</publisher>
          <price>65.95</price>
        </book>
        <book year="1992">
          <title>Advanced Programming in the Unix environment</title>
          <author><last>Stevens</last><first>W.</first></author>
          <publisher>Addison-Wesley</publisher>
          <price>65.95</price>
        </book>
        <book year="2000">
          <title>Data on the Web</title>
          <author><last>Abiteboul</last><first>Serge</first></author>
          <author><last>Buneman</last><first>Peter</first></author>
          <author><last>Suciu</last><first>Dan</first></author>
          <publisher>Morgan Kaufmann Publishers</publisher>
          <price>39.95</price>
        </book>
        <book year="1999">
          <title>The Economics of Technology and Content for Digital TV</title>
          <editor><last>Gerbarg</last><first>Darcy</first></editor>
          <publisher>Kluwer Academic Publishers</publisher>
          <price>129.95</price>
        </book>
      </bib>)"));
    ctx_.RegisterDocument("reviews.xml", MustParseXml(R"(
      <reviews>
        <entry>
          <title>Data on the Web</title>
          <price>34.95</price>
          <review>A very good discussion of semi-structured database
           systems and XML.</review>
        </entry>
        <entry>
          <title>Advanced Programming in the Unix environment</title>
          <price>65.95</price>
          <review>A clear and detailed discussion of UNIX programming.</review>
        </entry>
        <entry>
          <title>TCP/IP Illustrated</title>
          <price>65.95</price>
          <review>One of the best books on TCP/IP.</review>
        </entry>
      </reviews>)"));
  }

  void Check(const std::string& query, const std::string& expected) {
    Engine engine;
    const EngineOptions kConfigs[] = {
        {false, false, JoinImpl::kNestedLoop},
        {true, false, JoinImpl::kNestedLoop},
        {true, true, JoinImpl::kNestedLoop},
        {true, true, JoinImpl::kHash},
        {true, true, JoinImpl::kSort},
    };
    for (size_t i = 0; i < std::size(kConfigs); i++) {
      Result<PreparedQuery> q = engine.Prepare(query, kConfigs[i]);
      ASSERT_TRUE(q.ok()) << q.status().ToString() << "\n" << query;
      Result<std::string> r = q.value().ExecuteToString(&ctx_);
      ASSERT_TRUE(r.ok()) << "config " << i << ": " << r.status().ToString()
                          << "\n" << query;
      EXPECT_EQ(r.value(), expected) << "config " << i << "\n" << query;
    }
  }

  DynamicContext ctx_;
};

TEST_F(UseCaseTest, Q1_BooksAfter1991ByPublisher) {
  // XMP Q1: titles of books published by Addison-Wesley after 1991.
  Check(
      "let $bib := doc(\"bib.xml\") return "
      "<bib>{ for $b in $bib/bib/book "
      "       where $b/publisher = \"Addison-Wesley\" and $b/@year > 1991 "
      "       return <book year=\"{$b/@year}\">{$b/title}</book> }</bib>",
      "<bib><book year=\"1994\"><title>TCP/IP Illustrated</title></book>"
      "<book year=\"1992\"><title>Advanced Programming in the Unix "
      "environment</title></book></bib>");
}

TEST_F(UseCaseTest, Q2_FlattenedTitleAuthorPairs) {
  // XMP Q2: flat list of (title, author) pairs.
  Check(
      "let $bib := doc(\"bib.xml\") return "
      "<results>{ for $b in $bib/bib/book, $t in $b/title, $a in $b/author "
      "           return <result>{$t}{$a/last}</result> }</results>",
      "<results>"
      "<result><title>TCP/IP Illustrated</title><last>Stevens</last></result>"
      "<result><title>Advanced Programming in the Unix environment</title>"
      "<last>Stevens</last></result>"
      "<result><title>Data on the Web</title><last>Abiteboul</last></result>"
      "<result><title>Data on the Web</title><last>Buneman</last></result>"
      "<result><title>Data on the Web</title><last>Suciu</last></result>"
      "</results>");
}

TEST_F(UseCaseTest, Q3_TitleAndAuthorsGrouped) {
  // XMP Q3: each book's title with all its authors.
  Check(
      "let $bib := doc(\"bib.xml\") return "
      "<results>{ for $b in $bib/bib/book "
      "           return <result>{$b/title}{count($b/author)}</result> "
      "}</results>",
      "<results><result><title>TCP/IP Illustrated</title>1</result>"
      "<result><title>Advanced Programming in the Unix environment</title>"
      "1</result><result><title>Data on the Web</title>3</result>"
      "<result><title>The Economics of Technology and Content for Digital "
      "TV</title>0</result></results>");
}

TEST_F(UseCaseTest, Q5_JoinWithReviews) {
  // XMP Q5: join books with review prices by title — the classic document
  // join the paper's hash join targets.
  Check(
      "let $bib := doc(\"bib.xml\") "
      "let $reviews := doc(\"reviews.xml\") return "
      "<books-with-prices>{ "
      "  for $b in $bib//book, $a in $reviews//entry "
      "  where $b/title = $a/title "
      "  return <book-with-prices>{$b/title}"
      "<price-review>{$a/price/text()}</price-review>"
      "<price>{$b/price/text()}</price></book-with-prices> }"
      "</books-with-prices>",
      "<books-with-prices>"
      "<book-with-prices><title>TCP/IP Illustrated</title>"
      "<price-review>65.95</price-review><price>65.95</price>"
      "</book-with-prices>"
      "<book-with-prices><title>Advanced Programming in the Unix "
      "environment</title><price-review>65.95</price-review>"
      "<price>65.95</price></book-with-prices>"
      "<book-with-prices><title>Data on the Web</title>"
      "<price-review>34.95</price-review><price>39.95</price>"
      "</book-with-prices></books-with-prices>");
}

TEST_F(UseCaseTest, Q6_BooksWithMoreThanOneAuthor) {
  Check(
      "let $bib := doc(\"bib.xml\") return "
      "<bib>{ for $b in $bib//book where count($b/author) > 1 "
      "       return <book>{$b/title}</book> }</bib>",
      "<bib><book><title>Data on the Web</title></book></bib>");
}

TEST_F(UseCaseTest, Q7_SortedByTitle) {
  Check(
      "let $bib := doc(\"bib.xml\") return "
      "<bib>{ for $b in $bib//book where $b/@year > 1991 "
      "       order by $b/title return <t>{$b/title/text()}</t> }</bib>",
      "<bib><t>Advanced Programming in the Unix environment</t>"
      "<t>Data on the Web</t><t>TCP/IP Illustrated</t>"
      "<t>The Economics of Technology and Content for Digital TV</t></bib>");
}

TEST_F(UseCaseTest, Q10_PriceBands) {
  // Conditional grouping by price (typeswitch-style branching via if).
  Check(
      "let $bib := doc(\"bib.xml\") return "
      "for $b in $bib//book order by number($b/price), $b/title return "
      "<book expensive=\"{if (number($b/price) > 100) then \"yes\" else "
      "\"no\"}\">{$b/title/text()}</book>",
      "<book expensive=\"no\">Data on the Web</book>"
      "<book expensive=\"no\">Advanced Programming in the Unix "
      "environment</book>"
      "<book expensive=\"no\">TCP/IP Illustrated</book>"
      "<book expensive=\"yes\">The Economics of Technology and Content for "
      "Digital TV</book>");
}

TEST_F(UseCaseTest, Q11_BooksWithoutAuthorsViaEmpty) {
  Check(
      "let $bib := doc(\"bib.xml\") return "
      "for $b in $bib//book where empty($b/author) "
      "return $b/editor/last/text()",
      "Gerbarg");
}

TEST_F(UseCaseTest, Q12_DistinctAuthorsWithTheirBooks) {
  // Grouping by author name: the distinct-values + correlated-filter shape
  // (XMP Q4 / XMark Q10 family).
  Check(
      "let $bib := doc(\"bib.xml\") return "
      "<results>{ "
      "for $last in distinct-values($bib//author/last/text()) "
      "order by $last return "
      "<author name=\"{$last}\">{ "
      "  count(for $b in $bib//book where $b/author/last = $last return $b) "
      "}</author> }</results>",
      "<results><author name=\"Abiteboul\">1</author>"
      "<author name=\"Buneman\">1</author>"
      "<author name=\"Stevens\">2</author>"
      "<author name=\"Suciu\">1</author></results>");
}

TEST_F(UseCaseTest, SEQ_PositionalSlices) {
  Check("let $bib := doc(\"bib.xml\") return "
        "($bib//book[2]/title/text(), subsequence($bib//book, 3, 2)/@year)",
        "Advanced Programming in the Unix environmentyear=\"2000\""
        "year=\"1999\"");
}

TEST_F(UseCaseTest, TREE_RecursiveTableOfContents) {
  // A recursive function over the tree (the TREE use case's toc pattern).
  DynamicContext ctx;
  ctx.RegisterDocument("book.xml", MustParseXml(
      "<book><section><title>A</title><section><title>A.1</title>"
      "</section></section><section><title>B</title></section></book>"));
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(
      "declare function local:toc($s) { "
      "  for $c in $s/section return "
      "  <toc title=\"{$c/title/text()}\">{local:toc($c)}</toc> }; "
      "let $b := doc(\"book.xml\")/book return <toc>{local:toc($b)}</toc>");
  ASSERT_OK(q);
  Result<std::string> r = q.value().ExecuteToString(&ctx);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(),
            "<toc><toc title=\"A\"><toc title=\"A.1\"/></toc>"
            "<toc title=\"B\"/></toc>");
}

TEST_F(UseCaseTest, R_RelationalStyleReport) {
  // The "R" use case: relational-style data with a 3-way join.
  DynamicContext ctx;
  ctx.RegisterDocument("users.xml", MustParseXml(
      "<users><user><id>U1</id><name>Tom</name></user>"
      "<user><id>U2</id><name>Mary</name></user></users>"));
  ctx.RegisterDocument("items.xml", MustParseXml(
      "<items><itm><no>I1</no><descr>Bicycle</descr><seller>U1</seller></itm>"
      "<itm><no>I2</no><descr>Helmet</descr><seller>U2</seller></itm></items>"));
  ctx.RegisterDocument("bids.xml", MustParseXml(
      "<bids><bid><user>U2</user><item>I1</item><amount>50</amount></bid>"
      "<bid><user>U1</user><item>I2</item><amount>15</amount></bid>"
      "<bid><user>U2</user><item>I1</item><amount>55</amount></bid></bids>"));
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(
      "let $users := doc(\"users.xml\") "
      "let $items := doc(\"items.xml\") "
      "let $bids := doc(\"bids.xml\") return "
      "<report>{ "
      "for $i in $items//itm "
      "let $seller := for $u in $users//user where $u/id = $i/seller "
      "               return $u/name/text() "
      "let $high := max(for $b in $bids//bid where $b/item = $i/no "
      "                 return number($b/amount)) "
      "return <item d=\"{$i/descr/text()}\" seller=\"{$seller}\" "
      "high=\"{$high}\"/> }</report>");
  ASSERT_OK(q);
  Result<std::string> r = q.value().ExecuteToString(&ctx);
  ASSERT_OK(r);
  EXPECT_EQ(r.value(),
            "<report><item d=\"Bicycle\" seller=\"Tom\" high=\"55\"/>"
            "<item d=\"Helmet\" seller=\"Mary\" high=\"15\"/></report>");
  // Both nested blocks should have unnested into joins.
  EXPECT_GE(q.value().optimizer_stats().insert_outer_join, 2);
}

}  // namespace
}  // namespace xqc
