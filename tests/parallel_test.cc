// Tests for fn:collection / fn:uri-collection and intra-query parallelism
// (src/runtime/parallel.{h,cc}, src/opt/parallel_infer.{h,cc}):
//
//   - collection resolution and error conformance (FODC0002 / FODC0004,
//     lenient vs strict member-failure policy, injector-driven partially
//     failing directories),
//   - the deterministic ordinal merge: byte-identical results across
//     --parallelism levels AND across cache-eviction-induced reload orders
//     (the ordinal interval-block invariant),
//   - the conservative eligibility pass, and
//   - guard-slice behavior of partitioned execution.
//
// The parallelism ∈ {1, 2, 4} sweeps here are the PR's oracle: parallel
// output must be byte-identical to the serial run at every level.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/engine/engine.h"
#include "src/opt/parallel_infer.h"
#include "src/runtime/context.h"
#include "src/runtime/parallel.h"
#include "src/store/document_store.h"
#include "src/store/io_fault.h"
#include "src/xmark/xmark.h"
#include "tests/test_util.h"

namespace xqc {
namespace {

class ParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static std::atomic<int> counter{0};
    dir_ = ::testing::TempDir() + "xqc_parallel_test_" +
           std::to_string(counter.fetch_add(1));
    std::system(("rm -rf " + dir_ + " && mkdir -p " + dir_).c_str());
  }
  void TearDown() override {
    std::system(("rm -rf " + dir_).c_str());
  }

  std::string WriteDoc(const std::string& name, const std::string& content) {
    std::string path = dir_ + "/" + name;
    std::ofstream out(path, std::ios::trunc);
    out << content;
    out.close();
    return path;
  }

  /// A small corpus: member i is <doc><item id="3i"/><item id="3i+1"/>
  /// <item id="3i+2"/></doc>, named so sorted-URI order == creation order.
  void MakeCorpus(int docs, int items_per_doc = 3) {
    for (int d = 0; d < docs; d++) {
      std::string body = "<doc>";
      for (int i = 0; i < items_per_doc; i++) {
        body += "<item id=\"" + std::to_string(d * items_per_doc + i) +
                "\"/>";
      }
      body += "</doc>";
      char name[32];
      std::snprintf(name, sizeof(name), "m%03d.xml", d);
      WriteDoc(name, body);
    }
  }

  static DocumentStoreOptions FastOptions() {
    DocumentStoreOptions o;
    o.retry_backoff_ms = 1;
    return o;
  }

  /// Executes with a private store; returns the serialized result or
  /// "ERROR:<code>".
  std::string Run(const std::string& query, const EngineOptions& options,
                  DocumentStore* store, ExecStats* stats = nullptr) {
    Engine engine(options);
    Result<PreparedQuery> q = engine.Prepare(query);
    if (!q.ok()) return "ERROR:" + q.status().code();
    DynamicContext ctx;
    if (store != nullptr) ctx.set_document_store(store);
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    if (stats != nullptr) *stats = q.value().last_exec_stats();
    if (!r.ok()) return "ERROR:" + r.status().code();
    return r.value();
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// fn:collection / fn:uri-collection resolution
// ---------------------------------------------------------------------------

TEST_F(ParallelTest, UriCollectionListsMembersSorted) {
  WriteDoc("b.xml", "<b/>");
  WriteDoc("a.xml", "<a/>");
  WriteDoc("c.xml", "<c/>");
  WriteDoc("notes.txt", "not xml");  // not matched by the *.xml default
  DocumentStore store(FastOptions());
  std::string out = Run("fn:uri-collection(\"" + dir_ + "\")",
                        EngineOptions{}, &store);
  EXPECT_EQ(out, dir_ + "/a.xml " + dir_ + "/b.xml " + dir_ + "/c.xml");
}

TEST_F(ParallelTest, CollectionSerializesMembersInOrdinalOrder) {
  WriteDoc("b.xml", "<b/>");
  WriteDoc("a.xml", "<a/>");
  WriteDoc("c.xml", "<c/>");
  DocumentStore store(FastOptions());
  ExecStats stats;
  std::string out = Run("fn:collection(\"" + dir_ + "\")", EngineOptions{},
                        &store, &stats);
  EXPECT_EQ(out, "<a/><b/><c/>");
  EXPECT_EQ(stats.doc_store.collections_resolved, 1);
  EXPECT_EQ(stats.doc_store.collection_members, 3);
  EXPECT_EQ(stats.doc_store.collection_members_skipped, 0);
}

TEST_F(ParallelTest, GlobSelectsSubsetOfDirectory) {
  WriteDoc("a1.xml", "<a n=\"1\"/>");
  WriteDoc("a2.xml", "<a n=\"2\"/>");
  WriteDoc("b1.xml", "<b/>");
  DocumentStore store(FastOptions());
  std::string out = Run("fn:collection(\"" + dir_ + "/a*.xml\")",
                        EngineOptions{}, &store);
  EXPECT_EQ(out, "<a n=\"1\"/><a n=\"2\"/>");
}

TEST_F(ParallelTest, MissingCollectionRaisesFODC0002) {
  DocumentStore store(FastOptions());
  EXPECT_EQ(Run("fn:collection(\"" + dir_ + "/missing\")", EngineOptions{},
                &store),
            "ERROR:FODC0002");
  // Zero-argument / empty-string forms: no default collection is defined.
  EXPECT_EQ(Run("fn:collection()", EngineOptions{}, &store),
            "ERROR:FODC0002");
  EXPECT_EQ(Run("fn:collection(\"\")", EngineOptions{}, &store),
            "ERROR:FODC0002");
  EXPECT_EQ(Run("fn:uri-collection(\"" + dir_ + "/missing\")",
                EngineOptions{}, &store),
            "ERROR:FODC0002");
}

TEST_F(ParallelTest, DocumentUriRaisesFODC0004) {
  std::string path = WriteDoc("one.xml", "<r/>");
  DocumentStore store(FastOptions());
  // A regular file is a valid fn:doc target but an *invalid* collection.
  EXPECT_EQ(Run("fn:collection(\"" + path + "\")", EngineOptions{}, &store),
            "ERROR:FODC0004");
}

TEST_F(ParallelTest, FnDocSeesTheSameTreeTheCollectionServes) {
  WriteDoc("a.xml", "<a/>");
  DocumentStore store(FastOptions());
  // Same execution: the collection member and fn:doc of its URI must be
  // the identical node (one parse, one pinned tree).
  std::string out = Run("fn:count(fn:collection(\"" + dir_ +
                            "\") | fn:doc(\"" + dir_ + "/a.xml\"))",
                        EngineOptions{}, &store);
  EXPECT_EQ(out, "1");
}

// ---------------------------------------------------------------------------
// Lenient vs strict member failures (satellite: partially-failing
// directory; one bad member skips, strict mode propagates)
// ---------------------------------------------------------------------------

TEST_F(ParallelTest, LenientModeSkipsMalformedMemberAndQuarantinesIt) {
  WriteDoc("a.xml", "<a/>");
  WriteDoc("bad.xml", "<bad><unclosed></bad>");
  WriteDoc("c.xml", "<c/>");
  DocumentStore store(FastOptions());

  ExecStats stats;
  std::string out = Run("fn:collection(\"" + dir_ + "\")", EngineOptions{},
                        &store, &stats);
  EXPECT_EQ(out, "<a/><c/>");
  EXPECT_EQ(stats.doc_store.collection_members, 2);
  EXPECT_EQ(stats.doc_store.collection_members_skipped, 1);
  // The malformed member is quarantined per the PR 5 rules...
  EXPECT_EQ(store.counters().quarantined, 1);

  // ...so the next scan replays the verdict without re-parsing, and still
  // skips.
  ExecStats stats2;
  std::string out2 = Run("fn:collection(\"" + dir_ + "\")", EngineOptions{},
                         &store, &stats2);
  EXPECT_EQ(out2, "<a/><c/>");
  EXPECT_EQ(stats2.doc_store.quarantine_hits, 1);
  EXPECT_EQ(stats2.doc_store.collection_members_skipped, 1);
}

TEST_F(ParallelTest, StrictModeFailsTheWholeScanOnABadMember) {
  WriteDoc("a.xml", "<a/>");
  WriteDoc("bad.xml", "<bad><unclosed></bad>");
  DocumentStore store(FastOptions());
  EngineOptions strict;
  strict.strict_collections = true;
  std::string out = Run("fn:collection(\"" + dir_ + "\")", strict, &store);
  EXPECT_EQ(out.substr(0, 6), "ERROR:") << out;
  // uri-collection only enumerates: the bad member is still listed.
  std::string uris = Run("fn:uri-collection(\"" + dir_ + "\")", strict,
                         &store);
  EXPECT_EQ(uris, dir_ + "/a.xml " + dir_ + "/bad.xml");
}

TEST_F(ParallelTest, DanglingSymlinkMemberIsExcludedAtEnumeration) {
  WriteDoc("a.xml", "<a/>");
  WriteDoc("c.xml", "<c/>");
  // A dangling symlink fails the stat() filter during enumeration: it is
  // not a member at all (in either mode), rather than a mid-scan failure.
  std::string link = dir_ + "/b.xml";
  ASSERT_EQ(std::system(("ln -s " + dir_ + "/nonexistent " + link).c_str()),
            0);
  DocumentStore store(FastOptions());
  Result<std::vector<std::string>> members = ListCollectionMembers(dir_);
  ASSERT_OK(members);
  EXPECT_EQ(members.value().size(), 2u);
  ExecStats stats;
  EngineOptions strict;
  strict.strict_collections = true;  // even strict mode never sees it
  std::string out = Run("fn:collection(\"" + dir_ + "\")", strict, &store,
                        &stats);
  EXPECT_EQ(out, "<a/><c/>");
  EXPECT_EQ(stats.doc_store.collection_members_skipped, 0);
}

TEST_F(ParallelTest, InjectedOpenFailuresFailEnumerationThenRecover) {
  WriteDoc("a.xml", "<a/>");
  DocumentStore store(FastOptions());
  IoFaultInjector fault;
  fault.mode = IoFaultMode::kFailOpen;
  fault.transient = true;
  fault.fail_n = 1;  // only the first attempt fails
  store.set_fault_injector(&fault);

  EXPECT_EQ(Run("fn:collection(\"" + dir_ + "\")", EngineOptions{}, &store),
            "ERROR:FODC0002");
  EXPECT_EQ(Run("fn:collection(\"" + dir_ + "\")", EngineOptions{}, &store),
            "<a/>");
}

TEST_F(ParallelTest, InjectedShortReadsSkipEveryMemberLeniently) {
  MakeCorpus(3);
  DocumentStore store(FastOptions());
  IoFaultInjector fault;
  fault.mode = IoFaultMode::kShortRead;  // every member parse fails
  store.set_fault_injector(&fault);

  ExecStats stats;
  std::string out = Run("fn:count(fn:collection(\"" + dir_ + "\"))",
                        EngineOptions{}, &store, &stats);
  EXPECT_EQ(out, "0");
  EXPECT_EQ(stats.doc_store.collection_members_skipped, 3);

  EngineOptions strict;
  strict.strict_collections = true;
  DocumentStore store2(FastOptions());
  store2.set_fault_injector(&fault);
  std::string err = Run("fn:collection(\"" + dir_ + "\")", strict, &store2);
  EXPECT_EQ(err.substr(0, 6), "ERROR:") << err;
}

// ---------------------------------------------------------------------------
// Deterministic ordinal merge (satellite: byte-identical across
// cache-eviction-induced reload orders)
// ---------------------------------------------------------------------------

TEST_F(ParallelTest, StaleCachedMemberIsForceReloadedIntoOrdinalOrder) {
  WriteDoc("a.xml", "<a/>");
  WriteDoc("b.xml", "<b/>");
  WriteDoc("c.xml", "<c/>");
  DocumentStore store(FastOptions());

  // Warm ONLY 'c': its interval block now predates everything. The scan
  // then parses 'a' and 'b' fresh (newer blocks), so the cached 'c' tree
  // would sort *before* them in document order — the ordinal-block
  // invariant detects this and force-reloads 'c' into a fresh block.
  EngineOptions eo;
  {
    DynamicContext warm;
    warm.set_document_store(&store);
    ASSERT_OK(
        Engine().Execute("fn:count(fn:doc(\"" + dir_ + "/c.xml\"))", &warm));
  }
  ExecStats stats;
  std::string out =
      Run("fn:collection(\"" + dir_ + "\")", eo, &store, &stats);
  EXPECT_EQ(out, "<a/><b/><c/>");
  EXPECT_GE(stats.doc_store.collection_reorders, 1)
      << "the stale cached member should have been force-reloaded";

  // A second scan starts from an already-ordinal cache: no more reloads.
  ExecStats stats2;
  EXPECT_EQ(Run("fn:collection(\"" + dir_ + "\")", eo, &store, &stats2),
            "<a/><b/><c/>");
  EXPECT_EQ(stats2.doc_store.collection_reorders, 0);
}

TEST_F(ParallelTest, UnionWithDocRespectsCrossDocumentOrder) {
  WriteDoc("a.xml", "<a/>");
  WriteDoc("b.xml", "<b/>");
  WriteDoc("c.xml", "<c/>");
  DocumentStoreOptions opts = FastOptions();
  opts.max_bytes = 600;  // evicting store: reload order is adversarial
  DocumentStore store(opts);
  // Pre-warm in reverse order in a separate execution so the collection
  // scan sees maximally scrambled blocks.
  {
    DynamicContext warm;
    warm.set_document_store(&store);
    ASSERT_OK(Engine().Execute(
        "fn:count((fn:doc(\"" + dir_ + "/c.xml\"), fn:doc(\"" + dir_ +
            "/a.xml\")))",
        &warm));
  }
  DocumentStore fresh(FastOptions());
  EngineOptions eo;
  std::string scrambled =
      Run("fn:collection(\"" + dir_ + "\")", eo, &store);
  std::string clean = Run("fn:collection(\"" + dir_ + "\")", eo, &fresh);
  EXPECT_EQ(scrambled, clean);
}

// ---------------------------------------------------------------------------
// Eligibility analysis
// ---------------------------------------------------------------------------

const ParallelPlanInfo& Analyze(const std::string& query,
                                PreparedQuery* out) {
  Result<PreparedQuery> q = Engine().Prepare(query);
  EXPECT_OK(q);
  *out = q.take();
  return out->compiled().parallel;
}

TEST_F(ParallelTest, EligibilityAcceptsCollectionScans) {
  PreparedQuery q;
  {
    const ParallelPlanInfo& p =
        Analyze("fn:collection(\"d\")//item", &q);
    EXPECT_TRUE(p.eligible) << p.reason;
    EXPECT_NE(p.source, nullptr);
    EXPECT_NE(p.range_split, nullptr) << "single descendant step splits";
  }
  {
    const ParallelPlanInfo& p = Analyze(
        "for $i in fn:collection(\"d\")//item return string($i/@id)", &q);
    EXPECT_TRUE(p.eligible) << p.reason;
  }
  {
    const ParallelPlanInfo& p = Analyze(
        "for $i in fn:collection(\"d\")//item where $i/@id > \"3\" "
        "return $i",
        &q);
    EXPECT_TRUE(p.eligible) << p.reason;
  }
  {
    // Two TreeJoins: doc-granular only, no intra-doc range splitting.
    const ParallelPlanInfo& p =
        Analyze("fn:collection(\"d\")//open_auction/bidder", &q);
    if (p.eligible) {
      EXPECT_EQ(p.range_split, nullptr);
    }
  }
}

TEST_F(ParallelTest, EligibilityRejectsOrderSensitiveShapes) {
  PreparedQuery q;
  {
    // Aggregate over the scan: the root is a Call, not the spine.
    const ParallelPlanInfo& p =
        Analyze("fn:count(fn:collection(\"d\")//item)", &q);
    EXPECT_FALSE(p.eligible);
    EXPECT_FALSE(p.reason.empty());
  }
  {
    // Positional at-clause compiles to MapIndex on the spine.
    const ParallelPlanInfo& p = Analyze(
        "for $i at $n in fn:collection(\"d\")//item return $n", &q);
    EXPECT_FALSE(p.eligible);
  }
  {
    // No collection scan at all.
    const ParallelPlanInfo& p =
        Analyze("for $x in (1, 2, 3) return $x * 2", &q);
    EXPECT_FALSE(p.eligible);
  }
  {
    // order by is not a pointwise spine.
    const ParallelPlanInfo& p = Analyze(
        "for $i in fn:collection(\"d\")//item order by string($i/@id) "
        "return $i",
        &q);
    EXPECT_FALSE(p.eligible);
  }
}

// ---------------------------------------------------------------------------
// Parallel execution: byte parity with the serial oracle
// ---------------------------------------------------------------------------

TEST_F(ParallelTest, SweepMultiDocCorpusAcrossParallelismLevels) {
  MakeCorpus(6, 4);
  const std::string queries[] = {
      "fn:collection(\"" + dir_ + "\")//item",
      "for $i in fn:collection(\"" + dir_ + "\")//item return "
          "string($i/@id)",
      "for $i in fn:collection(\"" + dir_ + "\")//item "
          "where number($i/@id) mod 2 = 0 return $i",
      "fn:count(fn:collection(\"" + dir_ + "\")//item)",  // fallback path
  };
  for (const std::string& query : queries) {
    DocumentStore store(FastOptions());
    EngineOptions serial;
    ExecStats sstats;
    std::string oracle = Run(query, serial, &store, &sstats);
    ASSERT_NE(oracle.substr(0, 6), "ERROR:") << query << ": " << oracle;
    EXPECT_EQ(sstats.parallel_partitions, 0);
    for (int n : {2, 4}) {
      EngineOptions par;
      par.parallelism = n;
      ExecStats pstats;
      std::string got = Run(query, par, &store, &pstats);
      EXPECT_EQ(got, oracle) << query << " at parallelism " << n;
      EXPECT_TRUE(pstats.parallel_partitions > 0 ||
                  pstats.parallel_fallbacks > 0)
          << query << " at parallelism " << n;
    }
  }
}

TEST_F(ParallelTest, RangeSplitsOneLargeDocumentByteIdentically) {
  // One document, many items: partitioning must fall back to pre-order
  // range splitting of the single descendant step.
  std::string body = "<doc>";
  for (int i = 0; i < 300; i++) {
    body += "<item id=\"" + std::to_string(i) + "\"><v>" +
            std::to_string(i * 7 % 13) + "</v></item>";
  }
  body += "</doc>";
  WriteDoc("big.xml", body);

  const std::string query = "for $i in fn:collection(\"" + dir_ +
                            "\")//item return string($i/v)";
  DocumentStore store(FastOptions());
  std::string oracle = Run(query, EngineOptions{}, &store);
  EngineOptions par;
  par.parallelism = 4;
  ExecStats stats;
  std::string got = Run(query, par, &store, &stats);
  EXPECT_EQ(got, oracle);
  EXPECT_GT(stats.parallel_range_splits, 0);
  EXPECT_EQ(stats.parallel_fallbacks, 0);
  EXPECT_EQ(stats.parallel_merges, 1);
}

TEST_F(ParallelTest, ParallelMatchesSerialOnXMarkStyleCorpus) {
  // Four structurally rich documents (different seeds), queried with a
  // descendant scan + predicate.
  for (int d = 0; d < 4; d++) {
    XMarkOptions xo;
    xo.seed = 100 + static_cast<uint64_t>(d);
    xo.target_bytes = 20 * 1024;
    char name[32];
    std::snprintf(name, sizeof(name), "x%02d.xml", d);
    WriteDoc(name, GenerateXMarkXml(xo));
  }
  const std::string query =
      "for $p in fn:collection(\"" + dir_ + "\")//person " +
      "return string($p/name)";
  DocumentStore store(FastOptions());
  std::string oracle = Run(query, EngineOptions{}, &store);
  ASSERT_NE(oracle.substr(0, 6), "ERROR:") << oracle;
  for (int n : {2, 4}) {
    EngineOptions par;
    par.parallelism = n;
    ExecStats stats;
    EXPECT_EQ(Run(query, par, &store, &stats), oracle)
        << "parallelism " << n;
  }
}

TEST_F(ParallelTest, ParallelismSurvivesEvictionReloadOrders) {
  MakeCorpus(4, 3);
  DocumentStoreOptions small = FastOptions();
  small.max_bytes = 900;  // evicts continuously
  DocumentStore store(small);
  const std::string query = "fn:collection(\"" + dir_ + "\")//item";
  DocumentStore pristine(FastOptions());
  std::string oracle = Run(query, EngineOptions{}, &pristine);
  for (int round = 0; round < 3; round++) {
    for (int n : {1, 2, 4}) {
      EngineOptions eo;
      eo.parallelism = n;
      EXPECT_EQ(Run(query, eo, &store), oracle)
          << "round " << round << " parallelism " << n;
    }
  }
}

TEST_F(ParallelTest, ParallelErrorsMatchSerialErrors) {
  // The first member is fine, the second errors under strict mode: both
  // serial and parallel runs must surface the member failure.
  WriteDoc("a.xml", "<doc><item id=\"1\"/></doc>");
  WriteDoc("bad.xml", "<doc><item</doc>");
  EngineOptions strict_serial;
  strict_serial.strict_collections = true;
  EngineOptions strict_par = strict_serial;
  strict_par.parallelism = 4;
  const std::string query = "fn:collection(\"" + dir_ + "\")//item";
  DocumentStore s1(FastOptions()), s2(FastOptions());
  std::string serial = Run(query, strict_serial, &s1);
  std::string parallel = Run(query, strict_par, &s2);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial.substr(0, 6), "ERROR:") << serial;
}

// ---------------------------------------------------------------------------
// TaskPool basics
// ---------------------------------------------------------------------------

TEST(TaskPoolTest, RunsSubmittedTasksAndRejectsWhenSaturated) {
  TaskPool pool(2);
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  // Occupy both helpers. TrySubmit refuses until a helper thread has
  // reached its idle wait, so spin briefly right after construction.
  std::atomic<int> blocked{0};
  for (int i = 0; i < 2; i++) {
    bool submitted = false;
    for (int spin = 0; spin < 100000 && !submitted; spin++) {
      submitted = pool.TrySubmit([&] {
        blocked++;
        while (!release.load()) std::this_thread::yield();
        ran++;
      });
      if (!submitted) std::this_thread::yield();
    }
    ASSERT_TRUE(submitted) << "helper " << i << " never became idle";
  }
  while (blocked.load() < 2) std::this_thread::yield();
  // Saturated: further submissions must be refused, not queued.
  EXPECT_FALSE(pool.TrySubmit([&] { ran += 100; }));
  release = true;
  // Helpers come back; a new task is accepted again.
  bool accepted = false;
  for (int spin = 0; spin < 10000 && !accepted; spin++) {
    accepted = pool.TrySubmit([&] { ran++; });
    if (!accepted) std::this_thread::yield();
  }
  EXPECT_TRUE(accepted);
  // Wait for the last task.
  for (int spin = 0; spin < 100000 && ran.load() < 3; spin++) {
    std::this_thread::yield();
  }
  EXPECT_EQ(ran.load(), 3);
}

}  // namespace
}  // namespace xqc
