// End-to-end tests of the front end (lexer/parser/normalizer) through the
// baseline Core interpreter: the oracle every other engine configuration is
// differentially tested against.
#include <gtest/gtest.h>

#include "src/runtime/context.h"
#include "src/xml/xml_parser.h"
#include "test_util.h"

namespace xqc {
namespace {

using testutil::InterpToString;
using testutil::MustParseXml;

// ---- literals, arithmetic, comparisons --------------------------------------

TEST(InterpBasics, Literals) {
  EXPECT_EQ(InterpToString("42"), "42");
  EXPECT_EQ(InterpToString("4.5"), "4.5");
  EXPECT_EQ(InterpToString("1e2"), "100");
  EXPECT_EQ(InterpToString("\"hi\""), "hi");
  EXPECT_EQ(InterpToString("'it''s'"), "it's");
  EXPECT_EQ(InterpToString("()"), "");
}

TEST(InterpBasics, Arithmetic) {
  EXPECT_EQ(InterpToString("1 + 2 * 3"), "7");
  EXPECT_EQ(InterpToString("(1 + 2) * 3"), "9");
  EXPECT_EQ(InterpToString("7 idiv 2"), "3");
  EXPECT_EQ(InterpToString("7 mod 2"), "1");
  EXPECT_EQ(InterpToString("1 div 2"), "0.5");
  EXPECT_EQ(InterpToString("-3 + 1"), "-2");
  EXPECT_EQ(InterpToString("1 idiv 0"), "ERROR:FOAR0001");
  EXPECT_EQ(InterpToString("1.0 + 2"), "3");
  EXPECT_EQ(InterpToString("() + 1"), "");
}

TEST(InterpBasics, Comparisons) {
  EXPECT_EQ(InterpToString("1 eq 1"), "true");
  EXPECT_EQ(InterpToString("1 lt 2"), "true");
  EXPECT_EQ(InterpToString("'a' ne 'b'"), "true");
  EXPECT_EQ(InterpToString("(1,2,3) = 2"), "true");
  EXPECT_EQ(InterpToString("(1,2,3) = 9"), "false");
  EXPECT_EQ(InterpToString("() = ()"), "false");
  EXPECT_EQ(InterpToString("1 = 1.0"), "true");
  EXPECT_EQ(InterpToString("2 > 10"), "false");
  EXPECT_EQ(InterpToString("'2' eq 2"), "ERROR:XPTY0004");
}

TEST(InterpBasics, Logic) {
  EXPECT_EQ(InterpToString("1 = 1 and 2 = 2"), "true");
  EXPECT_EQ(InterpToString("1 = 2 or 2 = 2"), "true");
  EXPECT_EQ(InterpToString("not(1 = 2)"), "true");
  EXPECT_EQ(InterpToString("if (1 = 1) then 'y' else 'n'"), "y");
  EXPECT_EQ(InterpToString("if (()) then 'y' else 'n'"), "n");
}

TEST(InterpBasics, SequencesAndRanges) {
  EXPECT_EQ(InterpToString("(1, 2, 3)"), "1 2 3");
  EXPECT_EQ(InterpToString("1 to 4"), "1 2 3 4");
  EXPECT_EQ(InterpToString("3 to 1"), "");
  EXPECT_EQ(InterpToString("count((1 to 10, 20))"), "11");
  EXPECT_EQ(InterpToString("(1, (2, 3), ())"), "1 2 3");
}

// ---- FLWOR -------------------------------------------------------------------

TEST(InterpFLWOR, ForAndReturn) {
  EXPECT_EQ(InterpToString("for $x in (1,2,3) return $x * 10"), "10 20 30");
}

TEST(InterpFLWOR, MultipleBindingsAreCartesian) {
  EXPECT_EQ(InterpToString("for $x in (1,2), $y in (10,20) return $x + $y"),
            "11 21 12 22");
}

TEST(InterpFLWOR, LetAndWhere) {
  EXPECT_EQ(InterpToString(
                "for $x in 1 to 5 let $y := $x * $x where $y > 5 return $y"),
            "9 16 25");
}

TEST(InterpFLWOR, AtClause) {
  EXPECT_EQ(InterpToString("for $x at $i in ('a','b','c') return $i"), "1 2 3");
}

TEST(InterpFLWOR, OrderBy) {
  EXPECT_EQ(InterpToString("for $x in (3,1,2) order by $x return $x"), "1 2 3");
  EXPECT_EQ(InterpToString("for $x in (3,1,2) order by $x descending return $x"),
            "3 2 1");
  EXPECT_EQ(InterpToString(
                "for $x in ('b','a','c') stable order by $x return $x"),
            "a b c");
}

TEST(InterpFLWOR, OrderByMultipleKeys) {
  EXPECT_EQ(InterpToString("for $x in (12, 21, 11, 22) "
                           "order by $x mod 10, $x idiv 10 return $x"),
            "11 21 12 22");
}

TEST(InterpFLWOR, NestedFLWOR) {
  EXPECT_EQ(InterpToString("for $x in (1,2) return (for $y in (1 to $x) "
                           "return 10 * $x + $y)"),
            "11 21 22");
}

TEST(InterpFLWOR, TheGroupByPaperExample) {
  // The exact query from Section 5 / Figure 4 of the paper.
  EXPECT_EQ(InterpToString(
                "for $x in (1,1,3) "
                "let $a := avg(for $y in (1,2) where $x <= $y return $y * 10) "
                "return ($x, $a)"),
            "1 15 1 15 3");
}

// ---- quantifiers ----------------------------------------------------------

TEST(InterpQuant, SomeAndEvery) {
  EXPECT_EQ(InterpToString("some $x in (1,2,3) satisfies $x > 2"), "true");
  EXPECT_EQ(InterpToString("every $x in (1,2,3) satisfies $x > 2"), "false");
  EXPECT_EQ(InterpToString("some $x in () satisfies $x > 2"), "false");
  EXPECT_EQ(InterpToString("every $x in () satisfies $x > 2"), "true");
  EXPECT_EQ(InterpToString(
                "some $x in (1,2), $y in (2,3) satisfies $x = $y"), "true");
}

// ---- paths -------------------------------------------------------------------

class InterpPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_.RegisterDocument("auction.xml", MustParseXml(R"(
      <site>
        <people>
          <person id="person0"><name>Ann</name><age>31</age></person>
          <person id="person1"><name>Bob</name><age>25</age></person>
          <person id="person2"><name>Cyd</name><age>31</age></person>
        </people>
        <closed_auctions>
          <closed_auction><buyer person="person0"/><price>10</price></closed_auction>
          <closed_auction><buyer person="person0"/><price>20</price></closed_auction>
          <closed_auction><buyer person="person2"/><price>30</price></closed_auction>
        </closed_auctions>
      </site>)"));
  }
  std::string Run(const std::string& q) {
    return InterpToString("let $doc := doc(\"auction.xml\") return " + q, &ctx_);
  }
  DynamicContext ctx_;
};

TEST_F(InterpPathTest, ChildSteps) {
  EXPECT_EQ(Run("count($doc/site/people/person)"), "3");
  EXPECT_EQ(Run("$doc/site/people/person[1]/name/text()"), "Ann");
}

TEST_F(InterpPathTest, DescendantSteps) {
  EXPECT_EQ(Run("count($doc//person)"), "3");
  EXPECT_EQ(Run("count($doc//text())"), "9");
}

TEST_F(InterpPathTest, AttributeSteps) {
  EXPECT_EQ(Run("string($doc//person[2]/@id)"), "person1");
  EXPECT_EQ(Run("count($doc//@person)"), "3");
}

TEST_F(InterpPathTest, PositionalPredicates) {
  EXPECT_EQ(Run("$doc//person[position() = 2]/name/text()"), "Bob");
  EXPECT_EQ(Run("$doc//person[last()]/name/text()"), "Cyd");
  EXPECT_EQ(Run("$doc//person[3]/name/text()"), "Cyd");
}

TEST_F(InterpPathTest, ValuePredicates) {
  EXPECT_EQ(Run("$doc//person[age = 31][2]/name/text()"), "Cyd");
  EXPECT_EQ(Run("count($doc//closed_auction[price > 15])"), "2");
  EXPECT_EQ(Run("$doc//person[@id = \"person1\"]/name/text()"), "Bob");
}

TEST_F(InterpPathTest, PathJoinsViaPredicate) {
  EXPECT_EQ(Run("count($doc//closed_auction[buyer/@person = "
                "$doc//person[age = 31]/@id])"),
            "3");
}

TEST_F(InterpPathTest, ParentStep) {
  EXPECT_EQ(Run("name($doc//name[text() = \"Bob\"]/../@id/..)"), "person");
  EXPECT_EQ(Run("string($doc//age[. = 25]/../@id)"), "person1");
}

TEST_F(InterpPathTest, PathResultIsDocOrderedAndDeduped) {
  // Both person[1] and person[2] descendants overlap via //; dedup needed.
  EXPECT_EQ(Run("count(($doc//person, $doc//person)/name)"), "3");
}

TEST_F(InterpPathTest, StarAndNodeTests) {
  EXPECT_EQ(Run("count($doc/site/*)"), "2");
  EXPECT_EQ(Run("count($doc/site/people/person/node())"), "6");
}

// ---- constructors -----------------------------------------------------------

TEST(InterpConstruct, DirectElement) {
  EXPECT_EQ(InterpToString("<a x=\"1\"><b>hi</b></a>"),
            "<a x=\"1\"><b>hi</b></a>");
}

TEST(InterpConstruct, EnclosedExpressions) {
  EXPECT_EQ(InterpToString("<a>{1 + 1}</a>"), "<a>2</a>");
  EXPECT_EQ(InterpToString("<a>{1, 2}</a>"), "<a>1 2</a>");
  EXPECT_EQ(InterpToString("<a b=\"{1+1}\"/>"), "<a b=\"2\"/>");
  EXPECT_EQ(InterpToString("<a b=\"n{1+1}x\"/>"), "<a b=\"n2x\"/>");
}

TEST(InterpConstruct, NestedAndIterated) {
  EXPECT_EQ(InterpToString("<r>{for $i in 1 to 3 return <x>{$i}</x>}</r>"),
            "<r><x>1</x><x>2</x><x>3</x></r>");
}

TEST(InterpConstruct, ComputedConstructors) {
  EXPECT_EQ(InterpToString("element foo { 1 + 2 }"), "<foo>3</foo>");
  EXPECT_EQ(InterpToString("element {concat(\"f\",\"oo\")} { () }"), "<foo/>");
  EXPECT_EQ(InterpToString("<a>{attribute x { \"v\" }, \"t\"}</a>"),
            "<a x=\"v\">t</a>");
  EXPECT_EQ(InterpToString("text { \"plain\" }"), "plain");
  EXPECT_EQ(InterpToString("comment { \"c\" }"), "<!--c-->");
}

TEST(InterpConstruct, ConstructedNodesAreNavigable) {
  // Compositionality (the paper's critique of the Ξ operator): constructed
  // elements are real nodes that later operators can navigate.
  EXPECT_EQ(InterpToString(
                "let $e := <a><b>1</b><b>2</b></a> return count($e/b)"),
            "2");
  EXPECT_EQ(InterpToString("string((<a x=\"7\"/>)/@x)"), "7");
}

TEST(InterpConstruct, AttributeAfterContentIsError) {
  EXPECT_EQ(InterpToString("<a>{\"t\", attribute x { 1 }}</a>"),
            "ERROR:XQTY0024");
}

TEST(InterpConstruct, EscapedBraces) {
  EXPECT_EQ(InterpToString("<a>{{literal}}</a>"), "<a>{literal}</a>");
}

// ---- functions ----------------------------------------------------------------

TEST(InterpFunctions, UserDeclared) {
  EXPECT_EQ(InterpToString(
                "declare function local:sq($x as xs:integer) as xs:integer "
                "{ $x * $x }; local:sq(7)"),
            "49");
}

TEST(InterpFunctions, Recursion) {
  EXPECT_EQ(InterpToString(
                "declare function local:fact($n) { if ($n le 1) then 1 else "
                "$n * local:fact($n - 1) }; local:fact(10)"),
            "3628800");
}

TEST(InterpFunctions, MutualRecursion) {
  EXPECT_EQ(InterpToString(
                "declare function local:odd($n) { if ($n = 0) then false() "
                "else local:even($n - 1) }; "
                "declare function local:even($n) { if ($n = 0) then true() "
                "else local:odd($n - 1) }; "
                "local:even(10)"),
            "true");
}

TEST(InterpFunctions, PrologVariables) {
  EXPECT_EQ(InterpToString("declare variable $n := 4; $n + 1"), "5");
  EXPECT_EQ(InterpToString(
                "declare variable $n := 4; "
                "declare function local:f() { $n * 2 }; local:f()"),
            "8");
}

TEST(InterpFunctions, ArgumentTypeViolation) {
  EXPECT_EQ(InterpToString(
                "declare function local:f($x as xs:integer) { $x }; "
                "local:f(\"s\")"),
            "ERROR:XPTY0004");
}

TEST(InterpFunctions, Builtins) {
  EXPECT_EQ(InterpToString("sum((1,2,3))"), "6");
  EXPECT_EQ(InterpToString("avg((1,2,3,4))"), "2.5");
  EXPECT_EQ(InterpToString("min((3,1,2))"), "1");
  EXPECT_EQ(InterpToString("max((3,1,2))"), "3");
  EXPECT_EQ(InterpToString("sum(())"), "0");
  EXPECT_EQ(InterpToString("avg(())"), "");
  EXPECT_EQ(InterpToString("string-length(\"hello\")"), "5");
  EXPECT_EQ(InterpToString("concat(\"a\",\"b\",\"c\")"), "abc");
  EXPECT_EQ(InterpToString("contains(\"hello\",\"ell\")"), "true");
  EXPECT_EQ(InterpToString("starts-with(\"hello\",\"he\")"), "true");
  EXPECT_EQ(InterpToString("substring(\"hello\", 2, 3)"), "ell");
  EXPECT_EQ(InterpToString("distinct-values((1, 2, 1, 2.0, \"a\", \"a\"))"),
            "1 2 a");
  EXPECT_EQ(InterpToString("reverse((1,2,3))"), "3 2 1");
  EXPECT_EQ(InterpToString("subsequence((1,2,3,4), 2, 2)"), "2 3");
  EXPECT_EQ(InterpToString("string-join((\"a\",\"b\"), \"-\")"), "a-b");
  EXPECT_EQ(InterpToString("empty(())"), "true");
  EXPECT_EQ(InterpToString("exists(())"), "false");
  EXPECT_EQ(InterpToString("number(\"2.5\")"), "2.5");
  EXPECT_EQ(InterpToString("number(\"zzz\")"), "NaN");
  EXPECT_EQ(InterpToString("abs(-4)"), "4");
  EXPECT_EQ(InterpToString("floor(2.7)"), "2");
  EXPECT_EQ(InterpToString("ceiling(2.1)"), "3");
  EXPECT_EQ(InterpToString("round(2.5)"), "3");
  EXPECT_EQ(InterpToString("index-of((10,20,10), 10)"), "1 3");
  EXPECT_EQ(InterpToString("deep-equal(<a><b>1</b></a>, <a><b>1</b></a>)"),
            "true");
  EXPECT_EQ(InterpToString("deep-equal(<a><b>1</b></a>, <a><b>2</b></a>)"),
            "false");
}

TEST(InterpFunctions, UnknownFunctionError) {
  EXPECT_EQ(InterpToString("no-such-fn(1)"), "ERROR:XPST0017");
  EXPECT_EQ(InterpToString("count(1, 2)"), "ERROR:XPST0017");
}

// ---- type expressions -----------------------------------------------------

TEST(InterpTypes, InstanceOf) {
  EXPECT_EQ(InterpToString("1 instance of xs:integer"), "true");
  EXPECT_EQ(InterpToString("1 instance of xs:string"), "false");
  EXPECT_EQ(InterpToString("1 instance of xs:decimal"), "true");  // derived
  EXPECT_EQ(InterpToString("(1,2) instance of xs:integer*"), "true");
  EXPECT_EQ(InterpToString("() instance of xs:integer?"), "true");
  EXPECT_EQ(InterpToString("() instance of xs:integer+"), "false");
  EXPECT_EQ(InterpToString("<a/> instance of element(a)"), "true");
  EXPECT_EQ(InterpToString("<a/> instance of element(b)"), "false");
  EXPECT_EQ(InterpToString("<a/> instance of node()"), "true");
  EXPECT_EQ(InterpToString("() instance of empty-sequence()"), "true");
}

TEST(InterpTypes, CastAndCastable) {
  EXPECT_EQ(InterpToString("\"42\" cast as xs:integer"), "42");
  EXPECT_EQ(InterpToString("3.7 cast as xs:integer"), "3");
  EXPECT_EQ(InterpToString("\"x\" castable as xs:integer"), "false");
  EXPECT_EQ(InterpToString("\"7\" castable as xs:integer"), "true");
  EXPECT_EQ(InterpToString("\"x\" cast as xs:integer"), "ERROR:FORG0001");
  EXPECT_EQ(InterpToString("() cast as xs:integer?"), "");
  EXPECT_EQ(InterpToString("() cast as xs:integer"), "ERROR:XPTY0004");
}

TEST(InterpTypes, TreatAs) {
  EXPECT_EQ(InterpToString("(1,2) treat as xs:integer*"), "1 2");
  EXPECT_EQ(InterpToString("\"s\" treat as xs:integer"), "ERROR:XPTY0004");
}

TEST(InterpTypes, Typeswitch) {
  const char* q =
      "typeswitch (%s) "
      "case $i as xs:integer return concat(\"int:\", $i) "
      "case $s as xs:string return concat(\"str:\", $s) "
      "default $d return \"other\"";
  char buf[512];
  snprintf(buf, sizeof(buf), q, "42");
  EXPECT_EQ(InterpToString(buf), "int:42");
  snprintf(buf, sizeof(buf), q, "\"hi\"");
  EXPECT_EQ(InterpToString(buf), "str:hi");
  snprintf(buf, sizeof(buf), q, "3.5");
  EXPECT_EQ(InterpToString(buf), "other");
}

TEST(InterpTypes, ForClauseTypeAssertion) {
  EXPECT_EQ(InterpToString("for $x as xs:integer in (1,2) return $x"), "1 2");
  EXPECT_EQ(InterpToString("for $x as xs:string in (1,2) return $x"),
            "ERROR:XPTY0004");
}

// ---- node set operators -----------------------------------------------------

TEST(InterpNodeOps, UnionIntersectExcept) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml",
                       MustParseXml("<r><a/><b/><c/></r>"));
  auto run = [&](const std::string& q) {
    return InterpToString("let $r := doc(\"d.xml\")/r return " + q, &ctx);
  };
  EXPECT_EQ(run("count($r/a union $r/b)"), "2");
  EXPECT_EQ(run("count(($r/a, $r/b) intersect $r/a)"), "1");
  EXPECT_EQ(run("count(($r/a, $r/b) except $r/a)"), "1");
  EXPECT_EQ(run("count($r/* union $r/a)"), "3");
}

TEST(InterpNodeOps, NodeIdentity) {
  DynamicContext ctx;
  ctx.RegisterDocument("d.xml", MustParseXml("<r><a/><a/></r>"));
  auto run = [&](const std::string& q) {
    return InterpToString("let $r := doc(\"d.xml\")/r return " + q, &ctx);
  };
  EXPECT_EQ(run("$r/a[1] is $r/a[1]"), "true");
  EXPECT_EQ(run("$r/a[1] is $r/a[2]"), "false");
  EXPECT_EQ(run("$r/a[1] << $r/a[2]"), "true");
  EXPECT_EQ(run("$r/a[2] >> $r/a[1]"), "true");
  // Constructed nodes are new identities.
  EXPECT_EQ(InterpToString("let $a := <a/> return $a is $a"), "true");
  EXPECT_EQ(InterpToString("<a/> is <a/>"), "false");
}

}  // namespace
}  // namespace xqc
