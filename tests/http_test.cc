// Adversarial corpus for the HTTP front end (DESIGN.md "HTTP front end
// and plan cache"): the strict parser unit-by-unit, then a live server
// fed oversized/duplicate headers, truncated and over-long chunked
// bodies, NUL bytes, bare-LF framing, pipelined garbage, slowloris
// clients, and premature closes at every request stage. Every input must
// produce a coded HTTP error or a clean close — never a crash, hang, or
// leak (this binary runs under ASan and TSan in scripts/check.sh).
//
// Socket-level fault injection (NetFaultInjector) and the crash-only
// drain races live here too, since they need a real listening server.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/http_client.h"
#include "src/net/http_server.h"
#include "src/net/net_fault.h"
#include "src/service/query_service.h"

namespace xqc {
namespace {

// ---- parser: well-formed inputs --------------------------------------

HttpParseLimits DefaultLimits() { return HttpParseLimits(); }

TEST(HttpParse, SimpleGet) {
  HttpRequest req;
  size_t consumed = 0;
  HttpParseError err;
  const std::string in = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  EXPECT_EQ(ParseHttpRequest(in, DefaultLimits(), &req, &consumed, &err),
            HttpParseVerdict::kDone);
  EXPECT_EQ(consumed, in.size());
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/healthz");
  EXPECT_TRUE(req.http11);
  EXPECT_TRUE(req.keep_alive);
  EXPECT_TRUE(req.body.empty());
  ASSERT_NE(req.FindHeader("host"), nullptr);
  EXPECT_EQ(*req.FindHeader("host"), "x");
}

TEST(HttpParse, PostWithContentLength) {
  HttpRequest req;
  size_t consumed = 0;
  HttpParseError err;
  const std::string in =
      "POST /query HTTP/1.1\r\nContent-Length: 6\r\n\r\n1 to 3";
  EXPECT_EQ(ParseHttpRequest(in, DefaultLimits(), &req, &consumed, &err),
            HttpParseVerdict::kDone);
  EXPECT_EQ(req.body, "1 to 3");
  EXPECT_EQ(consumed, in.size());
}

TEST(HttpParse, ChunkedBodyReassembledAndTrailersDiscarded) {
  HttpRequest req;
  size_t consumed = 0;
  HttpParseError err;
  const std::string in =
      "POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\n1 to\r\n2\r\n 9\r\n0\r\nX-Trailer: ignored\r\n\r\n";
  ASSERT_EQ(ParseHttpRequest(in, DefaultLimits(), &req, &consumed, &err),
            HttpParseVerdict::kDone);
  EXPECT_EQ(req.body, "1 to 9");
  EXPECT_EQ(consumed, in.size());
  EXPECT_EQ(req.FindHeader("x-trailer"), nullptr);
}

TEST(HttpParse, PipelinedRequestsConsumeExactly) {
  HttpRequest req;
  size_t consumed = 0;
  HttpParseError err;
  const std::string first =
      "POST /query HTTP/1.1\r\nContent-Length: 1\r\n\r\nQ";
  const std::string in = first + "GET /stats HTTP/1.1\r\n\r\n";
  ASSERT_EQ(ParseHttpRequest(in, DefaultLimits(), &req, &consumed, &err),
            HttpParseVerdict::kDone);
  EXPECT_EQ(consumed, first.size());
  HttpRequest second;
  ASSERT_EQ(ParseHttpRequest(std::string_view(in).substr(consumed),
                             DefaultLimits(), &second, &consumed, &err),
            HttpParseVerdict::kDone);
  EXPECT_EQ(second.path, "/stats");
}

TEST(HttpParse, EveryPrefixOfAValidRequestIsNeedMoreNeverBad) {
  const std::string in =
      "POST /query HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhello";
  for (size_t n = 0; n < in.size(); n++) {
    HttpRequest req;
    size_t consumed = 0;
    HttpParseError err;
    EXPECT_EQ(ParseHttpRequest(std::string_view(in).substr(0, n),
                               DefaultLimits(), &req, &consumed, &err),
              HttpParseVerdict::kNeedMore)
        << "prefix length " << n;
  }
}

TEST(HttpParse, ChunkedPrefixesNeverBad) {
  const std::string in =
      "POST /q HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nabcde\r\n0\r\n\r\n";
  for (size_t n = 0; n < in.size(); n++) {
    HttpRequest req;
    size_t consumed = 0;
    HttpParseError err;
    EXPECT_EQ(ParseHttpRequest(std::string_view(in).substr(0, n),
                               DefaultLimits(), &req, &consumed, &err),
              HttpParseVerdict::kNeedMore)
        << "prefix length " << n;
  }
}

TEST(HttpParse, PercentDecodedPathAndQueryString) {
  HttpRequest req;
  size_t consumed = 0;
  HttpParseError err;
  const std::string in = "GET /a%20b/c?x=%31 HTTP/1.1\r\n\r\n";
  ASSERT_EQ(ParseHttpRequest(in, DefaultLimits(), &req, &consumed, &err),
            HttpParseVerdict::kDone);
  EXPECT_EQ(req.path, "/a b/c");
  EXPECT_EQ(req.query_string, "x=%31");  // raw; only the path is decoded
}

TEST(HttpParse, ConnectionSemantics) {
  HttpRequest req;
  size_t consumed = 0;
  HttpParseError err;
  ASSERT_EQ(ParseHttpRequest("GET / HTTP/1.1\r\nConnection: close\r\n\r\n",
                             DefaultLimits(), &req, &consumed, &err),
            HttpParseVerdict::kDone);
  EXPECT_FALSE(req.keep_alive);
  ASSERT_EQ(ParseHttpRequest("GET / HTTP/1.0\r\n\r\n", DefaultLimits(), &req,
                             &consumed, &err),
            HttpParseVerdict::kDone);
  EXPECT_FALSE(req.keep_alive);
  ASSERT_EQ(ParseHttpRequest(
                "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
                DefaultLimits(), &req, &consumed, &err),
            HttpParseVerdict::kDone);
  EXPECT_TRUE(req.keep_alive);
  ASSERT_EQ(ParseHttpRequest("GET / HTTP/1.1\r\nHost: x\r\n\r\n",
                             DefaultLimits(), &req, &consumed, &err),
            HttpParseVerdict::kDone);
  EXPECT_TRUE(req.keep_alive);
}

TEST(HttpParse, DuplicateIdenticalContentLengthTolerated) {
  HttpRequest req;
  size_t consumed = 0;
  HttpParseError err;
  ASSERT_EQ(ParseHttpRequest(
                "POST /q HTTP/1.1\r\nContent-Length: 2\r\n"
                "Content-Length: 2\r\n\r\nok",
                DefaultLimits(), &req, &consumed, &err),
            HttpParseVerdict::kDone);
  EXPECT_EQ(req.body, "ok");
}

// ---- parser: malformed inputs (each must be kBad, never a crash) ------

struct BadCase {
  const char* name;
  std::string input;
  int want_status;
};

TEST(HttpParse, AdversarialCorpusAllRejected) {
  const std::string huge_header =
      "GET / HTTP/1.1\r\nX-Big: " + std::string(20000, 'a') + "\r\n\r\n";
  std::string many_headers = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 200; i++) {
    many_headers += "X-H" + std::to_string(i) + ": v\r\n";
  }
  many_headers += "\r\n";
  const std::vector<BadCase> kCorpus = {
      {"bare LF line endings", "GET / HTTP/1.1\n\n", 400},
      {"NUL in request line", std::string("GET /\0x HTTP/1.1\r\n\r\n", 21),
       400},
      {"NUL in header value",
       std::string("GET / HTTP/1.1\r\nX: a\0b\r\n\r\n", 27), 400},
      {"missing version", "GET /\r\n\r\n", 400},
      {"double space", "GET  / HTTP/1.1\r\n\r\n", 400},
      {"four fields", "GET / HTTP/1.1 extra\r\n\r\n", 400},
      {"lowercase method", "get / HTTP/1.1\r\n\r\n", 400},
      {"HTTP/2 version", "GET / HTTP/2.0\r\n\r\n", 400},
      {"absolute-form target", "GET http://e/ HTTP/1.1\r\n\r\n", 400},
      {"space in target", "GET /a b HTTP/1.1\r\n\r\n", 400},
      {"header without colon", "GET / HTTP/1.1\r\nnocolon\r\n\r\n", 400},
      {"empty header name", "GET / HTTP/1.1\r\n: v\r\n\r\n", 400},
      {"space in header name", "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n", 400},
      {"obs-fold continuation", "GET / HTTP/1.1\r\nA: b\r\n c\r\n\r\n", 400},
      {"conflicting content-lengths",
       "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\nab",
       400},
      {"non-numeric content-length",
       "POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n", 400},
      {"negative content-length",
       "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400},
      {"CL and TE together",
       "POST / HTTP/1.1\r\nContent-Length: 2\r\n"
       "Transfer-Encoding: chunked\r\n\r\n",
       400},
      {"gzip transfer-encoding",
       "POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n", 400},
      {"non-hex chunk size",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n", 400},
      {"over-long chunk size",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nfffffffff\r\n",
       400},
      {"chunk data missing CRLF",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
       "2\r\nabXX0\r\n\r\n",
       400},
      {"chunked body over cap",
       "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n200000\r\n",
       413},
      {"declared body over cap",
       "POST / HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n", 413},
      {"oversized header block", huge_header, 431},
      {"too many headers", many_headers, 431},
  };
  HttpParseLimits limits;
  limits.max_header_bytes = 16 * 1024;
  limits.max_headers = 100;
  limits.max_body_bytes = 1 << 20;
  for (const BadCase& c : kCorpus) {
    HttpRequest req;
    size_t consumed = 0;
    HttpParseError err;
    EXPECT_EQ(ParseHttpRequest(c.input, limits, &req, &consumed, &err),
              HttpParseVerdict::kBad)
        << c.name;
    EXPECT_EQ(err.http_status, c.want_status) << c.name;
    EXPECT_FALSE(err.message.empty()) << c.name;
  }
}

TEST(HttpParse, HeaderFloodWithoutTerminatorRejectedAtCap) {
  HttpParseLimits limits;
  limits.max_header_bytes = 1024;
  HttpRequest req;
  size_t consumed = 0;
  HttpParseError err;
  // No blank line ever arrives; the buffer must be capped, not grown.
  const std::string flood = "GET / HTTP/1.1\r\n" + std::string(2000, 'a');
  EXPECT_EQ(ParseHttpRequest(flood, limits, &req, &consumed, &err),
            HttpParseVerdict::kBad);
  EXPECT_EQ(err.http_status, 431);
}

// ---- status mapping ---------------------------------------------------

TEST(HttpStatusMapping, CoversTheContract) {
  EXPECT_EQ(HttpStatusForQueryStatus(Status::OK()), 200);
  EXPECT_EQ(HttpStatusForQueryStatus(Status::ParseError("x")), 400);
  EXPECT_EQ(HttpStatusForQueryStatus(Status::XQueryError("XPTY0004", "x")),
            400);
  EXPECT_EQ(HttpStatusForQueryStatus(Status::NotImplemented("x")), 501);
  EXPECT_EQ(HttpStatusForQueryStatus(Status::Internal("x")), 500);
  EXPECT_EQ(HttpStatusForQueryStatus(Status::IOError("x")), 502);
  EXPECT_EQ(HttpStatusForQueryStatus(
                Status::ResourceExhausted(kGuardTimeoutCode, "x")),
            504);
  EXPECT_EQ(HttpStatusForQueryStatus(
                Status::ResourceExhausted(kServiceOverloadedCode, "x")),
            429);
  EXPECT_EQ(HttpStatusForQueryStatus(
                Status::ResourceExhausted(kTenantOverQuotaCode, "x")),
            429);
  EXPECT_EQ(HttpStatusForQueryStatus(
                Status::ResourceExhausted(kServiceDrainingCode, "x")),
            503);
  EXPECT_EQ(HttpStatusForQueryStatus(
                Status::ResourceExhausted(kGuardCancelledCode, "x")),
            503);
  EXPECT_EQ(HttpStatusForQueryStatus(
                Status::ResourceExhausted(kGuardMemoryCode, "x")),
            422);
}

// ---- live server fixture ---------------------------------------------

struct LiveServer {
  std::unique_ptr<QueryService> service;
  std::unique_ptr<HttpServer> server;
  NetFaultInjector injector;

  explicit LiveServer(HttpServerOptions hopts = {},
                      ServiceOptions sopts = {}) {
    if (sopts.num_threads == 2) sopts.num_threads = 2;  // default is fine
    service = std::make_unique<QueryService>(sopts);
    hopts.port = 0;
    hopts.fault_injector = &injector;
    server = std::make_unique<HttpServer>(hopts, service.get());
    Status st = server->Start();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  ~LiveServer() {
    server->Stop();
    service->Shutdown();
  }
  int port() const { return server->port(); }
};

TEST(HttpServerLive, QueryRoundtrip) {
  LiveServer s;
  HttpResponse resp;
  Status st = HttpFetch("127.0.0.1", s.port(), "POST", "/query", {}, "1 to 5",
                        &resp);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "1 2 3 4 5");
  EXPECT_EQ(resp.FindHeader("x-xqc-code"), nullptr);
}

TEST(HttpServerLive, QueryErrorsCarryCodesAndKeepServerAlive) {
  LiveServer s;
  HttpResponse resp;
  // Well-formed HTTP, hostile XQuery: a parse error is the query's
  // problem, not the connection's.
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", s.port()).ok());
  ASSERT_TRUE(
      client.Request("POST", "/query", {}, "1 to (((", &resp).ok());
  EXPECT_EQ(resp.status, 400);
  ASSERT_NE(resp.FindHeader("x-xqc-code"), nullptr);
  // Same connection still serves the next request.
  ASSERT_TRUE(client.Request("POST", "/query", {}, "7 * 6", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "42");
}

TEST(HttpServerLive, EndpointsAndMethods) {
  LiveServer s;
  HttpResponse resp;
  ASSERT_TRUE(
      HttpFetch("127.0.0.1", s.port(), "GET", "/healthz", {}, "", &resp)
          .ok());
  EXPECT_EQ(resp.status, 200);
  ASSERT_TRUE(HttpFetch("127.0.0.1", s.port(), "GET", "/readyz", {}, "",
                        &resp)
                  .ok());
  EXPECT_EQ(resp.status, 200);
  ASSERT_TRUE(
      HttpFetch("127.0.0.1", s.port(), "GET", "/stats", {}, "", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"plan_cache\""), std::string::npos);
  ASSERT_TRUE(HttpFetch("127.0.0.1", s.port(), "GET", "/nope", {}, "", &resp)
                  .ok());
  EXPECT_EQ(resp.status, 404);
  ASSERT_TRUE(
      HttpFetch("127.0.0.1", s.port(), "GET", "/query", {}, "", &resp).ok());
  EXPECT_EQ(resp.status, 405);
}

TEST(HttpServerLive, ChunkedQueryBody) {
  LiveServer s;
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", s.port()).ok());
  ASSERT_TRUE(client
                  .SendRaw("POST /query HTTP/1.1\r\n"
                           "Transfer-Encoding: chunked\r\n\r\n"
                           "3\r\n1 t\r\n3\r\no 3\r\n0\r\n\r\n")
                  .ok());
  HttpResponse resp;
  ASSERT_TRUE(client.ReadResponse(&resp).ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "1 2 3");
}

TEST(HttpServerLive, PipelinedRequestsAnsweredInOrder) {
  LiveServer s;
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", s.port()).ok());
  ASSERT_TRUE(client
                  .SendRaw("POST /query HTTP/1.1\r\nContent-Length: 6\r\n"
                           "\r\n1 to 2"
                           "POST /query HTTP/1.1\r\nContent-Length: 5\r\n"
                           "\r\n3 + 4")
                  .ok());
  HttpResponse first, second;
  ASSERT_TRUE(client.ReadResponse(&first).ok());
  ASSERT_TRUE(client.ReadResponse(&second).ok());
  EXPECT_EQ(first.body, "1 2");
  EXPECT_EQ(second.body, "7");
}

TEST(HttpServerLive, MalformedRequestsGet4xxWithXqc0013ThenClose) {
  LiveServer s;
  const std::string kWire[] = {
      "GET / HTTP/9.9\r\n\r\n",
      "BAD-\x01METHOD / HTTP/1.1\r\n\r\n",
      std::string("POST /query HTTP/1.1\r\nContent-Length: 2\r\n"
                  "Content-Length: 3\r\n\r\nab"),
      std::string("GET /\0 HTTP/1.1\r\n\r\n", 20),
  };
  for (const std::string& wire : kWire) {
    HttpClient client;
    ASSERT_TRUE(client.Connect("127.0.0.1", s.port()).ok());
    ASSERT_TRUE(client.SendRaw(wire).ok());
    HttpResponse resp;
    Status st = client.ReadResponse(&resp, 3000);
    ASSERT_TRUE(st.ok()) << st.ToString();
    EXPECT_GE(resp.status, 400);
    EXPECT_LT(resp.status, 500);
    ASSERT_NE(resp.FindHeader("x-xqc-code"), nullptr);
    EXPECT_EQ(*resp.FindHeader("x-xqc-code"), kMalformedRequestCode);
    EXPECT_FALSE(resp.keep_alive);  // framing broke; the connection ends
  }
  // The server survived the corpus.
  HttpResponse resp;
  ASSERT_TRUE(
      HttpFetch("127.0.0.1", s.port(), "GET", "/healthz", {}, "", &resp)
          .ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_GE(s.server->counters().malformed, 4);
}

TEST(HttpServerLive, PipelinedGarbageAfterValidRequest) {
  LiveServer s;
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", s.port()).ok());
  ASSERT_TRUE(client
                  .SendRaw("POST /query HTTP/1.1\r\nContent-Length: 6\r\n"
                           "\r\n1 to 2"
                           "\x01\x02garbage that is not HTTP\r\n\r\n")
                  .ok());
  HttpResponse first;
  ASSERT_TRUE(client.ReadResponse(&first).ok());
  EXPECT_EQ(first.status, 200);
  EXPECT_EQ(first.body, "1 2");
  HttpResponse second;
  Status st = client.ReadResponse(&second, 3000);
  if (st.ok()) {
    EXPECT_GE(second.status, 400);  // the garbage got a coded 4xx
  }  // ...or a clean close; either is within contract
}

TEST(HttpServerLive, OversizedHeadersGet431) {
  LiveServer s;
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", s.port()).ok());
  ASSERT_TRUE(client
                  .SendRaw("GET / HTTP/1.1\r\nX-Big: " +
                           std::string(64 * 1024, 'a') + "\r\n\r\n")
                  .ok());
  HttpResponse resp;
  Status st = client.ReadResponse(&resp, 3000);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(resp.status, 431);
}

TEST(HttpServerLive, BadXqcHeaderValuesAre400NotCrash) {
  LiveServer s;
  HttpResponse resp;
  ASSERT_TRUE(HttpFetch("127.0.0.1", s.port(), "POST", "/query",
                        {{"X-XQC-Deadline-Ms", "soon"}}, "1", &resp)
                  .ok());
  EXPECT_EQ(resp.status, 400);
  ASSERT_TRUE(HttpFetch("127.0.0.1", s.port(), "POST", "/query",
                        {{"X-XQC-Batch-Size", "-5"}}, "1", &resp)
                  .ok());
  EXPECT_EQ(resp.status, 400);
}

// ---- timeouts and premature closes -----------------------------------

TEST(HttpServerLive, SlowlorisEvictedWithinHeaderTimeout) {
  HttpServerOptions hopts;
  hopts.header_timeout_ms = 150;
  LiveServer s(hopts);
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", s.port()).ok());
  // Drip half a request line and stall.
  ASSERT_TRUE(client.SendRaw("POST /que").ok());
  HttpResponse resp;
  const auto t0 = std::chrono::steady_clock::now();
  Status st = client.ReadResponse(&resp, 5000);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  // Either a best-effort 408 or a bare close — but promptly.
  if (st.ok()) EXPECT_EQ(resp.status, 408);
  EXPECT_LT(ms, 2000.0);
  for (int i = 0; i < 100 && s.server->counters().timeouts_header == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(s.server->counters().timeouts_header, 1);
}

TEST(HttpServerLive, IdleKeepAliveConnectionsEvicted) {
  HttpServerOptions hopts;
  hopts.idle_timeout_ms = 150;
  LiveServer s(hopts);
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", s.port()).ok());
  HttpResponse resp;
  ASSERT_TRUE(client.Request("POST", "/query", {}, "1", &resp).ok());
  EXPECT_EQ(resp.status, 200);
  // Now sit idle; the server must reclaim the connection.
  Status st = client.ReadResponse(&resp, 15000);
  EXPECT_FALSE(st.ok());  // clean close, no response
  for (int i = 0; i < 300 && s.server->counters().idle_closed == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(s.server->counters().idle_closed, 1);
}

TEST(HttpServerLive, PrematureCloseAtEveryStageIsSurvived) {
  LiveServer s;
  // Stage 1: connect, say nothing, close.
  {
    HttpClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", s.port()).ok());
  }
  // Stage 2: half a request, close.
  {
    HttpClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", s.port()).ok());
    ASSERT_TRUE(c.SendRaw("POST /query HTTP/1.1\r\nConte").ok());
  }
  // Stage 3: headers but only part of the declared body, close.
  {
    HttpClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", s.port()).ok());
    ASSERT_TRUE(
        c.SendRaw("POST /query HTTP/1.1\r\nContent-Length: 100\r\n\r\npart")
            .ok());
  }
  // Stage 4: full request, close before reading the response.
  {
    HttpClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", s.port()).ok());
    ASSERT_TRUE(c.SendRaw("POST /query HTTP/1.1\r\nContent-Length: 6\r\n"
                          "\r\n1 to 5")
                    .ok());
  }
  // The loop notices each close without crashing, and still serves.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  HttpResponse resp;
  ASSERT_TRUE(
      HttpFetch("127.0.0.1", s.port(), "GET", "/healthz", {}, "", &resp)
          .ok());
  EXPECT_EQ(resp.status, 200);
  for (int i = 0; i < 100 && s.server->counters().open_connections > 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(s.server->counters().open_connections, 0);
}

// ---- socket fault injection ------------------------------------------

TEST(HttpNetFault, ShortWritesDeliverByteIdenticalResponses) {
  HttpServerOptions hopts;
  LiveServer s(hopts);
  s.injector.mode = NetFaultMode::kShortWrite;
  HttpResponse resp;
  ASSERT_TRUE(HttpFetch("127.0.0.1", s.port(), "POST", "/query", {},
                        "for $i in 1 to 50 return $i", &resp)
                  .ok());
  EXPECT_EQ(resp.status, 200);
  std::string want;
  for (int i = 1; i <= 50; i++) {
    if (i > 1) want += " ";
    want += std::to_string(i);
  }
  EXPECT_EQ(resp.body, want);
  EXPECT_GT(s.server->counters().short_writes, 0);
}

TEST(HttpNetFault, MidResponseCloseTruncatesOnceThenRecovers) {
  LiveServer s;
  s.injector.mode = NetFaultMode::kMidResponseClose;
  s.injector.fail_n = 1;  // only the first response faults
  HttpResponse resp;
  Status st = HttpFetch("127.0.0.1", s.port(), "POST", "/query", {}, "1 to 5",
                        &resp);
  EXPECT_FALSE(st.ok());  // truncated response must be detected
  EXPECT_EQ(s.server->counters().responses_truncated, 1);
  Status st2 = HttpFetch("127.0.0.1", s.port(), "POST", "/query", {}, "1 to 5",
                         &resp);
  ASSERT_TRUE(st2.ok()) << st2.ToString()
                        << " truncated=" << s.server->counters().responses_truncated
                        << " ops=" << s.injector.ops.load();
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "1 2 3 4 5");
}

TEST(HttpNetFault, AcceptFailSurvivedAndCounted) {
  LiveServer s;
  s.injector.mode = NetFaultMode::kAcceptFail;
  s.injector.fail_n = 1;
  // First connection is accepted then dropped; the client sees a close.
  {
    HttpClient c;
    ASSERT_TRUE(c.Connect("127.0.0.1", s.port()).ok());
    (void)c.SendRaw("GET /healthz HTTP/1.1\r\n\r\n");
    HttpResponse resp;
    EXPECT_FALSE(c.ReadResponse(&resp, 2000).ok());
  }
  // Second connection is served normally.
  HttpResponse resp;
  ASSERT_TRUE(
      HttpFetch("127.0.0.1", s.port(), "GET", "/healthz", {}, "", &resp)
          .ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(s.server->counters().accept_faults, 1);
}

TEST(HttpNetFault, StalledReadEvictedByTimeout) {
  HttpServerOptions hopts;
  hopts.header_timeout_ms = 150;
  hopts.idle_timeout_ms = 150;
  LiveServer s(hopts);
  s.injector.mode = NetFaultMode::kStalledRead;
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", s.port()).ok());
  ASSERT_TRUE(client.SendRaw("GET /healthz HTTP/1.1\r\n\r\n").ok());
  HttpResponse resp;
  const auto t0 = std::chrono::steady_clock::now();
  Status st = client.ReadResponse(&resp, 5000);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_FALSE(st.ok() && resp.status == 200);  // the read never happened
  EXPECT_LT(ms, 2000.0);  // evicted by the timeout, not hung
}

TEST(HttpNetFault, SlowClientLargeResponseHitsWriteTimeout) {
  HttpServerOptions hopts;
  hopts.write_timeout_ms = 200;
  LiveServer s(hopts);
  s.injector.mode = NetFaultMode::kSlowClient;
  s.injector.slow_write_gap_ms = 20;
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", s.port()).ok());
  ASSERT_TRUE(client
                  .SendRaw("POST /query HTTP/1.1\r\nContent-Length: 27\r\n"
                           "\r\nfor $i in 1 to 999 return $i")
                  .ok());
  HttpResponse resp;
  Status st = client.ReadResponse(&resp, 10000);
  EXPECT_FALSE(st.ok());  // evicted mid-trickle
  for (int i = 0; i < 100 && s.server->counters().timeouts_write == 0; i++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(s.server->counters().timeouts_write, 1);
}

TEST(HttpEnvFault, ModeSweepStaysLiveAndLeakFree) {
  // scripts/check.sh runs this test once per XQC_NET_FAULT_MODE value.
  // Under every mode the server must stay alive, evict what it must
  // within its (shortened) timeouts, and shut down cleanly — ASan/TSan
  // turn any leak or race on the fault paths into a failure. Outcome
  // counts are only pinned for the modes where they are deterministic.
  NetFaultMode mode = NetFaultMode::kNone;
  const char* env = std::getenv("XQC_NET_FAULT_MODE");
  if (env != nullptr) {
    ASSERT_TRUE(NetFaultModeFromName(env, &mode)) << "bad mode: " << env;
  }
  HttpServerOptions hopts;
  hopts.header_timeout_ms = 300;
  hopts.idle_timeout_ms = 300;
  hopts.write_timeout_ms = 300;
  LiveServer s(hopts);
  s.injector.mode = mode;
  int ok = 0;
  for (int i = 0; i < 20; i++) {
    HttpResponse resp;
    Status st = HttpFetch("127.0.0.1", s.port(), "POST", "/query", {},
                          "1 to 3", &resp, 3000);
    if (st.ok() && resp.status == 200 && resp.body == "1 2 3") ok++;
  }
  if (mode == NetFaultMode::kNone || mode == NetFaultMode::kShortWrite) {
    EXPECT_EQ(ok, 20);  // these modes may slow, never break, responses
  }
  if (mode == NetFaultMode::kAcceptFail ||
      mode == NetFaultMode::kStalledRead) {
    EXPECT_EQ(ok, 0);  // nothing can be served, but nothing crashed
  }
  if (mode != NetFaultMode::kNone) {
    EXPECT_GT(s.injector.ops.load(), 0) << "fault mode never fired";
  }
  // The fixture destructor runs Stop() + Shutdown(): bounded by design.
}

// ---- crash-only drain -------------------------------------------------

TEST(HttpDrain, ReadyzFlipsAndOpenConnectionsGetXqc0012) {
  LiveServer s;
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", s.port()).ok());
  // Partial request: this connection is mid-read at drain time, so it is
  // not idle-closed; its request must be answered with the drain code.
  // (The sleep lets the server accept and read the partial bytes — a
  // connection still sitting in the accept queue at drain onset is
  // legitimately RST by the closing listener.)
  ASSERT_TRUE(client.SendRaw("POST /query HTTP/1.1\r\n").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  s.server->BeginDrain();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(s.server->draining());
  // New connections are refused at the socket (listener is closed).
  HttpClient late;
  EXPECT_FALSE(late.Connect("127.0.0.1", s.port()).ok());
  // The in-progress connection finishes its request and gets XQC0012.
  ASSERT_TRUE(client.SendRaw("Content-Length: 6\r\n\r\n1 to 5").ok());
  HttpResponse resp;
  ASSERT_TRUE(client.ReadResponse(&resp).ok());
  EXPECT_EQ(resp.status, 503);
  ASSERT_NE(resp.FindHeader("x-xqc-code"), nullptr);
  EXPECT_EQ(*resp.FindHeader("x-xqc-code"), kServiceDrainingCode);
  EXPECT_GE(s.server->counters().drain_refused, 1);
  EXPECT_TRUE(s.server->WaitDrained(5000));
}

TEST(HttpDrain, InFlightRequestCompletesWithinGrace) {
  HttpServerOptions hopts;
  // Generous grace: under TSan plus a loaded machine the query itself
  // slows by an order of magnitude, and a grace expiry here would turn
  // the expected 200 into a straggler-cancelled 503.
  hopts.drain_grace_ms = 20000;
  ServiceOptions sopts;
  sopts.default_limits.deadline_ms = 60000;
  LiveServer s(hopts, sopts);
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", s.port()).ok());
  const std::string q = "count(for $a in 1 to 80000 return $a)";
  ASSERT_TRUE(client
                  .SendRaw("POST /query HTTP/1.1\r\nContent-Length: " +
                           std::to_string(q.size()) + "\r\n\r\n" + q)
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  s.server->BeginDrain();
  HttpResponse resp;
  ASSERT_TRUE(client.ReadResponse(&resp, 30000).ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "80000");
  EXPECT_TRUE(s.server->WaitDrained(30000));
}

TEST(HttpDrain, StragglerCancelledAfterGraceAsXqc0012) {
  HttpServerOptions hopts;
  hopts.drain_grace_ms = 150;
  ServiceOptions sopts;
  sopts.default_limits.deadline_ms = 60000;  // the query won't time out
  LiveServer s(hopts, sopts);
  HttpClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", s.port()).ok());
  const std::string q =
      "count(for $a in 1 to 1000000, $b in 1 to 1000000 return 1)";
  ASSERT_TRUE(client
                  .SendRaw("POST /query HTTP/1.1\r\nContent-Length: " +
                           std::to_string(q.size()) + "\r\n\r\n" + q)
                  .ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  s.server->BeginDrain();
  HttpResponse resp;
  ASSERT_TRUE(client.ReadResponse(&resp, 8000).ok());
  EXPECT_EQ(resp.status, 503);
  ASSERT_NE(resp.FindHeader("x-xqc-code"), nullptr);
  EXPECT_EQ(*resp.FindHeader("x-xqc-code"), kServiceDrainingCode);
  EXPECT_TRUE(s.server->WaitDrained(5000));
  EXPECT_GE(s.server->counters().stragglers_cancelled, 1);
}

TEST(HttpDrain, StopAlwaysReturnsEvenWithHostileClients) {
  HttpServerOptions hopts;
  hopts.drain_grace_ms = 200;
  LiveServer s(hopts);
  // A slowloris and a half-finished body, both parked.
  HttpClient a, b;
  ASSERT_TRUE(a.Connect("127.0.0.1", s.port()).ok());
  ASSERT_TRUE(a.SendRaw("POST /que").ok());
  ASSERT_TRUE(b.Connect("127.0.0.1", s.port()).ok());
  ASSERT_TRUE(
      b.SendRaw("POST /query HTTP/1.1\r\nContent-Length: 999\r\n\r\nx").ok());
  const auto t0 = std::chrono::steady_clock::now();
  s.server->Stop();
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_LT(ms, 4000.0);  // grace + slack, never the 10s body timeout
}

// ---- plan cache over the wire ----------------------------------------

TEST(HttpPlanCache, HitsVisibleInStatsAndInvalidateResets) {
  LiveServer s;
  HttpResponse resp;
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(HttpFetch("127.0.0.1", s.port(), "POST", "/query", {},
                          "1 + 1", &resp)
                    .ok());
    EXPECT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, "2");
  }
  QueryService::PlanCacheStats pc = s.service->plan_cache_stats();
  EXPECT_EQ(pc.compiles, 1);
  EXPECT_GE(pc.hits, 2);
  ASSERT_TRUE(HttpFetch("127.0.0.1", s.port(), "POST", "/invalidate", {},
                        "1 + 1", &resp)
                  .ok());
  EXPECT_EQ(resp.status, 200);
  EXPECT_NE(resp.body.find("\"invalidated\": 1"), std::string::npos);
  ASSERT_TRUE(
      HttpFetch("127.0.0.1", s.port(), "POST", "/query", {}, "1 + 1", &resp)
          .ok());
  EXPECT_EQ(s.service->plan_cache_stats().compiles, 2);  // recompiled
}

TEST(HttpPlanCache, NoPlanCacheHeaderBypassesByteIdentically) {
  LiveServer s;
  HttpResponse cached, uncached;
  ASSERT_TRUE(HttpFetch("127.0.0.1", s.port(), "POST", "/query", {},
                        "for $i in 1 to 20 return $i * $i", &cached)
                  .ok());
  ASSERT_TRUE(HttpFetch("127.0.0.1", s.port(), "POST", "/query",
                        {{"X-XQC-No-Plan-Cache", "1"}},
                        "for $i in 1 to 20 return $i * $i", &uncached)
                  .ok());
  EXPECT_EQ(cached.status, 200);
  EXPECT_EQ(uncached.status, 200);
  EXPECT_EQ(cached.body, uncached.body);  // the ablation is byte-identical
}

}  // namespace
}  // namespace xqc
