#!/usr/bin/env bash
# Runs the intra-query parallelism benchmarks (bench/bench_parallel.cc)
# and writes the results to BENCH_parallel.json at the repo root. Each
# fn:collection scan is swept over --parallelism {1, 2, 4, 8};
# parallelism=1 is the serial oracle and every timed configuration is
# byte-verified against it before the clock starts.
#
# NOTE: on a single-core host the expected curve is FLAT (parallelism
# cannot beat the core count); the acceptance criterion there is graceful
# degradation — no slowdown cliff and no divergence from the oracle.
#
# Usage: scripts/bench_parallel.sh [extra benchmark flags...]
#   XQC_SCALE=<float>  scales corpus document sizes (see bench/bench_util.h)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_parallel

./build/bench/bench_parallel \
  --benchmark_out=BENCH_parallel.json \
  --benchmark_out_format=json \
  --benchmark_repetitions="${XQC_BENCH_REPS:-1}" \
  "$@"

echo "wrote BENCH_parallel.json"
