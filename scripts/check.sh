#!/usr/bin/env bash
# Full verification sweep: regular build + tests, then the whole suite
# again under address+undefined sanitizers (-DXQC_SANITIZE), then the
# concurrency-sensitive suites under ThreadSanitizer.
#
# Usage: scripts/check.sh [--sanitize-only]
#
# The deep-recursion robustness tests are calibrated for production frame
# sizes; sanitizer frames are far larger, so the sanitized run raises the
# stack limit (see the XQC_SANITIZE comment in CMakeLists.txt).
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

if [[ "${1:-}" != "--sanitize-only" ]]; then
  echo "=== regular build + tests (build/) ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  (cd build && ctest --output-on-failure -j "$JOBS")

  echo "=== bench smoke run (bench_axes, minimal time) ==="
  # One short pass over the axis benchmarks so index/DDO regressions that
  # only show up in the bench harness are caught here, not at bench time.
  # (benchmark 1.7.x: --benchmark_min_time takes seconds, not "1x".)
  XQC_SCALE="${XQC_BENCH_SMOKE_SCALE:-0.1}" ./build/bench/bench_axes \
    --benchmark_min_time=0.01 >/dev/null

  echo "=== batched-execution parity sweep + bench_batch smoke ==="
  # The batch-size ablations: corpus + property byte-parity sweeps over
  # {1,2,3,7,1024}, the ExecStats invariance check, and the guard
  # trip/allocation/early-exit parity suites, then a short pass over the
  # batch benchmarks so bench-harness regressions surface here.
  ./build/tests/corpus_test --gtest_brief=1
  ./build/tests/property_test --gtest_filter='*BatchSizesAgree*' \
    --gtest_brief=1
  ./build/tests/engine_test --gtest_filter='*BatchSizeInvariant*' \
    --gtest_brief=1
  ./build/tests/guard_test --gtest_filter='*Batched*' --gtest_brief=1
  XQC_SCALE="${XQC_BENCH_SMOKE_SCALE:-0.1}" ./build/bench/bench_batch \
    --benchmark_min_time=0.01 >/dev/null

  echo "=== intra-query parallelism parity sweep + bench_parallel smoke ==="
  # The fn:collection partition/merge path: byte-parity across parallelism
  # levels (corpus, XMark-style, eviction-scrambled caches, generated
  # property queries), guard trip-code parity on split budgets, and the
  # shared-TaskPool stress, then a short pass over the parallelism
  # benchmarks (which self-verify every configuration against the serial
  # oracle before timing).
  ./build/tests/parallel_test --gtest_brief=1
  ./build/tests/property_test --gtest_filter='*ParallelismLevelsAgree*' \
    --gtest_brief=1
  ./build/tests/guard_test --gtest_filter='ParallelGuard*' --gtest_brief=1
  ./build/tests/concurrency_test \
    --gtest_filter='*SharedTaskPool*:*PartitionedRequests*' --gtest_brief=1
  XQC_SCALE="${XQC_BENCH_SMOKE_SCALE:-0.1}" ./build/bench/bench_parallel \
    --benchmark_min_time=0.01 >/dev/null

  echo "=== document-store fault matrix (IoFaultInjector modes) ==="
  # The FaultMatrix suite asserts mode-specific outcomes (recovery within
  # the retry budget, quarantine on truncation, deadline cuts) under each
  # injected I/O fault — including whole fn:collection scans (lenient
  # skip-and-shrink vs strict propagation, serial and partitioned); sweep
  # every mode the injector supports.
  for mode in none fail-open short-read slow-read flaky; do
    echo "--- XQC_IO_FAULT_MODE=$mode ---"
    XQC_IO_FAULT_MODE="$mode" ./build/tests/store_test \
      --gtest_filter='FaultMatrix*' --gtest_brief=1
  done

  echo "=== snapshot-tier fault matrix (XQC_SNAP_FAULT_MODE) ==="
  # The SnapshotFaultMatrix suite asserts mode-specific outcomes for the
  # persistent snapshot tier (publish failures never fail the load, read
  # corruption quarantines + reparses, slow publishes still land) under
  # each snapshot-path injector mode; the none/slow rows double as the
  # happy-path write/reuse check.
  for mode in none snap-short-write snap-fsync snap-rename snap-bitflip \
      snap-slow-write; do
    echo "--- XQC_SNAP_FAULT_MODE=$mode ---"
    XQC_SNAP_FAULT_MODE="$mode" ./build/tests/store_test \
      --gtest_filter='SnapshotFaultMatrix*' --gtest_brief=1
  done

  echo "=== snapshot crash-recovery smoke (kill -9 mid-publish) ==="
  # SIGKILL inside the widened publish window: no torn snapshot may be
  # published, and the next process must recover transparently.
  scripts/crash_snapshot.sh build/examples/xqc_shell

  echo "=== snapshot cold-start bench smoke (bench_store_cold) ==="
  # A scaled-down pass of scripts/bench_store.sh: cross-checks reparse vs
  # snapshot-rebuild node counts and that every timed re-open actually hit
  # the snapshot tier; exits non-zero on divergence.
  XQC_SCALE=0.1 XQC_STORE_BENCH_REPS=3 \
    XQC_STORE_BENCH_OUT=build/BENCH_store_smoke.json \
    ./build/bench/bench_store_cold >/dev/null

  echo "=== overload chaos smoke (bench_service, short run) ==="
  # A short sustained-load pass through the whole overload-resilience
  # stack (per-tenant quotas, fair dequeue, shedding, circuit breaker,
  # composed I/O + guard fault injection). The harness asserts its own
  # invariants — no deadlock, explicit fast rejection codes, bounded
  # accepted p99, breaker open + recovery — and exits non-zero on any
  # violation. scripts/bench_service.sh runs the full-length version.
  XQC_CHAOS_MS="${XQC_CHAOS_SMOKE_MS:-2000}" \
    XQC_CHAOS_OUT=build/BENCH_service_smoke.json ./build/bench/bench_service

  echo "=== HTTP net-fault matrix (XQC_NET_FAULT_MODE) ==="
  # The HttpEnvFault suite drives live query round-trips under each
  # socket-level fault mode (accept failures, short writes, stalled
  # reads, mid-response closes, 1-byte/10ms slow clients) and asserts
  # mode-specific outcomes plus a bounded clean shutdown; sweep every
  # mode the injector supports. The full adversarial corpus in http_test
  # already ran under ctest above (and runs again under ASan below).
  for mode in none accept-fail short-write stalled-read mid-response-close \
      slow-client; do
    echo "--- XQC_NET_FAULT_MODE=$mode ---"
    XQC_NET_FAULT_MODE="$mode" ./build/tests/http_test \
      --gtest_filter='HttpEnvFault*' --gtest_brief=1
  done

  echo "=== HTTP chaos smoke (bench_service --http, short run) ==="
  # The overload chaos harness driven through a real socket: flooding
  # tenant, malformed-frame vandal, cold-vs-hot plan-cache timing, the
  # --no-plan-cache ablation byte-identity check, and a timed drain. The
  # harness asserts its own invariants and exits non-zero on violation.
  # scripts/bench_service.sh --http runs the full-length version.
  XQC_CHAOS_MS="${XQC_CHAOS_SMOKE_MS:-2000}" \
    XQC_HTTP_OUT=build/BENCH_http_smoke.json ./build/bench/bench_service --http

  echo "=== real-binary HTTP smoke (xqc_httpd + curl + SIGTERM drain) ==="
  # Boot the actual server binary, drive it over the wire with curl, and
  # SIGTERM it with a request in flight: crash-only drain, exit 0.
  scripts/http_smoke.sh build/examples/xqc_httpd
fi

echo "=== sanitized build + tests (build-asan/, address+undefined) ==="
cmake -B build-asan -S . -DXQC_SANITIZE=address,undefined >/dev/null
cmake --build build-asan -j "$JOBS"
(
  ulimit -s 262144 2>/dev/null || echo "warning: could not raise stack limit"
  cd build-asan && ctest --output-on-failure -j "$JOBS"
)

echo "=== thread-sanitized build + tests (build-tsan/) ==="
# TSan can't combine with ASan, so it gets its own tree. Run the suites
# that exercise real parallelism (concurrency_test, service_test's tenant
# queue/shedding bookkeeping, the concurrent property oracle, the
# DocumentStore singleflight/eviction/quarantine/breaker stress in
# store_test, the partitioned fn:collection execution + shared TaskPool in
# parallel_test, and the HTTP event loop's handoff to the worker pool —
# completions queue, self-pipe wakeups, drain races — in http_test) plus
# the guard and streaming suites whose machinery (cancellation tokens,
# ScopedGuard, ResultStream) the threaded paths lean on.
cmake -B build-tsan -S . -DXQC_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "$JOBS" --target \
  concurrency_test service_test property_test guard_test streaming_test \
  store_test parallel_test http_test
(
  ulimit -s 262144 2>/dev/null || echo "warning: could not raise stack limit"
  cd build-tsan && ctest --output-on-failure -j "$JOBS" \
    -R 'concurrency_test|service_test|property_test|guard_test|streaming_test|store_test|parallel_test|http_test'
)

echo "=== all checks passed ==="
