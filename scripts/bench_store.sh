#!/usr/bin/env bash
# Runs the snapshot-tier cold-start benchmark (bench/bench_store_cold.cc)
# and writes BENCH_store.json at the repo root: for each document size,
# the p50/min cold-load latency of a full reparse vs a snapshot re-open
# (checksum verify + columnar tree rebuild), the on-disk snapshot size,
# and the p50 speedup. The harness cross-checks node counts between the
# two paths — a non-zero exit means the snapshot path failed or diverged.
#
# Usage: scripts/bench_store.sh
#   XQC_SCALE=<f>            document size multiplier (default 1)
#   XQC_STORE_BENCH_REPS=<n> timed repetitions per path (default 9)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_store_cold

XQC_STORE_BENCH_OUT=BENCH_store.json ./build/bench/bench_store_cold

echo "wrote BENCH_store.json"
