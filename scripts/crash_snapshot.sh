#!/usr/bin/env bash
# Kill-9 crash-recovery smoke for the persistent snapshot tier (DESIGN.md
# "Persistent snapshot tier").
#
# A snapshot publish is tmp-write -> fsync -> rename; a crash at any point
# before the rename must leave NO published *.xqsnap (at most an orphaned
# *.xqsnap.tmp.* that the next process sweeps). This script widens the
# publish window with the snap-slow-write injector, SIGKILLs the shell
# inside it, and then asserts:
#
#   1. no *.xqsnap was published by the killed process,
#   2. a clean rerun answers the query correctly (reparse fallback),
#   3. the rerun publishes a snapshot and swept any orphaned temp file,
#   4. a third run is served from the (now valid) snapshot.
#
# Usage: scripts/crash_snapshot.sh [path-to-xqc_shell]
set -euo pipefail

cd "$(dirname "$0")/.."

SHELL_BIN="${1:-build/examples/xqc_shell}"
if [[ ! -x "$SHELL_BIN" ]]; then
  echo "crash_snapshot: $SHELL_BIN not built" >&2
  exit 2
fi

WORK=$(mktemp -d /tmp/xqc_crash_snap.XXXXXX)
SNAPS="$WORK/snaps"
trap 'rm -rf "$WORK"' EXIT

DOC="$WORK/crash.xml"
{
  printf '<site>'
  for i in $(seq 1 200); do printf '<item id="i%d"><n>v%d</n></item>' "$i" "$i"; done
  printf '</site>'
} > "$DOC"

QUERY="count(doc('$DOC')//item)"
WANT="200"

# --- 1+2: kill -9 inside the widened publish window. ------------------------
# snap-slow-write sleeps XQC_IO_FAULT_DELAY_MS in 1ms slices between writing
# the temp file and the rename, so a SIGKILL during the sleep lands exactly
# in the torn-publish window the format must tolerate.
XQC_SNAP_FAULT_MODE=snap-slow-write XQC_IO_FAULT_DELAY_MS=4000 \
  "$SHELL_BIN" --snapshot-dir "$SNAPS" -q "$QUERY" >/dev/null 2>&1 &
VICTIM=$!
# Give it time to parse and enter the publish window, then pull the plug.
sleep 1
kill -9 "$VICTIM" 2>/dev/null || true
wait "$VICTIM" 2>/dev/null || true

published=$(find "$SNAPS" -name '*.xqsnap' 2>/dev/null | wc -l)
if [[ "$published" -ne 0 ]]; then
  echo "crash_snapshot: FAIL — $published snapshot(s) published by a killed process" >&2
  ls -l "$SNAPS" >&2
  exit 1
fi
orphans_before=$(find "$SNAPS" -name '*.xqsnap.tmp.*' 2>/dev/null | wc -l)
echo "crash_snapshot: kill -9 left 0 published snapshots ($orphans_before orphan tmp file(s))"

# --- 3: a clean rerun recovers by reparsing and publishes for real. ---------
got=$("$SHELL_BIN" --snapshot-dir "$SNAPS" -q "$QUERY")
if [[ "$got" != "$WANT" ]]; then
  echo "crash_snapshot: FAIL — recovery run answered '$got', want '$WANT'" >&2
  exit 1
fi
published=$(find "$SNAPS" -name '*.xqsnap' | wc -l)
orphans_after=$(find "$SNAPS" -name '*.xqsnap.tmp.*' 2>/dev/null | wc -l)
if [[ "$published" -ne 1 || "$orphans_after" -ne 0 ]]; then
  echo "crash_snapshot: FAIL — after recovery: $published published, $orphans_after orphan tmp(s)" >&2
  ls -l "$SNAPS" >&2
  exit 1
fi
echo "crash_snapshot: recovery run correct; snapshot republished, orphans swept"

# --- 4: the republished snapshot actually serves a cold process. ------------
stats=$("$SHELL_BIN" --snapshot-dir "$SNAPS" --stats -q "$QUERY" 2>&1)
if ! grep -q "$WANT" <<< "$stats"; then
  echo "crash_snapshot: FAIL — snapshot-served run answered wrong" >&2
  exit 1
fi
if ! grep -Eq 'snapshot-hits=[1-9]|hits=[1-9]' <<< "$stats"; then
  echo "crash_snapshot: FAIL — third run did not hit the snapshot tier" >&2
  echo "$stats" >&2
  exit 1
fi
echo "crash_snapshot: PASS — torn publish invisible, recovery transparent"
