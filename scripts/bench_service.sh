#!/usr/bin/env bash
# Runs the overload-resilience chaos harness (bench/bench_service.cc) at
# full length and writes the results to BENCH_service.json at the repo
# root: p50/p99 latency per outcome class (ok, XQC0001 shed, XQC0002
# guard trip, XQC0007 overloaded, XQC0008 retries exhausted, XQC0010
# tenant over quota, XQC0011 breaker open) plus service and store
# counters. The harness drives mixed hot/cold multi-tenant traffic at
# saturation with a mid-run I/O fault window and asserts its own
# invariants — a non-zero exit means an invariant was violated.
#
# With --http the same harness is driven through a real socket instead:
# every request goes over HTTP/1.1 to an in-process HttpServer (plan
# cache on), with a flooding tenant, a vandal thread sending malformed
# frames, cold-vs-hot plan-compile timing, a --no-plan-cache ablation
# byte-identity check, and a timed drain; results go to BENCH_http.json.
#
# Usage: scripts/bench_service.sh [--http]
#   XQC_CHAOS_MS=<n>       run length in ms (default 6000 here)
#   XQC_CHAOS_THREADS=<n>  client threads (default 8)
#   XQC_CHAOS_SEED=<n>     traffic-mix RNG seed
#   XQC_CHAOS_FAST_MS=<n>  fast-fail p99 bound in ms (default 25)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_service

if [[ "${1:-}" == "--http" ]]; then
  XQC_CHAOS_MS="${XQC_CHAOS_MS:-6000}" \
    XQC_HTTP_OUT=BENCH_http.json ./build/bench/bench_service --http
  echo "wrote BENCH_http.json"
else
  XQC_CHAOS_MS="${XQC_CHAOS_MS:-6000}" \
    XQC_CHAOS_OUT=BENCH_service.json ./build/bench/bench_service
  echo "wrote BENCH_service.json"
fi
