#!/usr/bin/env bash
# Runs the structural-index / sort-free path benchmarks (bench/bench_axes.cc)
# and writes the results to BENCH_axes.json at the repo root.
#
# Usage: scripts/bench_axes.sh [extra benchmark flags...]
#   XQC_SCALE=<float>  scales document sizes (see bench/bench_util.h)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_axes

./build/bench/bench_axes \
  --benchmark_out=BENCH_axes.json \
  --benchmark_out_format=json \
  --benchmark_repetitions="${XQC_BENCH_REPS:-1}" \
  "$@"

echo "wrote BENCH_axes.json"
