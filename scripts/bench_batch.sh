#!/usr/bin/env bash
# Runs the batched-iterator-execution benchmarks (bench/bench_batch.cc)
# and writes the results to BENCH_batch.json at the repo root. Each query
# is swept over batch_size {1, 8, 64, 1024}; batch=1 is the
# tuple-at-a-time oracle, so the per-tuple overhead reduction is the
# Batch/1 vs Batch/1024 time ratio.
#
# Usage: scripts/bench_batch.sh [extra benchmark flags...]
#   XQC_SCALE=<float>  scales document sizes (see bench/bench_util.h)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" --target bench_batch

./build/bench/bench_batch \
  --benchmark_out=BENCH_batch.json \
  --benchmark_out_format=json \
  --benchmark_repetitions="${XQC_BENCH_REPS:-1}" \
  "$@"

echo "wrote BENCH_batch.json"
