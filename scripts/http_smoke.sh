#!/usr/bin/env bash
# Real-binary HTTP smoke: boot the actual xqc_httpd binary on an
# ephemeral port, drive it with curl (query round-trip, plan-cache hit,
# coded query error, /invalidate, /stats, /readyz), throw one malformed
# frame at the raw socket, then SIGTERM it with a request in flight and
# require a clean, bounded, zero-exit crash-only drain. This is the only
# place the full stack — argv parsing, signal handler, event loop,
# worker pool, drain — runs as the user would run it.
#
# Usage: scripts/http_smoke.sh [path/to/xqc_httpd]
set -euo pipefail

cd "$(dirname "$0")/.."

BIN="${1:-build/examples/xqc_httpd}"
[[ -x "$BIN" ]] || { echo "http_smoke: $BIN not built"; exit 1; }

LOG=$(mktemp)
cleanup() {
  kill -9 "$PID" 2>/dev/null || true
  rm -f "$LOG"
}
"$BIN" --port 0 --drain-grace-ms 2000 2>"$LOG" &
PID=$!
trap cleanup EXIT

# --port 0 lets the kernel pick; the binary logs the bound port.
PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "$LOG" | head -1)
  [[ -n "$PORT" ]] && break
  kill -0 "$PID" 2>/dev/null || { echo "http_smoke: server died at startup"; cat "$LOG"; exit 1; }
  sleep 0.1
done
[[ -n "$PORT" ]] || { echo "http_smoke: no listening line"; cat "$LOG"; exit 1; }

URL="http://127.0.0.1:$PORT"

out=$(curl -sS -X POST --data-binary "1 to 5" "$URL/query")
[[ "$out" == "1 2 3 4 5" ]] || { echo "http_smoke: bad query result: '$out'"; exit 1; }

# Second trip with the same query must be a plan-cache hit.
curl -sS -X POST --data-binary "1 to 5" "$URL/query" >/dev/null
curl -sS "$URL/stats" | grep -q '"hits": [1-9]' \
  || { echo "http_smoke: no plan-cache hit in /stats"; exit 1; }

[[ "$(curl -sS "$URL/readyz")" == "ready" ]] \
  || { echo "http_smoke: /readyz not ready"; exit 1; }

# A hostile query is the query's problem, not the server's: 400 + code.
code=$(curl -sS -o /dev/null -w '%{http_code}' -X POST \
  --data-binary "1 to (((" "$URL/query")
[[ "$code" == "400" ]] || { echo "http_smoke: parse error gave $code, want 400"; exit 1; }

# A malformed frame on the raw socket gets a coded 400, never a crash.
if ! timeout 5 bash -c "exec 3<>/dev/tcp/127.0.0.1/$PORT;
    printf 'GET / HTTP/9.9\r\n\r\n' >&3; head -c 64 <&3 | grep -q ' 400 '"; then
  echo "http_smoke: malformed frame not rejected with 400"; exit 1
fi

curl -sS -X POST --data-binary "*" "$URL/invalidate" | grep -q '"invalidated"' \
  || { echo "http_smoke: /invalidate failed"; exit 1; }

# SIGTERM with a request in flight: the drain must finish it (or cancel
# it as XQC0012 after the grace), then the process must exit 0.
curl -sS -X POST -H 'X-XQC-Deadline-Ms: 5000' \
  --data-binary "count(for \$a in 1 to 300000 return \$a)" \
  "$URL/query" >/dev/null 2>&1 &
CURL=$!
sleep 0.2
kill -TERM "$PID"
wait "$CURL" 2>/dev/null || true

for _ in $(seq 1 150); do
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$PID" 2>/dev/null; then
  echo "http_smoke: drain hung past 15s"; cat "$LOG"; exit 1
fi
RC=0; wait "$PID" || RC=$?
[[ "$RC" == "0" ]] || { echo "http_smoke: xqc_httpd exited $RC"; cat "$LOG"; exit 1; }
grep -q '^drained:' "$LOG" || { echo "http_smoke: no drain summary"; cat "$LOG"; exit 1; }

echo "http_smoke: OK (port $PORT, clean drain)"
