// Iterator vs materializing execution (ExecMode) on early-terminating
// query heads: fn:exists, positional [1], fn:subsequence prefixes, and
// quantifiers over a large document.
//
// Expected shapes:
//  - streaming cost for the early-exit queries is O(prefix) and independent
//    of the document size, materializing is O(n): the gap grows linearly
//    and is far beyond 10x at the default scale (~20k items);
//  - both modes report identical results (checked here, not just timed);
//  - the full-scan control query shows stream-vs-materialize parity, i.e.
//    the iterator layer itself adds no asymptotic overhead.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "src/xml/xml_parser.h"

namespace xqc {
namespace {

constexpr size_t kDefaultItems = 20000;

size_t ScaledItems() { return bench::Scaled(kDefaultItems); }

const std::string& DocXml() {
  static const std::string* xml = [] {
    std::string* s = new std::string("<doc>");
    for (size_t i = 1; i <= ScaledItems(); i++) {
      std::string id = std::to_string(i);
      *s += "<item><id>" + id + "</id><grp>" + std::to_string(i % 7) +
            "</grp></item>";
    }
    *s += "</doc>";
    return s;
  }();
  return *xml;
}

NodePtr ParsedDoc() {
  static const NodePtr doc = [] {
    Result<NodePtr> r = ParseXml(DocXml());
    if (!r.ok()) std::abort();
    return r.value();
  }();
  return doc;
}

struct EarlyExitQuery {
  const char* name;
  const char* query;
};

const EarlyExitQuery kQueries[] = {
    {"Exists", "exists(for $x in $D//item return $x)"},
    {"ExistsWhere",
     "exists(for $x in $D//item where number($x/id) >= 1 return $x)"},
    {"FirstItem", "(for $x in $D//item return string($x/id))[1]"},
    {"SubsequencePrefix",
     "subsequence(for $x in $D//item return string($x/id), 1, 3)"},
    {"SomeQuantifier", "some $x in $D//item satisfies number($x/id) = 2"},
    // Control: consumes everything; both modes must touch all tuples.
    {"FullCount", "count(for $x in $D//item return $x)"},
};

void BM_ExecMode(benchmark::State& state, const char* query_text,
                 ExecMode mode) {
  Engine engine;
  EngineOptions options;
  options.exec_mode = mode;
  std::string query =
      std::string("declare variable $D external; ") + query_text;
  Result<PreparedQuery> q = engine.Prepare(query, options);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  DynamicContext ctx;
  ctx.BindVariable(Symbol("D"), {Item(ParsedDoc())});
  int64_t tuples = 0;
  for (auto _ : state) {
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().size());
    tuples = q.value().last_exec_stats().source_tuples;
  }
  state.counters["source_tuples"] =
      benchmark::Counter(static_cast<double>(tuples));
}

// Sanity check outside the timed region: both modes agree on every query.
bool VerifyModesAgree() {
  Engine engine;
  for (const EarlyExitQuery& q : kQueries) {
    std::string query =
        std::string("declare variable $D external; ") + q.query;
    std::string results[2];
    for (int m = 0; m < 2; m++) {
      EngineOptions options;
      options.exec_mode = m == 0 ? ExecMode::kStreaming : ExecMode::kMaterialize;
      DynamicContext ctx;
      ctx.BindVariable(Symbol("D"), {Item(ParsedDoc())});
      Result<PreparedQuery> p = engine.Prepare(query, options);
      if (!p.ok()) return false;
      Result<std::string> r = p.value().ExecuteToString(&ctx);
      if (!r.ok()) return false;
      results[m] = r.value();
    }
    if (results[0] != results[1]) {
      fprintf(stderr, "MODE MISMATCH on %s:\n  streaming:   %s\n  "
              "materialize: %s\n", q.name, results[0].c_str(),
              results[1].c_str());
      return false;
    }
  }
  return true;
}

void RegisterAll() {
  struct Mode {
    const char* name;
    ExecMode mode;
  };
  const Mode kModes[] = {{"Streaming", ExecMode::kStreaming},
                         {"Materialize", ExecMode::kMaterialize}};
  for (const EarlyExitQuery& q : kQueries) {
    for (const Mode& m : kModes) {
      const char* text = q.query;
      ExecMode mode = m.mode;
      benchmark::RegisterBenchmark(
          (std::string("Streaming/") + q.name + "/" + m.name).c_str(),
          [text, mode](benchmark::State& st) { BM_ExecMode(st, text, mode); })
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace xqc

int main(int argc, char** argv) {
  if (!xqc::VerifyModesAgree()) return 1;
  xqc::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
