// Cold-start benchmark for the persistent snapshot tier (DESIGN.md
// "Persistent snapshot tier"): after a process restart the memory cache is
// empty, and the first fn:doc of every document pays either
//
//   * a full reparse (no snapshot tier / cold disk), or
//   * a snapshot re-open: checksum verification + columnar tree rebuild,
//     skipping lexing, well-formedness checking, and interning.
//
// This harness measures both paths over synthetic documents of several
// sizes and writes BENCH_store.json at the CWD (override with
// XQC_STORE_BENCH_OUT):
//
//   { "sizes": [ { "doc_bytes": ..., "snapshot_bytes": ...,
//                  "cold_reparse_us": {p50, min}, "snapshot_reopen_us":
//                  {p50, min}, "speedup_p50": ... } ], ... }
//
// Every timed load is followed by an equality probe (node count of the
// rebuilt tree vs the parsed tree), so a snapshot rebuild that diverged
// would fail the run rather than win it. Non-zero exit if the snapshot
// path fails or diverges; speedups are reported, not asserted (CI boxes
// vary), but check.sh smoke-tests that the JSON is produced and sane.
//
// Env knobs: XQC_SCALE (document size multiplier, see bench_util.h),
// XQC_STORE_BENCH_REPS (timed repetitions per path, default 9),
// XQC_STORE_BENCH_OUT (output path, default BENCH_store.json).
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/store/document_store.h"
#include "src/xml/node.h"

namespace xqc {
namespace {

using Clock = std::chrono::steady_clock;

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : def;
}

/// Synthetic auction-ish document: element-heavy with attributes and short
/// text, the shape the parser and the snapshot rebuild both care about.
std::string MakeDoc(size_t approx_bytes) {
  std::string xml = "<site><regions>";
  size_t i = 0;
  while (xml.size() < approx_bytes) {
    xml += "<item id='i" + std::to_string(i) + "' featured='" +
           (i % 7 == 0 ? "yes" : "no") + "'><name>item " + std::to_string(i) +
           "</name><price>" + std::to_string((i * 37) % 500) +
           "</price><payment>Cash</payment></item>";
    ++i;
  }
  xml += "</regions></site>";
  return xml;
}

size_t CountNodes(const Node& n) {
  size_t total = 1 + n.attributes.size();
  for (const NodePtr& c : n.children) total += CountNodes(*c);
  return total;
}

int64_t Median(std::vector<int64_t> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct PathTiming {
  std::vector<int64_t> us;
  size_t nodes = 0;
};

/// Times `reps` fully cold loads (memory cache dropped before each) of
/// `path` through `store`. Returns false on any load failure.
bool TimeColdLoads(DocumentStore* store, const std::string& path, int reps,
                   PathTiming* out) {
  for (int r = 0; r < reps; ++r) {
    store->DropMemoryCache();
    Clock::time_point t0 = Clock::now();
    Result<NodePtr> doc = store->Load(path);
    Clock::time_point t1 = Clock::now();
    if (!doc.ok()) {
      std::fprintf(stderr, "[bench_store] load failed: %s\n",
                   doc.status().ToString().c_str());
      return false;
    }
    out->nodes = CountNodes(*doc.value());
    out->us.push_back(
        std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
            .count());
  }
  return true;
}

}  // namespace

int BenchStoreColdMain() {
  const int reps = static_cast<int>(EnvInt("XQC_STORE_BENCH_REPS", 9));
  const char* out_env = std::getenv("XQC_STORE_BENCH_OUT");
  const std::string out_path = out_env != nullptr ? out_env : "BENCH_store.json";
  const std::string dir = "/tmp/xqc_bench_store_" + std::to_string(::getpid());
  const std::string snap_dir = dir + "/snaps";
  std::system(("mkdir -p " + dir).c_str());

  const size_t kSizes[] = {bench::Scaled(16 << 10), bench::Scaled(128 << 10),
                           bench::Scaled(512 << 10)};
  int failures = 0;
  std::string rows;

  for (size_t approx : kSizes) {
    const std::string path = dir + "/doc_" + std::to_string(approx) + ".xml";
    {
      std::ofstream f(path);
      f << MakeDoc(approx);
    }
    struct stat sb;
    ::stat(path.c_str(), &sb);

    // Path A: no snapshot tier — every cold load is a full reparse.
    DocumentStoreOptions reparse_opts;
    DocumentStore reparse_store(reparse_opts);
    PathTiming reparse;
    if (!TimeColdLoads(&reparse_store, path, reps, &reparse)) {
      failures++;
      continue;
    }

    // Path B: snapshot tier on. One untimed priming load publishes the
    // snapshot; every timed load then rebuilds from it.
    DocumentStoreOptions snap_opts;
    snap_opts.snapshot_dir = snap_dir;
    DocumentStore snap_store(snap_opts);
    if (!snap_store.Load(path).ok()) {
      failures++;
      continue;
    }
    PathTiming reopen;
    if (!TimeColdLoads(&snap_store, path, reps, &reopen)) {
      failures++;
      continue;
    }
    DocumentStore::Counters c = snap_store.counters();
    if (c.totals.snapshot_hits != reps) {
      std::fprintf(stderr,
                   "[bench_store] expected %d snapshot hits, got %lld "
                   "(quarantines=%lld)\n",
                   reps, static_cast<long long>(c.totals.snapshot_hits),
                   static_cast<long long>(c.totals.snapshot_quarantines));
      failures++;
    }
    if (reopen.nodes != reparse.nodes) {
      std::fprintf(stderr,
                   "[bench_store] tree divergence: %zu nodes reparsed vs %zu "
                   "rebuilt\n",
                   reparse.nodes, reopen.nodes);
      failures++;
    }

    int64_t reparse_p50 = Median(reparse.us);
    int64_t reopen_p50 = Median(reopen.us);
    double speedup = reopen_p50 > 0 ? static_cast<double>(reparse_p50) /
                                          static_cast<double>(reopen_p50)
                                    : 0.0;
    int64_t snap_bytes =
        reps > 0 ? c.totals.snapshot_bytes_read / reps : 0;
    std::fprintf(stderr,
                 "[bench_store] %8lld B doc, %zu nodes: reparse p50 %6lld us, "
                 "snapshot re-open p50 %6lld us (%.2fx)\n",
                 static_cast<long long>(sb.st_size), reparse.nodes,
                 static_cast<long long>(reparse_p50),
                 static_cast<long long>(reopen_p50), speedup);

    if (!rows.empty()) rows += ",\n";
    char row[512];
    std::snprintf(
        row, sizeof(row),
        "    {\"doc_bytes\": %lld, \"nodes\": %zu, \"snapshot_bytes\": %lld, "
        "\"cold_reparse_us\": {\"p50\": %lld, \"min\": %lld}, "
        "\"snapshot_reopen_us\": {\"p50\": %lld, \"min\": %lld}, "
        "\"speedup_p50\": %.3f}",
        static_cast<long long>(sb.st_size), reparse.nodes,
        static_cast<long long>(snap_bytes),
        static_cast<long long>(reparse_p50),
        static_cast<long long>(*std::min_element(reparse.us.begin(),
                                                 reparse.us.end())),
        static_cast<long long>(reopen_p50),
        static_cast<long long>(*std::min_element(reopen.us.begin(),
                                                 reopen.us.end())),
        speedup);
    rows += row;
  }

  std::ofstream out(out_path, std::ios::trunc);
  out << "{\n  \"name\": \"store_cold_start\",\n"
      << "  \"reps\": " << reps << ",\n"
      << "  \"scale\": " << bench::ScaleFactor() << ",\n"
      << "  \"failures\": " << failures << ",\n"
      << "  \"sizes\": [\n"
      << rows << "\n  ]\n}\n";
  out.close();
  std::fprintf(stderr, "[bench_store] wrote %s (%d failure%s)\n",
               out_path.c_str(), failures, failures == 1 ? "" : "s");

  std::system(("rm -rf " + dir).c_str());
  return failures == 0 ? 0 : 1;
}

}  // namespace xqc

int main() { return xqc::BenchStoreColdMain(); }
