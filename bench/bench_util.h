// Shared helpers for the paper-table benchmark binaries.
//
// Scaling: the paper's testbed ran documents of 1-50 MB; nested-loop
// configurations on those sizes take hours, so the default reproduction
// scale is smaller (the quadratic-vs-linear shapes are unambiguous well
// below 1 MB). Set XQC_SCALE=<float> to multiply all document sizes
// (XQC_SCALE=4 roughly reproduces the paper's 1 MB Table 3 setting).
#ifndef XQC_BENCH_BENCH_UTIL_H_
#define XQC_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>

#include "src/engine/engine.h"

namespace xqc {
namespace bench {

inline double ScaleFactor() {
  const char* s = std::getenv("XQC_SCALE");
  if (s == nullptr) return 1.0;
  double v = atof(s);
  return v > 0 ? v : 1.0;
}

inline size_t Scaled(size_t bytes) {
  return static_cast<size_t>(static_cast<double>(bytes) * ScaleFactor());
}

/// The paper's four evaluation configurations (Table 3 rows).
struct NamedConfig {
  const char* name;
  EngineOptions options;
};

inline const NamedConfig* Configs(int* count) {
  static const NamedConfig kConfigs[] = {
      {"NoAlgebra", {false, false, JoinImpl::kNestedLoop}},
      {"AlgebraNoOptim", {true, false, JoinImpl::kNestedLoop}},
      {"OptimNLJoin", {true, true, JoinImpl::kNestedLoop}},
      {"OptimXQueryJoin", {true, true, JoinImpl::kHash}},
  };
  *count = 4;
  return kConfigs;
}

/// Prepares and runs one query, aborting the benchmark on error.
inline void RunQueryOrAbort(const Engine& engine, const std::string& query,
                            const EngineOptions& options, DynamicContext* ctx,
                            ::benchmark::State* state) {
  Result<PreparedQuery> q = engine.Prepare(query, options);
  if (!q.ok()) {
    state->SkipWithError(q.status().ToString().c_str());
    return;
  }
  Result<std::string> r = q.value().ExecuteToString(ctx);
  if (!r.ok()) {
    state->SkipWithError(r.status().ToString().c_str());
    return;
  }
  ::benchmark::DoNotOptimize(r.value().size());
}

}  // namespace bench
}  // namespace xqc

#endif  // XQC_BENCH_BENCH_UTIL_H_
