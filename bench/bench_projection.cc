// Document-projection ablation (supports Table 1's TreeProject and the
// paper's streaming-evaluation outlook): measures XMark query evaluation
// with and without statically inferred document projection, plus the
// projection cost and the node-count reduction.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "src/opt/projection_infer.h"
#include "src/xml/project.h"
#include "src/xmark/xmark.h"
#include "src/xquery/parser.h"

namespace xqc {
namespace {

NodePtr FullDoc() {
  static NodePtr* doc = [] {
    XMarkOptions opts;
    opts.target_bytes = bench::Scaled(512 * 1024);
    Result<NodePtr> d = GenerateXMarkDocument(opts);
    return new NodePtr(d.ok() ? d.take() : nullptr);
  }();
  return *doc;
}

size_t CountNodes(const Node& n) {
  size_t c = 1 + n.attributes.size();
  for (const NodePtr& k : n.children) c += CountNodes(*k);
  return c;
}

void BM_Query(benchmark::State& state, int query, bool project) {
  NodePtr doc = FullDoc();
  if (doc == nullptr) {
    state.SkipWithError("generation failed");
    return;
  }
  if (project) {
    Result<Query> parsed = ParseXQuery(XMarkQuery(query));
    ProjectionAnalysis a = InferProjectionPaths(parsed.value());
    auto it = a.paths_by_var.find(Symbol("auction"));
    if (!a.projectable || it == a.paths_by_var.end()) {
      state.SkipWithError("query is not projectable");
      return;
    }
    Result<NodePtr> projected = ProjectTree(doc, it->second);
    if (!projected.ok()) {
      state.SkipWithError(projected.status().ToString().c_str());
      return;
    }
    doc = projected.take();
  }
  state.counters["nodes"] =
      static_cast<double>(CountNodes(*doc));
  DynamicContext ctx;
  ctx.BindVariable(Symbol("auction"), {Item(doc)});
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(XMarkQuery(query));
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<Sequence> r = q.value().Execute(&ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().size());
  }
}

void BM_ProjectCost(benchmark::State& state, int query) {
  NodePtr doc = FullDoc();
  Result<Query> parsed = ParseXQuery(XMarkQuery(query));
  ProjectionAnalysis a = InferProjectionPaths(parsed.value());
  auto it = a.paths_by_var.find(Symbol("auction"));
  if (!a.projectable || it == a.paths_by_var.end()) {
    state.SkipWithError("not projectable");
    return;
  }
  for (auto _ : state) {
    Result<NodePtr> p = ProjectTree(doc, it->second);
    if (!p.ok()) {
      state.SkipWithError(p.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(p.value().get());
  }
}

void RegisterAll() {
  for (int query : {1, 5, 8, 13, 17}) {
    for (bool project : {false, true}) {
      benchmark::RegisterBenchmark(
          ("Projection/Q" + std::to_string(query) +
           (project ? "/Projected" : "/Full"))
              .c_str(),
          [query, project](benchmark::State& st) {
            BM_Query(st, query, project);
          })
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(
        ("Projection/Q" + std::to_string(query) + "/ProjectCost").c_str(),
        [query](benchmark::State& st) { BM_ProjectCost(st, query); })
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace
}  // namespace xqc

int main(int argc, char** argv) {
  xqc::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
