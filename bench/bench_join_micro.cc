// Join-algorithm ablation (beyond the paper's tables; supports Figure 6 and
// the Section 6 discussion): microbenchmarks of the three physical join
// implementations over synthetic tables, sweeping input size and key type.
//
// Expected shapes:
//  - nested-loop cost grows with |L|*|R|; hash/sort with |L|+|R|;
//  - untyped keys pay the promotion-enumeration overhead (two entries +
//    string bridge) relative to typed integer keys;
//  - the ordered-index (sort) variant tracks the hash variant with a
//    log-factor overhead.
#include <benchmark/benchmark.h>

#include "src/runtime/joins.h"
#include "src/types/compare.h"

namespace xqc {
namespace {

enum class KeyKind { kInteger, kUntyped, kMixedNumeric };

AtomicValue MakeKey(KeyKind kind, int64_t v) {
  switch (kind) {
    case KeyKind::kInteger:
      return AtomicValue::Integer(v);
    case KeyKind::kUntyped:
      return AtomicValue::Untyped("k" + std::to_string(v));
    case KeyKind::kMixedNumeric:
      switch (v % 3) {
        case 0: return AtomicValue::Integer(v);
        case 1: return AtomicValue::Decimal(static_cast<double>(v));
        default: return AtomicValue::Double(static_cast<double>(v));
      }
  }
  return AtomicValue::Integer(v);
}

Table MakeTable(const char* field, int rows, int key_space, KeyKind kind) {
  Table t;
  t.reserve(rows);
  uint64_t state = 12345;
  for (int i = 0; i < rows; i++) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    Tuple tup;
    tup.Set(Symbol(field),
            {MakeKey(kind, static_cast<int64_t>((state >> 33) % key_space))});
    t.push_back(std::move(tup));
  }
  return t;
}

KeyFn FieldKey(const char* field) {
  Symbol f(field);
  return [f](const Tuple& t) -> Result<Sequence> { return *t.Get(f); };
}

void BM_Join(benchmark::State& state, KeyKind kind, int algo) {
  int rows = static_cast<int>(state.range(0));
  Table left = MakeTable("a", rows, rows / 4 + 1, kind);
  Table right = MakeTable("b", rows, rows / 4 + 1, kind);
  Symbol a("a"), b("b");
  for (auto _ : state) {
    Result<Table> r = Status::OK();
    if (algo == 0) {
      PredFn pred = [a, b](const Tuple& t) -> Result<bool> {
        return GeneralCompare(CompOp::kEq, *t.Get(a), *t.Get(b));
      };
      r = NestedLoopJoin(left, right, pred, false, Symbol("null"));
    } else if (algo == 3) {
      // The Section 6 static-typing specialization: single-entry keys.
      KeyMode mode = kind == KeyKind::kUntyped ? KeyMode::kStringKeys
                                               : KeyMode::kDoubleKeys;
      Result<std::shared_ptr<const MaterializedInner>> inner =
          MaterializeInner(right, FieldKey("b"), false, mode);
      if (!inner.ok()) {
        state.SkipWithError(inner.status().ToString().c_str());
        return;
      }
      r = EqualityJoinWithIndex(left, FieldKey("a"), right, *inner.value(),
                                false, Symbol("null"));
    } else {
      r = EqualityJoin(left, FieldKey("a"), right, FieldKey("b"), false,
                       Symbol("null"), /*use_ordered_index=*/algo == 2);
    }
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().size());
  }
  state.SetComplexityN(rows);
}

void RegisterAll() {
  struct Algo {
    const char* name;
    int id;
  };
  const Algo kAlgos[] = {{"NestedLoop", 0},
                         {"Hash", 1},
                         {"OrderedIndex", 2},
                         {"HashSpecialized", 3}};
  struct Kind {
    const char* name;
    KeyKind kind;
  };
  const Kind kKinds[] = {{"IntKeys", KeyKind::kInteger},
                         {"UntypedKeys", KeyKind::kUntyped},
                         {"MixedNumericKeys", KeyKind::kMixedNumeric}};
  for (const Kind& k : kKinds) {
    for (const Algo& algo : kAlgos) {
      KeyKind kind = k.kind;
      int id = algo.id;
      auto* b = benchmark::RegisterBenchmark(
          (std::string("JoinMicro/") + k.name + "/" + algo.name).c_str(),
          [kind, id](benchmark::State& st) { BM_Join(st, kind, id); });
      b->Unit(benchmark::kMicrosecond);
      // Nested loops are quadratic: keep their sweep smaller.
      if (id == 0) {
        b->Arg(256)->Arg(1024)->Arg(4096);
      } else {
        b->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);
      }
    }
  }
}

}  // namespace
}  // namespace xqc

int main(int argc, char** argv) {
  xqc::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
