// Chaos harness: sustained multi-tenant load against QueryService at
// saturation, with mid-run I/O faults (IoFaultInjector) and guard faults
// (GuardFaultInjector) composed, exercising the whole overload-resilience
// stack at once (DESIGN.md "Overload policy"):
//
//   * hot traffic (registered shared document, no store I/O) from several
//     well-behaved tenants under tight deadlines,
//   * cold traffic (fn:doc through a DocumentStore with an intentionally
//     tiny cache, so every load is real I/O) that a mid-run fault window
//     drives into the circuit breaker, which must then recover,
//   * one abusive tenant flooding bursts far past its quota (XQC0010) and
//     the global queue bound (XQC0007),
//   * a sprinkle of injected guard trips riding along on hot queries.
//
// Invariants checked (non-zero exit on violation):
//   1. no deadlock: the run and the final Shutdown() complete,
//   2. every response carries either OK or an explicit coded status,
//   3. shed/rejected work fails *fast*: p99 of (latency - queue wait) for
//      the rejection codes stays under XQC_CHAOS_FAST_MS,
//   4. accepted (OK) work keeps its end-to-end latency bound: p99 within
//      the request deadline plus one guard-check quantum of slack,
//   5. the breaker demonstrably opens during the fault window and closes
//      (half-open probe) after it.
//
// Results (p50/p99 per outcome class + service/store counters) are written
// as JSON to XQC_CHAOS_OUT (default BENCH_service.json).
//
// Env knobs: XQC_CHAOS_MS (run length, default 3000), XQC_CHAOS_THREADS
// (client threads, default 8), XQC_CHAOS_SEED, XQC_CHAOS_OUT,
// XQC_CHAOS_FAST_MS (fast-fail bound, default 25).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/net/http_client.h"
#include "src/net/http_server.h"
#include "src/service/query_service.h"
#include "src/store/document_store.h"
#include "src/store/io_fault.h"
#include "src/xml/xml_parser.h"

namespace xqc {
namespace {

using Clock = std::chrono::steady_clock;

int64_t EnvInt(const char* name, int64_t def) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoll(v) : def;
}

std::string EnvStr(const char* name, const std::string& def) {
  const char* v = std::getenv(name);
  return v != nullptr ? v : def;
}

uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dull;
}

struct Sample {
  std::string cls;         // "ok" or the status code
  int64_t total_us = 0;    // submit -> future ready
  int64_t queue_wait_ms = 0;
};

int64_t PercentileUs(std::vector<int64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

struct ClassStats {
  int64_t count = 0;
  std::vector<int64_t> total_us;
  std::vector<int64_t> fast_us;  // total - queue wait: the dispatch cost
};

// Number of violated invariants; the process exit code.
int failures = 0;

void Check(bool ok, const std::string& what) {
  if (ok) {
    std::fprintf(stderr, "[chaos] PASS %s\n", what.c_str());
  } else {
    std::fprintf(stderr, "[chaos] FAIL %s\n", what.c_str());
    failures++;
  }
}

}  // namespace

int ChaosMain() {
  const int64_t duration_ms = EnvInt("XQC_CHAOS_MS", 3000);
  const int64_t client_threads = std::max<int64_t>(
      2, EnvInt("XQC_CHAOS_THREADS", 8));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("XQC_CHAOS_SEED", 12345));
  const int64_t fast_ms = EnvInt("XQC_CHAOS_FAST_MS", 25);
  const std::string out_path = EnvStr("XQC_CHAOS_OUT", "BENCH_service.json");
  const int64_t hot_deadline_ms = 100;
  const int64_t cold_deadline_ms = 500;
  const int64_t slow_deadline_ms = 200;
  const int64_t tight_deadline_ms = 25;

  // --- cold documents on disk (every load is real, faultable I/O: the
  // --- store cache is sized so nothing fits).
  std::string dir = "/tmp/xqc_chaos_" + std::to_string(::getpid());
  std::system(("mkdir -p " + dir).c_str());
  constexpr int kColdDocs = 8;
  for (int i = 0; i < kColdDocs; i++) {
    std::ofstream f(dir + "/cold" + std::to_string(i) + ".xml");
    f << "<r>";
    for (int j = 0; j < 50; j++) f << "<x>" << j << "</x>";
    f << "</r>";
  }

  DocumentStoreOptions store_opts;
  store_opts.max_bytes = 1;  // force real I/O on every cold load
  store_opts.max_retries = 1;
  store_opts.retry_backoff_ms = 1;
  store_opts.breaker_threshold = 3;
  store_opts.breaker_cooldown_ms = 100;
  store_opts.brownout = true;
  DocumentStore store(store_opts);

  ServiceOptions opts;
  opts.num_threads = 4;
  opts.max_queue = 32;
  opts.admission_wait_ms = 0;
  opts.default_limits.deadline_ms = hot_deadline_ms;
  opts.tenant_max_in_flight = 8;
  opts.fair_dequeue = true;
  opts.shed_on_dequeue = true;
  opts.predict_admission = true;
  opts.retry_backoff_ms = 2;
  opts.engine_options.use_doc_store = true;
  opts.document_store = &store;
  QueryService service(opts);

  // Hot document: registered and shared, resolved without store I/O.
  {
    std::string xml = "<doc>";
    for (int i = 0; i < 400; i++) {
      xml += "<item><id>" + std::to_string(i) + "</id></item>";
    }
    xml += "</doc>";
    Result<NodePtr> hot = ParseXml(xml);
    if (!hot.ok()) return 2;
    service.RegisterDocument("hot.xml", hot.value());
  }

  const std::string hot_query = "count(doc('hot.xml')//item[id mod 7 = 3])";
  const std::string slow_query =
      "count(for $x in doc('hot.xml')//item, $y in doc('hot.xml')//item "
      "where $x/id = $y/id return 1)";
  auto cold_query = [&](int i) {
    return "count(doc('" + dir + "/cold" + std::to_string(i) + ".xml')/r/x)";
  };

  // --- fault schedule: healthy third, fault window third, recovery third.
  IoFaultInjector io_fault;
  io_fault.mode = IoFaultMode::kFailOpen;
  io_fault.transient = true;
  io_fault.fail_n = 0;  // every attempt fails while installed
  std::atomic<bool> stop{false};
  std::thread fault_controller([&] {
    auto third = std::chrono::milliseconds(duration_ms / 3);
    std::this_thread::sleep_for(third);
    store.set_fault_injector(&io_fault);
    std::fprintf(stderr, "[chaos] fault window OPEN (fail-open on %s)\n",
                 dir.c_str());
    std::this_thread::sleep_for(third);
    store.set_fault_injector(nullptr);
    std::fprintf(stderr, "[chaos] fault window CLOSED\n");
  });

  // --- client fleet.
  std::mutex samples_mu;
  std::vector<Sample> samples;
  auto record = [&](Sample s) {
    std::lock_guard<std::mutex> lock(samples_mu);
    samples.push_back(std::move(s));
  };
  auto classify = [](const QueryResponse& resp) {
    if (resp.status.ok()) return std::string("ok");
    return resp.status.code().empty() ? std::string("uncoded")
                                      : resp.status.code();
  };

  const Clock::time_point t_end =
      Clock::now() + std::chrono::milliseconds(duration_ms);
  std::vector<std::thread> clients;
  for (int64_t t = 0; t < client_threads; t++) {
    clients.emplace_back([&, t] {
      uint64_t rng = seed ^ (0x9e3779b97f4a7c15ull * (t + 1));
      const bool flooder = (t == 0);
      const bool laggard = (t == 1);
      const std::string tenant = flooder    ? "flood"
                                 : laggard  ? "laggard"
                                            : "tenant" + std::to_string(t % 3);
      while (Clock::now() < t_end) {
        if (laggard) {
          // One tenant that queues a pile of heavy work and THEN a
          // tight-budget request behind it. Fair dequeue means only this
          // tenant's own backlog delays it — which is exactly what drives
          // the tight request into dispatch-time shedding / admission
          // prediction (its corpse-to-be fails fast with XQC0001/XQC0007
          // instead of wasting a worker).
          std::vector<std::pair<Clock::time_point,
                                std::future<QueryResponse>>> pile;
          for (int i = 0; i < 6; i++) {
            QueryRequest req;
            req.query_text = slow_query;
            req.tenant = tenant;
            pile.emplace_back(Clock::now(), service.Submit(std::move(req)));
          }
          QueryRequest tight;
          tight.query_text = hot_query;
          tight.tenant = tenant;
          tight.limits.deadline_ms = tight_deadline_ms;
          Clock::time_point start = Clock::now();
          QueryResponse resp = service.Run(std::move(tight));
          Sample s;
          s.cls = classify(resp);
          s.total_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - start)
                           .count();
          s.queue_wait_ms = resp.queue_wait_ms;
          record(std::move(s));
          for (auto& [pstart, f] : pile) {
            QueryResponse r = f.get();
            Sample ps;
            ps.cls = classify(r);
            ps.total_us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - pstart)
                    .count();
            ps.queue_wait_ms = r.queue_wait_ms;
            record(std::move(ps));
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
        if (flooder) {
          // Burst far past both the per-tenant quota (16 submissions per
          // flood tenant vs a cap of 8 -> XQC0010) and the global queue
          // (the ~32 quota-admitted submissions fill it -> XQC0007).
          // Synchronous rejections are timed at Submit return, before the
          // rest of the burst goes out, so their latency is honest.
          std::vector<std::pair<Clock::time_point,
                                std::future<QueryResponse>>> burst;
          for (int i = 0; i < 64; i++) {
            QueryRequest req;
            // Alternate cheap and heavy: the admitted heavy jobs pile real
            // queue delay onto everything submitted behind them, which is
            // what pushes tight-budget traffic into the shedding paths.
            req.query_text = (i % 2 == 0) ? hot_query : slow_query;
            req.tenant = tenant + std::to_string(i % 4);
            Clock::time_point start = Clock::now();
            std::future<QueryResponse> f = service.Submit(std::move(req));
            if (f.wait_for(std::chrono::seconds(0)) ==
                std::future_status::ready) {
              QueryResponse resp = f.get();
              Sample s;
              s.cls = classify(resp);
              s.total_us =
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - start)
                      .count();
              s.queue_wait_ms = resp.queue_wait_ms;
              record(std::move(s));
            } else {
              burst.emplace_back(start, std::move(f));
            }
          }
          for (auto& [start, f] : burst) {
            QueryResponse resp = f.get();
            Sample s;
            s.cls = classify(resp);
            s.total_us = std::chrono::duration_cast<std::chrono::microseconds>(
                             Clock::now() - start)
                             .count();
            s.queue_wait_ms = resp.queue_wait_ms;
            record(std::move(s));
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          continue;
        }
        QueryRequest req;
        req.tenant = tenant;
        const uint64_t roll = NextRand(&rng) % 100;
        if (roll < 50) {
          req.query_text = hot_query;
        } else if (roll < 80) {
          req.query_text = cold_query(static_cast<int>(roll) % kColdDocs);
          req.limits.deadline_ms = cold_deadline_ms;
        } else if (roll < 90) {
          // A deliberately heavy join: drags the EWMA up into the tens of
          // ms so dispatch-time shedding and admission prediction engage
          // during flood bursts.
          req.query_text = slow_query;
          req.limits.deadline_ms = slow_deadline_ms;
        } else {
          // Tight-budget traffic: during flood bursts the queue wait eats
          // this deadline, so these are the requests that get shed at
          // dispatch or rejected by the admission predictor.
          req.query_text = hot_query;
          req.limits.deadline_ms = tight_deadline_ms;
        }
        if (roll % 50 == 7) {
          // Compose a guard fault: trips the first slow-path check.
          req.fault_injector.trip_check_n = 1;
          req.fault_injector.trip_code = kGuardCancelledCode;
        }
        Clock::time_point start = Clock::now();
        QueryResponse resp = service.Run(std::move(req));
        Sample s;
        s.cls = classify(resp);
        s.total_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         Clock::now() - start)
                         .count();
        s.queue_wait_ms = resp.queue_wait_ms;
        const bool backoff = s.cls == kServiceOverloadedCode;
        record(std::move(s));
        // A rejected closed-loop client backs off briefly instead of
        // spin-resubmitting into a full queue.
        if (backoff) std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }
  for (auto& c : clients) c.join();
  fault_controller.join();

  // Invariant 1: a clean shutdown bounded in time (deadlock detector).
  Clock::time_point sd0 = Clock::now();
  service.Shutdown();
  int64_t shutdown_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            Clock::now() - sd0)
                            .count();

  // --- aggregate.
  std::map<std::string, ClassStats> by_class;
  for (const Sample& s : samples) {
    ClassStats& c = by_class[s.cls];
    c.count++;
    c.total_us.push_back(s.total_us);
    c.fast_us.push_back(std::max<int64_t>(0, s.total_us -
                                                 s.queue_wait_ms * 1000));
  }
  QueryService::Counters sc = service.counters();
  DocumentStore::Counters dc = store.counters();

  const char* kRejectCodes[] = {"XQC0007", "XQC0010"};
  std::vector<int64_t> reject_fast, shed_fast;
  for (const char* code : kRejectCodes) {
    auto it = by_class.find(code);
    if (it != by_class.end()) {
      reject_fast.insert(reject_fast.end(), it->second.fast_us.begin(),
                         it->second.fast_us.end());
    }
  }
  if (auto it = by_class.find("XQC0001"); it != by_class.end()) {
    shed_fast = it->second.fast_us;
  }

  Check(shutdown_ms < 10'000,
        "shutdown completed promptly (" + std::to_string(shutdown_ms) + "ms)");
  Check(by_class.count("uncoded") == 0, "every failure carries a code");
  Check(by_class.count("ok") != 0 && by_class["ok"].count > 0,
        "accepted work completed (" +
            std::to_string(by_class.count("ok") ? by_class["ok"].count : 0) +
            " ok)");
  Check(by_class.count("XQC0010") != 0, "flood tenant hit its quota");
  Check(by_class.count("XQC0007") != 0, "global admission bound enforced");
  Check(dc.breaker_opens >= 1, "breaker opened during the fault window (" +
                                   std::to_string(dc.breaker_opens) +
                                   " opens)");
  Check(dc.breaker_closes >= 1, "breaker recovered via half-open probe (" +
                                    std::to_string(dc.breaker_closes) +
                                    " closes)");
  if (!reject_fast.empty()) {
    int64_t p99 = PercentileUs(reject_fast, 0.99);
    Check(p99 < fast_ms * 1000,
          "rejections fail fast (p99 " + std::to_string(p99) + "us < " +
              std::to_string(fast_ms) + "ms)");
  }
  if (!shed_fast.empty()) {
    int64_t p99 = PercentileUs(shed_fast, 0.99);
    Check(p99 < fast_ms * 1000,
          "sheds fail fast past queue wait (p99 " + std::to_string(p99) +
              "us < " + std::to_string(fast_ms) + "ms)");
  }
  if (by_class.count("ok") != 0) {
    // End-to-end bound: deadline_includes_queue_wait caps total latency at
    // the (cold) deadline plus guard-quantum + scheduling slack.
    int64_t p99 = PercentileUs(by_class["ok"].total_us, 0.99);
    Check(p99 < (cold_deadline_ms + 250) * 1000,
          "accepted p99 within the end-to-end deadline bound (p99 " +
              std::to_string(p99) + "us)");
  }

  // --- JSON report.
  std::ofstream out(out_path, std::ios::trunc);
  out << "{\n  \"name\": \"chaos_service\",\n"
      << "  \"duration_ms\": " << duration_ms << ",\n"
      << "  \"client_threads\": " << client_threads << ",\n"
      << "  \"workers\": " << opts.num_threads << ",\n"
      << "  \"shutdown_ms\": " << shutdown_ms << ",\n"
      << "  \"invariant_failures\": " << failures << ",\n"
      << "  \"outcomes\": {\n";
  bool first = true;
  for (auto& [cls, c] : by_class) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << cls << "\": {\"count\": " << c.count
        << ", \"p50_us\": " << PercentileUs(c.total_us, 0.50)
        << ", \"p99_us\": " << PercentileUs(c.total_us, 0.99)
        << ", \"fast_p99_us\": " << PercentileUs(c.fast_us, 0.99) << "}";
  }
  out << "\n  },\n  \"service_counters\": {"
      << "\"submitted\": " << sc.submitted << ", \"completed\": "
      << sc.completed << ", \"failed\": " << sc.failed
      << ", \"rejected\": " << sc.rejected << ", \"retries\": " << sc.retries
      << ", \"shed_in_queue\": " << sc.shed_in_queue
      << ", \"rejected_predicted\": " << sc.rejected_predicted
      << ", \"tenant_rejected\": " << sc.tenant_rejected << "},\n"
      << "  \"store_counters\": {"
      << "\"breaker_opens\": " << dc.breaker_opens
      << ", \"breaker_half_opens\": " << dc.breaker_half_opens
      << ", \"breaker_closes\": " << dc.breaker_closes
      << ", \"breaker_fast_fails\": " << dc.totals.breaker_fast_fails
      << ", \"brownout_serves\": " << dc.totals.brownout_serves
      << ", \"retries\": " << dc.totals.retries << "}\n}\n";
  out.close();
  std::fprintf(stderr, "[chaos] wrote %s (%d invariant failure%s)\n",
               out_path.c_str(), failures, failures == 1 ? "" : "s");

  std::system(("rm -rf " + dir).c_str());
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// HTTP chaos mode (--http): the same saturation discipline driven through
// the wire instead of the in-process API. A live HttpServer fronts the
// QueryService; closed-loop tenants, a flooding tenant, and a
// malformed-frame client all talk real sockets. On top of the overload
// invariants this mode asserts the prepared-plan cache contract:
//   * cold (first-compile) p50 > hot (cache-hit) p50,
//   * hit counters are non-zero,
//   * the X-XQC-No-Plan-Cache ablation is byte-identical,
//   * every malformed frame gets a coded 4xx or a clean close,
//   * the crash-only drain completes bounded.
// Results go to XQC_HTTP_OUT (default BENCH_http.json).
// ---------------------------------------------------------------------------

int HttpChaosMain() {
  const int64_t duration_ms = EnvInt("XQC_CHAOS_MS", 3000);
  const int64_t client_threads =
      std::max<int64_t>(2, EnvInt("XQC_CHAOS_THREADS", 6));
  const uint64_t seed = static_cast<uint64_t>(EnvInt("XQC_CHAOS_SEED", 777));
  const std::string out_path = EnvStr("XQC_HTTP_OUT", "BENCH_http.json");

  ServiceOptions opts;
  opts.num_threads = 4;
  opts.max_queue = 32;
  opts.admission_wait_ms = 0;
  opts.default_limits.deadline_ms = 200;
  opts.tenant_max_in_flight = 8;
  opts.fair_dequeue = true;
  opts.shed_on_dequeue = true;
  opts.retry_backoff_ms = 2;
  QueryService service(opts);
  {
    std::string xml = "<doc>";
    for (int i = 0; i < 400; i++) {
      xml += "<item><id>" + std::to_string(i) + "</id></item>";
    }
    xml += "</doc>";
    Result<NodePtr> hot = ParseXml(xml);
    if (!hot.ok()) return 2;
    service.RegisterDocument("hot.xml", hot.value());
  }

  HttpServerOptions hopts;
  hopts.port = 0;
  hopts.max_connections = 256;
  hopts.header_timeout_ms = 2000;
  hopts.drain_grace_ms = 2000;
  HttpServer server(hopts, &service);
  if (!server.Start().ok()) return 2;
  const int port = server.port();
  const std::string host = "127.0.0.1";

  const std::string hot_query = "count(doc('hot.xml')//item[id mod 7 = 3])";
  const std::string slow_query =
      "count(for $x in doc('hot.xml')//item, $y in doc('hot.xml')//item "
      "where $x/id = $y/id return 1)";

  auto classify = [](const Status& io, const HttpResponse& resp) {
    if (!io.ok()) return std::string("closed");
    if (resp.status == 200) return std::string("ok");
    const std::string* code = resp.FindHeader("x-xqc-code");
    if (code != nullptr) return *code;
    return "http" + std::to_string(resp.status);
  };

  // --- phase 1: plan-cache cold vs hot, measured before the storm.
  std::vector<int64_t> cold_us, hot_us;
  constexpr int kPlanQueries = 12;
  auto plan_query = [](int i) {
    return "count(for $i in 1 to " + std::to_string(100 + i) +
           " return $i * " + std::to_string(i + 2) + ")";
  };
  for (int round = 0; round < 4; round++) {
    for (int i = 0; i < kPlanQueries; i++) {
      HttpResponse resp;
      Clock::time_point t0 = Clock::now();
      Status st = HttpFetch(host, port, "POST", "/query", {}, plan_query(i),
                            &resp);
      int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                       Clock::now() - t0)
                       .count();
      if (!st.ok() || resp.status != 200) return 2;
      (round == 0 ? cold_us : hot_us).push_back(us);
    }
  }
  QueryService::PlanCacheStats warm = service.plan_cache_stats();

  // --- phase 2: ablation byte-identity through the wire.
  bool ablation_identical = true;
  for (int i = 0; i < kPlanQueries && ablation_identical; i++) {
    HttpResponse cached, uncached;
    if (!HttpFetch(host, port, "POST", "/query", {}, plan_query(i), &cached)
             .ok() ||
        !HttpFetch(host, port, "POST", "/query",
                   {{"X-XQC-No-Plan-Cache", "1"}}, plan_query(i), &uncached)
             .ok()) {
      ablation_identical = false;
      break;
    }
    ablation_identical = cached.status == 200 && uncached.status == 200 &&
                         cached.body == uncached.body;
  }

  // --- phase 3: mixed storm — tenants, a flooder, and a malformed client.
  std::mutex samples_mu;
  std::map<std::string, ClassStats> by_class;
  std::atomic<int64_t> malformed_sent{0}, malformed_clean{0};
  auto record = [&](const std::string& cls, int64_t us) {
    std::lock_guard<std::mutex> lock(samples_mu);
    ClassStats& c = by_class[cls];
    c.count++;
    c.total_us.push_back(us);
  };
  const Clock::time_point t_end =
      Clock::now() + std::chrono::milliseconds(duration_ms);
  std::vector<std::thread> clients;
  for (int64_t t = 0; t < client_threads; t++) {
    clients.emplace_back([&, t] {
      uint64_t rng = seed ^ (0x9e3779b97f4a7c15ull * (t + 1));
      const bool flooder = (t == 0);
      const bool vandal = (t == 1);  // speaks broken HTTP on purpose
      const std::string tenant = "tenant" + std::to_string(t % 3);
      // The malformed corpus the vandal cycles through.
      const std::string kBadWire[] = {
          "GET / HTTP/9.9\r\n\r\n",
          "POST /query HTTP/1.1\r\nContent-Length: 2\r\n"
          "Content-Length: 3\r\n\r\nab",
          std::string("POST /query HTTP/1.1\r\nX: a\0b\r\n\r\n", 33),
          "POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n",
          "junk that is not HTTP at all\r\n\r\n",
          "POST /query HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n",
      };
      while (Clock::now() < t_end) {
        if (vandal) {
          HttpClient c;
          if (!c.Connect(host, port).ok()) continue;
          const std::string& wire =
              kBadWire[NextRand(&rng) % (sizeof(kBadWire) /
                                         sizeof(kBadWire[0]))];
          malformed_sent.fetch_add(1);
          if (!c.SendRaw(wire).ok()) continue;
          HttpResponse resp;
          Clock::time_point t0 = Clock::now();
          Status st = c.ReadResponse(&resp, 3000);
          int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - t0)
                           .count();
          if (st.ok() && resp.status >= 400 && resp.status < 500) {
            record("malformed-4xx", us);
          } else if (!st.ok()) {
            malformed_clean.fetch_add(1);
            record("closed", us);
          } else {
            record("malformed-UNEXPECTED-" + std::to_string(resp.status), us);
          }
          continue;
        }
        if (flooder) {
          // Tenant "flood" opens a burst of parallel connections, all
          // slow queries: past its quota they come back 429 [XQC0010],
          // and past the queue bound 429 [XQC0007] — now as HTTP codes.
          constexpr int kBurst = 24;
          std::vector<std::unique_ptr<HttpClient>> burst;
          std::vector<Clock::time_point> starts;
          for (int i = 0; i < kBurst; i++) {
            auto c = std::make_unique<HttpClient>();
            if (!c->Connect(host, port).ok()) break;
            std::string req = "POST /query HTTP/1.1\r\nHost: x\r\n"
                              "X-XQC-Tenant: flood\r\nContent-Length: " +
                              std::to_string(slow_query.size()) + "\r\n\r\n" +
                              slow_query;
            starts.push_back(Clock::now());
            if (!c->SendRaw(req).ok()) break;
            burst.push_back(std::move(c));
          }
          for (size_t i = 0; i < burst.size(); i++) {
            HttpResponse resp;
            Status st = burst[i]->ReadResponse(&resp, 10'000);
            int64_t us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                    Clock::now() - starts[i])
                    .count();
            record(classify(st, resp), us);
          }
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        }
        // Closed-loop keep-alive tenant.
        HttpClient c;
        if (!c.Connect(host, port).ok()) continue;
        for (int i = 0; i < 16 && Clock::now() < t_end; i++) {
          const uint64_t roll = NextRand(&rng) % 100;
          std::vector<std::pair<std::string, std::string>> headers = {
              {"X-XQC-Tenant", tenant}};
          std::string q = hot_query;
          if (roll >= 80) {
            q = slow_query;
          } else if (roll >= 70) {
            headers.push_back({"X-XQC-Deadline-Ms", "10"});  // tight budget
          }
          HttpResponse resp;
          Clock::time_point t0 = Clock::now();
          Status st = c.Request("POST", "/query", headers, q, &resp, 10'000);
          int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                           Clock::now() - t0)
                           .count();
          record(classify(st, resp), us);
          if (!st.ok() || !resp.keep_alive) break;
        }
      }
    });
  }
  for (auto& c : clients) c.join();

  // --- phase 4: crash-only drain, bounded.
  Clock::time_point d0 = Clock::now();
  server.Stop();
  service.Shutdown();
  const int64_t drain_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - d0)
          .count();

  HttpServer::Counters hc = server.counters();
  QueryService::PlanCacheStats pc = service.plan_cache_stats();
  const int64_t cold_p50 = PercentileUs(cold_us, 0.50);
  const int64_t hot_p50 = PercentileUs(hot_us, 0.50);

  Check(warm.hits > 0, "plan cache hits observed (" +
                           std::to_string(warm.hits) + ")");
  Check(hot_p50 < cold_p50,
        "cached plans beat cold compiles (hot p50 " +
            std::to_string(hot_p50) + "us < cold p50 " +
            std::to_string(cold_p50) + "us)");
  Check(ablation_identical, "--no-plan-cache ablation is byte-identical");
  Check(by_class.count("ok") != 0 && by_class["ok"].count > 0,
        "accepted work completed over the wire");
  Check(malformed_sent.load() > 0 &&
            (by_class.count("malformed-4xx") != 0 ||
             malformed_clean.load() > 0),
        "malformed frames got coded 4xx or clean closes (" +
            std::to_string(malformed_sent.load()) + " sent)");
  bool unexpected = false;
  for (auto& [cls, c] : by_class) {
    if (cls.rfind("malformed-UNEXPECTED", 0) == 0) unexpected = true;
  }
  Check(!unexpected, "no malformed frame got a 2xx/5xx");
  Check(by_class.count(kServiceOverloadedCode) != 0 ||
            by_class.count(kTenantOverQuotaCode) != 0,
        "overload surfaced as coded 429s through HTTP");
  Check(drain_ms < hopts.drain_grace_ms + 8000,
        "drain + shutdown bounded (" + std::to_string(drain_ms) + "ms)");
  Check(hc.requests > 0, "server counted requests");

  std::ofstream out(out_path, std::ios::trunc);
  out << "{\n  \"name\": \"chaos_http\",\n"
      << "  \"duration_ms\": " << duration_ms << ",\n"
      << "  \"client_threads\": " << client_threads << ",\n"
      << "  \"drain_ms\": " << drain_ms << ",\n"
      << "  \"invariant_failures\": " << failures << ",\n"
      << "  \"plan_cache\": {\"hits\": " << pc.hits
      << ", \"misses\": " << pc.misses << ", \"compiles\": " << pc.compiles
      << ", \"negative_hits\": " << pc.negative_hits
      << ", \"waiters_coalesced\": " << pc.waiters_coalesced
      << ", \"entries\": " << pc.entries << ", \"bytes\": " << pc.bytes
      << ", \"cold_p50_us\": " << cold_p50 << ", \"cold_p99_us\": "
      << PercentileUs(cold_us, 0.99) << ", \"hot_p50_us\": " << hot_p50
      << ", \"hot_p99_us\": " << PercentileUs(hot_us, 0.99) << "},\n"
      << "  \"outcomes\": {\n";
  bool first = true;
  for (auto& [cls, c] : by_class) {
    if (!first) out << ",\n";
    first = false;
    out << "    \"" << cls << "\": {\"count\": " << c.count
        << ", \"p50_us\": " << PercentileUs(c.total_us, 0.50)
        << ", \"p99_us\": " << PercentileUs(c.total_us, 0.99) << "}";
  }
  out << "\n  },\n  \"http_counters\": {"
      << "\"accepted\": " << hc.accepted << ", \"requests\": " << hc.requests
      << ", \"responses_2xx\": " << hc.responses_2xx
      << ", \"responses_4xx\": " << hc.responses_4xx
      << ", \"responses_5xx\": " << hc.responses_5xx
      << ", \"malformed\": " << hc.malformed
      << ", \"client_closed_early\": " << hc.client_closed_early
      << ", \"bytes_in\": " << hc.bytes_in
      << ", \"bytes_out\": " << hc.bytes_out << "}\n}\n";
  out.close();
  std::fprintf(stderr, "[chaos-http] wrote %s (%d invariant failure%s)\n",
               out_path.c_str(), failures, failures == 1 ? "" : "s");
  return failures == 0 ? 0 : 1;
}

}  // namespace xqc

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::string(argv[i]) == "--http") return xqc::HttpChaosMain();
  }
  const char* mode = std::getenv("XQC_CHAOS_HTTP");
  if (mode != nullptr && std::string(mode) == "1") {
    return xqc::HttpChaosMain();
  }
  return xqc::ChaosMain();
}
