// Guard-check overhead: guarded (generous limits armed) vs unguarded
// (default options) execution of a join-heavy query whose streaming head
// pulls ~20k tuples through the iterator layer.
//
// The guard fast path is a single counter decrement per checkpoint, with a
// full check (clock read, flag load, quota compares) every 256 steps, so
// the expected shape is parity: guarded overhead under ~3% of the
// unguarded time, in both exec modes. Both variants must also agree on
// the query result (checked outside the timed region).
#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "src/xml/xml_parser.h"

namespace xqc {
namespace {

constexpr size_t kDefaultItems = 20000;

const std::string& DocXml() {
  static const std::string* xml = [] {
    std::string* s = new std::string("<doc>");
    for (size_t i = 1; i <= bench::Scaled(kDefaultItems); i++) {
      std::string id = std::to_string(i);
      *s += "<item><id>" + id + "</id><grp>" + std::to_string(i % 7) +
            "</grp></item>";
    }
    *s += "</doc>";
    return s;
  }();
  return *xml;
}

NodePtr ParsedDoc() {
  static const NodePtr doc = [] {
    Result<NodePtr> r = ParseXml(DocXml());
    if (!r.ok()) std::abort();
    return r.value();
  }();
  return doc;
}

// A hash join over the full document: 20k-tuple build side, 20k-tuple
// probe side, one match per probe.
const char* kJoinQuery =
    "declare variable $D external; "
    "count(for $x in $D//item, $y in $D//item "
    "where $x/id = $y/id return 1)";

EngineOptions MakeOptions(bool guarded, ExecMode mode) {
  EngineOptions options;
  options.exec_mode = mode;
  if (guarded) {
    // Generous limits: every guard subsystem is armed (deadline clock,
    // memory budget, step quota, output cap) but none should trip.
    options.limits.deadline_ms = 10 * 60 * 1000;
    options.limits.max_memory_bytes = int64_t{16} << 30;
    options.limits.max_eval_steps = int64_t{1} << 40;
    options.limits.max_output_items = int64_t{1} << 30;
  }
  return options;
}

void BM_JoinHead(benchmark::State& state, bool guarded, ExecMode mode) {
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(kJoinQuery,
                                           MakeOptions(guarded, mode));
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  DynamicContext ctx;
  ctx.BindVariable(Symbol("D"), {Item(ParsedDoc())});
  int64_t checks = 0;
  for (auto _ : state) {
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().size());
    checks = q.value().last_exec_stats().guard_checks;
  }
  state.counters["guard_checks"] =
      benchmark::Counter(static_cast<double>(checks));
}

// Outside the timed region: guarded and unguarded runs agree, and the
// guarded run neither trips a limit nor skips the slow-path checks.
bool VerifyGuardIsTransparent() {
  Engine engine;
  for (ExecMode mode : {ExecMode::kStreaming, ExecMode::kMaterialize}) {
    std::string results[2];
    for (int g = 0; g < 2; g++) {
      Result<PreparedQuery> q =
          engine.Prepare(kJoinQuery, MakeOptions(g == 1, mode));
      if (!q.ok()) return false;
      DynamicContext ctx;
      ctx.BindVariable(Symbol("D"), {Item(ParsedDoc())});
      Result<std::string> r = q.value().ExecuteToString(&ctx);
      if (!r.ok()) {
        fprintf(stderr, "guard tripped unexpectedly: %s\n",
                r.status().ToString().c_str());
        return false;
      }
      results[g] = r.value();
      if (g == 1 && q.value().last_exec_stats().guard_checks == 0) {
        fprintf(stderr, "guarded run performed no slow-path checks\n");
        return false;
      }
    }
    if (results[0] != results[1]) {
      fprintf(stderr, "GUARD MISMATCH:\n  unguarded: %s\n  guarded:   %s\n",
              results[0].c_str(), results[1].c_str());
      return false;
    }
  }
  return true;
}

void RegisterAll() {
  struct Mode {
    const char* name;
    ExecMode mode;
  };
  const Mode kModes[] = {{"Streaming", ExecMode::kStreaming},
                         {"Materialize", ExecMode::kMaterialize}};
  for (const Mode& m : kModes) {
    for (bool guarded : {false, true}) {
      ExecMode mode = m.mode;
      benchmark::RegisterBenchmark(
          (std::string("GuardOverhead/JoinHead/") + m.name + "/" +
           (guarded ? "Guarded" : "Unguarded"))
              .c_str(),
          [guarded, mode](benchmark::State& st) {
            BM_JoinHead(st, guarded, mode);
          })
          ->Unit(benchmark::kMicrosecond);
    }
  }
}

}  // namespace
}  // namespace xqc

int main(int argc, char** argv) {
  if (!xqc::VerifyGuardIsTransparent()) return 1;
  xqc::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
