// Concurrency scaling: throughput of a shared-document workload as the
// thread count grows 1 -> 8, plus the single-thread cost of the
// thread-safety machinery itself.
//
//   * SharedPlan/Threads:N — one immutable PreparedQuery executed by N
//     benchmark threads, each with a private DynamicContext over the same
//     shared document tree. The contract says this needs no locks on the
//     hot path, so throughput should scale near-linearly with cores
//     (>4x at 8 threads on >=8-core hardware; on fewer cores the ceiling
//     is the core count).
//   * QueryService/Workers:N — the same workload pushed through the
//     serving layer (admission queue + worker pool), measuring the
//     end-to-end overhead of Submit/future delivery.
//   * Symbol/{InternHit,Str} — the interner fast paths that PR'd from a
//     single global mutex to sharded locks + lock-free reads. Compare
//     single-thread numbers against the pre-change baseline recorded in
//     EXPERIMENTS.md (<3% regression target, matching the PR 2 guard
//     budget).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/service/query_service.h"
#include "src/xml/xml_parser.h"

namespace xqc {
namespace {

constexpr size_t kDefaultItems = 2000;

NodePtr SharedDoc() {
  static const NodePtr doc = [] {
    std::string xml = "<doc>";
    for (size_t i = 1; i <= bench::Scaled(kDefaultItems); i++) {
      std::string id = std::to_string(i);
      xml += "<item><id>" + id + "</id><grp>" + std::to_string(i % 7) +
             "</grp></item>";
    }
    xml += "</doc>";
    Result<NodePtr> r = ParseXml(xml);
    if (!r.ok()) std::abort();
    return r.value();
  }();
  return doc;
}

// A join whose build side and probe side both scan the shared document:
// every execution touches the whole tree through the lock-free Symbol::str
// and shared-NodePtr read paths.
const char* kWorkloadQuery =
    "declare variable $D external; "
    "count(for $x in $D//item, $y in $D//item "
    "where $x/id = $y/id return 1)";

std::shared_ptr<const PreparedQuery> SharedPlan() {
  static const std::shared_ptr<const PreparedQuery> plan = [] {
    Engine engine;
    Result<PreparedQuery> q = engine.Prepare(kWorkloadQuery);
    if (!q.ok()) std::abort();
    return std::make_shared<const PreparedQuery>(q.take());
  }();
  return plan;
}

void BM_SharedPlan(benchmark::State& state) {
  std::shared_ptr<const PreparedQuery> plan = SharedPlan();
  DynamicContext ctx;  // thread-private, per the sharing contract
  ctx.BindVariable(Symbol("D"), {Item(SharedDoc())});
  for (auto _ : state) {
    Result<Sequence> r = plan->Execute(&ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedPlan)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

void BM_QueryService(benchmark::State& state) {
  int workers = static_cast<int>(state.range(0));
  ServiceOptions opts;
  opts.num_threads = workers;
  opts.max_queue = 256;
  QueryService service(opts);
  service.BindSharedVariable(Symbol("D"), {Item(SharedDoc())});
  std::shared_ptr<const PreparedQuery> plan = SharedPlan();
  // Keep `workers` queries in flight: batches of one per worker.
  for (auto _ : state) {
    std::vector<std::future<QueryResponse>> batch;
    batch.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; i++) {
      QueryRequest req;
      req.prepared = plan;
      batch.push_back(service.Submit(std::move(req)));
    }
    for (auto& f : batch) {
      QueryResponse resp = f.get();
      if (!resp.status.ok()) {
        state.SkipWithError(resp.status.ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(resp.result.size());
    }
  }
  state.SetItemsProcessed(state.iterations() * workers);
}
BENCHMARK(BM_QueryService)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMicrosecond);

// Interner fast paths. InternHit is the Prepare-time path (name -> id on an
// already-interned spelling: one shard lock + hash probe); Str is the
// execution/serialization path (id -> name, lock-free two-level load).
void BM_SymbolInternHit(benchmark::State& state) {
  Symbol warm("bench-intern-hit-name");
  benchmark::DoNotOptimize(warm);
  for (auto _ : state) {
    Symbol s("bench-intern-hit-name");
    benchmark::DoNotOptimize(s.id());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SymbolInternHit)->Threads(1)->Threads(4)->UseRealTime();

void BM_SymbolStr(benchmark::State& state) {
  Symbol s("bench-str-name");
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.str().size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SymbolStr)->Threads(1)->Threads(4)->UseRealTime();

}  // namespace
}  // namespace xqc

BENCHMARK_MAIN();
