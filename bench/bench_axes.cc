// Structural-index and sort-free path evaluation benchmarks.
//
// Three engine modes per query:
//   Indexed   (default)          interval numbering + DocumentIndex + DDO
//                                elision
//   Walk      (--no-doc-index)   interval numbering + DDO elision, subtree
//                                walks instead of index range scans
//   ForceSort (--force-sort)     the pre-index baseline: walk everything and
//                                always discharge DDO with the full sort
//
// Expected shapes:
//  - descendant::name over the wide document: Indexed >= 2x over Walk (a
//    binary search + range copy vs a full-subtree visit), and Walk itself
//    beats ForceSort on multi-step paths (no O(n log n) sorts);
//  - the deep chain stresses interval pruning for following/preceding;
//  - the XMark child-only path shows DDO elision alone (index unused).
//
// scripts/bench_axes.sh runs this with JSON output into BENCH_axes.json.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "src/xmark/xmark.h"
#include "src/xml/doc_index.h"
#include "src/xml/xml_parser.h"

namespace xqc {
namespace {

constexpr size_t kWideItems = 20000;
constexpr size_t kDeepDepth = 400;
constexpr size_t kXMarkBytes = 1 << 19;

struct Mode {
  const char* name;
  bool use_doc_index;
  bool force_sort;
};

const Mode kModes[] = {
    {"Indexed", true, false},
    {"Walk", false, false},
    {"ForceSort", false, true},
};

EngineOptions OptionsFor(const Mode& m) {
  EngineOptions o;
  o.force_sort = m.force_sort;
  o.use_doc_index = m.use_doc_index;
  return o;
}

NodePtr MustParse(const std::string& xml) {
  Result<NodePtr> r = ParseXml(xml);
  if (!r.ok()) std::abort();
  return r.value();
}

/// Flat document: items diluted with pads, so named-descendant steps touch
/// a third of the nodes and //node() scans touch all of them.
NodePtr WideDoc() {
  static const NodePtr doc = [] {
    std::string s = "<doc>";
    size_t n = bench::Scaled(kWideItems);
    for (size_t i = 0; i < n; i++) {
      s += "<item id=\"" + std::to_string(i) + "\"><v>" +
           std::to_string(i % 97) + "</v></item><pad/><pad/>";
    }
    s += "</doc>";
    return MustParse(s);
  }();
  return doc;
}

/// One spine of nested <d> elements with a few leaves per level and a
/// marker <x/> at every tenth level: descendant/following walks must prune
/// by interval instead of visiting the whole spine per context node.
NodePtr DeepDoc() {
  static const NodePtr doc = [] {
    size_t depth = bench::Scaled(kDeepDepth);
    std::string s = "<doc>";
    for (size_t i = 0; i < depth; i++) {
      s += "<d><leaf/><leaf/>";
      if (i % 10 == 0) s += "<x/>";
    }
    for (size_t i = 0; i < depth; i++) s += "</d>";
    s += "</doc>";
    return MustParse(s);
  }();
  return doc;
}

NodePtr XMarkDoc() {
  static const NodePtr doc = [] {
    XMarkOptions o;
    o.target_bytes = bench::Scaled(kXMarkBytes);
    Result<NodePtr> r = GenerateXMarkDocument(o);
    if (!r.ok()) std::abort();
    return r.value();
  }();
  return doc;
}

void RunAxisBench(benchmark::State& state, NodePtr doc,
                  const std::string& query) {
  const Mode& mode = kModes[state.range(0)];
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(query, OptionsFor(mode));
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  DynamicContext ctx;
  ctx.BindVariable(Symbol("D"), {Item(std::move(doc))});
  for (auto _ : state) {
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().size());
  }
  ExecStats s = q.value().last_exec_stats();
  state.counters["ddo_sorts"] =
      static_cast<double>(s.tree_join.ddo_sorts);
  state.counters["index_lookups"] =
      static_cast<double>(s.tree_join.index_lookups);
  state.SetLabel(mode.name);
}

void ArgsForAllModes(benchmark::internal::Benchmark* b) {
  for (int m = 0; m < 3; m++) b->Arg(m);
}

// -- wide document ----------------------------------------------------------

void BM_Wide_DescendantNamed(benchmark::State& state) {
  RunAxisBench(state, WideDoc(), "count($D//item)");
}
BENCHMARK(BM_Wide_DescendantNamed)->Apply(ArgsForAllModes);

void BM_Wide_DescendantValueScan(benchmark::State& state) {
  RunAxisBench(state, WideDoc(), "count($D//v[. = \"13\"])");
}
BENCHMARK(BM_Wide_DescendantValueScan)->Apply(ArgsForAllModes);

void BM_Wide_MultiStepPath(benchmark::State& state) {
  RunAxisBench(state, WideDoc(), "count($D/doc/item/v)");
}
BENCHMARK(BM_Wide_MultiStepPath)->Apply(ArgsForAllModes);

// -- deep document ----------------------------------------------------------

void BM_Deep_DescendantMarker(benchmark::State& state) {
  RunAxisBench(state, DeepDoc(), "count($D//x)");
}
BENCHMARK(BM_Deep_DescendantMarker)->Apply(ArgsForAllModes);

void BM_Deep_FollowingFromMarker(benchmark::State& state) {
  RunAxisBench(state, DeepDoc(), "count(($D//x)[1]/following::leaf)");
}
BENCHMARK(BM_Deep_FollowingFromMarker)->Apply(ArgsForAllModes);

void BM_Deep_PrecedingFromLast(benchmark::State& state) {
  RunAxisBench(state, DeepDoc(), "count(($D//leaf)[last()]/preceding::x)");
}
BENCHMARK(BM_Deep_PrecedingFromLast)->Apply(ArgsForAllModes);

// -- XMark ------------------------------------------------------------------

void BM_XMark_DescendantListitem(benchmark::State& state) {
  RunAxisBench(state, XMarkDoc(), "count($D//listitem)");
}
BENCHMARK(BM_XMark_DescendantListitem)->Apply(ArgsForAllModes);

void BM_XMark_ChildOnlyPath(benchmark::State& state) {
  RunAxisBench(state, XMarkDoc(),
               "count($D/site/people/person/name)");
}
BENCHMARK(BM_XMark_ChildOnlyPath)->Apply(ArgsForAllModes);

void BM_XMark_DescendantThenChild(benchmark::State& state) {
  RunAxisBench(state, XMarkDoc(),
               "count($D//closed_auction/annotation/description)");
}
BENCHMARK(BM_XMark_DescendantThenChild)->Apply(ArgsForAllModes);

}  // namespace
}  // namespace xqc

BENCHMARK_MAIN();
