// Table 3 reproduction: "XMark 1-20 on 1MB document".
//
// The paper's Table 3 reports the total execution time of all twenty XMark
// queries on one document under the four successive compiler
// configurations:
//
//     Implementation              Total time      (paper, 1 MB, 2005 HW)
//     No algebra                  3m33.0s
//     Algebra + No optim          50.0s
//     Optim + nested-loop joins   5.1s
//     Optim + XQuery joins        1.7s
//
// Each benchmark below runs the full 20-query suite — including document
// load (parse) and result serialization, as in the paper — under one
// configuration. Default document size is 256 KB (see bench_util.h;
// XQC_SCALE=4 gives the paper's 1 MB).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "src/xmark/xmark.h"
#include "src/xml/xml_parser.h"

namespace xqc {
namespace {

const std::string& XmarkText() {
  static const std::string* kText = [] {
    XMarkOptions opts;
    opts.target_bytes = bench::Scaled(256 * 1024);
    return new std::string(GenerateXMarkXml(opts));
  }();
  return *kText;
}

void BM_Table3(benchmark::State& state, const EngineOptions& options) {
  Engine engine;
  for (auto _ : state) {
    // Load the input document once (counted, as in the paper)...
    Result<NodePtr> doc = ParseXml(XmarkText());
    if (!doc.ok()) {
      state.SkipWithError(doc.status().ToString().c_str());
      return;
    }
    DynamicContext ctx;
    ctx.BindVariable(Symbol("auction"), {Item(doc.value())});
    // ...then evaluate all twenty queries and serialize all results.
    for (int qn = 1; qn <= 20; qn++) {
      bench::RunQueryOrAbort(engine, XMarkQuery(qn), options, &ctx, &state);
    }
  }
}

void RegisterAll() {
  int n;
  const bench::NamedConfig* configs = bench::Configs(&n);
  for (int i = 0; i < n; i++) {
    EngineOptions options = configs[i].options;
    benchmark::RegisterBenchmark(
        (std::string("Table3/XMark1to20/") + configs[i].name).c_str(),
        [options](benchmark::State& s) { BM_Table3(s, options); })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->MeasureProcessCPUTime();
  }
}

}  // namespace
}  // namespace xqc

int main(int argc, char** argv) {
  xqc::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
