// Table 4 reproduction: "Scalability of selected XMark Queries".
//
// The paper's Table 4 reports evaluation times (excluding document load and
// serialization) of XMark Q8, Q9, Q10, Q12 (the join queries) and Q20 (no
// join) on 10/20/50 MB documents, comparing optimized plans with
// nested-loop joins against the Section 6 hash/sort joins:
//
//     Query  Size   NL Join      Hash Join   (paper)
//     Q8     10MB   66.17s       0.14s
//            50MB   1h54m6.45s   2.70s
//     Q9     50MB   2h31m41.1s   2.31s
//     Q12    50MB   3h35m11.9s   11m4.66s
//     Q20    50MB   2.21s        2.78s
//
// Expected shape: NL joins grow quadratically with document size, hash
// joins linearly, and Q20 (no join) is flat across the two columns. Q12's
// inequality predicate (income > 5000*initial) cannot use the equality
// hash table, so its gap stays small — exactly as in the paper, where Q12's
// "hash" column is only ~19x better at 50 MB while Q8's is ~2500x.
//
// Default sizes are 96/192/384 KB (XQC_SCALE multiplies; the 10/20/50 MB
// originals would take hours in the NL column, as they did in the paper).
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "src/xmark/xmark.h"

namespace xqc {
namespace {

NodePtr DocumentOfSize(size_t bytes) {
  static std::map<size_t, NodePtr>* cache = new std::map<size_t, NodePtr>();
  auto it = cache->find(bytes);
  if (it != cache->end()) return it->second;
  XMarkOptions opts;
  opts.target_bytes = bytes;
  Result<NodePtr> doc = GenerateXMarkDocument(opts);
  NodePtr n = doc.ok() ? doc.take() : nullptr;
  (*cache)[bytes] = n;
  return n;
}

void BM_Table4(benchmark::State& state, int query, size_t bytes,
               JoinImpl join) {
  NodePtr doc = DocumentOfSize(bytes);
  if (doc == nullptr) {
    state.SkipWithError("document generation failed");
    return;
  }
  DynamicContext ctx;
  ctx.BindVariable(Symbol("auction"), {Item(doc)});
  Engine engine;
  EngineOptions options{true, true, join};
  // Prepare outside the timed region: Table 4 measures query evaluation
  // time only (compilation phases are "negligible" per the paper).
  Result<PreparedQuery> q = engine.Prepare(XMarkQuery(query), options);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<Sequence> r = q.value().Execute(&ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().size());
  }
}

void RegisterAll() {
  const size_t kSizes[] = {bench::Scaled(96 * 1024), bench::Scaled(192 * 1024),
                           bench::Scaled(384 * 1024)};
  const char* kSizeNames[] = {"S1", "S2", "S3"};
  struct JoinCfg {
    const char* name;
    JoinImpl impl;
  };
  const JoinCfg kJoins[] = {{"NLJoin", JoinImpl::kNestedLoop},
                            {"HashJoin", JoinImpl::kHash},
                            {"SortJoin", JoinImpl::kSort}};
  for (int query : {8, 9, 10, 12, 20}) {
    for (int s = 0; s < 3; s++) {
      for (const JoinCfg& j : kJoins) {
        size_t bytes = kSizes[s];
        JoinImpl impl = j.impl;
        benchmark::RegisterBenchmark(
            ("Table4/Q" + std::to_string(query) + "/" + kSizeNames[s] + "/" +
             j.name)
                .c_str(),
            [query, bytes, impl](benchmark::State& st) {
              BM_Table4(st, query, bytes, impl);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1)
            ->MeasureProcessCPUTime();
      }
    }
  }
}

}  // namespace
}  // namespace xqc

int main(int argc, char** argv) {
  xqc::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
