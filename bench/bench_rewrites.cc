// Compilation-pipeline ablation (supports the paper's claim that the
// compilation phases are "negligible" next to document load, Section 7):
// measures parse -> normalize -> compile -> optimize time for the XMark and
// Clio workloads, and the optimizer pass in isolation.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "src/clio/clio.h"
#include "src/opt/optimizer.h"
#include "src/xmark/xmark.h"
#include "src/xml/xml_parser.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqc {
namespace {

void BM_PrepareXMarkSuite(benchmark::State& state, bool optimize) {
  Engine engine;
  EngineOptions options{true, optimize, JoinImpl::kHash};
  for (auto _ : state) {
    for (int qn = 1; qn <= 20; qn++) {
      Result<PreparedQuery> q = engine.Prepare(XMarkQuery(qn), options);
      if (!q.ok()) {
        state.SkipWithError(q.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(&q.value());
    }
  }
}

void BM_PrepareClio(benchmark::State& state, int level) {
  Engine engine;
  for (auto _ : state) {
    Result<PreparedQuery> q = engine.Prepare(ClioQuery(level));
    if (!q.ok()) {
      state.SkipWithError(q.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(&q.value());
  }
}

void BM_OptimizerOnly(benchmark::State& state, int level) {
  Result<Query> parsed = ParseXQuery(ClioQuery(level));
  Result<Query> core = NormalizeQuery(parsed.value());
  HoistLeadingLets(&core.value());
  HoistNestedReturnBlocks(&core.value());
  Result<CompiledQuery> compiled = CompileQuery(core.value());
  for (auto _ : state) {
    OpPtr plan = CloneOp(*compiled.value().plan);
    benchmark::DoNotOptimize(OptimizePlan(std::move(plan)));
  }
}

void BM_ParseDocument(benchmark::State& state) {
  XMarkOptions opts;
  opts.target_bytes = bench::Scaled(256 * 1024);
  std::string xml = GenerateXMarkXml(opts);
  for (auto _ : state) {
    Result<NodePtr> doc = ParseXml(xml);
    if (!doc.ok()) {
      state.SkipWithError(doc.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(doc.value().get());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xml.size()));
}

void RegisterAll() {
  benchmark::RegisterBenchmark("Rewrites/PrepareXMark20/NoOptim",
                               [](benchmark::State& s) {
                                 BM_PrepareXMarkSuite(s, false);
                               })
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("Rewrites/PrepareXMark20/Optim",
                               [](benchmark::State& s) {
                                 BM_PrepareXMarkSuite(s, true);
                               })
      ->Unit(benchmark::kMillisecond);
  for (int level : {2, 3, 4}) {
    benchmark::RegisterBenchmark(
        ("Rewrites/PrepareClioN" + std::to_string(level)).c_str(),
        [level](benchmark::State& s) { BM_PrepareClio(s, level); })
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("Rewrites/OptimizeOnlyClioN" + std::to_string(level)).c_str(),
        [level](benchmark::State& s) { BM_OptimizerOnly(s, level); })
        ->Unit(benchmark::kMillisecond);
  }
  benchmark::RegisterBenchmark("Rewrites/ParseXMarkDocument",
                               BM_ParseDocument)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace
}  // namespace xqc

int main(int argc, char** argv) {
  xqc::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
