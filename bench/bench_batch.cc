// Batched (vectorized) iterator execution benchmarks.
//
// The streaming engine's hot iterators — scan, select, map/projection,
// MapConcat, MapFromItem, joins — produce tuples in fixed-size batches
// (EngineOptions::batch_size, default 1024) instead of one virtual
// Next() call per tuple. Batching amortizes the per-tuple iterator-layer
// costs: virtual dispatch through the operator tree, QueryGuard::Check()
// bookkeeping (CheckSteps(n) credits a whole batch at once), and Tuple
// hand-off between operators. batch_size=1 runs the original
// tuple-at-a-time loops unchanged and is the parity oracle the tests
// compare against.
//
// Each query is prepared once and only execution is timed (Prepare cost
// is identical across batch sizes and would otherwise drown the
// per-tuple signal); tuples_per_second makes the per-tuple overhead
// comparable across shapes. Expected shapes:
//  - the long integer filter pipeline is plumbing-heavy (cheap
//    predicate, millions of tuples) and shows the dispatch + guard
//    amortization most directly;
//  - node-heavy selects bound the win: per-tuple predicate evaluation
//    (an attribute walk + cast) dominates, and very large batches add
//    cache-reuse distance — the sweep shows the 64-256 sweet spot;
//  - the descendant pipeline exercises the batched TreeJoin / MapToItem
//    plumbing around the already-vectorized axis kernels;
//  - the early-exit query ([1] over a wide scan) must NOT regress:
//    demand-bound clamping keeps batched pulls equal to the oracle's.
//
// scripts/bench_batch.sh runs this with JSON output into BENCH_batch.json.
#include <benchmark/benchmark.h>

#include <string>

#include "bench/bench_util.h"
#include "src/xml/xml_parser.h"

namespace xqc {
namespace {

constexpr size_t kWideItems = 50000;
constexpr size_t kRangeLen = 500000;

NodePtr MustParse(const std::string& xml) {
  Result<NodePtr> r = ParseXml(xml);
  if (!r.ok()) std::abort();
  return r.value();
}

/// Wide flat document: one <item> per row with a small key domain, the
/// shape that keeps streaming pipelines long and per-tuple costs visible.
NodePtr WideDoc() {
  static const NodePtr doc = [] {
    std::string s = "<doc>";
    size_t n = bench::Scaled(kWideItems);
    for (size_t i = 0; i < n; i++) {
      s += "<item k=\"" + std::to_string(i % 97) + "\"><v>" +
           std::to_string(i) + "</v></item>";
    }
    s += "</doc>";
    return MustParse(s);
  }();
  return doc;
}

/// Prepares `query` once at the benchmark's batch size, then times
/// repeated executions, reporting tuples/second over `tuples` per run.
void RunBatched(::benchmark::State& state, const std::string& query,
                double tuples) {
  int batch = static_cast<int>(state.range(0));
  EngineOptions opts;
  opts.batch_size = batch;
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(
      "declare variable $doc external; " + query, opts);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  DynamicContext ctx;
  ctx.BindVariable(Symbol("doc"), {Item(WideDoc())});
  // Warm once outside the timed loop so the lazy document index build is
  // not charged to the first batch size measured.
  Result<std::string> warm = q.value().ExecuteToString(&ctx);
  if (!warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    ::benchmark::DoNotOptimize(r.value().size());
  }
  state.counters["tuples_per_second"] = ::benchmark::Counter(
      tuples * static_cast<double>(state.iterations()),
      ::benchmark::Counter::kIsRate);
  state.SetLabel("batch=" + std::to_string(batch));
}

#define BATCH_ARGS Arg(1)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)

/// Plumbing-heavy pipeline: a long integer scan through a cheap filter.
/// Per-tuple evaluation is a mod + compare, so iterator dispatch and
/// guard bookkeeping are a visible share of the per-tuple cost.
void BM_IntFilterPipeline(::benchmark::State& state) {
  RunBatched(state,
             "count(for $i in 1 to " + std::to_string(kRangeLen) +
                 " where $i mod 2 = 0 return $i)",
             static_cast<double>(kRangeLen));
}
BENCHMARK(BM_IntFilterPipeline)->BATCH_ARGS;

/// Node-heavy select: the predicate walks to @k and casts per tuple, so
/// evaluation dominates and oversized batches pay cache-reuse distance.
void BM_NodeSelect(::benchmark::State& state) {
  RunBatched(state,
             "count(for $i in $doc/doc/item "
             "where xs:integer($i/@k) mod 3 = 0 return $i)",
             static_cast<double>(bench::Scaled(kWideItems)));
}
BENCHMARK(BM_NodeSelect)->BATCH_ARGS;

/// Descendant-axis pipeline: TreeJoin feeding aggregation through the
/// MapFromItem / MapToItem tuple plumbing.
void BM_DescendantPipeline(::benchmark::State& state) {
  RunBatched(state, "count($doc//v)",
             static_cast<double>(bench::Scaled(kWideItems)));
}
BENCHMARK(BM_DescendantPipeline)->BATCH_ARGS;

/// Join-heavy FLWOR: a value join on a small key domain. The build side
/// is materialized once (unaffected by batch size); the probe side and
/// the ~51-wide match groups stream through the batched JoinIter's
/// buffer-drain path.
void BM_HashJoinProbe(::benchmark::State& state) {
  static const NodePtr join_doc = [] {
    std::string s = "<doc>";
    size_t n = bench::Scaled(5000);
    for (size_t i = 0; i < n; i++) {
      s += "<item k=\"" + std::to_string(i % 97) + "\"><v>" +
           std::to_string(i) + "</v></item>";
    }
    s += "</doc>";
    return MustParse(s);
  }();
  int batch = static_cast<int>(state.range(0));
  EngineOptions opts;
  opts.batch_size = batch;
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(
      "declare variable $doc external; "
      "count(for $a in $doc/doc/item, $b in $doc/doc/item "
      "where $a/@k = $b/@k return $b)",
      opts);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  DynamicContext ctx;
  ctx.BindVariable(Symbol("doc"), {Item(join_doc)});
  Result<std::string> warm = q.value().ExecuteToString(&ctx);
  if (!warm.ok()) {
    state.SkipWithError(warm.status().ToString().c_str());
    return;
  }
  double outputs = atof(warm.value().c_str());
  for (auto _ : state) {
    Result<std::string> r = q.value().ExecuteToString(&ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    ::benchmark::DoNotOptimize(r.value().size());
  }
  state.counters["tuples_per_second"] = ::benchmark::Counter(
      outputs * static_cast<double>(state.iterations()),
      ::benchmark::Counter::kIsRate);
  state.SetLabel("batch=" + std::to_string(batch));
}
BENCHMARK(BM_HashJoinProbe)->BATCH_ARGS;

/// Nested FLWOR (MapConcat shape): an inner iteration re-opened per
/// outer tuple, stressing the outer-advance / inner-drain carry-over.
void BM_NestedFlwor(::benchmark::State& state) {
  RunBatched(state,
             "count(for $i in $doc/doc/item[position() <= 2000] "
             "for $j in $i/v return $j)",
             2000.0);
}
BENCHMARK(BM_NestedFlwor)->BATCH_ARGS;

/// Early exit: [1] over the wide scan. Batched demand-bound clamping
/// must keep this as cheap as the tuple-at-a-time oracle — flat across
/// batch sizes, not 1024x worse.
void BM_EarlyExitFirst(::benchmark::State& state) {
  RunBatched(state, "string(($doc/doc/item/v)[1])", 1.0);
}
BENCHMARK(BM_EarlyExitFirst)->BATCH_ARGS;

}  // namespace
}  // namespace xqc

BENCHMARK_MAIN();
