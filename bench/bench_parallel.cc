// Intra-query parallelism benchmarks: fn:collection scans partitioned by
// document (src/runtime/parallel.cc), swept over --parallelism levels.
//
// The corpus is a directory of XMark-style documents (one per member,
// distinct seeds) materialized once into a temp dir; each benchmark
// prepares its query once and times repeated executions at parallelism
// {1, 2, 4, 8}. Parallelism/1 is the serial oracle; every timed run is
// byte-verified against it, so the scaling curve is only reported for
// executions that are provably result-identical.
//
// Expected shapes:
//  - the flat scan + serialize is merge/IO-bound and shows the partition
//    and recombination overhead floor;
//  - the predicate scan gives each partition real per-item work, the
//    favourable case for doc-granular parallelism;
//  - the single-large-document variant exercises intra-document pre-order
//    range splitting rather than doc-granular partitioning.
//
// On a single-core host the curve is expected to be FLAT (slightly below
// 1x from partition bookkeeping): the interesting acceptance criterion
// there is graceful degradation, not speedup. scripts/bench_parallel.sh
// runs this with JSON output into BENCH_parallel.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench/bench_util.h"
#include "src/runtime/context.h"
#include "src/store/document_store.h"
#include "src/xmark/xmark.h"

namespace xqc {
namespace {

constexpr int kCorpusDocs = 6;
constexpr size_t kMemberBytes = 64 * 1024;

/// Materializes the multi-document corpus once; returns its directory.
const std::string& CorpusDir() {
  static const std::string dir = [] {
    std::string d = "/tmp/xqc_bench_parallel_corpus";
    std::system(("rm -rf " + d + " && mkdir -p " + d).c_str());
    for (int i = 0; i < kCorpusDocs; i++) {
      XMarkOptions xo;
      xo.seed = 7000 + static_cast<uint64_t>(i);
      xo.target_bytes = bench::Scaled(kMemberBytes);
      char name[32];
      std::snprintf(name, sizeof(name), "m%02d.xml", i);
      std::ofstream out(d + "/" + name, std::ios::trunc);
      out << GenerateXMarkXml(xo);
    }
    return d;
  }();
  return dir;
}

/// One large document for the range-splitting benchmark.
const std::string& BigDocDir() {
  static const std::string dir = [] {
    std::string d = "/tmp/xqc_bench_parallel_bigdoc";
    std::system(("rm -rf " + d + " && mkdir -p " + d).c_str());
    XMarkOptions xo;
    xo.seed = 9001;
    xo.target_bytes = bench::Scaled(kMemberBytes * kCorpusDocs);
    std::ofstream out(d + "/big.xml", std::ios::trunc);
    out << GenerateXMarkXml(xo);
    return d;
  }();
  return dir;
}

/// Prepares `query` at the benchmark's parallelism level, byte-verifies
/// one execution against the serial oracle, then times repeated runs.
void RunParallel(::benchmark::State& state, const std::string& query) {
  int parallelism = static_cast<int>(state.range(0));
  // One store per benchmark invocation, shared across levels via the
  // process-wide tree cache being per-store: every timed execution runs
  // against warm documents, so parse cost is excluded from the curve.
  static DocumentStore store;
  EngineOptions opts;
  opts.parallelism = parallelism;
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(query, opts);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  EngineOptions serial_opts;
  Result<PreparedQuery> oracle_q = engine.Prepare(query, serial_opts);
  DynamicContext octx;
  octx.set_document_store(&store);
  Result<std::string> oracle = oracle_q.value().ExecuteToString(&octx);
  if (!oracle.ok()) {
    state.SkipWithError(oracle.status().ToString().c_str());
    return;
  }
  {
    // Byte-verify before timing: a wrong parallel result must fail the
    // benchmark loudly instead of reporting a meaningless speedup.
    DynamicContext vctx;
    vctx.set_document_store(&store);
    Result<std::string> got = q.value().ExecuteToString(&vctx);
    if (!got.ok() || got.value() != oracle.value()) {
      state.SkipWithError("parallel result differs from the serial oracle");
      return;
    }
  }
  int64_t items = 0;
  for (auto _ : state) {
    DynamicContext ctx;
    ctx.set_document_store(&store);
    Result<Sequence> r = q.value().Execute(&ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    items += static_cast<int64_t>(r.value().size());
    ::benchmark::DoNotOptimize(r.value().data());
  }
  state.SetItemsProcessed(items);
  const ExecStats& es = q.value().last_exec_stats();
  state.counters["partitions"] =
      static_cast<double>(es.parallel_partitions);
  state.counters["range_splits"] =
      static_cast<double>(es.parallel_range_splits);
  state.counters["steals"] = static_cast<double>(es.parallel_steals);
  state.counters["fallbacks"] = static_cast<double>(es.parallel_fallbacks);
}

void BM_CollectionFlatScan(::benchmark::State& state) {
  RunParallel(state,
              "for $i in fn:collection(\"" + CorpusDir() +
                  "\")//item return string($i/@id)");
}
BENCHMARK(BM_CollectionFlatScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_CollectionPredicateScan(::benchmark::State& state) {
  // Real per-item work inside each partition: every bidder's increase is
  // parsed and compared, so partitions do arithmetic, not just plumbing.
  RunParallel(state,
              "for $b in fn:collection(\"" + CorpusDir() +
                  "\")//bidder "
                  "where number($b/increase) > 10 return string($b/date)");
}
BENCHMARK(BM_CollectionPredicateScan)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_SingleDocRangeSplit(::benchmark::State& state) {
  // One big member: doc-granular partitioning degenerates, so the planner
  // falls back to pre-order range splitting of the descendant step.
  RunParallel(state,
              "for $p in fn:collection(\"" + BigDocDir() +
                  "\")//person return string($p/name)");
}
BENCHMARK(BM_SingleDocRangeSplit)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace xqc

BENCHMARK_MAIN();
