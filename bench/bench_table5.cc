// Table 5 reproduction: "Clio queries".
//
// The paper's Table 5 reports evaluation times of Clio-generated mapping
// queries on a 250 KB document:
//
//     Query  No optim  NL Join   Hash Join   Saxon 8.1.1   (paper)
//     N2     1m6.1s    53.4s     1.5s        15.9s
//     N3     > 1h      2m28.9s   6.4s        58.3s
//     N4     > 1h      14m2s     21.7s       2m3.5s
//
// N2 is a doubly nested FLWOR with a single join, N3 triple-nested with a
// 3-way join, N4 quadruple-nested with a 6-way join (src/clio).
//
// Substitution (DESIGN.md): Saxon is closed-source and unavailable offline;
// the "Comparator" column below is our baseline Core interpreter — like
// Saxon in the paper's table, a complete engine without the algebraic
// optimizations. Expected shape: hash joins beat every other column by
// 6-50x and the gap widens with nesting depth / join arity.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "src/clio/clio.h"

namespace xqc {
namespace {

NodePtr Dblp() {
  static NodePtr* doc = [] {
    ClioOptions opts;
    opts.target_bytes = bench::Scaled(250 * 1024);
    Result<NodePtr> d = GenerateDblpDocument(opts);
    return new NodePtr(d.ok() ? d.take() : nullptr);
  }();
  return *doc;
}

void BM_Table5(benchmark::State& state, int level,
               const EngineOptions& options) {
  NodePtr doc = Dblp();
  if (doc == nullptr) {
    state.SkipWithError("document generation failed");
    return;
  }
  DynamicContext ctx;
  ctx.BindVariable(Symbol("dblp"), {Item(doc)});
  Engine engine;
  Result<PreparedQuery> q = engine.Prepare(ClioQuery(level), options);
  if (!q.ok()) {
    state.SkipWithError(q.status().ToString().c_str());
    return;
  }
  for (auto _ : state) {
    Result<Sequence> r = q.value().Execute(&ctx);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value().size());
  }
}

void RegisterAll() {
  struct Column {
    const char* name;
    EngineOptions options;
  };
  const Column kColumns[] = {
      {"NoOptim", {true, false, JoinImpl::kNestedLoop}},
      {"NLJoin", {true, true, JoinImpl::kNestedLoop}},
      {"HashJoin", {true, true, JoinImpl::kHash}},
      {"Comparator", {false, false, JoinImpl::kNestedLoop}},
  };
  for (int level : {2, 3, 4}) {
    for (const Column& col : kColumns) {
      EngineOptions options = col.options;
      benchmark::RegisterBenchmark(
          ("Table5/N" + std::to_string(level) + "/" + col.name).c_str(),
          [level, options](benchmark::State& st) {
            BM_Table5(st, level, options);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1)
          ->MeasureProcessCPUTime();
    }
  }
}

}  // namespace
}  // namespace xqc

int main(int argc, char** argv) {
  xqc::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
