// Per-document structural indexes for sort-free path evaluation.
//
// A DocumentIndex is built once per finalized tree (lazily, at the first
// axis step that can use it) and holds name- and kind-partitioned node
// tables in document order. Combined with the interval numbering assigned
// by FinalizeTree (Node::start/end), a `descendant::x` step becomes a
// binary search for the context node's interval inside the `x` partition
// instead of a full subtree walk, and `following`/`preceding` become
// range scans with O(1) containment filters.
//
// Lifetime and thread safety: the index is owned by the tree's root node
// (Node::doc_index) and is immutable after construction, so it is shared
// across threads exactly like the document itself (DESIGN.md "Threading
// model"). Concurrent first uses build under a pointer-sharded lock; the
// built index is then published through an acquire/release pointer, so
// steady-state lookups are lock-free. FinalizeTree invalidates the index
// (it renumbers the tree), which is legal only while no other thread reads
// the tree — the same contract all tree mutation already has.
#ifndef XQC_XML_DOC_INDEX_H_
#define XQC_XML_DOC_INDEX_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/base/symbol.h"
#include "src/xml/node.h"

namespace xqc {

/// Trees smaller than this are walked directly: building an index costs one
/// traversal, so it only pays for trees that are large or queried often.
/// (An already built index is used regardless of size.)
inline constexpr uint64_t kMinIndexedTreeSize = 64;

class DocumentIndex {
 public:
  /// Builds the index for the finalized tree rooted at `root`. The root
  /// itself is not indexed: it can never be a descendant/following/
  /// preceding result of a context inside its own tree, and the index is
  /// owned by the root, so holding the root's NodePtr would be an
  /// ownership cycle.
  explicit DocumentIndex(const Node& root);

  /// Guarded build: runs the caller's amortized guard checks during the
  /// traversal, so a deadline/cancellation/step quota can trip midway
  /// through indexing a large tree. Nothing is published on failure.
  /// `guard` may be nullptr (unlimited).
  static Result<std::shared_ptr<const DocumentIndex>> Build(const Node& root,
                                                            QueryGuard* guard);

  DocumentIndex(const DocumentIndex&) = delete;
  DocumentIndex& operator=(const DocumentIndex&) = delete;

  /// Elements with the given name, in document order (null if none).
  const std::vector<NodePtr>* ElementsByName(Symbol name) const {
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : &it->second;
  }

  /// All elements / text nodes / comments / PIs, in document order.
  const std::vector<NodePtr>& Elements() const { return elements_; }
  const std::vector<NodePtr>& Texts() const { return texts_; }
  const std::vector<NodePtr>& Comments() const { return comments_; }
  const std::vector<NodePtr>& PIs() const { return pis_; }

  /// Every non-attribute node (the axis universe of following/preceding),
  /// in document order, excluding the tree root (see constructor).
  const std::vector<NodePtr>& AllNodes() const { return all_; }

  /// Total nodes indexed (diagnostics).
  size_t size() const { return all_.size(); }

 private:
  DocumentIndex() = default;

  Status Add(const NodePtr& n, QueryGuard* guard);

  std::unordered_map<Symbol, std::vector<NodePtr>> by_name_;  // elements
  std::vector<NodePtr> elements_;
  std::vector<NodePtr> texts_;
  std::vector<NodePtr> comments_;
  std::vector<NodePtr> pis_;
  std::vector<NodePtr> all_;
};

/// Returns the tree's DocumentIndex, building and caching it on the root if
/// this is the first use. `root` must be a finalized tree root (start != 0,
/// parent == nullptr). Thread-safe; steady state is one acquire load.
/// The guarded form lets the build trip on `guard` (deadline, cancellation,
/// step quota); a failed build is not cached, so a later query with budget
/// left can still build the index. `guard` may be nullptr (unlimited).
Result<const DocumentIndex*> GetOrBuildDocumentIndex(Node* root,
                                                     QueryGuard* guard);
const DocumentIndex* GetOrBuildDocumentIndex(Node* root);

/// The already built index for this root, or null. Never builds.
const DocumentIndex* GetDocumentIndex(const Node* root);

/// First element of `v` whose start id lies in (after, through], i.e. the
/// begin of the subtree range (after = context start, through = context
/// end). Shared helper for the indexed axis scans.
inline std::vector<NodePtr>::const_iterator LowerBoundByStart(
    const std::vector<NodePtr>& v, uint64_t start_exclusive) {
  size_t lo = 0, hi = v.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (v[mid]->start <= start_exclusive) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return v.begin() + static_cast<ptrdiff_t>(lo);
}

}  // namespace xqc

#endif  // XQC_XML_DOC_INDEX_H_
