#include "src/xml/node.h"

#include <atomic>

namespace xqc {
namespace {

std::atomic<uint64_t> g_order_counter{1};

void CollectText(const Node& n, std::string* out) {
  if (n.kind == NodeKind::kText) {
    *out += n.value;
    return;
  }
  for (const NodePtr& c : n.children) CollectText(*c, out);
}

uint64_t CountNodes(const Node& n) {
  uint64_t total = 1 + n.attributes.size();
  for (const NodePtr& c : n.children) total += CountNodes(*c);
  return total;
}

/// Assigns preorder ids from `*next` and returns the subtree's `end` (the
/// largest id assigned within it). Also clears stale DocumentIndex slots:
/// a node that used to be a tree root may now be interior.
uint64_t FinalizeRec(Node* n, Node* parent, uint64_t* next) {
  n->parent = parent;
  n->start = (*next)++;
  if (n->doc_index != nullptr) {
    n->doc_index_hint.store(nullptr, std::memory_order_relaxed);
    n->doc_index.reset();
  }
  uint64_t last = n->start;
  for (const NodePtr& a : n->attributes) {
    a->parent = n;
    a->start = (*next)++;
    a->end = a->start;
    last = a->start;
    if (a->doc_index != nullptr) {
      a->doc_index_hint.store(nullptr, std::memory_order_relaxed);
      a->doc_index.reset();
    }
  }
  for (const NodePtr& c : n->children) {
    last = FinalizeRec(c.get(), n, next);
  }
  n->end = last;
  return last;
}

}  // namespace

std::string Node::StringValue() const {
  switch (kind) {
    case NodeKind::kDocument:
    case NodeKind::kElement: {
      std::string out;
      CollectText(*this, &out);
      return out;
    }
    default:
      return value;
  }
}

Node* Node::Root() {
  Node* n = this;
  while (n->parent != nullptr) n = n->parent;
  return n;
}

NodePtr NewDocument() {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::kDocument;
  return n;
}

NodePtr NewElement(Symbol name) {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::kElement;
  n->name = name;
  return n;
}

NodePtr NewAttribute(Symbol name, std::string value) {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::kAttribute;
  n->name = name;
  n->value = std::move(value);
  return n;
}

NodePtr NewText(std::string value) {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::kText;
  n->value = std::move(value);
  return n;
}

NodePtr NewComment(std::string value) {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::kComment;
  n->value = std::move(value);
  return n;
}

NodePtr NewPI(Symbol target, std::string value) {
  auto n = std::make_shared<Node>();
  n->kind = NodeKind::kPI;
  n->name = target;
  n->value = std::move(value);
  return n;
}

void Append(const NodePtr& parent, NodePtr child) {
  child->parent = parent.get();
  if (child->kind == NodeKind::kAttribute) {
    parent->attributes.push_back(std::move(child));
  } else {
    parent->children.push_back(std::move(child));
  }
}

void FinalizeTree(const NodePtr& root) {
  // Reserve a contiguous id block for the whole tree so every node's
  // subtree is one interval and blocks from distinct trees never overlap.
  uint64_t count = CountNodes(*root);
  uint64_t next = AllocateOrderBlock(count);
  FinalizeRec(root.get(), nullptr, &next);
}

uint64_t AllocateOrderBlock(uint64_t count) {
  return g_order_counter.fetch_add(count, std::memory_order_relaxed);
}

NodePtr DeepCopy(const Node& node, bool keep_types) {
  auto n = std::make_shared<Node>();
  n->kind = node.kind;
  n->name = node.name;
  n->value = node.value;
  if (keep_types) n->type_annotation = node.type_annotation;
  n->attributes.reserve(node.attributes.size());
  for (const NodePtr& a : node.attributes) {
    NodePtr c = DeepCopy(*a, keep_types);
    c->parent = n.get();
    n->attributes.push_back(std::move(c));
  }
  n->children.reserve(node.children.size());
  for (const NodePtr& k : node.children) {
    NodePtr c = DeepCopy(*k, keep_types);
    c->parent = n.get();
    n->children.push_back(std::move(c));
  }
  return n;
}

bool DocOrderLess(const Node* a, const Node* b) { return a->start < b->start; }

}  // namespace xqc
