#include "src/xml/xml_parser.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "src/base/strutil.h"

namespace xqc {
namespace {

// Element nesting deeper than this is rejected (XML documents this deep are
// adversarial; ParseElement recurses, so unbounded depth smashes the stack).
constexpr int kMaxElementDepth = 4096;

class Parser {
 public:
  Parser(std::string_view text, const XmlParseOptions& options)
      : s_(text), options_(options) {}

  Result<NodePtr> Parse() {
    NodePtr doc = NewDocument();
    XQC_RETURN_IF_ERROR(SkipProlog());
    // Document content: exactly one element, plus misc (comments/PIs).
    bool seen_root = false;
    while (!AtEnd()) {
      SkipSpace();
      if (AtEnd()) break;
      if (Peek() != '<') {
        return Err("text content outside the document element");
      }
      if (Lookahead("<!--")) {
        XQC_RETURN_IF_ERROR(ParseComment(doc));
      } else if (Lookahead("<?")) {
        XQC_RETURN_IF_ERROR(ParsePI(doc));
      } else {
        if (seen_root) return Err("multiple document elements");
        XQC_ASSIGN_OR_RETURN(NodePtr root, ParseElement());
        Append(doc, std::move(root));
        seen_root = true;
      }
    }
    if (!seen_root) return Err("no document element");
    FinalizeTree(doc);
    return doc;
  }

 private:
  bool AtEnd() const { return pos_ >= s_.size(); }
  char Peek() const { return s_[pos_]; }
  bool Lookahead(std::string_view t) const {
    return s_.compare(pos_, t.size(), t) == 0;
  }
  bool Consume(std::string_view t) {
    if (!Lookahead(t)) return false;
    pos_ += t.size();
    return true;
  }
  void SkipSpace() {
    while (!AtEnd() && IsXmlSpace(s_[pos_])) pos_++;
  }

  Status Err(const std::string& msg) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < s_.size(); i++) {
      if (s_[i] == '\n') line++;
    }
    return Status::ParseError("XML parse error at line " +
                              std::to_string(line) + ": " + msg);
  }

  static bool IsNameStart(char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':' || static_cast<unsigned char>(c) >= 0x80;
  }
  static bool IsNameChar(char c) {
    return IsNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
  }

  Result<std::string_view> ParseName() {
    if (AtEnd() || !IsNameStart(Peek())) return Err("expected a name");
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) pos_++;
    return s_.substr(start, pos_ - start);
  }

  Status SkipProlog() {
    SkipSpace();
    if (Consume("<?xml")) {
      size_t end = s_.find("?>", pos_);
      if (end == std::string_view::npos) return Err("unterminated XML decl");
      pos_ = end + 2;
    }
    while (true) {
      SkipSpace();
      if (Lookahead("<!--")) {
        NodePtr sink = NewDocument();
        XQC_RETURN_IF_ERROR(ParseComment(sink));
        continue;
      }
      if (Consume("<!DOCTYPE")) {
        // Skip to the matching '>' accounting for an internal subset.
        int depth = 1;
        while (!AtEnd() && depth > 0) {
          char c = s_[pos_++];
          if (c == '<') depth++;
          if (c == '>') depth--;
        }
        if (depth != 0) return Err("unterminated DOCTYPE");
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseComment(const NodePtr& parent) {
    if (!Consume("<!--")) return Err("expected comment");
    size_t end = s_.find("-->", pos_);
    if (end == std::string_view::npos) return Err("unterminated comment");
    if (options_.keep_comments_and_pis) {
      Append(parent, NewComment(std::string(s_.substr(pos_, end - pos_))));
    }
    pos_ = end + 3;
    return Status::OK();
  }

  Status ParsePI(const NodePtr& parent) {
    if (!Consume("<?")) return Err("expected processing instruction");
    XQC_ASSIGN_OR_RETURN(std::string_view target, ParseName());
    size_t end = s_.find("?>", pos_);
    if (end == std::string_view::npos) return Err("unterminated PI");
    std::string content(TrimXmlSpace(s_.substr(pos_, end - pos_)));
    if (options_.keep_comments_and_pis) {
      Append(parent, NewPI(Symbol(target), std::move(content)));
    }
    pos_ = end + 2;
    return Status::OK();
  }

  Status AppendDecodedText(std::string_view raw, std::string* out) {
    size_t i = 0;
    while (i < raw.size()) {
      char c = raw[i];
      // XML 1.0 forbids control characters other than tab/CR/LF.
      if (static_cast<unsigned char>(c) < 0x20 && c != '\t' && c != '\r' &&
          c != '\n') {
        return Err("control character in character data");
      }
      if (c != '&') {
        out->push_back(c);
        i++;
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) return Err("unterminated entity");
      std::string_view ent = raw.substr(i + 1, semi - i - 1);
      if (ent == "lt") {
        out->push_back('<');
      } else if (ent == "gt") {
        out->push_back('>');
      } else if (ent == "amp") {
        out->push_back('&');
      } else if (ent == "quot") {
        out->push_back('"');
      } else if (ent == "apos") {
        out->push_back('\'');
      } else if (!ent.empty() && ent[0] == '#') {
        long code = 0;
        if (ent.size() > 1 && (ent[1] == 'x' || ent[1] == 'X')) {
          code = strtol(std::string(ent.substr(2)).c_str(), nullptr, 16);
        } else {
          code = strtol(std::string(ent.substr(1)).c_str(), nullptr, 10);
        }
        // Encode as UTF-8.
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
      } else {
        return Err("unknown entity '&" + std::string(ent) + ";'");
      }
      i = semi + 1;
    }
    return Status::OK();
  }

  // Runs an amortized guard check and charges `nodes` constructed nodes
  // plus `bytes` of character data against the query's budget (no-op when
  // parsing outside a guarded query).
  Status Account(int64_t nodes, int64_t bytes = 0) {
    if (options_.guard == nullptr) return Status::OK();
    XQC_RETURN_IF_ERROR(options_.guard->Check());
    if (nodes > 0) XQC_RETURN_IF_ERROR(options_.guard->AccountNodes(nodes));
    if (bytes > 0) XQC_RETURN_IF_ERROR(options_.guard->AccountMemory(bytes));
    return Status::OK();
  }

  Result<NodePtr> ParseElement() {
    if (++depth_ > kMaxElementDepth) {
      depth_--;
      return Err("element nesting deeper than " +
                 std::to_string(kMaxElementDepth));
    }
    Result<NodePtr> r = ParseElementInner();
    depth_--;
    return r;
  }

  Result<NodePtr> ParseElementInner() {
    if (!Consume("<")) return Err("expected '<'");
    XQC_ASSIGN_OR_RETURN(std::string_view name, ParseName());
    NodePtr elem = NewElement(Symbol(name));
    XQC_RETURN_IF_ERROR(Account(1));
    // Attributes.
    while (true) {
      SkipSpace();
      if (AtEnd()) return Err("unterminated start tag");
      if (Consume("/>")) return elem;
      if (Consume(">")) break;
      XQC_ASSIGN_OR_RETURN(std::string_view aname, ParseName());
      SkipSpace();
      if (!Consume("=")) return Err("expected '=' in attribute");
      SkipSpace();
      if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
        return Err("expected quoted attribute value");
      }
      char quote = Peek();
      pos_++;
      size_t end = s_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return Err("unterminated attribute value");
      }
      std::string decoded;
      XQC_RETURN_IF_ERROR(
          AppendDecodedText(s_.substr(pos_, end - pos_), &decoded));
      pos_ = end + 1;
      XQC_RETURN_IF_ERROR(
          Account(1, static_cast<int64_t>(decoded.size())));
      Append(elem, NewAttribute(Symbol(aname), std::move(decoded)));
    }
    // Content.
    std::string text;
    bool has_element_child = false;
    std::vector<std::pair<size_t, NodePtr>> pending;  // placeholder order
    auto flush_text = [&](bool force_keep) {
      if (text.empty()) return;
      if (force_keep || !options_.strip_boundary_whitespace ||
          !IsAllXmlSpace(text)) {
        Append(elem, NewText(std::move(text)));
      }
      text.clear();
    };
    (void)pending;
    (void)has_element_child;
    while (true) {
      XQC_RETURN_IF_ERROR(Account(0));
      if (AtEnd()) return Err("unterminated element <" + std::string(name) + ">");
      if (Peek() == '<') {
        if (Consume("</")) {
          flush_text(false);
          XQC_ASSIGN_OR_RETURN(std::string_view ename, ParseName());
          if (ename != name) {
            return Err("mismatched end tag </" + std::string(ename) +
                       "> for <" + std::string(name) + ">");
          }
          SkipSpace();
          if (!Consume(">")) return Err("malformed end tag");
          return elem;
        }
        if (Lookahead("<!--")) {
          flush_text(false);
          XQC_RETURN_IF_ERROR(ParseComment(elem));
          continue;
        }
        if (Consume("<![CDATA[")) {
          size_t end = s_.find("]]>", pos_);
          if (end == std::string_view::npos) return Err("unterminated CDATA");
          text.append(s_.substr(pos_, end - pos_));
          pos_ = end + 3;
          continue;
        }
        if (Lookahead("<?")) {
          flush_text(false);
          XQC_RETURN_IF_ERROR(ParsePI(elem));
          continue;
        }
        flush_text(false);
        XQC_ASSIGN_OR_RETURN(NodePtr child, ParseElement());
        Append(elem, std::move(child));
        continue;
      }
      size_t next = s_.find('<', pos_);
      if (next == std::string_view::npos) next = s_.size();
      XQC_RETURN_IF_ERROR(Account(1, static_cast<int64_t>(next - pos_)));
      XQC_RETURN_IF_ERROR(AppendDecodedText(s_.substr(pos_, next - pos_), &text));
      pos_ = next;
    }
  }

  std::string_view s_;
  size_t pos_ = 0;
  XmlParseOptions options_;
  int depth_ = 0;
};

}  // namespace

Result<NodePtr> ParseXml(std::string_view text, const XmlParseOptions& options) {
  Parser p(text, options);
  return p.Parse();
}

Result<NodePtr> ParseXmlFile(const std::string& path,
                             const XmlParseOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  return ParseXml(text, options);
}

}  // namespace xqc
