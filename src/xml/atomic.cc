#include "src/xml/atomic.h"

#include <cmath>

#include "src/base/strutil.h"

namespace xqc {

const char* AtomicTypeName(AtomicType t) {
  switch (t) {
    case AtomicType::kUntypedAtomic: return "xdt:untypedAtomic";
    case AtomicType::kString: return "xs:string";
    case AtomicType::kBoolean: return "xs:boolean";
    case AtomicType::kInteger: return "xs:integer";
    case AtomicType::kDecimal: return "xs:decimal";
    case AtomicType::kFloat: return "xs:float";
    case AtomicType::kDouble: return "xs:double";
    case AtomicType::kDuration: return "xs:duration";
    case AtomicType::kDateTime: return "xs:dateTime";
    case AtomicType::kTime: return "xs:time";
    case AtomicType::kDate: return "xs:date";
    case AtomicType::kGYearMonth: return "xs:gYearMonth";
    case AtomicType::kGYear: return "xs:gYear";
    case AtomicType::kGMonthDay: return "xs:gMonthDay";
    case AtomicType::kGDay: return "xs:gDay";
    case AtomicType::kGMonth: return "xs:gMonth";
    case AtomicType::kHexBinary: return "xs:hexBinary";
    case AtomicType::kBase64Binary: return "xs:base64Binary";
    case AtomicType::kAnyURI: return "xs:anyURI";
    case AtomicType::kQName: return "xs:QName";
    case AtomicType::kNotation: return "xs:NOTATION";
  }
  return "xs:string";
}

bool AtomicTypeFromName(std::string_view name, AtomicType* out) {
  // Strip a namespace prefix if present.
  size_t colon = name.rfind(':');
  std::string_view local =
      colon == std::string_view::npos ? name : name.substr(colon + 1);
  for (int i = 0; i < kNumAtomicTypes; i++) {
    AtomicType t = static_cast<AtomicType>(i);
    std::string_view full = AtomicTypeName(t);
    std::string_view tlocal = full.substr(full.find(':') + 1);
    if (local == tlocal) {
      *out = t;
      return true;
    }
  }
  return false;
}

bool IsNumeric(AtomicType t) {
  return t == AtomicType::kInteger || t == AtomicType::kDecimal ||
         t == AtomicType::kFloat || t == AtomicType::kDouble;
}

AtomicValue AtomicValue::Untyped(std::string s) {
  return AtomicValue(AtomicType::kUntypedAtomic, std::move(s));
}
AtomicValue AtomicValue::String(std::string s) {
  return AtomicValue(AtomicType::kString, std::move(s));
}
AtomicValue AtomicValue::Boolean(bool b) {
  return AtomicValue(AtomicType::kBoolean, b);
}
AtomicValue AtomicValue::Integer(int64_t i) {
  return AtomicValue(AtomicType::kInteger, i);
}
AtomicValue AtomicValue::Decimal(double d) {
  return AtomicValue(AtomicType::kDecimal, d);
}
AtomicValue AtomicValue::Float(double d) {
  return AtomicValue(AtomicType::kFloat,
                     static_cast<double>(static_cast<float>(d)));
}
AtomicValue AtomicValue::Double(double d) {
  return AtomicValue(AtomicType::kDouble, d);
}
AtomicValue AtomicValue::Lexical(AtomicType t, std::string s) {
  return AtomicValue(t, std::move(s));
}

Result<AtomicValue> AtomicValue::FromLexical(AtomicType t,
                                             std::string_view s) {
  switch (t) {
    case AtomicType::kUntypedAtomic:
      return Untyped(std::string(s));
    case AtomicType::kString:
      return String(std::string(s));
    case AtomicType::kBoolean: {
      std::string_view v = TrimXmlSpace(s);
      if (v == "true" || v == "1") return Boolean(true);
      if (v == "false" || v == "0") return Boolean(false);
      return Status::XQueryError(
          "FORG0001", "invalid xs:boolean literal: '" + std::string(s) + "'");
    }
    case AtomicType::kInteger: {
      int64_t i;
      if (!ParseInt(s, &i)) {
        return Status::XQueryError(
            "FORG0001",
            "invalid xs:integer literal: '" + std::string(s) + "'");
      }
      return Integer(i);
    }
    case AtomicType::kDecimal:
    case AtomicType::kFloat:
    case AtomicType::kDouble: {
      double d;
      if (!ParseDouble(s, &d) ||
          (t == AtomicType::kDecimal && (std::isnan(d) || std::isinf(d)))) {
        return Status::XQueryError(
            "FORG0001", std::string("invalid ") + AtomicTypeName(t) +
                            " literal: '" + std::string(s) + "'");
      }
      if (t == AtomicType::kDecimal) return Decimal(d);
      if (t == AtomicType::kFloat) return Float(d);
      return Double(d);
    }
    default:
      // Lexical-form types: trim and store. (Full XML Schema lexical
      // validation of dates/durations is out of scope.)
      return Lexical(t, std::string(TrimXmlSpace(s)));
  }
}

double AtomicValue::AsDouble() const {
  if (std::holds_alternative<int64_t>(v_)) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  return std::get<double>(v_);
}

std::string AtomicValue::Lexical() const {
  switch (type_) {
    case AtomicType::kBoolean:
      return AsBool() ? "true" : "false";
    case AtomicType::kInteger:
      return FormatInt(AsInt());
    case AtomicType::kDecimal:
    case AtomicType::kFloat:
    case AtomicType::kDouble:
      return FormatDouble(AsDouble());
    default:
      return AsString();
  }
}

bool AtomicValue::StrictEquals(const AtomicValue& o) const {
  if (type_ != o.type_) return false;
  if (std::holds_alternative<double>(v_) &&
      std::holds_alternative<double>(o.v_)) {
    // NaN-stable comparison for plan literals.
    double a = std::get<double>(v_), b = std::get<double>(o.v_);
    return (std::isnan(a) && std::isnan(b)) || a == b;
  }
  return v_ == o.v_;
}

}  // namespace xqc
