#include "src/xml/item.h"

#include <algorithm>
#include <cmath>

namespace xqc {

std::string Item::StringValue() const {
  if (IsAtomic()) return atomic().Lexical();
  return node()->StringValue();
}

void Extend(Sequence* dst, const Sequence& src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

void Extend(Sequence* dst, Sequence&& src) {
  for (Item& it : src) dst->push_back(std::move(it));
}

Result<Sequence> Atomize(const Sequence& s) {
  Sequence out;
  out.reserve(s.size());
  for (const Item& it : s) {
    if (it.IsAtomic()) {
      out.push_back(it);
      continue;
    }
    const Node& n = *it.node();
    AtomicType t;
    if (!n.type_annotation.empty() &&
        AtomicTypeFromName(n.type_annotation.str(), &t)) {
      XQC_ASSIGN_OR_RETURN(AtomicValue v,
                           AtomicValue::FromLexical(t, n.StringValue()));
      out.push_back(std::move(v));
    } else {
      out.push_back(AtomicValue::Untyped(n.StringValue()));
    }
  }
  return out;
}

Result<bool> EffectiveBooleanValue(const Sequence& s) {
  if (s.empty()) return false;
  if (s[0].IsNode()) return true;  // non-empty sequence starting with a node
  if (s.size() != 1) {
    return Status::XQueryError(
        "FORG0006", "effective boolean value of a multi-item atomic sequence");
  }
  const AtomicValue& a = s[0].atomic();
  switch (a.type()) {
    case AtomicType::kBoolean:
      return a.AsBool();
    case AtomicType::kString:
    case AtomicType::kUntypedAtomic:
    case AtomicType::kAnyURI:
      return !a.AsString().empty();
    case AtomicType::kInteger:
      return a.AsInt() != 0;
    case AtomicType::kDecimal:
    case AtomicType::kFloat:
    case AtomicType::kDouble: {
      double d = a.AsDouble();
      return d != 0.0 && !std::isnan(d);
    }
    default:
      return Status::XQueryError(
          "FORG0006", std::string("no effective boolean value for ") +
                          AtomicTypeName(a.type()));
  }
}

Result<Sequence> DistinctDocOrder(const Sequence& s) {
  std::vector<NodePtr> nodes;
  nodes.reserve(s.size());
  bool sorted = true;
  uint64_t prev_start = 0;
  for (const Item& it : s) {
    if (!it.IsNode()) {
      return Status::XQueryError("XPTY0004",
                                 "path step applied to an atomic value");
    }
    // Strictly increasing nonzero start ids mean already distinct and in
    // document order (finalized trees use globally disjoint id blocks).
    uint64_t start = it.node()->start;
    if (start == 0 || start <= prev_start) sorted = false;
    prev_start = start;
    nodes.push_back(it.node());
  }
  if (sorted) return s;
  std::sort(nodes.begin(), nodes.end(), [](const NodePtr& a, const NodePtr& b) {
    return DocOrderLess(a.get(), b.get());
  });
  nodes.erase(std::unique(nodes.begin(), nodes.end(),
                          [](const NodePtr& a, const NodePtr& b) {
                            return a.get() == b.get();
                          }),
              nodes.end());
  Sequence out;
  out.reserve(nodes.size());
  for (NodePtr& n : nodes) out.push_back(std::move(n));
  return out;
}

bool DeepEqualsIdentity(const Sequence& a, const Sequence& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i].IsNode() != b[i].IsNode()) return false;
    if (a[i].IsNode()) {
      if (a[i].node().get() != b[i].node().get()) return false;
    } else if (!a[i].atomic().StrictEquals(b[i].atomic())) {
      return false;
    }
  }
  return true;
}

}  // namespace xqc
