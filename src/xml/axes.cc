#include "src/xml/axes.h"

#include <cstring>

namespace xqc {
namespace {

void AddIfMatch(const NodePtr& n, const ItemTest& test, const Schema* schema,
                Sequence* out) {
  Item it(n);
  if (test.Matches(it, schema)) out->push_back(std::move(it));
}

void Descendants(const NodePtr& n, const ItemTest& test, const Schema* schema,
                 Sequence* out) {
  for (const NodePtr& c : n->children) {
    AddIfMatch(c, test, schema, out);
    Descendants(c, test, schema, out);
  }
}

NodePtr Shared(Node* n) { return n == nullptr ? nullptr : n->shared_from_this(); }

}  // namespace

const char* AxisName(Axis a) {
  switch (a) {
    case Axis::kChild: return "child";
    case Axis::kDescendant: return "descendant";
    case Axis::kAttribute: return "attribute";
    case Axis::kSelf: return "self";
    case Axis::kDescendantOrSelf: return "descendant-or-self";
    case Axis::kParent: return "parent";
    case Axis::kAncestor: return "ancestor";
    case Axis::kAncestorOrSelf: return "ancestor-or-self";
    case Axis::kFollowingSibling: return "following-sibling";
    case Axis::kPrecedingSibling: return "preceding-sibling";
    case Axis::kFollowing: return "following";
    case Axis::kPreceding: return "preceding";
  }
  return "child";
}

bool AxisFromName(std::string_view name, Axis* out) {
  for (int i = 0; i <= static_cast<int>(Axis::kPreceding); i++) {
    Axis a = static_cast<Axis>(i);
    if (name == AxisName(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

void ApplyAxis(const NodePtr& n, Axis axis, const ItemTest& test,
               const Schema* schema, Sequence* out) {
  switch (axis) {
    case Axis::kChild:
      for (const NodePtr& c : n->children) AddIfMatch(c, test, schema, out);
      return;
    case Axis::kDescendant:
      Descendants(n, test, schema, out);
      return;
    case Axis::kAttribute:
      for (const NodePtr& a : n->attributes) AddIfMatch(a, test, schema, out);
      return;
    case Axis::kSelf:
      AddIfMatch(n, test, schema, out);
      return;
    case Axis::kDescendantOrSelf:
      AddIfMatch(n, test, schema, out);
      Descendants(n, test, schema, out);
      return;
    case Axis::kParent: {
      NodePtr p = Shared(n->parent);
      if (p != nullptr) AddIfMatch(p, test, schema, out);
      return;
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // Collect root-to-node order (document order for ancestors).
      std::vector<NodePtr> chain;
      Node* p = axis == Axis::kAncestorOrSelf ? n.get() : n->parent;
      while (p != nullptr) {
        chain.push_back(Shared(p));
        p = p->parent;
      }
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        AddIfMatch(*it, test, schema, out);
      }
      return;
    }
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      Node* p = n->parent;
      if (p == nullptr || n->kind == NodeKind::kAttribute) return;
      const auto& sibs = p->children;
      size_t self_idx = sibs.size();
      for (size_t i = 0; i < sibs.size(); i++) {
        if (sibs[i].get() == n.get()) {
          self_idx = i;
          break;
        }
      }
      if (axis == Axis::kFollowingSibling) {
        for (size_t i = self_idx + 1; i < sibs.size(); i++) {
          AddIfMatch(sibs[i], test, schema, out);
        }
      } else {
        for (size_t i = 0; i < self_idx; i++) {
          AddIfMatch(sibs[i], test, schema, out);
        }
      }
      return;
    }
    case Axis::kFollowing:
    case Axis::kPreceding: {
      // All nodes in the tree strictly after (before) this node in document
      // order, excluding ancestors/descendants per XPath; implemented via a
      // full traversal from the root using document-order ids.
      Node* root = n->Root();
      Sequence all;
      ItemTest any;  // item() matches everything; filter below
      AddIfMatch(Shared(root), any, schema, &all);
      Descendants(Shared(root), any, schema, &all);
      for (const Item& cand : all) {
        const NodePtr& c = cand.node();
        if (c->kind == NodeKind::kAttribute) continue;
        bool is_anc = false;
        for (Node* a = n->parent; a != nullptr; a = a->parent) {
          if (a == c.get()) is_anc = true;
        }
        bool is_desc = false;
        for (Node* a = c->parent; a != nullptr; a = a->parent) {
          if (a == n.get()) is_desc = true;
        }
        if (is_anc || is_desc || c.get() == n.get()) continue;
        bool after = c->order > n->order;
        if ((axis == Axis::kFollowing) == after) {
          AddIfMatch(c, test, schema, out);
        }
      }
      return;
    }
  }
}

Result<Sequence> TreeJoin(const Sequence& input, Axis axis,
                          const ItemTest& test, const Schema* schema) {
  Sequence out;
  for (const Item& it : input) {
    if (!it.IsNode()) {
      return Status::XQueryError("XPTY0004",
                                 "axis step applied to an atomic value");
    }
    ApplyAxis(it.node(), axis, test, schema, &out);
  }
  return DistinctDocOrder(out);
}

}  // namespace xqc
