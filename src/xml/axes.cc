#include "src/xml/axes.h"

#include <cstring>

#include "src/xml/doc_index.h"

namespace xqc {
namespace {

inline void AddIfMatch(const NodePtr& n, const ItemTest& test,
                       const Schema* schema, Sequence* out) {
  if (test.Matches(*n, schema)) out->push_back(Item(n));
}

inline bool MatchesAllNodes(const ItemTest& test) {
  return test.kind == ItemTest::Kind::kAnyItem ||
         test.kind == ItemTest::Kind::kAnyNode;
}

void Descendants(const NodePtr& n, const ItemTest& test, const Schema* schema,
                 Sequence* out) {
  for (const NodePtr& c : n->children) {
    AddIfMatch(c, test, schema, out);
    Descendants(c, test, schema, out);
  }
}

/// Appends every matching node of `c`'s subtree (self included, attributes
/// excluded) in document order.
void AddSubtree(const NodePtr& c, const ItemTest& test, const Schema* schema,
                Sequence* out) {
  AddIfMatch(c, test, schema, out);
  Descendants(c, test, schema, out);
}

/// following(ref): nodes with start > ref.end, minus attributes. The walk
/// prunes on intervals: a subtree entirely at or before ref.end contributes
/// nothing; one entirely after contributes wholesale; only the O(depth)
/// ancestors of ref straddle the boundary and recurse.
void FollowingWalk(const NodePtr& c, const Node& ref, const ItemTest& test,
                   const Schema* schema, Sequence* out) {
  if (c->end <= ref.end) return;  // subtree entirely at/before the boundary
  if (c->start > ref.end) {
    AddSubtree(c, test, schema, out);
    return;
  }
  for (const NodePtr& child : c->children) {
    FollowingWalk(child, ref, test, schema, out);
  }
}

/// preceding(ref): nodes with end < ref.start — everything strictly before
/// ref that is not one of its ancestors (an ancestor's interval covers
/// ref.start, so the end < ref.start test excludes it for free).
void PrecedingWalk(const NodePtr& c, const Node& ref, const ItemTest& test,
                   const Schema* schema, Sequence* out) {
  if (c->start >= ref.start) return;  // subtree entirely at/after ref
  if (c->end < ref.start) {
    AddSubtree(c, test, schema, out);
    return;
  }
  for (const NodePtr& child : c->children) {
    PrecedingWalk(child, ref, test, schema, out);
  }
}

NodePtr Shared(Node* n) { return n == nullptr ? nullptr : n->shared_from_this(); }

/// The tree's structural index if this step should use one: never for
/// unfinalized trees, lazily built for trees of at least
/// kMinIndexedTreeSize nodes, and always when one is already built.
/// A null value is a valid "no index, walk the tree" answer; an error is
/// opts.guard tripping during a lazy build.
Result<const DocumentIndex*> IndexFor(const NodePtr& n,
                                      const TreeJoinOpts& opts) {
  const DocumentIndex* none = nullptr;
  if (!opts.use_index || n->start == 0) return none;
  Node* root = n->Root();
  if (const DocumentIndex* idx = GetDocumentIndex(root)) return idx;
  if (root->SubtreeSize() < kMinIndexedTreeSize) return none;
  return GetOrBuildDocumentIndex(root, opts.guard);
}

/// The narrowest index partition that is a superset of `test`'s matches
/// among non-attribute nodes, or false when the index cannot serve `test`.
/// Candidates from the partition are still filtered through test.Matches
/// (e.g. for schema-type element tests).
bool PartitionFor(const DocumentIndex& idx, const ItemTest& test,
                  const std::vector<NodePtr>** out) {
  static const std::vector<NodePtr> kNone;
  switch (test.kind) {
    case ItemTest::Kind::kAnyItem:
    case ItemTest::Kind::kAnyNode:
      *out = &idx.AllNodes();
      return true;
    case ItemTest::Kind::kElement: {
      if (test.name.empty()) {
        *out = &idx.Elements();
        return true;
      }
      const std::vector<NodePtr>* named = idx.ElementsByName(test.name);
      *out = named == nullptr ? &kNone : named;
      return true;
    }
    case ItemTest::Kind::kText:
      *out = &idx.Texts();
      return true;
    case ItemTest::Kind::kComment:
      *out = &idx.Comments();
      return true;
    case ItemTest::Kind::kPI:
      *out = &idx.PIs();
      return true;
    case ItemTest::Kind::kAttribute:
    case ItemTest::Kind::kAtomic:
      // Neither ever matches a non-attribute axis result.
      *out = &kNone;
      return true;
    case ItemTest::Kind::kDocument:
      return false;  // rare; the walk handles it
  }
  return false;
}

/// Index of `n` among its parent's children (post-finalize children are
/// start-ordered, so this is a binary search), or children.size() if not
/// found (unfinalized fallback: linear scan).
size_t SelfIndexAmongSiblings(const std::vector<NodePtr>& sibs,
                              const Node* n) {
  if (n->start != 0) {
    size_t lo = 0, hi = sibs.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (sibs[mid]->start < n->start) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < sibs.size() && sibs[lo].get() == n) return lo;
  }
  for (size_t i = 0; i < sibs.size(); i++) {
    if (sibs[i].get() == n) return i;
  }
  return sibs.size();
}

inline void CountIndexLookup(TreeJoinStats* stats) {
  if (stats != nullptr) stats->index_lookups++;
}

}  // namespace

const char* AxisName(Axis a) {
  switch (a) {
    case Axis::kChild: return "child";
    case Axis::kDescendant: return "descendant";
    case Axis::kAttribute: return "attribute";
    case Axis::kSelf: return "self";
    case Axis::kDescendantOrSelf: return "descendant-or-self";
    case Axis::kParent: return "parent";
    case Axis::kAncestor: return "ancestor";
    case Axis::kAncestorOrSelf: return "ancestor-or-self";
    case Axis::kFollowingSibling: return "following-sibling";
    case Axis::kPrecedingSibling: return "preceding-sibling";
    case Axis::kFollowing: return "following";
    case Axis::kPreceding: return "preceding";
  }
  return "child";
}

bool AxisFromName(std::string_view name, Axis* out) {
  for (int i = 0; i <= static_cast<int>(Axis::kPreceding); i++) {
    Axis a = static_cast<Axis>(i);
    if (name == AxisName(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

Status ApplyAxis(const NodePtr& n, Axis axis, const ItemTest& test,
                 const Schema* schema, Sequence* out, const TreeJoinOpts& opts,
                 TreeJoinStats* stats) {
  switch (axis) {
    case Axis::kChild:
      if (MatchesAllNodes(test)) out->reserve(out->size() + n->children.size());
      for (const NodePtr& c : n->children) AddIfMatch(c, test, schema, out);
      return Status::OK();
    case Axis::kDescendant:
    case Axis::kDescendantOrSelf: {
      if (axis == Axis::kDescendantOrSelf) AddIfMatch(n, test, schema, out);
      XQC_ASSIGN_OR_RETURN(const DocumentIndex* idx, IndexFor(n, opts));
      const std::vector<NodePtr>* part = nullptr;
      if (idx != nullptr && PartitionFor(*idx, test, &part)) {
        CountIndexLookup(stats);
        auto it = LowerBoundByStart(*part, n->start);
        auto last = LowerBoundByStart(*part, n->end);
        out->reserve(out->size() + static_cast<size_t>(last - it));
        for (; it != last; ++it) AddIfMatch(*it, test, schema, out);
        return Status::OK();
      }
      if (MatchesAllNodes(test) && n->start != 0) {
        // Full-subtree scans (//node()) are the one case where the interval
        // gives a useful a-priori output bound.
        out->reserve(out->size() + n->SubtreeSize() - n->attributes.size());
      }
      Descendants(n, test, schema, out);
      return Status::OK();
    }
    case Axis::kAttribute:
      for (const NodePtr& a : n->attributes) AddIfMatch(a, test, schema, out);
      return Status::OK();
    case Axis::kSelf:
      AddIfMatch(n, test, schema, out);
      return Status::OK();
    case Axis::kParent: {
      NodePtr p = Shared(n->parent);
      if (p != nullptr) AddIfMatch(p, test, schema, out);
      return Status::OK();
    }
    case Axis::kAncestor:
    case Axis::kAncestorOrSelf: {
      // Collect root-to-node order (document order for ancestors).
      std::vector<NodePtr> chain;
      Node* p = axis == Axis::kAncestorOrSelf ? n.get() : n->parent;
      while (p != nullptr) {
        chain.push_back(Shared(p));
        p = p->parent;
      }
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        AddIfMatch(*it, test, schema, out);
      }
      return Status::OK();
    }
    case Axis::kFollowingSibling:
    case Axis::kPrecedingSibling: {
      Node* p = n->parent;
      if (p == nullptr || n->kind == NodeKind::kAttribute) return Status::OK();
      const auto& sibs = p->children;
      size_t self_idx = SelfIndexAmongSiblings(sibs, n.get());
      if (axis == Axis::kFollowingSibling) {
        for (size_t i = self_idx + 1; i < sibs.size(); i++) {
          AddIfMatch(sibs[i], test, schema, out);
        }
      } else {
        for (size_t i = 0; i < self_idx && i < sibs.size(); i++) {
          AddIfMatch(sibs[i], test, schema, out);
        }
      }
      return Status::OK();
    }
    case Axis::kFollowing:
    case Axis::kPreceding: {
      // All non-attribute nodes strictly after (before) this node in
      // document order, excluding ancestors/descendants per XPath. With
      // interval numbering: following = {c : c.start > n.end},
      // preceding = {c : c.end < n.start} — ancestor/descendant exclusion
      // falls out of the interval tests.
      NodePtr root = Shared(n->Root());
      XQC_ASSIGN_OR_RETURN(const DocumentIndex* idx, IndexFor(n, opts));
      const std::vector<NodePtr>* part = nullptr;
      if (idx != nullptr && PartitionFor(*idx, test, &part)) {
        CountIndexLookup(stats);
        if (axis == Axis::kFollowing) {
          for (auto it = LowerBoundByStart(*part, n->end); it != part->end();
               ++it) {
            AddIfMatch(*it, test, schema, out);
          }
        } else {
          auto last = LowerBoundByStart(*part, n->start - 1);
          for (auto it = part->begin(); it != last; ++it) {
            if ((*it)->end >= n->start) continue;  // ancestor of n
            AddIfMatch(*it, test, schema, out);
          }
        }
        return Status::OK();
      }
      if (axis == Axis::kFollowing) {
        FollowingWalk(root, *n, test, schema, out);
      } else {
        PrecedingWalk(root, *n, test, schema, out);
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

Result<Sequence> TreeJoin(const Sequence& input, Axis axis,
                          const ItemTest& test, const Schema* schema,
                          const TreeJoinOpts& opts, TreeJoinStats* stats) {
  Sequence out;
  for (const Item& it : input) {
    if (!it.IsNode()) {
      return Status::XQueryError("XPTY0004",
                                 "axis step applied to an atomic value");
    }
    XQC_RETURN_IF_ERROR(
        ApplyAxis(it.node(), axis, test, schema, &out, opts, stats));
  }
  TreeJoinStats local;
  TreeJoinStats* s = stats != nullptr ? stats : &local;
  if (opts.force_sort) {
    s->ddo_sorts++;
    return DistinctDocOrder(out);
  }
  if (opts.ddo == DdoMode::kSkip) {
    s->ddo_skip_static++;
    return out;
  }
  if (input.size() <= 1) {
    // Every axis emits a single context node's result already in document
    // order and duplicate-free.
    s->ddo_skip_singleton++;
    return out;
  }
  if (opts.ddo == DdoMode::kDedup) {
    // Provably ordered with (provably adjacent) duplicates: one linear
    // pass instead of a sort.
    s->ddo_dedups++;
    Sequence deduped;
    deduped.reserve(out.size());
    const Node* prev = nullptr;
    for (Item& item : out) {
      if (item.node().get() == prev) continue;
      prev = item.node().get();
      deduped.push_back(std::move(item));
    }
    return deduped;
  }
  // Dynamic elision: concatenated per-node results are very often already
  // strictly increasing (e.g. child steps over non-overlapping inputs);
  // a strictly increasing start sequence is distinct and ordered, since
  // finalized trees draw their ids from disjoint blocks.
  bool sorted = true;
  uint64_t prev_start = 0;
  for (const Item& item : out) {
    uint64_t start = item.node()->start;
    if (start == 0 || start <= prev_start) {
      sorted = false;
      break;
    }
    prev_start = start;
  }
  if (sorted) {
    s->ddo_skip_verified++;
    return out;
  }
  s->ddo_sorts++;
  return DistinctDocOrder(out);
}

}  // namespace xqc
