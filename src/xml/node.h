// XML node trees: the node half of the XQuery data model.
//
// Nodes carry a schema type annotation (set by the Validate operator) that
// TypeMatches / TypeAssert consume — this is what lets the paper's Q8
// variant write `count($a/element(*,USSeller))`.
#ifndef XQC_XML_NODE_H_
#define XQC_XML_NODE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/symbol.h"

namespace xqc {

enum class NodeKind : uint8_t {
  kDocument,
  kElement,
  kAttribute,
  kText,
  kComment,
  kPI,
};

struct Node;
using NodePtr = std::shared_ptr<Node>;
class DocumentIndex;  // doc_index.h: lazily built structural index

/// A node in an XML tree. Children and attributes are owned via shared_ptr;
/// the parent link is a raw back-pointer (valid while the tree is alive).
struct Node : std::enable_shared_from_this<Node> {
  NodeKind kind = NodeKind::kElement;
  Symbol name;             // element name / attribute name / PI target
  std::string value;       // text / comment / attribute / PI content
  Symbol type_annotation;  // schema type (empty = untyped)
  Node* parent = nullptr;
  std::vector<NodePtr> attributes;  // elements only
  std::vector<NodePtr> children;    // document / element only

  /// Interval numbering (set by FinalizeTree; 0 = unassigned). Each
  /// finalized tree occupies a contiguous, globally unique id block:
  /// `start` is the node's preorder id (attributes numbered after their
  /// element, before its children) and `end` is the largest `start` in the
  /// node's subtree (inclusive; == start for leaves and attributes). This
  /// makes document-order comparison (`a.start < b.start`, valid across
  /// trees) and ancestor/descendant containment
  /// (`a.start < d.start && d.start <= a.end`) O(1) integer tests.
  uint64_t start = 0;
  uint64_t end = 0;

  /// Root-only slots for the lazily built DocumentIndex (doc_index.h).
  /// `doc_index` owns the index; `doc_index_hint` is the double-checked
  /// fast-path pointer (acquire-load; set once, after the owner slot, under
  /// the build lock). Cleared by FinalizeTree. Treat as private to
  /// doc_index.cc / node.cc.
  std::shared_ptr<const DocumentIndex> doc_index;
  std::atomic<const DocumentIndex*> doc_index_hint{nullptr};

  /// The typed-value-relevant string value: concatenation of descendant
  /// text for documents/elements; `value` otherwise.
  std::string StringValue() const;

  /// Root of the tree containing this node.
  Node* Root();

  /// O(1) containment: is `d` a strict descendant of this node? Both nodes
  /// must belong to the same finalized tree (or any finalized trees —
  /// blocks are globally disjoint, so cross-tree queries answer false).
  bool ContainsStrict(const Node& d) const {
    return start < d.start && d.start <= end;
  }

  /// Number of nodes in this subtree (self + attributes + descendants);
  /// meaningful only after FinalizeTree.
  uint64_t SubtreeSize() const { return end - start + 1; }
};

/// Builders. The returned nodes are detached; call FinalizeTree on the root
/// to fix parent pointers and assign global document order.
NodePtr NewDocument();
NodePtr NewElement(Symbol name);
NodePtr NewAttribute(Symbol name, std::string value);
NodePtr NewText(std::string value);
NodePtr NewComment(std::string value);
NodePtr NewPI(Symbol target, std::string value);

/// Appends a child (or attribute node) under `parent`, setting the back
/// pointer. Attribute nodes go to `attributes`, all others to `children`.
void Append(const NodePtr& parent, NodePtr child);

/// Walks the tree in document order, setting parent pointers and assigning
/// fresh interval numbers (see Node::start/end) from a contiguous, globally
/// increasing id block, so nodes of distinct trees compare by their tree's
/// finalization order. Invalidates any DocumentIndex built for the tree.
/// Safe to call repeatedly; must not race with readers of the tree.
void FinalizeTree(const NodePtr& root);

/// Reserves a contiguous block of `count` interval ids from the same
/// process-global sequence FinalizeTree draws from and returns the first id
/// of the block. Used by deserializers (the snapshot tier) that already
/// know every node's tree-relative preorder position: assigning
/// `start = base + rel` reproduces exactly what FinalizeTree would have
/// computed, without a second walk, and the block stays disjoint from every
/// other finalized tree's.
uint64_t AllocateOrderBlock(uint64_t count);

/// Deep copy of a subtree. The copy is detached and unfinalized; type
/// annotations are preserved iff `keep_types`.
NodePtr DeepCopy(const Node& node, bool keep_types);

/// Total order on nodes consistent with document order; nodes from distinct
/// trees compare by their tree's finalization order.
bool DocOrderLess(const Node* a, const Node* b);

}  // namespace xqc

#endif  // XQC_XML_NODE_H_
