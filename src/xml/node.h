// XML node trees: the node half of the XQuery data model.
//
// Nodes carry a schema type annotation (set by the Validate operator) that
// TypeMatches / TypeAssert consume — this is what lets the paper's Q8
// variant write `count($a/element(*,USSeller))`.
#ifndef XQC_XML_NODE_H_
#define XQC_XML_NODE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/base/symbol.h"

namespace xqc {

enum class NodeKind : uint8_t {
  kDocument,
  kElement,
  kAttribute,
  kText,
  kComment,
  kPI,
};

struct Node;
using NodePtr = std::shared_ptr<Node>;

/// A node in an XML tree. Children and attributes are owned via shared_ptr;
/// the parent link is a raw back-pointer (valid while the tree is alive).
struct Node : std::enable_shared_from_this<Node> {
  NodeKind kind = NodeKind::kElement;
  Symbol name;             // element name / attribute name / PI target
  std::string value;       // text / comment / attribute / PI content
  Symbol type_annotation;  // schema type (empty = untyped)
  Node* parent = nullptr;
  std::vector<NodePtr> attributes;  // elements only
  std::vector<NodePtr> children;    // document / element only
  uint64_t order = 0;  // global document-order id (0 = unassigned)

  /// The typed-value-relevant string value: concatenation of descendant
  /// text for documents/elements; `value` otherwise.
  std::string StringValue() const;

  /// Root of the tree containing this node.
  Node* Root();
};

/// Builders. The returned nodes are detached; call FinalizeTree on the root
/// to fix parent pointers and assign global document order.
NodePtr NewDocument();
NodePtr NewElement(Symbol name);
NodePtr NewAttribute(Symbol name, std::string value);
NodePtr NewText(std::string value);
NodePtr NewComment(std::string value);
NodePtr NewPI(Symbol target, std::string value);

/// Appends a child (or attribute node) under `parent`, setting the back
/// pointer. Attribute nodes go to `attributes`, all others to `children`.
void Append(const NodePtr& parent, NodePtr child);

/// Walks the tree in document order, setting parent pointers and assigning
/// fresh globally increasing order ids (attributes numbered after their
/// element, before its children). Safe to call repeatedly.
void FinalizeTree(const NodePtr& root);

/// Deep copy of a subtree. The copy is detached and unfinalized; type
/// annotations are preserved iff `keep_types`.
NodePtr DeepCopy(const Node& node, bool keep_types);

/// Total order on nodes consistent with document order; nodes from distinct
/// trees compare by their tree's creation order.
bool DocOrderLess(const Node* a, const Node* b);

}  // namespace xqc

#endif  // XQC_XML_NODE_H_
