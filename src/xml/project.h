// Tree projection (the TreeProject[paths] operator of Table 1, in the
// style of Marian & Siméon's "Projecting XML Documents"): prunes a document
// tree down to the nodes reachable by a set of projection paths, so that
// queries touching a small part of a large document keep a small tree.
#ifndef XQC_XML_PROJECT_H_
#define XQC_XML_PROJECT_H_

#include <string>
#include <vector>

#include "src/base/status.h"
#include "src/xml/node.h"

namespace xqc {

/// One projection path: a '/'-separated list of steps. Each step is an
/// element name, '*' (any element), '@name' (an attribute), or '//' may
/// prefix a step to make it a descendant step, e.g.
/// "site/people/person/@id" or "//closed_auction/price". The final step's
/// whole subtree is kept.
struct ProjectionPath {
  struct Step {
    bool descendant = false;  // step preceded by //
    bool attribute = false;   // @name
    Symbol name;              // empty = '*'
  };
  std::vector<Step> steps;
};

/// Parses the textual path syntax above. Error on malformed paths.
Result<ProjectionPath> ParseProjectionPath(const std::string& text);

/// Projects `root` to the union of the given paths: returns a fresh tree
/// containing, for every path, all nodes on the path plus the full subtree
/// under each path's final match. Nodes not on any path are dropped.
/// The copy is finalized (fresh document order).
Result<NodePtr> ProjectTree(const NodePtr& root,
                            const std::vector<std::string>& paths);

}  // namespace xqc

#endif  // XQC_XML_PROJECT_H_
