// XPath axes: the navigation primitive behind the TreeJoin operator.
// TreeJoin is set-at-a-time: it takes nodes in document order and returns
// the axis/test result in document order with duplicates removed.
//
// The distinct-doc-order obligation is discharged as cheaply as possible:
// the optimizer can prove it away statically (DdoMode, inferred in
// src/opt/ddo_infer.h), a singleton input discharges it dynamically (every
// axis emits a single node's result in document order), and otherwise a
// linear sortedness check elides the O(n log n) sort whenever the
// concatenated output happens to be ordered already. Descendant and
// following/preceding steps additionally use the per-document structural
// index (doc_index.h) instead of walking whole subtrees.
#ifndef XQC_XML_AXES_H_
#define XQC_XML_AXES_H_

#include <string>

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/types/seqtype.h"
#include "src/xml/item.h"

namespace xqc {

enum class Axis : uint8_t {
  kChild,
  kDescendant,
  kAttribute,
  kSelf,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowingSibling,
  kPrecedingSibling,
  kFollowing,
  kPreceding,
};

const char* AxisName(Axis a);  // "child", "descendant", ...
bool AxisFromName(std::string_view name, Axis* out);

/// Statically inferred way to establish a TreeJoin's distinct-doc-order
/// postcondition (annotated on kTreeJoin ops by AnnotateDdo, src/opt/).
enum class DdoMode : uint8_t {
  kSort,   // no static guarantee: verify or sort at runtime
  kDedup,  // output provably ordered; adjacent duplicates possible
  kSkip,   // output provably distinct and ordered: nothing to do
};

/// Counters for the sort-elision and index machinery (merged into
/// ExecStats::tree_join by the evaluator; observable by tests/benches).
struct TreeJoinStats {
  int64_t ddo_sorts = 0;          // full DistinctDocOrder sorts performed
  int64_t ddo_dedups = 0;         // linear adjacent dedups (DdoMode::kDedup)
  int64_t ddo_skip_static = 0;    // elided via optimizer annotation
  int64_t ddo_skip_singleton = 0; // elided via runtime singleton input
  int64_t ddo_skip_verified = 0;  // elided via linear sortedness check
  int64_t index_lookups = 0;      // DocumentIndex range scans used

  void Add(const TreeJoinStats& o) {
    ddo_sorts += o.ddo_sorts;
    ddo_dedups += o.ddo_dedups;
    ddo_skip_static += o.ddo_skip_static;
    ddo_skip_singleton += o.ddo_skip_singleton;
    ddo_skip_verified += o.ddo_skip_verified;
    index_lookups += o.index_lookups;
  }
};

/// Per-execution knobs for TreeJoin/ApplyAxis.
struct TreeJoinOpts {
  DdoMode ddo = DdoMode::kSort;  // static annotation of this step
  bool force_sort = false;       // always sort (baseline / oracle mode)
  bool use_index = true;         // consult/build the DocumentIndex
  /// The executing query's guard, checked during a lazy DocumentIndex
  /// build so a deadline/cancellation can trip mid-build on a large tree.
  /// nullptr = unlimited.
  QueryGuard* guard = nullptr;
};

/// Applies `axis` from a single node, appending matches of `test` to `out`
/// in document order. Fails only when a lazy index build trips
/// `opts.guard` (Status::ResourceExhausted).
Status ApplyAxis(const NodePtr& n, Axis axis, const ItemTest& test,
                 const Schema* schema, Sequence* out,
                 const TreeJoinOpts& opts = {}, TreeJoinStats* stats = nullptr);

/// The TreeJoin operator: applies the axis step to every node of `input`
/// and returns the result in document order without duplicates.
/// Error XPTY0004 if an input item is not a node.
Result<Sequence> TreeJoin(const Sequence& input, Axis axis,
                          const ItemTest& test, const Schema* schema,
                          const TreeJoinOpts& opts = {},
                          TreeJoinStats* stats = nullptr);

}  // namespace xqc

#endif  // XQC_XML_AXES_H_
