// XPath axes: the navigation primitive behind the TreeJoin operator.
// TreeJoin is set-at-a-time: it takes nodes in document order and returns
// the axis/test result in document order with duplicates removed.
#ifndef XQC_XML_AXES_H_
#define XQC_XML_AXES_H_

#include <string>

#include "src/base/status.h"
#include "src/types/seqtype.h"
#include "src/xml/item.h"

namespace xqc {

enum class Axis : uint8_t {
  kChild,
  kDescendant,
  kAttribute,
  kSelf,
  kDescendantOrSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowingSibling,
  kPrecedingSibling,
  kFollowing,
  kPreceding,
};

const char* AxisName(Axis a);  // "child", "descendant", ...
bool AxisFromName(std::string_view name, Axis* out);

/// Applies `axis` from a single node, appending matches of `test` to `out`
/// in axis order.
void ApplyAxis(const NodePtr& n, Axis axis, const ItemTest& test,
               const Schema* schema, Sequence* out);

/// The TreeJoin operator: applies the axis step to every node of `input`
/// and returns the result in document order without duplicates.
/// Error XPTY0004 if an input item is not a node.
Result<Sequence> TreeJoin(const Sequence& input, Axis axis,
                          const ItemTest& test, const Schema* schema);

}  // namespace xqc

#endif  // XQC_XML_AXES_H_
