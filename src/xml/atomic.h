// Atomic values of the XQuery data model.
//
// The type lattice covers the 19 primitive XML Schema datatypes (the number
// the paper's hash join enumerates promotions over, Section 6), plus
// xs:integer (the derived numeric the paper's examples use) and
// xdt:untypedAtomic (the type of atomized untyped nodes, central to
// fs:convert-operand semantics in Table 2).
#ifndef XQC_XML_ATOMIC_H_
#define XQC_XML_ATOMIC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "src/base/status.h"

namespace xqc {

/// Atomic type tags. Order matters: numeric promotion walks
/// kInteger -> kDecimal -> kFloat -> kDouble.
enum class AtomicType : uint8_t {
  kUntypedAtomic,  // xdt:untypedAtomic
  kString,         // xs:string
  kBoolean,        // xs:boolean
  kInteger,        // xs:integer (derived from xs:decimal)
  kDecimal,        // xs:decimal
  kFloat,          // xs:float
  kDouble,         // xs:double
  kDuration,       // xs:duration
  kDateTime,       // xs:dateTime
  kTime,           // xs:time
  kDate,           // xs:date
  kGYearMonth,     // xs:gYearMonth
  kGYear,          // xs:gYear
  kGMonthDay,      // xs:gMonthDay
  kGDay,           // xs:gDay
  kGMonth,         // xs:gMonth
  kHexBinary,      // xs:hexBinary
  kBase64Binary,   // xs:base64Binary
  kAnyURI,         // xs:anyURI
  kQName,          // xs:QName
  kNotation,       // xs:NOTATION
};

/// Number of distinct atomic type tags.
constexpr int kNumAtomicTypes = static_cast<int>(AtomicType::kNotation) + 1;

/// "xs:double", "xdt:untypedAtomic", ... (the prefixed lexical QName).
const char* AtomicTypeName(AtomicType t);

/// Inverse of AtomicTypeName; accepts both "xs:double" and "double".
/// Returns false if the name is not an atomic type name.
bool AtomicTypeFromName(std::string_view name, AtomicType* out);

/// True for xs:integer, xs:decimal, xs:float, xs:double.
bool IsNumeric(AtomicType t);

/// An atomic value: a type tag plus a value representation.
///
/// Representation notes (documented simplifications):
///  - xs:decimal is stored as double (sufficient for the paper's workloads);
///  - xs:float is stored as double but rounded through float on creation;
///  - date/time/duration/binary/QName types store their (trimmed) lexical
///    form and compare lexically.
class AtomicValue {
 public:
  /// Default: empty xs:string.
  AtomicValue() : type_(AtomicType::kString), v_(std::string()) {}

  static AtomicValue Untyped(std::string s);
  static AtomicValue String(std::string s);
  static AtomicValue Boolean(bool b);
  static AtomicValue Integer(int64_t i);
  static AtomicValue Decimal(double d);
  static AtomicValue Float(double d);
  static AtomicValue Double(double d);
  /// A lexical-form value of any non-numeric, non-boolean type.
  static AtomicValue Lexical(AtomicType t, std::string s);

  /// Casts a lexical string to type `t` (XML Schema lexical rules,
  /// simplified for date/time types). Error code FORG0001 on failure.
  static Result<AtomicValue> FromLexical(AtomicType t, std::string_view s);

  AtomicType type() const { return type_; }
  bool is_numeric() const { return IsNumeric(type_); }

  bool AsBool() const { return std::get<bool>(v_); }
  int64_t AsInt() const { return std::get<int64_t>(v_); }
  /// Numeric value as double (works for integer, decimal, float, double).
  double AsDouble() const;
  const std::string& AsString() const { return std::get<std::string>(v_); }

  /// The canonical lexical form (string value) of this atomic.
  std::string Lexical() const;

  /// Identity-ish equality: same type tag and same stored value.
  bool StrictEquals(const AtomicValue& o) const;

 private:
  AtomicValue(AtomicType t, std::variant<bool, int64_t, double, std::string> v)
      : type_(t), v_(std::move(v)) {}

  AtomicType type_;
  std::variant<bool, int64_t, double, std::string> v_;
};

}  // namespace xqc

#endif  // XQC_XML_ATOMIC_H_
