#include "src/xml/doc_index.h"

#include <mutex>

namespace xqc {
namespace {

/// Build locks, sharded by root pointer so unrelated documents never
/// contend. Only the build path locks; lookups go through the published
/// atomic hint.
constexpr size_t kBuildLockShards = 16;
std::mutex g_build_locks[kBuildLockShards];

std::mutex& BuildLockFor(const Node* root) {
  return g_build_locks[(reinterpret_cast<uintptr_t>(root) >> 4) %
                       kBuildLockShards];
}

/// Approximate bytes the index holds per node (~3 NodePtr refs across
/// all_/kind vectors/by_name_), charged to the building query's budget.
constexpr int64_t kIndexEntryCost = 48;

}  // namespace

Status DocumentIndex::Add(const NodePtr& n, QueryGuard* guard) {
  XQC_RETURN_IF_ERROR(guard->Check());
  XQC_RETURN_IF_ERROR(guard->AccountMemory(kIndexEntryCost));
  all_.push_back(n);
  switch (n->kind) {
    case NodeKind::kElement:
      elements_.push_back(n);
      by_name_[n->name].push_back(n);
      break;
    case NodeKind::kText:
      texts_.push_back(n);
      break;
    case NodeKind::kComment:
      comments_.push_back(n);
      break;
    case NodeKind::kPI:
      pis_.push_back(n);
      break;
    default:
      break;  // document root stays in all_ only; attributes never enter
  }
  for (const NodePtr& c : n->children) {
    XQC_RETURN_IF_ERROR(Add(c, guard));
  }
  return Status::OK();
}

DocumentIndex::DocumentIndex(const Node& root) {
  // Skipping the root keeps the index free of a NodePtr back to its own
  // owner (root->doc_index -> all_ -> root would leak the whole tree).
  all_.reserve(root.SubtreeSize());
  for (const NodePtr& c : root.children) {
    // UnlimitedGuard never trips, so this cannot fail.
    (void)Add(c, UnlimitedGuard());
  }
}

Result<std::shared_ptr<const DocumentIndex>> DocumentIndex::Build(
    const Node& root, QueryGuard* guard) {
  if (guard == nullptr) guard = UnlimitedGuard();
  std::shared_ptr<DocumentIndex> idx(new DocumentIndex());
  idx->all_.reserve(root.SubtreeSize());
  for (const NodePtr& c : root.children) {
    XQC_RETURN_IF_ERROR(idx->Add(c, guard));
  }
  return std::shared_ptr<const DocumentIndex>(std::move(idx));
}

Result<const DocumentIndex*> GetOrBuildDocumentIndex(Node* root,
                                                     QueryGuard* guard) {
  const DocumentIndex* hint =
      root->doc_index_hint.load(std::memory_order_acquire);
  if (hint != nullptr) return hint;
  std::lock_guard<std::mutex> lock(BuildLockFor(root));
  if (root->doc_index == nullptr) {
    // A failed build (guard trip midway) is returned, not published: the
    // tree stays index-less and a later query can build it within its own
    // budget.
    XQC_ASSIGN_OR_RETURN(std::shared_ptr<const DocumentIndex> built,
                         DocumentIndex::Build(*root, guard));
    root->doc_index = std::move(built);
    root->doc_index_hint.store(root->doc_index.get(),
                               std::memory_order_release);
  }
  return root->doc_index.get();
}

const DocumentIndex* GetOrBuildDocumentIndex(Node* root) {
  Result<const DocumentIndex*> r = GetOrBuildDocumentIndex(root, nullptr);
  return r.value();  // an unguarded build cannot fail
}

const DocumentIndex* GetDocumentIndex(const Node* root) {
  return root->doc_index_hint.load(std::memory_order_acquire);
}

}  // namespace xqc
