#include "src/xml/doc_index.h"

#include <mutex>

namespace xqc {
namespace {

/// Build locks, sharded by root pointer so unrelated documents never
/// contend. Only the build path locks; lookups go through the published
/// atomic hint.
constexpr size_t kBuildLockShards = 16;
std::mutex g_build_locks[kBuildLockShards];

std::mutex& BuildLockFor(const Node* root) {
  return g_build_locks[(reinterpret_cast<uintptr_t>(root) >> 4) %
                       kBuildLockShards];
}

}  // namespace

void DocumentIndex::Add(const NodePtr& n) {
  all_.push_back(n);
  switch (n->kind) {
    case NodeKind::kElement:
      elements_.push_back(n);
      by_name_[n->name].push_back(n);
      break;
    case NodeKind::kText:
      texts_.push_back(n);
      break;
    case NodeKind::kComment:
      comments_.push_back(n);
      break;
    case NodeKind::kPI:
      pis_.push_back(n);
      break;
    default:
      break;  // document root stays in all_ only; attributes never enter
  }
  for (const NodePtr& c : n->children) Add(c);
}

DocumentIndex::DocumentIndex(const Node& root) {
  // Skipping the root keeps the index free of a NodePtr back to its own
  // owner (root->doc_index -> all_ -> root would leak the whole tree).
  all_.reserve(root.SubtreeSize());
  for (const NodePtr& c : root.children) Add(c);
}

const DocumentIndex* GetOrBuildDocumentIndex(Node* root) {
  const DocumentIndex* hint =
      root->doc_index_hint.load(std::memory_order_acquire);
  if (hint != nullptr) return hint;
  std::lock_guard<std::mutex> lock(BuildLockFor(root));
  if (root->doc_index == nullptr) {
    root->doc_index = std::make_shared<const DocumentIndex>(*root);
    root->doc_index_hint.store(root->doc_index.get(),
                               std::memory_order_release);
  }
  return root->doc_index.get();
}

const DocumentIndex* GetDocumentIndex(const Node* root) {
  return root->doc_index_hint.load(std::memory_order_acquire);
}

}  // namespace xqc
