#include "src/xml/serializer.h"

#include "src/base/strutil.h"

namespace xqc {
namespace {

// XML forbids "--" inside comments (and a trailing "-", which would form
// "--->"), so a comment body emitted verbatim may not re-parse. Repair by
// breaking each "--" with a space; the content is annotation-only, so a
// lossy repair beats emitting a document no parser will accept.
std::string RepairCommentText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '-' && !out.empty() && out.back() == '-') out.push_back(' ');
    out.push_back(c);
  }
  if (!out.empty() && out.back() == '-') out.push_back(' ');
  return out;
}

// A processing-instruction body containing "?>" would terminate the PI
// early; break the pair with a space so the output re-parses.
std::string RepairPIText(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '>' && !out.empty() && out.back() == '?') out.push_back(' ');
    out.push_back(c);
  }
  return out;
}

void SerializeRec(const Node& n, const SerializeOptions& o, int depth,
                  std::string* out) {
  auto indent = [&](int d) {
    if (o.indent) {
      out->push_back('\n');
      out->append(static_cast<size_t>(d) * 2, ' ');
    }
  };
  switch (n.kind) {
    case NodeKind::kDocument:
      for (size_t i = 0; i < n.children.size(); i++) {
        if (o.indent && i > 0) out->push_back('\n');
        SerializeRec(*n.children[i], o, depth, out);
      }
      return;
    case NodeKind::kElement: {
      out->push_back('<');
      out->append(n.name.str());
      for (const NodePtr& a : n.attributes) {
        out->push_back(' ');
        out->append(a->name.str());
        out->append("=\"");
        out->append(XmlEscape(a->value, /*in_attribute=*/true));
        out->push_back('"');
      }
      if (n.children.empty()) {
        out->append("/>");
        return;
      }
      out->push_back('>');
      bool text_only = true;
      for (const NodePtr& c : n.children) {
        if (c->kind != NodeKind::kText) text_only = false;
      }
      for (const NodePtr& c : n.children) {
        if (!text_only) indent(depth + 1);
        SerializeRec(*c, o, depth + 1, out);
      }
      if (!text_only) indent(depth);
      out->append("</");
      out->append(n.name.str());
      out->push_back('>');
      return;
    }
    case NodeKind::kAttribute:
      out->append(n.name.str());
      out->append("=\"");
      out->append(XmlEscape(n.value, /*in_attribute=*/true));
      out->push_back('"');
      return;
    case NodeKind::kText:
      out->append(XmlEscape(n.value, /*in_attribute=*/false));
      return;
    case NodeKind::kComment:
      out->append("<!--");
      if (n.value.find("--") != std::string::npos ||
          (!n.value.empty() && n.value.back() == '-')) {
        out->append(RepairCommentText(n.value));
      } else {
        out->append(n.value);
      }
      out->append("-->");
      return;
    case NodeKind::kPI:
      out->append("<?");
      out->append(n.name.str());
      if (!n.value.empty()) {
        out->push_back(' ');
        if (n.value.find("?>") != std::string::npos) {
          out->append(RepairPIText(n.value));
        } else {
          out->append(n.value);
        }
      }
      out->append("?>");
      return;
  }
}

}  // namespace

std::string SerializeNode(const Node& node, const SerializeOptions& o) {
  std::string out;
  SerializeRec(node, o, 0, &out);
  return out;
}

std::string SerializeSequence(const Sequence& s, const SerializeOptions& o) {
  std::string out;
  bool prev_atomic = false;
  for (const Item& it : s) {
    if (it.IsAtomic()) {
      if (prev_atomic) out.push_back(' ');
      out.append(XmlEscape(it.atomic().Lexical(), /*in_attribute=*/false));
      prev_atomic = true;
    } else {
      SerializeRec(*it.node(), o, 0, &out);
      prev_atomic = false;
    }
  }
  return out;
}

}  // namespace xqc
