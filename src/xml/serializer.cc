#include "src/xml/serializer.h"

#include "src/base/strutil.h"

namespace xqc {
namespace {

void SerializeRec(const Node& n, const SerializeOptions& o, int depth,
                  std::string* out) {
  auto indent = [&](int d) {
    if (o.indent) {
      out->push_back('\n');
      out->append(static_cast<size_t>(d) * 2, ' ');
    }
  };
  switch (n.kind) {
    case NodeKind::kDocument:
      for (size_t i = 0; i < n.children.size(); i++) {
        if (o.indent && i > 0) out->push_back('\n');
        SerializeRec(*n.children[i], o, depth, out);
      }
      return;
    case NodeKind::kElement: {
      out->push_back('<');
      out->append(n.name.str());
      for (const NodePtr& a : n.attributes) {
        out->push_back(' ');
        out->append(a->name.str());
        out->append("=\"");
        out->append(XmlEscape(a->value, /*in_attribute=*/true));
        out->push_back('"');
      }
      if (n.children.empty()) {
        out->append("/>");
        return;
      }
      out->push_back('>');
      bool text_only = true;
      for (const NodePtr& c : n.children) {
        if (c->kind != NodeKind::kText) text_only = false;
      }
      for (const NodePtr& c : n.children) {
        if (!text_only) indent(depth + 1);
        SerializeRec(*c, o, depth + 1, out);
      }
      if (!text_only) indent(depth);
      out->append("</");
      out->append(n.name.str());
      out->push_back('>');
      return;
    }
    case NodeKind::kAttribute:
      out->append(n.name.str());
      out->append("=\"");
      out->append(XmlEscape(n.value, /*in_attribute=*/true));
      out->push_back('"');
      return;
    case NodeKind::kText:
      out->append(XmlEscape(n.value, /*in_attribute=*/false));
      return;
    case NodeKind::kComment:
      out->append("<!--");
      out->append(n.value);
      out->append("-->");
      return;
    case NodeKind::kPI:
      out->append("<?");
      out->append(n.name.str());
      if (!n.value.empty()) {
        out->push_back(' ');
        out->append(n.value);
      }
      out->append("?>");
      return;
  }
}

}  // namespace

std::string SerializeNode(const Node& node, const SerializeOptions& o) {
  std::string out;
  SerializeRec(node, o, 0, &out);
  return out;
}

std::string SerializeSequence(const Sequence& s, const SerializeOptions& o) {
  std::string out;
  bool prev_atomic = false;
  for (const Item& it : s) {
    if (it.IsAtomic()) {
      if (prev_atomic) out.push_back(' ');
      out.append(XmlEscape(it.atomic().Lexical(), /*in_attribute=*/false));
      prev_atomic = true;
    } else {
      SerializeRec(*it.node(), o, 0, &out);
      prev_atomic = false;
    }
  }
  return out;
}

}  // namespace xqc
