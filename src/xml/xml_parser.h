// A from-scratch non-validating XML parser (the paper's Parse operator).
#ifndef XQC_XML_XML_PARSER_H_
#define XQC_XML_XML_PARSER_H_

#include <string_view>

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/xml/node.h"

namespace xqc {

struct XmlParseOptions {
  /// Drop whitespace-only text nodes between elements (data-oriented
  /// documents). Text inside mixed content is preserved either way.
  bool strip_boundary_whitespace = true;
  /// Keep comments and processing instructions as nodes.
  bool keep_comments_and_pis = true;
  /// Optional resource guard (non-owning): the parser runs amortized
  /// checks and accounts constructed nodes against it, so document parsing
  /// inside a query (fn:doc) honors the query's deadline and budgets.
  QueryGuard* guard = nullptr;
};

/// Parses an XML document. The returned document node is finalized
/// (parent pointers set, global document order assigned).
///
/// Supported: elements, attributes, character data, CDATA sections,
/// comments, PIs, the five predefined entities and numeric character
/// references, XML declaration and DOCTYPE (skipped, no external DTDs).
Result<NodePtr> ParseXml(std::string_view text,
                         const XmlParseOptions& options = {});

/// Reads the file at `path` and parses it.
Result<NodePtr> ParseXmlFile(const std::string& path,
                             const XmlParseOptions& options = {});

}  // namespace xqc

#endif  // XQC_XML_XML_PARSER_H_
