// Items and sequences: the value universe of the logical data model
// (Section 3 of the paper). An XML value is an ordered sequence of items;
// an item is an atomic value or a node.
#ifndef XQC_XML_ITEM_H_
#define XQC_XML_ITEM_H_

#include <string>
#include <variant>
#include <vector>

#include "src/base/status.h"
#include "src/xml/atomic.h"
#include "src/xml/node.h"

namespace xqc {

/// One item of the XQuery data model.
class Item {
 public:
  Item() : v_(AtomicValue()) {}
  Item(AtomicValue a) : v_(std::move(a)) {}  // NOLINT: implicit by design
  Item(NodePtr n) : v_(std::move(n)) {}      // NOLINT: implicit by design

  bool IsAtomic() const { return std::holds_alternative<AtomicValue>(v_); }
  bool IsNode() const { return !IsAtomic(); }

  const AtomicValue& atomic() const { return std::get<AtomicValue>(v_); }
  const NodePtr& node() const { return std::get<NodePtr>(v_); }

  /// The item's string value (lexical form for atomics, string-value for
  /// nodes).
  std::string StringValue() const;

 private:
  std::variant<AtomicValue, NodePtr> v_;
};

/// An XML value: an ordered sequence of items.
using Sequence = std::vector<Item>;

/// Appends `src` to `dst`.
void Extend(Sequence* dst, const Sequence& src);
void Extend(Sequence* dst, Sequence&& src);

/// Atomization (fn:data). Nodes yield their typed value: untyped nodes give
/// xdt:untypedAtomic; nodes whose schema annotation names a built-in atomic
/// type (e.g. a Validate-annotated attribute of type xs:decimal) are cast to
/// that type. Atomic items pass through.
Result<Sequence> Atomize(const Sequence& s);

/// Effective boolean value (fn:boolean). Error FORG0006 for sequences that
/// have no EBV.
Result<bool> EffectiveBooleanValue(const Sequence& s);

/// Sorts node items into document order and removes duplicates
/// (fs:distinct-docorder). Error XPTY0004 if any item is atomic.
Result<Sequence> DistinctDocOrder(const Sequence& s);

/// True if the two sequences are identical: same length, pairwise items are
/// either the same node (pointer identity) or strictly equal atomics.
bool DeepEqualsIdentity(const Sequence& a, const Sequence& b);

}  // namespace xqc

#endif  // XQC_XML_ITEM_H_
