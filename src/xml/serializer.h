// XML serialization (the paper's Serialize operator).
#ifndef XQC_XML_SERIALIZER_H_
#define XQC_XML_SERIALIZER_H_

#include <string>

#include "src/xml/item.h"

namespace xqc {

struct SerializeOptions {
  bool indent = false;  // pretty-print with 2-space indentation
};

/// Serializes one node subtree.
std::string SerializeNode(const Node& node, const SerializeOptions& o = {});

/// Serializes a sequence per XQuery serialization: adjacent atomic values
/// are separated by single spaces; nodes serialize as XML.
std::string SerializeSequence(const Sequence& s, const SerializeOptions& o = {});

}  // namespace xqc

#endif  // XQC_XML_SERIALIZER_H_
