#include "src/xml/project.h"

#include "src/base/strutil.h"

namespace xqc {

Result<ProjectionPath> ParseProjectionPath(const std::string& text) {
  ProjectionPath path;
  size_t i = 0;
  while (i < text.size()) {
    ProjectionPath::Step step;
    if (text.compare(i, 2, "//") == 0) {
      step.descendant = true;
      i += 2;
    } else if (text[i] == '/') {
      i += 1;
    }
    if (i >= text.size()) {
      return Status::ParseError("projection path ends with '/': " + text);
    }
    if (text[i] == '@') {
      step.attribute = true;
      i++;
    }
    size_t start = i;
    while (i < text.size() && text[i] != '/') i++;
    std::string name = text.substr(start, i - start);
    if (name.empty()) {
      return Status::ParseError("empty step in projection path: " + text);
    }
    if (name != "*") step.name = Symbol(name);
    path.steps.push_back(step);
    if (step.attribute && i < text.size()) {
      return Status::ParseError("attribute step must be last: " + text);
    }
  }
  if (path.steps.empty()) {
    return Status::ParseError("empty projection path");
  }
  return path;
}

namespace {

struct PathState {
  const ProjectionPath* path;
  size_t next_step;  // index of the step to match at this level
};

bool StepMatches(const ProjectionPath::Step& step, const Node& n) {
  if (step.attribute) return false;  // attributes handled separately
  if (n.kind != NodeKind::kElement) return false;
  return step.name.empty() || step.name == n.name;
}

/// Recursively copies `n` keeping only children/attributes on some active
/// path. Returns null when nothing under `n` is needed.
NodePtr ProjectRec(const Node& n, const std::vector<PathState>& active) {
  // If any path is fully matched at this node, keep the whole subtree.
  std::vector<PathState> next_states;
  bool keep_all = false;
  std::vector<Symbol> keep_attrs;  // named attribute steps matched here
  bool keep_all_attrs = false;
  for (const PathState& st : active) {
    if (st.next_step >= st.path->steps.size()) {
      keep_all = true;
      continue;
    }
    const ProjectionPath::Step& step = st.path->steps[st.next_step];
    if (step.attribute) {
      if (step.name.empty()) {
        keep_all_attrs = true;
      } else {
        keep_attrs.push_back(step.name);
      }
      continue;
    }
    next_states.push_back(st);
  }
  if (keep_all) return DeepCopy(n, /*keep_types=*/true);

  // Compute which states apply to each child.
  NodePtr copy = std::make_shared<Node>();
  copy->kind = n.kind;
  copy->name = n.name;
  copy->value = n.value;
  copy->type_annotation = n.type_annotation;
  for (const NodePtr& a : n.attributes) {
    bool keep = keep_all_attrs;
    for (Symbol k : keep_attrs) {
      if (a->name == k) keep = true;
    }
    if (keep) {
      NodePtr ac = DeepCopy(*a, /*keep_types=*/true);
      ac->parent = copy.get();
      copy->attributes.push_back(std::move(ac));
    }
  }
  bool any_child = false;
  for (const NodePtr& c : n.children) {
    std::vector<PathState> child_states;
    for (const PathState& st : next_states) {
      const ProjectionPath::Step& step = st.path->steps[st.next_step];
      if (StepMatches(step, *c)) {
        child_states.push_back({st.path, st.next_step + 1});
      }
      if (step.descendant && c->kind == NodeKind::kElement) {
        // '//' steps stay active below non-matching elements too.
        child_states.push_back(st);
      }
    }
    if (child_states.empty()) continue;
    NodePtr cc = ProjectRec(*c, child_states);
    if (cc != nullptr) {
      cc->parent = copy.get();
      copy->children.push_back(std::move(cc));
      any_child = true;
    }
  }
  if (!any_child && copy->attributes.empty() && !active.empty()) {
    // Keep interior nodes only if they lie on a still-matchable path —
    // a node whose subtree yielded nothing is kept only when it itself
    // completed a path (handled by keep_all above).
    bool completed_here = false;
    for (const PathState& st : active) {
      if (st.next_step >= st.path->steps.size()) completed_here = true;
    }
    if (!completed_here) return nullptr;
  }
  return copy;
}

}  // namespace

Result<NodePtr> ProjectTree(const NodePtr& root,
                            const std::vector<std::string>& paths) {
  std::vector<ProjectionPath> parsed;
  parsed.reserve(paths.size());
  for (const std::string& p : paths) {
    XQC_ASSIGN_OR_RETURN(ProjectionPath pp, ParseProjectionPath(p));
    parsed.push_back(std::move(pp));
  }
  const Node* start = root.get();
  std::vector<PathState> states;
  for (const ProjectionPath& p : parsed) {
    states.push_back({&p, 0});
  }
  // A document node passes states through to its element child.
  NodePtr out;
  if (start->kind == NodeKind::kDocument) {
    out = NewDocument();
    for (const NodePtr& c : start->children) {
      if (c->kind != NodeKind::kElement) continue;
      std::vector<PathState> child_states;
      for (const PathState& st : states) {
        const ProjectionPath::Step& step = st.path->steps[0];
        if (StepMatches(step, *c)) {
          child_states.push_back({st.path, 1});
        }
        if (step.descendant) child_states.push_back(st);
      }
      if (child_states.empty()) continue;
      NodePtr cc = ProjectRec(*c, child_states);
      if (cc != nullptr) Append(out, std::move(cc));
    }
  } else {
    out = ProjectRec(*start, states);
    if (out == nullptr) out = NewDocument();
  }
  FinalizeTree(out);
  return out;
}

}  // namespace xqc
