// Baseline tree-walking evaluator over the normalized XQuery Core.
//
// This is the paper's "No algebra" configuration (Table 3, first row): it
// evaluates the query AST directly, with dynamic (name-based) variable
// lookups in a linked environment and fully materialized intermediate
// results — exactly the strategy the algebraic compiler replaces. It also
// serves as the differential-testing oracle for the optimized engine.
#ifndef XQC_INTERP_INTERPRETER_H_
#define XQC_INTERP_INTERPRETER_H_

#include <memory>
#include <unordered_map>

#include "src/base/status.h"
#include "src/runtime/context.h"
#include "src/xquery/ast.h"

namespace xqc {

/// A persistent, linked variable environment (dynamic lookup by name —
/// deliberately so; see header comment).
struct EnvNode {
  Symbol name;
  Sequence value;
  std::shared_ptr<const EnvNode> parent;
};
using EnvPtr = std::shared_ptr<const EnvNode>;

EnvPtr BindEnv(EnvPtr parent, Symbol name, Sequence value);
bool LookupEnv(const EnvPtr& env, Symbol name, Sequence* out);

class Interpreter {
 public:
  /// `query` must be normalized (NormalizeQuery) and outlive the
  /// interpreter; `ctx` provides documents, schema, external variables.
  Interpreter(const Query* query, DynamicContext* ctx);

  /// Evaluates prolog variable declarations then the query body.
  Result<Sequence> Run();

  /// Evaluates one Core expression under an environment (used by Run and
  /// by tests).
  Result<Sequence> Eval(const Expr& e, const EnvPtr& env);

 private:
  Result<Sequence> EvalFLWOR(const Expr& e, const EnvPtr& env);
  Result<Sequence> EvalQuantified(const Expr& e, const EnvPtr& env);
  Result<Sequence> EvalTypeswitch(const Expr& e, const EnvPtr& env);
  Result<Sequence> EvalCall(const Expr& e, const EnvPtr& env);
  Result<Sequence> EvalConstructor(const Expr& e, const EnvPtr& env);
  Result<Symbol> EvalName(const Expr& e, const EnvPtr& env);

  const Query* query_;
  DynamicContext* ctx_;
  QueryGuard* guard_;  // ctx's guard or the shared unlimited fallback
  std::unordered_map<Symbol, const FunctionDecl*> functions_;
  std::unordered_map<Symbol, Sequence> globals_;  // prolog variable values
  int depth_ = 0;
};

}  // namespace xqc

#endif  // XQC_INTERP_INTERPRETER_H_
