#include "src/interp/interpreter.h"

#include <algorithm>

#include "src/runtime/builtins.h"
#include "src/runtime/construct.h"
#include "src/types/compare.h"

namespace xqc {

EnvPtr BindEnv(EnvPtr parent, Symbol name, Sequence value) {
  auto n = std::make_shared<EnvNode>();
  n->name = name;
  n->value = std::move(value);
  n->parent = std::move(parent);
  return n;
}

bool LookupEnv(const EnvPtr& env, Symbol name, Sequence* out) {
  for (const EnvNode* n = env.get(); n != nullptr; n = n->parent.get()) {
    if (n->name == name) {
      *out = n->value;
      return true;
    }
  }
  return false;
}

namespace {

constexpr int kMaxRecursionDepth = 4096;

/// Compares two order-by keys per XQuery rules: atomized singletons,
/// untyped promoted to string. Returns -1/0/+1; empty sequences order per
/// `empty_greatest`.
Result<int> CompareOrderKeys(const Sequence& a, const Sequence& b,
                             bool empty_greatest) {
  if (a.empty() && b.empty()) return 0;
  if (a.empty()) return empty_greatest ? 1 : -1;
  if (b.empty()) return empty_greatest ? -1 : 1;
  AtomicValue x = a[0].atomic(), y = b[0].atomic();
  if (x.type() == AtomicType::kUntypedAtomic) {
    x = AtomicValue::String(x.AsString());
  }
  if (y.type() == AtomicType::kUntypedAtomic) {
    y = AtomicValue::String(y.AsString());
  }
  XQC_ASSIGN_OR_RETURN(bool lt, AtomicCompare(CompOp::kLt, x, y));
  if (lt) return -1;
  XQC_ASSIGN_OR_RETURN(bool gt, AtomicCompare(CompOp::kGt, x, y));
  if (gt) return 1;
  return 0;
}

Status CheckSequenceType(const Sequence& v, const SequenceType& t,
                         const Schema* schema, const char* what) {
  if (!t.Matches(v, schema)) {
    return Status::XQueryError(
        "XPTY0004", std::string("value does not match required type ") +
                        t.ToString() + " in " + what);
  }
  return Status::OK();
}

}  // namespace

Interpreter::Interpreter(const Query* query, DynamicContext* ctx)
    : query_(query),
      ctx_(ctx),
      guard_(ctx->guard() != nullptr ? ctx->guard() : UnlimitedGuard()) {
  for (const FunctionDecl& f : query->functions) {
    functions_[f.name] = &f;
  }
}

Result<Sequence> Interpreter::Run() {
  EnvPtr env;
  for (const VarDecl& v : query_->variables) {
    Sequence value;
    if (v.expr != nullptr) {
      XQC_ASSIGN_OR_RETURN(value, Eval(*v.expr, env));
    } else if (!ctx_->LookupVariable(v.name, &value)) {
      return Status::XQueryError(
          "XPDY0002", "external variable $" + v.name.str() + " not bound");
    }
    if (v.type) {
      XQC_RETURN_IF_ERROR(CheckSequenceType(value, *v.type, ctx_->schema(),
                                            "variable declaration"));
    }
    globals_[v.name] = value;
    env = BindEnv(env, v.name, std::move(value));
  }
  return Eval(*query_->body, env);
}

Result<Sequence> Interpreter::Eval(const Expr& e, const EnvPtr& env) {
  XQC_RETURN_IF_ERROR(guard_->Check());
  switch (e.kind) {
    case ExprKind::kLiteral:
      return Sequence{e.literal};
    case ExprKind::kEmptySeq:
      return Sequence{};
    case ExprKind::kVarRef: {
      Sequence v;
      if (LookupEnv(env, e.name, &v)) return v;
      auto git = globals_.find(e.name);
      if (git != globals_.end()) return git->second;
      if (ctx_->LookupVariable(e.name, &v)) return v;
      return Status::XQueryError("XPDY0002",
                                 "unbound variable $" + e.name.str());
    }
    case ExprKind::kSequence: {
      Sequence out;
      for (const ExprPtr& c : e.children) {
        XQC_ASSIGN_OR_RETURN(Sequence v, Eval(*c, env));
        Extend(&out, std::move(v));
      }
      return out;
    }
    case ExprKind::kIf: {
      XQC_ASSIGN_OR_RETURN(Sequence c, Eval(*e.children[0], env));
      XQC_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(c));
      return Eval(b ? *e.children[1] : *e.children[2], env);
    }
    case ExprKind::kFLWOR:
      return EvalFLWOR(e, env);
    case ExprKind::kQuantified:
      return EvalQuantified(e, env);
    case ExprKind::kTypeswitch:
      return EvalTypeswitch(e, env);
    case ExprKind::kInstanceOf: {
      XQC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0], env));
      return Sequence{AtomicValue::Boolean(e.stype.Matches(v, ctx_->schema()))};
    }
    case ExprKind::kCastAs:
    case ExprKind::kCastableAs: {
      XQC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0], env));
      XQC_ASSIGN_OR_RETURN(Sequence atoms, Atomize(v));
      bool castable_form = e.kind == ExprKind::kCastableAs;
      if (atoms.empty()) {
        bool ok_empty = e.stype.occ == Occurrence::kOptional;
        if (castable_form) return Sequence{AtomicValue::Boolean(ok_empty)};
        if (ok_empty) return Sequence{};
        return Status::XQueryError("XPTY0004", "cast of empty sequence");
      }
      if (atoms.size() > 1) {
        if (castable_form) return Sequence{AtomicValue::Boolean(false)};
        return Status::XQueryError("XPTY0004", "cast of multi-item sequence");
      }
      Result<AtomicValue> r = CastTo(atoms[0].atomic(), e.stype.test.atomic);
      if (castable_form) return Sequence{AtomicValue::Boolean(r.ok())};
      if (!r.ok()) return r.status();
      return Sequence{r.take()};
    }
    case ExprKind::kTreatAs: {
      XQC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0], env));
      if (!e.stype.Matches(v, ctx_->schema())) {
        // Same code as the algebra's TypeAssert so configurations agree.
        return Status::XQueryError(
            "XPTY0004", "treat as " + e.stype.ToString() + " failed");
      }
      return v;
    }
    case ExprKind::kAxisStep: {
      Sequence dot;
      if (!LookupEnv(env, Symbol("fs:dot"), &dot)) {
        return Status::XQueryError("XPDY0002", "axis step with no context item");
      }
      TreeJoinOpts tj;
      tj.guard = ctx_->guard();
      return TreeJoin(dot, e.axis, e.node_test, ctx_->schema(), tj);
    }
    case ExprKind::kFunctionCall:
      return EvalCall(e, env);
    case ExprKind::kCompElement:
    case ExprKind::kCompAttribute:
    case ExprKind::kCompText:
    case ExprKind::kCompComment:
    case ExprKind::kCompPI:
    case ExprKind::kCompDocument:
      return EvalConstructor(e, env);
    case ExprKind::kValidate: {
      XQC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.children[0], env));
      Sequence out;
      for (const Item& it : v) {
        if (!it.IsNode()) {
          return Status::XQueryError("XQTY0030", "validate of an atomic value");
        }
        if (ctx_->schema() == nullptr) {
          out.push_back(it);  // no in-scope schema: validation is identity
          continue;
        }
        XQC_ASSIGN_OR_RETURN(NodePtr n, ctx_->schema()->Validate(it.node()));
        out.push_back(std::move(n));
      }
      return out;
    }
    default:
      return Status::Internal("non-Core form " +
                              std::to_string(static_cast<int>(e.kind)) +
                              " reached the interpreter (missing "
                              "normalization?)");
  }
}

Result<Sequence> Interpreter::EvalFLWOR(const Expr& e, const EnvPtr& env) {
  std::vector<EnvPtr> tuples = {env};
  for (const Clause& c : e.clauses) {
    switch (c.kind) {
      case Clause::Kind::kFor: {
        std::vector<EnvPtr> next;
        for (const EnvPtr& t : tuples) {
          XQC_ASSIGN_OR_RETURN(Sequence seq, Eval(*c.expr, t));
          for (size_t i = 0; i < seq.size(); i++) {
            Sequence one{seq[i]};
            if (c.type) {
              XQC_RETURN_IF_ERROR(CheckSequenceType(
                  one, *c.type, ctx_->schema(), "for clause"));
            }
            XQC_RETURN_IF_ERROR(guard_->Check());
            XQC_RETURN_IF_ERROR(guard_->AccountTuples(1));
            EnvPtr t2 = BindEnv(t, c.var, std::move(one));
            if (!c.pos_var.empty()) {
              t2 = BindEnv(t2, c.pos_var,
                           Sequence{AtomicValue::Integer(
                               static_cast<int64_t>(i) + 1)});
            }
            next.push_back(std::move(t2));
          }
        }
        tuples = std::move(next);
        break;
      }
      case Clause::Kind::kLet: {
        for (EnvPtr& t : tuples) {
          XQC_ASSIGN_OR_RETURN(Sequence seq, Eval(*c.expr, t));
          if (c.type) {
            XQC_RETURN_IF_ERROR(CheckSequenceType(seq, *c.type, ctx_->schema(),
                                                  "let clause"));
          }
          t = BindEnv(t, c.var, std::move(seq));
        }
        break;
      }
      case Clause::Kind::kWhere: {
        std::vector<EnvPtr> next;
        for (const EnvPtr& t : tuples) {
          XQC_ASSIGN_OR_RETURN(Sequence v, Eval(*c.expr, t));
          XQC_ASSIGN_OR_RETURN(bool b, EffectiveBooleanValue(v));
          if (b) next.push_back(t);
        }
        tuples = std::move(next);
        break;
      }
      case Clause::Kind::kOrderBy: {
        // Evaluate all keys first, then stable-sort.
        struct Keyed {
          EnvPtr t;
          std::vector<Sequence> keys;
        };
        std::vector<Keyed> keyed;
        keyed.reserve(tuples.size());
        for (const EnvPtr& t : tuples) {
          Keyed k{t, {}};
          for (const Clause::OrderSpec& spec : c.specs) {
            XQC_ASSIGN_OR_RETURN(Sequence kv, Eval(*spec.key, t));
            XQC_ASSIGN_OR_RETURN(Sequence atoms, Atomize(kv));
            if (atoms.size() > 1) {
              return Status::XQueryError("XPTY0004",
                                         "order by key with more than one item");
            }
            k.keys.push_back(std::move(atoms));
          }
          keyed.push_back(std::move(k));
        }
        Status sort_error = Status::OK();
        std::stable_sort(
            keyed.begin(), keyed.end(),
            [&](const Keyed& a, const Keyed& b) {
              if (!sort_error.ok()) return false;
              for (size_t i = 0; i < c.specs.size(); i++) {
                Result<int> cmp = CompareOrderKeys(
                    a.keys[i], b.keys[i], c.specs[i].empty_greatest);
                if (!cmp.ok()) {
                  sort_error = cmp.status();
                  return false;
                }
                int v = cmp.value();
                if (c.specs[i].descending) v = -v;
                if (v != 0) return v < 0;
              }
              return false;
            });
        XQC_RETURN_IF_ERROR(sort_error);
        tuples.clear();
        for (Keyed& k : keyed) tuples.push_back(std::move(k.t));
        break;
      }
    }
  }
  Sequence out;
  for (const EnvPtr& t : tuples) {
    XQC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.ret, t));
    Extend(&out, std::move(v));
  }
  return out;
}

Result<Sequence> Interpreter::EvalQuantified(const Expr& e, const EnvPtr& env) {
  bool some = e.quant == QuantKind::kSome;
  // Recursive expansion over the binding clauses.
  std::function<Result<bool>(size_t, const EnvPtr&)> rec =
      [&](size_t i, const EnvPtr& t) -> Result<bool> {
    if (i == e.clauses.size()) {
      XQC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.ret, t));
      return EffectiveBooleanValue(v);
    }
    const Clause& c = e.clauses[i];
    XQC_ASSIGN_OR_RETURN(Sequence seq, Eval(*c.expr, t));
    for (const Item& item : seq) {
      Sequence one{item};
      if (c.type) {
        XQC_RETURN_IF_ERROR(CheckSequenceType(one, *c.type, ctx_->schema(),
                                              "quantifier binding"));
      }
      XQC_ASSIGN_OR_RETURN(bool hit, rec(i + 1, BindEnv(t, c.var, std::move(one))));
      if (hit == some) return some;  // short-circuit
    }
    return !some;
  };
  XQC_ASSIGN_OR_RETURN(bool r, rec(0, env));
  return Sequence{AtomicValue::Boolean(r)};
}

Result<Sequence> Interpreter::EvalTypeswitch(const Expr& e, const EnvPtr& env) {
  XQC_ASSIGN_OR_RETURN(Sequence input, Eval(*e.children[0], env));
  for (const TypeswitchCase& c : e.cases) {
    if (c.is_default || c.type.Matches(input, ctx_->schema())) {
      EnvPtr t = env;
      if (!c.var.empty()) t = BindEnv(t, c.var, input);
      return Eval(*c.body, t);
    }
  }
  return Status::XQueryError("XPST0003", "typeswitch without matching branch");
}

Result<Sequence> Interpreter::EvalCall(const Expr& e, const EnvPtr& env) {
  std::vector<Sequence> args;
  args.reserve(e.children.size());
  for (const ExprPtr& a : e.children) {
    XQC_ASSIGN_OR_RETURN(Sequence v, Eval(*a, env));
    args.push_back(std::move(v));
  }
  auto it = functions_.find(e.name);
  if (it != functions_.end()) {
    const FunctionDecl& f = *it->second;
    if (args.size() != f.params.size()) {
      return Status::XQueryError(
          "XPST0017", "wrong number of arguments for " + f.name.str());
    }
    if (++depth_ > kMaxRecursionDepth) {
      depth_--;
      return Status::ResourceExhausted(kGuardRecursionCode,
                                       "recursion depth exceeded");
    }
    EnvPtr fenv;  // function bodies see only their parameters + globals
    for (size_t i = 0; i < args.size(); i++) {
      if (f.params[i].second) {
        Status st = CheckSequenceType(args[i], *f.params[i].second,
                                      ctx_->schema(), "function argument");
        if (!st.ok()) {
          depth_--;
          return st;
        }
      }
      fenv = BindEnv(fenv, f.params[i].first, std::move(args[i]));
    }
    // Prolog globals stay visible inside function bodies via globals_.
    Result<Sequence> r = Eval(*f.body, fenv);
    depth_--;
    if (r.ok() && f.return_type) {
      XQC_RETURN_IF_ERROR(CheckSequenceType(r.value(), *f.return_type,
                                            ctx_->schema(), "function result"));
    }
    return r;
  }
  return CallBuiltin(e.name, args, ctx_);
}

Result<Symbol> Interpreter::EvalName(const Expr& e, const EnvPtr& env) {
  if (!e.name.empty()) return e.name;
  if (e.name_expr == nullptr) {
    return Status::XQueryError("XPTY0004", "constructor without a name");
  }
  XQC_ASSIGN_OR_RETURN(Sequence v, Eval(*e.name_expr, env));
  if (v.size() != 1) {
    return Status::XQueryError("XPTY0004", "constructor name is not a QName");
  }
  return Symbol(v[0].StringValue());
}

Result<Sequence> Interpreter::EvalConstructor(const Expr& e, const EnvPtr& env) {
  Sequence content;
  for (const ExprPtr& c : e.children) {
    XQC_ASSIGN_OR_RETURN(Sequence v, Eval(*c, env));
    Extend(&content, std::move(v));
  }
  switch (e.kind) {
    case ExprKind::kCompElement: {
      XQC_ASSIGN_OR_RETURN(Symbol name, EvalName(e, env));
      XQC_ASSIGN_OR_RETURN(NodePtr n, ConstructElement(name, content, guard_));
      return Sequence{std::move(n)};
    }
    case ExprKind::kCompAttribute: {
      XQC_ASSIGN_OR_RETURN(Symbol name, EvalName(e, env));
      XQC_ASSIGN_OR_RETURN(NodePtr n,
                           ConstructAttribute(name, content, guard_));
      return Sequence{std::move(n)};
    }
    case ExprKind::kCompText: {
      XQC_ASSIGN_OR_RETURN(NodePtr n, ConstructText(content, guard_));
      if (n == nullptr) return Sequence{};
      return Sequence{std::move(n)};
    }
    case ExprKind::kCompComment: {
      XQC_ASSIGN_OR_RETURN(NodePtr n, ConstructComment(content, guard_));
      return Sequence{std::move(n)};
    }
    case ExprKind::kCompPI: {
      XQC_ASSIGN_OR_RETURN(NodePtr n, ConstructPI(e.name, content, guard_));
      return Sequence{std::move(n)};
    }
    case ExprKind::kCompDocument: {
      XQC_ASSIGN_OR_RETURN(NodePtr n, ConstructDocument(content, guard_));
      return Sequence{std::move(n)};
    }
    default:
      return Status::Internal("not a constructor");
  }
}

}  // namespace xqc
