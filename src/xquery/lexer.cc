#include "src/xquery/lexer.h"

#include "src/base/strutil.h"

namespace xqc {
namespace {

bool IsNameStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         static_cast<unsigned char>(c) >= 0x80;
}
bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}
bool IsDigit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

int Lexer::LineOf(size_t offset) const {
  int line = 1;
  for (size_t i = 0; i < offset && i < s_.size(); i++) {
    if (s_[i] == '\n') line++;
  }
  return line;
}

Status Lexer::SkipSpaceAndComments() {
  while (pos_ < s_.size()) {
    char c = s_[pos_];
    if (IsXmlSpace(c)) {
      pos_++;
      continue;
    }
    if (c == '(' && pos_ + 1 < s_.size() && s_[pos_ + 1] == ':') {
      size_t start = pos_;
      int depth = 1;
      pos_ += 2;
      while (pos_ + 1 < s_.size() && depth > 0) {
        if (s_[pos_] == '(' && s_[pos_ + 1] == ':') {
          depth++;
          pos_ += 2;
        } else if (s_[pos_] == ':' && s_[pos_ + 1] == ')') {
          depth--;
          pos_ += 2;
        } else {
          pos_++;
        }
      }
      if (depth != 0) {
        return Status::ParseError("unterminated comment at line " +
                                  std::to_string(LineOf(start)));
      }
      continue;
    }
    break;
  }
  return Status::OK();
}

Result<Token> Lexer::Next() {
  XQC_RETURN_IF_ERROR(SkipSpaceAndComments());
  Token t;
  t.offset = pos_;
  if (pos_ >= s_.size()) {
    t.kind = TokKind::kEOF;
    return t;
  }
  char c = s_[pos_];

  // Names (QNames, keywords).
  if (IsNameStart(c)) {
    size_t start = pos_;
    while (pos_ < s_.size() && IsNameChar(s_[pos_])) pos_++;
    // QName: name ':' name, but not '::' (axis separator).
    if (pos_ + 1 < s_.size() && s_[pos_] == ':' && s_[pos_ + 1] != ':' &&
        IsNameStart(s_[pos_ + 1])) {
      pos_++;
      while (pos_ < s_.size() && IsNameChar(s_[pos_])) pos_++;
    }
    t.kind = TokKind::kName;
    t.text = std::string(s_.substr(start, pos_ - start));
    return t;
  }

  // Numbers.
  if (IsDigit(c) || (c == '.' && pos_ + 1 < s_.size() && IsDigit(s_[pos_ + 1]))) {
    size_t start = pos_;
    bool has_dot = false, has_exp = false;
    while (pos_ < s_.size()) {
      char d = s_[pos_];
      if (IsDigit(d)) {
        pos_++;
      } else if (d == '.' && !has_dot && !has_exp) {
        // A '.' not followed by a digit ends the number ("1." is invalid
        // but "$x/1 ." style input is tokenized leniently).
        if (pos_ + 1 >= s_.size() || !IsDigit(s_[pos_ + 1])) break;
        has_dot = true;
        pos_++;
      } else if ((d == 'e' || d == 'E') && !has_exp) {
        size_t save = pos_;
        pos_++;
        if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) pos_++;
        if (pos_ >= s_.size() || !IsDigit(s_[pos_])) {
          pos_ = save;
          break;
        }
        has_exp = true;
      } else {
        break;
      }
    }
    std::string text(s_.substr(start, pos_ - start));
    if (has_exp) {
      t.kind = TokKind::kDouble;
      double d;
      ParseDouble(text, &d);
      t.number = AtomicValue::Double(d);
    } else if (has_dot) {
      t.kind = TokKind::kDecimal;
      double d;
      ParseDouble(text, &d);
      t.number = AtomicValue::Decimal(d);
    } else {
      t.kind = TokKind::kInteger;
      int64_t i;
      if (!ParseInt(text, &i)) {
        return Status::ParseError("integer literal out of range: " + text);
      }
      t.number = AtomicValue::Integer(i);
    }
    return t;
  }

  // String literals.
  if (c == '"' || c == '\'') {
    char quote = c;
    pos_++;
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(LineOf(t.offset)));
      }
      char d = s_[pos_];
      if (d == quote) {
        if (pos_ + 1 < s_.size() && s_[pos_ + 1] == quote) {
          out.push_back(quote);  // doubled quote escape
          pos_ += 2;
          continue;
        }
        pos_++;
        break;
      }
      if (d == '&') {
        // Predefined entity references inside string literals.
        size_t semi = s_.find(';', pos_);
        if (semi == std::string_view::npos) {
          return Status::ParseError("unterminated entity in string literal");
        }
        std::string_view ent = s_.substr(pos_ + 1, semi - pos_ - 1);
        if (ent == "lt") out.push_back('<');
        else if (ent == "gt") out.push_back('>');
        else if (ent == "amp") out.push_back('&');
        else if (ent == "quot") out.push_back('"');
        else if (ent == "apos") out.push_back('\'');
        else return Status::ParseError("unknown entity '&" + std::string(ent) + ";'");
        pos_ = semi + 1;
        continue;
      }
      out.push_back(d);
      pos_++;
    }
    t.kind = TokKind::kString;
    t.text = std::move(out);
    return t;
  }

  auto two = [&](char c2) {
    return pos_ + 1 < s_.size() && s_[pos_ + 1] == c2;
  };
  switch (c) {
    case '(': t.kind = TokKind::kLParen; pos_++; return t;
    case ')': t.kind = TokKind::kRParen; pos_++; return t;
    case '[': t.kind = TokKind::kLBracket; pos_++; return t;
    case ']': t.kind = TokKind::kRBracket; pos_++; return t;
    case '{': t.kind = TokKind::kLBrace; pos_++; return t;
    case '}': t.kind = TokKind::kRBrace; pos_++; return t;
    case ',': t.kind = TokKind::kComma; pos_++; return t;
    case ';': t.kind = TokKind::kSemicolon; pos_++; return t;
    case '$': t.kind = TokKind::kDollar; pos_++; return t;
    case '@': t.kind = TokKind::kAt; pos_++; return t;
    case '|': t.kind = TokKind::kBar; pos_++; return t;
    case '?': t.kind = TokKind::kQuestion; pos_++; return t;
    case '*': t.kind = TokKind::kStar; pos_++; return t;
    case '+': t.kind = TokKind::kPlus; pos_++; return t;
    case '-': t.kind = TokKind::kMinus; pos_++; return t;
    case '=': t.kind = TokKind::kEq; pos_++; return t;
    case '/':
      if (two('/')) { t.kind = TokKind::kSlashSlash; pos_ += 2; }
      else { t.kind = TokKind::kSlash; pos_++; }
      return t;
    case '.':
      if (two('.')) { t.kind = TokKind::kDotDot; pos_ += 2; }
      else { t.kind = TokKind::kDot; pos_++; }
      return t;
    case ':':
      if (two(':')) { t.kind = TokKind::kColonColon; pos_ += 2; return t; }
      if (two('=')) { t.kind = TokKind::kAssign; pos_ += 2; return t; }
      break;
    case '!':
      if (two('=')) { t.kind = TokKind::kNe; pos_ += 2; return t; }
      break;
    case '<':
      if (two('<')) { t.kind = TokKind::kLtLt; pos_ += 2; }
      else if (two('=')) { t.kind = TokKind::kLe; pos_ += 2; }
      else { t.kind = TokKind::kLt; pos_++; }
      return t;
    case '>':
      if (two('>')) { t.kind = TokKind::kGtGt; pos_ += 2; }
      else if (two('=')) { t.kind = TokKind::kGe; pos_ += 2; }
      else { t.kind = TokKind::kGt; pos_++; }
      return t;
    default:
      break;
  }
  return Status::ParseError("unexpected character '" + std::string(1, c) +
                            "' at line " + std::to_string(LineOf(pos_)));
}

}  // namespace xqc
