// The XQuery abstract syntax tree.
//
// The same node type serves the surface syntax (parser output) and the
// XQuery Core (normalizer output): the Core is the subset of these forms
// listed in `IsCoreForm`, and normalization (normalize.h) rewrites every
// surface form into it. Per the paper (Section 4), our normalization keeps
// FLWOR expressions structured (single multi-clause blocks) instead of
// breaking them into nested single-clause expressions.
#ifndef XQC_XQUERY_AST_H_
#define XQC_XQUERY_AST_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/base/symbol.h"
#include "src/types/compare.h"
#include "src/types/seqtype.h"
#include "src/xml/atomic.h"
#include "src/xml/axes.h"

namespace xqc {

enum class ExprKind : uint8_t {
  kLiteral,      // atomic constant
  kEmptySeq,     // ()
  kVarRef,       // $x
  kContextItem,  // .
  kSequence,     // e1, e2, ... (n-ary)
  kRange,        // e1 to e2
  kArith,        // + - * div idiv mod
  kUnaryMinus,   // -e
  kValueComp,    // eq ne lt le gt ge
  kGeneralComp,  // = != < <= > >=
  kNodeComp,     // is << >>
  kAnd,          // e1 and e2
  kOr,           // e1 or e2
  kIf,           // if (c) then t else e     [children: c, t, e]
  kFLWOR,        // clauses + return          [return in `ret`]
  kQuantified,   // some/every $v in e satisfies p
  kTypeswitch,   // typeswitch (e) case ... default ...
  kInstanceOf,   // e instance of ST
  kCastAs,       // e cast as T
  kCastableAs,   // e castable as T
  kTreatAs,      // e treat as ST
  kPath,         // e1 / e2                  [children: e1, e2]
  kAxisStep,     // axis::test, applied to the context item
  kFilter,       // e[p]                     [children: e, p]
  kFunctionCall, // f(a1, ..., an)
  kCompElement,  // element {name} { content }  (direct ctors parse to this)
  kCompAttribute,
  kCompText,
  kCompComment,
  kCompPI,
  kCompDocument,
  kValidate,     // validate { e }
  kUnion,        // e1 union e2 / e1 | e2
  kIntersect,
  kExcept,
};

enum class ArithOp : uint8_t { kAdd, kSub, kMul, kDiv, kIDiv, kMod };
const char* ArithOpName(ArithOp op);  // "plus", "minus", ...

enum class NodeCompOp : uint8_t { kIs, kBefore, kAfter };

enum class QuantKind : uint8_t { kSome, kEvery };

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// One FLWOR clause. Quantified expressions reuse kFor bindings.
struct Clause {
  enum class Kind { kFor, kLet, kWhere, kOrderBy } kind;

  // kFor / kLet
  Symbol var;
  Symbol pos_var;  // `at $i` (kFor only; empty if absent)
  std::optional<SequenceType> type;  // `as T`
  ExprPtr expr;  // binding expr / where predicate

  // kOrderBy
  struct OrderSpec {
    ExprPtr key;
    bool descending = false;
    bool empty_greatest = false;
  };
  std::vector<OrderSpec> specs;
  bool stable = false;
};

struct TypeswitchCase {
  Symbol var;  // may be empty in surface syntax; normalization unifies
  SequenceType type;
  ExprPtr body;
  bool is_default = false;  // default clause (type ignored)
};

/// An expression node. Which fields are meaningful depends on `kind`;
/// factory helpers below construct well-formed nodes.
struct Expr {
  ExprKind kind;

  AtomicValue literal;               // kLiteral
  Symbol name;                       // var / function / element / attr / PI
  ExprPtr name_expr;                 // computed constructor name expression
  ArithOp arith_op = ArithOp::kAdd;  // kArith
  CompOp comp_op = CompOp::kEq;      // kValueComp, kGeneralComp
  NodeCompOp node_comp_op = NodeCompOp::kIs;  // kNodeComp
  QuantKind quant = QuantKind::kSome;         // kQuantified
  Axis axis = Axis::kChild;          // kAxisStep
  ItemTest node_test;                // kAxisStep
  SequenceType stype;                // type operators
  std::vector<ExprPtr> children;     // operands / args / content
  std::vector<Clause> clauses;       // kFLWOR, kQuantified bindings
  ExprPtr ret;                       // kFLWOR return / kQuantified satisfies
  std::vector<TypeswitchCase> cases; // kTypeswitch (children[0] = input)
};

ExprPtr MakeExpr(ExprKind kind);
ExprPtr MakeLiteral(AtomicValue v);
ExprPtr MakeVarRef(Symbol name);
ExprPtr MakeCall(Symbol fn, std::vector<ExprPtr> args);
ExprPtr MakeCall1(const char* fn, ExprPtr a);
ExprPtr MakeCall2(const char* fn, ExprPtr a, ExprPtr b);

/// A user-defined function declaration from the prolog.
struct FunctionDecl {
  Symbol name;
  std::vector<std::pair<Symbol, std::optional<SequenceType>>> params;
  std::optional<SequenceType> return_type;
  ExprPtr body;
};

/// A `declare variable $x := e;` prolog declaration (`external` if !expr).
struct VarDecl {
  Symbol name;
  std::optional<SequenceType> type;
  ExprPtr expr;  // null for external variables
};

/// A parsed query module: prolog + body.
struct Query {
  std::vector<FunctionDecl> functions;
  std::vector<VarDecl> variables;
  ExprPtr body;
};

/// Pretty-prints an expression (diagnostic form, not re-parseable XQuery).
std::string ExprToString(const Expr& e);

/// Collects the free variables of an expression (references not bound by a
/// FLWOR/quantifier/typeswitch binder inside it). Used by the compiler to
/// detect independent nested blocks.
void CollectFreeVars(const Expr& e, std::set<Symbol>* out);

}  // namespace xqc

#endif  // XQC_XQUERY_AST_H_
