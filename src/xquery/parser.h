// Recursive-descent XQuery 1.0 parser.
//
// Covers the language surface the paper's compiler handles: prologs with
// (recursive) function and variable declarations, FLWOR with for/at/let/
// where/(stable) order by, quantified expressions, typeswitch, if, the full
// operator grammar (or/and, general/value/node comparisons, range,
// additive/multiplicative, union/intersect/except, instance of / treat as /
// castable as / cast as, unary), path expressions with all supported axes,
// abbreviated steps (@, //, .., .), predicates, direct and computed
// constructors with enclosed expressions, and validate expressions.
#ifndef XQC_XQUERY_PARSER_H_
#define XQC_XQUERY_PARSER_H_

#include <string_view>

#include "src/base/guard.h"
#include "src/base/status.h"
#include "src/xquery/ast.h"

namespace xqc {

/// Parses a full query module (prolog + body). The optional guard (non-
/// owning) is checked once per token, so adversarially large query text
/// honors a caller's deadline/cancellation during parsing.
Result<Query> ParseXQuery(std::string_view text, QueryGuard* guard = nullptr);

/// Parses a standalone expression (no prolog) — convenience for tests.
Result<ExprPtr> ParseXQueryExpr(std::string_view text);

/// Parses a sequence type, e.g. "element(*,Auction)*" — used by tests and
/// by plan construction helpers.
Result<SequenceType> ParseSequenceTypeString(std::string_view text);

}  // namespace xqc

#endif  // XQC_XQUERY_PARSER_H_
