// Normalization into the XQuery Core (Section 4 of the paper).
//
// Follows the W3C Formal Semantics normalization with the paper's fixes:
//  - FLWOR expressions keep their multi-clause structure (they are NOT
//    broken into nested single-clause for/let expressions), which enables
//    direct compilation into tuple operators and a proper treatment of
//    order by;
//  - each path step with predicates becomes one complete FLWOR block with
//    an `at $fs:position` clause and a where clause (instead of a mix of
//    for and if), exactly as in the paper's
//    `$d/descendant::person[position()=1]` example;
//  - typeswitch is normalized so every branch uses one common variable.
//
// After normalization the expression tree only contains Core forms:
// literals, (), variables, n-ary sequences, structured FLWOR, quantified,
// unified typeswitch, if with EBV condition, computed constructors, bare
// axis steps (context in $fs:dot), validate, the four type expressions, and
// function calls (every operator has become an op:* / fs:* call, e.g.
// op:general-eq carries the paper's existential comparison semantics).
#ifndef XQC_XQUERY_NORMALIZE_H_
#define XQC_XQUERY_NORMALIZE_H_

#include "src/base/status.h"
#include "src/xquery/ast.h"

namespace xqc {

/// The context-item variable the normalizer introduces ("fs:dot").
Symbol FsDotVar();
/// The context-position variable ("fs:position").
Symbol FsPositionVar();

/// Normalizes an expression into the Core.
Result<ExprPtr> NormalizeExpr(const ExprPtr& e);

/// Normalizes a whole query module (body, function bodies, variable
/// initializers). Unprefixed function calls that do not match a declared
/// function are resolved into the fn: namespace.
Result<Query> NormalizeQuery(const Query& q);

/// Substitutes free occurrences of variable `from` by `to`, respecting
/// shadowing. Used by normalization and by tests.
ExprPtr SubstituteVar(const ExprPtr& e, Symbol from, Symbol to);

/// Hoists leading `let` clauses of the query body into prolog variable
/// declarations. A leading let can only reference prolog globals, so this
/// is always sound; it makes `let $doc := doc(...)` document roots
/// independent of the tuple stream, which in turn lets the optimizer's
/// (insert product) / (insert join) rules fire on paths rooted at them.
void HoistLeadingLets(Query* q);

/// Hoists correlated nested FLWOR blocks that appear inside a FLWOR's
/// return clause (within constructor content, sequences, or function-call
/// arguments) into fresh trailing `let` clauses of the enclosing FLWOR.
///
/// Real queries (the paper's Clio workloads, Figure 1) put nested blocks
/// directly inside element constructors; the (insert group-by) rewriting
/// only sees unary tuple constructors, i.e. let clauses. This pass makes
/// unnesting robust to that interleaving (Section 5's motivation). Only
/// blocks with a correlated where clause are hoisted — those are the join
/// candidates; hoisting anything else would add GroupBy machinery with no
/// join to gain.
void HoistNestedReturnBlocks(Query* q);

}  // namespace xqc

#endif  // XQC_XQUERY_NORMALIZE_H_
