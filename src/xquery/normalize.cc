#include "src/xquery/normalize.h"

#include <unordered_set>

namespace xqc {
namespace {

ExprPtr CloneShallow(const Expr& e) { return std::make_shared<Expr>(e); }

// Does the expression bind `var`, shadowing outer occurrences, in scope
// `scope_child`? We conservatively treat any binder of the same name as a
// full shadow (correct for our generated fs:* variables and user code).
bool BindsVar(const Expr& e, Symbol var) {
  switch (e.kind) {
    case ExprKind::kFLWOR:
    case ExprKind::kQuantified:
      for (const Clause& c : e.clauses) {
        if ((c.kind == Clause::Kind::kFor || c.kind == Clause::Kind::kLet) &&
            (c.var == var || c.pos_var == var)) {
          return true;
        }
      }
      return false;
    case ExprKind::kTypeswitch:
      for (const TypeswitchCase& c : e.cases) {
        if (c.var == var) return true;
      }
      return false;
    default:
      return false;
  }
}

}  // namespace

Symbol FsDotVar() { return Symbol("fs:dot"); }
Symbol FsPositionVar() { return Symbol("fs:position"); }

ExprPtr SubstituteVar(const ExprPtr& e, Symbol from, Symbol to) {
  if (e == nullptr) return nullptr;
  if (e->kind == ExprKind::kVarRef) {
    if (e->name == from) return MakeVarRef(to);
    return e;
  }
  if (BindsVar(*e, from)) {
    // The binding may shadow only part-way through clause lists (clauses
    // after the binder see the new variable). Handle FLWOR/quantified
    // clause-by-clause; typeswitch per-case.
    if (e->kind == ExprKind::kFLWOR || e->kind == ExprKind::kQuantified) {
      ExprPtr out = CloneShallow(*e);
      bool shadowed = false;
      for (Clause& c : out->clauses) {
        if (c.expr != nullptr && !shadowed) c.expr = SubstituteVar(c.expr, from, to);
        for (auto& spec : c.specs) {
          if (!shadowed) spec.key = SubstituteVar(spec.key, from, to);
        }
        if ((c.kind == Clause::Kind::kFor || c.kind == Clause::Kind::kLet) &&
            (c.var == from || c.pos_var == from)) {
          shadowed = true;
        }
      }
      if (!shadowed && out->ret != nullptr) {
        out->ret = SubstituteVar(out->ret, from, to);
      }
      return out;
    }
    if (e->kind == ExprKind::kTypeswitch) {
      ExprPtr out = CloneShallow(*e);
      out->children[0] = SubstituteVar(out->children[0], from, to);
      for (TypeswitchCase& c : out->cases) {
        if (c.var != from) c.body = SubstituteVar(c.body, from, to);
      }
      return out;
    }
  }
  ExprPtr out = CloneShallow(*e);
  for (ExprPtr& c : out->children) c = SubstituteVar(c, from, to);
  if (out->ret != nullptr) out->ret = SubstituteVar(out->ret, from, to);
  if (out->name_expr != nullptr) {
    out->name_expr = SubstituteVar(out->name_expr, from, to);
  }
  for (Clause& c : out->clauses) {
    if (c.expr != nullptr) c.expr = SubstituteVar(c.expr, from, to);
    for (auto& spec : c.specs) spec.key = SubstituteVar(spec.key, from, to);
  }
  for (TypeswitchCase& c : out->cases) {
    c.body = SubstituteVar(c.body, from, to);
  }
  return out;
}

namespace {

class Normalizer {
 public:
  explicit Normalizer(std::unordered_set<Symbol> declared_functions)
      : declared_(std::move(declared_functions)) {}

  Result<ExprPtr> Normalize(const ExprPtr& e) {
    switch (e->kind) {
      case ExprKind::kLiteral:
      case ExprKind::kEmptySeq:
      case ExprKind::kVarRef:
        return e;
      case ExprKind::kContextItem:
        return MakeVarRef(FsDotVar());
      case ExprKind::kSequence: {
        ExprPtr out = MakeExpr(ExprKind::kSequence);
        for (const ExprPtr& c : e->children) {
          XQC_ASSIGN_OR_RETURN(ExprPtr n, Normalize(c));
          out->children.push_back(std::move(n));
        }
        return out;
      }
      case ExprKind::kRange:
        return NormalizeCall("op:to", e->children);
      case ExprKind::kArith:
        return NormalizeCall(std::string("op:") + ArithOpName(e->arith_op),
                             e->children);
      case ExprKind::kUnaryMinus:
        return NormalizeCall("op:unary-minus", e->children);
      case ExprKind::kValueComp:
        return NormalizeCall(std::string("op:") + CompOpName(e->comp_op),
                             e->children);
      case ExprKind::kGeneralComp:
        // The paper's existentially quantified, convert-operand based
        // general comparison (Sections 2 & 6) is carried by one Core call
        // the join recognizer and the hash join both understand.
        return NormalizeCall(
            std::string("op:general-") + CompOpName(e->comp_op), e->children);
      case ExprKind::kNodeComp: {
        const char* f = e->node_comp_op == NodeCompOp::kIs ? "op:is-same-node"
                        : e->node_comp_op == NodeCompOp::kBefore
                            ? "op:node-before"
                            : "op:node-after";
        return NormalizeCall(f, e->children);
      }
      case ExprKind::kAnd:
      case ExprKind::kOr: {
        // and/or evaluate the EBV of both operands; op:and / op:or keep the
        // conjunction visible to the optimizer's predicate splitting.
        XQC_ASSIGN_OR_RETURN(ExprPtr a, Normalize(e->children[0]));
        XQC_ASSIGN_OR_RETURN(ExprPtr b, Normalize(e->children[1]));
        return MakeCall2(e->kind == ExprKind::kAnd ? "op:and" : "op:or",
                         MakeCall1("fn:boolean", std::move(a)),
                         MakeCall1("fn:boolean", std::move(b)));
      }
      case ExprKind::kIf: {
        XQC_ASSIGN_OR_RETURN(ExprPtr c, Normalize(e->children[0]));
        XQC_ASSIGN_OR_RETURN(ExprPtr t, Normalize(e->children[1]));
        XQC_ASSIGN_OR_RETURN(ExprPtr f, Normalize(e->children[2]));
        ExprPtr out = MakeExpr(ExprKind::kIf);
        out->children = {MakeCall1("fn:boolean", std::move(c)), std::move(t),
                         std::move(f)};
        return out;
      }
      case ExprKind::kFLWOR:
        return NormalizeFLWOR(*e);
      case ExprKind::kQuantified: {
        ExprPtr out = MakeExpr(ExprKind::kQuantified);
        out->quant = e->quant;
        for (const Clause& c : e->clauses) {
          Clause nc = c;
          XQC_ASSIGN_OR_RETURN(nc.expr, Normalize(c.expr));
          out->clauses.push_back(std::move(nc));
        }
        XQC_ASSIGN_OR_RETURN(ExprPtr sat, Normalize(e->ret));
        out->ret = MakeCall1("fn:boolean", std::move(sat));
        return out;
      }
      case ExprKind::kTypeswitch:
        return NormalizeTypeswitch(*e);
      case ExprKind::kInstanceOf:
      case ExprKind::kCastAs:
      case ExprKind::kCastableAs:
      case ExprKind::kTreatAs: {
        ExprPtr out = CloneShallow(*e);
        XQC_ASSIGN_OR_RETURN(out->children[0], Normalize(e->children[0]));
        return out;
      }
      case ExprKind::kPath: {
        // Position-independent (boolean) predicates on a path's final axis
        // step are applied set-at-a-time AFTER the step's document-order
        // result instead of per context node: for such predicates both are
        // equivalent, and the set-level form is exactly what lets the
        // (insert group-by)/(insert join) rewritings de-correlate path
        // joins (the paper's Q1 path variant, Section 4).
        const ExprPtr& rhs_raw = e->children[1];
        if (rhs_raw->kind == ExprKind::kAxisStep &&
            !rhs_raw->children.empty()) {
          std::vector<ExprPtr> boolean_preds;
          bool all_boolean = true;
          for (const ExprPtr& pred : rhs_raw->children) {
            if (MentionsCall(*pred, Symbol("fn:position")) ||
                MentionsCall(*pred, Symbol("position")) ||
                MentionsCall(*pred, Symbol("fn:last")) ||
                MentionsCall(*pred, Symbol("last"))) {
              all_boolean = false;
              break;
            }
            XQC_ASSIGN_OR_RETURN(ExprPtr np, Normalize(pred));
            if (ClassifyPredicate(*np) != PredClass::kBoolean) {
              all_boolean = false;
              break;
            }
            boolean_preds.push_back(std::move(np));
          }
          if (all_boolean && !boolean_preds.empty()) {
            ExprPtr bare = CloneShallow(*rhs_raw);
            bare->children.clear();
            ExprPtr inner_path = MakeExpr(ExprKind::kPath);
            inner_path->children = {e->children[0], std::move(bare)};
            XQC_ASSIGN_OR_RETURN(ExprPtr base, Normalize(inner_path));
            ExprPtr flwor = MakeExpr(ExprKind::kFLWOR);
            Clause f;
            f.kind = Clause::Kind::kFor;
            f.var = FsDotVar();
            f.expr = std::move(base);
            flwor->clauses.push_back(std::move(f));
            for (ExprPtr& p : boolean_preds) {
              Clause w;
              w.kind = Clause::Kind::kWhere;
              w.expr = std::move(p);
              flwor->clauses.push_back(std::move(w));
            }
            flwor->ret = MakeVarRef(FsDotVar());
            // The base is already in distinct document order; filtering
            // preserves it, so no further fs:distinct-docorder is needed.
            return flwor;
          }
        }
        // General case: for $fs:dot in E1 return E2, in document order.
        XQC_ASSIGN_OR_RETURN(ExprPtr base, Normalize(e->children[0]));
        XQC_ASSIGN_OR_RETURN(ExprPtr rest, Normalize(e->children[1]));
        ExprPtr flwor = MakeExpr(ExprKind::kFLWOR);
        Clause c;
        c.kind = Clause::Kind::kFor;
        c.var = FsDotVar();
        c.expr = std::move(base);
        flwor->clauses.push_back(std::move(c));
        flwor->ret = std::move(rest);
        return MakeCall1("fs:distinct-docorder", std::move(flwor));
      }
      case ExprKind::kAxisStep:
        return NormalizeStep(*e);
      case ExprKind::kFilter: {
        XQC_ASSIGN_OR_RETURN(ExprPtr base, Normalize(e->children[0]));
        return NormalizePredicate(std::move(base), e->children[1],
                                  /*doc_order_result=*/false);
      }
      case ExprKind::kFunctionCall: {
        // xs:TYPE(v) constructor functions are casts.
        if (e->children.size() == 1 && declared_.count(e->name) == 0) {
          const std::string& n = e->name.str();
          AtomicType at;
          if ((n.rfind("xs:", 0) == 0 || n.rfind("xdt:", 0) == 0) &&
              AtomicTypeFromName(n, &at)) {
            XQC_ASSIGN_OR_RETURN(ExprPtr arg, Normalize(e->children[0]));
            ExprPtr cast = MakeExpr(ExprKind::kCastAs);
            cast->stype = SequenceType::Optional(ItemTest::Atomic(at));
            cast->children = {std::move(arg)};
            return cast;
          }
        }
        // Zero-arity context-item builtins take $fs:dot implicitly.
        if (e->children.empty() && declared_.count(e->name) == 0) {
          static const char* const kContextFns[] = {
              "string", "fn:string", "number",     "fn:number",
              "data",   "fn:data",   "name",       "fn:name",
              "local-name", "fn:local-name"};
          for (const char* f : kContextFns) {
            if (e->name.str() == f) {
              ExprPtr with_dot = MakeExpr(ExprKind::kFunctionCall);
              with_dot->name = e->name;
              with_dot->children = {MakeVarRef(FsDotVar())};
              return Normalize(with_dot);
            }
          }
        }
        Symbol name = ResolveFunction(e->name);
        ExprPtr out = MakeExpr(ExprKind::kFunctionCall);
        out->name = name;
        for (const ExprPtr& a : e->children) {
          XQC_ASSIGN_OR_RETURN(ExprPtr n, Normalize(a));
          out->children.push_back(std::move(n));
        }
        // fn:position() / fn:last() must have been replaced by predicate
        // normalization; a survivor means they were used outside a
        // predicate, which we do not support.
        if (name == Symbol("fn:position") || name == Symbol("fn:last")) {
          return Status::XQueryError(
              "XPDY0002",
              "fn:position()/fn:last() outside a predicate is not supported");
        }
        return out;
      }
      case ExprKind::kCompElement:
      case ExprKind::kCompAttribute:
      case ExprKind::kCompText:
      case ExprKind::kCompComment:
      case ExprKind::kCompPI:
      case ExprKind::kCompDocument:
      case ExprKind::kValidate: {
        ExprPtr out = CloneShallow(*e);
        for (ExprPtr& c : out->children) {
          XQC_ASSIGN_OR_RETURN(c, Normalize(c));
        }
        if (out->name_expr != nullptr) {
          XQC_ASSIGN_OR_RETURN(out->name_expr, Normalize(out->name_expr));
        }
        return out;
      }
      case ExprKind::kUnion:
        return NormalizeCall("op:union", e->children);
      case ExprKind::kIntersect:
        return NormalizeCall("op:intersect", e->children);
      case ExprKind::kExcept:
        return NormalizeCall("op:except", e->children);
    }
    return Status::Internal("unhandled expression kind in normalizer");
  }

 private:
  Result<ExprPtr> NormalizeCall(const std::string& fn,
                                const std::vector<ExprPtr>& args) {
    std::vector<ExprPtr> nargs;
    nargs.reserve(args.size());
    for (const ExprPtr& a : args) {
      XQC_ASSIGN_OR_RETURN(ExprPtr n, Normalize(a));
      nargs.push_back(std::move(n));
    }
    return MakeCall(Symbol(fn), std::move(nargs));
  }

  Symbol ResolveFunction(Symbol name) const {
    if (declared_.count(name) > 0) return name;
    const std::string& s = name.str();
    if (s.find(':') == std::string::npos) return Symbol("fn:" + s);
    return name;
  }

  Result<ExprPtr> NormalizeFLWOR(const Expr& e) {
    ExprPtr out = MakeExpr(ExprKind::kFLWOR);
    for (const Clause& c : e.clauses) {
      Clause nc;
      nc.kind = c.kind;
      nc.var = c.var;
      nc.pos_var = c.pos_var;
      nc.type = c.type;
      nc.stable = c.stable;
      if (c.expr != nullptr) {
        XQC_ASSIGN_OR_RETURN(nc.expr, Normalize(c.expr));
        // Keep statically boolean predicates bare: wrapping a general
        // comparison in fn:boolean would hide the join predicate from the
        // optimizer's (insert join) recognizer.
        if (c.kind == Clause::Kind::kWhere &&
            ClassifyPredicate(*nc.expr) != PredClass::kBoolean) {
          nc.expr = MakeCall1("fn:boolean", std::move(nc.expr));
        }
      }
      for (const Clause::OrderSpec& spec : c.specs) {
        Clause::OrderSpec ns = spec;
        XQC_ASSIGN_OR_RETURN(ns.key, Normalize(spec.key));
        nc.specs.push_back(std::move(ns));
      }
      out->clauses.push_back(std::move(nc));
    }
    XQC_ASSIGN_OR_RETURN(out->ret, Normalize(e.ret));
    return out;
  }

  Result<ExprPtr> NormalizeTypeswitch(const Expr& e) {
    // Unify all branch variables into one fresh variable (the paper's
    // `typeswitch x := (Expr)` Core form, Figure 3).
    Symbol common(std::string("fs:ts") + std::to_string(ts_counter_++));
    ExprPtr out = MakeExpr(ExprKind::kTypeswitch);
    out->name = common;
    XQC_ASSIGN_OR_RETURN(ExprPtr input, Normalize(e.children[0]));
    out->children.push_back(std::move(input));
    for (const TypeswitchCase& c : e.cases) {
      TypeswitchCase nc;
      nc.is_default = c.is_default;
      nc.type = c.type;
      nc.var = common;
      ExprPtr body = c.body;
      if (!c.var.empty() && c.var != common) {
        body = SubstituteVar(body, c.var, common);
      }
      XQC_ASSIGN_OR_RETURN(nc.body, Normalize(body));
      out->cases.push_back(std::move(nc));
    }
    return out;
  }

  /// Normalizes a bare axis step with optional predicates. The step reads
  /// the context item ($fs:dot); each predicate wraps the result in a
  /// complete FLWOR block (the paper's Section 4 path normalization).
  Result<ExprPtr> NormalizeStep(const Expr& e) {
    ExprPtr step = MakeExpr(ExprKind::kAxisStep);
    step->axis = e.axis;
    step->node_test = e.node_test;
    ExprPtr cur = std::move(step);
    for (const ExprPtr& pred : e.children) {
      XQC_ASSIGN_OR_RETURN(
          cur, NormalizePredicate(std::move(cur), pred,
                                  /*doc_order_result=*/true));
    }
    return cur;
  }

  static bool MentionsCall(const Expr& e, Symbol fn) {
    if (e.kind == ExprKind::kFunctionCall && e.name == fn) return true;
    for (const ExprPtr& c : e.children) {
      if (c != nullptr && MentionsCall(*c, fn)) return true;
    }
    if (e.ret != nullptr && MentionsCall(*e.ret, fn)) return true;
    for (const Clause& c : e.clauses) {
      if (c.expr != nullptr && MentionsCall(*c.expr, fn)) return true;
      for (const auto& spec : c.specs) {
        if (MentionsCall(*spec.key, fn)) return true;
      }
    }
    for (const TypeswitchCase& c : e.cases) {
      if (MentionsCall(*c.body, fn)) return true;
    }
    return false;
  }

  static ExprPtr ReplaceCall0(const ExprPtr& e, Symbol fn, Symbol var) {
    if (e == nullptr) return nullptr;
    if (e->kind == ExprKind::kFunctionCall && e->name == fn &&
        e->children.empty()) {
      return MakeVarRef(var);
    }
    ExprPtr out = CloneShallow(*e);
    for (ExprPtr& c : out->children) c = ReplaceCall0(c, fn, var);
    if (out->ret != nullptr) out->ret = ReplaceCall0(out->ret, fn, var);
    for (Clause& c : out->clauses) {
      if (c.expr != nullptr) c.expr = ReplaceCall0(c.expr, fn, var);
      for (auto& spec : c.specs) spec.key = ReplaceCall0(spec.key, fn, var);
    }
    for (TypeswitchCase& c : out->cases) {
      c.body = ReplaceCall0(c.body, fn, var);
    }
    return out;
  }

  /// Static classification of a (normalized) predicate expression.
  enum class PredClass { kBoolean, kNumeric, kDynamic };

  static PredClass ClassifyPredicate(const Expr& e) {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal.is_numeric() ? PredClass::kNumeric
                                      : PredClass::kBoolean;
      case ExprKind::kVarRef:
        // $fs:last / $fs:position are numeric by construction.
        if (e.name == FsPositionVar() || e.name == Symbol("fs:last")) {
          return PredClass::kNumeric;
        }
        return PredClass::kDynamic;
      case ExprKind::kQuantified:
      case ExprKind::kInstanceOf:
      case ExprKind::kCastableAs:
        return PredClass::kBoolean;
      case ExprKind::kFunctionCall: {
        const std::string& n = e.name.str();
        static const char* const kBooleanFns[] = {
            "fn:boolean", "fn:not",        "fn:true",        "fn:false",
            "fn:empty",   "fn:exists",     "fn:contains",    "fn:starts-with",
            "fn:ends-with", "fn:deep-equal", "op:and",       "op:or",
            "op:is-same-node", "op:node-before", "op:node-after"};
        for (const char* b : kBooleanFns) {
          if (n == b) return PredClass::kBoolean;
        }
        if (n.rfind("op:general-", 0) == 0) return PredClass::kBoolean;
        static const char* const kValueComps[] = {"op:eq", "op:ne", "op:lt",
                                                  "op:le", "op:gt", "op:ge"};
        for (const char* b : kValueComps) {
          if (n == b) return PredClass::kBoolean;
        }
        static const char* const kNumericFns[] = {
            "op:plus", "op:minus", "op:times",       "op:div",
            "op:idiv", "op:mod",   "op:unary-minus", "fn:count"};
        for (const char* b : kNumericFns) {
          if (n == b) return PredClass::kNumeric;
        }
        return PredClass::kDynamic;
      }
      default:
        return PredClass::kDynamic;
    }
  }

  /// Builds the Core FLWOR block for one predicate over `base`:
  ///   for $fs:dot at $fs:position in base where P' return $fs:dot
  /// Positional predicates (numeric literals) become $fs:position = N; all
  /// other predicates take their effective boolean value. fn:position() and
  /// fn:last() inside the predicate are resolved here. If the result can
  /// contain duplicate/unordered nodes it is the caller's concern
  /// (`doc_order_result` documents intent; step results are already ordered).
  Result<ExprPtr> NormalizePredicate(ExprPtr base, const ExprPtr& raw_pred,
                                     bool doc_order_result) {
    (void)doc_order_result;
    Symbol dot = FsDotVar();
    Symbol pos = FsPositionVar();

    bool uses_last =
        MentionsCall(*raw_pred, Symbol("fn:last")) ||
        MentionsCall(*raw_pred, Symbol("last"));
    ExprPtr pred = ReplaceCall0(raw_pred, Symbol("fn:position"), pos);
    pred = ReplaceCall0(pred, Symbol("position"), pos);
    Symbol last_var("fs:last");
    if (uses_last) {
      pred = ReplaceCall0(pred, Symbol("fn:last"), last_var);
      pred = ReplaceCall0(pred, Symbol("last"), last_var);
    }
    XQC_ASSIGN_OR_RETURN(ExprPtr npred, Normalize(pred));

    ExprPtr flwor = MakeExpr(ExprKind::kFLWOR);
    Symbol seq_var("fs:sequence");
    if (uses_last) {
      // let $fs:sequence := base
      // let $fs:last := fn:count($fs:sequence) ...
      Clause let_seq;
      let_seq.kind = Clause::Kind::kLet;
      let_seq.var = seq_var;
      let_seq.expr = std::move(base);
      flwor->clauses.push_back(std::move(let_seq));
      Clause let_last;
      let_last.kind = Clause::Kind::kLet;
      let_last.var = last_var;
      let_last.expr = MakeCall1("fn:count", MakeVarRef(seq_var));
      flwor->clauses.push_back(std::move(let_last));
      base = MakeVarRef(seq_var);
    }
    Clause f;
    f.kind = Clause::Kind::kFor;
    f.var = dot;
    f.pos_var = pos;
    f.expr = std::move(base);
    flwor->clauses.push_back(std::move(f));

    Clause w;
    w.kind = Clause::Kind::kWhere;
    switch (ClassifyPredicate(*npred)) {
      case PredClass::kNumeric:
        // Positional predicate: where $fs:position = N (paper, Section 4).
        w.expr = MakeCall2("op:general-eq", MakeVarRef(pos), npred);
        break;
      case PredClass::kBoolean:
        w.expr = npred;  // already boolean-valued; keep join predicates bare
        break;
      case PredClass::kDynamic:
        // Statically unknown: defer to the runtime rule (numeric value =>
        // position test, otherwise EBV).
        w.expr = MakeCall2("fs:predicate-truth", npred, MakeVarRef(pos));
        break;
    }
    flwor->clauses.push_back(std::move(w));
    flwor->ret = MakeVarRef(dot);
    return flwor;
  }

  std::unordered_set<Symbol> declared_;
  int ts_counter_ = 0;
};

}  // namespace

Result<ExprPtr> NormalizeExpr(const ExprPtr& e) {
  Normalizer n({});
  return n.Normalize(e);
}

void HoistLeadingLets(Query* q) {
  while (q->body != nullptr && q->body->kind == ExprKind::kFLWOR &&
         !q->body->clauses.empty() &&
         q->body->clauses.front().kind == Clause::Kind::kLet) {
    Clause c = q->body->clauses.front();
    VarDecl vd;
    vd.name = c.var;
    vd.type = c.type;
    vd.expr = c.expr;
    q->variables.push_back(std::move(vd));
    ExprPtr body = CloneShallow(*q->body);
    body->clauses.erase(body->clauses.begin());
    if (body->clauses.empty()) {
      q->body = body->ret;
    } else {
      q->body = std::move(body);
    }
  }
}

namespace {

/// Does the expression contain a where clause correlated with a variable in
/// `outer` that is not shadowed locally?
bool HasCorrelatedWhere(const Expr& e, const std::set<Symbol>& outer,
                        std::set<Symbol> local) {
  if (e.kind == ExprKind::kFLWOR || e.kind == ExprKind::kQuantified) {
    for (const Clause& c : e.clauses) {
      if (c.expr != nullptr && HasCorrelatedWhere(*c.expr, outer, local)) {
        return true;
      }
      if (c.kind == Clause::Kind::kWhere) {
        std::set<Symbol> free;
        CollectFreeVars(*c.expr, &free);
        for (Symbol v : free) {
          if (outer.count(v) > 0 && local.count(v) == 0) return true;
        }
      }
      if (c.kind == Clause::Kind::kFor || c.kind == Clause::Kind::kLet) {
        local.insert(c.var);
        if (!c.pos_var.empty()) local.insert(c.pos_var);
      }
    }
    return e.ret != nullptr && HasCorrelatedWhere(*e.ret, outer, local);
  }
  for (const ExprPtr& c : e.children) {
    if (c != nullptr && HasCorrelatedWhere(*c, outer, local)) return true;
  }
  if (e.ret != nullptr && HasCorrelatedWhere(*e.ret, outer, local)) {
    return true;
  }
  for (const Clause& c : e.clauses) {
    if (c.expr != nullptr && HasCorrelatedWhere(*c.expr, outer, local)) {
      return true;
    }
  }
  for (const TypeswitchCase& c : e.cases) {
    std::set<Symbol> l = local;
    if (!c.var.empty()) l.insert(c.var);
    if (HasCorrelatedWhere(*c.body, outer, l)) return true;
  }
  return false;
}

/// Extracts hoistable nested FLWOR blocks from an expression tree, walking
/// only through always-evaluated positions (constructors, sequences, call
/// arguments) — never through conditionals or binders.
ExprPtr ExtractNestedBlocks(const ExprPtr& e, const std::set<Symbol>& outer,
                            int* counter,
                            std::vector<std::pair<Symbol, ExprPtr>>* lets) {
  if (e == nullptr) return nullptr;
  if (e->kind == ExprKind::kFLWOR) {
    if (HasCorrelatedWhere(*e, outer, {})) {
      Symbol fresh("fs:hoist" + std::to_string((*counter)++));
      lets->emplace_back(fresh, e);
      return MakeVarRef(fresh);
    }
    return e;
  }
  switch (e->kind) {
    case ExprKind::kSequence:
    case ExprKind::kFunctionCall:
    case ExprKind::kCompElement:
    case ExprKind::kCompAttribute:
    case ExprKind::kCompText:
    case ExprKind::kCompComment:
    case ExprKind::kCompPI:
    case ExprKind::kCompDocument: {
      ExprPtr out = CloneShallow(*e);
      for (ExprPtr& c : out->children) {
        c = ExtractNestedBlocks(c, outer, counter, lets);
      }
      if (out->name_expr != nullptr) {
        out->name_expr = ExtractNestedBlocks(out->name_expr, outer, counter, lets);
      }
      return out;
    }
    default:
      return e;
  }
}

/// Recursive driver: processes every FLWOR in the tree.
ExprPtr HoistBlocksRec(const ExprPtr& e, int* counter) {
  if (e == nullptr) return nullptr;
  ExprPtr out = CloneShallow(*e);
  for (ExprPtr& c : out->children) c = HoistBlocksRec(c, counter);
  if (out->name_expr != nullptr) {
    out->name_expr = HoistBlocksRec(out->name_expr, counter);
  }
  for (Clause& c : out->clauses) {
    if (c.expr != nullptr) c.expr = HoistBlocksRec(c.expr, counter);
    for (auto& spec : c.specs) spec.key = HoistBlocksRec(spec.key, counter);
  }
  for (TypeswitchCase& c : out->cases) {
    c.body = HoistBlocksRec(c.body, counter);
  }
  if (out->ret != nullptr) out->ret = HoistBlocksRec(out->ret, counter);

  if (out->kind == ExprKind::kFLWOR) {
    std::set<Symbol> bound;
    for (const Clause& c : out->clauses) {
      if (c.kind == Clause::Kind::kFor || c.kind == Clause::Kind::kLet) {
        bound.insert(c.var);
        if (!c.pos_var.empty()) bound.insert(c.pos_var);
      }
    }
    std::vector<std::pair<Symbol, ExprPtr>> lets;
    out->ret = ExtractNestedBlocks(out->ret, bound, counter, &lets);
    for (auto& [var, expr] : lets) {
      Clause c;
      c.kind = Clause::Kind::kLet;
      c.var = var;
      c.expr = std::move(expr);
      out->clauses.push_back(std::move(c));
    }
  }
  return out;
}

}  // namespace

void HoistNestedReturnBlocks(Query* q) {
  int counter = 0;
  for (FunctionDecl& f : q->functions) {
    f.body = HoistBlocksRec(f.body, &counter);
  }
  for (VarDecl& v : q->variables) {
    if (v.expr != nullptr) v.expr = HoistBlocksRec(v.expr, &counter);
  }
  q->body = HoistBlocksRec(q->body, &counter);
}

Result<Query> NormalizeQuery(const Query& q) {
  std::unordered_set<Symbol> declared;
  for (const FunctionDecl& f : q.functions) declared.insert(f.name);
  Normalizer n(declared);
  Query out;
  for (const FunctionDecl& f : q.functions) {
    FunctionDecl nf = f;
    XQC_ASSIGN_OR_RETURN(nf.body, n.Normalize(f.body));
    out.functions.push_back(std::move(nf));
  }
  for (const VarDecl& v : q.variables) {
    VarDecl nv = v;
    if (v.expr != nullptr) {
      XQC_ASSIGN_OR_RETURN(nv.expr, n.Normalize(v.expr));
    }
    out.variables.push_back(std::move(nv));
  }
  XQC_ASSIGN_OR_RETURN(out.body, n.Normalize(q.body));
  return out;
}

}  // namespace xqc
