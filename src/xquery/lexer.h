// XQuery tokenizer. Keywords are contextual in XQuery (every keyword is a
// legal element name), so the lexer emits them as kName tokens and the
// parser decides. Direct XML constructors are parsed at the character level
// by the parser, which uses pos()/SetPos() to hand control back and forth.
#ifndef XQC_XQUERY_LEXER_H_
#define XQC_XQUERY_LEXER_H_

#include <string>
#include <string_view>

#include "src/base/status.h"
#include "src/xml/atomic.h"

namespace xqc {

enum class TokKind : uint8_t {
  kEOF,
  kError,  // lazily-reported scan error (see parser lookahead)
  kName,     // NCName or QName (including keywords)
  kInteger,  // 42
  kDecimal,  // 4.2
  kDouble,   // 4.2e1
  kString,   // "..." or '...'
  kLParen, kRParen, kLBracket, kRBracket, kLBrace, kRBrace,
  kComma, kSemicolon, kDollar, kAt, kBar,
  kSlash, kSlashSlash, kDot, kDotDot, kColonColon,
  kStar, kPlus, kMinus,
  kEq, kNe, kLt, kLe, kGt, kGe,  // = != < <= > >=
  kLtLt, kGtGt,                  // << >>
  kAssign,                       // :=
  kQuestion,
};

struct Token {
  TokKind kind = TokKind::kEOF;
  std::string text;    // name spelling / string value
  AtomicValue number;  // numeric literals
  size_t offset = 0;   // start offset in the input
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : s_(input) {}

  /// Scans the next token. On malformed input returns a ParseError.
  Result<Token> Next();

  size_t pos() const { return pos_; }
  void SetPos(size_t p) { pos_ = p; }
  std::string_view input() const { return s_; }

  /// 1-based line number of an offset (for error messages).
  int LineOf(size_t offset) const;

 private:
  Status SkipSpaceAndComments();

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace xqc

#endif  // XQC_XQUERY_LEXER_H_
