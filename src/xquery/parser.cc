#include "src/xquery/parser.h"

#include <functional>

#include "src/base/guard.h"
#include "src/base/strutil.h"
#include "src/xquery/lexer.h"

namespace xqc {
namespace {

const char* const kKindTestNames[] = {
    "node",         "text",    "comment", "processing-instruction",
    "document-node", "element", "attribute", "item", "empty-sequence"};

bool IsKindTestName(const std::string& n) {
  for (const char* k : kKindTestNames) {
    if (n == k) return true;
  }
  return false;
}

// Maximum expression/constructor nesting depth. The parser is recursive-
// descent, so unbounded nesting (100k of "((((...") would smash the native
// stack; anything deeper than this is rejected with XPST0003. The limit
// clears legitimate queries by a wide margin (the deepest query in the
// test corpus nests ~500 levels) while keeping worst-case stack use a few
// MB even under sanitizer-sized frames.
constexpr int kMaxNestingDepth = 1024;

class Parser {
 public:
  explicit Parser(std::string_view text, QueryGuard* guard = nullptr)
      : lex_(text), guard_(guard) {}

  Result<Query> ParseQuery() {
    XQC_RETURN_IF_ERROR(Init());
    Query q;
    XQC_RETURN_IF_ERROR(ParseProlog(&q));
    XQC_ASSIGN_OR_RETURN(q.body, ParseExpr());
    if (cur_.kind != TokKind::kEOF) {
      return Err("unexpected trailing input");
    }
    return q;
  }

  Result<ExprPtr> ParseSingleExpr() {
    XQC_RETURN_IF_ERROR(Init());
    XQC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (cur_.kind != TokKind::kEOF) return Err("unexpected trailing input");
    return e;
  }

  Result<SequenceType> ParseSequenceTypeOnly() {
    XQC_RETURN_IF_ERROR(Init());
    XQC_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
    if (cur_.kind != TokKind::kEOF) return Err("unexpected trailing input");
    return t;
  }

 private:
  // ---- token plumbing -----------------------------------------------------

  // The peek token's scan error must be reported lazily: a direct
  // constructor's enclosed expression legitimately ends right before raw
  // XML characters that do not tokenize (e.g. the closing quote of an
  // attribute value template), and the parser never consumes past them.
  void ScanPeek() {
    peek_pos_ = lex_.pos();
    Result<Token> r = lex_.Next();
    if (r.ok()) {
      peek_ = r.take();
    } else {
      peek_ = Token{};
      peek_.kind = TokKind::kError;
      peek_status_ = r.status();
    }
  }

  Status Init() {
    XQC_ASSIGN_OR_RETURN(cur_, lex_.Next());
    ScanPeek();
    return Status::OK();
  }

  Status Advance() {
    if (guard_ != nullptr) XQC_RETURN_IF_ERROR(guard_->Check());
    cur_ = std::move(peek_);
    if (cur_.kind == TokKind::kError) return peek_status_;
    ScanPeek();
    return Status::OK();
  }

  bool Is(TokKind k) const { return cur_.kind == k; }
  bool IsName(const char* n) const {
    return cur_.kind == TokKind::kName && cur_.text == n;
  }
  bool PeekIs(TokKind k) const { return peek_.kind == k; }
  bool PeekIsName(const char* n) const {
    return peek_.kind == TokKind::kName && peek_.text == n;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError("XQuery parse error at line " +
                              std::to_string(lex_.LineOf(cur_.offset)) + ": " +
                              msg);
  }

  Status Expect(TokKind k, const char* what) {
    if (!Is(k)) return Err(std::string("expected ") + what);
    return Advance();
  }

  Status ExpectName(const char* n) {
    if (!IsName(n)) return Err(std::string("expected '") + n + "'");
    return Advance();
  }

  Result<Symbol> ExpectQName(const char* what) {
    if (!Is(TokKind::kName)) return Err(std::string("expected ") + what);
    Symbol s(cur_.text);
    XQC_RETURN_IF_ERROR(Advance());
    return s;
  }

  // ---- prolog -------------------------------------------------------------

  Status ParseProlog(Query* q) {
    while (IsName("declare") || IsName("import")) {
      if (IsName("import")) {
        // import schema/module ...: skip to ';'
        while (!Is(TokKind::kSemicolon) && !Is(TokKind::kEOF)) {
          XQC_RETURN_IF_ERROR(Advance());
        }
        XQC_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
        continue;
      }
      if (PeekIsName("function")) {
        XQC_RETURN_IF_ERROR(Advance());  // declare
        XQC_RETURN_IF_ERROR(Advance());  // function
        FunctionDecl fd;
        XQC_ASSIGN_OR_RETURN(fd.name, ExpectQName("function name"));
        XQC_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
        if (!Is(TokKind::kRParen)) {
          while (true) {
            XQC_RETURN_IF_ERROR(Expect(TokKind::kDollar, "'$'"));
            XQC_ASSIGN_OR_RETURN(Symbol pname, ExpectQName("parameter name"));
            std::optional<SequenceType> ptype;
            if (IsName("as")) {
              XQC_RETURN_IF_ERROR(Advance());
              XQC_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
              ptype = t;
            }
            fd.params.emplace_back(pname, ptype);
            if (!Is(TokKind::kComma)) break;
            XQC_RETURN_IF_ERROR(Advance());
          }
        }
        XQC_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
        if (IsName("as")) {
          XQC_RETURN_IF_ERROR(Advance());
          XQC_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
          fd.return_type = t;
        }
        XQC_RETURN_IF_ERROR(Expect(TokKind::kLBrace, "'{'"));
        XQC_ASSIGN_OR_RETURN(fd.body, ParseExpr());
        XQC_RETURN_IF_ERROR(Expect(TokKind::kRBrace, "'}'"));
        XQC_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
        q->functions.push_back(std::move(fd));
        continue;
      }
      if (PeekIsName("variable")) {
        XQC_RETURN_IF_ERROR(Advance());  // declare
        XQC_RETURN_IF_ERROR(Advance());  // variable
        VarDecl vd;
        XQC_RETURN_IF_ERROR(Expect(TokKind::kDollar, "'$'"));
        XQC_ASSIGN_OR_RETURN(vd.name, ExpectQName("variable name"));
        if (IsName("as")) {
          XQC_RETURN_IF_ERROR(Advance());
          XQC_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
          vd.type = t;
        }
        if (IsName("external")) {
          XQC_RETURN_IF_ERROR(Advance());
        } else {
          XQC_RETURN_IF_ERROR(Expect(TokKind::kAssign, "':='"));
          XQC_ASSIGN_OR_RETURN(vd.expr, ParseExprSingle());
        }
        XQC_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
        q->variables.push_back(std::move(vd));
        continue;
      }
      if (PeekIsName("boundary-space")) {
        XQC_RETURN_IF_ERROR(Advance());  // declare
        XQC_RETURN_IF_ERROR(Advance());  // boundary-space
        if (IsName("preserve")) {
          boundary_space_preserve_ = true;
        } else if (!IsName("strip")) {
          return Err("expected 'preserve' or 'strip'");
        }
        XQC_RETURN_IF_ERROR(Advance());
        XQC_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
        continue;
      }
      // declare namespace / default ...: skip to ';'.
      while (!Is(TokKind::kSemicolon) && !Is(TokKind::kEOF)) {
        XQC_RETURN_IF_ERROR(Advance());
      }
      XQC_RETURN_IF_ERROR(Expect(TokKind::kSemicolon, "';'"));
    }
    return Status::OK();
  }

  // ---- expressions --------------------------------------------------------

  Result<ExprPtr> ParseExpr() {  // comma-sequence
    XQC_ASSIGN_OR_RETURN(ExprPtr first, ParseExprSingle());
    if (!Is(TokKind::kComma)) return first;
    ExprPtr seq = MakeExpr(ExprKind::kSequence);
    seq->children.push_back(std::move(first));
    while (Is(TokKind::kComma)) {
      XQC_RETURN_IF_ERROR(Advance());
      XQC_ASSIGN_OR_RETURN(ExprPtr next, ParseExprSingle());
      seq->children.push_back(std::move(next));
    }
    return seq;
  }

  // Every recursive cycle in the expression grammar passes through
  // ParseExprSingle (operators, parens, predicates, FLWOR bodies) or
  // ParseDirElem (nested direct constructors), so a shared depth counter
  // at these two entry points bounds total parser recursion.
  Result<ExprPtr> ParseExprSingle() {
    if (++depth_ > kMaxNestingDepth) {
      depth_--;
      return Err("expression nesting deeper than " +
                 std::to_string(kMaxNestingDepth));
    }
    Result<ExprPtr> r = ParseExprSingleImpl();
    depth_--;
    return r;
  }

  Result<ExprPtr> ParseExprSingleImpl() {
    if ((IsName("for") || IsName("let")) && PeekIs(TokKind::kDollar)) {
      return ParseFLWOR();
    }
    if ((IsName("some") || IsName("every")) && PeekIs(TokKind::kDollar)) {
      return ParseQuantified();
    }
    if (IsName("typeswitch") && PeekIs(TokKind::kLParen)) {
      return ParseTypeswitch();
    }
    if (IsName("if") && PeekIs(TokKind::kLParen)) return ParseIf();
    return ParseOr();
  }

  Result<ExprPtr> ParseFLWOR() {
    ExprPtr e = MakeExpr(ExprKind::kFLWOR);
    while (true) {
      if ((IsName("for") || IsName("let")) && PeekIs(TokKind::kDollar)) {
        bool is_for = IsName("for");
        XQC_RETURN_IF_ERROR(Advance());
        while (true) {
          Clause c;
          c.kind = is_for ? Clause::Kind::kFor : Clause::Kind::kLet;
          XQC_RETURN_IF_ERROR(Expect(TokKind::kDollar, "'$'"));
          XQC_ASSIGN_OR_RETURN(c.var, ExpectQName("variable name"));
          if (IsName("as")) {
            XQC_RETURN_IF_ERROR(Advance());
            XQC_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
            c.type = t;
          }
          if (is_for && IsName("at")) {
            XQC_RETURN_IF_ERROR(Advance());
            XQC_RETURN_IF_ERROR(Expect(TokKind::kDollar, "'$'"));
            XQC_ASSIGN_OR_RETURN(c.pos_var, ExpectQName("position variable"));
          }
          if (is_for) {
            XQC_RETURN_IF_ERROR(ExpectName("in"));
          } else {
            XQC_RETURN_IF_ERROR(Expect(TokKind::kAssign, "':='"));
          }
          XQC_ASSIGN_OR_RETURN(c.expr, ParseExprSingle());
          e->clauses.push_back(std::move(c));
          if (!Is(TokKind::kComma)) break;
          XQC_RETURN_IF_ERROR(Advance());
        }
        continue;
      }
      if (IsName("where")) {
        XQC_RETURN_IF_ERROR(Advance());
        Clause c;
        c.kind = Clause::Kind::kWhere;
        XQC_ASSIGN_OR_RETURN(c.expr, ParseExprSingle());
        e->clauses.push_back(std::move(c));
        continue;
      }
      if (IsName("stable") || IsName("order")) {
        Clause c;
        c.kind = Clause::Kind::kOrderBy;
        if (IsName("stable")) {
          c.stable = true;
          XQC_RETURN_IF_ERROR(Advance());
        }
        XQC_RETURN_IF_ERROR(ExpectName("order"));
        XQC_RETURN_IF_ERROR(ExpectName("by"));
        while (true) {
          Clause::OrderSpec spec;
          XQC_ASSIGN_OR_RETURN(spec.key, ParseExprSingle());
          if (IsName("ascending")) {
            XQC_RETURN_IF_ERROR(Advance());
          } else if (IsName("descending")) {
            spec.descending = true;
            XQC_RETURN_IF_ERROR(Advance());
          }
          if (IsName("empty")) {
            XQC_RETURN_IF_ERROR(Advance());
            if (IsName("greatest")) {
              spec.empty_greatest = true;
              XQC_RETURN_IF_ERROR(Advance());
            } else {
              XQC_RETURN_IF_ERROR(ExpectName("least"));
            }
          }
          c.specs.push_back(std::move(spec));
          if (!Is(TokKind::kComma)) break;
          XQC_RETURN_IF_ERROR(Advance());
        }
        e->clauses.push_back(std::move(c));
        continue;
      }
      break;
    }
    XQC_RETURN_IF_ERROR(ExpectName("return"));
    XQC_ASSIGN_OR_RETURN(e->ret, ParseExprSingle());
    return e;
  }

  Result<ExprPtr> ParseQuantified() {
    ExprPtr e = MakeExpr(ExprKind::kQuantified);
    e->quant = IsName("some") ? QuantKind::kSome : QuantKind::kEvery;
    XQC_RETURN_IF_ERROR(Advance());
    while (true) {
      Clause c;
      c.kind = Clause::Kind::kFor;
      XQC_RETURN_IF_ERROR(Expect(TokKind::kDollar, "'$'"));
      XQC_ASSIGN_OR_RETURN(c.var, ExpectQName("variable name"));
      if (IsName("as")) {
        XQC_RETURN_IF_ERROR(Advance());
        XQC_ASSIGN_OR_RETURN(SequenceType t, ParseSequenceType());
        c.type = t;
      }
      XQC_RETURN_IF_ERROR(ExpectName("in"));
      XQC_ASSIGN_OR_RETURN(c.expr, ParseExprSingle());
      e->clauses.push_back(std::move(c));
      if (!Is(TokKind::kComma)) break;
      XQC_RETURN_IF_ERROR(Advance());
    }
    XQC_RETURN_IF_ERROR(ExpectName("satisfies"));
    XQC_ASSIGN_OR_RETURN(e->ret, ParseExprSingle());
    return e;
  }

  Result<ExprPtr> ParseTypeswitch() {
    ExprPtr e = MakeExpr(ExprKind::kTypeswitch);
    XQC_RETURN_IF_ERROR(Advance());  // typeswitch
    XQC_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    XQC_ASSIGN_OR_RETURN(ExprPtr input, ParseExpr());
    e->children.push_back(std::move(input));
    XQC_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    bool saw_default = false;
    while (IsName("case") || IsName("default")) {
      TypeswitchCase c;
      c.is_default = IsName("default");
      XQC_RETURN_IF_ERROR(Advance());
      if (Is(TokKind::kDollar)) {
        XQC_RETURN_IF_ERROR(Advance());
        XQC_ASSIGN_OR_RETURN(c.var, ExpectQName("case variable"));
      }
      if (!c.is_default) {
        if (!c.var.empty()) XQC_RETURN_IF_ERROR(ExpectName("as"));
        XQC_ASSIGN_OR_RETURN(c.type, ParseSequenceType());
      }
      XQC_RETURN_IF_ERROR(ExpectName("return"));
      XQC_ASSIGN_OR_RETURN(c.body, ParseExprSingle());
      if (c.is_default) saw_default = true;
      e->cases.push_back(std::move(c));
      if (saw_default) break;
    }
    if (!saw_default) return Err("typeswitch requires a default clause");
    return e;
  }

  Result<ExprPtr> ParseIf() {
    ExprPtr e = MakeExpr(ExprKind::kIf);
    XQC_RETURN_IF_ERROR(Advance());  // if
    XQC_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    XQC_ASSIGN_OR_RETURN(ExprPtr c, ParseExpr());
    XQC_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    XQC_RETURN_IF_ERROR(ExpectName("then"));
    XQC_ASSIGN_OR_RETURN(ExprPtr t, ParseExprSingle());
    XQC_RETURN_IF_ERROR(ExpectName("else"));
    XQC_ASSIGN_OR_RETURN(ExprPtr f, ParseExprSingle());
    e->children = {std::move(c), std::move(t), std::move(f)};
    return e;
  }

  Result<ExprPtr> ParseOr() {
    XQC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (IsName("or")) {
      XQC_RETURN_IF_ERROR(Advance());
      XQC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      ExprPtr e = MakeExpr(ExprKind::kOr);
      e->children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    XQC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (IsName("and")) {
      XQC_RETURN_IF_ERROR(Advance());
      XQC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      ExprPtr e = MakeExpr(ExprKind::kAnd);
      e->children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    XQC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRange());
    // General comparisons.
    struct GC { TokKind tok; CompOp op; };
    static const GC kGeneral[] = {
        {TokKind::kEq, CompOp::kEq}, {TokKind::kNe, CompOp::kNe},
        {TokKind::kLt, CompOp::kLt}, {TokKind::kLe, CompOp::kLe},
        {TokKind::kGt, CompOp::kGt}, {TokKind::kGe, CompOp::kGe}};
    for (const GC& g : kGeneral) {
      if (Is(g.tok)) {
        XQC_RETURN_IF_ERROR(Advance());
        XQC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRange());
        ExprPtr e = MakeExpr(ExprKind::kGeneralComp);
        e->comp_op = g.op;
        e->children = {std::move(lhs), std::move(rhs)};
        return e;
      }
    }
    // Value comparisons (contextual keywords).
    struct VC { const char* name; CompOp op; };
    static const VC kValue[] = {{"eq", CompOp::kEq}, {"ne", CompOp::kNe},
                                {"lt", CompOp::kLt}, {"le", CompOp::kLe},
                                {"gt", CompOp::kGt}, {"ge", CompOp::kGe}};
    for (const VC& v : kValue) {
      if (IsName(v.name)) {
        XQC_RETURN_IF_ERROR(Advance());
        XQC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRange());
        ExprPtr e = MakeExpr(ExprKind::kValueComp);
        e->comp_op = v.op;
        e->children = {std::move(lhs), std::move(rhs)};
        return e;
      }
    }
    // Node comparisons.
    if (IsName("is") || Is(TokKind::kLtLt) || Is(TokKind::kGtGt)) {
      NodeCompOp op = IsName("is") ? NodeCompOp::kIs
                      : Is(TokKind::kLtLt) ? NodeCompOp::kBefore
                                           : NodeCompOp::kAfter;
      XQC_RETURN_IF_ERROR(Advance());
      XQC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRange());
      ExprPtr e = MakeExpr(ExprKind::kNodeComp);
      e->node_comp_op = op;
      e->children = {std::move(lhs), std::move(rhs)};
      return e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseRange() {
    XQC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (IsName("to")) {
      XQC_RETURN_IF_ERROR(Advance());
      XQC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      ExprPtr e = MakeExpr(ExprKind::kRange);
      e->children = {std::move(lhs), std::move(rhs)};
      return e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    XQC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Is(TokKind::kPlus) || Is(TokKind::kMinus)) {
      ArithOp op = Is(TokKind::kPlus) ? ArithOp::kAdd : ArithOp::kSub;
      XQC_RETURN_IF_ERROR(Advance());
      XQC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      ExprPtr e = MakeExpr(ExprKind::kArith);
      e->arith_op = op;
      e->children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    XQC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnion());
    while (Is(TokKind::kStar) || IsName("div") || IsName("idiv") ||
           IsName("mod")) {
      ArithOp op = Is(TokKind::kStar)   ? ArithOp::kMul
                   : IsName("div")      ? ArithOp::kDiv
                   : IsName("idiv")     ? ArithOp::kIDiv
                                        : ArithOp::kMod;
      XQC_RETURN_IF_ERROR(Advance());
      XQC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnion());
      ExprPtr e = MakeExpr(ExprKind::kArith);
      e->arith_op = op;
      e->children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnion() {
    XQC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseIntersectExcept());
    while (Is(TokKind::kBar) || IsName("union")) {
      XQC_RETURN_IF_ERROR(Advance());
      XQC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseIntersectExcept());
      ExprPtr e = MakeExpr(ExprKind::kUnion);
      e->children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseIntersectExcept() {
    XQC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseInstanceOf());
    while (IsName("intersect") || IsName("except")) {
      ExprKind k = IsName("intersect") ? ExprKind::kIntersect
                                       : ExprKind::kExcept;
      XQC_RETURN_IF_ERROR(Advance());
      XQC_ASSIGN_OR_RETURN(ExprPtr rhs, ParseInstanceOf());
      ExprPtr e = MakeExpr(k);
      e->children = {std::move(lhs), std::move(rhs)};
      lhs = std::move(e);
    }
    return lhs;
  }

  Result<ExprPtr> ParseInstanceOf() {
    XQC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTreat());
    if (IsName("instance") && PeekIsName("of")) {
      XQC_RETURN_IF_ERROR(Advance());
      XQC_RETURN_IF_ERROR(Advance());
      ExprPtr e = MakeExpr(ExprKind::kInstanceOf);
      XQC_ASSIGN_OR_RETURN(e->stype, ParseSequenceType());
      e->children = {std::move(lhs)};
      return e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseTreat() {
    XQC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCastable());
    if (IsName("treat") && PeekIsName("as")) {
      XQC_RETURN_IF_ERROR(Advance());
      XQC_RETURN_IF_ERROR(Advance());
      ExprPtr e = MakeExpr(ExprKind::kTreatAs);
      XQC_ASSIGN_OR_RETURN(e->stype, ParseSequenceType());
      e->children = {std::move(lhs)};
      return e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseCastable() {
    XQC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCast());
    if (IsName("castable") && PeekIsName("as")) {
      XQC_RETURN_IF_ERROR(Advance());
      XQC_RETURN_IF_ERROR(Advance());
      ExprPtr e = MakeExpr(ExprKind::kCastableAs);
      XQC_ASSIGN_OR_RETURN(e->stype, ParseSingleType());
      e->children = {std::move(lhs)};
      return e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseCast() {
    XQC_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    if (IsName("cast") && PeekIsName("as")) {
      XQC_RETURN_IF_ERROR(Advance());
      XQC_RETURN_IF_ERROR(Advance());
      ExprPtr e = MakeExpr(ExprKind::kCastAs);
      XQC_ASSIGN_OR_RETURN(e->stype, ParseSingleType());
      e->children = {std::move(lhs)};
      return e;
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (Is(TokKind::kMinus)) {
      XQC_RETURN_IF_ERROR(Advance());
      XQC_ASSIGN_OR_RETURN(ExprPtr inner, ParseUnary());
      ExprPtr e = MakeExpr(ExprKind::kUnaryMinus);
      e->children = {std::move(inner)};
      return e;
    }
    if (Is(TokKind::kPlus)) {
      XQC_RETURN_IF_ERROR(Advance());
      return ParseUnary();
    }
    return ParseValueExpr();
  }

  Result<ExprPtr> ParseValueExpr() {
    if (IsName("validate") &&
        (PeekIs(TokKind::kLBrace) || PeekIsName("strict") ||
         PeekIsName("lax"))) {
      XQC_RETURN_IF_ERROR(Advance());
      if (IsName("strict") || IsName("lax")) XQC_RETURN_IF_ERROR(Advance());
      XQC_RETURN_IF_ERROR(Expect(TokKind::kLBrace, "'{'"));
      XQC_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      XQC_RETURN_IF_ERROR(Expect(TokKind::kRBrace, "'}'"));
      ExprPtr e = MakeExpr(ExprKind::kValidate);
      e->children = {std::move(inner)};
      return e;
    }
    return ParsePath();
  }

  // ---- paths --------------------------------------------------------------

  ExprPtr RootExpr() {
    // fn:root(self::node()) applied to the context item.
    ExprPtr self = MakeExpr(ExprKind::kContextItem);
    return MakeCall1("fn:root", std::move(self));
  }

  ExprPtr DescendantOrSelfStep() {
    ExprPtr s = MakeExpr(ExprKind::kAxisStep);
    s->axis = Axis::kDescendantOrSelf;
    s->node_test = ItemTest::AnyNode();
    return s;
  }

  Result<ExprPtr> ParsePath() {
    ExprPtr lhs;
    if (Is(TokKind::kSlash)) {
      XQC_RETURN_IF_ERROR(Advance());
      lhs = RootExpr();
      if (!StartsStep()) return lhs;  // bare "/"
      XQC_ASSIGN_OR_RETURN(ExprPtr step, ParseStep());
      ExprPtr p = MakeExpr(ExprKind::kPath);
      p->children = {std::move(lhs), std::move(step)};
      lhs = std::move(p);
    } else if (Is(TokKind::kSlashSlash)) {
      XQC_RETURN_IF_ERROR(Advance());
      ExprPtr p = MakeExpr(ExprKind::kPath);
      p->children = {RootExpr(), DescendantOrSelfStep()};
      lhs = std::move(p);
      XQC_ASSIGN_OR_RETURN(ExprPtr step, ParseStep());
      ExprPtr p2 = MakeExpr(ExprKind::kPath);
      p2->children = {std::move(lhs), std::move(step)};
      lhs = std::move(p2);
    } else {
      XQC_ASSIGN_OR_RETURN(lhs, ParseStep());
    }
    while (Is(TokKind::kSlash) || Is(TokKind::kSlashSlash)) {
      bool dslash = Is(TokKind::kSlashSlash);
      XQC_RETURN_IF_ERROR(Advance());
      if (dslash) {
        ExprPtr p = MakeExpr(ExprKind::kPath);
        p->children = {std::move(lhs), DescendantOrSelfStep()};
        lhs = std::move(p);
      }
      XQC_ASSIGN_OR_RETURN(ExprPtr step, ParseStep());
      ExprPtr p = MakeExpr(ExprKind::kPath);
      p->children = {std::move(lhs), std::move(step)};
      lhs = std::move(p);
    }
    return lhs;
  }

  /// Would the current token begin a path step?
  bool StartsStep() const {
    switch (cur_.kind) {
      case TokKind::kDot:
      case TokKind::kDotDot:
      case TokKind::kAt:
      case TokKind::kStar:
      case TokKind::kDollar:
      case TokKind::kLParen:
      case TokKind::kString:
      case TokKind::kInteger:
      case TokKind::kDecimal:
      case TokKind::kDouble:
      case TokKind::kName:
        return true;
      case TokKind::kLt:
        return true;  // direct constructor
      default:
        return false;
    }
  }

  Result<ExprPtr> ParseStep() {
    ExprPtr step;
    bool is_axis_step = false;

    if (Is(TokKind::kDotDot)) {
      XQC_RETURN_IF_ERROR(Advance());
      step = MakeExpr(ExprKind::kAxisStep);
      step->axis = Axis::kParent;
      step->node_test = ItemTest::AnyNode();
      is_axis_step = true;
    } else if (Is(TokKind::kAt)) {
      XQC_RETURN_IF_ERROR(Advance());
      step = MakeExpr(ExprKind::kAxisStep);
      step->axis = Axis::kAttribute;
      XQC_ASSIGN_OR_RETURN(step->node_test,
                           ParseNodeTest(/*attribute_axis=*/true));
      is_axis_step = true;
    } else if (Is(TokKind::kName) && PeekIs(TokKind::kColonColon)) {
      Axis axis;
      if (!AxisFromName(cur_.text, &axis)) {
        return Err("unknown axis '" + cur_.text + "'");
      }
      XQC_RETURN_IF_ERROR(Advance());
      XQC_RETURN_IF_ERROR(Advance());
      step = MakeExpr(ExprKind::kAxisStep);
      step->axis = axis;
      XQC_ASSIGN_OR_RETURN(step->node_test,
                           ParseNodeTest(axis == Axis::kAttribute));
      is_axis_step = true;
    } else if (Is(TokKind::kStar) ||
               (Is(TokKind::kName) && !IsComputedCtorStart() &&
                (!PeekIs(TokKind::kLParen) || IsKindTestName(cur_.text)))) {
      step = MakeExpr(ExprKind::kAxisStep);
      step->axis = Axis::kChild;
      XQC_ASSIGN_OR_RETURN(step->node_test,
                           ParseNodeTest(/*attribute_axis=*/false));
      if (step->node_test.kind == ItemTest::Kind::kAttribute) {
        step->axis = Axis::kAttribute;
      }
      is_axis_step = true;
    } else {
      XQC_ASSIGN_OR_RETURN(step, ParsePrimary());
    }

    // Predicates.
    while (Is(TokKind::kLBracket)) {
      XQC_RETURN_IF_ERROR(Advance());
      XQC_ASSIGN_OR_RETURN(ExprPtr pred, ParseExpr());
      XQC_RETURN_IF_ERROR(Expect(TokKind::kRBracket, "']'"));
      if (is_axis_step) {
        step->children.push_back(std::move(pred));  // per-step predicate
      } else {
        ExprPtr f = MakeExpr(ExprKind::kFilter);
        f->children = {std::move(step), std::move(pred)};
        step = std::move(f);
      }
    }
    return step;
  }

  Result<ItemTest> ParseNodeTest(bool attribute_axis) {
    if (Is(TokKind::kStar)) {
      XQC_RETURN_IF_ERROR(Advance());
      return attribute_axis ? ItemTest::Attribute() : ItemTest::Element();
    }
    if (!Is(TokKind::kName)) return Err("expected a node test");
    if (PeekIs(TokKind::kLParen) && IsKindTestName(cur_.text)) {
      return ParseKindTest();
    }
    Symbol name(cur_.text);
    XQC_RETURN_IF_ERROR(Advance());
    return attribute_axis ? ItemTest::Attribute(name) : ItemTest::Element(name);
  }

  Result<ItemTest> ParseKindTest() {
    std::string kind = cur_.text;
    XQC_RETURN_IF_ERROR(Advance());
    XQC_RETURN_IF_ERROR(Expect(TokKind::kLParen, "'('"));
    ItemTest t;
    if (kind == "node") {
      t = ItemTest::AnyNode();
    } else if (kind == "text") {
      t = ItemTest::OfKind(ItemTest::Kind::kText);
    } else if (kind == "comment") {
      t = ItemTest::OfKind(ItemTest::Kind::kComment);
    } else if (kind == "processing-instruction") {
      t = ItemTest::OfKind(ItemTest::Kind::kPI);
      if (Is(TokKind::kName) || Is(TokKind::kString)) {
        t.name = Symbol(cur_.text);
        XQC_RETURN_IF_ERROR(Advance());
      }
    } else if (kind == "document-node") {
      t = ItemTest::OfKind(ItemTest::Kind::kDocument);
    } else if (kind == "item") {
      t = ItemTest::AnyItem();
    } else if (kind == "element" || kind == "attribute") {
      Symbol name, type;
      if (!Is(TokKind::kRParen)) {
        if (Is(TokKind::kStar)) {
          XQC_RETURN_IF_ERROR(Advance());
        } else {
          XQC_ASSIGN_OR_RETURN(name, ExpectQName("element name or '*'"));
        }
        if (Is(TokKind::kComma)) {
          XQC_RETURN_IF_ERROR(Advance());
          XQC_ASSIGN_OR_RETURN(type, ExpectQName("type name"));
        }
      }
      t = kind == "element" ? ItemTest::Element(name, type)
                            : ItemTest::Attribute(name, type);
    } else {
      return Err("unsupported kind test '" + kind + "'");
    }
    XQC_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
    return t;
  }

  // ---- primary expressions ------------------------------------------------

  Result<ExprPtr> ParsePrimary() {
    switch (cur_.kind) {
      case TokKind::kInteger:
      case TokKind::kDecimal:
      case TokKind::kDouble: {
        ExprPtr e = MakeLiteral(cur_.number);
        XQC_RETURN_IF_ERROR(Advance());
        return e;
      }
      case TokKind::kString: {
        ExprPtr e = MakeLiteral(AtomicValue::String(cur_.text));
        XQC_RETURN_IF_ERROR(Advance());
        return e;
      }
      case TokKind::kDollar: {
        XQC_RETURN_IF_ERROR(Advance());
        XQC_ASSIGN_OR_RETURN(Symbol name, ExpectQName("variable name"));
        return MakeVarRef(name);
      }
      case TokKind::kDot: {
        XQC_RETURN_IF_ERROR(Advance());
        return MakeExpr(ExprKind::kContextItem);
      }
      case TokKind::kLParen: {
        XQC_RETURN_IF_ERROR(Advance());
        if (Is(TokKind::kRParen)) {
          XQC_RETURN_IF_ERROR(Advance());
          return MakeExpr(ExprKind::kEmptySeq);
        }
        XQC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        XQC_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
        return e;
      }
      case TokKind::kLt:
        return ParseDirectConstructor();
      case TokKind::kName:
        break;
      default:
        return Err("expected an expression");
    }

    // Computed constructors and ordered/unordered.
    const std::string& n = cur_.text;
    if ((n == "ordered" || n == "unordered") && PeekIs(TokKind::kLBrace)) {
      XQC_RETURN_IF_ERROR(Advance());
      XQC_RETURN_IF_ERROR(Advance());
      XQC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      XQC_RETURN_IF_ERROR(Expect(TokKind::kRBrace, "'}'"));
      return e;  // ordering modes are identity in our (ordered) engine
    }
    if (n == "element" || n == "attribute") {
      // computed: element Name {content} or element {NameExpr} {content}
      if (PeekIs(TokKind::kLBrace) ||
          (PeekIs(TokKind::kName) && LooksLikeComputedCtor())) {
        ExprKind k = n == "element" ? ExprKind::kCompElement
                                    : ExprKind::kCompAttribute;
        XQC_RETURN_IF_ERROR(Advance());
        ExprPtr e = MakeExpr(k);
        if (Is(TokKind::kLBrace)) {
          XQC_RETURN_IF_ERROR(Advance());
          XQC_ASSIGN_OR_RETURN(e->name_expr, ParseExpr());
          XQC_RETURN_IF_ERROR(Expect(TokKind::kRBrace, "'}'"));
        } else {
          XQC_ASSIGN_OR_RETURN(e->name, ExpectQName("constructor name"));
        }
        XQC_RETURN_IF_ERROR(Expect(TokKind::kLBrace, "'{'"));
        if (!Is(TokKind::kRBrace)) {
          XQC_ASSIGN_OR_RETURN(ExprPtr content, ParseExpr());
          e->children.push_back(std::move(content));
        }
        XQC_RETURN_IF_ERROR(Expect(TokKind::kRBrace, "'}'"));
        return e;
      }
    }
    if ((n == "text" || n == "comment" || n == "document") &&
        PeekIs(TokKind::kLBrace)) {
      ExprKind k = n == "text"      ? ExprKind::kCompText
                   : n == "comment" ? ExprKind::kCompComment
                                    : ExprKind::kCompDocument;
      XQC_RETURN_IF_ERROR(Advance());
      XQC_RETURN_IF_ERROR(Advance());
      ExprPtr e = MakeExpr(k);
      if (!Is(TokKind::kRBrace)) {
        XQC_ASSIGN_OR_RETURN(ExprPtr content, ParseExpr());
        e->children.push_back(std::move(content));
      }
      XQC_RETURN_IF_ERROR(Expect(TokKind::kRBrace, "'}'"));
      return e;
    }
    if (n == "processing-instruction" && PeekIs(TokKind::kName)) {
      XQC_RETURN_IF_ERROR(Advance());
      ExprPtr e = MakeExpr(ExprKind::kCompPI);
      XQC_ASSIGN_OR_RETURN(e->name, ExpectQName("PI target"));
      XQC_RETURN_IF_ERROR(Expect(TokKind::kLBrace, "'{'"));
      if (!Is(TokKind::kRBrace)) {
        XQC_ASSIGN_OR_RETURN(ExprPtr content, ParseExpr());
        e->children.push_back(std::move(content));
      }
      XQC_RETURN_IF_ERROR(Expect(TokKind::kRBrace, "'}'"));
      return e;
    }

    // Function call.
    if (PeekIs(TokKind::kLParen)) {
      Symbol fname(n);
      XQC_RETURN_IF_ERROR(Advance());
      XQC_RETURN_IF_ERROR(Advance());
      std::vector<ExprPtr> args;
      if (!Is(TokKind::kRParen)) {
        while (true) {
          XQC_ASSIGN_OR_RETURN(ExprPtr a, ParseExprSingle());
          args.push_back(std::move(a));
          if (!Is(TokKind::kComma)) break;
          XQC_RETURN_IF_ERROR(Advance());
        }
      }
      XQC_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return MakeCall(fname, std::move(args));
    }
    return Err("unexpected name '" + n + "' in expression");
  }

  /// Is the current name token the start of a computed constructor (or
  /// ordered/unordered expression) rather than a path step?
  bool IsComputedCtorStart() const {
    const std::string& n = cur_.text;
    if ((n == "text" || n == "comment" || n == "document" || n == "ordered" ||
         n == "unordered") &&
        PeekIs(TokKind::kLBrace)) {
      return true;
    }
    if (n == "element" || n == "attribute") {
      if (PeekIs(TokKind::kLBrace)) return true;
      if (PeekIs(TokKind::kName) && LooksLikeComputedCtor()) return true;
    }
    if (n == "processing-instruction" && PeekIs(TokKind::kName) &&
        LooksLikeComputedCtor()) {
      return true;
    }
    return false;
  }

  /// Heuristic: `element foo {` — the name token is followed by '{'.
  bool LooksLikeComputedCtor() const {
    // cur_ = element/attribute, peek_ = Name. We need the token after peek_
    // to be '{'; scan it without disturbing the stream.
    Lexer probe(lex_.input());
    probe.SetPos(peek_pos_);
    Result<Token> t1 = probe.Next();  // the name
    if (!t1.ok()) return false;
    Result<Token> t2 = probe.Next();
    return t2.ok() && t2.value().kind == TokKind::kLBrace;
  }

  // ---- direct constructors (character level) -------------------------------

  Result<ExprPtr> ParseDirectConstructor() {
    // cur_ is '<'; re-parse from its raw offset.
    size_t p = cur_.offset;
    XQC_ASSIGN_OR_RETURN(ExprPtr e, ParseDirElem(&p));
    lex_.SetPos(p);
    XQC_RETURN_IF_ERROR(Init());
    return e;
  }

  Result<ExprPtr> ParseDirElem(size_t* p) {
    if (++depth_ > kMaxNestingDepth) {
      depth_--;
      return Status::ParseError("direct constructor error at line " +
                                std::to_string(lex_.LineOf(*p)) +
                                ": element nesting deeper than " +
                                std::to_string(kMaxNestingDepth));
    }
    Result<ExprPtr> r = ParseDirElemImpl(p);
    depth_--;
    return r;
  }

  Result<ExprPtr> ParseDirElemImpl(size_t* p) {
    std::string_view s = lex_.input();
    auto err = [&](const std::string& m) {
      return Status::ParseError("direct constructor error at line " +
                                std::to_string(lex_.LineOf(*p)) + ": " + m);
    };
    auto skip_ws = [&] {
      while (*p < s.size() && IsXmlSpace(s[*p])) (*p)++;
    };
    auto name_char = [&](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
             (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
             c == ':';
    };
    if (*p >= s.size() || s[*p] != '<') return err("expected '<'");
    (*p)++;
    size_t nstart = *p;
    while (*p < s.size() && name_char(s[*p])) (*p)++;
    if (*p == nstart) return err("expected element name");
    Symbol name(s.substr(nstart, *p - nstart));
    ExprPtr e = MakeExpr(ExprKind::kCompElement);
    e->name = name;

    // Attributes.
    while (true) {
      skip_ws();
      if (*p >= s.size()) return err("unterminated start tag");
      if (s.compare(*p, 2, "/>") == 0) {
        *p += 2;
        return e;
      }
      if (s[*p] == '>') {
        (*p)++;
        break;
      }
      size_t astart = *p;
      while (*p < s.size() && name_char(s[*p])) (*p)++;
      if (*p == astart) return err("expected attribute name");
      Symbol aname(s.substr(astart, *p - astart));
      skip_ws();
      if (*p >= s.size() || s[*p] != '=') return err("expected '='");
      (*p)++;
      skip_ws();
      if (*p >= s.size() || (s[*p] != '"' && s[*p] != '\'')) {
        return err("expected quoted attribute value");
      }
      char quote = s[*p];
      (*p)++;
      ExprPtr attr = MakeExpr(ExprKind::kCompAttribute);
      attr->name = aname;
      std::string text;
      while (true) {
        if (*p >= s.size()) return err("unterminated attribute value");
        char c = s[*p];
        if (c == quote) {
          (*p)++;
          break;
        }
        if (c == '{') {
          if (*p + 1 < s.size() && s[*p + 1] == '{') {
            text.push_back('{');
            *p += 2;
            continue;
          }
          if (!text.empty()) {
            attr->children.push_back(
                MakeLiteral(AtomicValue::String(std::move(text))));
            text.clear();
          }
          (*p)++;
          XQC_ASSIGN_OR_RETURN(ExprPtr inner, ParseEnclosed(p));
          attr->children.push_back(std::move(inner));
          continue;
        }
        if (c == '}') {
          if (*p + 1 < s.size() && s[*p + 1] == '}') {
            text.push_back('}');
            *p += 2;
            continue;
          }
          return err("unescaped '}' in attribute value");
        }
        text.push_back(c);
        (*p)++;
      }
      if (!text.empty()) {
        attr->children.push_back(
            MakeLiteral(AtomicValue::String(std::move(text))));
      }
      // Attribute value templates: multiple pieces concatenate WITHOUT
      // separators, while items within one enclosed piece space-join.
      if (attr->children.size() > 1) {
        std::vector<ExprPtr> pieces;
        for (ExprPtr& piece : attr->children) {
          if (piece->kind == ExprKind::kLiteral) {
            pieces.push_back(std::move(piece));
          } else {
            pieces.push_back(MakeCall1("fs:avt-piece", std::move(piece)));
          }
        }
        attr->children.clear();
        attr->children.push_back(MakeCall(Symbol("fn:concat"), std::move(pieces)));
      }
      e->children.push_back(std::move(attr));
    }

    // Content.
    std::string text;
    auto flush_text = [&] {
      if (text.empty()) return;
      // Boundary whitespace is stripped unless `declare boundary-space
      // preserve` is in effect.
      if (boundary_space_preserve_ || !IsAllXmlSpace(text)) {
        ExprPtr t = MakeExpr(ExprKind::kCompText);
        t->children.push_back(MakeLiteral(AtomicValue::String(text)));
        e->children.push_back(std::move(t));
      }
      text.clear();
    };
    while (true) {
      if (*p >= s.size()) return err("unterminated element content");
      char c = s[*p];
      if (c == '<') {
        if (s.compare(*p, 2, "</") == 0) {
          flush_text();
          *p += 2;
          size_t estart = *p;
          while (*p < s.size() && name_char(s[*p])) (*p)++;
          if (Symbol(s.substr(estart, *p - estart)) != name) {
            return err("mismatched end tag");
          }
          skip_ws();
          if (*p >= s.size() || s[*p] != '>') return err("malformed end tag");
          (*p)++;
          return e;
        }
        if (s.compare(*p, 4, "<!--") == 0) {
          flush_text();
          size_t end = s.find("-->", *p + 4);
          if (end == std::string_view::npos) return err("unterminated comment");
          ExprPtr cm = MakeExpr(ExprKind::kCompComment);
          cm->children.push_back(MakeLiteral(
              AtomicValue::String(std::string(s.substr(*p + 4, end - *p - 4)))));
          e->children.push_back(std::move(cm));
          *p = end + 3;
          continue;
        }
        if (s.compare(*p, 9, "<![CDATA[") == 0) {
          size_t end = s.find("]]>", *p + 9);
          if (end == std::string_view::npos) return err("unterminated CDATA");
          text.append(s.substr(*p + 9, end - *p - 9));
          *p = end + 3;
          continue;
        }
        flush_text();
        XQC_ASSIGN_OR_RETURN(ExprPtr child, ParseDirElem(p));
        e->children.push_back(std::move(child));
        continue;
      }
      if (c == '{') {
        if (*p + 1 < s.size() && s[*p + 1] == '{') {
          text.push_back('{');
          *p += 2;
          continue;
        }
        flush_text();
        (*p)++;
        XQC_ASSIGN_OR_RETURN(ExprPtr inner, ParseEnclosed(p));
        e->children.push_back(std::move(inner));
        continue;
      }
      if (c == '}') {
        if (*p + 1 < s.size() && s[*p + 1] == '}') {
          text.push_back('}');
          *p += 2;
          continue;
        }
        return err("unescaped '}' in element content");
      }
      if (c == '&') {
        size_t semi = s.find(';', *p);
        if (semi == std::string_view::npos) return err("unterminated entity");
        std::string_view ent = s.substr(*p + 1, semi - *p - 1);
        if (ent == "lt") text.push_back('<');
        else if (ent == "gt") text.push_back('>');
        else if (ent == "amp") text.push_back('&');
        else if (ent == "quot") text.push_back('"');
        else if (ent == "apos") text.push_back('\'');
        else return err("unknown entity");
        *p = semi + 1;
        continue;
      }
      text.push_back(c);
      (*p)++;
    }
  }

  /// Parses an enclosed expression `{ ... }` starting just after '{';
  /// leaves *p just after the matching '}'.
  Result<ExprPtr> ParseEnclosed(size_t* p) {
    lex_.SetPos(*p);
    XQC_RETURN_IF_ERROR(Init());
    XQC_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!Is(TokKind::kRBrace)) return Err("expected '}'");
    *p = cur_.offset + 1;  // resume character-level parsing after '}'
    return e;
  }

  // ---- sequence types -------------------------------------------------------

  Result<SequenceType> ParseSequenceType() {
    if (IsName("empty-sequence") && PeekIs(TokKind::kLParen)) {
      XQC_RETURN_IF_ERROR(Advance());
      XQC_RETURN_IF_ERROR(Advance());
      XQC_RETURN_IF_ERROR(Expect(TokKind::kRParen, "')'"));
      return SequenceType::Empty();
    }
    ItemTest test;
    if (Is(TokKind::kName) && PeekIs(TokKind::kLParen) &&
        IsKindTestName(cur_.text)) {
      XQC_ASSIGN_OR_RETURN(test, ParseKindTest());
    } else if (Is(TokKind::kName)) {
      AtomicType at;
      if (!AtomicTypeFromName(cur_.text, &at)) {
        return Err("unknown atomic type '" + cur_.text + "'");
      }
      test = ItemTest::Atomic(at);
      XQC_RETURN_IF_ERROR(Advance());
    } else {
      return Err("expected a sequence type");
    }
    SequenceType st = SequenceType::One(test);
    if (Is(TokKind::kQuestion)) {
      st.occ = Occurrence::kOptional;
      XQC_RETURN_IF_ERROR(Advance());
    } else if (Is(TokKind::kStar)) {
      st.occ = Occurrence::kStar;
      XQC_RETURN_IF_ERROR(Advance());
    } else if (Is(TokKind::kPlus)) {
      st.occ = Occurrence::kPlus;
      XQC_RETURN_IF_ERROR(Advance());
    }
    return st;
  }

  Result<SequenceType> ParseSingleType() {
    if (!Is(TokKind::kName)) return Err("expected an atomic type");
    AtomicType at;
    if (!AtomicTypeFromName(cur_.text, &at)) {
      return Err("unknown atomic type '" + cur_.text + "'");
    }
    XQC_RETURN_IF_ERROR(Advance());
    SequenceType st = SequenceType::One(ItemTest::Atomic(at));
    if (Is(TokKind::kQuestion)) {
      st.occ = Occurrence::kOptional;
      XQC_RETURN_IF_ERROR(Advance());
    }
    return st;
  }

  Lexer lex_;
  QueryGuard* guard_ = nullptr;  // optional; checked once per token
  int depth_ = 0;                // ParseExprSingle + ParseDirElem nesting
  Token cur_;
  Token peek_;
  Status peek_status_;   // deferred scan error for a kError peek token
  size_t peek_pos_ = 0;  // lexer offset where peek_ was scanned
  bool boundary_space_preserve_ = false;  // declare boundary-space preserve
};

}  // namespace

Result<Query> ParseXQuery(std::string_view text, QueryGuard* guard) {
  Parser p(text, guard);
  return p.ParseQuery();
}

Result<ExprPtr> ParseXQueryExpr(std::string_view text) {
  Parser p(text);
  return p.ParseSingleExpr();
}

Result<SequenceType> ParseSequenceTypeString(std::string_view text) {
  Parser p(text);
  return p.ParseSequenceTypeOnly();
}

}  // namespace xqc
