#include "src/xquery/ast.h"

#include <sstream>

namespace xqc {

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "plus";
    case ArithOp::kSub: return "minus";
    case ArithOp::kMul: return "times";
    case ArithOp::kDiv: return "div";
    case ArithOp::kIDiv: return "idiv";
    case ArithOp::kMod: return "mod";
  }
  return "plus";
}

ExprPtr MakeExpr(ExprKind kind) {
  auto e = std::make_shared<Expr>();
  e->kind = kind;
  return e;
}

ExprPtr MakeLiteral(AtomicValue v) {
  ExprPtr e = MakeExpr(ExprKind::kLiteral);
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeVarRef(Symbol name) {
  ExprPtr e = MakeExpr(ExprKind::kVarRef);
  e->name = name;
  return e;
}

ExprPtr MakeCall(Symbol fn, std::vector<ExprPtr> args) {
  ExprPtr e = MakeExpr(ExprKind::kFunctionCall);
  e->name = fn;
  e->children = std::move(args);
  return e;
}

ExprPtr MakeCall1(const char* fn, ExprPtr a) {
  return MakeCall(Symbol(fn), {std::move(a)});
}

ExprPtr MakeCall2(const char* fn, ExprPtr a, ExprPtr b) {
  return MakeCall(Symbol(fn), {std::move(a), std::move(b)});
}

namespace {

void Print(const Expr& e, std::ostringstream& os) {
  auto child = [&](size_t i) { Print(*e.children[i], os); };
  auto list = [&](const char* sep) {
    for (size_t i = 0; i < e.children.size(); i++) {
      if (i > 0) os << sep;
      child(i);
    }
  };
  switch (e.kind) {
    case ExprKind::kLiteral:
      if (e.literal.type() == AtomicType::kString ||
          e.literal.type() == AtomicType::kUntypedAtomic) {
        os << '"' << e.literal.Lexical() << '"';
      } else {
        os << e.literal.Lexical();
      }
      return;
    case ExprKind::kEmptySeq: os << "()"; return;
    case ExprKind::kVarRef: os << "$" << e.name.str(); return;
    case ExprKind::kContextItem: os << "."; return;
    case ExprKind::kSequence:
      os << "(";
      list(", ");
      os << ")";
      return;
    case ExprKind::kRange:
      child(0);
      os << " to ";
      child(1);
      return;
    case ExprKind::kArith:
      os << "(";
      child(0);
      os << " " << ArithOpName(e.arith_op) << " ";
      child(1);
      os << ")";
      return;
    case ExprKind::kUnaryMinus:
      os << "-(";
      child(0);
      os << ")";
      return;
    case ExprKind::kValueComp:
      os << "(";
      child(0);
      os << " " << CompOpName(e.comp_op) << " ";
      child(1);
      os << ")";
      return;
    case ExprKind::kGeneralComp:
      os << "(";
      child(0);
      os << " =[" << CompOpName(e.comp_op) << "] ";
      child(1);
      os << ")";
      return;
    case ExprKind::kNodeComp:
      os << "(";
      child(0);
      os << (e.node_comp_op == NodeCompOp::kIs
                 ? " is "
                 : e.node_comp_op == NodeCompOp::kBefore ? " << " : " >> ");
      child(1);
      os << ")";
      return;
    case ExprKind::kAnd:
      os << "(";
      list(" and ");
      os << ")";
      return;
    case ExprKind::kOr:
      os << "(";
      list(" or ");
      os << ")";
      return;
    case ExprKind::kIf:
      os << "if (";
      child(0);
      os << ") then ";
      child(1);
      os << " else ";
      child(2);
      return;
    case ExprKind::kFLWOR: {
      for (const Clause& c : e.clauses) {
        switch (c.kind) {
          case Clause::Kind::kFor:
            os << "for $" << c.var.str();
            if (!c.pos_var.empty()) os << " at $" << c.pos_var.str();
            if (c.type) os << " as " << c.type->ToString();
            os << " in ";
            Print(*c.expr, os);
            os << " ";
            break;
          case Clause::Kind::kLet:
            os << "let $" << c.var.str();
            if (c.type) os << " as " << c.type->ToString();
            os << " := ";
            Print(*c.expr, os);
            os << " ";
            break;
          case Clause::Kind::kWhere:
            os << "where ";
            Print(*c.expr, os);
            os << " ";
            break;
          case Clause::Kind::kOrderBy:
            os << (c.stable ? "stable order by " : "order by ");
            for (size_t i = 0; i < c.specs.size(); i++) {
              if (i > 0) os << ", ";
              Print(*c.specs[i].key, os);
              if (c.specs[i].descending) os << " descending";
            }
            os << " ";
            break;
        }
      }
      os << "return ";
      Print(*e.ret, os);
      return;
    }
    case ExprKind::kQuantified: {
      os << (e.quant == QuantKind::kSome ? "some" : "every");
      for (size_t i = 0; i < e.clauses.size(); i++) {
        os << (i == 0 ? " " : ", ") << "$" << e.clauses[i].var.str() << " in ";
        Print(*e.clauses[i].expr, os);
      }
      os << " satisfies ";
      Print(*e.ret, os);
      return;
    }
    case ExprKind::kTypeswitch:
      os << "typeswitch (";
      child(0);
      os << ")";
      for (const TypeswitchCase& c : e.cases) {
        if (c.is_default) {
          os << " default";
        } else {
          os << " case";
        }
        if (!c.var.empty()) os << " $" << c.var.str();
        if (!c.is_default) os << " as " << c.type.ToString();
        os << " return ";
        Print(*c.body, os);
      }
      return;
    case ExprKind::kInstanceOf:
      child(0);
      os << " instance of " << e.stype.ToString();
      return;
    case ExprKind::kCastAs:
      child(0);
      os << " cast as " << e.stype.ToString();
      return;
    case ExprKind::kCastableAs:
      child(0);
      os << " castable as " << e.stype.ToString();
      return;
    case ExprKind::kTreatAs:
      child(0);
      os << " treat as " << e.stype.ToString();
      return;
    case ExprKind::kPath:
      child(0);
      os << "/";
      child(1);
      return;
    case ExprKind::kAxisStep:
      os << AxisName(e.axis) << "::" << e.node_test.ToString();
      return;
    case ExprKind::kFilter:
      child(0);
      os << "[";
      child(1);
      os << "]";
      return;
    case ExprKind::kFunctionCall:
      os << e.name.str() << "(";
      list(", ");
      os << ")";
      return;
    case ExprKind::kCompElement:
      os << "element " << (e.name.empty() ? "{...}" : e.name.str()) << " {";
      list(", ");
      os << "}";
      return;
    case ExprKind::kCompAttribute:
      os << "attribute " << (e.name.empty() ? "{...}" : e.name.str()) << " {";
      list(", ");
      os << "}";
      return;
    case ExprKind::kCompText:
      os << "text {";
      list(", ");
      os << "}";
      return;
    case ExprKind::kCompComment:
      os << "comment {";
      list(", ");
      os << "}";
      return;
    case ExprKind::kCompPI:
      os << "processing-instruction " << e.name.str() << " {";
      list(", ");
      os << "}";
      return;
    case ExprKind::kCompDocument:
      os << "document {";
      list(", ");
      os << "}";
      return;
    case ExprKind::kValidate:
      os << "validate {";
      child(0);
      os << "}";
      return;
    case ExprKind::kUnion:
      os << "(";
      list(" union ");
      os << ")";
      return;
    case ExprKind::kIntersect:
      os << "(";
      list(" intersect ");
      os << ")";
      return;
    case ExprKind::kExcept:
      os << "(";
      list(" except ");
      os << ")";
      return;
  }
}

}  // namespace

std::string ExprToString(const Expr& e) {
  std::ostringstream os;
  Print(e, os);
  return os.str();
}

namespace {

void FreeVarsRec(const Expr& e, std::set<Symbol> bound,
                 std::set<Symbol>* out) {
  switch (e.kind) {
    case ExprKind::kVarRef:
      if (bound.count(e.name) == 0) out->insert(e.name);
      return;
    case ExprKind::kAxisStep: {
      // A bare axis step implicitly reads the context item $fs:dot.
      Symbol dot("fs:dot");
      if (bound.count(dot) == 0) out->insert(dot);
      for (const ExprPtr& c : e.children) {
        if (c != nullptr) FreeVarsRec(*c, bound, out);
      }
      return;
    }
    case ExprKind::kFLWOR:
    case ExprKind::kQuantified: {
      for (const Clause& c : e.clauses) {
        if (c.expr != nullptr) FreeVarsRec(*c.expr, bound, out);
        for (const Clause::OrderSpec& s : c.specs) {
          FreeVarsRec(*s.key, bound, out);
        }
        if (c.kind == Clause::Kind::kFor || c.kind == Clause::Kind::kLet) {
          bound.insert(c.var);
          if (!c.pos_var.empty()) bound.insert(c.pos_var);
        }
      }
      if (e.ret != nullptr) FreeVarsRec(*e.ret, bound, out);
      return;
    }
    case ExprKind::kTypeswitch: {
      FreeVarsRec(*e.children[0], bound, out);
      for (const TypeswitchCase& c : e.cases) {
        std::set<Symbol> case_bound = bound;
        if (!c.var.empty()) case_bound.insert(c.var);
        FreeVarsRec(*c.body, case_bound, out);
      }
      if (!e.name.empty()) {
        // Normalized typeswitch: the unified variable binds every branch.
      }
      return;
    }
    default: {
      for (const ExprPtr& c : e.children) {
        if (c != nullptr) FreeVarsRec(*c, bound, out);
      }
      if (e.ret != nullptr) FreeVarsRec(*e.ret, bound, out);
      if (e.name_expr != nullptr) FreeVarsRec(*e.name_expr, bound, out);
      for (const Clause& c : e.clauses) {
        if (c.expr != nullptr) FreeVarsRec(*c.expr, bound, out);
      }
      return;
    }
  }
}

}  // namespace

void CollectFreeVars(const Expr& e, std::set<Symbol>* out) {
  FreeVarsRec(e, {}, out);
}

}  // namespace xqc
