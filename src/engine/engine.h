// xqc public API: the complete algebraic XQuery engine.
//
// A query is prepared once (parse -> normalize to Core -> compile to the
// Table 1 algebra -> Figure 5 rewritings) and can then be executed against
// any dynamic context. Engine options select the paper's evaluation
// configurations:
//
//   use_algebra=false                      "No algebra" (Table 3 row 1)
//   use_algebra, optimize=false            "Algebra + No optim"
//   optimize, join=kNestedLoop             "Optim + nested-loop joins"
//   optimize, join=kHash (default)         "Optim + XQuery joins"
//
// Orthogonally, exec_mode picks the physical iteration model for the tuple
// algebra: kStreaming (pull-based iterators with early termination, the
// default) or kMaterialize (full table per operator). Results are identical.
//
// Example:
//   xqc::Engine engine;
//   auto q = engine.Prepare("for $x in (1,2,3) return $x * 2");
//   xqc::DynamicContext ctx;
//   auto result = q.value().Execute(&ctx);
#ifndef XQC_ENGINE_ENGINE_H_
#define XQC_ENGINE_ENGINE_H_

#include <memory>
#include <mutex>
#include <string>

#include "src/base/guard.h"
#include "src/compile/compiler.h"
#include "src/interp/interpreter.h"
#include "src/opt/optimizer.h"
#include "src/opt/projection_infer.h"
#include "src/runtime/eval.h"
#include "src/xquery/ast.h"

namespace xqc {

/// Physical execution mode for the tuple algebra.
enum class ExecMode {
  /// Pull-based iterator execution (iterator.h): operators stream tuple
  /// at a time and early-terminating consumers (fn:exists, [1] heads,
  /// fn:subsequence, quantifiers) stop pulling the input.
  kStreaming,
  /// The original mode: every operator materializes its full table.
  kMaterialize,
};

struct EngineOptions {
  /// false: evaluate the normalized Core AST directly (baseline).
  bool use_algebra = true;
  /// Apply the Figure 5 rewritings.
  bool optimize = true;
  /// Physical join algorithm for Join / LOuterJoin.
  JoinImpl join_impl = JoinImpl::kHash;
  /// Iterator vs materializing execution (results are identical; see
  /// ExecOptions::streaming for the error-laziness caveat).
  ExecMode exec_mode = ExecMode::kStreaming;
  /// Baseline / oracle mode: TreeJoin always sorts its output, disabling
  /// both the static DDO annotations and the runtime sort elisions.
  bool force_sort = false;
  /// Lazily build and use per-document structural indexes (doc_index.h)
  /// for descendant / following / preceding axis steps.
  bool use_doc_index = true;
  /// Resolve fn:doc through the shared DocumentStore (bounded LRU cache,
  /// singleflight loading, retry, quarantine — src/store). Off = oracle
  /// ablation: every execution parses documents directly from disk.
  bool use_doc_store = true;
  /// Allow loads to use the store's persistent snapshot tier (a no-op
  /// unless the store has a snapshot_dir). Off = oracle ablation
  /// (xqc_shell --no-snapshots): every cold load re-parses the source,
  /// which must produce byte-identical results.
  bool use_snapshots = true;
  /// Tuples moved per batch through the streaming iterators
  /// (ExecOptions::batch_size). 1 = the tuple-at-a-time oracle; larger
  /// values amortize virtual dispatch and guard checks over full-
  /// consumption pipelines while producing byte-identical results,
  /// identical ExecStats counters, and identical guard trip points.
  /// Values < 1 are treated as 1. Ignored by ExecMode::kMaterialize and
  /// the interpreter.
  int batch_size = 1024;
  /// Maximum concurrent partitions for intra-query parallelism
  /// (xqc_shell --parallelism). 1 (default) = strictly serial, the
  /// byte-identical oracle. With N > 1, plans whose leading scan is
  /// fn:collection over a pointwise pipeline (src/opt/parallel_infer.h)
  /// are partitioned by member document — large single documents
  /// additionally by pre-order ranges — and recombined with a doc-order-
  /// preserving ordinal merge (src/runtime/parallel.h). Output is
  /// byte-identical to the serial run at every N; ineligible plans run
  /// serially (ExecStats::parallel_fallbacks). Values < 1 are treated
  /// as 1.
  int parallelism = 1;
  /// Strict fn:collection mode: any member document failure fails the
  /// whole collection scan. Default (lenient) skips quarantined /
  /// malformed / vanished members (see DynamicContext::ResolveCollection).
  bool strict_collections = false;
  /// Resource limits enforced during Execute / ExecuteStream (0 fields are
  /// unlimited). Trips surface as Status::ResourceExhausted with the
  /// XQC00xx codes in src/base/guard.h.
  GuardLimits limits = {};
  /// Cooperative cancellation: create with CancellationToken::Make(), keep
  /// a copy, and call RequestCancel() from any thread. The running query
  /// fails with XQC0002 at its next guard check.
  CancellationToken cancel = {};
  /// Deterministic guard fault injection (tests only).
  GuardFaultInjector fault_injector = {};
};

/// An incrementally pulled query result (PreparedQuery::ExecuteStream).
/// Holds the executing plan; the DynamicContext passed to ExecuteStream
/// must outlive it. Pulling fewer items than the full result leaves the
/// unconsumed remainder unevaluated in streaming mode.
class ResultStream {
 public:
  /// Produces the next result item. Returns false at end of stream.
  Result<bool> Next(Item* out);

  /// Pulls and returns every remaining item.
  Result<Sequence> Drain();

  /// Statistics accumulated so far (partial until the stream ends).
  const ExecStats& stats() const;

 private:
  friend class PreparedQuery;
  ResultStream() = default;
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

/// A compiled, optimized, executable query.
///
/// Threading contract (see DESIGN.md "Threading model"): a PreparedQuery is
/// immutable after Prepare and may be shared freely — Execute /
/// ExecuteToString / ExecuteStream may be called concurrently from any
/// number of threads, each with its own DynamicContext. The DynamicContext
/// and ResultStream themselves are single-thread objects.
class PreparedQuery {
 public:
  /// Evaluates against a dynamic context (documents, schema, variables).
  Result<Sequence> Execute(DynamicContext* ctx) const;

  /// Evaluates with per-execution guard configuration overriding the
  /// limits/cancellation baked in at Prepare time. This is the serving
  /// layer's entry point: one shared immutable plan, per-request budgets
  /// and a per-request cancellation token.
  Result<Sequence> Execute(DynamicContext* ctx, const GuardLimits& limits,
                           CancellationToken cancel,
                           const GuardFaultInjector& injector = {}) const;

  /// Evaluates and serializes the result.
  Result<std::string> ExecuteToString(DynamicContext* ctx) const;

  /// Opens a pull-based result cursor. With ExecMode::kStreaming and an
  /// algebraic plan the result is computed on demand; otherwise the full
  /// result is computed here and buffered behind the same interface.
  Result<ResultStream> ExecuteStream(DynamicContext* ctx) const;

  /// The (optimized, if enabled) algebraic plan in the paper's notation.
  std::string ExplainPlan(bool pretty = true) const;
  /// The plan before optimization.
  std::string ExplainUnoptimizedPlan(bool pretty = true) const;

  const CompiledQuery& compiled() const { return *compiled_; }
  const Query& core() const { return *core_; }
  const OptimizerStats& optimizer_stats() const { return opt_stats_; }
  /// Statistics from the most recent completed Execute call (by any thread;
  /// copies of a PreparedQuery share one stats slot). Returned by value —
  /// concurrent executors publish whole snapshots under a lock, so a reader
  /// never observes a half-written ExecStats.
  ExecStats last_exec_stats() const {
    std::lock_guard<std::mutex> lock(exec_stats_->mu);
    return exec_stats_->stats;
  }

  /// Static projection analysis (TreeProject paths per document variable);
  /// apply with ProjectTree to shrink input documents before Execute.
  ProjectionAnalysis InferProjection() const {
    return InferProjectionPaths(*parsed_);
  }

 private:
  friend class Engine;
  std::shared_ptr<Query> parsed_;            // surface AST (projection)
  std::shared_ptr<Query> core_;              // normalized Core (interpreter)
  std::shared_ptr<CompiledQuery> compiled_;  // optimized plan
  std::shared_ptr<CompiledQuery> unoptimized_;
  EngineOptions options_;
  OptimizerStats opt_stats_;
  /// Shared across copies; written once per execution under the mutex so
  /// concurrent Execute calls on a shared plan don't race (the last writer
  /// wins, as "most recent" implies).
  struct SyncStats {
    std::mutex mu;
    ExecStats stats;
  };
  std::shared_ptr<SyncStats> exec_stats_ = std::make_shared<SyncStats>();
};

/// Stateless facade over the compilation pipeline. Immutable after
/// construction; Prepare/Execute are const and safe to call concurrently
/// from any number of threads (each Prepare returns an independent
/// PreparedQuery).
class Engine {
 public:
  Engine() = default;
  explicit Engine(EngineOptions options) : options_(options) {}

  /// Parses, normalizes, compiles, and optimizes a query module.
  Result<PreparedQuery> Prepare(const std::string& query_text) const;
  Result<PreparedQuery> Prepare(const std::string& query_text,
                                const EngineOptions& options) const;

  /// One-shot convenience: prepare + execute + serialize.
  Result<std::string> Execute(const std::string& query_text,
                              DynamicContext* ctx) const;

  const EngineOptions& options() const { return options_; }

 private:
  EngineOptions options_;
};

}  // namespace xqc

#endif  // XQC_ENGINE_ENGINE_H_
