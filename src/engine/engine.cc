#include "src/engine/engine.h"

#include "src/opt/ddo_infer.h"
#include "src/opt/parallel_infer.h"
#include "src/runtime/parallel.h"
#include "src/xml/serializer.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqc {

namespace {

ExecOptions ToExecOptions(const EngineOptions& o) {
  ExecOptions exec;
  exec.join_impl = o.join_impl;
  exec.streaming = o.exec_mode == ExecMode::kStreaming;
  exec.force_sort = o.force_sort;
  exec.use_doc_index = o.use_doc_index;
  exec.batch_size = o.batch_size < 1 ? 1 : o.batch_size;
  return exec;
}

}  // namespace

Result<Sequence> PreparedQuery::Execute(DynamicContext* ctx) const {
  return Execute(ctx, options_.limits, options_.cancel,
                 options_.fault_injector);
}

Result<Sequence> PreparedQuery::Execute(
    DynamicContext* ctx, const GuardLimits& limits, CancellationToken cancel,
    const GuardFaultInjector& injector) const {
  // One guard per top-level execution. ScopedGuard installs `local` only if
  // the context has no guard yet, so a nested Execute (e.g. the buffered
  // ExecuteStream fallback below) charges the outermost query's budget.
  QueryGuard local(limits, std::move(cancel), injector);
  ScopedGuard scope(ctx, &local, options_.use_doc_store,
                    options_.use_snapshots, options_.strict_collections);
  QueryGuard* guard = ctx->guard();
  // Stats are accumulated in a local and published once at the end, so
  // concurrent Execute calls on a shared PreparedQuery never race on the
  // shared last_exec_stats slot.
  ExecStats stats;
  Result<Sequence> r = [&]() -> Result<Sequence> {
    if (!options_.use_algebra) {
      Interpreter interp(core_.get(), ctx);
      return interp.Run();
    }
    if (options_.parallelism > 1) {
      Result<Sequence> par{Sequence{}};
      if (TryExecuteParallel(*compiled_, ctx, ToExecOptions(options_),
                             options_.parallelism, &stats, &par)) {
        return par;
      }
      // Statically ineligible: run the normal serial path below.
      stats.parallel_fallbacks = 1;
    }
    PlanEvaluator eval(compiled_.get(), ctx, ToExecOptions(options_));
    Result<Sequence> inner = eval.Run();
    int64_t fallbacks = stats.parallel_fallbacks;
    stats = eval.stats();
    stats.parallel_fallbacks = fallbacks;
    return inner;
  }();
  stats.guard_checks = guard->checks();
  stats.guard_steps = guard->steps();
  stats.peak_memory_bytes = guard->peak_memory_bytes();
  // Add (not assign): the parallel path pre-merges partition workers'
  // store counters; the context holds the driver-side ones.
  stats.doc_store.Add(ctx->doc_store_stats());
  {
    std::lock_guard<std::mutex> lock(exec_stats_->mu);
    exec_stats_->stats = stats;
  }
  if (!r.ok()) return r;
  XQC_RETURN_IF_ERROR(
      guard->AccountOutput(static_cast<int64_t>(r.value().size())));
  return r;
}

struct ResultStream::Impl {
  // Member order matters: the guard must be installed into the context
  // (scope) before PlanEvaluator caches ctx->guard() in its constructor.
  Impl(std::shared_ptr<CompiledQuery> q, DynamicContext* ctx,
       const EngineOptions& options)
      : query(std::move(q)),
        guard(options.limits, options.cancel, options.fault_injector),
        scope(ctx, &guard, options.use_doc_store, options.use_snapshots,
              options.strict_collections),
        active(ctx->guard()),
        context(ctx),
        eval(query.get(), ctx, ToExecOptions(options)) {}

  std::shared_ptr<CompiledQuery> query;  // keeps the plan alive
  QueryGuard guard;                      // lives as long as the stream
  ScopedGuard scope;                     // installs guard unless one exists
  QueryGuard* active;                    // the guard actually charged
  DynamicContext* context;               // for per-execution store stats
  PlanEvaluator eval;
  bool streaming = false;
  TupleIteratorPtr iter;                 // streaming: the top tuple stream
  const Op* per_tuple = nullptr;         // streaming: MapToItem's item plan
  Sequence buf;                          // current tuple's items / full result
  size_t pos = 0;
  bool done = false;
  ExecStats buffered_stats;              // fallback (non-streaming) stats
  ExecStats stats_cache;                 // streaming: merged snapshot
};

Result<bool> ResultStream::Next(Item* out) {
  Impl& im = *impl_;
  while (im.pos >= im.buf.size()) {
    if (!im.streaming || im.done) return false;
    // The incremental cursor always pulls tuple-at-a-time, whatever
    // EngineOptions::batch_size says: its demand is one tuple, and
    // prefetching a batch here would evaluate input a caller that stops
    // early never asked for (and delay cancellation by a batch).
    // Unamortized check per tuple: a RequestCancel between pulls is honored
    // on the very next pull, not after kCheckInterval more steps.
    XQC_RETURN_IF_ERROR(im.active->CheckNow());
    Tuple t;
    XQC_ASSIGN_OR_RETURN(bool has, im.iter->Next(&t));
    if (!has) {
      im.done = true;
      return false;
    }
    EvalCtx dc;
    dc.tuple = &t;
    XQC_ASSIGN_OR_RETURN(im.buf, im.eval.EvalItems(*im.per_tuple, dc));
    im.pos = 0;
  }
  // The buffered fallback already charged the whole result in Execute().
  if (im.streaming) XQC_RETURN_IF_ERROR(im.active->AccountOutput(1));
  *out = im.buf[im.pos++];
  return true;
}

Result<Sequence> ResultStream::Drain() {
  Sequence out;
  Item item;
  while (true) {
    XQC_ASSIGN_OR_RETURN(bool has, Next(&item));
    if (!has) return out;
    out.push_back(std::move(item));
  }
}

const ExecStats& ResultStream::stats() const {
  Impl& im = *impl_;
  if (!im.streaming) return im.buffered_stats;
  im.stats_cache = im.eval.stats();
  im.stats_cache.guard_checks = im.active->checks();
  im.stats_cache.guard_steps = im.active->steps();
  im.stats_cache.peak_memory_bytes = im.active->peak_memory_bytes();
  im.stats_cache.doc_store = im.context->doc_store_stats();
  return im.stats_cache;
}

Result<ResultStream> PreparedQuery::ExecuteStream(DynamicContext* ctx) const {
  ResultStream rs;
  rs.impl_ = std::make_shared<ResultStream::Impl>(compiled_, ctx, options_);
  // Incremental pulling needs an algebraic MapToItem top: anything else
  // (interpreter mode, materializing mode, a non-tuple top plan) computes
  // the full result now and serves it from the buffer.
  if (options_.use_algebra && options_.exec_mode == ExecMode::kStreaming &&
      compiled_->plan->kind == OpKind::kMapToItem) {
    rs.impl_->streaming = true;
    XQC_RETURN_IF_ERROR(rs.impl_->eval.PrepareGlobals());
    XQC_ASSIGN_OR_RETURN(
        rs.impl_->iter,
        rs.impl_->eval.OpenTable(*compiled_->plan->inputs[0], EvalCtx{}));
    rs.impl_->per_tuple = compiled_->plan->deps[0].get();
    return rs;
  }
  XQC_ASSIGN_OR_RETURN(rs.impl_->buf, Execute(ctx));
  rs.impl_->buffered_stats = last_exec_stats();
  return rs;
}

Result<std::string> PreparedQuery::ExecuteToString(DynamicContext* ctx) const {
  XQC_ASSIGN_OR_RETURN(Sequence s, Execute(ctx));
  return SerializeSequence(s);
}

std::string PreparedQuery::ExplainPlan(bool pretty) const {
  return OpToString(*compiled_->plan, pretty);
}

std::string PreparedQuery::ExplainUnoptimizedPlan(bool pretty) const {
  return OpToString(*unoptimized_->plan, pretty);
}

Result<PreparedQuery> Engine::Prepare(const std::string& query_text) const {
  return Prepare(query_text, options_);
}

Result<std::string> Engine::Execute(const std::string& query_text,
                                    DynamicContext* ctx) const {
  XQC_ASSIGN_OR_RETURN(PreparedQuery q, Prepare(query_text, options_));
  return q.ExecuteToString(ctx);
}

Result<PreparedQuery> Engine::Prepare(const std::string& query_text,
                                      const EngineOptions& options) const {
  // Parsing is also guarded (deadline / cancellation, checked per token) so
  // a hostile query text cannot pin the thread before execution starts.
  QueryGuard parse_guard(options.limits, options.cancel);
  XQC_ASSIGN_OR_RETURN(Query parsed, ParseXQuery(query_text, &parse_guard));
  XQC_ASSIGN_OR_RETURN(Query core, NormalizeQuery(parsed));
  HoistLeadingLets(&core);
  if (options.optimize) HoistNestedReturnBlocks(&core);

  PreparedQuery out;
  out.parsed_ = std::make_shared<Query>(std::move(parsed));
  out.options_ = options;
  out.core_ = std::make_shared<Query>(std::move(core));
  XQC_ASSIGN_OR_RETURN(CompiledQuery compiled, CompileQuery(*out.core_));
  out.unoptimized_ = std::make_shared<CompiledQuery>(compiled);
  // CompiledQuery holds shared_ptr plans; deep-copy before optimizing so
  // the unoptimized plan stays intact.
  CompiledQuery opt;
  opt.plan = CloneOp(*compiled.plan);
  for (const auto& [name, plan] : compiled.globals) {
    opt.globals.emplace_back(name, plan == nullptr ? nullptr : CloneOp(*plan));
  }
  for (const auto& [name, fn] : compiled.functions) {
    CompiledFunction f = fn;
    f.plan = CloneOp(*fn.plan);
    opt.functions.emplace(name, std::move(f));
  }
  if (options.optimize) {
    OptimizeQuery(&opt, &out.opt_stats_);
  }
  // Sound regardless of the rewritings above (runs on whatever plan shape
  // reaches execution); force_sort is honored at runtime, so annotating is
  // harmless there too.
  AnnotateDdoQuery(&opt);
  // Intra-query parallelism eligibility (consumed when EngineOptions::
  // parallelism > 1; the stored Op pointers survive the move below because
  // plans are held by shared_ptr).
  AnalyzeParallel(&opt);
  out.compiled_ = std::make_shared<CompiledQuery>(std::move(opt));
  return out;
}

}  // namespace xqc
