#include "src/engine/engine.h"

#include "src/xml/serializer.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqc {

Result<Sequence> PreparedQuery::Execute(DynamicContext* ctx) const {
  if (!options_.use_algebra) {
    Interpreter interp(core_.get(), ctx);
    return interp.Run();
  }
  ExecOptions exec;
  exec.join_impl = options_.join_impl;
  PlanEvaluator eval(compiled_.get(), ctx, exec);
  Result<Sequence> r = eval.Run();
  exec_stats_ = eval.stats();
  return r;
}

Result<std::string> PreparedQuery::ExecuteToString(DynamicContext* ctx) const {
  XQC_ASSIGN_OR_RETURN(Sequence s, Execute(ctx));
  return SerializeSequence(s);
}

std::string PreparedQuery::ExplainPlan(bool pretty) const {
  return OpToString(*compiled_->plan, pretty);
}

std::string PreparedQuery::ExplainUnoptimizedPlan(bool pretty) const {
  return OpToString(*unoptimized_->plan, pretty);
}

Result<PreparedQuery> Engine::Prepare(const std::string& query_text) const {
  return Prepare(query_text, options_);
}

Result<std::string> Engine::Execute(const std::string& query_text,
                                    DynamicContext* ctx) const {
  XQC_ASSIGN_OR_RETURN(PreparedQuery q, Prepare(query_text, options_));
  return q.ExecuteToString(ctx);
}

Result<PreparedQuery> Engine::Prepare(const std::string& query_text,
                                      const EngineOptions& options) const {
  XQC_ASSIGN_OR_RETURN(Query parsed, ParseXQuery(query_text));
  XQC_ASSIGN_OR_RETURN(Query core, NormalizeQuery(parsed));
  HoistLeadingLets(&core);
  if (options.optimize) HoistNestedReturnBlocks(&core);

  PreparedQuery out;
  out.parsed_ = std::make_shared<Query>(std::move(parsed));
  out.options_ = options;
  out.core_ = std::make_shared<Query>(std::move(core));
  XQC_ASSIGN_OR_RETURN(CompiledQuery compiled, CompileQuery(*out.core_));
  out.unoptimized_ = std::make_shared<CompiledQuery>(compiled);
  // CompiledQuery holds shared_ptr plans; deep-copy before optimizing so
  // the unoptimized plan stays intact.
  CompiledQuery opt;
  opt.plan = CloneOp(*compiled.plan);
  for (const auto& [name, plan] : compiled.globals) {
    opt.globals.emplace_back(name, plan == nullptr ? nullptr : CloneOp(*plan));
  }
  for (const auto& [name, fn] : compiled.functions) {
    CompiledFunction f = fn;
    f.plan = CloneOp(*fn.plan);
    opt.functions.emplace(name, std::move(f));
  }
  if (options.optimize) {
    OptimizeQuery(&opt, &out.opt_stats_);
  }
  out.compiled_ = std::make_shared<CompiledQuery>(std::move(opt));
  return out;
}

}  // namespace xqc
