// A lightweight XML Schema facility.
//
// The paper assumes schema-validated data: `validate { ... }` annotates
// nodes with type names that `element(*,Type)` tests consume (the Q8
// variant's USSeller / Auction types). We model the part of XML Schema
// those operators need: named element->type assignment rules (optionally
// refined by an attribute value), attribute->atomic-type rules (driving
// typed atomization), and a type-derivation hierarchy.
#ifndef XQC_TYPES_SCHEMA_H_
#define XQC_TYPES_SCHEMA_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/base/status.h"
#include "src/base/symbol.h"
#include "src/xml/item.h"

namespace xqc {

class Schema {
 public:
  /// Elements named `elem` (empty = any) validate to type `type`. If
  /// `attr` is non-empty the rule only applies when the element has that
  /// attribute with value `attr_value` (empty value = any value). More
  /// specific rules (with attribute condition) win over generic ones.
  void AddElementRule(Symbol elem, Symbol type, Symbol attr = Symbol(),
                      std::string attr_value = "");

  /// Attributes named `attr` on elements named `elem` (empty = any element)
  /// validate to the built-in atomic type `atomic` — their atomization then
  /// yields typed values instead of xdt:untypedAtomic.
  void AddAttributeRule(Symbol elem, Symbol attr, AtomicType atomic);

  /// Declares `derived` to derive (transitively) from `base`.
  void AddDerivation(Symbol derived, Symbol base);

  /// True iff `type` equals `base` or derives from it.
  bool DerivesFrom(Symbol type, Symbol base) const;

  /// Type assigned to an element node by the rules (empty if none apply).
  Symbol TypeForElement(const Node& n) const;

  /// Atomic type assigned to an attribute (false if no rule applies).
  bool TypeForAttribute(Symbol elem, Symbol attr, AtomicType* out) const;

  /// Validation: deep-copies `node` and annotates the copy (recursively)
  /// per the rules. The copy is finalized (fresh document order).
  Result<NodePtr> Validate(const NodePtr& node) const;

 private:
  struct ElemRule {
    Symbol elem, type, attr;
    std::string attr_value;
  };
  std::vector<ElemRule> elem_rules_;
  std::unordered_map<uint64_t, AtomicType> attr_rules_;
  std::unordered_map<Symbol, Symbol> base_of_;
};

}  // namespace xqc

#endif  // XQC_TYPES_SCHEMA_H_
