// XQuery comparison and casting semantics: atomization-based predicates with
// fs:convert-operand (Table 2 of the paper), overloaded op:equal / op:compare
// with numeric type promotion, and the promotion enumeration the hash join
// of Section 6 relies on.
#ifndef XQC_TYPES_COMPARE_H_
#define XQC_TYPES_COMPARE_H_

#include <utility>
#include <vector>

#include "src/base/status.h"
#include "src/xml/item.h"

namespace xqc {

/// Value-comparison operators.
enum class CompOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompOpName(CompOp op);  // "eq", "ne", ...

/// fs:convert-operand target type per Table 2, as a function of the two
/// operands' *types* only (the observation that makes an independent
/// hash-join build possible, Section 6):
///  - untyped vs untyped-or-string  -> xs:string
///  - untyped vs numeric            -> xs:double
///  - untyped vs any other type T   -> T
///  - typed first operand           -> unchanged (target = its own type)
AtomicType ConvertOperandTarget(AtomicType first, AtomicType second);

/// Applies fs:convert-operand: casts `x` to ConvertOperandTarget(x, y-type).
/// Error FORG0001 if the untyped value is not castable to the target.
Result<AtomicValue> ConvertOperand(const AtomicValue& x, AtomicType y_type);

/// True iff op:equal is defined on the pair of ORIGINAL types after
/// fs:convert-operand in both directions — the "line 25 / Table 2" check of
/// the paper's allMatches: one side untyped, both string-ish, both numeric,
/// or the same primitive type.
bool ConvertCompatible(AtomicType a, AtomicType b);

/// op:equal / op:compare dispatch on two atomic values that have already
/// been converted (or are directly comparable). Numeric pairs compare after
/// promotion to double; xs:string/xs:anyURI compare codepoint-wise; lexical
/// types compare by canonical lexical form. Errors with XPTY0004 on
/// incomparable types. Comparisons involving NaN follow IEEE semantics
/// (everything false except ne).
Result<bool> AtomicCompare(CompOp op, const AtomicValue& a,
                           const AtomicValue& b);

/// A full XQuery value comparison (op:eq etc.): applies fs:convert-operand
/// in both directions, then AtomicCompare.
Result<bool> ValueCompareAtomic(CompOp op, const AtomicValue& a,
                                const AtomicValue& b);

/// General comparison (=, !=, <, ...): atomizes both sequences and tests
/// existentially with fs:convert-operand semantics on each pair (the
/// normalized form shown in Sections 2 and 6).
Result<bool> GeneralCompare(CompOp op, const Sequence& xs, const Sequence& ys);

/// Cast / castable between atomic types (XPath 2.0 casting table, restricted
/// to the types we model). Untyped and string cast via the lexical rules.
Result<AtomicValue> CastTo(const AtomicValue& v, AtomicType target);
bool CastableTo(const AtomicValue& v, AtomicType target);

/// The hash key space of the Section 6 join: a (type, canonical value) pair.
/// Numeric keys are canonicalized through double so that promoted values
/// collide; -0.0 is folded into 0.0. NaN produces no keys (never equal).
struct JoinKey {
  AtomicType type;
  std::string canon;

  bool operator==(const JoinKey& o) const {
    return type == o.type && canon == o.canon;
  }
};

struct JoinKeyHash {
  size_t operator()(const JoinKey& k) const {
    return std::hash<std::string>()(k.canon) * 31 +
           static_cast<size_t>(k.type);
  }
};

/// Canonical xs:double join key (bit pattern, -0.0 folded); NaN callers
/// must skip beforehand.
JoinKey NumericJoinKey(double d);

/// promoteToSimpleTypes (Figure 6): all (type, value) pairs a join key can
/// be promoted to.
///  - untyped:  (xs:string, s) and, if the lexical form is a number,
///              (xs:double, d) — the two-entry case the paper describes;
///  - numeric:  one entry per numeric type reachable by promotion
///              (integer -> decimal -> float -> double), canonical-double
///              valued so cross-type numeric equality collides;
///  - other:    one entry keyed on the original (value, type).
std::vector<JoinKey> PromoteToSimpleTypes(const AtomicValue& key);

}  // namespace xqc

#endif  // XQC_TYPES_COMPARE_H_
