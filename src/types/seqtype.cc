#include "src/types/seqtype.h"

#include "src/types/schema.h"

namespace xqc {

ItemTest ItemTest::Atomic(AtomicType t) {
  ItemTest it;
  it.kind = Kind::kAtomic;
  it.atomic = t;
  return it;
}

ItemTest ItemTest::AnyNode() { return OfKind(Kind::kAnyNode); }

ItemTest ItemTest::Element(Symbol name, Symbol type) {
  ItemTest it;
  it.kind = Kind::kElement;
  it.name = name;
  it.type_name = type;
  return it;
}

ItemTest ItemTest::Attribute(Symbol name, Symbol type) {
  ItemTest it;
  it.kind = Kind::kAttribute;
  it.name = name;
  it.type_name = type;
  return it;
}

ItemTest ItemTest::OfKind(Kind k) {
  ItemTest it;
  it.kind = k;
  return it;
}

namespace {

bool NumericSubtype(AtomicType value_type, AtomicType test_type) {
  // xs:integer instance-of xs:decimal holds (derived type).
  return value_type == AtomicType::kInteger &&
         test_type == AtomicType::kDecimal;
}

}  // namespace

bool ItemTest::Matches(const Item& item, const Schema* schema) const {
  switch (kind) {
    case Kind::kAnyItem:
      return true;
    case Kind::kAtomic: {
      if (!item.IsAtomic()) return false;
      AtomicType t = item.atomic().type();
      return t == atomic || NumericSubtype(t, atomic);
    }
    default:
      return item.IsNode() && Matches(*item.node(), schema);
  }
}

bool ItemTest::Matches(const Node& n, const Schema* schema) const {
  switch (kind) {
    case Kind::kAnyItem:
    case Kind::kAnyNode:
      return true;
    case Kind::kAtomic:
      return false;
    case Kind::kElement:
    case Kind::kAttribute: {
      NodeKind want =
          kind == Kind::kElement ? NodeKind::kElement : NodeKind::kAttribute;
      if (n.kind != want) return false;
      if (!name.empty() && n.name != name) return false;
      if (!type_name.empty()) {
        if (n.type_annotation.empty()) return false;
        if (schema != nullptr) {
          return schema->DerivesFrom(n.type_annotation, type_name);
        }
        return n.type_annotation == type_name;
      }
      return true;
    }
    case Kind::kText:
      return n.kind == NodeKind::kText;
    case Kind::kComment:
      return n.kind == NodeKind::kComment;
    case Kind::kPI:
      return n.kind == NodeKind::kPI;
    case Kind::kDocument:
      return n.kind == NodeKind::kDocument;
  }
  return false;
}

std::string ItemTest::ToString() const {
  switch (kind) {
    case Kind::kAnyItem:
      return "item()";
    case Kind::kAtomic:
      return AtomicTypeName(atomic);
    case Kind::kAnyNode:
      return "node()";
    case Kind::kElement:
    case Kind::kAttribute: {
      std::string s = kind == Kind::kElement ? "element(" : "attribute(";
      if (name.empty() && type_name.empty()) return s + ")";
      s += name.empty() ? "*" : name.str();
      if (!type_name.empty()) s += "," + type_name.str();
      return s + ")";
    }
    case Kind::kText:
      return "text()";
    case Kind::kComment:
      return "comment()";
    case Kind::kPI:
      return "processing-instruction()";
    case Kind::kDocument:
      return "document-node()";
  }
  return "item()";
}

SequenceType SequenceType::Empty() {
  SequenceType t;
  t.is_empty = true;
  return t;
}
SequenceType SequenceType::One(ItemTest t) { return {false, t, Occurrence::kOne}; }
SequenceType SequenceType::Optional(ItemTest t) {
  return {false, t, Occurrence::kOptional};
}
SequenceType SequenceType::Star(ItemTest t) {
  return {false, t, Occurrence::kStar};
}
SequenceType SequenceType::Plus(ItemTest t) {
  return {false, t, Occurrence::kPlus};
}

bool SequenceType::Matches(const Sequence& s, const Schema* schema) const {
  if (is_empty) return s.empty();
  switch (occ) {
    case Occurrence::kOne:
      if (s.size() != 1) return false;
      break;
    case Occurrence::kOptional:
      if (s.size() > 1) return false;
      break;
    case Occurrence::kPlus:
      if (s.empty()) return false;
      break;
    case Occurrence::kStar:
      break;
  }
  for (const Item& it : s) {
    if (!test.Matches(it, schema)) return false;
  }
  return true;
}

std::string SequenceType::ToString() const {
  if (is_empty) return "empty-sequence()";
  std::string s = test.ToString();
  switch (occ) {
    case Occurrence::kOne: break;
    case Occurrence::kOptional: s += "?"; break;
    case Occurrence::kStar: s += "*"; break;
    case Occurrence::kPlus: s += "+"; break;
  }
  return s;
}

}  // namespace xqc
