// Sequence types: the [Type] parameters of the algebra's type operators
// (Castable, Cast, Validate, TypeMatches, TypeAssert) and XQuery's
// `instance of` / `typeswitch` tests — e.g. `element(*,Auction)*`.
#ifndef XQC_TYPES_SEQTYPE_H_
#define XQC_TYPES_SEQTYPE_H_

#include <string>

#include "src/base/status.h"
#include "src/base/symbol.h"
#include "src/xml/item.h"

namespace xqc {

class Schema;

/// A test on one item.
struct ItemTest {
  enum class Kind {
    kAnyItem,    // item()
    kAtomic,     // xs:integer etc.
    kAnyNode,    // node()
    kElement,    // element(), element(name), element(*,Type), element(name,Type)
    kAttribute,  // attribute(...)
    kText,       // text()
    kComment,    // comment()
    kPI,         // processing-instruction()
    kDocument,   // document-node()
  };

  Kind kind = Kind::kAnyItem;
  AtomicType atomic = AtomicType::kString;  // kAtomic only
  Symbol name;       // element/attribute name; empty = wildcard *
  Symbol type_name;  // schema type for element(*,T); empty = any type

  static ItemTest AnyItem() { return {}; }
  static ItemTest Atomic(AtomicType t);
  static ItemTest AnyNode();
  static ItemTest Element(Symbol name = Symbol(), Symbol type = Symbol());
  static ItemTest Attribute(Symbol name = Symbol(), Symbol type = Symbol());
  static ItemTest OfKind(Kind k);

  /// Does `item` match, resolving schema-type derivation through `schema`
  /// (may be null: then type names must match exactly)?
  bool Matches(const Item& item, const Schema* schema) const;

  /// Node-only variant: lets axis scans test before constructing an Item
  /// (and its shared_ptr refcount traffic) for non-matching nodes.
  bool Matches(const Node& node, const Schema* schema) const;

  std::string ToString() const;

  bool operator==(const ItemTest& o) const {
    return kind == o.kind && atomic == o.atomic && name == o.name &&
           type_name == o.type_name;
  }
};

enum class Occurrence { kOne, kOptional, kStar, kPlus };

/// item-test + occurrence indicator, or empty-sequence().
struct SequenceType {
  bool is_empty = false;  // empty-sequence()
  ItemTest test;
  Occurrence occ = Occurrence::kOne;

  static SequenceType Empty();
  static SequenceType One(ItemTest t);
  static SequenceType Optional(ItemTest t);
  static SequenceType Star(ItemTest t);
  static SequenceType Plus(ItemTest t);

  bool Matches(const Sequence& s, const Schema* schema) const;
  std::string ToString() const;

  bool operator==(const SequenceType& o) const {
    return is_empty == o.is_empty && test == o.test && occ == o.occ;
  }
};

}  // namespace xqc

#endif  // XQC_TYPES_SEQTYPE_H_
