#include "src/types/schema.h"

namespace xqc {
namespace {

uint64_t AttrKey(Symbol elem, Symbol attr) {
  return (static_cast<uint64_t>(elem.id()) << 32) | attr.id();
}

}  // namespace

void Schema::AddElementRule(Symbol elem, Symbol type, Symbol attr,
                            std::string attr_value) {
  elem_rules_.push_back({elem, type, attr, std::move(attr_value)});
}

void Schema::AddAttributeRule(Symbol elem, Symbol attr, AtomicType atomic) {
  attr_rules_[AttrKey(elem, attr)] = atomic;
}

void Schema::AddDerivation(Symbol derived, Symbol base) {
  base_of_[derived] = base;
}

bool Schema::DerivesFrom(Symbol type, Symbol base) const {
  Symbol t = type;
  for (int depth = 0; depth < 64; depth++) {  // cycle guard
    if (t == base) return true;
    auto it = base_of_.find(t);
    if (it == base_of_.end()) return false;
    t = it->second;
  }
  return false;
}

Symbol Schema::TypeForElement(const Node& n) const {
  Symbol result;
  bool result_specific = false;
  for (const ElemRule& r : elem_rules_) {
    if (!r.elem.empty() && r.elem != n.name) continue;
    if (!r.attr.empty()) {
      bool hit = false;
      for (const NodePtr& a : n.attributes) {
        if (a->name == r.attr &&
            (r.attr_value.empty() || a->value == r.attr_value)) {
          hit = true;
          break;
        }
      }
      if (!hit) continue;
      result = r.type;  // attribute-refined rules always win
      result_specific = true;
    } else if (!result_specific) {
      result = r.type;
    }
  }
  return result;
}

bool Schema::TypeForAttribute(Symbol elem, Symbol attr, AtomicType* out) const {
  auto it = attr_rules_.find(AttrKey(elem, attr));
  if (it == attr_rules_.end()) {
    // Fall back to an any-element rule.
    it = attr_rules_.find(AttrKey(Symbol(), attr));
    if (it == attr_rules_.end()) return false;
  }
  *out = it->second;
  return true;
}

namespace {

void AnnotateRec(const Schema& schema, Node* n) {
  if (n->kind == NodeKind::kElement) {
    Symbol t = schema.TypeForElement(*n);
    if (!t.empty()) n->type_annotation = t;
    for (const NodePtr& a : n->attributes) {
      AtomicType at;
      if (schema.TypeForAttribute(n->name, a->name, &at)) {
        a->type_annotation = Symbol(AtomicTypeName(at));
      }
    }
  }
  for (const NodePtr& c : n->children) AnnotateRec(schema, c.get());
}

}  // namespace

Result<NodePtr> Schema::Validate(const NodePtr& node) const {
  NodePtr copy = DeepCopy(*node, /*keep_types=*/false);
  AnnotateRec(*this, copy.get());
  FinalizeTree(copy);
  return copy;
}

}  // namespace xqc
