#include "src/types/compare.h"

#include <cmath>
#include <cstring>

#include "src/base/strutil.h"

namespace xqc {
namespace {

bool IsStringish(AtomicType t) {
  return t == AtomicType::kString || t == AtomicType::kAnyURI;
}

// Canonical string form of a numeric used in join keys: the bit pattern of
// the double value, with -0.0 folded to 0.0.
std::string CanonNumeric(double d) {
  if (d == 0.0) d = 0.0;  // folds -0.0
  char buf[sizeof(double)];
  std::memcpy(buf, &d, sizeof(double));
  return std::string(buf, sizeof(double));
}

}  // namespace

const char* CompOpName(CompOp op) {
  switch (op) {
    case CompOp::kEq: return "eq";
    case CompOp::kNe: return "ne";
    case CompOp::kLt: return "lt";
    case CompOp::kLe: return "le";
    case CompOp::kGt: return "gt";
    case CompOp::kGe: return "ge";
  }
  return "eq";
}

AtomicType ConvertOperandTarget(AtomicType first, AtomicType second) {
  if (first != AtomicType::kUntypedAtomic) return first;
  if (second == AtomicType::kUntypedAtomic || second == AtomicType::kString) {
    return AtomicType::kString;
  }
  if (IsNumeric(second)) return AtomicType::kDouble;
  return second;
}

Result<AtomicValue> ConvertOperand(const AtomicValue& x, AtomicType y_type) {
  AtomicType target = ConvertOperandTarget(x.type(), y_type);
  if (target == x.type()) return x;
  return AtomicValue::FromLexical(target, x.AsString());
}

bool ConvertCompatible(AtomicType a, AtomicType b) {
  if (a == AtomicType::kUntypedAtomic || b == AtomicType::kUntypedAtomic) {
    return true;  // the untyped side is converted to the other's type
  }
  if (IsNumeric(a) && IsNumeric(b)) return true;
  if (IsStringish(a) && IsStringish(b)) return true;
  return a == b;
}

Result<bool> AtomicCompare(CompOp op, const AtomicValue& a,
                           const AtomicValue& b) {
  // Numeric comparison with promotion through double.
  if (a.is_numeric() && b.is_numeric()) {
    double x = a.AsDouble(), y = b.AsDouble();
    if (std::isnan(x) || std::isnan(y)) return op == CompOp::kNe;
    switch (op) {
      case CompOp::kEq: return x == y;
      case CompOp::kNe: return x != y;
      case CompOp::kLt: return x < y;
      case CompOp::kLe: return x <= y;
      case CompOp::kGt: return x > y;
      case CompOp::kGe: return x >= y;
    }
  }
  if (a.type() == AtomicType::kBoolean && b.type() == AtomicType::kBoolean) {
    int x = a.AsBool() ? 1 : 0, y = b.AsBool() ? 1 : 0;
    switch (op) {
      case CompOp::kEq: return x == y;
      case CompOp::kNe: return x != y;
      case CompOp::kLt: return x < y;
      case CompOp::kLe: return x <= y;
      case CompOp::kGt: return x > y;
      case CompOp::kGe: return x >= y;
    }
  }
  // String-ish and lexical types: codepoint / canonical lexical comparison.
  bool comparable =
      (IsStringish(a.type()) && IsStringish(b.type())) || a.type() == b.type();
  if (comparable && !a.is_numeric() && a.type() != AtomicType::kBoolean) {
    int c = a.Lexical().compare(b.Lexical());
    switch (op) {
      case CompOp::kEq: return c == 0;
      case CompOp::kNe: return c != 0;
      case CompOp::kLt: return c < 0;
      case CompOp::kLe: return c <= 0;
      case CompOp::kGt: return c > 0;
      case CompOp::kGe: return c >= 0;
    }
  }
  return Status::XQueryError(
      "XPTY0004", std::string("cannot compare ") + AtomicTypeName(a.type()) +
                      " with " + AtomicTypeName(b.type()));
}

Result<bool> ValueCompareAtomic(CompOp op, const AtomicValue& a,
                                const AtomicValue& b) {
  XQC_ASSIGN_OR_RETURN(AtomicValue ca, ConvertOperand(a, b.type()));
  XQC_ASSIGN_OR_RETURN(AtomicValue cb, ConvertOperand(b, a.type()));
  return AtomicCompare(op, ca, cb);
}

Result<bool> GeneralCompare(CompOp op, const Sequence& xs, const Sequence& ys) {
  XQC_ASSIGN_OR_RETURN(Sequence dx, Atomize(xs));
  XQC_ASSIGN_OR_RETURN(Sequence dy, Atomize(ys));
  for (const Item& ix : dx) {
    for (const Item& iy : dy) {
      Result<bool> hit = ValueCompareAtomic(op, ix.atomic(), iy.atomic());
      if (!hit.ok()) {
        // Join-compatible relaxation (documented in DESIGN.md): pairs whose
        // types are incomparable or whose untyped value fails to convert
        // count as non-matches instead of raising XPTY0004/FORG0001. This
        // matches what the paper's hash join computes — incompatible pairs
        // never meet in the hash table — and keeps every engine
        // configuration consistent.
        continue;
      }
      if (hit.value()) return true;
    }
  }
  return false;
}

Result<AtomicValue> CastTo(const AtomicValue& v, AtomicType target) {
  if (v.type() == target) return v;
  // From string or untyped: lexical rules.
  if (v.type() == AtomicType::kString ||
      v.type() == AtomicType::kUntypedAtomic) {
    return AtomicValue::FromLexical(target, v.AsString());
  }
  switch (target) {
    case AtomicType::kString:
      return AtomicValue::String(v.Lexical());
    case AtomicType::kUntypedAtomic:
      return AtomicValue::Untyped(v.Lexical());
    case AtomicType::kInteger:
      if (v.is_numeric()) {
        double d = v.AsDouble();
        if (std::isnan(d) || std::isinf(d)) {
          return Status::XQueryError("FOCA0002",
                                     "cannot cast NaN/INF to xs:integer");
        }
        return AtomicValue::Integer(static_cast<int64_t>(d));  // truncation
      }
      if (v.type() == AtomicType::kBoolean) {
        return AtomicValue::Integer(v.AsBool() ? 1 : 0);
      }
      break;
    case AtomicType::kDecimal:
    case AtomicType::kFloat:
    case AtomicType::kDouble: {
      double d;
      if (v.is_numeric()) {
        d = v.AsDouble();
      } else if (v.type() == AtomicType::kBoolean) {
        d = v.AsBool() ? 1.0 : 0.0;
      } else {
        break;
      }
      if (target == AtomicType::kDecimal) {
        if (std::isnan(d) || std::isinf(d)) {
          return Status::XQueryError("FOCA0002",
                                     "cannot cast NaN/INF to xs:decimal");
        }
        return AtomicValue::Decimal(d);
      }
      if (target == AtomicType::kFloat) return AtomicValue::Float(d);
      return AtomicValue::Double(d);
    }
    case AtomicType::kBoolean:
      if (v.is_numeric()) {
        double d = v.AsDouble();
        return AtomicValue::Boolean(d != 0.0 && !std::isnan(d));
      }
      break;
    case AtomicType::kAnyURI:
      if (v.type() == AtomicType::kString) {
        return AtomicValue::Lexical(AtomicType::kAnyURI, v.AsString());
      }
      break;
    default:
      break;
  }
  return Status::XQueryError(
      "XPTY0004", std::string("cannot cast ") + AtomicTypeName(v.type()) +
                      " to " + AtomicTypeName(target));
}

bool CastableTo(const AtomicValue& v, AtomicType target) {
  return CastTo(v, target).ok();
}

JoinKey NumericJoinKey(double d) {
  return JoinKey{AtomicType::kDouble, CanonNumeric(d)};
}

std::vector<JoinKey> PromoteToSimpleTypes(const AtomicValue& key) {
  std::vector<JoinKey> out;
  if (key.type() == AtomicType::kUntypedAtomic) {
    out.push_back({AtomicType::kString, key.AsString()});
    double d;
    if (ParseDouble(key.AsString(), &d) && !std::isnan(d)) {
      out.push_back({AtomicType::kDouble, CanonNumeric(d)});
    }
    return out;
  }
  if (key.is_numeric()) {
    double d = key.AsDouble();
    if (std::isnan(d)) return out;  // NaN never joins
    std::string canon = CanonNumeric(d);
    // One entry per type reachable by numeric promotion.
    switch (key.type()) {
      case AtomicType::kInteger:
        out.push_back({AtomicType::kInteger, canon});
        [[fallthrough]];
      case AtomicType::kDecimal:
        out.push_back({AtomicType::kDecimal, canon});
        [[fallthrough]];
      case AtomicType::kFloat:
        out.push_back({AtomicType::kFloat, canon});
        [[fallthrough]];
      default:
        out.push_back({AtomicType::kDouble, canon});
    }
    return out;
  }
  if (key.type() == AtomicType::kAnyURI) {
    // anyURI promotes to string for comparison purposes.
    out.push_back({AtomicType::kString, key.AsString()});
    return out;
  }
  out.push_back({key.type(), key.Lexical()});
  // Bridge entry: the paper enumerates every type an untyped value can be
  // promoted to ("no more than nineteen"). Instead of storing ~19 entries
  // per untyped key, every non-numeric typed value ALSO keys on
  // (xs:string, lexical) — untyped keys carry (xs:string, value) already,
  // so untyped-vs-typed candidates meet on the bridge and the allMatches
  // recheck (Table 2 compatibility + op:equal on the originals) decides.
  out.push_back({AtomicType::kString, key.Lexical()});
  return out;
}

}  // namespace xqc
