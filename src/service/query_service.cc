#include "src/service/query_service.h"

#include <algorithm>
#include <chrono>

#include "src/xml/serializer.h"

namespace xqc {

namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedMs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               since)
      .count();
}

Status Overloaded(const std::string& why) {
  return Status::ResourceExhausted(kServiceOverloadedCode, why);
}

/// Request limits win field-wise; zero (unlimited) fields inherit the
/// service defaults.
GuardLimits MergeLimits(const GuardLimits& req, const GuardLimits& def) {
  GuardLimits out = req;
  if (out.deadline_ms == 0) out.deadline_ms = def.deadline_ms;
  if (out.max_memory_bytes == 0) out.max_memory_bytes = def.max_memory_bytes;
  if (out.max_output_items == 0) out.max_output_items = def.max_output_items;
  if (out.max_eval_steps == 0) out.max_eval_steps = def.max_eval_steps;
  return out;
}

/// xorshift64* — a tiny thread-private jitter source (no shared state, no
/// locking on the retry path).
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dull;
}

}  // namespace

QueryService::QueryService(ServiceOptions options)
    : options_(std::move(options)), engine_(options_.engine_options) {
  options_.num_threads = std::max(1, options_.num_threads);
  options_.max_queue = std::max<size_t>(1, options_.max_queue);
  active_.resize(static_cast<size_t>(options_.num_threads));
  workers_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; i++) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::RegisterDocument(const std::string& uri, NodePtr doc) {
  shared_docs_.emplace_back(uri, std::move(doc));
}

void QueryService::BindSharedVariable(Symbol name, Sequence value) {
  shared_vars_.emplace_back(name, std::move(value));
}

std::future<QueryResponse> QueryService::Submit(QueryRequest req) {
  auto job = std::make_unique<Job>();
  job->req = std::move(req);
  std::future<QueryResponse> future = job->promise.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  counters_.submitted++;
  auto reject = [&](const std::string& why) {
    counters_.rejected++;
    QueryResponse resp;
    resp.status = Overloaded(why);
    resp.queue_wait_ms = ElapsedMs(job->enqueued);
    job->promise.set_value(std::move(resp));
  };
  job->enqueued = Clock::now();
  if (shutdown_) {
    reject("service is shut down");
    return future;
  }
  if (queue_.size() >= options_.max_queue && options_.admission_wait_ms > 0) {
    space_cv_.wait_for(lock,
                       std::chrono::milliseconds(options_.admission_wait_ms),
                       [this] {
                         return shutdown_ || queue_.size() < options_.max_queue;
                       });
  }
  if (shutdown_ || queue_.size() >= options_.max_queue) {
    reject(shutdown_ ? "service is shut down"
                     : "admission queue saturated (" +
                           std::to_string(options_.max_queue) +
                           " queries queued)");
    return future;
  }
  job->token =
      job->req.cancel.live() ? job->req.cancel : CancellationToken::Make();
  queue_.push_back(std::move(job));
  work_cv_.notify_one();
  return future;
}

void QueryService::WorkerLoop(size_t worker_index) {
  uint64_t jitter_state =
      options_.jitter_seed ^ (0x9e3779b97f4a7c15ull * (worker_index + 1));
  while (true) {
    std::unique_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      job = std::move(queue_.front());
      queue_.pop_front();
      active_[worker_index] = job->token;
      space_cv_.notify_one();
    }
    QueryResponse resp = ExecuteJob(job.get(), &jitter_state);
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_[worker_index] = CancellationToken();
      if (resp.status.ok()) {
        counters_.completed++;
      } else {
        counters_.failed++;
      }
      if (resp.retried_transient) counters_.retries++;
    }
    job->promise.set_value(std::move(resp));
  }
}

QueryResponse QueryService::ExecuteOnce(Job* job, const GuardLimits& limits) {
  QueryResponse resp;
  DynamicContext ctx;
  if (options_.document_store != nullptr) {
    ctx.set_document_store(options_.document_store);
  }
  ctx.set_schema(schema_);
  for (const auto& [uri, doc] : shared_docs_) ctx.RegisterDocument(uri, doc);
  for (const auto& [name, value] : shared_vars_) ctx.BindVariable(name, value);
  if (job->req.bind_context) job->req.bind_context(&ctx);

  std::shared_ptr<const PreparedQuery> prepared = job->req.prepared;
  if (prepared == nullptr) {
    EngineOptions opts = options_.engine_options;
    opts.limits = limits;
    opts.cancel = job->token;
    if (job->req.batch_size > 0) opts.batch_size = job->req.batch_size;
    Result<PreparedQuery> local = engine_.Prepare(job->req.query_text, opts);
    if (!local.ok()) {
      resp.status = local.status();
      return resp;
    }
    prepared = std::make_shared<const PreparedQuery>(local.take());
  }
  Result<Sequence> r = prepared->Execute(&ctx, limits, job->token,
                                         job->req.fault_injector);
  resp.stats = prepared->last_exec_stats();
  if (!r.ok()) {
    resp.status = r.status();
    return resp;
  }
  resp.result = SerializeSequence(r.value());
  return resp;
}

QueryResponse QueryService::ExecuteJob(Job* job, uint64_t* jitter_state) {
  const GuardLimits limits =
      MergeLimits(job->req.limits, options_.default_limits);
  const int64_t queue_wait_ms = ElapsedMs(job->enqueued);

  QueryResponse resp;
  bool queue_exhausted_deadline = false;
  GuardLimits first_attempt = limits;
  if (options_.deadline_includes_queue_wait && limits.deadline_ms > 0) {
    int64_t remaining = limits.deadline_ms - queue_wait_ms;
    if (remaining <= 0) {
      // The whole budget was spent waiting for a worker; don't even start.
      resp.status = Status::ResourceExhausted(
          kGuardTimeoutCode,
          "query deadline of " + std::to_string(limits.deadline_ms) +
              "ms exhausted in the admission queue (waited " +
              std::to_string(queue_wait_ms) + "ms)");
      queue_exhausted_deadline = true;
    } else {
      first_attempt.deadline_ms = remaining;
    }
  }
  if (!queue_exhausted_deadline) {
    resp = ExecuteOnce(job, first_attempt);
  }
  resp.queue_wait_ms = queue_wait_ms;
  resp.attempts = 1;

  // Transient classification: the deadline tripped and queue congestion ate
  // a significant share (>= 25%) of the budget, so the failure says more
  // about the service's load than about the query. Everything else —
  // memory/output/step trips, recursion, W3C errors, caller cancellation —
  // is deterministic and must not be retried.
  bool transient =
      options_.retry_transient && options_.deadline_includes_queue_wait &&
      limits.deadline_ms > 0 && resp.status.code() == kGuardTimeoutCode &&
      queue_wait_ms * 4 >= limits.deadline_ms;
  if (!transient) return resp;

  // Jittered backoff in [base, 2*base), interruptible by shutdown.
  int64_t backoff_ms = options_.retry_backoff_ms +
                       static_cast<int64_t>(NextRand(jitter_state) %
                                            (options_.retry_backoff_ms > 0
                                                 ? options_.retry_backoff_ms
                                                 : 1));
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_cv_.wait_for(lock, std::chrono::milliseconds(backoff_ms),
                          [this] { return shutdown_; });
    if (shutdown_) return resp;  // original transient failure stands
  }
  if (job->token.cancelled()) return resp;

  QueryResponse retried = ExecuteOnce(job, limits);  // fresh full budget
  retried.queue_wait_ms = queue_wait_ms;
  retried.attempts = 2;
  retried.retried_transient = true;
  return retried;
}

void QueryService::Shutdown() {
  std::deque<std::unique_ptr<Job>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      orphaned.swap(queue_);
      counters_.rejected += static_cast<int64_t>(orphaned.size());
      for (const CancellationToken& token : active_) {
        if (token.live()) {
          token.RequestCancel();
          counters_.cancelled_at_shutdown++;
        }
      }
    }
    work_cv_.notify_all();
    space_cv_.notify_all();
    shutdown_cv_.notify_all();
  }
  for (auto& job : orphaned) {
    QueryResponse resp;
    resp.status = Overloaded("service shut down before execution");
    resp.queue_wait_ms = ElapsedMs(job->enqueued);
    job->promise.set_value(std::move(resp));
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

QueryService::Counters QueryService::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace xqc
