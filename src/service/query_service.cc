#include "src/service/query_service.h"

#include <algorithm>
#include <chrono>

#include "src/base/strutil.h"
#include "src/xml/serializer.h"

namespace xqc {

namespace {

using Clock = std::chrono::steady_clock;

int64_t ElapsedMs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               since)
      .count();
}

Status Overloaded(const std::string& why) {
  return Status::ResourceExhausted(kServiceOverloadedCode, why);
}

/// Request limits win field-wise; zero (unlimited) fields inherit the
/// service defaults.
GuardLimits MergeLimits(const GuardLimits& req, const GuardLimits& def) {
  GuardLimits out = req;
  if (out.deadline_ms == 0) out.deadline_ms = def.deadline_ms;
  if (out.max_memory_bytes == 0) out.max_memory_bytes = def.max_memory_bytes;
  if (out.max_output_items == 0) out.max_output_items = def.max_output_items;
  if (out.max_eval_steps == 0) out.max_eval_steps = def.max_eval_steps;
  return out;
}

/// xorshift64* — a tiny thread-private jitter source (no shared state, no
/// locking on the retry path).
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545f4914f6cdd1dull;
}

/// Whether a compile failure is deterministic — replaying it tomorrow
/// would produce the same verdict — and therefore safe to negative-cache.
/// Resource trips, cancellations, and I/O failures say something about
/// the moment, not the query, and must re-compile next time.
bool CompileErrorIsDeterministic(const Status& s) {
  switch (s.kind()) {
    case StatusKind::kParseError:
    case StatusKind::kXQueryError:
    case StatusKind::kNotImplemented:
      return true;
    default:
      return false;
  }
}

/// A coarse per-entry footprint estimate for the plan-cache byte budget:
/// the retained strings plus a multiple of the plan's printed size as a
/// proxy for its operator tree. Deliberately an over-approximation, like
/// the guard's memory accounting.
int64_t EstimatePlanBytes(const std::string& key, const PreparedQuery& plan) {
  return static_cast<int64_t>(key.size()) * 2 +
         static_cast<int64_t>(plan.ExplainPlan(false).size()) * 24 + 1024;
}

}  // namespace

std::string NormalizeQueryKeyText(const std::string& query_text) {
  return std::string(TrimXmlSpace(query_text));
}

int64_t JitteredBackoffMs(int64_t base_ms, uint64_t* state) {
  return base_ms + static_cast<int64_t>(
                       NextRand(state) %
                       static_cast<uint64_t>(base_ms > 0 ? base_ms : 1));
}

QueryService::QueryService(ServiceOptions options)
    : options_(std::move(options)), engine_(options_.engine_options) {
  options_.num_threads = std::max(1, options_.num_threads);
  options_.max_queue = std::max<size_t>(1, options_.max_queue);
  ewma_exec_ms_ = std::max(0.0, options_.ewma_seed_ms);
  if (!options_.snapshot_dir.empty()) {
    DocumentStore* store = options_.document_store != nullptr
                               ? options_.document_store
                               : DocumentStore::Global();
    store->set_snapshot_dir(options_.snapshot_dir);
  }
  active_.resize(static_cast<size_t>(options_.num_threads));
  workers_.reserve(static_cast<size_t>(options_.num_threads));
  for (int i = 0; i < options_.num_threads; i++) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<size_t>(i)); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::Complete(Job* job, QueryResponse resp) {
  // The hook fires first so an event-loop consumer (the HTTP server) can
  // observe the response before any future-waiter races it. It may run
  // under the service mutex (fast-fail paths), so it must not call back
  // into the QueryService.
  if (job->req.on_done) job->req.on_done(resp);
  job->promise.set_value(std::move(resp));
}

void QueryService::RegisterDocument(const std::string& uri, NodePtr doc) {
  shared_docs_.emplace_back(uri, std::move(doc));
}

void QueryService::BindSharedVariable(Symbol name, Sequence value) {
  shared_vars_.emplace_back(name, std::move(value));
}

std::future<QueryResponse> QueryService::Submit(QueryRequest req) {
  auto job = std::make_unique<Job>();
  job->req = std::move(req);
  std::future<QueryResponse> future = job->promise.get_future();

  std::unique_lock<std::mutex> lock(mu_);
  counters_.submitted++;
  auto fail = [&](Status status) {
    counters_.rejected++;
    QueryResponse resp;
    resp.status = std::move(status);
    resp.queue_wait_ms = ElapsedMs(job->enqueued);
    Complete(job.get(), std::move(resp));
  };
  auto reject = [&](const std::string& why) { fail(Overloaded(why)); };
  job->enqueued = Clock::now();
  if (shutdown_) {
    reject("service is shut down");
    return future;
  }

  // Per-tenant quotas: a hot tenant's burst fails fast with XQC0010
  // before it can occupy global queue capacity.
  if (tenant_tracking()) {
    const std::string& tenant = job->req.tenant;
    TenantState& ts = tenants_[tenant];
    const bool over_queued = options_.tenant_max_queued > 0 &&
                             ts.queued >= options_.tenant_max_queued;
    const bool over_in_flight =
        options_.tenant_max_in_flight > 0 &&
        ts.queued + ts.running >= options_.tenant_max_in_flight;
    if (over_queued || over_in_flight) {
      counters_.tenant_rejected++;
      counters_.tenant_rejections[tenant]++;
      fail(Status::ResourceExhausted(
          kTenantOverQuotaCode,
          "tenant '" + tenant + "' over " +
              (over_queued ? "queued" : "in-flight") + " quota (" +
              std::to_string(ts.queued) + " queued, " +
              std::to_string(ts.running) + " running)"));
      return future;
    }
  }

  // Admission-time shedding: when the predicted queue wait alone already
  // exceeds the request's end-to-end budget, admitting it only
  // manufactures a future corpse — reject it now, in microseconds.
  if (options_.predict_admission && options_.deadline_includes_queue_wait &&
      ewma_exec_ms_ > 0) {
    GuardLimits merged = MergeLimits(job->req.limits, options_.default_limits);
    if (merged.deadline_ms > 0) {
      double predicted_wait_ms = static_cast<double>(QueueSizeLocked()) *
                                 ewma_exec_ms_ / options_.num_threads;
      if (predicted_wait_ms > static_cast<double>(merged.deadline_ms)) {
        counters_.rejected_predicted++;
        reject("predicted queue wait " +
               std::to_string(static_cast<int64_t>(predicted_wait_ms)) +
               "ms exceeds the request deadline of " +
               std::to_string(merged.deadline_ms) + "ms");
        return future;
      }
    }
  }

  if (QueueSizeLocked() >= options_.max_queue &&
      options_.admission_wait_ms > 0) {
    space_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.admission_wait_ms), [this] {
          return shutdown_ || QueueSizeLocked() < options_.max_queue;
        });
  }
  if (shutdown_ || QueueSizeLocked() >= options_.max_queue) {
    reject(shutdown_ ? "service is shut down"
                     : "admission queue saturated (" +
                           std::to_string(options_.max_queue) +
                           " queries queued)");
    return future;
  }
  job->token =
      job->req.cancel.live() ? job->req.cancel : CancellationToken::Make();
  EnqueueLocked(std::move(job));
  work_cv_.notify_one();
  return future;
}

size_t QueryService::QueueSizeLocked() const {
  return options_.fair_dequeue ? fair_queued_ : queue_.size();
}

void QueryService::EnqueueLocked(std::unique_ptr<Job> job) {
  if (tenant_tracking()) tenants_[job->req.tenant].queued++;
  if (options_.fair_dequeue) {
    TenantState& ts = tenants_[job->req.tenant];
    if (ts.fifo.empty()) rr_.push_back(job->req.tenant);
    ts.fifo.push_back(std::move(job));
    fair_queued_++;
  } else {
    queue_.push_back(std::move(job));
  }
}

std::unique_ptr<QueryService::Job> QueryService::DequeueLocked() {
  std::unique_ptr<Job> job;
  if (options_.fair_dequeue) {
    // Round-robin across tenants with queued work; each tenant's own jobs
    // stay FIFO. A tenant with a deep backlog gets one slot per cycle, so
    // the others' shallow queues drain at the same per-tenant rate.
    if (rr_.empty()) return nullptr;
    std::string tenant = std::move(rr_.front());
    rr_.pop_front();
    TenantState& ts = tenants_[tenant];
    job = std::move(ts.fifo.front());
    ts.fifo.pop_front();
    fair_queued_--;
    if (!ts.fifo.empty()) rr_.push_back(std::move(tenant));
  } else {
    if (queue_.empty()) return nullptr;
    job = std::move(queue_.front());
    queue_.pop_front();
  }
  if (tenant_tracking()) {
    TenantState& ts = tenants_[job->req.tenant];
    ts.queued--;
    ts.running++;
  }
  return job;
}

void QueryService::DrainQueueLocked(std::deque<std::unique_ptr<Job>>* out) {
  if (options_.fair_dequeue) {
    while (!rr_.empty()) {
      TenantState& ts = tenants_[rr_.front()];
      while (!ts.fifo.empty()) {
        out->push_back(std::move(ts.fifo.front()));
        ts.fifo.pop_front();
      }
      rr_.pop_front();
    }
    fair_queued_ = 0;
  } else {
    out->swap(queue_);
  }
  if (tenant_tracking()) {
    for (auto& [tenant, ts] : tenants_) ts.queued = 0;
  }
}

void QueryService::UpdateEwma(int64_t exec_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  double sample = static_cast<double>(exec_ms);
  ewma_exec_ms_ = ewma_exec_ms_ <= 0
                      ? sample
                      : options_.ewma_alpha * sample +
                            (1 - options_.ewma_alpha) * ewma_exec_ms_;
}

double QueryService::ewma_exec_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ewma_exec_ms_;
}

size_t QueryService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return QueueSizeLocked();
}

QueryService::PlanCacheStats QueryService::plan_cache_stats() const {
  std::lock_guard<std::mutex> lock(plan_mu_);
  PlanCacheStats out = plan_stats_;
  out.entries = static_cast<int64_t>(plans_.size());
  out.bytes = plan_bytes_;
  return out;
}

void QueryService::ErasePlanLocked(const std::string& key) {
  auto it = plans_.find(key);
  if (it == plans_.end() || it->second.compiling) return;
  plan_bytes_ -= it->second.bytes;
  plan_lru_.erase(it->second.lru_it);
  plans_.erase(it);
}

int64_t QueryService::InvalidatePlan(const std::string& query_text) {
  // The stored key is "<batch>|<parallelism>|<trimmed text>"; invalidate
  // every baked-option variant of the text.
  const std::string text = NormalizeQueryKeyText(query_text);
  std::lock_guard<std::mutex> lock(plan_mu_);
  std::vector<std::string> doomed;
  for (const auto& [key, entry] : plans_) {
    if (entry.compiling) continue;
    const size_t bar = key.rfind('|');
    if (bar != std::string::npos && key.compare(bar + 1, std::string::npos,
                                                text) == 0) {
      doomed.push_back(key);
    }
  }
  for (const std::string& key : doomed) ErasePlanLocked(key);
  plan_stats_.invalidations += static_cast<int64_t>(doomed.size());
  return static_cast<int64_t>(doomed.size());
}

int64_t QueryService::InvalidateAllPlans() {
  std::lock_guard<std::mutex> lock(plan_mu_);
  int64_t n = 0;
  // Keep compiling entries (their leaders will publish into the emptied
  // cache); drop everything completed.
  for (auto it = plans_.begin(); it != plans_.end();) {
    if (it->second.compiling) {
      ++it;
      continue;
    }
    plan_bytes_ -= it->second.bytes;
    plan_lru_.erase(it->second.lru_it);
    it = plans_.erase(it);
    n++;
  }
  plan_stats_.invalidations += n;
  return n;
}

Result<std::shared_ptr<const PreparedQuery>> QueryService::GetOrCompilePlan(
    Job* job, const EngineOptions& opts) {
  // Per-request compile knobs bake into the plan, so they are part of the
  // identity: "same text, different batch size" is a different plan.
  const std::string key = std::to_string(opts.batch_size) + "|" +
                          std::to_string(opts.parallelism) + "|" +
                          NormalizeQueryKeyText(job->req.query_text);
  std::unique_lock<std::mutex> lock(plan_mu_);
  // A request is counted in exactly one stats class: a direct hit, a
  // coalesced wait on an in-flight compile, or a miss (the leader).
  bool coalesced = false;
  for (;;) {
    auto it = plans_.find(key);
    if (it != plans_.end() && !it->second.compiling) {
      PlanEntry& entry = it->second;
      if (entry.plan != nullptr) {
        if (!coalesced) plan_stats_.hits++;
        plan_lru_.splice(plan_lru_.begin(), plan_lru_, entry.lru_it);
        return entry.plan;
      }
      if (Clock::now() < entry.error_expires) {
        if (!coalesced) plan_stats_.negative_hits++;
        plan_lru_.splice(plan_lru_.begin(), plan_lru_, entry.lru_it);
        return entry.error;
      }
      ErasePlanLocked(key);  // expired negative entry: recompile below
      it = plans_.end();
    }
    if (it != plans_.end()) {
      // Singleflight: another worker is compiling this key. Wait in short
      // slices so a cancelled or deadline-exhausted waiter unblocks within
      // one quantum even if the leader's compile is slow.
      if (!coalesced) plan_stats_.waiters_coalesced++;
      coalesced = true;
      do {
        if (job->token.cancelled()) {
          return Status::ResourceExhausted(
              kGuardCancelledCode, "cancelled while waiting for a shared "
                                   "plan compilation");
        }
        plan_cv_.wait_for(lock, std::chrono::milliseconds(5));
        it = plans_.find(key);
      } while (it != plans_.end() && it->second.compiling);
      continue;  // re-examine whatever the leader published (or nothing)
    }

    // Miss: this worker is the leader. Compile with the cache unlocked.
    plan_stats_.misses++;
    plans_[key].compiling = true;
    lock.unlock();
    Result<PreparedQuery> compiled = engine_.Prepare(job->req.query_text, opts);
    lock.lock();
    plan_stats_.compiles++;  // compilation work performed, pass or fail
    auto slot = plans_.find(key);  // InvalidateAllPlans may not erase us,
                                   // but be defensive about the slot
    if (compiled.ok()) {
      auto plan =
          std::make_shared<const PreparedQuery>(std::move(compiled.take()));
      if (slot != plans_.end()) {
        PlanEntry& entry = slot->second;
        entry.compiling = false;
        entry.plan = plan;
        entry.bytes = EstimatePlanBytes(key, *plan);
        plan_lru_.push_front(key);
        entry.lru_it = plan_lru_.begin();
        plan_bytes_ += entry.bytes;
        // Enforce both bounds, never evicting the entry just published.
        while (plan_lru_.size() > 1 &&
               (plans_.size() > options_.plan_cache_entries ||
                (options_.plan_cache_max_bytes > 0 &&
                 plan_bytes_ > options_.plan_cache_max_bytes))) {
          ErasePlanLocked(plan_lru_.back());
          plan_stats_.evictions++;
        }
      }
      plan_cv_.notify_all();
      return plan;
    }
    Status error = compiled.status();
    if (slot != plans_.end()) {
      if (options_.plan_cache_negative_ttl_ms > 0 &&
          CompileErrorIsDeterministic(error)) {
        PlanEntry& entry = slot->second;
        entry.compiling = false;
        entry.error = error;
        entry.error_expires =
            Clock::now() +
            std::chrono::milliseconds(options_.plan_cache_negative_ttl_ms);
        entry.bytes = static_cast<int64_t>(key.size()) * 2 + 256;
        plan_lru_.push_front(key);
        entry.lru_it = plan_lru_.begin();
        plan_bytes_ += entry.bytes;
      } else {
        // Environmental failure (guard trip, cancellation, I/O): leave no
        // trace; the next request for this key compiles fresh.
        plans_.erase(slot);
      }
    }
    plan_cv_.notify_all();
    return error;
  }
}

void QueryService::WorkerLoop(size_t worker_index) {
  uint64_t jitter_state =
      options_.jitter_seed ^ (0x9e3779b97f4a7c15ull * (worker_index + 1));
  while (true) {
    std::unique_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [this] { return shutdown_ || QueueSizeLocked() > 0; });
      if (QueueSizeLocked() == 0) return;  // shutdown with a drained queue
      job = DequeueLocked();
      active_[worker_index] = job->token;
      space_cv_.notify_one();
    }
    QueryResponse resp = ExecuteJob(job.get(), &jitter_state);
    {
      std::lock_guard<std::mutex> lock(mu_);
      active_[worker_index] = CancellationToken();
      if (tenant_tracking()) tenants_[job->req.tenant].running--;
      if (resp.status.ok()) {
        counters_.completed++;
      } else {
        counters_.failed++;
      }
      if (resp.retried_transient) counters_.retries++;
    }
    Complete(job.get(), std::move(resp));
  }
}

QueryResponse QueryService::ExecuteOnce(Job* job, const GuardLimits& limits) {
  QueryResponse resp;
  DynamicContext ctx;
  if (options_.document_store != nullptr) {
    ctx.set_document_store(options_.document_store);
  }
  ctx.set_schema(schema_);
  for (const auto& [uri, doc] : shared_docs_) ctx.RegisterDocument(uri, doc);
  for (const auto& [name, value] : shared_vars_) ctx.BindVariable(name, value);
  if (job->req.bind_context) job->req.bind_context(&ctx);

  std::shared_ptr<const PreparedQuery> prepared = job->req.prepared;
  if (prepared == nullptr) {
    EngineOptions opts = options_.engine_options;
    opts.limits = limits;
    opts.cancel = job->token;
    if (job->req.batch_size > 0) opts.batch_size = job->req.batch_size;
    if (job->req.parallelism > 0) opts.parallelism = job->req.parallelism;
    if (options_.plan_cache_entries > 0 && !job->req.no_plan_cache) {
      // Cached path: repeated traffic skips parse/normalize/compile and
      // shares one immutable plan; per-request guards still apply at
      // Execute below. Compile knobs are part of the cache key, so a hit
      // is exactly the plan this request would have compiled.
      Result<std::shared_ptr<const PreparedQuery>> cached =
          GetOrCompilePlan(job, opts);
      if (!cached.ok()) {
        resp.status = cached.status();
        return resp;
      }
      prepared = cached.take();
    } else {
      Result<PreparedQuery> local = engine_.Prepare(job->req.query_text, opts);
      if (!local.ok()) {
        resp.status = local.status();
        return resp;
      }
      prepared = std::make_shared<const PreparedQuery>(local.take());
    }
  }
  Result<Sequence> r = prepared->Execute(&ctx, limits, job->token,
                                         job->req.fault_injector);
  resp.stats = prepared->last_exec_stats();
  if (!r.ok()) {
    resp.status = r.status();
    return resp;
  }
  resp.result = SerializeSequence(r.value());
  return resp;
}

QueryResponse QueryService::ExecuteJob(Job* job, uint64_t* jitter_state) {
  const GuardLimits limits =
      MergeLimits(job->req.limits, options_.default_limits);
  const int64_t queue_wait_ms = ElapsedMs(job->enqueued);

  QueryResponse resp;
  bool queue_exhausted_deadline = false;
  bool ewma_shed = false;
  GuardLimits first_attempt = limits;
  if (options_.deadline_includes_queue_wait && limits.deadline_ms > 0) {
    int64_t remaining = limits.deadline_ms - queue_wait_ms;
    if (remaining <= 0) {
      // The whole budget was spent waiting for a worker; fail fast before
      // any engine setup (no context build, no Prepare, no bind_context).
      resp.status = Status::ResourceExhausted(
          kGuardTimeoutCode,
          "query deadline of " + std::to_string(limits.deadline_ms) +
              "ms exhausted in the admission queue (waited " +
              std::to_string(queue_wait_ms) + "ms)");
      queue_exhausted_deadline = true;
    } else if (options_.shed_on_dequeue) {
      // Deadline-aware shedding: the budget left is below what queries
      // have recently been costing, so this job would almost certainly
      // trip the deadline mid-flight — a corpse. Shed it now instead of
      // burning a worker discovering that the slow way.
      double estimate;
      {
        std::lock_guard<std::mutex> lock(mu_);
        estimate = ewma_exec_ms_;
      }
      if (estimate > 0 && estimate > static_cast<double>(remaining)) {
        resp.status = Status::ResourceExhausted(
            kGuardTimeoutCode,
            "shed at dispatch: " + std::to_string(remaining) +
                "ms of the deadline remains but recent queries averaged " +
                std::to_string(static_cast<int64_t>(estimate)) +
                "ms (waited " + std::to_string(queue_wait_ms) +
                "ms in queue)");
        ewma_shed = true;
      }
    }
    if (!queue_exhausted_deadline && !ewma_shed) {
      first_attempt.deadline_ms = remaining;
    }
  }
  if (options_.shed_on_dequeue && (queue_exhausted_deadline || ewma_shed)) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.shed_in_queue++;
  }
  if (!queue_exhausted_deadline && !ewma_shed) {
    Clock::time_point exec_start = Clock::now();
    resp = ExecuteOnce(job, first_attempt);
    UpdateEwma(ElapsedMs(exec_start));
  }
  resp.queue_wait_ms = queue_wait_ms;
  resp.attempts = 1;

  // Transient classification: the deadline tripped and queue congestion ate
  // a significant share (>= 25%) of the budget, so the failure says more
  // about the service's load than about the query. Everything else —
  // memory/output/step trips, recursion, W3C errors, caller cancellation —
  // is deterministic and must not be retried. EWMA sheds are also never
  // retried: shedding exists to unload the service, and re-queueing the
  // work it dropped would cancel the relief.
  bool transient =
      !ewma_shed && options_.retry_transient &&
      options_.deadline_includes_queue_wait && limits.deadline_ms > 0 &&
      resp.status.code() == kGuardTimeoutCode &&
      queue_wait_ms * 4 >= limits.deadline_ms;
  if (!transient) return resp;

  // Jittered backoff in [base, 2*base), interruptible by shutdown.
  int64_t backoff_ms = JitteredBackoffMs(options_.retry_backoff_ms,
                                         jitter_state);
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_cv_.wait_for(lock, std::chrono::milliseconds(backoff_ms),
                          [this] { return shutdown_; });
    if (shutdown_) return resp;  // original transient failure stands
  }
  if (job->token.cancelled()) return resp;

  Clock::time_point retry_start = Clock::now();
  QueryResponse retried = ExecuteOnce(job, limits);  // fresh full budget
  UpdateEwma(ElapsedMs(retry_start));
  retried.queue_wait_ms = queue_wait_ms;
  retried.attempts = 2;
  retried.retried_transient = true;
  return retried;
}

void QueryService::Shutdown() {
  std::deque<std::unique_ptr<Job>> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!shutdown_) {
      shutdown_ = true;
      DrainQueueLocked(&orphaned);
      counters_.rejected += static_cast<int64_t>(orphaned.size());
      for (const CancellationToken& token : active_) {
        if (token.live()) {
          token.RequestCancel();
          counters_.cancelled_at_shutdown++;
        }
      }
    }
    work_cv_.notify_all();
    space_cv_.notify_all();
    shutdown_cv_.notify_all();
  }
  for (auto& job : orphaned) {
    QueryResponse resp;
    resp.status = Overloaded("service shut down before execution");
    resp.queue_wait_ms = ElapsedMs(job->enqueued);
    Complete(job.get(), std::move(resp));
  }
  plan_cv_.notify_all();  // wake singleflight waiters into their cancel check
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

QueryService::Counters QueryService::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace xqc
