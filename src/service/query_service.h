// QueryService: the concurrent serving layer over the engine.
//
// A QueryService owns a pool of worker threads, a bounded admission queue,
// and the per-query guard configuration, turning the single-query engine
// into something that can take sustained parallel traffic:
//
//   * Admission control: Submit() enqueues into a bounded queue. When the
//     queue is full it waits up to `admission_wait_ms` for space and then
//     fast-fails with XQC0007 (kServiceOverloadedCode) instead of queueing
//     without bound — saturation produces quick, explicit rejections.
//   * Per-query guards: every execution runs under GuardLimits merged from
//     the request and the service defaults. With
//     `deadline_includes_queue_wait` (default), the wall-clock budget is
//     end-to-end: time spent waiting in the admission queue is deducted
//     from the execution deadline, so a saturated service cannot silently
//     stretch latency past the promised bound.
//   * Transient retry: a query whose deadline tripped *because of queue
//     congestion* (the queue wait consumed a significant share of the
//     budget) failed for reasons unrelated to the query itself; the worker
//     retries it once, after a jittered backoff, with a fresh budget.
//     Deterministic failures — memory/output/step trips, W3C errors,
//     caller cancellation — are never retried.
//   * Shutdown: cancels every in-flight query via its CancellationToken
//     (honored within one guard-check quantum), fails everything still
//     queued with XQC0007, and joins the workers.
//
// Threading contract: RegisterDocument / BindSharedVariable / set_schema
// configure state shared by all workers and must be called before the
// first Submit. Submit / Shutdown / counters are thread-safe. Each worker
// builds a private DynamicContext per query; the shared documents and
// variable payloads are immutable and referenced, not copied (see
// DESIGN.md "Threading model").
#ifndef XQC_SERVICE_QUERY_SERVICE_H_
#define XQC_SERVICE_QUERY_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/engine/engine.h"

namespace xqc {

struct ServiceOptions {
  /// Worker threads executing queries. Clamped to >= 1.
  int num_threads = 4;
  /// Bound on queries admitted but not yet running. Clamped to >= 1.
  size_t max_queue = 64;
  /// How long Submit may block waiting for queue space before fast-failing
  /// with XQC0007. 0 = reject immediately when the queue is full.
  int64_t admission_wait_ms = 0;
  /// Per-query defaults; a request's zero (unlimited) fields inherit these.
  GuardLimits default_limits;
  /// Deduct queue wait from the execution deadline (end-to-end latency
  /// bound). Also what makes congestion-caused deadline trips recognizably
  /// transient.
  bool deadline_includes_queue_wait = true;
  /// Retry a transient (congestion-caused) deadline trip once.
  bool retry_transient = true;
  /// Base backoff before the retry; the actual wait is uniformly jittered
  /// in [base, 2*base) to decorrelate retry storms.
  int64_t retry_backoff_ms = 5;
  /// Seed for the backoff jitter (deterministic by default for tests).
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
  /// Compilation/execution configuration used for every query.
  EngineOptions engine_options;
  /// DocumentStore serving the workers' fn:doc resolution (non-owning;
  /// must outlive the service). nullptr = the process-wide store. Whether
  /// the store is consulted at all is engine_options.use_doc_store.
  DocumentStore* document_store = nullptr;
};

struct QueryRequest {
  /// The query. `prepared` (a shared, immutable plan) takes precedence;
  /// otherwise `query_text` is compiled on the worker.
  std::string query_text;
  std::shared_ptr<const PreparedQuery> prepared;
  /// Per-request limits; zero fields inherit ServiceOptions::default_limits.
  GuardLimits limits;
  /// Per-request streaming batch size (EngineOptions::batch_size); 0
  /// inherits the service's engine_options. Applies only when the service
  /// compiles `query_text` — a `prepared` plan's options were baked in at
  /// Prepare time.
  int batch_size = 0;
  /// Optional extra bindings, run on the worker thread against the
  /// query-private context (after shared documents/variables are installed).
  std::function<void(DynamicContext*)> bind_context;
  /// Optional caller-held cancellation token. The service cancels it on
  /// shutdown; when absent the service makes a private one.
  CancellationToken cancel;
  /// Deterministic guard fault injection (tests only).
  GuardFaultInjector fault_injector;
};

struct QueryResponse {
  Status status;          // OK, a W3C error, a guard trip, or XQC0007
  std::string result;     // serialized result when status is OK
  ExecStats stats;        // from the final attempt
  int64_t queue_wait_ms = 0;
  int attempts = 1;       // 2 when the transient retry ran
  bool retried_transient = false;
};

class QueryService {
 public:
  explicit QueryService(ServiceOptions options = ServiceOptions());
  ~QueryService();  // calls Shutdown()

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Shared immutable state, installed into every query's context.
  /// Must be called before the first Submit.
  void RegisterDocument(const std::string& uri, NodePtr doc);
  void BindSharedVariable(Symbol name, Sequence value);
  void set_schema(const Schema* schema) { schema_ = schema; }

  /// Admits a query (possibly waiting admission_wait_ms for queue space)
  /// and returns a future for its response. Never throws; admission
  /// failures and post-shutdown submissions complete the future with
  /// XQC0007.
  std::future<QueryResponse> Submit(QueryRequest req);

  /// Convenience: Submit and wait.
  QueryResponse Run(QueryRequest req) { return Submit(std::move(req)).get(); }

  /// Cancels in-flight queries, fails queued ones with XQC0007, and joins
  /// the workers. Idempotent; called by the destructor.
  void Shutdown();

  /// Monotonic service counters (all guarded; safe to read any time).
  struct Counters {
    int64_t submitted = 0;   // Submit calls
    int64_t rejected = 0;    // XQC0007 at admission or shutdown
    int64_t completed = 0;   // finished with OK status
    int64_t failed = 0;      // finished with any non-OK status
    int64_t retries = 0;     // transient retries performed
    int64_t cancelled_at_shutdown = 0;  // in-flight when Shutdown ran
  };
  Counters counters() const;

  const ServiceOptions& options() const { return options_; }

 private:
  struct Job {
    QueryRequest req;
    std::promise<QueryResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
    CancellationToken token;  // req.cancel, or a service-made one
  };

  void WorkerLoop(size_t worker_index);
  QueryResponse ExecuteJob(Job* job, uint64_t* jitter_state);
  /// One engine execution of the job under `limits`. Fills status/result/
  /// stats only.
  QueryResponse ExecuteOnce(Job* job, const GuardLimits& limits);

  ServiceOptions options_;
  Engine engine_;
  const Schema* schema_ = nullptr;
  std::vector<std::pair<std::string, NodePtr>> shared_docs_;
  std::vector<std::pair<Symbol, Sequence>> shared_vars_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // queue became non-empty / shutdown
  std::condition_variable space_cv_;  // queue gained space / shutdown
  std::condition_variable shutdown_cv_;  // interrupts retry backoff
  std::deque<std::unique_ptr<Job>> queue_;
  std::vector<CancellationToken> active_;  // per-worker in-flight token
  std::vector<std::thread> workers_;
  bool shutdown_ = false;
  Counters counters_;
};

}  // namespace xqc

#endif  // XQC_SERVICE_QUERY_SERVICE_H_
